// Package diurnal infers changes in daily human activity from Internet
// address responsiveness, reproducing the pipeline of Song, Baltra and
// Heidemann, "Inferring Changes in Daily Human Activity from Internet
// Response" (ACM IMC 2023).
//
// The pipeline turns repeated ICMP-style probes of /24 IPv4 blocks into
// detected human-activity changes:
//
//  1. reconstruct per-block active-address counts from incremental probe
//     rounds (with 1-loss repair for congested links),
//  2. keep only change-sensitive blocks — diurnal (FFT energy at 24 h)
//     with a persistent wide daily swing,
//  3. extract the long-term trend with STL,
//  4. detect changes with CUSUM on the normalized trend (filtering
//     outage-like down/up pairs), and
//  5. aggregate downward changes by 2×2° gridcell and continent.
//
// Because live Trinocular data is not available offline, the package ships
// a deterministic synthetic Internet (a world atlas of address-usage
// archetypes plus a calendar of real-world events such as the 2020
// work-from-home wave) that exercises the identical code paths. Callers
// with their own measurements can enter the pipeline at any stage: raw
// probe records via AnalyzeRecords, or an already reconstructed series via
// AnalyzeSeries.
//
// Quick start:
//
//	world, _ := diurnal.NewWorld(diurnal.WorldOptions{
//	    Blocks: 500, Seed: 1, Calendar: diurnal.Calendar2020(),
//	    Start: diurnal.Date(2020, 1, 1), End: diurnal.Date(2020, 3, 25),
//	})
//	report, _ := world.Run(diurnal.DefaultConfig(world.Start(), world.End()))
//	fmt.Println(report.ChangeSensitiveCount(), "change-sensitive blocks")
package diurnal

import (
	"context"
	"fmt"
	"time"

	"github.com/diurnalnet/diurnal/internal/core"
	"github.com/diurnalnet/diurnal/internal/dataset"
	"github.com/diurnalnet/diurnal/internal/events"
	"github.com/diurnalnet/diurnal/internal/geo"
	"github.com/diurnalnet/diurnal/internal/health"
	"github.com/diurnalnet/diurnal/internal/netsim"
	"github.com/diurnalnet/diurnal/internal/probe"
	"github.com/diurnalnet/diurnal/internal/reconstruct"
	"github.com/diurnalnet/diurnal/internal/shard"
	"github.com/diurnalnet/diurnal/internal/stream"
)

// Re-exported pipeline types. Aliases keep the full functionality of the
// internal implementation available through the public API.
type (
	// Config parameterizes the analysis pipeline (windows, thresholds,
	// CUSUM settings).
	Config = core.Config
	// BlockAnalysis is the per-block pipeline output: reconstruction,
	// classification, trend, and detected changes.
	BlockAnalysis = core.BlockAnalysis
	// Change is one detected activity change with wall-clock boundaries.
	Change = core.Change
	// Report aggregates a world-scale run: per-block outcomes, gridcell
	// statistics, and daily down/up counts.
	Report = core.WorldResult
	// Series is a reconstructed active-address count over time.
	Series = reconstruct.Series
	// Record is one probe observation (time, address, responded).
	Record = probe.Record
	// Calendar maps world regions to scheduled ground-truth events.
	Calendar = events.Calendar
	// CellKey identifies a 2×2° geographic gridcell.
	CellKey = geo.CellKey
	// Continent is the coarse aggregation level of Figure 8.
	Continent = geo.Continent
	// Block is one simulated /24 network.
	Block = netsim.Block
	// Observer is a probing site.
	Observer = probe.Observer
	// Engine drives multi-observer probing of a block.
	Engine = probe.Engine
	// ProfileKind tells workplace-schedule blocks from home-schedule ones
	// (the paper's §2.6 future work, via BlockAnalysis.Profile).
	ProfileKind = core.ProfileKind
)

// Profile kinds, re-exported for callers of BlockAnalysis.Profile.
const (
	ProfileUnknown   = core.ProfileUnknown
	ProfileWorkplace = core.ProfileWorkplace
	ProfileHome      = core.ProfileHome
	ProfileMixed     = core.ProfileMixed
)

// DefaultConfig returns the paper's analysis configuration for a window.
func DefaultConfig(start, end int64) Config { return core.DefaultConfig(start, end) }

// Calendar2020 returns the 2020h1 ground-truth calendar (Covid WFH wave,
// Spring Festival, holidays, curfews).
func Calendar2020() *Calendar { return events.Year2020() }

// Calendar2023 returns the 2023q1 control calendar (Spring Festival only).
func Calendar2023() *Calendar { return events.Year2023() }

// Date returns the Unix timestamp of midnight UTC on the given date.
func Date(year, month, day int) int64 {
	return netsim.Date(year, time.Month(month), day)
}

// SecondsPerDay is the length of a UTC day in seconds.
const SecondsPerDay = netsim.SecondsPerDay

// WorldOptions configures a synthetic world.
type WorldOptions struct {
	// Blocks is the number of /24 networks to simulate.
	Blocks int
	// Seed makes the world deterministic.
	Seed uint64
	// Calendar schedules ground-truth events (nil for a quiet world).
	Calendar *Calendar
	// Start and End bound the simulation window (Unix seconds, UTC).
	Start, End int64
	// Observers is the number of probing sites (1–6, default 4).
	Observers int
	// DisableNoise turns off random background outages and renumbering.
	DisableNoise bool
}

// World is a simulated Internet with its probing infrastructure.
type World struct {
	blocks []*dataset.WorldBlock
	engine *probe.Engine
	opts   WorldOptions
}

// NewWorld builds a deterministic synthetic world.
func NewWorld(opts WorldOptions) (*World, error) {
	if opts.Observers == 0 {
		opts.Observers = 4
	}
	if opts.Observers < 1 || opts.Observers > 6 {
		return nil, fmt.Errorf("diurnal: Observers must be 1..6, got %d", opts.Observers)
	}
	wo := dataset.WorldOpts{
		Blocks:   opts.Blocks,
		Seed:     opts.Seed,
		Calendar: opts.Calendar,
		Start:    opts.Start,
		End:      opts.End,
	}
	if opts.DisableNoise {
		wo.OutageProb = -1
		wo.RenumberProb = -1
	}
	blocks, err := dataset.BuildWorld(wo)
	if err != nil {
		return nil, err
	}
	return &World{
		blocks: blocks,
		engine: &probe.Engine{
			Observers:   probe.StandardObservers(opts.Observers),
			QuarterSeed: netsim.Hash64(opts.Seed, 0x5eed),
		},
		opts: opts,
	}, nil
}

// Start returns the world's window start.
func (w *World) Start() int64 { return w.opts.Start }

// End returns the world's window end.
func (w *World) End() int64 { return w.opts.End }

// Size returns the number of simulated blocks.
func (w *World) Size() int { return len(w.blocks) }

// Engine exposes the world's probing engine for advanced use.
func (w *World) Engine() *Engine { return w.engine }

// BlockAt returns the i-th simulated block with its region code and
// gridcell.
func (w *World) BlockAt(i int) (b *Block, region string, cell CellKey) {
	wb := w.blocks[i]
	return wb.Block, wb.Place.Region.Code, wb.Place.Cell
}

// BlocksInRegion returns the indices of blocks placed in the region code.
func (w *World) BlocksInRegion(code string) []int {
	var out []int
	for i, wb := range w.blocks {
		if wb.Place.Region.Code == code {
			out = append(out, i)
		}
	}
	return out
}

// RunOptions tunes a crash-safe world run. The zero value matches the
// plain Run behavior: no checkpointing, no per-block deadline, default
// transient-error retries.
type RunOptions struct {
	// Workers bounds analysis parallelism (default GOMAXPROCS). Each
	// worker analyzes its blocks in small batches so their classification
	// FFTs run as one columnar pass per batch; results are identical at
	// any worker count.
	Workers int
	// CheckpointPath, when non-empty, journals completed blocks to this
	// file; rerunning with the same path resumes after a crash, skipping
	// every journaled block. The journal is bound to the (config, world)
	// pair and refuses to resume a different run.
	CheckpointPath string
	// BlockTimeout bounds one block's probe-and-analyze attempt (zero
	// disables per-block deadlines).
	BlockTimeout time.Duration
	// MaxRetries caps extra attempts after a transient collection
	// failure: zero means the default of 2, negative disables retries.
	MaxRetries int
	// Breaker enables the runtime observer supervisor: a pre-scan health
	// check (§2.7) seeds per-observer circuit breakers, observers whose
	// reply rate collapses mid-run are excluded until they recover, and
	// every state change is recorded in Report.Report.BreakerTransitions.
	Breaker bool
	// Hedge enables straggler detection: blocks exceeding an adaptive
	// latency deadline are re-dispatched and the first completion wins,
	// bounding tail latency without changing any result.
	Hedge bool
	// Quorum, when positive, flags blocks analyzed with records from
	// fewer than this many observers (Report.Report.QuorumShortfalls);
	// such a run reports Degraded.
	Quorum int
	// DeadLetterPath, when non-empty, quarantines poison blocks into this
	// directory: a block whose analysis fails permanently (deterministic
	// panic, blown deadline, corrupt archive record) is recorded there
	// with its fault context and skipped — never re-analyzed — by every
	// later run sharing the directory. Skips and give-ups are listed in
	// Report.Report.DeadLettered, and such a run reports Degraded.
	DeadLetterPath string
	// Integrity enables the data-integrity firewall: per-observer
	// per-block sanity gates exclude untrustworthy streams from the
	// merge, contested observations among the survivors resolve by
	// observer majority, and gated streams are attributed in
	// Report.Report.GatedStreams/IntegrityVerdicts (such a run reports
	// Degraded). Off, results are bit-identical to prior releases.
	Integrity bool
}

// Run probes and analyzes the whole world under cfg.
func (w *World) Run(cfg Config) (*Report, error) {
	return w.RunContext(context.Background(), cfg, RunOptions{})
}

// RunContext is Run with cancellation and crash-safety options. When ctx
// is canceled the partial result is returned with ctx's error; if a
// checkpoint path is set, the finished blocks are already journaled and a
// later RunContext with the same path resumes where this one stopped.
func (w *World) RunContext(ctx context.Context, cfg Config, opts RunOptions) (*Report, error) {
	p := &core.Pipeline{
		Config:       cfg,
		Engine:       w.engine,
		Workers:      opts.Workers,
		BlockTimeout: opts.BlockTimeout,
		MaxRetries:   opts.MaxRetries,
		Quorum:       opts.Quorum,
	}
	if opts.Integrity {
		p.Config.Integrity = true
	}
	if opts.Breaker {
		b := health.DefaultBreaker()
		p.Breaker = &b
		p.ExcludeSuspects = true
	}
	if opts.Hedge {
		h := health.DefaultHedge()
		p.Hedge = &h
	}
	if opts.CheckpointPath != "" {
		cp, err := core.OpenCheckpoint(opts.CheckpointPath)
		if err != nil {
			return nil, err
		}
		defer cp.Close()
		p.Checkpoint = cp
	}
	if opts.DeadLetterPath != "" {
		dl, err := shard.OpenDeadLetters(opts.DeadLetterPath)
		if err != nil {
			return nil, err
		}
		p.DeadLetter = dl
	}
	return p.Run(ctx, w.blocks)
}

// Sharded runs: several worker processes share one world through a
// durable file-based ledger (internal/shard). Each worker claims
// block-range shards under time-bounded leases with monotonic fencing
// tokens; a crashed or stalled worker's shard is taken over after lease
// expiry, inheriting its journaled progress. MergeShards stitches every
// shard's journals into one Report and audits the result.
type (
	// ShardReport summarizes one shard worker's run.
	ShardReport = shard.Report
	// ShardAudit is the cross-shard integrity audit produced by
	// MergeShards; the result is trustworthy only when Clean reports true.
	ShardAudit = shard.Audit
)

// ShardOptions configures a sharded world run.
type ShardOptions struct {
	// Dir is the shard ledger directory, shared by all workers of the run.
	Dir string
	// Shards, when positive, creates the ledger with this many block-range
	// shards (or validates an existing one against it). Zero opens an
	// existing ledger.
	Shards int
	// WorkerID names this worker in leases, completion markers, and dead
	// letters (default "worker-<pid>").
	WorkerID string
	// LeaseTTL is the shard lease duration (default 30s): a worker that
	// stops renewing for this long loses its shard to another worker.
	LeaseTTL time.Duration
	// BlockTimeout and MaxRetries tune the per-shard pipeline exactly as
	// in RunOptions.
	BlockTimeout time.Duration
	MaxRetries   int
}

// RunShardWorker drains the ledger as one worker: it claims shards until
// every shard is complete, journaling per-block progress and
// quarantining poison blocks into the ledger's dead-letter store. Run one
// process per worker against the same Dir; any of them (or a later
// process) can then MergeShards.
func (w *World) RunShardWorker(ctx context.Context, cfg Config, opts ShardOptions) (*ShardReport, error) {
	ledger, err := w.openLedger(cfg, opts)
	if err != nil {
		return nil, err
	}
	worker := &shard.Worker{
		ID:           opts.WorkerID,
		Ledger:       ledger,
		Config:       cfg,
		Engine:       w.engine,
		World:        w.blocks,
		BlockTimeout: opts.BlockTimeout,
		MaxRetries:   opts.MaxRetries,
	}
	return worker.Run(ctx)
}

// MergeShards stitches a sharded run's per-shard journals and dead-letter
// manifest into one Report and runs the cross-shard integrity audit. The
// Report is returned even when the audit fails, for inspection; trust it
// only when the audit is Clean.
func (w *World) MergeShards(cfg Config, dir string) (*Report, *ShardAudit, error) {
	ledger, err := w.openLedger(cfg, ShardOptions{Dir: dir})
	if err != nil {
		return nil, nil, err
	}
	return ledger.Merge(cfg, w.blocks)
}

// Signature returns the run signature binding cfg to this exact world:
// the digest every artifact of the run (checkpoints, shard ledgers,
// serve snapshots) carries so that readers can refuse data produced by a
// different world or configuration.
func (w *World) Signature(cfg Config) []byte {
	return core.RunSignature(cfg, w.blocks)
}

func (w *World) openLedger(cfg Config, opts ShardOptions) (*shard.Ledger, error) {
	sig := core.RunSignature(cfg, w.blocks)
	sopt := shard.Options{TTL: opts.LeaseTTL}
	if opts.Shards > 0 {
		return shard.Create(opts.Dir, sig, len(w.blocks), opts.Shards, sopt)
	}
	return shard.Open(opts.Dir, sig, sopt)
}

// Streaming runs: instead of analyzing the window retrospectively, a
// daemon ingests probe rounds incrementally and emits change events with
// bounded latency as the data frontier advances. Every round is made
// durable in a write-ahead log before admission and every event is
// journaled before delivery, so a killed daemon resumes — by
// deterministic replay — to the exact detector state and event sequence
// it would have had uninterrupted.
type (
	// StreamEvent is one change detection emitted by a streaming run,
	// exactly once, with a contiguous sequence number.
	StreamEvent = stream.Event
	// StreamStats snapshots streaming-daemon health.
	StreamStats = stream.Stats
)

// StreamOptions configures a crash-safe streaming run.
type StreamOptions struct {
	// Dir is the daemon's durable state directory (round and event WALs).
	// Rerunning with the same Dir resumes after a crash; the WALs are
	// bound to the (config, world) pair and refuse a different run.
	Dir string
	// RoundLen is the seconds of data per ingested round (default one
	// day; must be a multiple of 3600).
	RoundLen int64
	// RefreshEvery runs a trend refresh every N rounds (default 1).
	RefreshEvery int
	// ConfirmRefreshes is how many consecutive refreshes a candidate
	// change must survive before it is emitted (default 2). Together with
	// RefreshEvery it bounds detection latency.
	ConfirmRefreshes int
	// MaxQueue bounds admitted-but-unprocessed rounds; ingestion blocks
	// (bounded admission) when the analysis loop falls this far behind
	// (default 64).
	MaxQueue int
	// Watchdog, when positive, restarts the analysis loop if one step
	// wedges for this long; state is rebuilt by WAL replay.
	Watchdog time.Duration
	// SegmentBytes rotates WAL segments at roughly this size (default
	// 8 MiB; minimum 4096). Smaller segments bound the unit of
	// compaction and orphan recovery.
	SegmentBytes int64
	// CompactBytes, when positive, compacts a WAL down to a
	// checkpoint-anchored base segment whenever its total size exceeds
	// this many bytes. Zero never compacts on size.
	CompactBytes int64
	// DiskBudget, when positive, caps the daemon directory's total
	// bytes. A round whose append would exceed the budget (after an
	// emergency compaction) is shed with ErrStreamDiskPressure instead
	// of being admitted.
	DiskBudget int64
	// OnEvent, when non-nil, receives each event right after it is
	// journaled, in sequence order.
	OnEvent func(StreamEvent)
}

// ErrStreamDiskPressure marks a streaming round shed because the
// daemon's disk budget is exhausted; classify with errors.Is.
var ErrStreamDiskPressure = stream.ErrDiskPressure

// RunStream probes and analyzes the world as a stream. It feeds every
// round of the analysis window through a durable ingestion daemon rooted
// at opts.Dir and returns the final world report (identical to a batch
// Run of the same world) plus the complete journaled event log. When ctx
// is canceled mid-stream the daemon drains the rounds already admitted,
// shuts down cleanly, and returns the events journaled so far with ctx's
// error; a later RunStream with the same Dir resumes where it stopped.
func (w *World) RunStream(ctx context.Context, cfg Config, opts StreamOptions) (*Report, []StreamEvent, error) {
	scfg := stream.Config{
		Core:             cfg,
		RoundLen:         opts.RoundLen,
		RefreshEvery:     opts.RefreshEvery,
		ConfirmRefreshes: opts.ConfirmRefreshes,
		MaxQueue:         opts.MaxQueue,
		Watchdog:         opts.Watchdog,
		SegmentBytes:     opts.SegmentBytes,
		CompactBytes:     opts.CompactBytes,
		DiskBudget:       opts.DiskBudget,
		OnEvent:          opts.OnEvent,
	}
	d, err := stream.Open(opts.Dir, w.blocks, len(w.engine.Observers), scfg)
	if err != nil {
		return nil, nil, err
	}
	f, err := stream.NewFeeder(ctx, w.engine, w.blocks, scfg)
	if err != nil {
		d.Close()
		return nil, nil, err
	}
	d.Start()
	if err := f.Feed(ctx, d); err != nil {
		// Graceful drain on cancellation: everything admitted is
		// processed and journaled before shutdown, so nothing is lost.
		drainErr := d.Drain(context.Background())
		evs := d.Events()
		if cerr := d.Close(); drainErr == nil {
			drainErr = cerr
		}
		if drainErr != nil {
			// The drain itself failed, so the journal may be behind the
			// admitted rounds; that failure outranks the cancellation and
			// callers must not treat the shutdown as clean.
			return nil, evs, fmt.Errorf("diurnal: draining stream after %v: %w", err, drainErr)
		}
		return nil, evs, err
	}
	if err := d.Drain(ctx); err != nil {
		evs := d.Events()
		d.Close()
		return nil, evs, err
	}
	res, err := d.Result()
	if err != nil {
		d.Close()
		return nil, d.Events(), err
	}
	evs := d.Events()
	if err := d.Close(); err != nil {
		return res, evs, err
	}
	return res, evs, nil
}

// AnalyzeBlock runs the pipeline on a single simulated block.
func AnalyzeBlock(cfg Config, eng *Engine, b *Block) (*BlockAnalysis, error) {
	return cfg.AnalyzeBlock(eng, b)
}

// AnalyzeRecords enters the pipeline with raw per-observer probe records
// and the block's ever-active target list.
func AnalyzeRecords(cfg Config, perObserver [][]Record, everActive []int) (*BlockAnalysis, error) {
	return cfg.AnalyzeRecords(perObserver, everActive)
}

// AnalyzeSeries enters the pipeline with an already reconstructed
// active-address series (times in Unix seconds, counts of active
// addresses).
func AnalyzeSeries(cfg Config, times []int64, counts []float64) (*BlockAnalysis, error) {
	if len(times) != len(counts) {
		return nil, fmt.Errorf("diurnal: %d times but %d counts", len(times), len(counts))
	}
	s := &reconstruct.Series{Times: times, Counts: counts}
	return cfg.AnalyzeSeries(s)
}
