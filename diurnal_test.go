package diurnal

import (
	"math"
	"testing"

	"github.com/diurnalnet/diurnal/internal/changepoint"
	"github.com/diurnalnet/diurnal/internal/dataset"
	"github.com/diurnalnet/diurnal/internal/events"
	"github.com/diurnalnet/diurnal/internal/netsim"
	"github.com/diurnalnet/diurnal/internal/probe"
)

func TestDateHelper(t *testing.T) {
	if Date(1970, 1, 1) != 0 {
		t.Fatal("epoch date wrong")
	}
	if Date(2020, 3, 15) != netsim.Date(2020, 3, 15) {
		t.Fatal("Date mismatch with internal helper")
	}
}

func TestNewWorldValidation(t *testing.T) {
	if _, err := NewWorld(WorldOptions{Blocks: 10, Observers: 9, Start: 0, End: 1}); err == nil {
		t.Error("expected error for 9 observers")
	}
	if _, err := NewWorld(WorldOptions{Blocks: 0, Start: 0, End: 1}); err == nil {
		t.Error("expected error for 0 blocks")
	}
}

func TestWorldAccessors(t *testing.T) {
	w, err := NewWorld(WorldOptions{
		Blocks: 50, Seed: 2, Calendar: Calendar2020(),
		Start: Date(2020, 1, 1), End: Date(2020, 1, 29),
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Size() < 45 || w.Size() > 55 {
		t.Fatalf("size = %d", w.Size())
	}
	if w.Start() != Date(2020, 1, 1) || w.End() != Date(2020, 1, 29) {
		t.Fatal("window accessors wrong")
	}
	if w.Engine() == nil {
		t.Fatal("engine missing")
	}
	b, region, cell := w.BlockAt(0)
	if b == nil || region == "" {
		t.Fatalf("BlockAt(0) = %v %q %v", b, region, cell)
	}
	found := false
	for _, code := range []string{"CN", "EU-W", "US-E"} {
		if len(w.BlocksInRegion(code)) > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("no blocks in any major region")
	}
}

func TestEndToEndWFHWorld(t *testing.T) {
	start, end := Date(2020, 1, 1), Date(2020, 3, 25)
	w, err := NewWorld(WorldOptions{
		Blocks: 80, Seed: 3, Calendar: Calendar2020(),
		Start: start, End: end, DisableNoise: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(start, end)
	cfg.BaselineEnd = Date(2020, 1, 29)
	cfg.BaselineStart = start
	report, err := w.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if report.ChangeSensitiveCount() == 0 {
		t.Fatal("no change-sensitive blocks")
	}
	// Mid-March should show downward changes somewhere in the world.
	startDay := start / SecondsPerDay
	endDay := end / SecondsPerDay
	total := 0.0
	for _, c := range []Continent{0, 1, 2, 3, 4, 5} {
		for _, v := range report.ContinentFractionSeries(c, startDay, endDay) {
			total += v
		}
	}
	if total == 0 {
		t.Fatal("Covid world shows no downward changes")
	}
}

func TestAnalyzeSeriesBYOData(t *testing.T) {
	// A caller brings hourly counts: 20 active by day, 4 by night, with
	// the swing disappearing at mid-window.
	start := Date(2020, 1, 1)
	end := Date(2020, 3, 1)
	var times []int64
	var counts []float64
	cut := Date(2020, 2, 3)
	for ts := start; ts < end; ts += 3600 {
		sod := ts % SecondsPerDay
		v := 4.0
		if ts < cut && sod >= 9*3600 && sod < 17*3600 && netsim.Weekday(ts) >= 1 && netsim.Weekday(ts) <= 5 {
			v = 20
		}
		times = append(times, ts)
		counts = append(counts, v)
	}
	cfg := DefaultConfig(start, end)
	cfg.BaselineStart, cfg.BaselineEnd = start, cut
	a, err := AnalyzeSeries(cfg, times, counts)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Class.ChangeSensitive {
		t.Fatalf("BYO series not change-sensitive: %+v", a.Class)
	}
	matched := false
	for _, c := range a.DownChanges() {
		if events.MatchWithin(c.Point, cut, events.MatchWindowDays) {
			matched = true
		}
	}
	if !matched {
		t.Fatalf("change at %s not found: %+v",
			"2020-02-03", a.Changes)
	}
}

func TestAnalyzeSeriesLengthMismatch(t *testing.T) {
	if _, err := AnalyzeSeries(DefaultConfig(0, 86400*7), []int64{1}, nil); err == nil {
		t.Fatal("expected length mismatch error")
	}
}

func TestCalendars(t *testing.T) {
	if Calendar2020().Label != "2020h1" || Calendar2023().Label != "2023q1" {
		t.Fatal("calendar labels wrong")
	}
}

func TestDownChangesFilter(t *testing.T) {
	a := &BlockAnalysis{Changes: []Change{
		{Dir: changepoint.Down}, {Dir: changepoint.Up}, {Dir: changepoint.Down},
	}}
	if got := len(a.DownChanges()); got != 2 {
		t.Fatalf("DownChanges = %d, want 2", got)
	}
}

func TestReportFractionsBounded(t *testing.T) {
	start, end := Date(2020, 1, 1), Date(2020, 2, 12)
	w, err := NewWorld(WorldOptions{Blocks: 40, Seed: 5, Start: start, End: end})
	if err != nil {
		t.Fatal(err)
	}
	report, err := w.Run(DefaultConfig(start, end))
	if err != nil {
		t.Fatal(err)
	}
	for cell := range report.CellCS {
		for _, v := range report.CellFractionSeries(cell, changepoint.Down, start/SecondsPerDay, end/SecondsPerDay) {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("fraction %g out of range", v)
			}
		}
	}
}

func TestAnalyzeRecordsFacade(t *testing.T) {
	// Drive the record-level entry point through the facade: simulate a
	// block, collect raw records, analyze them, and match AnalyzeBlock.
	start, end := Date(2020, 1, 1), Date(2020, 2, 26)
	b, err := netsim.NewBlock(77, 4242, netsim.Spec{Workers: 60, AlwaysOn: 6})
	if err != nil {
		t.Fatal(err)
	}
	b.AddEvent(netsim.Event{Kind: netsim.EventWFH, Start: Date(2020, 2, 3), Adoption: 0.9})
	eng := &Engine{Observers: probe.StandardObservers(4), QuarterSeed: 5}
	perObs, err := eng.Collect(b, start, end)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(start, end)
	cfg.BaselineStart, cfg.BaselineEnd = start, Date(2020, 1, 29)
	fromRecords, err := AnalyzeRecords(cfg, perObs, b.EverActive())
	if err != nil {
		t.Fatal(err)
	}
	fromBlock, err := AnalyzeBlock(cfg, eng, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromRecords.Changes) != len(fromBlock.Changes) {
		t.Fatalf("records path found %d changes, block path %d",
			len(fromRecords.Changes), len(fromBlock.Changes))
	}
	if !fromRecords.Class.ChangeSensitive {
		t.Fatal("block should be change-sensitive")
	}
	found := false
	for _, c := range fromRecords.DownChanges() {
		if events.MatchWithin(c.Point, Date(2020, 2, 3), events.MatchWindowDays) {
			found = true
		}
	}
	if !found {
		t.Fatalf("WFH not detected via records path: %+v", fromRecords.Changes)
	}
}

func TestStoreReplayThroughFacade(t *testing.T) {
	// Archive observations with the dataset store, then analyze a block
	// from the archive without re-simulating.
	dir := t.TempDir()
	spec := dataset.Spec{Name: "replay", Start: Date(2020, 1, 1), Weeks: 4, Sites: []string{"e", "j"}}
	world, err := dataset.BuildWorld(dataset.WorldOpts{
		Blocks: 10, Seed: 33, Start: spec.Start, End: spec.End(),
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := dataset.EngineFor(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	store, err := dataset.CreateStore(dir, spec, eng, world)
	if err != nil {
		t.Fatal(err)
	}
	_, start, end, _, blocks, err := store.Index()
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) == 0 {
		t.Fatal("empty store")
	}
	perObs, eb, err := store.LoadBlock(blocks[0])
	if err != nil {
		t.Fatal(err)
	}
	a, err := AnalyzeRecords(DefaultConfig(start, end), perObs, eb)
	if err != nil {
		t.Fatal(err)
	}
	if a.Series.Len() == 0 {
		t.Fatal("replayed block reconstructed nothing")
	}
}

func TestReportPeakDayFacade(t *testing.T) {
	start, end := Date(2020, 1, 1), Date(2020, 2, 12)
	w, err := NewWorld(WorldOptions{Blocks: 50, Seed: 8, Start: start, End: end, Calendar: Calendar2020()})
	if err != nil {
		t.Fatal(err)
	}
	report, err := w.Run(DefaultConfig(start, end))
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range report.TopCells(3) {
		day, frac, ok := report.PeakDay(cell)
		if ok && (frac <= 0 || frac > 1 || day <= 0) {
			t.Fatalf("bad peak for %v: %d %g", cell, day, frac)
		}
	}
}
