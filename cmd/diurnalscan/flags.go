package main

// Flag-combination validation, separated from main so the exit-2 matrix
// is testable: contradictory invocations must be rejected before any
// work starts, as usage errors rather than mid-run surprises.

import (
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// cliFlags carries every flag value that participates in combination
// validation, plus the set of flags explicitly present on the command
// line (a default value and an explicit one validate differently).
type cliFlags struct {
	workers        int
	quorum         int
	breaker, hedge bool
	integrity      bool
	resumePath     string
	deadLetterDir  string
	saveDir        string
	verifyDir      string

	workerDir string
	shards    int
	lease     time.Duration

	mergeDir string

	daemonDir    string
	roundLen     time.Duration
	refreshEvery int
	confirm      int
	maxQueue     int
	watchdog     time.Duration
	walSeg       int64
	walCompact   int64
	diskBudget   int64

	serveAddr   string
	snapshotDir string
	inflight    int
	reqTimeout  time.Duration
	retain      int
	serveBudget int64

	set map[string]bool
}

func (f *cliFlags) validate() error {
	if f.workers < 0 {
		return fmt.Errorf("-workers must be >= 0 (got %d)", f.workers)
	}
	if f.quorum < 0 {
		return fmt.Errorf("-quorum must be >= 0 (got %d)", f.quorum)
	}
	if f.hedge && !f.breaker {
		return fmt.Errorf("-hedge requires -breaker: the breaker pre-scan seeds the straggler deadline model")
	}
	if f.resumePath != "" {
		if dir := filepath.Dir(f.resumePath); dir != "." {
			if _, err := os.Stat(dir); err != nil {
				return fmt.Errorf("-resume %s: directory %s does not exist", f.resumePath, dir)
			}
		}
	}
	if f.shards < 0 {
		return fmt.Errorf("-shards must be >= 0 (got %d)", f.shards)
	}
	if f.workerDir != "" && f.mergeDir != "" {
		return fmt.Errorf("-worker and -merge are mutually exclusive: drain the ledger first, then merge it")
	}
	if f.daemonDir != "" {
		if f.workerDir != "" || f.mergeDir != "" {
			return fmt.Errorf("-daemon and -worker/-merge are mutually exclusive: the daemon is a single-process stream over its own WAL")
		}
		if f.resumePath != "" {
			return fmt.Errorf("-resume does not combine with -daemon: the daemon journals rounds and events in its own WAL under the -daemon directory")
		}
		for _, name := range []string{"breaker", "hedge", "quorum", "deadletter", "save"} {
			if f.set[name] {
				return fmt.Errorf("-%s does not apply to -daemon runs", name)
			}
		}
		if f.roundLen <= 0 || f.roundLen%time.Hour != 0 {
			return fmt.Errorf("-roundlen must be a positive multiple of 1h (got %s)", f.roundLen)
		}
		if f.refreshEvery < 1 || f.confirm < 1 || f.maxQueue < 1 {
			return fmt.Errorf("-refresh, -confirm and -maxqueue must be >= 1")
		}
		if f.set["watchdog"] && f.watchdog <= 0 {
			return fmt.Errorf("-watchdog must be positive (got %s)", f.watchdog)
		}
		if f.set["walseg"] && f.walSeg < 4096 {
			return fmt.Errorf("-walseg must be >= 4096 bytes (got %d)", f.walSeg)
		}
		if f.set["walcompact"] && f.walCompact <= 0 {
			return fmt.Errorf("-walcompact must be positive (got %d)", f.walCompact)
		}
		if f.set["diskbudget"] && f.diskBudget <= 0 {
			return fmt.Errorf("-diskbudget must be positive (got %d)", f.diskBudget)
		}
	} else {
		for _, name := range []string{"roundlen", "refresh", "confirm", "maxqueue", "watchdog", "walseg", "walcompact", "diskbudget"} {
			if f.set[name] {
				return fmt.Errorf("-%s only applies to streaming runs (use -daemon DIR)", name)
			}
		}
	}
	sharded := f.workerDir != "" || f.mergeDir != ""
	if sharded && f.integrity {
		return fmt.Errorf("-integrity does not combine with -worker/-merge: sharded runs do not thread the firewall yet")
	}
	if !sharded {
		for _, name := range []string{"shards", "workerid", "lease"} {
			if f.set[name] {
				return fmt.Errorf("-%s only applies to sharded runs (use -worker DIR)", name)
			}
		}
	}
	if sharded && f.resumePath != "" {
		return fmt.Errorf("-resume does not combine with -worker/-merge: sharded runs journal inside the ledger")
	}
	if sharded && f.deadLetterDir != "" {
		return fmt.Errorf("-deadletter does not combine with -worker/-merge: the ledger has its own quarantine")
	}
	if f.mergeDir != "" {
		for _, name := range []string{"shards", "workerid", "lease", "timeout", "save"} {
			if f.set[name] {
				return fmt.Errorf("-%s does not apply to -merge", name)
			}
		}
	}
	if f.set["lease"] && f.lease <= 0 {
		return fmt.Errorf("-lease must be positive (got %s)", f.lease)
	}
	if f.serveAddr != "" {
		if f.snapshotDir == "" {
			return fmt.Errorf("-serve requires -snapshot DIR: the server needs a snapshot directory to load from and quarantine into")
		}
		for _, name := range []string{"daemon", "worker", "merge", "verify", "resume", "save", "report", "deadletter", "breaker", "hedge", "quorum", "integrity"} {
			if f.set[name] {
				return fmt.Errorf("-%s does not combine with -serve: the server answers from a published snapshot, not a live run", name)
			}
		}
		if f.set["inflight"] && f.inflight < 1 {
			return fmt.Errorf("-inflight must be >= 1 (got %d)", f.inflight)
		}
		if f.set["reqtimeout"] && f.reqTimeout <= 0 {
			return fmt.Errorf("-reqtimeout must be positive (got %s)", f.reqTimeout)
		}
		if f.set["retain"] && f.retain < 1 {
			return fmt.Errorf("-retain must keep at least 1 snapshot (got %d)", f.retain)
		}
		if f.set["servebudget"] && f.serveBudget <= 0 {
			return fmt.Errorf("-servebudget must be positive (got %d)", f.serveBudget)
		}
	} else {
		for _, name := range []string{"snapshot", "inflight", "reqtimeout", "retain", "servebudget"} {
			if f.set[name] {
				return fmt.Errorf("-%s only applies to serving runs (use -serve ADDR)", name)
			}
		}
	}
	if f.verifyDir != "" {
		for _, name := range []string{"worker", "merge", "shards", "resume", "deadletter", "save", "report", "daemon", "integrity"} {
			if f.set[name] {
				return fmt.Errorf("-verify checks an archived store and exits; -%s does not combine with it", name)
			}
		}
	}
	return nil
}
