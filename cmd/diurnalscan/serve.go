package main

// The -serve mode: publish a finished run as a columnar snapshot and
// answer result queries over HTTP through the overload-hardened serving
// plane (internal/serve). The lifecycle is deliberately boring:
//
//  1. load the newest valid snapshot under -snapshot DIR (torn or
//     foreign files are quarantined, never served);
//  2. if the directory has none, run the configured world once and
//     write the snapshot it should serve — a cold-started server is a
//     batch run plus an atomic publish;
//  3. serve until SIGTERM/SIGINT, then drain in-flight requests through
//     http.Server.Shutdown and exit 0;
//  4. SIGHUP re-runs LoadLatest, so an external writer can publish a
//     fresh snapshot and hot-swap it under live traffic.
//
// Exit 5 (exitSnapshotFailed) means the server never had a snapshot to
// serve: nothing loadable on disk and the bootstrap run or publish
// failed. Serving plain 503s forever would look healthy to a
// load-balancer while answering nothing.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/diurnalnet/diurnal"
	"github.com/diurnalnet/diurnal/internal/serve"
)

// exitSnapshotFailed is the -serve exit code when no valid snapshot
// could be loaded or built: the server has nothing to answer from.
const exitSnapshotFailed = 5

// serveOptions carries the -serve flag values.
type serveOptions struct {
	Addr       string
	Dir        string
	Inflight   int
	ReqTimeout time.Duration
	Retain     int
	DiskBudget int64

	// ready, when non-nil, receives the bound listen address once the
	// server is accepting (tests bind :0 and need the real port).
	ready chan<- net.Addr
}

// runServe owns the whole -serve lifecycle and returns the process exit
// code. ctx is the signal context from main: its cancellation (SIGTERM,
// SIGINT, -timeout) starts the graceful drain.
func runServe(ctx context.Context, world *diurnal.World, cfg diurnal.Config, opts serveOptions) int {
	sig := world.Signature(cfg)
	s := serve.New(serve.Config{
		Dir:             opts.Dir,
		MaxInflight:     opts.Inflight,
		QueryTimeout:    opts.ReqTimeout,
		ExpectSignature: sig,
		Retain:          opts.Retain,
		DiskBudget:      opts.DiskBudget,
	})
	defer s.Close()

	if path, err := s.LoadLatest(); err == nil {
		id, _ := s.Current()
		fmt.Printf("serving snapshot %s (%s)\n", id, path)
	} else {
		fmt.Fprintf(os.Stderr, "no loadable snapshot under %s (%v); running the world to build one\n", opts.Dir, err)
		path, err := buildSnapshot(ctx, world, cfg, s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "building snapshot: %v\n", err)
			return exitSnapshotFailed
		}
		id, _ := s.Current()
		fmt.Printf("built and serving snapshot %s (%s)\n", id, path)
	}

	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	srv := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Printf("listening on %s\n", ln.Addr())
	if opts.ready != nil {
		opts.ready <- ln.Addr()
	}

	// SIGHUP = "a writer published a new snapshot, pick it up". The swap
	// is atomic under live traffic; a bad publish quarantines and the
	// server keeps answering from last-good.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)

	for {
		select {
		case <-hup:
			if path, err := s.LoadLatest(); err != nil {
				fmt.Fprintf(os.Stderr, "reload: %v (still serving last-good)\n", err)
			} else {
				id, _ := s.Current()
				fmt.Printf("reloaded snapshot %s (%s)\n", id, path)
			}
		case err := <-serveErr:
			// The listener died out from under us without a shutdown.
			fmt.Fprintln(os.Stderr, err)
			return 1
		case <-ctx.Done():
			// Graceful drain: stop accepting, let admitted requests
			// finish (bounded by their own deadlines plus slack), exit 0.
			sctx, cancel := context.WithTimeout(context.Background(), drainTimeout(opts.ReqTimeout))
			err := srv.Shutdown(sctx)
			cancel()
			<-serveErr // Serve has returned http.ErrServerClosed
			if err != nil {
				fmt.Fprintf(os.Stderr, "drain incomplete: %v\n", err)
				return 1
			}
			st := s.StatsNow()
			var shed uint64
			for _, n := range st.Admission.Shed {
				shed += n
			}
			fmt.Printf("drained and stopped: %d swaps, %d quarantined, %d cache hits, %d shed\n",
				st.Swaps, st.Quarantined, st.Cache.Hits+st.Cache.StaleHits, shed)
			return 0
		}
	}
}

// drainTimeout bounds the shutdown drain: every admitted request is
// already capped by the query deadline, so a small multiple of it plus
// scheduling slack is enough for a full drain.
func drainTimeout(reqTimeout time.Duration) time.Duration {
	if reqTimeout <= 0 {
		reqTimeout = 2 * time.Second
	}
	return 2*reqTimeout + time.Second
}

// buildSnapshot runs the world once and publishes the result through the
// server — so the bootstrap write honors the same retention and disk
// budget as any later publish, and the snapshot is installed atomically.
// Respects ctx so SIGTERM during the bootstrap run aborts cleanly.
func buildSnapshot(ctx context.Context, world *diurnal.World, cfg diurnal.Config, s *serve.Server) (string, error) {
	report, err := world.RunContext(ctx, cfg, diurnal.RunOptions{})
	if err != nil {
		if errors.Is(err, context.Canceled) {
			return "", fmt.Errorf("bootstrap run interrupted: %w", err)
		}
		return "", err
	}
	return s.Publish(report, world.Signature(cfg), world.Start(), world.End())
}
