// Command diurnalscan runs the full activity-inference pipeline over a
// simulated world and reports what it finds: per-gridcell change-sensitive
// populations and the days on which human activity dropped.
//
// Usage:
//
//	diurnalscan [-blocks N] [-seed S] [-observers K]
//	            [-start YYYY-MM-DD] [-end YYYY-MM-DD] [-calendar 2020|2023|none]
//	            [-cells N] [-days N] [-region CODE]
//	            [-resume FILE] [-timeout DUR] [-verify DIR] [-deadletter DIR]
//	            [-breaker] [-hedge] [-quorum N] [-integrity]
//	            [-worker DIR [-shards N] [-workerid ID] [-lease DUR]]
//	            [-merge DIR]
//	            [-daemon DIR [-roundlen DUR] [-refresh N] [-confirm N]
//	             [-maxqueue N] [-watchdog DUR] [-walseg BYTES]
//	             [-walcompact BYTES] [-diskbudget BYTES]]
//	            [-serve ADDR -snapshot DIR [-inflight N] [-reqtimeout DUR]
//	             [-retain N] [-servebudget BYTES]]
//
// Example: the first Covid quarter at moderate scale.
//
//	diurnalscan -blocks 2000 -start 2020-01-01 -end 2020-04-22
//
// Crash safety: with -resume FILE every finished block is journaled to
// FILE; a killed run (Ctrl-C, OOM, power) rerun with the same flags and
// the same -resume FILE picks up where it stopped and produces results
// identical to an uninterrupted run. -verify DIR runs an fsck-style
// integrity check over an archived dataset store and exits non-zero if
// any observation log is corrupt. -deadletter DIR quarantines poison
// blocks — deterministic panics, blown deadlines, corrupt records —
// into DIR with their fault context; later runs sharing DIR skip them
// instead of dying on them again.
//
// Self-healing: -breaker supervises the observers with runtime circuit
// breakers (seeded by the §2.7 pre-scan), -hedge re-dispatches straggler
// blocks past an adaptive latency deadline (requires -breaker, whose
// pre-scan seeds the deadline model), and -quorum N flags blocks
// analyzed with records from fewer than N observers.
//
// Data integrity: -integrity arms the data-integrity firewall against
// observers that lie rather than fail. Each observer's stream is judged
// per block against sanity gates (in-window timestamps, target-list
// membership, duplicate and reply-rate ceilings) and a cross-observer
// agreement score; a stream that trips a gate is excluded from that
// block's merge and attributed in the output, and contested
// observations among the surviving streams resolve by observer
// majority. Applies to plain and -daemon runs.
//
// Sharded runs: -worker DIR runs this process as one worker of a
// multi-process fleet sharing the shard ledger at DIR. The first worker
// passes -shards N to create the ledger (the world is partitioned into N
// contiguous block ranges); later workers omit it. Workers claim shards
// under -lease DUR leases with monotonic fencing tokens, so a worker
// that crashes or stalls loses its shard to a peer after the lease
// expires, and its late journal writes are rejected rather than
// duplicated. When every shard is done, -merge DIR (with the same world
// flags) stitches the per-shard journals into one report and runs a
// cross-shard integrity audit: frame checksums, no coverage gaps, no
// conflicting duplicates, dead-letter manifest reconciliation.
//
// Streaming: -daemon DIR runs the window as a continuous-ingestion
// stream instead of a retrospective batch. Probe rounds are ingested
// incrementally (each -roundlen of data, default 24h), every round is
// made durable in a write-ahead log under DIR before admission, and
// change events are emitted with bounded latency — at most
// -confirm × -refresh rounds after a change is confirmed and stable —
// each journaled with a contiguous sequence number before it is printed.
// A killed daemon rerun with the same DIR and flags resumes by
// deterministic WAL replay to the exact detector state and event
// sequence; SIGTERM drains the admitted rounds, flushes the event WAL,
// and exits 0. -watchdog DUR restarts a wedged analysis step by the
// same replay. The final report is identical to a batch run of the same
// world.
//
// Storage governance: a daemon meant to run forever must not grow its
// disk without bound. -walseg rotates the round and event WALs into
// bounded segments, -walcompact folds a WAL down to a checkpoint-anchored
// base segment once it exceeds the given size (resume identity is
// preserved — replay after compaction reaches the same state and event
// sequence), and -diskbudget caps the daemon directory: a round whose
// append would exceed the budget is shed and the daemon exits 6 rather
// than filling the disk. On the serving side, -retain N keeps only the
// newest N snapshots after each install (in-use and quarantined files
// are never collected) and -servebudget refuses publishes that would
// push the snapshot directory past its byte cap.
//
// Serving: -serve ADDR publishes a finished run as a columnar snapshot
// under -snapshot DIR (running the configured world first if the
// directory has none) and answers result queries over HTTP with bounded
// admission, prioritized load shedding (503 + Retry-After), a
// stale-while-revalidate cache, and atomic snapshot hot-swaps — torn or
// foreign-run snapshots are quarantined, never served. SIGHUP reloads
// the newest published snapshot; SIGTERM drains in-flight requests and
// exits 0. -inflight and -reqtimeout tune the admission pool and the
// per-request deadline.
//
// Flag combinations are validated before any work starts; contradictory
// ones (-hedge without -breaker, -worker with -merge, -daemon with
// -resume, daemon tuning flags without -daemon, a negative -quorum,
// -resume into a directory that does not exist) exit 2 with a message
// instead of mis-running.
//
// Exit codes: 0 clean, 1 runtime error, 2 usage error, 3 when the run
// completed but in degraded mode — an observer breaker was still open at
// the end, blocks fell below the -quorum floor, or blocks were
// dead-lettered. Code 3 output is complete but should be treated as
// lower-confidence. -merge exits 4 when the integrity audit fails: the
// merged output is untrustworthy and the ledger should be inspected.
// -serve exits 5 when no snapshot could be loaded or built: the server
// has nothing to answer from, and serving bare 503s forever would look
// healthy to a load balancer while answering nothing. -daemon exits 6
// when the WAL directory hit its -diskbudget and a round was shed: the
// journal is consistent but the stream needs more disk to continue.
// -integrity runs exit 7 when the firewall gated at least one observer
// stream: the results exclude the untrusted data and name the gated
// observers, but the input was tampered with and deserves a look.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"github.com/diurnalnet/diurnal"
	"github.com/diurnalnet/diurnal/internal/changepoint"
	"github.com/diurnalnet/diurnal/internal/dataset"
	"github.com/diurnalnet/diurnal/internal/profiling"
	"github.com/diurnalnet/diurnal/internal/render"
)

func parseDate(s string) (int64, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return 0, err
	}
	return t.Unix(), nil
}

func main() {
	blocks := flag.Int("blocks", 1000, "number of /24 blocks to simulate")
	workers := flag.Int("workers", 0, "analysis worker goroutines (0 = GOMAXPROCS)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	observers := flag.Int("observers", 4, "probing sites (1-6)")
	startStr := flag.String("start", "2020-01-01", "window start (UTC)")
	endStr := flag.String("end", "2020-04-22", "window end (UTC)")
	calendar := flag.String("calendar", "2020", "event calendar: 2020, 2023 or none")
	topCells := flag.Int("cells", 10, "number of gridcells to report")
	topDays := flag.Int("days", 5, "number of peak days per gridcell")
	region := flag.String("region", "", "report only blocks of this region code (e.g. CN-WUH)")
	saveDir := flag.String("save", "", "also archive raw observations into this directory")
	reportPath := flag.String("report", "", "write a markdown report to this file")
	resumePath := flag.String("resume", "", "journal finished blocks to this file and resume from it after a crash")
	timeout := flag.Duration("timeout", 0, "abort the run after this long (e.g. 10m); finished blocks stay journaled with -resume")
	verifyDir := flag.String("verify", "", "fsck an archived dataset store at this directory and exit")
	breaker := flag.Bool("breaker", false, "supervise observers with runtime circuit breakers (implies the pre-scan health check)")
	hedge := flag.Bool("hedge", false, "re-dispatch straggler blocks past an adaptive latency deadline (requires -breaker)")
	quorum := flag.Int("quorum", 0, "flag blocks analyzed with fewer than this many observers (0 disables)")
	integrity := flag.Bool("integrity", false, "arm the data-integrity firewall: gate lying observer streams out of the merge and resolve contested observations by majority")
	deadLetterDir := flag.String("deadletter", "", "quarantine poison blocks into this directory and skip them on later runs")
	workerDir := flag.String("worker", "", "run as one worker of a sharded fleet sharing the ledger at this directory")
	shards := flag.Int("shards", 0, "with -worker: create the ledger with this many shards (0 opens an existing ledger)")
	workerID := flag.String("workerid", "", "with -worker: name this worker in leases and dead letters (default worker-<pid>)")
	lease := flag.Duration("lease", 0, "with -worker: shard lease duration (default 30s)")
	mergeDir := flag.String("merge", "", "merge a completed sharded run's ledger at this directory and audit it")
	daemonDir := flag.String("daemon", "", "stream the window through a crash-safe ingestion daemon rooted at this directory")
	roundLen := flag.Duration("roundlen", 24*time.Hour, "with -daemon: data per ingested round (multiple of 1h)")
	refreshEvery := flag.Int("refresh", 1, "with -daemon: run a trend refresh every N rounds")
	confirm := flag.Int("confirm", 2, "with -daemon: consecutive refreshes a change must survive before emission")
	maxQueue := flag.Int("maxqueue", 64, "with -daemon: admitted-but-unprocessed round bound (ingestion blocks beyond it)")
	watchdog := flag.Duration("watchdog", 0, "with -daemon: restart a wedged analysis step after this long (0 disables)")
	walSeg := flag.Int64("walseg", 0, "with -daemon: rotate WAL segments at this many bytes (default 8MiB)")
	walCompact := flag.Int64("walcompact", 0, "with -daemon: compact a WAL to its checkpoint base when it exceeds this many bytes (0 never)")
	diskBudget := flag.Int64("diskbudget", 0, "with -daemon: shed rounds when the daemon directory would exceed this many bytes (0 unlimited)")
	serveAddr := flag.String("serve", "", "serve result queries over HTTP at this address (requires -snapshot DIR)")
	snapshotDir := flag.String("snapshot", "", "with -serve: directory of columnar result snapshots (built from a run when empty)")
	inflight := flag.Int("inflight", 0, "with -serve: bound on admitted-but-unfinished requests (default 64)")
	reqTimeout := flag.Duration("reqtimeout", 0, "with -serve: per-request deadline propagated into snapshot reads (default 2s)")
	retain := flag.Int("retain", 0, "with -serve: keep only the newest N snapshots on disk after each install (0 keeps all)")
	serveBudget := flag.Int64("servebudget", 0, "with -serve: refuse snapshot publishes past this many directory bytes (0 unlimited)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the world run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile after the world run to this file")
	flag.Parse()

	// Reject contradictory flag combinations before any work starts: a
	// bad combination should be a usage error, not a mid-run surprise.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	cli := &cliFlags{
		workers:       *workers,
		quorum:        *quorum,
		breaker:       *breaker,
		hedge:         *hedge,
		integrity:     *integrity,
		resumePath:    *resumePath,
		deadLetterDir: *deadLetterDir,
		saveDir:       *saveDir,
		verifyDir:     *verifyDir,
		workerDir:     *workerDir,
		shards:        *shards,
		lease:         *lease,
		mergeDir:      *mergeDir,
		daemonDir:     *daemonDir,
		roundLen:      *roundLen,
		refreshEvery:  *refreshEvery,
		confirm:       *confirm,
		maxQueue:      *maxQueue,
		watchdog:      *watchdog,
		walSeg:        *walSeg,
		walCompact:    *walCompact,
		diskBudget:    *diskBudget,
		serveAddr:     *serveAddr,
		snapshotDir:   *snapshotDir,
		inflight:      *inflight,
		reqTimeout:    *reqTimeout,
		retain:        *retain,
		serveBudget:   *serveBudget,
		set:           set,
	}
	if err := cli.validate(); err != nil {
		fmt.Fprintf(os.Stderr, "diurnalscan: %v\nrun 'diurnalscan -h' for usage\n", err)
		os.Exit(2)
	}

	if *verifyDir != "" {
		os.Exit(verifyStore(*verifyDir))
	}

	start, err := parseDate(*startStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad -start: %v\n", err)
		os.Exit(2)
	}
	end, err := parseDate(*endStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad -end: %v\n", err)
		os.Exit(2)
	}
	var cal *diurnal.Calendar
	switch *calendar {
	case "2020":
		cal = diurnal.Calendar2020()
	case "2023":
		cal = diurnal.Calendar2023()
	case "none":
	default:
		fmt.Fprintf(os.Stderr, "bad -calendar %q\n", *calendar)
		os.Exit(2)
	}

	world, err := diurnal.NewWorld(diurnal.WorldOptions{
		Blocks:    *blocks,
		Seed:      *seed,
		Calendar:  cal,
		Start:     start,
		End:       end,
		Observers: *observers,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cfg := diurnal.DefaultConfig(start, end)
	cfg.Integrity = *integrity
	// Classify on the first four weeks, the paper's pre-Covid baseline.
	cfg.BaselineStart = start
	if end-start > 28*diurnal.SecondsPerDay {
		cfg.BaselineEnd = start + 28*diurnal.SecondsPerDay
	} else {
		cfg.BaselineEnd = end
	}
	// SIGINT/SIGTERM cancel the run instead of killing it mid-write; with
	// -resume, finished blocks are already journaled when we exit.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	began := time.Now()
	if *serveAddr != "" {
		code := runServe(ctx, world, cfg, serveOptions{
			Addr:       *serveAddr,
			Dir:        *snapshotDir,
			Inflight:   *inflight,
			ReqTimeout: *reqTimeout,
			Retain:     *retain,
			DiskBudget: *serveBudget,
		})
		if perr := stopProfiles(); perr != nil {
			fmt.Fprintln(os.Stderr, perr)
		}
		os.Exit(code)
	}
	if *workerDir != "" {
		code := runShardWorker(ctx, world, cfg, diurnal.ShardOptions{
			Dir:      *workerDir,
			Shards:   *shards,
			WorkerID: *workerID,
			LeaseTTL: *lease,
		}, began)
		if perr := stopProfiles(); perr != nil {
			fmt.Fprintln(os.Stderr, perr)
		}
		os.Exit(code)
	}
	var report *diurnal.Report
	if *daemonDir != "" {
		var events int
		report, events, err = runDaemon(ctx, world, cfg, diurnal.StreamOptions{
			Dir:              *daemonDir,
			RoundLen:         int64(*roundLen / time.Second),
			RefreshEvery:     *refreshEvery,
			ConfirmRefreshes: *confirm,
			MaxQueue:         *maxQueue,
			Watchdog:         *watchdog,
			SegmentBytes:     *walSeg,
			CompactBytes:     *walCompact,
			DiskBudget:       *diskBudget,
		})
		if perr := stopProfiles(); perr != nil {
			fmt.Fprintln(os.Stderr, perr)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			if errors.Is(err, diurnal.ErrStreamDiskPressure) {
				// The WAL directory hit its -diskbudget even after an
				// emergency compaction. Everything journaled so far is
				// durable and consistent; the stream simply cannot admit
				// more rounds on this much disk.
				fmt.Fprintf(os.Stderr, "daemon stopped at the disk budget; raise -diskbudget or free space under %s and rerun\n", *daemonDir)
				os.Exit(exitDiskPressure)
			}
			if errors.Is(err, context.Canceled) {
				// SIGTERM/SIGINT drain: admissions stopped, admitted
				// rounds processed, the event WAL flushed and the journal
				// consistent. That is a clean shutdown, not a failure —
				// anything else (drain error, deadline, I/O) stays exit 1.
				fmt.Fprintf(os.Stderr, "daemon drained and stopped; rerun with -daemon %s to continue the stream\n", *daemonDir)
				os.Exit(0)
			}
			os.Exit(1)
		}
		fmt.Printf("stream complete: %d change events journaled under %s\n\n", events, *daemonDir)
	} else if *mergeDir != "" {
		var audit *diurnal.ShardAudit
		report, audit, err = world.MergeShards(cfg, *mergeDir)
		if perr := stopProfiles(); perr != nil {
			fmt.Fprintln(os.Stderr, perr)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(audit)
		if !audit.Clean() {
			fmt.Fprintln(os.Stderr, "merge audit FAILED: the merged output is untrustworthy; inspect the ledger")
			os.Exit(exitAuditFailed)
		}
	} else {
		report, err = world.RunContext(ctx, cfg, diurnal.RunOptions{
			Workers:        *workers,
			CheckpointPath: *resumePath,
			Breaker:        *breaker,
			Hedge:          *hedge,
			Quorum:         *quorum,
			DeadLetterPath: *deadLetterDir,
			Integrity:      *integrity,
		})
		if perr := stopProfiles(); perr != nil {
			fmt.Fprintln(os.Stderr, perr)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			if *resumePath != "" && ctx.Err() != nil {
				fmt.Fprintf(os.Stderr, "run interrupted; rerun with -resume %s to continue\n", *resumePath)
			}
			os.Exit(1)
		}
	}
	if n := report.Report.ResumedBlocks; *resumePath != "" && n > 0 {
		fmt.Printf("resumed %d finished blocks from %s\n", n, *resumePath)
	}
	if n := len(report.Report.DeadLettered); n > 0 {
		fmt.Printf("skipped %d dead-lettered poison blocks (quarantined with fault context)\n", n)
	}
	if *saveDir != "" {
		if err := saveObservations(*saveDir, world, start, end); err != nil {
			fmt.Fprintln(os.Stderr, "saving observations:", err)
			os.Exit(1)
		}
		fmt.Printf("raw observations archived to %s\n", *saveDir)
	}
	if *reportPath != "" {
		if err := writeMarkdownReport(*reportPath, world, report, start, end); err != nil {
			fmt.Fprintln(os.Stderr, "writing report:", err)
			os.Exit(1)
		}
		fmt.Printf("markdown report written to %s\n", *reportPath)
	}

	responsive := 0
	for _, st := range report.Cells {
		responsive += st.Responsive
	}
	fmt.Printf("simulated %d /24 blocks over %s .. %s with %d observers (%.1fs)\n",
		world.Size(), *startStr, *endStr, *observers, time.Since(began).Seconds())
	fmt.Printf("responsive: %d   change-sensitive: %d   gridcells: %d\n\n",
		responsive, report.ChangeSensitiveCount(), len(report.Cells))
	if *breaker || *hedge || *quorum > 0 {
		printSupervisor(world, report, *quorum)
	}
	if *integrity {
		printIntegrity(world, report)
	}

	if *region != "" {
		reportRegion(world, report, *region)
		exitIfDegraded(report)
		return
	}

	mapValues := map[diurnal.CellKey]int{}
	for cell, n := range report.CellCS {
		mapValues[cell] = n
	}
	fmt.Println("change-sensitive blocks by gridcell:")
	fmt.Println(render.WorldMap(mapValues))

	fmt.Printf("top gridcells by change-sensitive blocks:\n")
	startDay := start / diurnal.SecondsPerDay
	endDay := end / diurnal.SecondsPerDay
	for _, cell := range report.TopCells(*topCells) {
		fmt.Printf("  %s — %d change-sensitive of %d responsive\n",
			cell, report.CellCS[cell], report.Cells[cell].Responsive)
		series := report.CellFractionSeries(cell, changepoint.Down, startDay, endDay)
		type dayFrac struct {
			day  int64
			frac float64
		}
		var peaks []dayFrac
		for i, v := range series {
			if v > 0 {
				peaks = append(peaks, dayFrac{startDay + int64(i), v})
			}
		}
		sort.Slice(peaks, func(a, b int) bool {
			if peaks[a].frac != peaks[b].frac {
				return peaks[a].frac > peaks[b].frac
			}
			return peaks[a].day < peaks[b].day
		})
		if len(peaks) > *topDays {
			peaks = peaks[:*topDays]
		}
		for _, p := range peaks {
			fmt.Printf("      %s  %4.1f%% of blocks trending down\n",
				time.Unix(p.day*diurnal.SecondsPerDay, 0).UTC().Format("2006-01-02"), 100*p.frac)
		}
	}
	exitIfDegraded(report)
}

// exitDegraded is the exit code of a run that finished but with the
// supervisor reporting degraded coverage: an observer breaker still open
// at the end, blocks analyzed below the -quorum floor, or poison blocks
// skipped via the dead-letter quarantine.
const exitDegraded = 3

// exitAuditFailed is the -merge exit code when the cross-shard integrity
// audit fails: the merged output must not be trusted.
const exitAuditFailed = 4

// exitDiskPressure is the -daemon exit code when the WAL directory hit
// its -diskbudget and a round had to be shed: the journal on disk is
// consistent, but the stream could not finish on this much disk.
const exitDiskPressure = 6

// exitIntegrity is the -integrity exit code when the firewall gated at
// least one observer stream: the results are computed from the trusted
// remainder, but the input was tampered with.
const exitIntegrity = 7

func exitIfDegraded(report *diurnal.Report) {
	if !report.Report.Degraded() {
		return
	}
	if n := len(report.Report.GatedStreams); n > 0 {
		fmt.Fprintf(os.Stderr, "run completed DEGRADED: integrity firewall gated %d observer stream(s) across %d block verdicts\n",
			n, len(report.Report.IntegrityVerdicts))
		os.Exit(exitIntegrity)
	}
	fmt.Fprintf(os.Stderr, "run completed DEGRADED: %d breakers open, %d blocks below quorum, %d blocks dead-lettered\n",
		len(report.Report.BreakerOpen), len(report.Report.QuorumShortfalls), len(report.Report.DeadLettered))
	os.Exit(exitDegraded)
}

// printIntegrity renders the firewall summary: per-observer aggregate
// agreement and which observers had streams gated, with the gate each
// tripped first.
func printIntegrity(world *diurnal.World, report *diurnal.Report) {
	rep := report.Report
	names := world.Engine().Names()
	name := func(i int) string {
		if i >= 0 && i < len(names) {
			return names[i]
		}
		return fmt.Sprintf("#%d", i)
	}
	if len(rep.AgreementScores) > 0 {
		fmt.Printf("integrity: observer agreement")
		for i, s := range rep.AgreementScores {
			fmt.Printf("  %s=%.2f", name(i), s)
		}
		fmt.Println()
	}
	if len(rep.GatedStreams) == 0 {
		fmt.Println("integrity: no observer streams gated")
		fmt.Println()
		return
	}
	gated := map[int]int{}
	reason := map[int]string{}
	for _, v := range rep.IntegrityVerdicts {
		gated[v.Observer]++
		if _, ok := reason[v.Observer]; !ok {
			reason[v.Observer] = v.Reason
		}
	}
	for _, oi := range rep.GatedStreams {
		fmt.Printf("  gated: observer %s excluded from %d block(s) (first gate: %s)\n",
			name(oi), gated[oi], reason[oi])
	}
	fmt.Println()
}

// runDaemon streams the world through the crash-safe ingestion daemon,
// printing each change event as it is journaled. The returned report is
// identical to a batch run of the same world.
func runDaemon(ctx context.Context, world *diurnal.World, cfg diurnal.Config, opts diurnal.StreamOptions) (*diurnal.Report, int, error) {
	opts.OnEvent = func(ev diurnal.StreamEvent) {
		lag := ev.EmitSeq - ev.FirstSeenSeq
		fmt.Printf("event %4d  %v  %-4s change around %s  (confirmed %d rounds after first seen)\n",
			ev.Seq, ev.ID, ev.Change.Dir,
			time.Unix(ev.Change.Point, 0).UTC().Format("2006-01-02"), lag)
	}
	report, events, err := world.RunStream(ctx, cfg, opts)
	return report, len(events), err
}

// runShardWorker runs this process as one worker of a sharded fleet and
// returns its exit code. A worker exits 0 once every shard in the ledger
// is complete — including shards finished by other workers — so a fleet
// of identical invocations converges without coordination beyond the
// ledger itself.
func runShardWorker(ctx context.Context, world *diurnal.World, cfg diurnal.Config, opts diurnal.ShardOptions, began time.Time) int {
	rep, err := world.RunShardWorker(ctx, cfg, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "worker interrupted; its lease expires shortly and another worker (or a rerun) takes the shard over")
		}
		return 1
	}
	fmt.Printf("worker done in %.1fs: completed %d shard(s), analyzed %d blocks\n",
		time.Since(began).Seconds(), len(rep.CompletedShards), rep.Analyzed)
	if rep.Resumed > 0 {
		fmt.Printf("  inherited %d journaled blocks from fenced predecessors\n", rep.Resumed)
	}
	if rep.Fenced > 0 {
		fmt.Printf("  abandoned %d shard(s) to peers after losing the lease\n", rep.Fenced)
	}
	if rep.DeadLettered > 0 {
		fmt.Printf("  dead-lettered %d poison blocks (the merge will report the run degraded)\n", rep.DeadLettered)
	}
	return 0
}

// printSupervisor renders the run's supervision summary: per-observer
// health, breaker history, hedging activity, and quorum coverage.
func printSupervisor(world *diurnal.World, report *diurnal.Report, quorum int) {
	rep := report.Report
	names := world.Engine().Names()
	name := func(i int) string {
		if i >= 0 && i < len(names) {
			return names[i]
		}
		return fmt.Sprintf("#%d", i)
	}
	open := map[int]bool{}
	for _, i := range rep.BreakerOpen {
		open[i] = true
	}
	if len(rep.HealthScores) > 0 {
		fmt.Printf("supervisor: observer health")
		for i, s := range rep.HealthScores {
			state := ""
			if open[i] {
				state = " (breaker open)"
			}
			fmt.Printf("  %s=%.2f%s", name(i), s, state)
		}
		fmt.Println()
	}
	for _, tx := range rep.BreakerTransitions {
		fmt.Printf("  breaker: observer %s %s->%s at block %d (score %.2f: %s)\n",
			name(tx.Observer), tx.From, tx.To, tx.Seq, tx.Score, tx.Reason)
	}
	if rep.HedgedBlocks > 0 {
		fmt.Printf("  hedged %d straggler blocks (%d hedge wins)\n", rep.HedgedBlocks, rep.HedgeWins)
	}
	if quorum > 0 {
		fmt.Printf("  quorum: %d blocks analyzed with fewer than %d observers\n",
			len(rep.QuorumShortfalls), quorum)
	}
	fmt.Println()
}

// verifyStore fscks an archived dataset store and returns the process
// exit code: 0 when every observation log checks out, 1 when corruption
// was found, 2 when the directory is not a store.
func verifyStore(dir string) int {
	st, err := dataset.OpenStore(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	rep, err := st.Verify()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	fmt.Print(rep)
	if !rep.Clean() {
		return 1
	}
	return 0
}

// reportRegion prints per-block detections for one region.
func reportRegion(world *diurnal.World, report *diurnal.Report, code string) {
	idxs := world.BlocksInRegion(code)
	if len(idxs) == 0 {
		fmt.Printf("no blocks in region %s\n", code)
		return
	}
	fmt.Printf("region %s: %d blocks\n", code, len(idxs))
	for _, i := range idxs {
		b, _, cell := world.BlockAt(i)
		a := report.Blocks[i].Analysis
		if a == nil || !a.Class.ChangeSensitive {
			continue
		}
		fmt.Printf("  %v %s  diurnal score %.2f  profile %s\n", b.ID, cell, a.Class.DiurnalScore, a.Profile())
		for _, c := range a.Changes {
			fmt.Printf("      %-4s change around %s (onset %s, settled %s, %+.1f addresses)\n",
				c.Dir, time.Unix(c.Point, 0).UTC().Format("2006-01-02"),
				time.Unix(c.Start, 0).UTC().Format("01-02"),
				time.Unix(c.End, 0).UTC().Format("01-02"),
				c.RawAmplitude)
		}
	}
}
