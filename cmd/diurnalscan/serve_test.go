package main

// End-to-end -serve lifecycle: cold start (run the world, publish the
// first snapshot, serve it), warm start (load what a previous process
// published), graceful drain on cancellation, and exit 5 when no
// snapshot can be built or loaded.

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"github.com/diurnalnet/diurnal"
	"github.com/diurnalnet/diurnal/internal/serve"
)

// testWorld builds a small world plus a matching config, mirroring
// main()'s baseline setup.
func testWorld(t *testing.T) (*diurnal.World, diurnal.Config) {
	t.Helper()
	start := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC).Unix()
	end := time.Date(2020, 2, 15, 0, 0, 0, 0, time.UTC).Unix()
	world, err := diurnal.NewWorld(diurnal.WorldOptions{
		Blocks: 40, Seed: 5, Calendar: diurnal.Calendar2020(),
		Start: start, End: end, Observers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := diurnal.DefaultConfig(start, end)
	cfg.BaselineStart = start
	cfg.BaselineEnd = start + 28*diurnal.SecondsPerDay
	return world, cfg
}

// startServe runs runServe in the background and returns its base URL
// plus a shutdown func that cancels the context and reports the exit
// code.
func startServe(t *testing.T, world *diurnal.World, cfg diurnal.Config, dir string) (string, func() int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan net.Addr, 1)
	code := make(chan int, 1)
	go func() {
		code <- runServe(ctx, world, cfg, serveOptions{
			Addr: "127.0.0.1:0", Dir: dir, ReqTimeout: time.Second, ready: ready,
		})
	}()
	select {
	case addr := <-ready:
		return "http://" + addr.String(), func() int {
			cancel()
			select {
			case c := <-code:
				return c
			case <-time.After(10 * time.Second):
				t.Fatal("runServe did not drain after cancellation")
				return -1
			}
		}
	case c := <-code:
		cancel()
		t.Fatalf("runServe exited %d before listening", c)
		return "", nil
	case <-time.After(2 * time.Minute):
		cancel()
		t.Fatal("runServe never started listening")
		return "", nil
	}
}

func TestServeColdStartAndDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a world in -short mode")
	}
	world, cfg := testWorld(t)
	dir := t.TempDir()
	base, shutdown := startServe(t, world, cfg, dir)

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	resp, err = http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.SnapshotID == "" || st.Analyzed == 0 {
		t.Errorf("stats show no live snapshot: %+v", st)
	}
	if code := shutdown(); code != 0 {
		t.Errorf("graceful drain exited %d, want 0", code)
	}

	// The cold start published exactly one snapshot; a warm start must
	// load it instead of re-running the world (a re-run would publish a
	// second file).
	before := snapCount(t, dir)
	if before != 1 {
		t.Fatalf("cold start published %d snapshots, want 1", before)
	}
	base, shutdown = startServe(t, world, cfg, dir)
	resp, err = http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if code := shutdown(); code != 0 {
		t.Errorf("warm-start drain exited %d, want 0", code)
	}
	if after := snapCount(t, dir); after != before {
		t.Errorf("warm start changed snapshot count %d -> %d; it must serve the published one", before, after)
	}
}

func TestServeExitsSnapshotFailed(t *testing.T) {
	world, cfg := testWorld(t)
	// The snapshot "directory" is a plain file: nothing to load, and the
	// bootstrap publish cannot create it either.
	dir := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(dir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	code := runServe(context.Background(), world, cfg, serveOptions{
		Addr: "127.0.0.1:0", Dir: dir, ReqTimeout: time.Second,
	})
	if code != exitSnapshotFailed {
		t.Errorf("exit code = %d, want %d", code, exitSnapshotFailed)
	}
}

func TestServeReloadQuarantinesForeignSnapshot(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a world in -short mode")
	}
	world, cfg := testWorld(t)
	dir := t.TempDir()
	base, shutdown := startServe(t, world, cfg, dir)
	servedID := statsNow(t, base).SnapshotID

	// A snapshot signed by a different run lands in the directory, newer
	// than the served one. The SIGHUP reload goes through LoadLatest,
	// which must quarantine it and keep serving the original — never
	// answer queries across runs.
	foreignSig := append([]byte(nil), world.Signature(cfg)...)
	foreignSig[0] ^= 0xFF // a different run's signature
	rep, err := world.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := serve.WriteSnapshot(dir, rep, foreignSig,
		world.Start(), world.End()); err != nil {
		t.Fatal(err)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := statsNow(t, base)
		if st.Quarantined > 0 {
			if st.SnapshotID != servedID {
				t.Errorf("served snapshot changed %s -> %s after a foreign publish", servedID, st.SnapshotID)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("foreign snapshot was never quarantined on reload")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if code := shutdown(); code != 0 {
		t.Errorf("drain exited %d, want 0", code)
	}
}

func statsNow(t *testing.T, base string) serve.Stats {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func snapCount(t *testing.T, dir string) int {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".snap" {
			n++
		}
	}
	return n
}
