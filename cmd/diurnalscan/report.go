package main

import (
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/diurnalnet/diurnal"
	"github.com/diurnalnet/diurnal/internal/changepoint"
	"github.com/diurnalnet/diurnal/internal/dataset"
	"github.com/diurnalnet/diurnal/internal/geo"
	"github.com/diurnalnet/diurnal/internal/render"
)

// saveObservations archives the raw probe streams of every block into a
// replayable dataset store.
func saveObservations(dir string, world *diurnal.World, start, end int64) error {
	spec := dataset.Spec{
		Name:  fmt.Sprintf("diurnalscan-%s", time.Unix(start, 0).UTC().Format("20060102")),
		Start: start,
		Weeks: int((end - start) / (7 * diurnal.SecondsPerDay)),
	}
	if spec.Weeks < 1 {
		spec.Weeks = 1
	}
	for range world.Engine().Observers {
		spec.Sites = append(spec.Sites, "x")
	}
	blocks := make([]*dataset.WorldBlock, 0, world.Size())
	for i := 0; i < world.Size(); i++ {
		b, code, cell := world.BlockAt(i)
		_ = code
		_ = cell
		blocks = append(blocks, &dataset.WorldBlock{Block: b})
	}
	_, err := dataset.CreateStore(dir, spec, world.Engine(), blocks)
	return err
}

// writeMarkdownReport renders the run's findings as a self-contained
// markdown document: summary, world map, per-continent sparklines, and the
// busiest gridcells — the textual analogue of the paper's public website
// (§2.9).
func writeMarkdownReport(path string, world *diurnal.World, report *diurnal.Report, start, end int64) error {
	var b strings.Builder
	day := func(t int64) string { return time.Unix(t, 0).UTC().Format("2006-01-02") }
	startDay, endDay := start/diurnal.SecondsPerDay, end/diurnal.SecondsPerDay

	fmt.Fprintf(&b, "# Internet activity-change report, %s — %s\n\n", day(start), day(end))
	responsive := 0
	for _, st := range report.Cells {
		responsive += st.Responsive
	}
	fmt.Fprintf(&b, "%d simulated /24 blocks; %d responsive; %d change-sensitive across %d gridcells.\n\n",
		world.Size(), responsive, report.ChangeSensitiveCount(), len(report.CellCS))

	fmt.Fprintf(&b, "## Change-sensitive blocks by gridcell\n\n```\n")
	values := map[diurnal.CellKey]int{}
	for cell, n := range report.CellCS {
		values[cell] = n
	}
	b.WriteString(render.WorldMap(values))
	fmt.Fprintf(&b, "```\n\n")

	fmt.Fprintf(&b, "## Daily downward-change fraction by continent\n\n")
	fmt.Fprintf(&b, "| continent | change-sensitive blocks | daily trend | peak day |\n")
	fmt.Fprintf(&b, "|---|---|---|---|\n")
	for _, cont := range geo.Continents() {
		series := report.ContinentFractionSeries(cont, startDay, endDay)
		peakDay, peak := "-", 0.0
		for i, v := range series {
			if v > peak {
				peak, peakDay = v, day((startDay+int64(i))*diurnal.SecondsPerDay)
			}
		}
		fmt.Fprintf(&b, "| %s | %d | `%s` | %s |\n",
			cont, report.ContinentCS[cont], render.Sparkline(series, 40), peakDay)
	}
	b.WriteString("\n")

	fmt.Fprintf(&b, "## Busiest gridcells\n\n")
	fmt.Fprintf(&b, "| gridcell | change-sensitive | daily downward trend | peak day |\n")
	fmt.Fprintf(&b, "|---|---|---|---|\n")
	for _, cell := range report.TopCells(12) {
		series := report.CellFractionSeries(cell, changepoint.Down, startDay, endDay)
		peakDay, peak := "-", 0.0
		for i, v := range series {
			if v > peak {
				peak, peakDay = v, day((startDay+int64(i))*diurnal.SecondsPerDay)
			}
		}
		fmt.Fprintf(&b, "| %s | %d | `%s` | %s |\n",
			cell, report.CellCS[cell], render.Sparkline(series, 40), peakDay)
	}
	b.WriteString("\n")
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
