package main

// The exit-2 flag matrix: every contradictory combination must be
// rejected by validation, and the legitimate ones must pass.

import (
	"testing"
	"time"
)

// base returns a flag state equivalent to an invocation with only the
// listed flags explicitly set.
func base(set ...string) *cliFlags {
	f := &cliFlags{
		roundLen:     24 * time.Hour,
		refreshEvery: 1,
		confirm:      2,
		maxQueue:     64,
		set:          map[string]bool{},
	}
	for _, name := range set {
		f.set[name] = true
	}
	return f
}

func TestFlagMatrix(t *testing.T) {
	cases := []struct {
		name string
		f    *cliFlags
		ok   bool
	}{
		{"defaults", base(), true},
		{"negative workers", func() *cliFlags { f := base("workers"); f.workers = -2; return f }(), false},
		{"explicit workers", func() *cliFlags { f := base("workers"); f.workers = 8; return f }(), true},
		{"negative quorum", func() *cliFlags { f := base("quorum"); f.quorum = -1; return f }(), false},
		{"hedge without breaker", func() *cliFlags { f := base("hedge"); f.hedge = true; return f }(), false},
		{"hedge with breaker", func() *cliFlags {
			f := base("hedge", "breaker")
			f.hedge, f.breaker = true, true
			return f
		}(), true},
		{"worker and merge", func() *cliFlags {
			f := base("worker", "merge")
			f.workerDir, f.mergeDir = "w", "m"
			return f
		}(), false},
		{"shards without worker", func() *cliFlags { f := base("shards"); f.shards = 4; return f }(), false},
		{"worker with shards", func() *cliFlags {
			f := base("worker", "shards")
			f.workerDir, f.shards = "w", 4
			return f
		}(), true},

		// The daemon rows of the matrix.
		{"daemon alone", func() *cliFlags { f := base("daemon"); f.daemonDir = "d"; return f }(), true},
		{"daemon with worker", func() *cliFlags {
			f := base("daemon", "worker")
			f.daemonDir, f.workerDir = "d", "w"
			return f
		}(), false},
		{"daemon with merge", func() *cliFlags {
			f := base("daemon", "merge")
			f.daemonDir, f.mergeDir = "d", "m"
			return f
		}(), false},
		{"daemon with resume", func() *cliFlags {
			f := base("daemon", "resume")
			f.daemonDir, f.resumePath = "d", "run.ckpt"
			return f
		}(), false},
		{"daemon with breaker", func() *cliFlags {
			f := base("daemon", "breaker")
			f.daemonDir, f.breaker = "d", true
			return f
		}(), false},
		{"daemon tuning flags", func() *cliFlags {
			f := base("daemon", "roundlen", "refresh", "confirm", "maxqueue", "watchdog")
			f.daemonDir = "d"
			f.roundLen = 6 * time.Hour
			f.refreshEvery, f.confirm, f.maxQueue = 4, 3, 16
			f.watchdog = time.Minute
			return f
		}(), true},
		{"roundlen without daemon", func() *cliFlags {
			f := base("roundlen")
			f.roundLen = 6 * time.Hour
			return f
		}(), false},
		{"refresh without daemon", func() *cliFlags { f := base("refresh"); f.refreshEvery = 7; return f }(), false},
		{"watchdog without daemon", func() *cliFlags { f := base("watchdog"); f.watchdog = time.Minute; return f }(), false},
		{"daemon bad roundlen", func() *cliFlags {
			f := base("daemon", "roundlen")
			f.daemonDir, f.roundLen = "d", 90*time.Minute
			return f
		}(), false},
		{"daemon zero watchdog set", func() *cliFlags {
			f := base("daemon", "watchdog")
			f.daemonDir, f.watchdog = "d", 0
			return f
		}(), false},
		{"verify with daemon", func() *cliFlags {
			f := base("verify", "daemon")
			f.verifyDir, f.daemonDir = "v", "d"
			return f
		}(), false},
		{"serve with snapshot", func() *cliFlags {
			f := base("serve", "snapshot")
			f.serveAddr, f.snapshotDir = ":8080", "snaps"
			return f
		}(), true},
		{"serve tuning flags", func() *cliFlags {
			f := base("serve", "snapshot", "inflight", "reqtimeout")
			f.serveAddr, f.snapshotDir = ":8080", "snaps"
			f.inflight, f.reqTimeout = 128, 5*time.Second
			return f
		}(), true},
		{"serve without snapshot", func() *cliFlags {
			f := base("serve")
			f.serveAddr = ":8080"
			return f
		}(), false},
		{"serve with daemon", func() *cliFlags {
			f := base("serve", "snapshot", "daemon")
			f.serveAddr, f.snapshotDir, f.daemonDir = ":8080", "snaps", "d"
			return f
		}(), false},
		{"serve with worker", func() *cliFlags {
			f := base("serve", "snapshot", "worker")
			f.serveAddr, f.snapshotDir, f.workerDir = ":8080", "snaps", "w"
			return f
		}(), false},
		{"serve with verify", func() *cliFlags {
			f := base("serve", "snapshot", "verify")
			f.serveAddr, f.snapshotDir, f.verifyDir = ":8080", "snaps", "v"
			return f
		}(), false},
		{"serve with resume", func() *cliFlags {
			f := base("serve", "snapshot", "resume")
			f.serveAddr, f.snapshotDir, f.resumePath = ":8080", "snaps", "run.ckpt"
			return f
		}(), false},
		{"serve bad inflight", func() *cliFlags {
			f := base("serve", "snapshot", "inflight")
			f.serveAddr, f.snapshotDir, f.inflight = ":8080", "snaps", 0
			return f
		}(), false},
		{"serve zero reqtimeout set", func() *cliFlags {
			f := base("serve", "snapshot", "reqtimeout")
			f.serveAddr, f.snapshotDir, f.reqTimeout = ":8080", "snaps", 0
			return f
		}(), false},
		{"snapshot without serve", func() *cliFlags {
			f := base("snapshot")
			f.snapshotDir = "snaps"
			return f
		}(), false},

		// Storage-governance rows: WAL sizing is daemon-only, retention
		// and the publish budget are serve-only, and the size floors hold.
		{"daemon governance flags", func() *cliFlags {
			f := base("daemon", "walseg", "walcompact", "diskbudget")
			f.daemonDir = "d"
			f.walSeg, f.walCompact, f.diskBudget = 1<<16, 1<<20, 1<<24
			return f
		}(), true},
		{"walseg without daemon", func() *cliFlags { f := base("walseg"); f.walSeg = 1 << 16; return f }(), false},
		{"walcompact without daemon", func() *cliFlags { f := base("walcompact"); f.walCompact = 1 << 20; return f }(), false},
		{"diskbudget without daemon", func() *cliFlags { f := base("diskbudget"); f.diskBudget = 1 << 24; return f }(), false},
		{"daemon tiny walseg", func() *cliFlags {
			f := base("daemon", "walseg")
			f.daemonDir, f.walSeg = "d", 512
			return f
		}(), false},
		{"daemon zero diskbudget set", func() *cliFlags {
			f := base("daemon", "diskbudget")
			f.daemonDir, f.diskBudget = "d", 0
			return f
		}(), false},
		{"serve governance flags", func() *cliFlags {
			f := base("serve", "snapshot", "retain", "servebudget")
			f.serveAddr, f.snapshotDir = ":8080", "snaps"
			f.retain, f.serveBudget = 3, 1<<24
			return f
		}(), true},
		{"retain without serve", func() *cliFlags { f := base("retain"); f.retain = 3; return f }(), false},
		{"servebudget without serve", func() *cliFlags { f := base("servebudget"); f.serveBudget = 1 << 24; return f }(), false},
		{"serve zero retain set", func() *cliFlags {
			f := base("serve", "snapshot", "retain")
			f.serveAddr, f.snapshotDir, f.retain = ":8080", "snaps", 0
			return f
		}(), false},
		{"inflight without serve", func() *cliFlags {
			f := base("inflight")
			f.inflight = 32
			return f
		}(), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.f.validate()
			if tc.ok && err != nil {
				t.Errorf("combination rejected: %v", err)
			}
			if !tc.ok && err == nil {
				t.Error("contradictory combination accepted")
			}
		})
	}
}
