// Command experiments regenerates the paper's tables and figures on the
// simulated substrate and prints them as text.
//
// Usage:
//
//	experiments [-blocks N] [-seed S] [-only table2,figure8] [-list]
//
// With no -only flag every experiment runs, in the paper's order. Larger
// -blocks values sharpen the statistics at the cost of runtime; the
// defaults regenerate everything in a few minutes on a laptop.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/diurnalnet/diurnal/internal/experiments"
	"github.com/diurnalnet/diurnal/internal/profiling"
)

type experiment struct {
	name string
	desc string
	run  func(experiments.Options) (fmt.Stringer, error)
}

// wrap adapts a typed experiment constructor to the generic runner.
func wrap[T fmt.Stringer](fn func(experiments.Options) (T, error)) func(experiments.Options) (fmt.Stringer, error) {
	return func(o experiments.Options) (fmt.Stringer, error) {
		r, err := fn(o)
		return r, err
	}
}

func catalog() []experiment {
	return []experiment{
		{"table2", "blocks before and after filtering (Table 2)", wrap(experiments.Table2)},
		{"table3", "reconstruction vs survey ground truth (Table 3)", wrap(experiments.Table3)},
		{"table4", "geographic coverage (Table 4)", wrap(experiments.Table4)},
		{"table5", "validation of sampled blocks (Table 5)", wrap(experiments.Table5)},
		{"location", "validation by location, UAE and Slovenia (§3.7)", wrap(experiments.LocationValidation)},
		{"figure1", "example block analysis (Figure 1)", wrap(experiments.Figure1)},
		{"figure2", "incremental reconstruction walk-through (Figure 2)", wrap(experiments.Figure2)},
		{"figure3", "full-block-scan time CDF (Figure 3)", wrap(experiments.Figure3)},
		{"figure4", "reconstruction vs truth, easy and hard blocks (Figure 4)", wrap(experiments.Figure4)},
		{"figure5", "classification failures heatmap (Figure 5)", wrap(experiments.Figure5)},
		{"figure6", "congestive loss and 1-loss repair (Figure 6)", wrap(experiments.Figure6)},
		{"figure7", "where change-sensitive blocks are (Figure 7)", wrap(experiments.Figure7)},
		{"figure8", "continental trends 2020h1 (Figure 8)", wrap(experiments.Figure8)},
		{"figure9", "China in January 2020 (Figure 9)", wrap(experiments.Figure9)},
		{"figure10", "India in February and March 2020 (Figure 10)", wrap(experiments.Figure10)},
		{"figure11", "two representative blocks (Figure 11, Appendix B.1)", wrap(experiments.Figure11)},
		{"figure12", "Beijing 2023q1 control (Figure 12)", wrap(experiments.Figure12)},
		{"figure13", "New Delhi 2023q1 null control (Figure 13)", wrap(experiments.Figure13)},
		{"figure14", "gridcell threshold sensitivity (Figure 14)", wrap(experiments.Figure14)},
		{"figure15", "VPN block migration (Figure 15)", wrap(experiments.Figure15)},
		{"fbs", "full-block-scan time model (§3.2.3)", wrap(experiments.FBSModel)},
		{"extraprobing", "additional observations end-to-end (§2.8)", wrap(experiments.ExtraProbing)},
		{"observerhealth", "observer cross-check, broken-site exclusion (§2.7)", wrap(experiments.ObserverHealth)},
		{"profiles", "workplace vs home profiling, §2.6 future work", wrap(experiments.ProfileSeparation)},
		{"ablation-stl", "STL vs naive decomposition under outliers (§2.5)", wrap(experiments.AblationSTLvsNaive)},
		{"ablation-swing", "swing-threshold sweep (§2.4)", wrap(experiments.AblationSwing)},
		{"ablation-repair", "1-loss repair under loss sweep (§3.3)", wrap(experiments.AblationLossRepair)},
		{"ablation-persistence", "persistence-rule sweep (§2.4)", wrap(experiments.AblationPersistence)},
		{"ablation-outagefilter", "pair filter vs belief-based outage masking (§2.6)", wrap(experiments.AblationOutageFilter)},
		{"robustness", "detection accuracy under injected measurement faults", wrap(experiments.Robustness)},
		{"byzantine", "detection accuracy with one lying observer vs the integrity firewall", wrap(experiments.Byzantine)},
		{"crashresume", "kill-and-resume produces identical results (checkpoint journal)", wrap(experiments.CrashResume)},
		{"supervisor", "runtime breakers, hedged stragglers, quorum guard (self-healing)", wrap(experiments.Supervisor)},
		{"shardfailover", "kill -9 a leaseholder mid-shard; fenced takeover merges byte-identical", wrap(experiments.ShardFailover)},
		{"streaming", "streaming daemon: kill-and-resume event identity, bounded detection latency", wrap(experiments.Streaming)},
		{"serveload", "result-serving plane under 10x overload: shed-not-queue, bounded p99, corrupt publish quarantined", wrap(experiments.ServeLoad)},
		{"longrun", "run-forever storage governance: flat disk under kills, retention, graceful ENOSPC", wrap(experiments.Longrun)},
	}
}

func main() {
	blocks := flag.Int("blocks", 0, "world size override (0 = per-experiment default)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	only := flag.String("only", "", "comma-separated experiment names (default: all)")
	list := flag.Bool("list", false, "list experiments and exit")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile after the experiments to this file")
	flag.Parse()

	cat := catalog()
	if *list {
		for _, e := range cat {
			fmt.Printf("%-22s %s\n", e.name, e.desc)
		}
		return
	}
	want := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		for name := range want {
			found := false
			for _, e := range cat {
				if e.name == name {
					found = true
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", name)
				os.Exit(2)
			}
		}
	}
	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	opts := experiments.Options{Blocks: *blocks, Seed: *seed}
	failed := false
	for _, e := range cat {
		if len(want) > 0 && !want[e.name] {
			continue
		}
		started := time.Now()
		res, err := e.run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			failed = true
			continue
		}
		fmt.Printf("==== %s (%.1fs) ====\n%s\n", e.name, time.Since(started).Seconds(), res)
	}
	if err := stopProfiles(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}
