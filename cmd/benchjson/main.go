// Command benchjson converts `go test -bench` output into a JSON summary.
// It reads the benchmark text on stdin, echoes it unchanged to stdout (so
// it can sit in a pipe without hiding the familiar output), and writes the
// parsed results to the file named by -o:
//
//	go test -bench=. -benchmem ./... | benchjson -o BENCH.json
//
// Each benchmark line becomes an object with the name (GOMAXPROCS suffix
// stripped), iteration count, ns/op, B/op and allocs/op when -benchmem was
// given, and any custom b.ReportMetric units (e.g. the serve load
// harness's p50-ms/p99-ms) under "extra".
//
// When writing to a file, each result also carries a "baseline" object
// diffing it against the previous summary: -baseline names the file
// explicitly, an empty flag auto-discovers the highest-numbered
// BENCH_<n>.json sitting next to -o, and -baseline none disables the
// diff. Deltas are percentages relative to the baseline, so a negative
// ns_delta_pct is a speedup.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *int64             `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64             `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
	// Baseline carries the same benchmark's numbers from a previous
	// summary (see -baseline), with per-metric deltas.
	Baseline *Baseline `json:"baseline,omitempty"`
}

// Baseline is the prior run's numbers for one benchmark with the change
// relative to them; delta percentages are (new-old)/old*100, so negative
// ns_delta_pct means the benchmark got faster.
type Baseline struct {
	File           string   `json:"file"`
	NsPerOp        float64  `json:"ns_per_op"`
	NsDeltaPct     float64  `json:"ns_delta_pct"`
	BytesDeltaPct  *float64 `json:"bytes_delta_pct,omitempty"`
	AllocsDeltaPct *float64 `json:"allocs_delta_pct,omitempty"`
}

// deltaPct returns (now-then)/then as a percentage; zero baselines yield
// no delta (nil for the pointer variants, 0 for ns).
func deltaPct(now, then float64) float64 {
	if then == 0 {
		return 0
	}
	return (now - then) / then * 100
}

// attachBaseline fills each result's Baseline from the prior summary.
func attachBaseline(results []Result, prior []Result, file string) {
	byName := make(map[string]*Result, len(prior))
	for i := range prior {
		byName[prior[i].Name] = &prior[i]
	}
	for i := range results {
		r := &results[i]
		old, ok := byName[r.Name]
		if !ok {
			continue
		}
		b := &Baseline{
			File:       file,
			NsPerOp:    old.NsPerOp,
			NsDeltaPct: deltaPct(r.NsPerOp, old.NsPerOp),
		}
		if r.BytesPerOp != nil && old.BytesPerOp != nil && *old.BytesPerOp != 0 {
			d := deltaPct(float64(*r.BytesPerOp), float64(*old.BytesPerOp))
			b.BytesDeltaPct = &d
		}
		if r.AllocsPerOp != nil && old.AllocsPerOp != nil && *old.AllocsPerOp != 0 {
			d := deltaPct(float64(*r.AllocsPerOp), float64(*old.AllocsPerOp))
			b.AllocsDeltaPct = &d
		}
		r.Baseline = b
	}
}

// benchFile matches sibling summaries eligible as an automatic baseline:
// BENCH_<n>.json, ordered by n.
var benchFile = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// discoverBaseline finds the highest-numbered BENCH_<n>.json next to the
// output file that is not the output file itself — the previous PR's
// summary in this repo's naming scheme. Returns "" when there is none.
func discoverBaseline(outPath string) string {
	dir := filepath.Dir(outPath)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return ""
	}
	self := filepath.Base(outPath)
	bestN := -1
	best := ""
	for _, e := range entries {
		name := e.Name()
		if name == self {
			continue
		}
		m := benchFile.FindStringSubmatch(name)
		if m == nil {
			continue
		}
		if n, err := strconv.Atoi(m[1]); err == nil && n > bestN {
			bestN, best = n, filepath.Join(dir, name)
		}
	}
	return best
}

// loadBaseline reads a previous summary file.
func loadBaseline(path string) ([]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var prior []Result
	if err := json.Unmarshal(data, &prior); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return prior, nil
}

// benchName matches the line prefix, e.g. "BenchmarkPeriodogram-8   1234".
var benchName = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// parseLine parses one benchmark line: after the name and iteration count
// the rest is (value, unit) pairs — ns/op, optional -benchmem columns,
// and any custom ReportMetric units.
func parseLine(line string) (Result, bool) {
	m := benchName.FindStringSubmatch(line)
	if m == nil {
		return Result{}, false
	}
	iters, _ := strconv.ParseInt(m[2], 10, 64)
	r := Result{Name: m[1], Iterations: iters}
	fields := strings.Fields(m[3])
	sawNs := false
	for i := 0; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = val
			sawNs = true
		case "B/op":
			b := int64(val)
			r.BytesPerOp = &b
		case "allocs/op":
			a := int64(val)
			r.AllocsPerOp = &a
		default:
			if r.Extra == nil {
				r.Extra = map[string]float64{}
			}
			r.Extra[unit] = val
		}
	}
	if !sawNs {
		return Result{}, false
	}
	return r, true
}

func main() {
	out := flag.String("o", "", "write the JSON summary to this file (default stdout only)")
	baseline := flag.String("baseline", "", "previous summary to diff against; empty auto-discovers the highest BENCH_<n>.json next to -o, 'none' disables")
	flag.Parse()

	var results []Result
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1024*1024), 1024*1024)
	for scanner.Scan() {
		line := scanner.Text()
		fmt.Println(line)
		if r, ok := parseLine(line); ok {
			results = append(results, r)
		}
	}
	if err := scanner.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *out == "" {
		return
	}
	base := *baseline
	if base == "" {
		base = discoverBaseline(*out)
	} else if base == "none" {
		base = ""
	}
	if base != "" {
		prior, err := loadBaseline(base)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: baseline:", err)
			os.Exit(1)
		}
		attachBaseline(results, prior, filepath.Base(base))
		fmt.Fprintf(os.Stderr, "benchjson: baseline %s\n", filepath.Base(base))
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(results), *out)
}
