// Command benchjson converts `go test -bench` output into a JSON summary.
// It reads the benchmark text on stdin, echoes it unchanged to stdout (so
// it can sit in a pipe without hiding the familiar output), and writes the
// parsed results to the file named by -o:
//
//	go test -bench=. -benchmem ./... | benchjson -o BENCH.json
//
// Each benchmark line becomes an object with the name (GOMAXPROCS suffix
// stripped), iteration count, ns/op, B/op and allocs/op when -benchmem was
// given, and any custom b.ReportMetric units (e.g. the serve load
// harness's p50-ms/p99-ms) under "extra".
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *int64             `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64             `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// benchName matches the line prefix, e.g. "BenchmarkPeriodogram-8   1234".
var benchName = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// parseLine parses one benchmark line: after the name and iteration count
// the rest is (value, unit) pairs — ns/op, optional -benchmem columns,
// and any custom ReportMetric units.
func parseLine(line string) (Result, bool) {
	m := benchName.FindStringSubmatch(line)
	if m == nil {
		return Result{}, false
	}
	iters, _ := strconv.ParseInt(m[2], 10, 64)
	r := Result{Name: m[1], Iterations: iters}
	fields := strings.Fields(m[3])
	sawNs := false
	for i := 0; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = val
			sawNs = true
		case "B/op":
			b := int64(val)
			r.BytesPerOp = &b
		case "allocs/op":
			a := int64(val)
			r.AllocsPerOp = &a
		default:
			if r.Extra == nil {
				r.Extra = map[string]float64{}
			}
			r.Extra[unit] = val
		}
	}
	if !sawNs {
		return Result{}, false
	}
	return r, true
}

func main() {
	out := flag.String("o", "", "write the JSON summary to this file (default stdout only)")
	flag.Parse()

	var results []Result
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1024*1024), 1024*1024)
	for scanner.Scan() {
		line := scanner.Text()
		fmt.Println(line)
		if r, ok := parseLine(line); ok {
			results = append(results, r)
		}
	}
	if err := scanner.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *out == "" {
		return
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(results), *out)
}
