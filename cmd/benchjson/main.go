// Command benchjson converts `go test -bench` output into a JSON summary.
// It reads the benchmark text on stdin, echoes it unchanged to stdout (so
// it can sit in a pipe without hiding the familiar output), and writes the
// parsed results to the file named by -o:
//
//	go test -bench=. -benchmem ./... | benchjson -o BENCH.json
//
// Each benchmark line becomes an object with the name (GOMAXPROCS suffix
// stripped), iteration count, ns/op, and — when -benchmem was given —
// B/op and allocs/op.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
}

// benchLine matches e.g.
//
//	BenchmarkPeriodogram-8   1234   987.6 ns/op   120 B/op   3 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("o", "", "write the JSON summary to this file (default stdout only)")
	flag.Parse()

	var results []Result
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1024*1024), 1024*1024)
	for scanner.Scan() {
		line := scanner.Text()
		fmt.Println(line)
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		r := Result{Name: m[1], Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			b, _ := strconv.ParseInt(m[4], 10, 64)
			r.BytesPerOp = &b
		}
		if m[5] != "" {
			a, _ := strconv.ParseInt(m[5], 10, 64)
			r.AllocsPerOp = &a
		}
		results = append(results, r)
	}
	if err := scanner.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *out == "" {
		return
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(results), *out)
}
