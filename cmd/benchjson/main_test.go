package main

import "testing"

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkPeriodogram-8   1234   987.6 ns/op   120 B/op   3 allocs/op")
	if !ok {
		t.Fatal("benchmem line not parsed")
	}
	if r.Name != "BenchmarkPeriodogram" || r.Iterations != 1234 || r.NsPerOp != 987.6 {
		t.Errorf("parsed %+v", r)
	}
	if r.BytesPerOp == nil || *r.BytesPerOp != 120 || r.AllocsPerOp == nil || *r.AllocsPerOp != 3 {
		t.Errorf("benchmem columns: %+v", r)
	}

	r, ok = parseLine("BenchmarkServeOverload-8   1  52034062 ns/op  0.42 p50-ms  3.10 p99-ms  137 shed  0 B/op  0 allocs/op")
	if !ok {
		t.Fatal("custom-metric line not parsed")
	}
	if r.Extra["p50-ms"] != 0.42 || r.Extra["p99-ms"] != 3.10 || r.Extra["shed"] != 137 {
		t.Errorf("custom metrics: %+v", r.Extra)
	}

	if _, ok := parseLine("PASS"); ok {
		t.Error("non-benchmark line parsed")
	}
	if _, ok := parseLine("BenchmarkX-8  12  garbage ns/op"); ok {
		t.Error("garbage value parsed")
	}
}
