package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkPeriodogram-8   1234   987.6 ns/op   120 B/op   3 allocs/op")
	if !ok {
		t.Fatal("benchmem line not parsed")
	}
	if r.Name != "BenchmarkPeriodogram" || r.Iterations != 1234 || r.NsPerOp != 987.6 {
		t.Errorf("parsed %+v", r)
	}
	if r.BytesPerOp == nil || *r.BytesPerOp != 120 || r.AllocsPerOp == nil || *r.AllocsPerOp != 3 {
		t.Errorf("benchmem columns: %+v", r)
	}

	r, ok = parseLine("BenchmarkServeOverload-8   1  52034062 ns/op  0.42 p50-ms  3.10 p99-ms  137 shed  0 B/op  0 allocs/op")
	if !ok {
		t.Fatal("custom-metric line not parsed")
	}
	if r.Extra["p50-ms"] != 0.42 || r.Extra["p99-ms"] != 3.10 || r.Extra["shed"] != 137 {
		t.Errorf("custom metrics: %+v", r.Extra)
	}

	if _, ok := parseLine("PASS"); ok {
		t.Error("non-benchmark line parsed")
	}
	if _, ok := parseLine("BenchmarkX-8  12  garbage ns/op"); ok {
		t.Error("garbage value parsed")
	}
}

func TestDiscoverBaseline(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_3.json", "BENCH_7.json", "BENCH_10.json", "notes.json", "BENCH_x.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("[]"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// The output file itself (the highest number) must not be its own
	// baseline; the next-highest wins, with numeric (not lexical) order.
	if got := discoverBaseline(filepath.Join(dir, "BENCH_10.json")); got != filepath.Join(dir, "BENCH_7.json") {
		t.Errorf("baseline for BENCH_10 = %q, want BENCH_7", got)
	}
	if got := discoverBaseline(filepath.Join(dir, "BENCH_11.json")); got != filepath.Join(dir, "BENCH_10.json") {
		t.Errorf("baseline for BENCH_11 = %q, want BENCH_10", got)
	}
	if got := discoverBaseline(filepath.Join(t.TempDir(), "BENCH_1.json")); got != "" {
		t.Errorf("baseline in empty dir = %q, want none", got)
	}
}

func TestAttachBaseline(t *testing.T) {
	i64 := func(v int64) *int64 { return &v }
	results := []Result{
		{Name: "BenchmarkA", NsPerOp: 150, BytesPerOp: i64(90), AllocsPerOp: i64(10)},
		{Name: "BenchmarkNew", NsPerOp: 50},
	}
	prior := []Result{
		{Name: "BenchmarkA", NsPerOp: 200, BytesPerOp: i64(100), AllocsPerOp: i64(10)},
		{Name: "BenchmarkGone", NsPerOp: 1},
	}
	attachBaseline(results, prior, "BENCH_7.json")
	b := results[0].Baseline
	if b == nil || b.File != "BENCH_7.json" || b.NsPerOp != 200 {
		t.Fatalf("baseline = %+v", b)
	}
	if b.NsDeltaPct != -25 {
		t.Errorf("ns delta = %v, want -25", b.NsDeltaPct)
	}
	if b.BytesDeltaPct == nil || *b.BytesDeltaPct != -10 {
		t.Errorf("bytes delta = %v, want -10", b.BytesDeltaPct)
	}
	if b.AllocsDeltaPct == nil || *b.AllocsDeltaPct != 0 {
		t.Errorf("allocs delta = %v, want 0", b.AllocsDeltaPct)
	}
	if results[1].Baseline != nil {
		t.Error("benchmark absent from the baseline must carry none")
	}
}
