// covid-wfh: watch the 2020 work-from-home wave sweep the world.
//
// A synthetic Internet of 600 /24 blocks lives through the first Covid
// quarter with the real 2020 event calendar (Spring Festival, the Wuhan
// lockdown, the Delhi riots, the March WFH wave). The pipeline detects
// downward activity changes per 2×2° gridcell; this example prints each
// continent's peak change day — the textual form of the paper's Figure 8.
//
//	go run ./examples/covid-wfh
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/diurnalnet/diurnal"
	"github.com/diurnalnet/diurnal/internal/changepoint"
	"github.com/diurnalnet/diurnal/internal/geo"
)

func main() {
	start := diurnal.Date(2020, 1, 1)
	end := diurnal.Date(2020, 4, 22)

	world, err := diurnal.NewWorld(diurnal.WorldOptions{
		Blocks:   600,
		Seed:     2020,
		Calendar: diurnal.Calendar2020(),
		Start:    start,
		End:      end,
	})
	if err != nil {
		log.Fatal(err)
	}
	cfg := diurnal.DefaultConfig(start, end)
	cfg.BaselineStart, cfg.BaselineEnd = start, diurnal.Date(2020, 1, 29) // pre-Covid baseline
	fmt.Printf("probing %d blocks over %s .. %s ...\n\n", world.Size(),
		day(start), day(end))
	report, err := world.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d change-sensitive blocks across %d gridcells\n\n",
		report.ChangeSensitiveCount(), len(report.CellCS))
	startDay := start / diurnal.SecondsPerDay
	endDay := end / diurnal.SecondsPerDay
	fmt.Println("peak downward-change day per continent:")
	for _, cont := range geo.Continents() {
		series := report.ContinentFractionSeries(cont, startDay, endDay)
		bestDay, best := -1, 0.0
		for i, v := range series {
			if v > best {
				best, bestDay = v, i
			}
		}
		if bestDay < 0 {
			fmt.Printf("  %-14s no changes (%d change-sensitive blocks)\n", cont, report.ContinentCS[cont])
			continue
		}
		fmt.Printf("  %-14s %s  %.1f%% of %d blocks trending down\n",
			cont, day((startDay+int64(bestDay))*diurnal.SecondsPerDay),
			100*best, report.ContinentCS[cont])
	}

	// Zoom into the paper's case-study cells.
	fmt.Println("\ncase-study gridcells:")
	for _, c := range []struct {
		name     string
		lat, lon float64
	}{
		{"Wuhan", 30.9, 114.9},
		{"Beijing", 39.0, 117.0},
		{"New Delhi", 28.9, 77.0},
		{"UAE", 24.9, 54.9},
	} {
		cell := geo.CellOf(c.lat, c.lon)
		cs := report.CellCS[cell]
		if cs == 0 {
			fmt.Printf("  %-10s %s: no change-sensitive blocks at this world size\n", c.name, cell)
			continue
		}
		series := report.CellFractionSeries(cell, changepoint.Down, startDay, endDay)
		bestDay, best := -1, 0.0
		for i, v := range series {
			if v > best {
				best, bestDay = v, i
			}
		}
		if bestDay < 0 {
			fmt.Printf("  %-10s %s: %d change-sensitive blocks, no downward changes\n", c.name, cell, cs)
			continue
		}
		fmt.Printf("  %-10s %s: peak %s with %.0f%% of %d blocks down\n",
			c.name, cell, day((startDay+int64(bestDay))*diurnal.SecondsPerDay), 100*best, cs)
	}
}

func day(t int64) string {
	return time.Unix(t, 0).UTC().Format("2006-01-02")
}
