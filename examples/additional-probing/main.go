// additional-probing: why dense blocks need extra probes (§2.8).
//
// Trinocular stops probing a block at the first positive response, so a
// block where most addresses always respond is re-scanned very slowly —
// too slowly to see its diurnal swing. The paper's fix is a designed
// observer that sends up to four extra probes per round even after a
// positive. This example classifies a dense campus block under standard
// probing, then with the additional observer, and shows the diurnal
// signal reappear.
//
//	go run ./examples/additional-probing
package main

import (
	"fmt"
	"log"
	"sort"

	"github.com/diurnalnet/diurnal"
	"github.com/diurnalnet/diurnal/internal/netsim"
	"github.com/diurnalnet/diurnal/internal/probe"
	"github.com/diurnalnet/diurnal/internal/reconstruct"
)

func main() {
	start := diurnal.Date(2020, 1, 1)
	end := diurnal.Date(2020, 1, 29)

	// A dense campus block: 160 always-on addresses hide 80 diurnal
	// desktops from a stop-on-first-positive prober.
	block, err := netsim.NewBlock(0x801010, 9, netsim.Spec{Workers: 80, AlwaysOn: 160})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dense block %v: |E(b)| = %d, %d always-on\n\n", block.ID, len(block.EverActive()), 160)

	cfg := diurnal.DefaultConfig(start, end)

	run := func(label string, engine *diurnal.Engine) {
		a, err := diurnal.AnalyzeBlock(cfg, engine, block)
		if err != nil {
			log.Fatal(err)
		}
		perObs, err := engine.Collect(block, start, start+4*diurnal.SecondsPerDay)
		if err != nil {
			log.Fatal(err)
		}
		scans := reconstruct.ScanTimes(reconstruct.Merge(perObs), block.EverActive())
		med := "never"
		if len(scans) > 0 {
			sort.Slice(scans, func(i, j int) bool { return scans[i] < scans[j] })
			med = fmt.Sprintf("%.1f h", float64(scans[len(scans)/2])/3600)
		}
		fmt.Printf("%s\n", label)
		fmt.Printf("  median full-block scan: %s\n", med)
		fmt.Printf("  diurnal score %.2f (SNR %.0f) -> change-sensitive: %v\n\n",
			a.Class.DiurnalScore, a.Class.SNR, a.Class.ChangeSensitive)
	}

	// One standard observer: scans crawl at ~one address per round.
	run("1 standard observer (stop on first positive):",
		&diurnal.Engine{Observers: probe.StandardObservers(1), QuarterSeed: 3})

	// Standard observer plus the §2.8 designed observer with 4 extra
	// probes per round.
	extra := probe.StandardObservers(2)
	extra[1].Name = "x"
	extra[1].Extra = 4
	run("standard observer + additional-observation prober (Extra=4):",
		&diurnal.Engine{Observers: extra, QuarterSeed: 3})

	fmt.Println("the additional observer restores sub-6-hour scans and the diurnal classification")
}
