// outage-vs-wfh: tell a network outage apart from a human-activity change.
//
// Changes in IP usage have many causes (§2.6): an outage is a downward
// change followed shortly by an upward one when the network recovers,
// while work-from-home is a sustained drop. This example runs two
// identical workplace blocks — one suffers a multi-day outage, the other a
// WFH order — and shows how the pipeline's outage-pair filter keeps only
// the human signal.
//
//	go run ./examples/outage-vs-wfh
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/diurnalnet/diurnal"
	"github.com/diurnalnet/diurnal/internal/netsim"
	"github.com/diurnalnet/diurnal/internal/probe"
)

func analyze(name string, block *netsim.Block, cfg diurnal.Config) {
	engine := &diurnal.Engine{Observers: probe.StandardObservers(4), QuarterSeed: 11}
	a, err := diurnal.AnalyzeBlock(cfg, engine, block)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s:\n", name)
	if len(a.Changes) == 0 && len(a.OutagePairs) == 0 {
		fmt.Println("  no changes detected")
	}
	for _, c := range a.Changes {
		fmt.Printf("  KEPT    %-4s change around %s (%+.1f addresses)\n",
			c.Dir, day(c.Point), c.RawAmplitude)
	}
	for _, c := range a.OutagePairs {
		fmt.Printf("  FILTERED %-4s change around %s — outage-detected or paired transient\n",
			c.Dir, day(c.Point))
	}
	fmt.Println()
}

func main() {
	start := diurnal.Date(2020, 1, 1)
	end := diurnal.Date(2020, 3, 25)
	cfg := diurnal.DefaultConfig(start, end)
	cfg.BaselineStart, cfg.BaselineEnd = start, diurnal.Date(2020, 1, 29)

	spec := netsim.Spec{Workers: 80, AlwaysOn: 6}

	outage, err := netsim.NewBlock(0x0A0101, 5, spec)
	if err != nil {
		log.Fatal(err)
	}
	oStart := diurnal.Date(2020, 2, 12) + 6*3600
	outage.AddEvent(netsim.Event{Kind: netsim.EventOutage, Start: oStart, End: oStart + 60*3600})

	wfh, err := netsim.NewBlock(0x0A0102, 5, spec)
	if err != nil {
		log.Fatal(err)
	}
	wfh.AddEvent(netsim.Event{Kind: netsim.EventWFH, Start: diurnal.Date(2020, 3, 15), Adoption: 0.9})

	analyze("block with a 2.5-day outage starting 2020-02-12", outage, cfg)
	analyze("block with work-from-home starting 2020-03-15", wfh, cfg)

	fmt.Println("the outage's paired down/up changes are filtered; the sustained WFH drop is kept")
}

func day(t int64) string {
	return time.Unix(t, 0).UTC().Format("2006-01-02")
}
