// Quickstart: detect a work-from-home onset in a single /24 block.
//
// This walks the paper's Figure 1 end to end through the public API: a
// university-style block with 70 workday desktops is probed by four
// Trinocular-style observers for a quarter; on 2020-03-15 most of its
// occupants start working from home. The pipeline reconstructs the
// active-address series, classifies the block change-sensitive, extracts
// the STL trend, and CUSUM finds the drop.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/diurnalnet/diurnal"
	"github.com/diurnalnet/diurnal/internal/netsim"
	"github.com/diurnalnet/diurnal/internal/probe"
)

func main() {
	start := diurnal.Date(2020, 1, 1)
	end := diurnal.Date(2020, 3, 25)
	wfh := diurnal.Date(2020, 3, 15)

	// A workplace /24: 70 worker desktops on public IPs, 8 always-on
	// servers, with US holidays and the March WFH order.
	block, err := netsim.NewBlock(0x800990, 42, netsim.Spec{
		Workers: 70, AlwaysOn: 8, TZOffset: -8 * 3600,
	})
	if err != nil {
		log.Fatal(err)
	}
	mlk := diurnal.Date(2020, 1, 20)
	block.AddEvent(netsim.Event{Kind: netsim.EventHoliday, Start: mlk, End: mlk + diurnal.SecondsPerDay, Adoption: 0.7})
	block.AddEvent(netsim.Event{Kind: netsim.EventWFH, Start: wfh, Adoption: 0.9})

	// Four unsynchronized observers ping the block every 11 minutes.
	engine := &diurnal.Engine{Observers: probe.StandardObservers(4), QuarterSeed: 7}

	cfg := diurnal.DefaultConfig(start, end)
	cfg.BaselineStart, cfg.BaselineEnd = start, diurnal.Date(2020, 1, 29)
	analysis, err := diurnal.AnalyzeBlock(cfg, engine, block)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("block %v: |E(b)| = %d probed addresses\n", block.ID, len(block.EverActive()))
	fmt.Printf("change-sensitive: %v (diurnal score %.2f, daily swing on %d of 7 days)\n",
		analysis.Class.ChangeSensitive, analysis.Class.DiurnalScore, analysis.Class.BestWindowDays)
	if len(analysis.Changes) == 0 {
		fmt.Println("no changes detected")
		return
	}
	for _, c := range analysis.Changes {
		fmt.Printf("%s change around %s: trend moved %+.1f addresses (onset %s, settled %s)\n",
			c.Dir, day(c.Point), c.RawAmplitude, day(c.Start), day(c.End))
	}
	fmt.Printf("\nground truth: work-from-home began %s\n", day(wfh))
}

func day(t int64) string {
	return time.Unix(t, 0).UTC().Format("2006-01-02")
}
