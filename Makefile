GO ?= go

.PHONY: build test tier1 vet race experiments bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# tier1 is the gate every change must pass: clean build, vet, and the full
# test suite under the race detector.
tier1: build vet race

experiments:
	$(GO) run ./cmd/experiments

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x
