GO ?= go
FSCK_DIR ?= /tmp/diurnal-fsck-store

.PHONY: build test tier1 vet race race-crashsafe fsck soak experiments bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# race-crashsafe focuses the race detector on the packages with the most
# cross-goroutine state: the pipeline/checkpoint machinery, the store,
# the lease-fenced shard ledger, and the streaming daemon.
race-crashsafe:
	$(GO) test -race ./internal/core/... ./internal/dataset/... ./internal/shard/... ./internal/stream/...

# tier1 is the gate every change must pass: clean build, vet, the full
# test suite, and the crash-safety packages under the race detector.
tier1: build vet test race-crashsafe

# fsck archives a small dataset with diurnalscan -save, then runs the
# store integrity check (-verify) over it — the end-to-end durability
# path: atomic log writes, CRC32C trailers, verification.
fsck: build
	rm -rf $(FSCK_DIR)
	$(GO) run ./cmd/diurnalscan -blocks 24 -end 2020-01-29 -save $(FSCK_DIR) >/dev/null
	$(GO) run ./cmd/diurnalscan -verify $(FSCK_DIR)
	rm -rf $(FSCK_DIR)

# soak runs the deterministic short chaos soak against the streaming
# daemon: fault-injected observers, seeded-random SIGKILLs, and the full
# invariant suite (prefix identity, exact resume, latency bound) on every
# incarnation. The byzantine leg reruns the kill loop with one lying
# observer and the integrity firewall armed. The nightly CI job runs the
# longer randomized variants.
soak:
	$(GO) test ./internal/stream/ -run 'TestChaosSoakShort|TestChaosSoakDiskPressure|TestByzantineSoakShort' -v

experiments:
	$(GO) run ./cmd/experiments

# bench runs every benchmark in the repo with allocation reporting and
# records the machine-readable summary (ns/op, B/op, allocs/op) in
# $(BENCH_JSON) via cmd/benchjson; the usual text output still streams to
# the terminal. The default single-iteration run keeps the full-world
# benchmarks affordable; override BENCH_ARGS (e.g. -benchtime=2s
# -bench=Periodogram) for steady-state numbers on a chosen subset.
BENCH_JSON ?= BENCH_8.json
BENCH_ARGS ?= -benchtime=1x
bench:
	$(GO) test -run='^$$' -bench=. -benchmem $(BENCH_ARGS) ./... | $(GO) run ./cmd/benchjson -o $(BENCH_JSON)
