module github.com/diurnalnet/diurnal

go 1.22
