// Package render draws text visualizations of pipeline results: a world
// map of gridcell intensities (the textual cousin of the paper's Figure 7
// bubble map and the covid.ant.isi.edu website) and compact sparklines for
// daily change-fraction series.
package render

import (
	"fmt"
	"sort"
	"strings"

	"github.com/diurnalnet/diurnal/internal/geo"
)

// intensity glyphs from empty to dense.
var glyphs = []rune{'·', '░', '▒', '▓', '█'}

// WorldMap renders per-gridcell values on a fixed-size ASCII map spanning
// latitude 72N..56S and longitude 180W..180E. Each character cell covers
// 8° of latitude and 6° of longitude (aggregating sixteen 2×2° gridcells);
// its glyph scales with the summed value. Cells without data render as
// spaces over ocean and '·' is reserved for zero-valued data.
func WorldMap(values map[geo.CellKey]int) string {
	const (
		latTop    = 72  // degrees north, top row
		latBottom = -56 // degrees north, bottom row
		latStep   = 8
		lonLeft   = -180
		lonStep   = 6
		cols      = 360 / lonStep
	)
	rows := (latTop - latBottom) / latStep
	grid := make([][]int, rows)
	for r := range grid {
		grid[r] = make([]int, cols)
		for c := range grid[r] {
			grid[r][c] = -1 // no data
		}
	}
	max := 0
	for cell, v := range values {
		lat, lon := cell.Center()
		if lat > latTop || lat < latBottom {
			continue
		}
		r := int((latTop - lat) / latStep)
		c := int((lon - lonLeft) / lonStep)
		if r < 0 || r >= rows || c < 0 || c >= cols {
			continue
		}
		if grid[r][c] < 0 {
			grid[r][c] = 0
		}
		grid[r][c] += v
		if grid[r][c] > max {
			max = grid[r][c]
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "    %s180W%s0%s180E\n", "", strings.Repeat(" ", cols/2-5), strings.Repeat(" ", cols/2-5))
	for r := 0; r < rows; r++ {
		lat := latTop - r*latStep - latStep/2
		fmt.Fprintf(&b, "%4s", latLabel(lat))
		for c := 0; c < cols; c++ {
			v := grid[r][c]
			switch {
			case v < 0:
				b.WriteByte(' ')
			case v == 0:
				b.WriteRune(glyphs[0])
			default:
				idx := 1 + (len(glyphs)-2)*v/max
				if idx >= len(glyphs) {
					idx = len(glyphs) - 1
				}
				b.WriteRune(glyphs[idx])
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "    scale: '%c' = 0, '%c'..'%c' up to %d per map cell\n",
		glyphs[0], glyphs[1], glyphs[len(glyphs)-1], max)
	return b.String()
}

func latLabel(lat int) string {
	switch {
	case lat > 0:
		return fmt.Sprintf("%dN ", lat)
	case lat < 0:
		return fmt.Sprintf("%dS ", -lat)
	default:
		return "0 "
	}
}

// sparkGlyphs are the eight block heights of a sparkline.
var sparkGlyphs = []rune{'▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'}

// Sparkline renders a numeric series as a one-line unicode sparkline,
// downsampling (by max) to at most width characters. An empty series
// renders as an empty string.
func Sparkline(series []float64, width int) string {
	if len(series) == 0 || width <= 0 {
		return ""
	}
	// Downsample by taking the max of each chunk, preserving peaks.
	n := len(series)
	if width > n {
		width = n
	}
	chunks := make([]float64, width)
	for i := 0; i < width; i++ {
		lo := i * n / width
		hi := (i + 1) * n / width
		if hi <= lo {
			hi = lo + 1
		}
		m := series[lo]
		for _, v := range series[lo:hi] {
			if v > m {
				m = v
			}
		}
		chunks[i] = m
	}
	max := 0.0
	for _, v := range chunks {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range chunks {
		if max == 0 {
			b.WriteRune(sparkGlyphs[0])
			continue
		}
		idx := int(v / max * float64(len(sparkGlyphs)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkGlyphs) {
			idx = len(sparkGlyphs) - 1
		}
		b.WriteRune(sparkGlyphs[idx])
	}
	return b.String()
}

// Histogram renders labeled bars scaled to fit width characters.
func Histogram(labels []string, values []float64, width int) string {
	if len(labels) != len(values) {
		return "render: label/value mismatch"
	}
	max := 0.0
	labelW := 0
	for i, v := range values {
		if v > max {
			max = v
		}
		if len(labels[i]) > labelW {
			labelW = len(labels[i])
		}
	}
	var b strings.Builder
	for i, v := range values {
		bar := 0
		if max > 0 {
			bar = int(v / max * float64(width))
		}
		fmt.Fprintf(&b, "%-*s %s %.3g\n", labelW, labels[i], strings.Repeat("#", bar), v)
	}
	return b.String()
}

// TopCells formats the n largest cells of a value map as "cell value"
// lines, ties broken by cell key for determinism.
func TopCells(values map[geo.CellKey]int, n int) string {
	type kv struct {
		cell geo.CellKey
		v    int
	}
	all := make([]kv, 0, len(values))
	for c, v := range values {
		all = append(all, kv{c, v})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].v != all[j].v {
			return all[i].v > all[j].v
		}
		if all[i].cell.Lat != all[j].cell.Lat {
			return all[i].cell.Lat < all[j].cell.Lat
		}
		return all[i].cell.Lon < all[j].cell.Lon
	})
	if n < len(all) {
		all = all[:n]
	}
	var b strings.Builder
	for _, e := range all {
		fmt.Fprintf(&b, "%-12s %d\n", e.cell, e.v)
	}
	return b.String()
}
