package render

import (
	"strings"
	"testing"

	"github.com/diurnalnet/diurnal/internal/geo"
)

func TestWorldMapBasics(t *testing.T) {
	values := map[geo.CellKey]int{
		geo.CellOf(30.9, 114.9):  50,
		geo.CellOf(48.0, 2.0):    10,
		geo.CellOf(-33.0, 151.0): 3,
	}
	out := WorldMap(values)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + 16 latitude rows + scale line.
	if len(lines) != 18 {
		t.Fatalf("map has %d lines, want 18:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "█") {
		t.Error("densest cell should render the heaviest glyph")
	}
	if !strings.Contains(out, "scale:") {
		t.Error("missing scale legend")
	}
	// Labels on both hemispheres.
	if !strings.Contains(out, "N ") || !strings.Contains(out, "S ") {
		t.Error("missing hemisphere labels")
	}
}

func mapBody(out string) string {
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	return strings.Join(lines[1:len(lines)-1], "\n") // drop header + legend
}

func TestWorldMapEmpty(t *testing.T) {
	out := WorldMap(nil)
	if !strings.Contains(out, "scale:") {
		t.Fatal("empty map should still render a frame")
	}
	if strings.ContainsAny(mapBody(out), "░▒▓█") {
		t.Fatal("empty map must not contain intensity glyphs")
	}
}

func TestWorldMapOutOfRangeIgnored(t *testing.T) {
	values := map[geo.CellKey]int{
		{Lat: 44, Lon: 0}: 9, // 88-90N: off the map
	}
	out := WorldMap(values)
	if strings.ContainsAny(mapBody(out), "░▒▓█") {
		t.Fatal("polar cell should be ignored")
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if len([]rune(s)) != 8 {
		t.Fatalf("width = %d, want 8", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[7] != '█' {
		t.Fatalf("ends wrong: %q", s)
	}
	// Monotone input gives monotone glyphs.
	for i := 1; i < len(runes); i++ {
		if runes[i] < runes[i-1] {
			t.Fatalf("sparkline not monotone: %q", s)
		}
	}
}

func TestSparklineDownsamplesPreservingPeaks(t *testing.T) {
	series := make([]float64, 100)
	series[42] = 10 // lone peak
	s := []rune(Sparkline(series, 10))
	if len(s) != 10 {
		t.Fatalf("width = %d", len(s))
	}
	found := false
	for _, r := range s {
		if r == '█' {
			found = true
		}
	}
	if !found {
		t.Fatalf("peak lost in downsampling: %q", string(s))
	}
}

func TestSparklineEdgeCases(t *testing.T) {
	if Sparkline(nil, 10) != "" {
		t.Error("empty series should render empty")
	}
	if Sparkline([]float64{1}, 0) != "" {
		t.Error("zero width should render empty")
	}
	flat := Sparkline([]float64{0, 0, 0}, 3)
	if flat != "▁▁▁" {
		t.Errorf("flat zero series = %q", flat)
	}
}

func TestHistogram(t *testing.T) {
	out := Histogram([]string{"Asia", "Europe"}, []float64{10, 5}, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if strings.Count(lines[0], "#") != 20 || strings.Count(lines[1], "#") != 10 {
		t.Fatalf("bar scaling wrong:\n%s", out)
	}
	if Histogram([]string{"a"}, nil, 10) == "" {
		t.Error("mismatch should render an error string")
	}
}

func TestTopCells(t *testing.T) {
	values := map[geo.CellKey]int{
		{Lat: 15, Lon: 57}: 9,
		{Lat: 19, Lon: 58}: 20,
		{Lat: 14, Lon: 38}: 9,
	}
	out := TopCells(values, 2)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[0], "20") {
		t.Fatalf("largest cell not first:\n%s", out)
	}
	// Ties break by key: lat 14 < lat 15.
	if !strings.Contains(lines[1], "28N") {
		t.Fatalf("tie break wrong:\n%s", out)
	}
}
