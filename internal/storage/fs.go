// Package storage is the filesystem seam shared by every durable writer
// in the repo: the stream WALs, the checkpoint journal, the dataset
// store, and the serve snapshot plane all write through an FS value
// instead of calling the os package directly. The seam exists for two
// reasons. First, crash-durability rules live in one place: the
// WriteFileAtomic helper here is the only correct spelling of
// "temp file, write, fsync, rename, fsync parent directory" — rename
// alone is not durable, because the directory entry lives in the parent
// directory's own blocks. Second, every failure path becomes testable:
// faults.FS implements the same interface with a deterministic schedule
// of ENOSPC, short writes, and failed fsyncs/renames, so the governance
// layer's degradation contract is exercised by ordinary unit tests
// instead of waiting for a full disk in production.
package storage

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// File is the writable-file surface durable writers need. *os.File
// satisfies it directly.
type File interface {
	io.Writer
	io.Closer
	Sync() error
	Truncate(size int64) error
	Seek(offset int64, whence int) (int64, error)
	Name() string
}

// FS is the filesystem surface durable writers need. OS is the real
// implementation; faults.FS wraps any FS with injected failures.
type FS interface {
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	MkdirAll(path string, perm fs.FileMode) error
	ReadFile(name string) ([]byte, error)
	ReadDir(name string) ([]fs.DirEntry, error)
	Stat(name string) (fs.FileInfo, error)
	// SyncDir fsyncs a directory, making previously renamed or created
	// entries inside it durable.
	SyncDir(dir string) error
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	return os.CreateTemp(dir, pattern)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) MkdirAll(path string, perm fs.FileMode) error {
	return os.MkdirAll(path, perm)
}
func (osFS) ReadFile(name string) ([]byte, error)       { return os.ReadFile(name) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }
func (osFS) Stat(name string) (fs.FileInfo, error)      { return os.Stat(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// WriteFileAtomic durably replaces path with the bytes produced by
// write: temp file in the same directory, write, fsync, close, rename
// over path, fsync the parent directory. After it returns nil the new
// contents survive both process death and power loss; on any error the
// previous contents of path are untouched and the temp file is removed
// (unless the process is killed first — callers that must guarantee
// zero litter sweep "*.tmp*" siblings on open).
func WriteFileAtomic(fsys FS, path string, write func(File) error) error {
	dir := filepath.Dir(path)
	f, err := fsys.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("storage: creating temp for %s: %w", path, err)
	}
	tmp := f.Name()
	defer fsys.Remove(tmp)
	if err := write(f); err != nil {
		f.Close()
		return fmt.Errorf("storage: writing %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("storage: syncing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("storage: closing %s: %w", path, err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return fmt.Errorf("storage: renaming %s into place: %w", path, err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("storage: syncing directory %s: %w", dir, err)
	}
	return nil
}

// WriteBytesAtomic is WriteFileAtomic for callers that already hold the
// full contents.
func WriteBytesAtomic(fsys FS, path string, data []byte) error {
	return WriteFileAtomic(fsys, path, func(f File) error {
		_, err := f.Write(data)
		return err
	})
}

// DirBytes sums the sizes of the regular files directly inside dir
// (non-recursive). A missing directory counts as zero bytes; it is the
// disk-budget accountant's view of a journal or snapshot directory.
func DirBytes(fsys FS, dir string) (int64, error) {
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	var total int64
	for _, e := range ents {
		if !e.Type().IsRegular() {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue // raced with a delete; the entry no longer counts
		}
		total += info.Size()
	}
	return total, nil
}

// TreeBytes sums regular-file sizes under root recursively — the
// experiment-facing "total disk used by this run" measure.
func TreeBytes(root string) (int64, error) {
	var total int64
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			if os.IsNotExist(err) {
				return nil
			}
			return err
		}
		if d.Type().IsRegular() {
			if info, err := d.Info(); err == nil {
				total += info.Size()
			}
		}
		return nil
	})
	if os.IsNotExist(err) {
		return 0, nil
	}
	return total, err
}
