package storage_test

// The atomic-write contract and the byte accountants, exercised through
// both the real filesystem and the fault injector (the injector lives in
// internal/faults, which imports this package — hence the external test
// package).

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"github.com/diurnalnet/diurnal/internal/faults"
	"github.com/diurnalnet/diurnal/internal/storage"
)

func TestWriteBytesAtomicReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	if err := storage.WriteBytesAtomic(storage.OS, path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := storage.WriteBytesAtomic(storage.OS, path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "v2" {
		t.Fatalf("read back %q, %v", data, err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Errorf("temp litter survived the atomic write: %v", ents)
	}
}

// TestWriteBytesAtomicFailedRenameKeepsOld: when the rename is refused
// the previous contents are untouched and the temp file is cleaned up.
func TestWriteBytesAtomicFailedRenameKeepsOld(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	if err := storage.WriteBytesAtomic(storage.OS, path, []byte("old")); err != nil {
		t.Fatal(err)
	}
	ffs := &faults.FS{Plan: faults.FSPlan{FailRenameAt: 1}}
	err := storage.WriteBytesAtomic(ffs, path, []byte("new"))
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("injected rename failure lost its errno: %v", err)
	}
	data, rerr := os.ReadFile(path)
	if rerr != nil || string(data) != "old" {
		t.Fatalf("previous contents disturbed: %q, %v", data, rerr)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Errorf("temp litter survived the failed write: %v", ents)
	}
}

// TestWriteBytesAtomicDirFsyncOrdering: the parent-directory fsync is
// the last step, after the rename — the injected filesystem fails the
// second sync (the first is the temp file's), and the new contents must
// already be in place.
func TestWriteBytesAtomicDirFsyncOrdering(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	ffs := &faults.FS{Plan: faults.FSPlan{FailSyncAt: 2}}
	err := storage.WriteBytesAtomic(ffs, path, []byte("v1"))
	if err == nil || !strings.Contains(err.Error(), "syncing directory") {
		t.Fatalf("second sync is not the directory fsync: %v", err)
	}
	if data, rerr := os.ReadFile(path); rerr != nil || string(data) != "v1" {
		t.Fatalf("rename did not precede the directory fsync: %q, %v", data, rerr)
	}
}

func TestDirBytesAndTreeBytes(t *testing.T) {
	root := t.TempDir()
	if n, err := storage.DirBytes(storage.OS, filepath.Join(root, "missing")); n != 0 || err != nil {
		t.Fatalf("missing dir = %d, %v; want 0 bytes, nil", n, err)
	}
	if err := os.WriteFile(filepath.Join(root, "a"), make([]byte, 10), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(root, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "sub", "b"), make([]byte, 7), 0o644); err != nil {
		t.Fatal(err)
	}
	if n, err := storage.DirBytes(storage.OS, root); n != 10 || err != nil {
		t.Errorf("DirBytes = %d, %v; want the 10 non-recursive bytes", n, err)
	}
	if n, err := storage.TreeBytes(root); n != 17 || err != nil {
		t.Errorf("TreeBytes = %d, %v; want all 17 bytes", n, err)
	}
}
