package changepoint

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// step builds a series of n samples with a level shift at cut, transitioning
// linearly over ramp samples from level a to b.
func step(n, cut, ramp int, a, b float64) []float64 {
	x := make([]float64, n)
	for i := range x {
		switch {
		case i < cut:
			x[i] = a
		case i >= cut+ramp:
			x[i] = b
		default:
			frac := float64(i-cut) / float64(ramp)
			x[i] = a + (b-a)*frac
		}
	}
	return x
}

func TestDetectDownwardStep(t *testing.T) {
	x := Normalize(step(500, 250, 20, 20, 5))
	changes, err := Detect(x, DefaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) != 1 {
		t.Fatalf("got %d changes, want 1: %+v", len(changes), changes)
	}
	c := changes[0]
	if c.Dir != Down {
		t.Errorf("direction = %v, want down", c.Dir)
	}
	if c.Start < 240 || c.Start > 260 {
		t.Errorf("start = %d, want ~250", c.Start)
	}
	if c.Alarm < c.Start || c.Alarm > 280 {
		t.Errorf("alarm = %d out of expected range", c.Alarm)
	}
	if c.End < c.Alarm || c.End > 285 {
		t.Errorf("end = %d, want within the ramp (alarm=%d)", c.End, c.Alarm)
	}
	if c.Amplitude >= 0 {
		t.Errorf("amplitude = %g, want negative", c.Amplitude)
	}
}

func TestDetectUpwardStep(t *testing.T) {
	x := Normalize(step(500, 250, 20, 5, 20))
	changes, err := Detect(x, DefaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) != 1 || changes[0].Dir != Up {
		t.Fatalf("got %+v, want one upward change", changes)
	}
	if changes[0].Amplitude <= 0 {
		t.Errorf("amplitude = %g, want positive", changes[0].Amplitude)
	}
}

func TestDetectNoChangeOnFlat(t *testing.T) {
	x := make([]float64, 400)
	for i := range x {
		x[i] = 7
	}
	changes, err := Detect(Normalize(x), DefaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) != 0 {
		t.Fatalf("flat series produced changes: %+v", changes)
	}
}

func TestDetectNoChangeOnSmallNoise(t *testing.T) {
	// Mild noise around a constant should not trip the threshold after
	// normalization... it can, because z-scoring amplifies pure noise.
	// Instead verify drift suppresses slow linear ramps.
	n := 1000
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i) * 0.0005 // total rise 0.5 over the series
	}
	// With drift larger than the per-sample slope, no alarm.
	changes, err := Detect(x, Opts{Threshold: 1, Drift: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) != 0 {
		t.Fatalf("slow ramp below drift produced changes: %+v", changes)
	}
}

func TestDetectOutagePairAndFilter(t *testing.T) {
	// Down then up shortly after: an outage signature.
	n := 600
	x := make([]float64, n)
	for i := range x {
		x[i] = 20.0
		if i >= 290 && i < 310 {
			x[i] = 2 // 20-sample outage
		}
	}
	changes, err := Detect(Normalize(x), DefaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) < 2 {
		t.Fatalf("expected >= 2 changes for an outage, got %+v", changes)
	}
	kept, removed := FilterOutages(changes, 60)
	if len(removed) < 2 {
		t.Fatalf("outage pair not removed: kept=%+v removed=%+v", kept, removed)
	}
	if len(kept) != len(changes)-len(removed) {
		t.Fatalf("kept+removed != total")
	}
}

func TestFilterOutagesKeepsIsolatedDown(t *testing.T) {
	changes := []Change{{Alarm: 100, Dir: Down}}
	kept, removed := FilterOutages(changes, 50)
	if len(kept) != 1 || len(removed) != 0 {
		t.Fatalf("isolated change mishandled: %v %v", kept, removed)
	}
}

func TestFilterOutagesRespectsGap(t *testing.T) {
	changes := []Change{
		{Alarm: 100, Dir: Down},
		{Alarm: 400, Dir: Up}, // far away: not an outage pair
	}
	kept, removed := FilterOutages(changes, 50)
	if len(kept) != 2 || len(removed) != 0 {
		t.Fatalf("distant pair should be kept: kept=%v removed=%v", kept, removed)
	}
	kept, removed = FilterOutages(changes, 500)
	if len(kept) != 0 || len(removed) != 2 {
		t.Fatalf("wide gap should remove pair: kept=%v removed=%v", kept, removed)
	}
}

func TestFilterOutagesSameDirectionNotPaired(t *testing.T) {
	changes := []Change{
		{Alarm: 100, Dir: Down},
		{Alarm: 110, Dir: Down},
	}
	kept, removed := FilterOutages(changes, 50)
	if len(kept) != 2 || len(removed) != 0 {
		t.Fatalf("same-direction changes must not pair: kept=%v removed=%v", kept, removed)
	}
}

func TestDownward(t *testing.T) {
	changes := []Change{
		{Alarm: 1, Dir: Down},
		{Alarm: 2, Dir: Up},
		{Alarm: 3, Dir: Down},
	}
	d := Downward(changes)
	if len(d) != 2 || d[0].Alarm != 1 || d[1].Alarm != 3 {
		t.Fatalf("Downward = %+v", d)
	}
	if Downward(nil) != nil {
		t.Fatal("Downward(nil) should be nil")
	}
}

func TestDetectErrors(t *testing.T) {
	if _, err := Detect([]float64{1, 2}, Opts{Threshold: 0}); err == nil {
		t.Error("expected error for zero threshold")
	}
	if _, err := Detect([]float64{1, 2}, Opts{Threshold: 1, Drift: -1}); err == nil {
		t.Error("expected error for negative drift")
	}
}

func TestDetectShortSeries(t *testing.T) {
	for _, x := range [][]float64{nil, {1}, {1, 1}} {
		changes, err := Detect(x, DefaultOpts())
		if err != nil {
			t.Fatal(err)
		}
		if len(changes) != 0 {
			t.Fatalf("short series %v produced changes", x)
		}
	}
}

func TestDetectWithSumsTraces(t *testing.T) {
	x := Normalize(step(300, 150, 10, 10, 0))
	changes, sums, err := DetectWithSums(x, DefaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(sums.Pos) != len(x) || len(sums.Neg) != len(x) {
		t.Fatal("sums length mismatch")
	}
	if len(changes) == 0 {
		t.Fatal("expected a change")
	}
	// The negative sum must have grown before the alarm.
	a := changes[0].Alarm
	if sums.Neg[a-1] <= 0 {
		t.Fatalf("negative cumulative sum at alarm-1 = %g, want > 0", sums.Neg[a-1])
	}
	// All sums are non-negative by construction.
	for i := range sums.Pos {
		if sums.Pos[i] < 0 || sums.Neg[i] < 0 {
			t.Fatalf("negative cumulative sum at %d", i)
		}
	}
}

func TestDetectOrderedProperty(t *testing.T) {
	// Property: changes come out in time order with Start <= Alarm <= End,
	// for random piecewise-constant series.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 400
		x := make([]float64, n)
		level := rng.Float64() * 10
		for i := range x {
			if rng.Float64() < 0.01 {
				level += (rng.Float64() - 0.5) * 20
			}
			x[i] = level + rng.NormFloat64()*0.05
		}
		changes, err := Detect(Normalize(x), DefaultOpts())
		if err != nil {
			return false
		}
		prev := -1
		for _, c := range changes {
			if c.Start > c.Alarm || c.Alarm > c.End {
				return false
			}
			if c.Alarm <= prev {
				return false
			}
			prev = c.Alarm
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDetectPointOfLargestChange(t *testing.T) {
	// The paper reports the point of change for its example block as the
	// midpoint of a WFH transition; verify start and end bracket the true
	// transition for a realistic trend shape.
	n := 1000
	cut := 600
	x := make([]float64, n)
	for i := range x {
		x[i] = 15 - 10/(1+math.Exp(-float64(i-cut)/15))
	}
	changes, err := Detect(Normalize(x), DefaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) != 1 {
		t.Fatalf("want 1 change, got %+v", changes)
	}
	c := changes[0]
	if c.Start > cut || c.End < cut {
		t.Fatalf("change [%d,%d] does not bracket true cut %d", c.Start, c.End, cut)
	}
}

func TestNormalizeDelegates(t *testing.T) {
	z := Normalize([]float64{1, 2, 3})
	if len(z) != 3 || math.Abs(z[0]+z[2]) > 1e-12 {
		t.Fatalf("Normalize = %v", z)
	}
}

// TestDetectEmptyTrend: an empty series (a block with no trend at all,
// e.g. never-responsive) must detect nothing, return usable empty sums,
// and not error — callers feed STL output straight in without length
// checks.
func TestDetectEmptyTrend(t *testing.T) {
	for _, x := range [][]float64{nil, {}} {
		changes, sums, err := DetectWithSums(x, DefaultOpts())
		if err != nil {
			t.Fatal(err)
		}
		if len(changes) != 0 {
			t.Fatalf("empty series detected %+v", changes)
		}
		if sums == nil || len(sums.Pos) != len(x) || len(sums.Neg) != len(x) {
			t.Fatalf("sums not usable for empty input: %+v", sums)
		}
	}
}

// TestDetectSingleSample: one sample has no differences to accumulate;
// the detector must return cleanly with sums of length 1.
func TestDetectSingleSample(t *testing.T) {
	changes, sums, err := DetectWithSums([]float64{3.14}, DefaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) != 0 {
		t.Fatalf("single sample detected %+v", changes)
	}
	if len(sums.Pos) != 1 || len(sums.Neg) != 1 || sums.Pos[0] != 0 || sums.Neg[0] != 0 {
		t.Fatalf("single-sample sums = %+v", sums)
	}
}

// TestDetectAllNaN: a trend of NaNs (every z-score undefined — a block
// whose activity series is all gaps) must not alarm and must not panic.
// NaN comparisons are false, so the cumulative sums poison to NaN and the
// threshold test never fires; the contract is zero changes, not garbage
// ones.
func TestDetectAllNaN(t *testing.T) {
	x := make([]float64, 64)
	for i := range x {
		x[i] = math.NaN()
	}
	changes, err := Detect(x, DefaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) != 0 {
		t.Fatalf("all-NaN series detected %+v", changes)
	}
	// The constant-series cousin: ZScore of a flat trend is all zeros
	// (zero variance), which likewise must stay silent.
	flat := Normalize([]float64{7, 7, 7, 7, 7, 7})
	changes, err = Detect(flat, DefaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) != 0 {
		t.Fatalf("flat series detected %+v", changes)
	}
}

// TestDetectDriftSwampsExcursions: with drift larger than every
// first-difference, the cumulative sums are pinned at zero and even a
// real level shift must not alarm — the classical CUSUM dead zone. This
// nails the parameter semantics the paper relies on (drift 0.001 being
// far below real excursions).
func TestDetectDriftSwampsExcursions(t *testing.T) {
	// A slow ramp: every per-sample difference is 0.1, well under drift 1.
	x := step(200, 50, 100, 0, 10)
	changes, sums, err := DetectWithSums(x, Opts{Threshold: 1, Drift: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) != 0 {
		t.Fatalf("drift-swamped series detected %+v", changes)
	}
	for i := range sums.Pos {
		if sums.Pos[i] != 0 || sums.Neg[i] != 0 {
			t.Fatalf("sums escaped the dead zone at %d: pos=%v neg=%v", i, sums.Pos[i], sums.Neg[i])
		}
	}
	// Sanity: the same shift with the paper's drift does alarm, so the
	// dead zone above is the drift's doing, not a broken detector.
	changes, err = Detect(x, DefaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) == 0 {
		t.Fatal("control detection found nothing; test series too weak")
	}
}

func BenchmarkDetectQuarter(b *testing.B) {
	// A quarter of hourly samples (~2200 points).
	x := Normalize(step(2200, 1500, 48, 20, 6))
	opts := DefaultOpts()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Detect(x, opts); err != nil {
			b.Fatal(err)
		}
	}
}
