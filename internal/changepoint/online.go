package changepoint

// Online CUSUM for the streaming daemon. The batch Detect sees a complete
// series and runs forward and time-reversed passes; a daemon ingesting
// samples as they settle cannot reverse time, so Online replicates exactly
// the forward recursion of detectOnePass plus the on-the-fly equivalent of
// mergeContiguous, one sample at a time. Its state is a small plain struct
// (OnlineState) so a crash-safe caller can persist it and restore the
// detector to the precise sample where it left off; feeding the same
// samples in any chunking — including a restart mid-stream — yields the
// same changes as one uninterrupted pass.

import "fmt"

// OnlineState is the complete persistent state of an Online detector: a
// value type with no references, safe to copy, compare, and serialize.
// Restoring it (plus the changes emitted so far) resumes detection
// bit-identically.
type OnlineState struct {
	// GP and GN are the positive and negative cumulative sums.
	GP, GN float64
	// Tap and Tan are the indices where each sum last touched zero — the
	// estimated onset of a change in progress.
	Tap, Tan int
	// Next is the index the next sample will occupy.
	Next int
	// Prev is the last sample value (meaningful once Started).
	Prev float64
	// Started records whether any sample has been seen; the recursion
	// works on first differences, so the first sample only primes Prev.
	Started bool
}

// Online is an incremental two-sided CUSUM detector. Feed samples with
// Update; Changes returns everything detected so far, merged exactly as
// the batch forward pass merges contiguous alarms. Not safe for
// concurrent use.
type Online struct {
	opts    Opts
	s       OnlineState
	changes []Change
}

// NewOnline returns an empty online detector. It rejects the same option
// values Detect rejects.
func NewOnline(opts Opts) (*Online, error) {
	if opts.Threshold <= 0 {
		return nil, fmt.Errorf("changepoint: threshold %v must be positive", opts.Threshold)
	}
	if opts.Drift < 0 {
		return nil, fmt.Errorf("changepoint: negative drift %v", opts.Drift)
	}
	return &Online{opts: opts}, nil
}

// RestoreOnline reconstructs a detector from a persisted state snapshot
// and the changes emitted before the snapshot. changes is copied.
func RestoreOnline(opts Opts, st OnlineState, changes []Change) (*Online, error) {
	o, err := NewOnline(opts)
	if err != nil {
		return nil, err
	}
	o.s = st
	o.changes = append(o.changes, changes...)
	return o, nil
}

// Update feeds one sample and reports whether it tripped an alarm (either
// a new change or the extension of a contiguous one).
func (o *Online) Update(v float64) bool {
	s := &o.s
	if !s.Started {
		s.Prev, s.Started, s.Next = v, true, 1
		return false
	}
	i := s.Next
	s.Next = i + 1
	d := v - s.Prev
	s.Prev = v
	s.GP += d - o.opts.Drift
	s.GN += -d - o.opts.Drift
	if s.GP < 0 {
		s.GP = 0
		s.Tap = i
	}
	if s.GN < 0 {
		s.GN = 0
		s.Tan = i
	}
	// Positive alarm condition mirroring the batch detector's
	// (gp > T || gn > T). The inverted form (GP <= T && GN <= T → no
	// alarm) is not equivalent under NaN: every NaN comparison is false,
	// so a NaN sample fell through here and emitted a bogus Down change
	// per sample. NaN input must detect nothing, exactly as in batch.
	if !(s.GP > o.opts.Threshold || s.GN > o.opts.Threshold) {
		return false
	}
	c := Change{Alarm: i, End: i}
	if s.GP > o.opts.Threshold {
		c.Dir = Up
		c.Start = s.Tap
	} else {
		c.Dir = Down
		c.Start = s.Tan
	}
	s.GP, s.GN = 0, 0
	s.Tap, s.Tan = i, i
	// mergeContiguous, one change at a time: a slow transition trips the
	// threshold repeatedly, and those alarms describe one underlying change.
	if n := len(o.changes); n > 0 {
		last := &o.changes[n-1]
		if c.Dir == last.Dir && c.Start <= last.End {
			last.End = c.End
			return true
		}
	}
	o.changes = append(o.changes, c)
	return true
}

// UpdateBatch feeds a chunk of samples in order.
func (o *Online) UpdateBatch(xs []float64) {
	for _, v := range xs {
		o.Update(v)
	}
}

// Changes returns the changes detected so far, in time order, identical to
// mergeContiguous(detectOnePass(x, opts, nil)) over every sample fed. The
// last change may still extend if future samples continue the transition;
// Amplitude is not filled (the onset value is not retained). The returned
// slice is the detector's own; callers must not mutate it.
func (o *Online) Changes() []Change { return o.changes }

// State snapshots the recursion state. Persist it together with Changes
// to resume via RestoreOnline.
func (o *Online) State() OnlineState { return o.s }

// Count returns how many samples have been fed.
func (o *Online) Count() int {
	if !o.s.Started {
		return 0
	}
	return o.s.Next
}
