package changepoint

import (
	"math/rand"
	"reflect"
	"testing"
)

// stepSeries builds a noisy series with a few injected level shifts, noisy
// enough to trip CUSUM repeatedly.
func stepSeries(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	level := 0.0
	for i := range x {
		if i > 0 && rng.Intn(97) == 0 {
			level += rng.NormFloat64() * 3
		}
		x[i] = level + rng.NormFloat64()*0.1
	}
	return x
}

// batchForward is the batch reference the online detector must match: the
// forward pass with contiguous-alarm merging (no time-reversed end
// refinement, which needs the future).
func batchForward(x []float64, opts Opts) []Change {
	return mergeContiguous(detectOnePass(x, opts, nil))
}

func TestOnlineMatchesBatchForward(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	opts := Opts{Threshold: 1, Drift: 0.004}
	for trial := 0; trial < 20; trial++ {
		x := stepSeries(rng, 500+rng.Intn(500))
		want := batchForward(x, opts)
		o, err := NewOnline(opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range x {
			o.Update(v)
		}
		if !reflect.DeepEqual(stripAmp(want), stripAmp(o.Changes())) {
			t.Fatalf("trial %d: online %v != batch %v", trial, o.Changes(), want)
		}
		if o.Count() != len(x) {
			t.Fatalf("trial %d: count %d != %d", trial, o.Count(), len(x))
		}
	}
}

// TestOnlineChunkingInvariant feeds the same series in random chunk sizes
// and asserts the result never depends on the chunking.
func TestOnlineChunkingInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	opts := Opts{Threshold: 1, Drift: 0.004}
	x := stepSeries(rng, 2000)
	want := batchForward(x, opts)
	for trial := 0; trial < 10; trial++ {
		o, _ := NewOnline(opts)
		for i := 0; i < len(x); {
			j := i + 1 + rng.Intn(40)
			if j > len(x) {
				j = len(x)
			}
			o.UpdateBatch(x[i:j])
			i = j
		}
		if !reflect.DeepEqual(stripAmp(want), stripAmp(o.Changes())) {
			t.Fatalf("trial %d: chunked online diverged from batch", trial)
		}
	}
}

// TestOnlineSnapshotRestore kills the detector at an arbitrary point,
// restores from its persisted state, and checks the combined run is
// identical to an uninterrupted one — the crash-resume contract the
// streaming daemon relies on.
func TestOnlineSnapshotRestore(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	opts := Opts{Threshold: 1, Drift: 0.004}
	x := stepSeries(rng, 1500)
	want := batchForward(x, opts)
	for _, cut := range []int{0, 1, 7, 500, 1499} {
		o1, _ := NewOnline(opts)
		o1.UpdateBatch(x[:cut])
		st := o1.State()
		emitted := append([]Change(nil), o1.Changes()...)
		o2, err := RestoreOnline(opts, st, emitted)
		if err != nil {
			t.Fatal(err)
		}
		o2.UpdateBatch(x[cut:])
		if !reflect.DeepEqual(stripAmp(want), stripAmp(o2.Changes())) {
			t.Fatalf("cut %d: restored run diverged from uninterrupted", cut)
		}
	}
}

func TestOnlineRejectsBadOpts(t *testing.T) {
	if _, err := NewOnline(Opts{Threshold: 0}); err == nil {
		t.Error("zero threshold accepted")
	}
	if _, err := NewOnline(Opts{Threshold: 1, Drift: -1}); err == nil {
		t.Error("negative drift accepted")
	}
}

// stripAmp zeroes amplitudes for comparison: Online does not fill them
// (documented), and the batch forward pass leaves them zero too — this
// keeps the comparison honest if that ever changes.
func stripAmp(cs []Change) []Change {
	out := make([]Change, len(cs))
	copy(out, cs)
	for i := range out {
		out[i].Amplitude = 0
	}
	return out
}
