package changepoint

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// stepSeries builds a noisy series with a few injected level shifts, noisy
// enough to trip CUSUM repeatedly.
func stepSeries(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	level := 0.0
	for i := range x {
		if i > 0 && rng.Intn(97) == 0 {
			level += rng.NormFloat64() * 3
		}
		x[i] = level + rng.NormFloat64()*0.1
	}
	return x
}

// batchForward is the batch reference the online detector must match: the
// forward pass with contiguous-alarm merging (no time-reversed end
// refinement, which needs the future).
func batchForward(x []float64, opts Opts) []Change {
	return mergeContiguous(detectOnePass(x, opts, nil))
}

func TestOnlineMatchesBatchForward(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	opts := Opts{Threshold: 1, Drift: 0.004}
	for trial := 0; trial < 20; trial++ {
		x := stepSeries(rng, 500+rng.Intn(500))
		want := batchForward(x, opts)
		o, err := NewOnline(opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range x {
			o.Update(v)
		}
		if !reflect.DeepEqual(stripAmp(want), stripAmp(o.Changes())) {
			t.Fatalf("trial %d: online %v != batch %v", trial, o.Changes(), want)
		}
		if o.Count() != len(x) {
			t.Fatalf("trial %d: count %d != %d", trial, o.Count(), len(x))
		}
	}
}

// TestOnlineChunkingInvariant feeds the same series in random chunk sizes
// and asserts the result never depends on the chunking.
func TestOnlineChunkingInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	opts := Opts{Threshold: 1, Drift: 0.004}
	x := stepSeries(rng, 2000)
	want := batchForward(x, opts)
	for trial := 0; trial < 10; trial++ {
		o, _ := NewOnline(opts)
		for i := 0; i < len(x); {
			j := i + 1 + rng.Intn(40)
			if j > len(x) {
				j = len(x)
			}
			o.UpdateBatch(x[i:j])
			i = j
		}
		if !reflect.DeepEqual(stripAmp(want), stripAmp(o.Changes())) {
			t.Fatalf("trial %d: chunked online diverged from batch", trial)
		}
	}
}

// TestOnlineSnapshotRestore kills the detector at an arbitrary point,
// restores from its persisted state, and checks the combined run is
// identical to an uninterrupted one — the crash-resume contract the
// streaming daemon relies on.
func TestOnlineSnapshotRestore(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	opts := Opts{Threshold: 1, Drift: 0.004}
	x := stepSeries(rng, 1500)
	want := batchForward(x, opts)
	for _, cut := range []int{0, 1, 7, 500, 1499} {
		o1, _ := NewOnline(opts)
		o1.UpdateBatch(x[:cut])
		st := o1.State()
		emitted := append([]Change(nil), o1.Changes()...)
		o2, err := RestoreOnline(opts, st, emitted)
		if err != nil {
			t.Fatal(err)
		}
		o2.UpdateBatch(x[cut:])
		if !reflect.DeepEqual(stripAmp(want), stripAmp(o2.Changes())) {
			t.Fatalf("cut %d: restored run diverged from uninterrupted", cut)
		}
	}
}

func TestOnlineRejectsBadOpts(t *testing.T) {
	if _, err := NewOnline(Opts{Threshold: 0}); err == nil {
		t.Error("zero threshold accepted")
	}
	if _, err := NewOnline(Opts{Threshold: 1, Drift: -1}); err == nil {
		t.Error("negative drift accepted")
	}
}

// stripAmp zeroes amplitudes for comparison: Online does not fill them
// (documented), and the batch forward pass leaves them zero too — this
// keeps the comparison honest if that ever changes.
func stripAmp(cs []Change) []Change {
	out := make([]Change, len(cs))
	copy(out, cs)
	for i := range out {
		out[i].Amplitude = 0
	}
	return out
}

// TestOnlineAllNaN mirrors the batch edge suite's TestDetectAllNaN: an
// all-NaN window (a streaming block whose normalized series is all gaps)
// must detect nothing. Before the alarm condition was flipped to the
// batch detector's positive form, every NaN sample emitted a bogus Down
// change — one per sample, forever.
func TestOnlineAllNaN(t *testing.T) {
	o, err := NewOnline(Opts{Threshold: 1, Drift: 0.004})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if o.Update(math.NaN()) {
			t.Fatalf("NaN sample %d tripped an alarm", i)
		}
	}
	if got := o.Changes(); len(got) != 0 {
		t.Fatalf("all-NaN window detected %+v", got)
	}
	if o.Count() != 64 {
		t.Fatalf("count %d, want 64", o.Count())
	}
	// Parity with batch on the same input.
	x := make([]float64, 64)
	for i := range x {
		x[i] = math.NaN()
	}
	if want := batchForward(x, Opts{Threshold: 1, Drift: 0.004}); len(want) != 0 {
		t.Fatalf("batch reference detected %+v", want)
	}
}

// TestOnlineSingleSample: one sample has no difference to accumulate —
// no alarm, usable state, resumable.
func TestOnlineSingleSample(t *testing.T) {
	opts := Opts{Threshold: 1, Drift: 0.004}
	o, err := NewOnline(opts)
	if err != nil {
		t.Fatal(err)
	}
	if o.Update(3.14) {
		t.Fatal("single sample alarmed")
	}
	if len(o.Changes()) != 0 || o.Count() != 1 {
		t.Fatalf("changes %v count %d", o.Changes(), o.Count())
	}
	// The snapshot after one sample restores cleanly.
	r, err := RestoreOnline(opts, o.State(), o.Changes())
	if err != nil {
		t.Fatal(err)
	}
	if r.Count() != 1 {
		t.Fatalf("restored count %d", r.Count())
	}
}

// TestOnlineEmptyBaseline: a frozen baseline of length 0 normalizes to an
// empty series (stats.ZScore of nothing is nothing); feeding it is a
// no-op and the detector stays usable for later real samples.
func TestOnlineEmptyBaseline(t *testing.T) {
	o, err := NewOnline(Opts{Threshold: 1, Drift: 0.004})
	if err != nil {
		t.Fatal(err)
	}
	o.UpdateBatch(Normalize(nil))
	o.UpdateBatch(Normalize([]float64{}))
	if o.Count() != 0 || len(o.Changes()) != 0 {
		t.Fatalf("empty baseline advanced the detector: count %d changes %v", o.Count(), o.Changes())
	}
	// Still alive: a clear step afterwards is detected.
	for i := 0; i < 50; i++ {
		o.Update(0)
	}
	for i := 0; i < 50; i++ {
		o.Update(5)
	}
	if len(o.Changes()) == 0 {
		t.Fatal("detector dead after empty baseline")
	}
}
