// Package changepoint implements the CUSUM change-point detector the paper
// applies to the normalized STL trend of active-address counts (§2.6),
// following the classical formulation (Gustafsson 2000) as implemented by
// the detecta module the paper cites: cumulative sums of positive and
// negative first differences with a drift term, alarming when either sum
// crosses a threshold. It also provides the outage filter that discards
// closely paired down/up changes (outages and ISP renumbering events).
package changepoint

import (
	"fmt"

	"github.com/diurnalnet/diurnal/internal/stats"
)

// Direction is the sign of a detected change.
type Direction int

const (
	// Up marks an increase in the underlying level.
	Up Direction = 1
	// Down marks a decrease in the underlying level. Downward changes in
	// the address trend are the paper's human-activity signal.
	Down Direction = -1
)

// String returns "up" or "down".
func (d Direction) String() string {
	if d == Up {
		return "up"
	}
	return "down"
}

// Change describes one detected change point.
type Change struct {
	// Start is the sample index where the cumulative sum last left zero
	// before the alarm — the estimated onset of the change.
	Start int
	// Alarm is the index where the cumulative sum crossed the threshold.
	Alarm int
	// End is the estimated index where the change completed (from a
	// time-reversed detection pass); equals Alarm when the reverse pass
	// cannot be paired.
	End int
	// Dir is the change direction.
	Dir Direction
	// Amplitude is x[End] - x[Start], in the units of the input series.
	Amplitude float64
}

// Opts configures detection. The paper's defaults for z-score-normalized
// trends are Threshold 1 and Drift 0.001.
type Opts struct {
	Threshold float64
	Drift     float64
}

// DefaultOpts returns the paper's CUSUM parameters (threshold 1,
// drift 0.001), intended for series normalized with Normalize.
func DefaultOpts() Opts {
	return Opts{Threshold: 1, Drift: 0.001}
}

// Normalize returns the z-score of x, the normalization the paper applies
// to the STL trend "so we can use the same CUSUM parameters for every
// block".
func Normalize(x []float64) []float64 { return stats.ZScore(x) }

// Sums holds the cumulative sums of positive and negative changes over
// time, as plotted in the lower panel of the paper's Figure 1c.
type Sums struct {
	Pos []float64
	Neg []float64
}

// Detect runs two-sided CUSUM change detection on x and returns the
// changes in time order. It returns an error for a non-positive threshold.
func Detect(x []float64, opts Opts) ([]Change, error) {
	changes, _, err := DetectWithSums(x, opts)
	return changes, err
}

// DetectWithSums is Detect but also returns the cumulative-sum traces for
// inspection or plotting.
func DetectWithSums(x []float64, opts Opts) ([]Change, *Sums, error) {
	if opts.Threshold <= 0 {
		return nil, nil, fmt.Errorf("changepoint: threshold %v must be positive", opts.Threshold)
	}
	if opts.Drift < 0 {
		return nil, nil, fmt.Errorf("changepoint: negative drift %v", opts.Drift)
	}
	n := len(x)
	sums := &Sums{Pos: make([]float64, n), Neg: make([]float64, n)}
	if n < 2 {
		return nil, sums, nil
	}
	forward := mergeContiguous(detectOnePass(x, opts, sums))

	// Time-reversed pass to estimate where each change ends: a change's
	// end in forward time is its start in reversed time.
	rev := make([]float64, n)
	for i := range x {
		rev[i] = x[n-1-i]
	}
	backward := mergeContiguous(detectOnePass(rev, opts, nil))

	if len(backward) == len(forward) {
		for i := range forward {
			b := backward[len(backward)-1-i]
			end := n - 1 - b.Start
			if end >= forward[i].Alarm {
				forward[i].End = end
			}
		}
	}
	for i := range forward {
		forward[i].Amplitude = x[forward[i].End] - x[forward[i].Start]
	}
	return forward, sums, nil
}

// detectOnePass runs the forward CUSUM recursion, filling sums when
// non-nil. End fields are initialized to the alarm index.
func detectOnePass(x []float64, opts Opts, sums *Sums) []Change {
	var changes []Change
	gp, gn := 0.0, 0.0
	tap, tan := 0, 0
	for i := 1; i < len(x); i++ {
		s := x[i] - x[i-1]
		gp += s - opts.Drift
		gn += -s - opts.Drift
		if gp < 0 {
			gp = 0
			tap = i
		}
		if gn < 0 {
			gn = 0
			tan = i
		}
		if sums != nil {
			sums.Pos[i] = gp
			sums.Neg[i] = gn
		}
		if gp > opts.Threshold || gn > opts.Threshold {
			c := Change{Alarm: i, End: i}
			if gp > opts.Threshold {
				c.Dir = Up
				c.Start = tap
			} else {
				c.Dir = Down
				c.Start = tan
			}
			changes = append(changes, c)
			gp, gn = 0, 0
			tap, tan = i, i
		}
	}
	return changes
}

// mergeContiguous coalesces runs of same-direction changes where each
// change starts at (or before) the previous change's alarm: a single slow
// transition larger than the threshold trips CUSUM repeatedly, and those
// repeated alarms describe one underlying change. The merged change keeps
// the first start and alarm and extends End to the last alarm.
func mergeContiguous(changes []Change) []Change {
	if len(changes) < 2 {
		return changes
	}
	out := changes[:1]
	for _, c := range changes[1:] {
		last := &out[len(out)-1]
		if c.Dir == last.Dir && c.Start <= last.End {
			last.End = c.End
			continue
		}
		out = append(out, c)
	}
	return out
}

// FilterOutages removes down→up (and up→down) pairs whose alarms are
// within maxGap samples of each other. The paper identifies outages and
// ISP renumbering as "closely timed down and upward changes" and discards
// them (§2.6). It returns the surviving changes and the removed pairs.
func FilterOutages(changes []Change, maxGap int) (kept []Change, removed []Change) {
	used := make([]bool, len(changes))
	for i := 0; i < len(changes); i++ {
		if used[i] {
			continue
		}
		paired := false
		for j := i + 1; j < len(changes); j++ {
			if used[j] {
				continue
			}
			if changes[j].Alarm-changes[i].Alarm > maxGap {
				break
			}
			if changes[j].Dir == -changes[i].Dir {
				used[i], used[j] = true, true
				removed = append(removed, changes[i], changes[j])
				paired = true
				break
			}
		}
		if !paired && !used[i] {
			kept = append(kept, changes[i])
		}
	}
	return kept, removed
}

// Downward returns only the downward changes of a detection result. The
// paper focuses on downward trend changes, "since that reflects a
// reduction in the diurnal pattern".
func Downward(changes []Change) []Change {
	var out []Change
	for _, c := range changes {
		if c.Dir == Down {
			out = append(out, c)
		}
	}
	return out
}
