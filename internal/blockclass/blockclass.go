// Package blockclass decides which /24 blocks are change-sensitive
// (paper §2.4): blocks whose reconstructed active-address series shows a
// regular diurnal pattern (FFT energy at 24 hours and its harmonics) and a
// persistent wide daily swing (at least s addresses of midnight-to-midnight
// range on at least 4 of 7 consecutive days). Only change-sensitive blocks
// carry enough human signal for change detection; always-on servers, NAT
// front doors, and firewalled space are filtered out here.
package blockclass

import (
	"fmt"

	"github.com/diurnalnet/diurnal/internal/dsp"
	"github.com/diurnalnet/diurnal/internal/reconstruct"
)

// Config holds the classification thresholds. Zero fields take the paper's
// defaults via Default().
type Config struct {
	// DiurnalThreshold is the minimum fraction of non-DC spectral energy
	// at 24 h and harmonics for a block to count as diurnal.
	DiurnalThreshold float64
	// DiurnalSNR is the minimum spectral contrast of the 24 h harmonics
	// over the neighbouring bins; it rejects red-spectrum noise (slow
	// random wander) that inflates the energy fraction without a sharp
	// daily peak.
	DiurnalSNR float64
	// SwingThreshold is s, the minimum daily address swing; the paper
	// selects 5 "as the minimum value that tolerates uncorrelated outages
	// caused by a few computers".
	SwingThreshold float64
	// MinSwingDays and WindowDays encode the persistence rule: a wide
	// swing on at least MinSwingDays of WindowDays consecutive days, for
	// at least one window in the observation period (the paper uses 4 of
	// 7, tolerating 3-day weekends).
	MinSwingDays int
	WindowDays   int
	// SampleStep is the resampling interval in seconds for the FFT test.
	SampleStep int64
	// Harmonics counted in the diurnal test.
	Harmonics int
	// SegmentDays splits the window into segments of this many days; the
	// diurnal test must pass in every segment that holds at least two
	// full days of data. This is the paper's "strict requirement" of
	// consistent diurnality across the whole duration (§3.2.1): longer
	// windows intersect more behavioural churn and so pass less often.
	// Default 28.
	SegmentDays int
}

// Default returns the paper's thresholds.
func Default() Config {
	return Config{
		DiurnalThreshold: 0.15,
		DiurnalSNR:       25,
		SegmentDays:      28,
		SwingThreshold:   5,
		MinSwingDays:     4,
		WindowDays:       7,
		SampleStep:       3600,
		Harmonics:        3,
	}
}

func (c Config) withDefaults() Config {
	d := Default()
	if c.DiurnalThreshold == 0 {
		c.DiurnalThreshold = d.DiurnalThreshold
	}
	if c.DiurnalSNR == 0 {
		c.DiurnalSNR = d.DiurnalSNR
	}
	if c.SwingThreshold == 0 {
		c.SwingThreshold = d.SwingThreshold
	}
	if c.MinSwingDays == 0 {
		c.MinSwingDays = d.MinSwingDays
	}
	if c.WindowDays == 0 {
		c.WindowDays = d.WindowDays
	}
	if c.SampleStep == 0 {
		c.SampleStep = d.SampleStep
	}
	if c.Harmonics == 0 {
		c.Harmonics = d.Harmonics
	}
	if c.SegmentDays == 0 {
		c.SegmentDays = d.SegmentDays
	}
	return c
}

// Result reports each stage of the classification, mirroring the filter
// rows of the paper's Table 2.
type Result struct {
	// Responsive is true when the reconstruction has points and any
	// address was ever seen up.
	Responsive bool
	// DiurnalScore is the fraction of spectral energy at 24 h + harmonics.
	DiurnalScore float64
	// SNR is the spectral contrast of the harmonics over their
	// neighbourhood.
	SNR float64
	// Diurnal requires both DiurnalScore >= DiurnalThreshold and
	// SNR >= DiurnalSNR.
	Diurnal bool
	// WideSwing is true when the persistence rule is met.
	WideSwing bool
	// BestWindowDays is the maximum number of wide-swing days observed in
	// any WindowDays-long window.
	BestWindowDays int
	// ChangeSensitive = Responsive && Diurnal && WideSwing.
	ChangeSensitive bool
}

// Scratch holds the reusable working state of ClassifyScratch: the DSP
// scratch (FFT plans and periodogram buffers) and the segment resampling
// buffers. A zero Scratch is not usable — construct with NewScratch. Not
// safe for concurrent use; the pipeline gives each worker its own.
type Scratch struct {
	DSP      *dsp.Scratch
	Resample reconstruct.ResampleScratch

	// Batched-classification state: segment samples are copied out of the
	// resample scratch into a flat arena so all of a batch's segments stay
	// live at once, then grouped by length for the batched FFT.
	arena []float64
	jobs  []segJob
	rows  [][]float64
}

// segJob is one (series, segment) diurnal evaluation queued for batching.
type segJob struct {
	si     int // series index
	off, n int // samples in the arena
}

// NewScratch returns an empty classification scratch.
func NewScratch() *Scratch {
	return &Scratch{DSP: dsp.NewScratch()}
}

// Classify evaluates a reconstructed series over [start, end) against the
// thresholds. It returns an error only for invalid configuration; an
// empty or flat series simply classifies as not change-sensitive.
func Classify(series *reconstruct.Series, start, end int64, cfg Config) (Result, error) {
	return ClassifyScratch(series, start, end, cfg, nil)
}

// ClassifyScratch is Classify reusing sc's buffers and cached FFT plans
// across calls; sc may be nil, in which case a throwaway scratch is built.
// The hot path — one 28-day segment resample plus one periodogram feeding
// both the score and the SNR — allocates nothing on a warm scratch.
func ClassifyScratch(series *reconstruct.Series, start, end int64, cfg Config, sc *Scratch) (Result, error) {
	cfg = cfg.withDefaults()
	if sc == nil {
		sc = NewScratch()
	}
	if cfg.MinSwingDays > cfg.WindowDays {
		return Result{}, fmt.Errorf("blockclass: MinSwingDays %d > WindowDays %d", cfg.MinSwingDays, cfg.WindowDays)
	}
	if cfg.SampleStep <= 0 || cfg.SampleStep > 86400/2 {
		return Result{}, fmt.Errorf("blockclass: sample step %d outside (0, 12h]", cfg.SampleStep)
	}
	var res Result
	if series == nil || series.Len() == 0 {
		return res, nil
	}
	for _, c := range series.Counts {
		if c > 0 {
			res.Responsive = true
			break
		}
	}
	if !res.Responsive {
		return res, nil
	}

	// Evaluate the diurnal test per segment: every segment must show the
	// daily rhythm, so a block that is diurnal for only part of a long
	// window is rejected (consistent diurnality, §3.2.1). The reported
	// score and SNR are the weakest segment's.
	opts := dsp.DiurnalScoreOpts{
		SampleInterval: float64(cfg.SampleStep),
		Period:         86400,
		Harmonics:      cfg.Harmonics,
	}
	segLen := int64(cfg.SegmentDays) * 86400
	evaluated := false
	allPass := true
	for segStart := start; segStart < end; segStart += segLen {
		segEnd := segStart + segLen
		if segEnd > end {
			segEnd = end
		}
		if segEnd-segStart < 2*86400 {
			continue
		}
		resampled := series.ResampleInto(&sc.Resample, segStart, segEnd, cfg.SampleStep)
		if resampled == nil {
			continue
		}
		st, err := sc.DSP.DiurnalStats(resampled, opts)
		if err != nil {
			continue
		}
		if !evaluated || st.Score < res.DiurnalScore {
			res.DiurnalScore = st.Score
		}
		if !evaluated || st.SNR < res.SNR {
			res.SNR = st.SNR
		}
		evaluated = true
		if st.Score < cfg.DiurnalThreshold || st.SNR < cfg.DiurnalSNR {
			allPass = false
		}
	}
	res.Diurnal = evaluated && allPass

	days, swings := series.DailySwings()
	res.BestWindowDays = bestWindow(days, swings, cfg.SwingThreshold, cfg.WindowDays)
	res.WideSwing = res.BestWindowDays >= cfg.MinSwingDays
	res.ChangeSensitive = res.Responsive && res.Diurnal && res.WideSwing
	return res, nil
}

// ClassifyBatch classifies many series under one configuration, batching
// the per-segment FFTs: all segments of equal length across the whole
// batch run through one dsp.DiurnalStatsBatch pass instead of one scalar
// transform each. Results are bit-identical to calling ClassifyScratch on
// each series — same segment walk, same per-series min-fold order, same
// error-skip behaviour (a too-short segment group is skipped exactly
// where the scalar path's per-segment error `continue` fires). A nil
// entry in series classifies like an empty series. The pipeline's batch
// scheduler is the main caller; sc may be nil for a one-shot call.
func ClassifyBatch(series []*reconstruct.Series, start, end int64, cfg Config, sc *Scratch) ([]Result, error) {
	cfg = cfg.withDefaults()
	if sc == nil {
		sc = NewScratch()
	}
	if cfg.MinSwingDays > cfg.WindowDays {
		return nil, fmt.Errorf("blockclass: MinSwingDays %d > WindowDays %d", cfg.MinSwingDays, cfg.WindowDays)
	}
	if cfg.SampleStep <= 0 || cfg.SampleStep > 86400/2 {
		return nil, fmt.Errorf("blockclass: sample step %d outside (0, 12h]", cfg.SampleStep)
	}
	results := make([]Result, len(series))

	// Phase 1: walk every series' segments in the scalar order, resample,
	// and queue the samples (copied into the arena — ResampleInto's buffer
	// is reused per call) as batch jobs.
	segLen := int64(cfg.SegmentDays) * 86400
	arena := sc.arena[:0]
	jobs := sc.jobs[:0]
	for si, s := range series {
		r := &results[si]
		if s == nil || s.Len() == 0 {
			continue
		}
		for _, c := range s.Counts {
			if c > 0 {
				r.Responsive = true
				break
			}
		}
		if !r.Responsive {
			continue
		}
		for segStart := start; segStart < end; segStart += segLen {
			segEnd := segStart + segLen
			if segEnd > end {
				segEnd = end
			}
			if segEnd-segStart < 2*86400 {
				continue
			}
			resampled := s.ResampleInto(&sc.Resample, segStart, segEnd, cfg.SampleStep)
			if resampled == nil {
				continue
			}
			off := len(arena)
			arena = append(arena, resampled...)
			jobs = append(jobs, segJob{si: si, off: off, n: len(resampled)})
		}
	}
	sc.arena, sc.jobs = arena, jobs

	// Phase 2: group jobs by segment length (distinct lengths only arise
	// from a trailing partial segment, so groups are few and large) and
	// evaluate each group in one batched pass. Groups are visited in
	// first-seen order for determinism.
	opts := dsp.DiurnalScoreOpts{
		SampleInterval: float64(cfg.SampleStep),
		Period:         86400,
		Harmonics:      cfg.Harmonics,
	}
	stats := make([]dsp.Stats, len(jobs))
	evaluatedJob := make([]bool, len(jobs))
	var lens []int
	byLen := map[int][]int{}
	for ji, j := range jobs {
		if _, ok := byLen[j.n]; !ok {
			lens = append(lens, j.n)
		}
		byLen[j.n] = append(byLen[j.n], ji)
	}
	for _, n := range lens {
		idxs := byLen[n]
		rows := sc.rows[:0]
		for _, ji := range idxs {
			j := jobs[ji]
			rows = append(rows, arena[j.off:j.off+j.n])
		}
		sc.rows = rows
		st, err := sc.DSP.DiurnalStatsBatch(rows, opts)
		if err != nil {
			// The scalar path `continue`s past a segment DiurnalStats
			// rejects; every error here is length-determined, so the whole
			// group skips identically.
			continue
		}
		for k, ji := range idxs {
			stats[ji] = st[k]
			evaluatedJob[ji] = true
		}
	}

	// Phase 3: fold per-series stats in job order — which is exactly the
	// scalar walk order (series outer, segments ascending) — replicating
	// the weakest-segment min-fold and the all-segments-pass rule.
	evaluated := make([]bool, len(series))
	allPass := make([]bool, len(series))
	for i := range allPass {
		allPass[i] = true
	}
	for ji, j := range jobs {
		if !evaluatedJob[ji] {
			continue
		}
		st := stats[ji]
		r := &results[j.si]
		if !evaluated[j.si] || st.Score < r.DiurnalScore {
			r.DiurnalScore = st.Score
		}
		if !evaluated[j.si] || st.SNR < r.SNR {
			r.SNR = st.SNR
		}
		evaluated[j.si] = true
		if st.Score < cfg.DiurnalThreshold || st.SNR < cfg.DiurnalSNR {
			allPass[j.si] = false
		}
	}
	for si, s := range series {
		r := &results[si]
		if !r.Responsive {
			continue
		}
		r.Diurnal = evaluated[si] && allPass[si]
		days, swings := s.DailySwings()
		r.BestWindowDays = bestWindow(days, swings, cfg.SwingThreshold, cfg.WindowDays)
		r.WideSwing = r.BestWindowDays >= cfg.MinSwingDays
		r.ChangeSensitive = r.Responsive && r.Diurnal && r.WideSwing
	}
	return results, nil
}

// bestWindow returns the maximum count of days with swing >= threshold in
// any run of windowDays consecutive calendar days.
func bestWindow(days []int64, swings []float64, threshold float64, windowDays int) int {
	if len(days) == 0 {
		return 0
	}
	wide := make(map[int64]bool, len(days))
	for i, d := range days {
		if swings[i] >= threshold {
			wide[d] = true
		}
	}
	first, last := days[0], days[len(days)-1]
	best := 0
	for w := first; w <= last-int64(windowDays)+1; w++ {
		count := 0
		for d := w; d < w+int64(windowDays); d++ {
			if wide[d] {
				count++
			}
		}
		if count > best {
			best = count
		}
	}
	// Series shorter than one window still get their total count.
	if last-first+1 < int64(windowDays) {
		count := 0
		for _, ok := range wide {
			if ok {
				count++
			}
		}
		if count > best {
			best = count
		}
	}
	return best
}
