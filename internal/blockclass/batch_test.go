package blockclass

import (
	"testing"

	"github.com/diurnalnet/diurnal/internal/netsim"
	"github.com/diurnalnet/diurnal/internal/reconstruct"
)

// batchSeriesSet builds a mixed population: workplaces, server farms, NAT
// front doors, homes, an empty series, and a nil entry.
func batchSeriesSet(t *testing.T, start, end int64) []*reconstruct.Series {
	t.Helper()
	specs := []netsim.Spec{
		{Workers: 60, AlwaysOn: 6},
		{AlwaysOn: 200},
		{AlwaysOn: 3},
		{Homes: 80, AlwaysOn: 4},
		{Workers: 30, Homes: 30, Intermittent: 20},
		{Workers: 12}, // small block: borderline swing
	}
	var out []*reconstruct.Series
	for i, spec := range specs {
		b, err := netsim.NewBlock(netsim.BlockID(100+i), uint64(900+i), spec)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, reconstructed(t, b, start, end))
	}
	out = append(out, &reconstruct.Series{}, nil)
	return out
}

// TestClassifyBatchParity demands ClassifyBatch equals per-series
// ClassifyScratch exactly — scores, SNRs, and every decision bit — over a
// mixed population and over windows with a trailing partial segment
// (mixed segment lengths inside one batch).
func TestClassifyBatchParity(t *testing.T) {
	for _, days := range []int{28, 56, 70, 93} { // 93: trailing 9-day segment
		start := jan6
		end := start + int64(days)*netsim.SecondsPerDay
		series := batchSeriesSet(t, start, end)
		cfg := Default()
		sc := NewScratch()
		got, err := ClassifyBatch(series, start, end, cfg, sc)
		if err != nil {
			t.Fatalf("days=%d: %v", days, err)
		}
		if len(got) != len(series) {
			t.Fatalf("days=%d: %d results for %d series", days, len(got), len(series))
		}
		sc2 := NewScratch()
		for i, s := range series {
			want, err := ClassifyScratch(s, start, end, cfg, sc2)
			if err != nil {
				t.Fatalf("days=%d series %d: %v", days, i, err)
			}
			if got[i] != want {
				t.Fatalf("days=%d series %d: batch %+v, scalar %+v", days, i, got[i], want)
			}
		}
	}
}

// TestClassifyBatchReuse runs batches of different shapes through one
// scratch to check arena/job reuse does not leak state across calls.
func TestClassifyBatchReuse(t *testing.T) {
	start := jan6
	end := start + 28*netsim.SecondsPerDay
	series := batchSeriesSet(t, start, end)
	sc := NewScratch()
	first, err := ClassifyBatch(series, start, end, Default(), sc)
	if err != nil {
		t.Fatal(err)
	}
	// A different (smaller, reordered) batch, then the original again.
	if _, err := ClassifyBatch(series[3:5], start, end, Default(), sc); err != nil {
		t.Fatal(err)
	}
	again, err := ClassifyBatch(series, start, end, Default(), sc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if first[i] != again[i] {
			t.Fatalf("series %d: result changed across scratch reuse", i)
		}
	}
}

// TestClassifyBatchConfigErrors mirrors the scalar validation.
func TestClassifyBatchConfigErrors(t *testing.T) {
	cfg := Default()
	cfg.MinSwingDays = 9
	cfg.WindowDays = 7
	if _, err := ClassifyBatch(nil, 0, 1, cfg, nil); err == nil {
		t.Fatal("want MinSwingDays validation error")
	}
	cfg = Default()
	cfg.SampleStep = 86400
	if _, err := ClassifyBatch(nil, 0, 1, cfg, nil); err == nil {
		t.Fatal("want SampleStep validation error")
	}
}
