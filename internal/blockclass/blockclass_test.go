package blockclass

import (
	"testing"
	"time"

	"github.com/diurnalnet/diurnal/internal/netsim"
	"github.com/diurnalnet/diurnal/internal/probe"
	"github.com/diurnalnet/diurnal/internal/reconstruct"
)

var jan6 = netsim.Date(2020, time.January, 6)

// reconstructed probes a block with 4 observers for the window and returns
// its reconstruction.
func reconstructed(t *testing.T, b *netsim.Block, start, end int64) *reconstruct.Series {
	t.Helper()
	eng := &probe.Engine{Observers: probe.StandardObservers(4), QuarterSeed: 17}
	perObs, err := eng.Collect(b, start, end)
	if err != nil {
		t.Fatal(err)
	}
	s, err := reconstruct.ReconstructObservers(perObs, b.EverActive(), false)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func classify(t *testing.T, b *netsim.Block, days int) Result {
	t.Helper()
	start, end := jan6, jan6+int64(days)*netsim.SecondsPerDay
	res, err := Classify(reconstructed(t, b, start, end), start, end, Default())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestWorkplaceBlockIsChangeSensitive(t *testing.T) {
	b, err := netsim.NewBlock(1, 71, netsim.Spec{Workers: 60, AlwaysOn: 6})
	if err != nil {
		t.Fatal(err)
	}
	res := classify(t, b, 28)
	if !res.Responsive || !res.Diurnal || !res.WideSwing || !res.ChangeSensitive {
		t.Fatalf("workplace block misclassified: %+v", res)
	}
}

func TestServerFarmNotChangeSensitive(t *testing.T) {
	b, err := netsim.NewBlock(2, 72, netsim.Spec{AlwaysOn: 200})
	if err != nil {
		t.Fatal(err)
	}
	res := classify(t, b, 28)
	if !res.Responsive {
		t.Fatal("server farm should be responsive")
	}
	if res.Diurnal || res.ChangeSensitive {
		t.Fatalf("server farm misclassified as diurnal: %+v", res)
	}
}

func TestNATFrontDoorNotChangeSensitive(t *testing.T) {
	// A home-NAT block: 3 always-on router addresses, nothing else
	// visible. Responsive but flat.
	b, err := netsim.NewBlock(3, 73, netsim.Spec{AlwaysOn: 3})
	if err != nil {
		t.Fatal(err)
	}
	res := classify(t, b, 28)
	if !res.Responsive || res.ChangeSensitive {
		t.Fatalf("NAT block misclassified: %+v", res)
	}
	if res.WideSwing {
		t.Fatalf("3-address block cannot have a >= 5 swing: %+v", res)
	}
}

func TestFirewalledBlockNotResponsive(t *testing.T) {
	b, err := netsim.NewBlock(4, 74, netsim.Spec{Firewalled: 200})
	if err != nil {
		t.Fatal(err)
	}
	start, end := jan6, jan6+28*netsim.SecondsPerDay
	eng := &probe.Engine{Observers: probe.StandardObservers(4), QuarterSeed: 17}
	perObs, err := eng.Collect(b, start, end)
	if err != nil {
		t.Fatal(err)
	}
	if len(perObs[0]) != 0 {
		t.Fatal("firewalled block has empty E(b); no probes expected")
	}
	res, err := Classify(&reconstruct.Series{}, start, end, Default())
	if err != nil {
		t.Fatal(err)
	}
	if res.Responsive || res.ChangeSensitive {
		t.Fatalf("firewalled block misclassified: %+v", res)
	}
}

func TestSmallDiurnalBlockNarrowSwing(t *testing.T) {
	// Three workers: diurnal but swing < 5, so not change-sensitive.
	b, err := netsim.NewBlock(5, 75, netsim.Spec{Workers: 3, AlwaysOn: 2})
	if err != nil {
		t.Fatal(err)
	}
	res := classify(t, b, 28)
	if res.WideSwing {
		t.Fatalf("3-worker block reported wide swing: %+v", res)
	}
	if res.ChangeSensitive {
		t.Fatalf("narrow-swing block must not be change-sensitive: %+v", res)
	}
}

func TestIntermittentNoiseNotDiurnal(t *testing.T) {
	b, err := netsim.NewBlock(6, 76, netsim.Spec{Intermittent: 120, Duty: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	res := classify(t, b, 28)
	if res.Diurnal {
		t.Fatalf("intermittent noise classified diurnal (score %.3f)", res.DiurnalScore)
	}
}

func TestHomeEveningBlockChangeSensitive(t *testing.T) {
	b, err := netsim.NewBlock(7, 77, netsim.Spec{Homes: 60})
	if err != nil {
		t.Fatal(err)
	}
	res := classify(t, b, 28)
	if !res.ChangeSensitive {
		t.Fatalf("home-evening block should be change-sensitive: %+v", res)
	}
}

func TestWeekendOnlySwingFailsPersistence(t *testing.T) {
	// Build a synthetic series with a wide swing only on 2 of every 7
	// days: persistence (4 of 7) must fail.
	var s reconstruct.Series
	for d := int64(0); d < 28; d++ {
		dayStart := jan6 + d*netsim.SecondsPerDay
		wd := netsim.Weekday(dayStart)
		for h := int64(0); h < 24; h++ {
			v := 10.0
			if (wd == 0 || wd == 6) && h >= 9 && h < 17 {
				v = 30 // weekend-only bump
			}
			s.Times = append(s.Times, dayStart+h*3600)
			s.Counts = append(s.Counts, v)
		}
	}
	start, end := jan6, jan6+28*netsim.SecondsPerDay
	res, err := Classify(&s, start, end, Default())
	if err != nil {
		t.Fatal(err)
	}
	if res.BestWindowDays > 3 {
		t.Fatalf("weekend-only pattern best window = %d, want <= 3", res.BestWindowDays)
	}
	if res.WideSwing {
		t.Fatalf("weekend-only swing must fail 4-of-7 persistence: %+v", res)
	}
}

func TestFourOfSevenPersistenceTolerates3DayWeekend(t *testing.T) {
	// Wide swing Mon-Thu only (4 days): persistence holds — the rule
	// exists to tolerate 3-day weekends (§2.4).
	var s reconstruct.Series
	for d := int64(0); d < 28; d++ {
		dayStart := jan6 + d*netsim.SecondsPerDay
		wd := netsim.Weekday(dayStart)
		for h := int64(0); h < 24; h++ {
			v := 10.0
			if wd >= 1 && wd <= 4 && h >= 9 && h < 17 {
				v = 30
			}
			s.Times = append(s.Times, dayStart+h*3600)
			s.Counts = append(s.Counts, v)
		}
	}
	start, end := jan6, jan6+28*netsim.SecondsPerDay
	res, err := Classify(&s, start, end, Default())
	if err != nil {
		t.Fatal(err)
	}
	if !res.WideSwing || res.BestWindowDays < 4 {
		t.Fatalf("4-workday swing should satisfy persistence: %+v", res)
	}
	if !res.ChangeSensitive {
		t.Fatalf("block should be change-sensitive: %+v", res)
	}
}

func TestSwingThresholdRespected(t *testing.T) {
	// Swing of exactly 4 with threshold 5 fails; with threshold 4 passes.
	var s reconstruct.Series
	for d := int64(0); d < 14; d++ {
		dayStart := jan6 + d*netsim.SecondsPerDay
		for h := int64(0); h < 24; h++ {
			v := 10.0
			if h >= 9 && h < 17 {
				v = 14 // swing of 4
			}
			s.Times = append(s.Times, dayStart+h*3600)
			s.Counts = append(s.Counts, v)
		}
	}
	start, end := jan6, jan6+14*netsim.SecondsPerDay
	res, err := Classify(&s, start, end, Default())
	if err != nil {
		t.Fatal(err)
	}
	if res.WideSwing {
		t.Fatalf("swing 4 should fail threshold 5: %+v", res)
	}
	cfg := Default()
	cfg.SwingThreshold = 4
	res, err = Classify(&s, start, end, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.WideSwing {
		t.Fatalf("swing 4 should pass threshold 4: %+v", res)
	}
}

func TestClassifyEmptyAndNilSeries(t *testing.T) {
	start, end := jan6, jan6+14*netsim.SecondsPerDay
	res, err := Classify(nil, start, end, Default())
	if err != nil {
		t.Fatal(err)
	}
	if res.Responsive || res.ChangeSensitive {
		t.Fatalf("nil series misclassified: %+v", res)
	}
	res, err = Classify(&reconstruct.Series{Times: []int64{jan6}, Counts: []float64{0}}, start, end, Default())
	if err != nil {
		t.Fatal(err)
	}
	if res.Responsive {
		t.Fatal("all-zero series should be non-responsive")
	}
}

func TestClassifyConfigValidation(t *testing.T) {
	cfg := Default()
	cfg.MinSwingDays = 8
	if _, err := Classify(nil, 0, 1, cfg); err == nil {
		t.Error("expected error for MinSwingDays > WindowDays")
	}
	cfg = Default()
	cfg.SampleStep = 86400
	if _, err := Classify(nil, 0, 1, cfg); err == nil {
		t.Error("expected error for sample step > 12h")
	}
}

func TestBestWindowShortSeries(t *testing.T) {
	// A 3-day series still counts its wide days even though no full
	// 7-day window exists.
	days := []int64{100, 101, 102}
	swings := []float64{10, 10, 1}
	if got := bestWindow(days, swings, 5, 7); got != 2 {
		t.Fatalf("short-series best window = %d, want 2", got)
	}
	if got := bestWindow(nil, nil, 5, 7); got != 0 {
		t.Fatalf("empty best window = %d", got)
	}
}

func BenchmarkClassifyMonth(b *testing.B) {
	blk, err := netsim.NewBlock(9, 79, netsim.Spec{Workers: 60, AlwaysOn: 6})
	if err != nil {
		b.Fatal(err)
	}
	start, end := jan6, jan6+28*netsim.SecondsPerDay
	eng := &probe.Engine{Observers: probe.StandardObservers(4), QuarterSeed: 17}
	perObs, err := eng.Collect(blk, start, end)
	if err != nil {
		b.Fatal(err)
	}
	s, err := reconstruct.ReconstructObservers(perObs, blk.EverActive(), false)
	if err != nil {
		b.Fatal(err)
	}
	cfg := Default()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Classify(s, start, end, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
