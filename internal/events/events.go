// Package events holds the ground-truth calendar of real-world events the
// paper validates against — Covid work-from-home onsets per country
// (collected from the news sources cited in §3.6), public holidays (MLK
// day, Presidents Day, Spring Festival), curfews (Janata curfew, Delhi
// riots, UAE), and the 2023 control period — plus the ±4-day matching rule
// used to score detections.
package events

import (
	"time"

	"github.com/diurnalnet/diurnal/internal/netsim"
)

// Calendar maps atlas region codes to the scheduled events their blocks
// experience, and records the publicly reported onset date used as scoring
// truth.
type Calendar struct {
	// Events lists the netsim events to attach to every block of the
	// region (adoption handles partial uptake).
	Events map[string][]netsim.Event
	// WFHDates is the news-reported work-from-home (or lockdown) onset
	// per region; regions absent here had no WFH event in the window,
	// like Russia and Singapore in 2020q1 (§3.6).
	WFHDates map[string]int64
	// Label describes the calendar ("2020h1", "2023q1").
	Label string
}

func d(y int, m time.Month, day int) int64 { return netsim.Date(y, m, day) }

// Year2020 returns the 2020h1 calendar: the Covid WFH wave, the holidays
// visible in the paper's Figure 1, the Wuhan lockdown, the Delhi riots,
// and the Janata curfew.
func Year2020() *Calendar {
	c := &Calendar{
		Events:   map[string][]netsim.Event{},
		WFHDates: map[string]int64{},
		Label:    "2020h1",
	}
	add := func(code string, evs ...netsim.Event) {
		c.Events[code] = append(c.Events[code], evs...)
	}
	wfh := func(code string, start int64, adoption float64) {
		add(code, netsim.Event{Kind: netsim.EventWFH, Start: start, Adoption: adoption})
		c.WFHDates[code] = start
	}

	springFestival := netsim.Event{
		Kind: netsim.EventHoliday, Start: d(2020, time.January, 24),
		End: d(2020, time.February, 3), Adoption: 0.85,
	}
	// China: Spring Festival plus post-festival partial WFH that unwinds
	// in April (the paper cannot separate the concurrent festival and
	// Wuhan lockdown, §4.2).
	for _, code := range []string{"CN", "CN-BEI", "CN-SHA"} {
		add(code, springFestival)
		// Partial post-festival WFH; the unwind was gradual and so is not
		// modeled as a synchronized end date.
		add(code, netsim.Event{
			Kind: netsim.EventWFH, Start: d(2020, time.February, 3), Adoption: 0.3,
		})
		c.WFHDates[code] = d(2020, time.January, 24)
	}
	// Wuhan: festival, then the full lockdown from Jan 23 to Apr 8.
	add("CN-WUH", springFestival)
	add("CN-WUH", netsim.Event{
		Kind: netsim.EventCurfew, Start: d(2020, time.January, 23),
		End: d(2020, time.April, 8), Adoption: 0.65,
	})
	c.WFHDates["CN-WUH"] = d(2020, time.January, 23)

	// India: Janata curfew (Mar 22) then national lockdown (Mar 24).
	for _, code := range []string{"IN", "IN-DEL"} {
		add(code, netsim.Event{
			Kind: netsim.EventCurfew, Start: d(2020, time.March, 22),
			End: d(2020, time.March, 23), Adoption: 0.8,
		})
		wfh(code, d(2020, time.March, 24), 0.6)
		c.WFHDates[code] = d(2020, time.March, 22)
	}
	// Delhi riots: protests and de-facto curfews Feb 23–29 (§4.3), a
	// non-Covid human-activity change.
	add("IN-DEL", netsim.Event{
		Kind: netsim.EventCurfew, Start: d(2020, time.February, 23),
		End: d(2020, time.March, 1), Adoption: 0.35,
	})

	// United States: the Figure 1 holidays and the mid-March WFH wave.
	mlk := netsim.Event{Kind: netsim.EventHoliday, Start: d(2020, time.January, 20),
		End: d(2020, time.January, 21), Adoption: 0.6}
	presidents := netsim.Event{Kind: netsim.EventHoliday, Start: d(2020, time.February, 17),
		End: d(2020, time.February, 18), Adoption: 0.5}
	for _, code := range []string{"US-W", "US-E", "US-LA", "US-IN"} {
		add(code, mlk, presidents)
	}
	wfh("US-LA", d(2020, time.March, 15), 0.85) // USC's confirmed date (Figure 1)
	wfh("US-W", d(2020, time.March, 17), 0.7)
	wfh("US-E", d(2020, time.March, 17), 0.7)
	// Indiana: spring break Mar 13, remote learning Mar 19 (Appendix E).
	add("US-IN", netsim.Event{Kind: netsim.EventHoliday, Start: d(2020, time.March, 13),
		End: d(2020, time.March, 19), Adoption: 0.7})
	wfh("US-IN", d(2020, time.March, 19), 0.85)
	c.WFHDates["US-IN"] = d(2020, time.March, 15) // detections center on break+remote

	// Europe.
	wfh("EU-W", d(2020, time.March, 16), 0.7)  // Italy 3-09, Spain 3-14, France 3-17
	wfh("SI", d(2020, time.March, 16), 0.75)   // Slovenia school closures (§3.7)
	wfh("EU-E", d(2020, time.March, 20), 0.55) // Germany 3-20/22 and eastward
	wfh("RU", d(2020, time.March, 30), 0.6)    // Moscow lockdown, outside q1 scoring

	// Middle East and Africa.
	wfh("AE", d(2020, time.March, 24), 0.75) // UAE campaign 3-22, curfew 3-26
	add("AE", netsim.Event{Kind: netsim.EventCurfew, Start: d(2020, time.March, 26),
		End: d(2020, time.March, 30), Adoption: 0.8})
	wfh("MA", d(2020, time.March, 20), 0.8) // Morocco state of emergency
	wfh("AF-N", d(2020, time.March, 22), 0.45)
	wfh("AF-S", d(2020, time.March, 26), 0.4)

	// Rest of Asia-Pacific and the Americas.
	wfh("SEA", d(2020, time.March, 17), 0.65) // Philippines 3-15, Malaysia 3-18
	wfh("JPKR", d(2020, time.April, 7), 0.4)  // Japan state of emergency
	wfh("BR", d(2020, time.March, 24), 0.5)
	wfh("SA-W", d(2020, time.March, 16), 0.5) // Venezuela 3-16 and neighbours
	wfh("OC", d(2020, time.March, 23), 0.15)  // Oceania: low changes (§4.1)

	return c
}

// Year2023 returns the control calendar of Appendix B.3/B.4: the 2023
// Spring Festival in China and nothing in India.
func Year2023() *Calendar {
	c := &Calendar{
		Events:   map[string][]netsim.Event{},
		WFHDates: map[string]int64{},
		Label:    "2023q1",
	}
	festival := netsim.Event{
		Kind: netsim.EventHoliday, Start: d(2023, time.January, 22),
		End: d(2023, time.January, 30), Adoption: 0.85,
	}
	for _, code := range []string{"CN", "CN-BEI", "CN-SHA", "CN-WUH"} {
		c.Events[code] = append(c.Events[code], festival)
		c.WFHDates[code] = festival.Start
	}
	return c
}

// Quiet returns an empty calendar (no events anywhere), used for null
// controls.
func Quiet(label string) *Calendar {
	return &Calendar{
		Events:   map[string][]netsim.Event{},
		WFHDates: map[string]int64{},
		Label:    label,
	}
}

// EventsFor returns the events scheduled for a region code (nil when the
// region has none).
func (c *Calendar) EventsFor(code string) []netsim.Event {
	return c.Events[code]
}

// WFHDate returns the news-reported onset for the region and whether one
// exists in this calendar.
func (c *Calendar) WFHDate(code string) (int64, bool) {
	t, ok := c.WFHDates[code]
	return t, ok
}

// MatchWindowDays is the paper's block-level correctness window: "a WFH
// detection within four days of a public WFH report" (§3.6).
const MatchWindowDays = 4

// MatchWithin reports whether a detection at time detected falls within
// ±days days of the truth timestamp.
func MatchWithin(detected, truth int64, days int) bool {
	diff := detected - truth
	if diff < 0 {
		diff = -diff
	}
	return diff <= int64(days)*netsim.SecondsPerDay
}
