package events

import (
	"testing"
	"time"

	"github.com/diurnalnet/diurnal/internal/geo"
	"github.com/diurnalnet/diurnal/internal/netsim"
)

func TestYear2020CoversAtlasRegions(t *testing.T) {
	c := Year2020()
	if c.Label != "2020h1" {
		t.Errorf("label = %s", c.Label)
	}
	// Every atlas region should either have a WFH date or be a documented
	// exception; in 2020 every region here has some event.
	for _, r := range geo.DefaultWorld() {
		if len(c.EventsFor(r.Code)) == 0 {
			t.Errorf("region %s has no 2020 events", r.Code)
		}
	}
}

func TestYear2020KeyDates(t *testing.T) {
	c := Year2020()
	cases := []struct {
		code string
		want int64
	}{
		{"US-LA", netsim.Date(2020, time.March, 15)},
		{"SI", netsim.Date(2020, time.March, 16)},
		{"MA", netsim.Date(2020, time.March, 20)},
		{"AE", netsim.Date(2020, time.March, 24)},
		{"CN-WUH", netsim.Date(2020, time.January, 23)},
		{"IN-DEL", netsim.Date(2020, time.March, 22)},
		{"RU", netsim.Date(2020, time.March, 30)},
	}
	for _, cs := range cases {
		got, ok := c.WFHDate(cs.code)
		if !ok {
			t.Errorf("%s missing WFH date", cs.code)
			continue
		}
		if got != cs.want {
			t.Errorf("%s WFH = %s, want %s", cs.code,
				time.Unix(got, 0).UTC().Format("2006-01-02"),
				time.Unix(cs.want, 0).UTC().Format("2006-01-02"))
		}
	}
}

func TestYear2020EventShapes(t *testing.T) {
	c := Year2020()
	// US regions carry the two Figure 1 holidays.
	holidays := 0
	for _, e := range c.EventsFor("US-LA") {
		if e.Kind == netsim.EventHoliday {
			holidays++
			if e.End <= e.Start {
				t.Errorf("holiday with non-positive duration: %+v", e)
			}
		}
	}
	if holidays != 2 {
		t.Errorf("US-LA holidays = %d, want 2 (MLK + Presidents Day)", holidays)
	}
	// Delhi has the riots curfew and the Janata curfew.
	curfews := 0
	for _, e := range c.EventsFor("IN-DEL") {
		if e.Kind == netsim.EventCurfew {
			curfews++
		}
	}
	if curfews != 2 {
		t.Errorf("IN-DEL curfews = %d, want 2", curfews)
	}
	// All adoptions are valid probabilities.
	for code, evs := range c.Events {
		for _, e := range evs {
			if e.Adoption < 0 || e.Adoption > 1 {
				t.Errorf("%s event %v has adoption %g", code, e.Kind, e.Adoption)
			}
		}
	}
}

func TestYear2023Control(t *testing.T) {
	c := Year2023()
	if len(c.EventsFor("IN-DEL")) != 0 {
		t.Error("2023 New Delhi should be quiet (Appendix B.4)")
	}
	evs := c.EventsFor("CN-BEI")
	if len(evs) != 1 || evs[0].Kind != netsim.EventHoliday {
		t.Fatalf("2023 Beijing should have exactly the Spring Festival: %+v", evs)
	}
	if evs[0].Start != netsim.Date(2023, time.January, 22) {
		t.Errorf("2023 festival start wrong")
	}
	for _, e := range c.Events {
		for _, ev := range e {
			if ev.Kind == netsim.EventWFH {
				t.Error("2023 control must not contain WFH events")
			}
		}
	}
}

func TestQuiet(t *testing.T) {
	c := Quiet("null")
	if c.Label != "null" || len(c.Events) != 0 {
		t.Fatalf("quiet calendar = %+v", c)
	}
	if _, ok := c.WFHDate("CN"); ok {
		t.Error("quiet calendar should have no WFH dates")
	}
}

func TestMatchWithin(t *testing.T) {
	truth := netsim.Date(2020, time.March, 15)
	day := int64(netsim.SecondsPerDay)
	cases := []struct {
		offset int64
		want   bool
	}{
		{0, true},
		{4 * day, true},
		{-4 * day, true},
		{4*day + 1, false},
		{-5 * day, false},
	}
	for _, cs := range cases {
		if got := MatchWithin(truth+cs.offset, truth, MatchWindowDays); got != cs.want {
			t.Errorf("offset %d: match = %v, want %v", cs.offset, got, cs.want)
		}
	}
}

func TestWFHDateMissing(t *testing.T) {
	c := Year2023()
	if _, ok := c.WFHDate("US-LA"); ok {
		t.Error("US-LA should have no 2023 WFH date")
	}
}
