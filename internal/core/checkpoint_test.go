package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/diurnalnet/diurnal/internal/dataset"
	"github.com/diurnalnet/diurnal/internal/netsim"
	"github.com/diurnalnet/diurnal/internal/probe"
)

// panicProber panics mid-collection for a chosen set of blocks.
type panicProber struct {
	inner Prober
	boom  map[netsim.BlockID]bool
}

func (p *panicProber) CollectInto(ctx context.Context, b *netsim.Block, start, end int64, bufs [][]probe.Record) ([][]probe.Record, error) {
	if p.boom[b.ID] {
		panic(fmt.Sprintf("prober exploded on block %v", b.ID))
	}
	return p.inner.CollectInto(ctx, b, start, end, bufs)
}

func TestPipelinePanicBecomesBlockError(t *testing.T) {
	world := smallWorld(t, 16, 61)
	var victim netsim.BlockID
	found := false
	for _, wb := range world {
		if len(wb.Block.EverActive()) > 0 {
			victim, found = wb.ID, true
			break
		}
	}
	if !found {
		t.Fatal("no responsive blocks")
	}
	p := &Pipeline{
		Config: q1Config(),
		Engine: &panicProber{inner: engine4(), boom: map[netsim.BlockID]bool{victim: true}},
	}
	res, err := p.Run(context.Background(), world)
	if err != nil {
		t.Fatalf("one panicking block must not abort the run: %v", err)
	}
	if len(res.Report.BlockErrors) != 1 {
		t.Fatalf("expected 1 block error, got %v", res.Report.BlockErrors)
	}
	var pe *PanicError
	if !errors.As(res.Report.BlockErrors[0], &pe) {
		t.Fatalf("block error is not a PanicError: %v", res.Report.BlockErrors[0])
	}
	if len(pe.Stack) == 0 || !strings.Contains(pe.Error(), "exploded") {
		t.Fatalf("panic identity lost: %q, stack %d bytes", pe.Error(), len(pe.Stack))
	}
	if res.Report.AnalyzedBlocks != len(world)-1 {
		t.Fatalf("analyzed %d, want %d", res.Report.AnalyzedBlocks, len(world)-1)
	}
}

// countingProber counts collection attempts per block and fails the first
// failN of them; transient selects the error flavor. When fail is non-nil
// only those blocks are affected.
type countingProber struct {
	inner     Prober
	failN     int
	transient bool
	fail      map[netsim.BlockID]bool

	mu       sync.Mutex
	attempts map[netsim.BlockID]int
}

func (p *countingProber) calls(id netsim.BlockID) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.attempts[id]
}

func (p *countingProber) CollectInto(ctx context.Context, b *netsim.Block, start, end int64, bufs [][]probe.Record) ([][]probe.Record, error) {
	p.mu.Lock()
	if p.attempts == nil {
		p.attempts = map[netsim.BlockID]int{}
	}
	p.attempts[b.ID]++
	n := p.attempts[b.ID]
	p.mu.Unlock()
	if n <= p.failN && (p.fail == nil || p.fail[b.ID]) {
		err := fmt.Errorf("collector down (attempt %d)", n)
		if p.transient {
			return bufs, MarkTransient(err)
		}
		return bufs, err
	}
	return p.inner.CollectInto(ctx, b, start, end, bufs)
}

func TestPipelineRetriesTransientErrors(t *testing.T) {
	world := smallWorld(t, 8, 67)
	cp := &countingProber{inner: engine4(), failN: 2, transient: true}
	p := &Pipeline{Config: q1Config(), Engine: cp, RetryBackoff: 1}
	res, err := p.Run(context.Background(), world)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Report.BlockErrors) != 0 {
		t.Fatalf("transient failures within the retry budget must heal: %v", res.Report.BlockErrors)
	}
	if res.Report.RetriedBlocks == 0 {
		t.Fatal("RetriedBlocks not counted")
	}
	if res.Report.AnalyzedBlocks != len(world) {
		t.Fatalf("analyzed %d of %d", res.Report.AnalyzedBlocks, len(world))
	}
}

func TestPipelineDoesNotRetryPermanentErrors(t *testing.T) {
	world := smallWorld(t, 8, 67)
	var probed []*dataset.WorldBlock
	for _, wb := range world {
		if len(wb.Block.EverActive()) > 0 {
			probed = append(probed, wb)
		}
	}
	if len(probed) == 0 {
		t.Fatal("no responsive blocks")
	}
	// Keep one block healthy so the run itself succeeds.
	fail := map[netsim.BlockID]bool{}
	for _, wb := range probed[1:] {
		fail[wb.ID] = true
	}
	cp := &countingProber{inner: engine4(), failN: 1, transient: false, fail: fail}
	p := &Pipeline{Config: q1Config(), Engine: cp, RetryBackoff: 1}
	res, err := p.Run(context.Background(), probed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Report.BlockErrors) != len(fail) {
		t.Fatalf("permanent errors must surface: %d errors for %d failing blocks", len(res.Report.BlockErrors), len(fail))
	}
	for _, wb := range probed[1:] {
		if n := cp.calls(wb.ID); n != 1 {
			t.Fatalf("block %v collected %d times; permanent errors must not be retried", wb.ID, n)
		}
	}
}

func TestPipelineRetriesDisabled(t *testing.T) {
	world := smallWorld(t, 8, 67)
	var probed []*dataset.WorldBlock
	for _, wb := range world {
		if len(wb.Block.EverActive()) > 0 {
			probed = append(probed, wb)
		}
	}
	fail := map[netsim.BlockID]bool{}
	for _, wb := range probed[1:] {
		fail[wb.ID] = true
	}
	cp := &countingProber{inner: engine4(), failN: 1, transient: true, fail: fail}
	p := &Pipeline{Config: q1Config(), Engine: cp, MaxRetries: -1, RetryBackoff: 1}
	res, err := p.Run(context.Background(), probed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Report.BlockErrors) != len(fail) {
		t.Fatalf("with retries disabled transient errors must surface: got %d errors", len(res.Report.BlockErrors))
	}
	for _, wb := range probed[1:] {
		if n := cp.calls(wb.ID); n != 1 {
			t.Fatalf("block %v collected %d times with retries disabled", wb.ID, n)
		}
	}
}

func TestPipelineCancellation(t *testing.T) {
	world := smallWorld(t, 16, 71)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := &Pipeline{Config: q1Config(), Engine: engine4()}
	res, err := p.Run(ctx, world)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled run must surface ctx.Err(): %v", err)
	}
	if res == nil {
		t.Fatal("canceled run must still return the partial result")
	}
	if len(res.Report.BlockErrors) != 0 {
		t.Fatalf("cancellation must not masquerade as block failures: %v", res.Report.BlockErrors)
	}
}

func TestCheckpointResumeSkipsJournaledBlocks(t *testing.T) {
	world := smallWorld(t, 12, 73)
	path := filepath.Join(t.TempDir(), "run.ckpt")

	cp, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	first, err := (&Pipeline{Config: q1Config(), Engine: engine4(), Checkpoint: cp}).Run(context.Background(), world)
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	if cp.Entries() == 0 {
		t.Fatal("nothing journaled")
	}

	cp2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	second, err := (&Pipeline{Config: q1Config(), Engine: engine4(), Checkpoint: cp2}).Run(context.Background(), world)
	if err != nil {
		t.Fatal(err)
	}
	if second.Report.ResumedBlocks != first.Report.AnalyzedBlocks {
		t.Fatalf("resumed %d blocks, journal held %d", second.Report.ResumedBlocks, first.Report.AnalyzedBlocks)
	}
	f1, err := first.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	f2, err := second.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Fatalf("journal round trip changed the result: %s vs %s", f1, f2)
	}
}

func TestCheckpointTornTailTruncated(t *testing.T) {
	world := smallWorld(t, 8, 79)
	path := filepath.Join(t.TempDir(), "run.ckpt")
	cp, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (&Pipeline{Config: q1Config(), Engine: engine4(), Checkpoint: cp}).Run(context.Background(), world); err != nil {
		t.Fatal(err)
	}
	entries := cp.Entries()
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: a partial frame at the tail.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x99, 0x01, 0x00, 0x00, 'B', 0x13}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	cp2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatalf("a torn tail must not poison the journal: %v", err)
	}
	defer cp2.Close()
	if cp2.Entries() != entries {
		t.Fatalf("recovered %d entries, want %d", cp2.Entries(), entries)
	}
	// The torn bytes must be gone so future appends start clean.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != int64(len(data)) || len(data) == 0 {
		t.Fatal("journal unreadable after recovery")
	}
}

func TestCheckpointRejectsForeignRun(t *testing.T) {
	world := smallWorld(t, 8, 83)
	path := filepath.Join(t.TempDir(), "run.ckpt")
	cp, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (&Pipeline{Config: q1Config(), Engine: engine4(), Checkpoint: cp}).Run(context.Background(), world); err != nil {
		t.Fatal(err)
	}
	cp.Close()

	cp2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	other := q1Config()
	other.BaselineEnd = q1Config().BaselineEnd + netsim.SecondsPerDay
	if _, err := (&Pipeline{Config: other, Engine: engine4(), Checkpoint: cp2}).Run(context.Background(), world); err == nil {
		t.Fatal("a checkpoint from a different config must be refused")
	}
}

// TestReplayProberCorruptionSurfacesInRunReport closes the loop from disk
// corruption to the pipeline's degradation report: a store with one
// bit-flipped log must (a) fail Verify for exactly that block and (b)
// yield exactly one BlockError wrapping ErrCorruptLog when the archive is
// replayed through the pipeline.
func TestReplayProberCorruptionSurfacesInRunReport(t *testing.T) {
	world := smallWorld(t, 10, 89)
	var archived []*dataset.WorldBlock
	for _, wb := range world {
		if len(wb.Block.EverActive()) > 0 {
			archived = append(archived, wb)
		}
	}
	if len(archived) < 2 {
		t.Fatal("too few responsive blocks")
	}
	dir := t.TempDir()
	spec := dataset.Spec{Name: "corrupt-replay", Start: q1Start, Weeks: 12, Sites: []string{"e", "j", "w", "c"}}
	store, err := dataset.CreateStore(dir, spec, engine4(), archived)
	if err != nil {
		t.Fatal(err)
	}

	// Flip one byte in the middle of the victim's first observer log.
	victim := archived[0].ID
	logPath := victimLog(t, dir, victim)
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(logPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := store.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("fsck missed a bit flip")
	}
	bad := rep.BadBlocks()
	if len(bad) != 1 || bad[0] != victim {
		t.Fatalf("fsck quarantined %v, want [%v]", bad, victim)
	}

	replay, err := store.Replay()
	if err != nil {
		t.Fatal(err)
	}
	cfg := q1Config()
	cfg.AnalysisEnd = spec.End()
	cfg.BaselineEnd = q1Start + 28*netsim.SecondsPerDay
	res, err := (&Pipeline{Config: cfg, Engine: replay, MaxRetries: -1}).Run(context.Background(), archived)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Report.BlockErrors) != 1 {
		t.Fatalf("expected 1 block error from the corrupt log, got %v", res.Report.BlockErrors)
	}
	be := res.Report.BlockErrors[0]
	if be.ID != victim || !errors.Is(be, dataset.ErrCorruptLog) {
		t.Fatalf("corruption not attributed: %v", be)
	}
	if res.Report.AnalyzedBlocks != len(archived)-1 {
		t.Fatalf("healthy blocks lost: analyzed %d of %d", res.Report.AnalyzedBlocks, len(archived))
	}
}

// victimLog finds the first observer log file for a block in a store dir.
func victimLog(t *testing.T, dir string, id netsim.BlockID) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, fmt.Sprintf("blk-%06x.obs0.log", uint32(id))))
	if err != nil || len(matches) != 1 {
		t.Fatalf("log for block %v not found: %v %v", id, matches, err)
	}
	return matches[0]
}
