package core

// Shared CRC-framed record machinery. The checkpoint journal and the
// streaming daemon's ingestion WAL (internal/stream) store different
// payloads but share one durability envelope: every record is written as
//
//	[u32 length | payload | u32 CRC32C]
//
// with the length little-endian and the CRC computed over the payload
// alone. An append is a single write(), so a record is durable across
// process death the moment the call returns; a crash mid-append leaves a
// torn tail that the open-time scan detects (short frame, zero/oversized
// length, or CRC mismatch) and truncates.

import (
	"encoding/binary"
	"hash/crc32"
)

// FrameCRC is the CRC32C (Castagnoli) table every framed journal in this
// repository checks against.
var FrameCRC = crc32.MakeTable(crc32.Castagnoli)

// MaxFrame bounds a single frame's payload; a length prefix beyond it is
// treated as tail corruption, not an allocation request.
const MaxFrame = 1 << 28

// AppendFrame appends one framed record to dst and returns the extended
// slice. Empty or oversized payloads are the caller's bug; they would be
// unreadable (a zero length terminates the scan), so they panic loudly.
func AppendFrame(dst, payload []byte) []byte {
	if len(payload) == 0 || len(payload) > MaxFrame {
		panic("core: frame payload empty or over MaxFrame")
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	return binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, FrameCRC))
}

// WalkFrames scans data frame by frame, invoking fn on each intact
// payload, and returns the byte offset just past the last frame that both
// checksummed and decoded (fn returned nil). Everything at or past the
// returned offset is a torn or corrupt tail: a short frame, a zero or
// oversized length prefix, a CRC mismatch, or a payload fn rejected.
func WalkFrames(data []byte, fn func(payload []byte) error) (good int) {
	for off := 0; ; {
		if off+4 > len(data) {
			return good
		}
		n := binary.LittleEndian.Uint32(data[off:])
		if n == 0 || n > MaxFrame {
			return good
		}
		end := off + 4 + int(n) + 4
		if end > len(data) || end < off {
			return good
		}
		payload := data[off+4 : off+4+int(n)]
		stored := binary.LittleEndian.Uint32(data[off+4+int(n):])
		if crc32.Checksum(payload, FrameCRC) != stored {
			return good
		}
		if err := fn(payload); err != nil {
			return good
		}
		good, off = end, end
	}
}
