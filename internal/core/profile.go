package core

import (
	"github.com/diurnalnet/diurnal/internal/netsim"
)

// ProfileKind classifies what kind of human schedule drives a
// change-sensitive block — the paper's stated future work ("possible
// future work is to detect daily bumps and count how many occur to
// distinguish workplace networks from home networks", §2.6).
type ProfileKind int

const (
	// ProfileUnknown means the block was not analyzable (not
	// change-sensitive, or no seasonal component).
	ProfileUnknown ProfileKind = iota
	// ProfileWorkplace blocks are active on workdays and quiet on
	// weekends.
	ProfileWorkplace
	// ProfileHome blocks are active every day of the week (evenings and
	// weekends).
	ProfileHome
	// ProfileMixed blocks show both signatures.
	ProfileMixed
)

// String names the profile.
func (p ProfileKind) String() string {
	switch p {
	case ProfileWorkplace:
		return "workplace"
	case ProfileHome:
		return "home"
	case ProfileMixed:
		return "mixed"
	default:
		return "unknown"
	}
}

// Profile inspects the weekly seasonal component and classifies the
// block's schedule. The test is timezone-independent: it compares the
// seasonal energy of weekend days against workdays, so it needs no local
// clock — a workplace's weekend is flat everywhere on Earth.
func (a *BlockAnalysis) Profile() ProfileKind {
	if len(a.Seasonal) == 0 || a.SampleStep <= 0 {
		return ProfileUnknown
	}
	samplesPerDay := int(netsim.SecondsPerDay / a.SampleStep)
	week := 7 * samplesPerDay
	if len(a.Seasonal) < week {
		return ProfileUnknown
	}
	// Positive seasonal excursions per day of week, averaged over all
	// complete weeks (the periodic seasonal repeats, but averaging keeps
	// this robust if a caller supplies an adaptive decomposition).
	var dayEnergy [7]float64
	var dayCount [7]int
	for i, v := range a.Seasonal {
		if v <= 0 {
			continue
		}
		t := a.SampleStart + int64(i)*a.SampleStep
		wd := netsim.Weekday(t)
		dayEnergy[wd] += v
		dayCount[wd]++
	}
	weekend := dayEnergy[0] + dayEnergy[6]
	weekday := dayEnergy[1] + dayEnergy[2] + dayEnergy[3] + dayEnergy[4] + dayEnergy[5]
	if weekday == 0 && weekend == 0 {
		return ProfileUnknown
	}
	// Normalize to per-day means.
	weekendMean := weekend / 2
	weekdayMean := weekday / 5
	switch {
	case weekdayMean > 0 && weekendMean < 0.25*weekdayMean:
		return ProfileWorkplace
	case weekendMean >= 0.6*weekdayMean:
		return ProfileHome
	default:
		return ProfileMixed
	}
}
