package core

import (
	"errors"
	"fmt"
)

// Transient wraps an error to mark it retryable: the failure is expected
// to clear on its own (a rebooting collector, a flapping link), so the
// pipeline retries the block with backoff instead of recording a
// BlockError on the first attempt. Probers outside this package (e.g.
// internal/faults) can mark their own error types transient without
// importing core by implementing `Transient() bool`.
type Transient struct {
	Err error
}

// Error renders the underlying failure with its transience.
func (t *Transient) Error() string { return "transient: " + t.Err.Error() }

// Unwrap exposes the cause to errors.Is/As.
func (t *Transient) Unwrap() error { return t.Err }

// Transient marks the wrapper retryable.
func (t *Transient) Transient() bool { return true }

// MarkTransient wraps err as retryable; nil stays nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &Transient{Err: err}
}

// IsTransient reports whether any error in err's chain declares itself
// retryable via a `Transient() bool` method.
func IsTransient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// ErrFenced reports that a journal append was rejected because the
// writer's lease over its work was reassigned to a newer holder: a
// fenced worker must stop, not retry — its shard now belongs to someone
// else, and anything it would write is already (or will be) produced by
// the new leaseholder. Classify with errors.Is.
var ErrFenced = errors.New("core: journal writer fenced (lease reassigned)")

// PanicError is a worker panic converted into an ordinary error: the
// pipeline recovers per-block panics so one pathological block costs one
// BlockError, not the whole world run.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack at recovery.
	Stack []byte
}

// Error renders the panic value (the stack is kept for logs, not the
// one-line message).
func (p *PanicError) Error() string { return fmt.Sprintf("panic: %v", p.Value) }
