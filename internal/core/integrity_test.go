package core

import (
	"context"
	"testing"
	"time"

	"github.com/diurnalnet/diurnal/internal/dataset"
	"github.com/diurnalnet/diurnal/internal/events"
	"github.com/diurnalnet/diurnal/internal/faults"
	"github.com/diurnalnet/diurnal/internal/netsim"
)

// integrityWorld builds a small honest world shared by the firewall tests.
func integrityWorld(t *testing.T) []*dataset.WorldBlock {
	t.Helper()
	world, err := dataset.BuildWorld(dataset.WorldOpts{
		Blocks:   24,
		Seed:     32,
		Calendar: events.Year2020(),
		Start:    q1Start,
		End:      netsim.Date(2020, time.February, 12),
	})
	if err != nil {
		t.Fatal(err)
	}
	return world
}

func integrityConfig() Config {
	cfg := DefaultConfig(q1Start, netsim.Date(2020, time.February, 12))
	cfg.BaselineStart = q1Start
	cfg.BaselineEnd = netsim.Date(2020, time.January, 29)
	return cfg
}

// TestIntegrityCleanWorldParity pins the off-by-default contract: with
// honest observers, arming the firewall gates nothing and leaves every
// block's analysis bit-identical to a disarmed run.
func TestIntegrityCleanWorldParity(t *testing.T) {
	world := integrityWorld(t)
	cfg := integrityConfig()

	off, err := (&Pipeline{Config: cfg, Engine: engine4()}).Run(context.Background(), world)
	if err != nil {
		t.Fatal(err)
	}
	armed := cfg
	armed.Integrity = true
	on, err := (&Pipeline{Config: armed, Engine: engine4()}).Run(context.Background(), world)
	if err != nil {
		t.Fatal(err)
	}

	offFP, err := off.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	onFP, err := on.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if offFP != onFP {
		t.Errorf("clean-world fingerprints differ with the firewall armed: %s vs %s", offFP, onFP)
	}
	if len(on.Report.GatedStreams) != 0 || len(on.Report.IntegrityVerdicts) != 0 {
		t.Errorf("honest streams gated: %v / %v", on.Report.GatedStreams, on.Report.IntegrityVerdicts)
	}
	if on.Report.Degraded() {
		t.Error("clean armed run reported degraded")
	}
	if len(on.Report.AgreementScores) != 4 {
		t.Fatalf("AgreementScores = %v, want 4 entries", on.Report.AgreementScores)
	}
	for i, s := range on.Report.AgreementScores {
		if s < 0.99 {
			t.Errorf("observer %d agreement %.3f, want ~1 on honest streams", i, s)
		}
	}
	if off.Report.GatedStreams != nil || off.Report.AgreementScores != nil || off.Report.IntegrityVerdicts != nil {
		t.Errorf("disarmed run populated integrity report: %+v", off.Report)
	}
}

// TestIntegrityGatesAttacker runs each Byzantine attack at full severity
// and checks the attacking observer is gated with the expected reason
// while every honest observer survives — on both the batched and the
// per-block pipeline paths.
func TestIntegrityGatesAttacker(t *testing.T) {
	world := integrityWorld(t)
	cfg := integrityConfig()
	cfg.Integrity = true
	const attacker = 3

	wantReason := map[string]string{
		"ratelimit": "reply-rate",
		"dupflood":  "duplicates",
		"replay":    "duplicates",
		"timelie":   "out-of-window",
		"spoof":     "non-member",
	}
	for _, attack := range faults.AttackNames {
		for _, batch := range []int{0, 1} {
			plan, err := faults.AttackPlan(4, attack, 1, 99)
			if err != nil {
				t.Fatal(err)
			}
			eng := &faults.Engine{Inner: engine4(), Plan: plan}
			res, err := (&Pipeline{Config: cfg, Engine: eng, BatchSize: batch}).Run(context.Background(), world)
			if err != nil {
				t.Fatalf("%s (batch=%d): %v", attack, batch, err)
			}
			rep := res.Report
			if len(rep.GatedStreams) != 1 || rep.GatedStreams[0] != attacker {
				t.Fatalf("%s (batch=%d): GatedStreams = %v, want [%d]", attack, batch, rep.GatedStreams, attacker)
			}
			if !rep.Degraded() {
				t.Errorf("%s (batch=%d): gated run not degraded", attack, batch)
			}
			if len(rep.IntegrityVerdicts) == 0 {
				t.Fatalf("%s (batch=%d): no verdicts attributed", attack, batch)
			}
			for _, v := range rep.IntegrityVerdicts {
				if v.Observer != attacker {
					t.Errorf("%s (batch=%d): honest observer %d gated in block %d (%s)",
						attack, batch, v.Observer, v.Index, v.Reason)
				}
			}
			want := wantReason[attack]
			found := false
			for _, v := range rep.IntegrityVerdicts {
				if v.Reason == want {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s (batch=%d): no verdict with reason %q (got %q)",
					attack, batch, want, rep.IntegrityVerdicts[0].Reason)
			}
			if len(rep.AgreementScores) != 4 {
				t.Errorf("%s (batch=%d): AgreementScores = %v", attack, batch, rep.AgreementScores)
			}
		}
	}
}

// TestIntegrityVerdictOrder pins the report's attribution order: verdicts
// sorted by block index then observer, gated streams ascending.
func TestIntegrityVerdictOrder(t *testing.T) {
	world := integrityWorld(t)
	cfg := integrityConfig()
	cfg.Integrity = true
	plan, err := faults.AttackPlan(4, "timelie", 1, 99)
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&Pipeline{Config: cfg, Engine: &faults.Engine{Inner: engine4(), Plan: plan}}).
		Run(context.Background(), world)
	if err != nil {
		t.Fatal(err)
	}
	vs := res.Report.IntegrityVerdicts
	for i := 1; i < len(vs); i++ {
		if vs[i].Index < vs[i-1].Index ||
			(vs[i].Index == vs[i-1].Index && vs[i].Observer <= vs[i-1].Observer) {
			t.Fatalf("verdicts out of order at %d: %+v then %+v", i, vs[i-1], vs[i])
		}
	}
	for i := 1; i < len(res.Report.GatedStreams); i++ {
		if res.Report.GatedStreams[i] <= res.Report.GatedStreams[i-1] {
			t.Fatalf("GatedStreams not ascending: %v", res.Report.GatedStreams)
		}
	}
}
