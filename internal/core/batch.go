package core

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"github.com/diurnalnet/diurnal/internal/blockclass"
	"github.com/diurnalnet/diurnal/internal/dataset"
	"github.com/diurnalnet/diurnal/internal/reconstruct"
)

// The batch scheduler restructures a worker's share of the world from
// "one block start-to-finish at a time" into three phases over a small
// batch: prepare every block (collect→reconstruct, each with its own
// retry/deadline/panic containment), classify the whole batch through one
// blockclass.ClassifyBatch call — whose same-length FFT segments run as
// columnar batched passes over shared twiddle tables — then finish and
// deliver each block in batch order. Every per-block stage is elementwise
// in the batched pass, so results are bit-identical to the per-block
// path; the parity tests in batch_test.go enforce that over full worlds.

// defaultBatchSize balances FFT batching gains against the memory of
// holding that many reconstructed series per worker.
const defaultBatchSize = 8

// effectiveBatchSize resolves Pipeline.BatchSize against the features
// that preclude batching and the admission bound.
func (p *Pipeline) effectiveBatchSize(workers int, admit chan struct{}) int {
	batch := p.BatchSize
	if batch == 0 {
		batch = defaultBatchSize
	}
	if batch < 1 {
		batch = 1
	}
	// Hedging and breakers both act on per-block completion latency; a
	// worker sitting on a half-filled batch would look like a straggler
	// and starve the health signal, so they force the per-block path.
	if p.Hedge != nil || p.Breaker != nil {
		return 1
	}
	// A worker holds up to batch admission slots while it accumulates
	// jobs. If every worker could hold a full batch with the admission
	// channel exhausted, the dispatcher would stall with no worker able
	// to flush — so the batch shrinks until workers x batch fits.
	if admit != nil && workers > 0 {
		if max := cap(admit) / workers; max < batch {
			batch = max
		}
		if batch < 1 {
			batch = 1
		}
	}
	return batch
}

// batchWorker is the batch-mode worker loop: checkpoint and dead-letter
// short circuits resolve immediately (their results are already known),
// everything else accumulates until the batch fills or the job channel
// closes, then flushes through runBatch. Admission slots are released
// only as their blocks settle, so backpressure still counts unfinished
// work.
func (p *Pipeline) batchWorker(ctx context.Context, eng Prober, sup *supervisedProber,
	integ *integrityProber, res *WorldResult, world []*dataset.WorldBlock, jobs <-chan int,
	admit chan struct{}, batch int, sc *Scratch, mu *sync.Mutex, journalErr *error, resumed, retried *int) {
	pending := make([]int, 0, batch)
	flush := func() {
		if len(pending) == 0 {
			return
		}
		p.runBatch(ctx, eng, sup, integ, res, world, pending, sc, mu, journalErr, retried)
		if admit != nil {
			for range pending {
				<-admit
			}
		}
		pending = pending[:0]
	}
	for i := range jobs {
		if p.resolveWithoutAnalysis(res, i, world[i], mu, resumed) {
			if admit != nil {
				<-admit
			}
			continue
		}
		pending = append(pending, i)
		if len(pending) >= batch {
			flush()
		}
	}
	flush()
}

// batchSlot carries one block through the batch's three phases.
type batchSlot struct {
	i        int
	wb       *dataset.WorldBlock
	prep     preparedBlock
	attempts int
	err      error
}

// runBatch analyzes one batch of blocks: per-block prepare, one batched
// classification pass, per-block finish and delivery in batch order.
func (p *Pipeline) runBatch(ctx context.Context, eng Prober, sup *supervisedProber,
	integ *integrityProber, res *WorldResult, world []*dataset.WorldBlock, idxs []int, sc *Scratch,
	mu *sync.Mutex, journalErr *error, retried *int) {
	cfg := p.Config.withDefaults()
	slots := make([]batchSlot, len(idxs))
	series := make([]*reconstruct.Series, len(idxs))
	for k, i := range idxs {
		s := &slots[k]
		s.i, s.wb = i, world[i]
		s.prep, s.attempts, s.err = p.prepareBlock(ctx, eng, s.wb, sc)
		if s.err == nil && !s.prep.empty {
			series[k] = s.prep.series
		}
	}
	// One classification pass over the whole batch. A nil entry (failed
	// or empty prepare) classifies to the zero Result, exactly as the
	// scalar path never reaches classification for it. A panic or error
	// here routes every block through the scalar fallback below, so a
	// poison series is contained to its own block on the second pass.
	cls, clsErr := p.classifyBatch(series, cfg, sc)
	for k := range slots {
		s := &slots[k]
		var analysis *BlockAnalysis
		if s.err == nil {
			switch {
			case s.prep.empty:
				analysis = &BlockAnalysis{Series: &reconstruct.Series{}}
			case clsErr != nil:
				analysis, s.err = p.finishFallback(cfg, s.prep, sc)
			default:
				analysis, s.err = p.finishPrepared(cfg, s.prep, cls[k], sc)
			}
		}
		p.deliverOutcome(ctx, sup, integ, res, s.i, s.wb, analysis, s.attempts, s.err, mu, journalErr, retried)
	}
}

// classifyBatch wraps the batched classification with panic containment:
// a panic is reported as an error, which sends the batch down the
// per-block fallback path rather than killing the worker.
func (p *Pipeline) classifyBatch(series []*reconstruct.Series, cfg Config, sc *Scratch) (cls []blockclass.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			cls, err = nil, fmt.Errorf("batched classify panic: %v", r)
		}
	}()
	return blockclass.ClassifyBatch(series, cfg.BaselineStart, cfg.BaselineEnd, cfg.Class, sc.class)
}

// prepareBlock runs one block's prepare phase with the same retry,
// deadline, and panic containment analyzeBlock gives a full analysis.
func (p *Pipeline) prepareBlock(ctx context.Context, eng Prober, wb *dataset.WorldBlock, sc *Scratch) (prep preparedBlock, attempts int, err error) {
	retries := p.MaxRetries
	switch {
	case retries == 0:
		retries = 2
	case retries < 0:
		retries = 0
	}
	backoff := p.RetryBackoff
	if backoff <= 0 {
		backoff = 10 * time.Millisecond
	}
	for {
		attempts++
		prep, err = p.prepareOnce(ctx, eng, wb, sc)
		if err == nil || !IsTransient(err) || attempts > retries || ctx.Err() != nil {
			return prep, attempts, err
		}
		select {
		case <-ctx.Done():
			return preparedBlock{}, attempts, ctx.Err()
		case <-time.After(backoff):
		}
		backoff *= 2
	}
}

// prepareOnce is a single prepare attempt under the per-block deadline,
// converting a panic into a PanicError.
func (p *Pipeline) prepareOnce(ctx context.Context, eng Prober, wb *dataset.WorldBlock, sc *Scratch) (prep preparedBlock, err error) {
	if p.BlockTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.BlockTimeout)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			prep, err = preparedBlock{}, &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return p.Config.prepareBlockScratch(ctx, eng, wb.Block, sc)
}

// finishPrepared runs the post-classification stages for one block with
// panic containment, so a block whose trend analysis panics becomes its
// own BlockError without poisoning its batchmates.
func (p *Pipeline) finishPrepared(cfg Config, prep preparedBlock, cls blockclass.Result, sc *Scratch) (a *BlockAnalysis, err error) {
	defer func() {
		if r := recover(); r != nil {
			a, err = nil, &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return cfg.finishSeriesScratch(prep.series, prep.outages, prep.san, cls, sc)
}

// finishFallback is the scalar classify-and-finish path used when the
// batched classification pass failed: each block reruns classification on
// its own, so a per-block error (or panic) lands on the block that caused
// it — matching what the per-block path would have reported.
func (p *Pipeline) finishFallback(cfg Config, prep preparedBlock, sc *Scratch) (a *BlockAnalysis, err error) {
	defer func() {
		if r := recover(); r != nil {
			a, err = nil, &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return cfg.analyzeSeriesScratch(prep.series, prep.outages, prep.san, sc)
}
