package core

import (
	"context"
	"errors"
	"testing"

	"github.com/diurnalnet/diurnal/internal/changepoint"
	"github.com/diurnalnet/diurnal/internal/dataset"
	"github.com/diurnalnet/diurnal/internal/events"
	"github.com/diurnalnet/diurnal/internal/faults"
	"github.com/diurnalnet/diurnal/internal/geo"
	"github.com/diurnalnet/diurnal/internal/netsim"
	"github.com/diurnalnet/diurnal/internal/probe"
)

// flakyProber fails collection for a chosen set of blocks.
type flakyProber struct {
	inner Prober
	fail  map[netsim.BlockID]bool
}

func (p *flakyProber) CollectInto(ctx context.Context, b *netsim.Block, start, end int64, bufs [][]probe.Record) ([][]probe.Record, error) {
	if p.fail[b.ID] {
		return bufs, errors.New("collector crashed")
	}
	return p.inner.CollectInto(ctx, b, start, end, bufs)
}

func smallWorld(t *testing.T, blocks int, seed uint64) []*dataset.WorldBlock {
	t.Helper()
	world, err := dataset.BuildWorld(dataset.WorldOpts{
		Blocks:   blocks,
		Seed:     seed,
		Calendar: events.Year2020(),
		Start:    q1Start,
		End:      q1End,
	})
	if err != nil {
		t.Fatal(err)
	}
	return world
}

func TestPipelinePartialResultOnBlockErrors(t *testing.T) {
	world := smallWorld(t, 20, 41)
	// Pick two blocks that actually reach the prober: blocks with an empty
	// target list are dropped before collection and cannot fail.
	var idx []int
	for i, wb := range world {
		if len(wb.Block.EverActive()) > 0 {
			idx = append(idx, i)
		}
		if len(idx) == 2 {
			break
		}
	}
	if len(idx) < 2 {
		t.Fatal("world has too few responsive blocks")
	}
	fail := map[netsim.BlockID]bool{
		world[idx[0]].ID: true,
		world[idx[1]].ID: true,
	}
	p := &Pipeline{
		Config: q1Config(),
		Engine: &flakyProber{inner: engine4(), fail: fail},
	}
	res, err := p.Run(context.Background(), world)
	if err != nil {
		t.Fatalf("partial failure must not abort the run: %v", err)
	}
	if got := len(res.Report.BlockErrors); got != 2 {
		t.Fatalf("expected 2 block errors, got %d", got)
	}
	if res.Report.BlockErrors[0].Index != idx[0] || res.Report.BlockErrors[1].Index != idx[1] {
		t.Fatalf("block errors not in world order: %+v", res.Report.BlockErrors)
	}
	for i, b := range res.Blocks {
		if fail[world[i].ID] {
			if b.Analysis != nil {
				t.Fatalf("failed block %d has an analysis", i)
			}
			continue
		}
		if b.Analysis == nil {
			t.Fatalf("healthy block %d lost its analysis", i)
		}
	}
	if want := len(world) - 2; res.Report.AnalyzedBlocks != want {
		t.Fatalf("AnalyzedBlocks %d != %d", res.Report.AnalyzedBlocks, want)
	}
	var be BlockError
	if !errors.As(res.Report.BlockErrors[0], &be) || be.ID != world[idx[0]].ID {
		t.Fatal("BlockError lost its identity")
	}
}

func TestPipelineAllBlocksFailedReturnsError(t *testing.T) {
	// Keep only blocks that reach the prober so every one genuinely fails.
	var world []*dataset.WorldBlock
	for _, wb := range smallWorld(t, 12, 43) {
		if len(wb.Block.EverActive()) > 0 {
			world = append(world, wb)
		}
	}
	if len(world) == 0 {
		t.Fatal("world has no responsive blocks")
	}
	fail := map[netsim.BlockID]bool{}
	for _, wb := range world {
		fail[wb.ID] = true
	}
	p := &Pipeline{Config: q1Config(), Engine: &flakyProber{inner: engine4(), fail: fail}}
	res, err := p.Run(context.Background(), world)
	if err == nil {
		t.Fatal("a run where every block failed must return an error")
	}
	if res == nil || len(res.Report.BlockErrors) != len(world) {
		t.Fatal("the error report must still cover every block")
	}
}

func emptyResult() *WorldResult {
	return &WorldResult{
		Cells:       map[geo.CellKey]*geo.CellStats{},
		DownDaily:   map[geo.CellKey]map[int64]int{},
		UpDaily:     map[geo.CellKey]map[int64]int{},
		CellCS:      map[geo.CellKey]int{},
		ContinentCS: map[geo.Continent]int{},
		Report:      &RunReport{},
	}
}

func TestCellFractionSeriesZeroChangeSensitive(t *testing.T) {
	res := emptyResult()
	cell := geo.CellKey{Lat: 40, Lon: -120}
	got := res.CellFractionSeries(cell, changepoint.Down, 100, 105)
	if len(got) != 5 {
		t.Fatalf("series length %d != 5", len(got))
	}
	for i, v := range got {
		if v != 0 {
			t.Fatalf("day %d: expected 0 for a cell with no CS blocks, got %v", i, v)
		}
	}
}

func TestContinentFractionSeriesZeroChangeSensitive(t *testing.T) {
	res := emptyResult()
	got := res.ContinentFractionSeries(geoContinent(1), 100, 104)
	if len(got) != 4 {
		t.Fatalf("series length %d != 4", len(got))
	}
	for i, v := range got {
		if v != 0 {
			t.Fatalf("day %d: expected 0 for a continent with no CS blocks, got %v", i, v)
		}
	}
}

// TestPipelineFaultInjectedWorld is the headline robustness scenario: one
// observer broken (heavy erratic loss plus a multi-week downtime) and
// bursty loss everywhere. The run must still cover every block, and the
// health pre-pass must identify and exclude the broken observer.
func TestPipelineFaultInjectedWorld(t *testing.T) {
	world := smallWorld(t, 24, 47)
	eng := engine4()
	plan := faults.DefaultPlan(len(eng.Observers), 1, q1Start, 99)
	p := &Pipeline{
		Config:          q1Config(),
		Engine:          &faults.Engine{Inner: eng, Plan: plan},
		ExcludeSuspects: true,
		HealthSample:    8,
	}
	res, err := p.Run(context.Background(), world)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.AnalyzedBlocks != len(world) {
		t.Fatalf("faulty observers must not sink blocks: analyzed %d of %d (errors: %v)",
			res.Report.AnalyzedBlocks, len(world), res.Report.BlockErrors)
	}
	broken := len(eng.Observers) - 1
	found := false
	for _, oi := range res.Report.ExcludedObservers {
		if oi == broken {
			found = true
		}
	}
	if !found {
		t.Fatalf("broken observer %d not excluded (rates %v, excluded %v)",
			broken, res.Report.ObserverRates, res.Report.ExcludedObservers)
	}
	if len(res.Report.ExcludedObservers) == len(eng.Observers) {
		t.Fatal("health check must never exclude every observer")
	}
}

// TestPipelineHealthCheckKeepsHealthyObservers guards the other side: with
// no faults the pre-pass must find nothing to exclude, and results must
// match a run without the check.
func TestPipelineHealthCheckKeepsHealthyObservers(t *testing.T) {
	world := smallWorld(t, 12, 53)
	run := func(exclude bool) *WorldResult {
		p := &Pipeline{Config: q1Config(), Engine: engine4(), ExcludeSuspects: exclude, HealthSample: 6}
		res, err := p.Run(context.Background(), world)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	with, without := run(true), run(false)
	if n := len(with.Report.ExcludedObservers); n != 0 {
		t.Fatalf("healthy observers excluded: %v", with.Report.ExcludedObservers)
	}
	if with.ChangeSensitiveCount() != without.ChangeSensitiveCount() {
		t.Fatal("health check changed results on a healthy world")
	}
}
