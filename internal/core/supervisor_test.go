package core

import (
	"context"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/diurnalnet/diurnal/internal/faults"
	"github.com/diurnalnet/diurnal/internal/health"
	"github.com/diurnalnet/diurnal/internal/netsim"
	"github.com/diurnalnet/diurnal/internal/probe"
)

// fingerprintIgnoringObservers fingerprints a result with every
// BlockOutcome.Observers zeroed, so supervised runs (which track
// contributing observers) compare against plain runs byte for byte.
func fingerprintIgnoringObservers(t *testing.T, res *WorldResult) string {
	t.Helper()
	blocks := append([]BlockOutcome(nil), res.Blocks...)
	for i := range blocks {
		blocks[i].Observers = 0
	}
	fp, err := (&WorldResult{Blocks: blocks, Report: res.Report}).Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

// TestSupervisedFaultFreeRunMatchesPlain is the determinism acceptance
// gate: with no faults injected, enabling the full supervisor (breakers,
// hedging, quorum, bounded admission) must reproduce the plain
// pipeline's output byte for byte.
func TestSupervisedFaultFreeRunMatchesPlain(t *testing.T) {
	world := smallWorld(t, 200, 47)
	eng := engine4()

	plain := &Pipeline{Config: q1Config(), Engine: eng}
	want, err := plain.Run(context.Background(), world)
	if err != nil {
		t.Fatal(err)
	}

	breaker := health.DefaultBreaker()
	hedge := health.DefaultHedge()
	sup := &Pipeline{
		Config:          q1Config(),
		Engine:          eng,
		ExcludeSuspects: true,
		Breaker:         &breaker,
		Hedge:           &hedge,
		Quorum:          2,
		MaxInflight:     4,
		MemoryBudget:    64 << 20,
	}
	got, err := sup.Run(context.Background(), world)
	if err != nil {
		t.Fatal(err)
	}

	if a, b := fingerprintIgnoringObservers(t, want), fingerprintIgnoringObservers(t, got); a != b {
		t.Fatalf("supervised fault-free run diverged from plain run: %s != %s", a, b)
	}
	if n := len(got.Report.BreakerTransitions); n != 0 {
		t.Fatalf("fault-free run must not trip breakers, got %d transitions: %v",
			n, got.Report.BreakerTransitions)
	}
	if got.Report.Degraded() {
		t.Fatalf("fault-free run reported degraded: open=%v shortfalls=%v",
			got.Report.BreakerOpen, got.Report.QuorumShortfalls)
	}
	if len(got.Report.HealthScores) == 0 {
		t.Fatal("supervised run must report final health scores")
	}
}

// TestFlapTripsBreakerAndFlagsQuorum injects a mid-run observer flap:
// the breaker must open (recording the transition), readmit the observer
// after it recovers, and the blocks analyzed below quorum must be
// flagged so the run finishes degraded but complete.
func TestFlapTripsBreakerAndFlagsQuorum(t *testing.T) {
	// Blocks with no ever-active targets never reach the prober and so
	// never advance the tracker; the world is sized so the surviving
	// ~55% of blocks still cover the full trip→cooldown→probation→
	// readmit cycle.
	world := smallWorld(t, 160, 48)
	eng := &faults.Engine{
		Inner: engine4(),
		// Observer 3 goes silent from collection call 12 through 35 — long
		// after any pre-scan would have sampled it, and long enough that
		// the EWMA collapses well below its peers.
		Plan: &faults.Plan{Seed: 7, Flaps: []faults.Flap{{Observer: 3, FromCall: 12, ToCall: 36}}},
	}
	p := &Pipeline{
		Config: q1Config(),
		Engine: eng,
		// One worker makes the commit order the world order, so the flap
		// window maps deterministically onto tracker sequence numbers.
		Workers: 1,
		Breaker: &health.BreakerConfig{Alpha: 0.5, Tol: 0.2, MinSamples: 4, Cooldown: 8, Probation: 4},
		Quorum:  4,
	}
	res, err := p.Run(context.Background(), world)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.AnalyzedBlocks != len(world) {
		t.Fatalf("flap must not fail blocks: analyzed %d of %d", res.Report.AnalyzedBlocks, len(world))
	}
	var opened, readmitted bool
	for _, tx := range res.Report.BreakerTransitions {
		if tx.Observer != 3 {
			t.Fatalf("only observer 3 flapped, but observer %d transitioned: %v", tx.Observer, tx)
		}
		if tx.From == health.Closed && tx.To == health.Open {
			opened = true
		}
		if tx.From == health.HalfOpen && tx.To == health.Closed {
			readmitted = true
		}
	}
	if !opened {
		t.Fatalf("breaker never opened under flap; transitions: %v scores: %v",
			res.Report.BreakerTransitions, res.Report.HealthScores)
	}
	if !readmitted {
		t.Fatalf("recovered observer never readmitted; transitions: %v", res.Report.BreakerTransitions)
	}
	if len(res.Report.QuorumShortfalls) == 0 {
		t.Fatal("blocks analyzed during the flap must be flagged below quorum")
	}
	if !res.Report.Degraded() {
		t.Fatal("a run with quorum shortfalls must report Degraded")
	}
}

// TestQuarantineBelowQuorum checks that quarantined shortfall blocks keep
// their analyses but drop out of the world aggregates.
func TestQuarantineBelowQuorum(t *testing.T) {
	world := smallWorld(t, 30, 49)
	eng := &faults.Engine{
		Inner: engine4(),
		Plan:  &faults.Plan{Seed: 7, Flaps: []faults.Flap{{Observer: 3, FromCall: 1}}}, // silent all run
	}
	run := func(quarantine bool) *WorldResult {
		p := &Pipeline{
			Config:                q1Config(),
			Engine:                eng,
			Workers:               1,
			Quorum:                4,
			QuarantineBelowQuorum: quarantine,
		}
		res, err := p.Run(context.Background(), world)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	flagged := run(false)
	if len(flagged.Report.QuorumShortfalls) == 0 {
		t.Fatal("a permanently silent observer must produce quorum shortfalls")
	}
	if flagged.Report.QuarantinedBlocks != 0 {
		t.Fatal("without quarantine, shortfall blocks still aggregate")
	}
	quarantined := run(true)
	if got, want := quarantined.Report.QuarantinedBlocks, len(quarantined.Report.QuorumShortfalls); got != want {
		t.Fatalf("quarantined %d of %d shortfall blocks", got, want)
	}
	for _, i := range quarantined.Report.QuorumShortfalls {
		if quarantined.Blocks[i].Analysis == nil {
			t.Fatalf("quarantine must keep block %d's analysis for inspection", i)
		}
	}
	if a, b := flagged.ChangeSensitiveCount(), quarantined.ChangeSensitiveCount(); b > a {
		t.Fatalf("quarantine cannot add change-sensitive blocks: %d > %d", b, a)
	}
}

// gaugedProber counts concurrent CollectInto calls.
type gaugedProber struct {
	inner   Prober
	cur     atomic.Int64
	max     atomic.Int64
	entered sync.WaitGroup
}

func (g *gaugedProber) CollectInto(ctx context.Context, b *netsim.Block, start, end int64, bufs [][]probe.Record) ([][]probe.Record, error) {
	n := g.cur.Add(1)
	for {
		m := g.max.Load()
		if n <= m || g.max.CompareAndSwap(m, n) {
			break
		}
	}
	defer g.cur.Add(-1)
	return g.inner.CollectInto(ctx, b, start, end, bufs)
}

// TestMaxInflightBoundsAdmission verifies the backpressure budget: with
// MaxInflight below the worker count, no more than MaxInflight blocks
// are ever collected concurrently.
func TestMaxInflightBoundsAdmission(t *testing.T) {
	world := smallWorld(t, 24, 50)
	g := &gaugedProber{inner: engine4()}
	p := &Pipeline{
		Config:      q1Config(),
		Engine:      g,
		Workers:     8,
		MaxInflight: 2,
	}
	if _, err := p.Run(context.Background(), world); err != nil {
		t.Fatal(err)
	}
	if got := g.max.Load(); got > 2 {
		t.Fatalf("observed %d concurrent collections with MaxInflight 2", got)
	}
}

// TestMemoryBudgetNarrowsAdmission: a budget below one block's estimate
// must serialize admission entirely rather than rejecting the run.
func TestMemoryBudgetNarrowsAdmission(t *testing.T) {
	world := smallWorld(t, 10, 51)
	g := &gaugedProber{inner: engine4()}
	p := &Pipeline{
		Config:       q1Config(),
		Engine:       g,
		Workers:      4,
		MemoryBudget: 1, // far below any block estimate
	}
	if _, err := p.Run(context.Background(), world); err != nil {
		t.Fatal(err)
	}
	if got := g.max.Load(); got > 1 {
		t.Fatalf("observed %d concurrent collections under a one-byte budget", got)
	}
}

// TestHedgeRescuesStalledBlocks injects per-block collector stalls far
// longer than the test budget and checks that hedged re-dispatch (a) keeps
// the results identical to an unstalled run, (b) actually hedged, and (c)
// journals each block exactly once despite double completions.
func TestHedgeRescuesStalledBlocks(t *testing.T) {
	world := smallWorld(t, 28, 52)
	inner := engine4()

	plain := &Pipeline{Config: q1Config(), Engine: inner}
	want, err := plain.Run(context.Background(), world)
	if err != nil {
		t.Fatal(err)
	}
	wantFP := fingerprintIgnoringObservers(t, want)

	eng := &faults.Engine{
		Inner: inner,
		Plan: &faults.Plan{
			Seed: 11,
			// ~1 in 4 blocks stalls for 30s on its first attempt — far past
			// the test deadline unless hedges rescue them. The first 8
			// calls run clean so the latency baseline can arm.
			Stall: &faults.Stall{Prob: 0.25, Delay: 30 * time.Second, Attempts: 1, FromCall: 8},
		},
	}
	cp, err := OpenCheckpoint(filepath.Join(t.TempDir(), "hedged.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Close()
	p := &Pipeline{
		Config:     q1Config(),
		Engine:     eng,
		Workers:    4,
		Checkpoint: cp,
		Hedge: &health.HedgeConfig{
			Multiplier:  3,
			MinSamples:  4,
			MinDeadline: 10 * time.Millisecond,
			Poll:        2 * time.Millisecond,
		},
	}
	done := make(chan struct{})
	var res *WorldResult
	go func() {
		defer close(done)
		res, err = p.Run(context.Background(), world)
	}()
	// Generous cap: under the race detector every block is ~10× slower,
	// and the adaptive deadline scales with it. Without hedging the run
	// would need minutes (each stalled block burns its full 30s delay).
	select {
	case <-done:
	case <-time.After(90 * time.Second):
		t.Fatal("hedged run did not finish: stalled blocks were never rescued")
	}
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.HedgedBlocks == 0 {
		t.Fatal("stall injection should have triggered at least one hedge")
	}
	if got := fingerprintIgnoringObservers(t, res); got != wantFP {
		t.Fatalf("hedged run diverged from plain run: %s != %s", got, wantFP)
	}
	if got, want := cp.Entries(), res.Report.AnalyzedBlocks; got != want {
		t.Fatalf("journal holds %d entries for %d analyzed blocks: hedging double-journaled", got, want)
	}
}
