package core

// BlockAnalysis dominates a checkpoint frame, and most of its bytes sit
// in six flat numeric slices (the reconstructed series and the resampled
// decomposition). Encoding those through gob's reflection path costs more
// CPU than the journaling budget allows, so BlockAnalysis implements
// GobEncoder/GobDecoder itself: the small structured fields still ride a
// nested gob blob, while the bulk slices are written as raw little-endian
// words. The format is deterministic, which WorldResult.Fingerprint
// depends on.

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"

	"github.com/diurnalnet/diurnal/internal/blockclass"
	"github.com/diurnalnet/diurnal/internal/outage"
	"github.com/diurnalnet/diurnal/internal/reconstruct"
)

// analysisWire carries every BlockAnalysis field that is cheap to gob;
// the six bulk slices follow it as raw sections.
type analysisWire struct {
	Class          blockclass.Result
	Changes        []Change
	OutagePairs    []Change
	LowConfChanges []Change
	Confidence     []bool
	Sanitize       reconstruct.SanitizeReport
	Outages        []outage.Interval
	SampleStart    int64
	SampleStep     int64
	HasSeries      bool
}

// blobBytes gob-encodes the structured fields. The result is small — the
// bulk slices travel as raw sections instead.
func (a *BlockAnalysis) blobBytes() ([]byte, error) {
	w := analysisWire{
		Class:          a.Class,
		Changes:        a.Changes,
		OutagePairs:    a.OutagePairs,
		LowConfChanges: a.LowConfChanges,
		Confidence:     a.Confidence,
		Sanitize:       a.Sanitize,
		Outages:        a.Outages,
		SampleStart:    a.SampleStart,
		SampleStep:     a.SampleStep,
		HasSeries:      a.Series != nil,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&w); err != nil {
		return nil, fmt.Errorf("core: encoding analysis: %w", err)
	}
	return buf.Bytes(), nil
}

// sectionsSize returns the exact encoded size of the raw slice sections,
// so callers can allocate a frame buffer once.
func (a *BlockAnalysis) sectionsSize() int {
	size := 0
	add := func(n int) { size += 4 + 8*n }
	if a.Series != nil {
		add(len(a.Series.Times))
		add(len(a.Series.Counts))
	}
	add(len(a.Resampled))
	add(len(a.Trend))
	add(len(a.Seasonal))
	add(len(a.Normalized))
	return size
}

// appendSections appends the six bulk slices as raw sections.
func (a *BlockAnalysis) appendSections(out []byte) []byte {
	if a.Series != nil {
		out = appendInt64s(out, a.Series.Times)
		out = appendFloat64s(out, a.Series.Counts)
	}
	out = appendFloat64s(out, a.Resampled)
	out = appendFloat64s(out, a.Trend)
	out = appendFloat64s(out, a.Seasonal)
	out = appendFloat64s(out, a.Normalized)
	return out
}

// GobEncode renders the analysis as a length-prefixed gob blob of the
// structured fields followed by raw slice sections.
func (a *BlockAnalysis) GobEncode() ([]byte, error) {
	blob, err := a.blobBytes()
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, 4+len(blob)+a.sectionsSize())
	out = binary.LittleEndian.AppendUint32(out, uint32(len(blob)))
	out = append(out, blob...)
	return a.appendSections(out), nil
}

// GobDecode is the inverse of GobEncode.
func (a *BlockAnalysis) GobDecode(data []byte) error {
	if len(data) < 4 {
		return fmt.Errorf("core: analysis frame too short")
	}
	n := int(binary.LittleEndian.Uint32(data))
	if 4+n > len(data) {
		return fmt.Errorf("core: analysis blob length %d exceeds frame", n)
	}
	var w analysisWire
	if err := gob.NewDecoder(bytes.NewReader(data[4 : 4+n])).Decode(&w); err != nil {
		return fmt.Errorf("core: decoding analysis: %w", err)
	}
	*a = BlockAnalysis{
		Class:          w.Class,
		Changes:        w.Changes,
		OutagePairs:    w.OutagePairs,
		LowConfChanges: w.LowConfChanges,
		Confidence:     w.Confidence,
		Sanitize:       w.Sanitize,
		Outages:        w.Outages,
		SampleStart:    w.SampleStart,
		SampleStep:     w.SampleStep,
	}
	rest := data[4+n:]
	var err error
	if w.HasSeries {
		s := &reconstruct.Series{}
		if s.Times, rest, err = readInt64s(rest); err != nil {
			return err
		}
		if s.Counts, rest, err = readFloat64s(rest); err != nil {
			return err
		}
		a.Series = s
	}
	if a.Resampled, rest, err = readFloat64s(rest); err != nil {
		return err
	}
	if a.Trend, rest, err = readFloat64s(rest); err != nil {
		return err
	}
	if a.Seasonal, rest, err = readFloat64s(rest); err != nil {
		return err
	}
	if a.Normalized, rest, err = readFloat64s(rest); err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("core: %d trailing bytes after analysis", len(rest))
	}
	return nil
}

// Raw slice sections are a u32 count followed by 8-byte little-endian
// words. The count is shifted by one so nil and empty slices survive a
// round trip distinctly (0 = nil, n+1 = slice of n values); fingerprints
// of fresh and resumed runs must not differ on that distinction.

func appendFloat64s(b []byte, xs []float64) []byte {
	if xs == nil {
		return binary.LittleEndian.AppendUint32(b, 0)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(xs))+1)
	for _, x := range xs {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(x))
	}
	return b
}

func appendInt64s(b []byte, xs []int64) []byte {
	if xs == nil {
		return binary.LittleEndian.AppendUint32(b, 0)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(xs))+1)
	for _, x := range xs {
		b = binary.LittleEndian.AppendUint64(b, uint64(x))
	}
	return b
}

func readSection(b []byte) (n int, rest []byte, err error) {
	if len(b) < 4 {
		return 0, nil, fmt.Errorf("core: truncated analysis section")
	}
	c := binary.LittleEndian.Uint32(b)
	if c == 0 {
		return -1, b[4:], nil
	}
	n = int(c - 1)
	if len(b) < 4+8*n {
		return 0, nil, fmt.Errorf("core: analysis section of %d words truncated", n)
	}
	return n, b[4:], nil
}

func readFloat64s(b []byte) ([]float64, []byte, error) {
	n, rest, err := readSection(b)
	if err != nil || n < 0 {
		return nil, rest, err
	}
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[8*i:]))
	}
	return xs, rest[8*n:], nil
}

func readInt64s(b []byte) ([]int64, []byte, error) {
	n, rest, err := readSection(b)
	if err != nil || n < 0 {
		return nil, rest, err
	}
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = int64(binary.LittleEndian.Uint64(rest[8*i:]))
	}
	return xs, rest[8*n:], nil
}
