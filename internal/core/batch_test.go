package core

import (
	"context"
	"math"
	"reflect"
	"sync"
	"testing"

	"github.com/diurnalnet/diurnal/internal/dataset"
	"github.com/diurnalnet/diurnal/internal/faults"
	"github.com/diurnalnet/diurnal/internal/netsim"
)

// floatsSame compares float slices bitwise, so NaN gap markers compare
// equal to themselves instead of poisoning the parity check.
func floatsSame(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// analysesSame is bit-level equality over two BlockAnalysis values.
func analysesSame(a, b *BlockAnalysis) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if (a.Series == nil) != (b.Series == nil) {
		return false
	}
	if a.Series != nil {
		if !reflect.DeepEqual(a.Series.Times, b.Series.Times) || !floatsSame(a.Series.Counts, b.Series.Counts) {
			return false
		}
	}
	return a.Class == b.Class &&
		floatsSame(a.Resampled, b.Resampled) &&
		floatsSame(a.Trend, b.Trend) &&
		floatsSame(a.Seasonal, b.Seasonal) &&
		floatsSame(a.Normalized, b.Normalized) &&
		reflect.DeepEqual(a.Changes, b.Changes) &&
		reflect.DeepEqual(a.OutagePairs, b.OutagePairs) &&
		reflect.DeepEqual(a.LowConfChanges, b.LowConfChanges) &&
		reflect.DeepEqual(a.Confidence, b.Confidence) &&
		a.Sanitize == b.Sanitize &&
		reflect.DeepEqual(a.Outages, b.Outages) &&
		a.SampleStart == b.SampleStart &&
		a.SampleStep == b.SampleStep
}

// requireRunParity runs the pipeline per-block and batched and demands
// bit-identical outcomes, reports, and world aggregates.
func requireRunParity(t *testing.T, mk func(batchSize int) *Pipeline, world []*dataset.WorldBlock) {
	t.Helper()
	scalar, errS := mk(1).Run(context.Background(), world)
	batched, errB := mk(8).Run(context.Background(), world)
	if (errS == nil) != (errB == nil) {
		t.Fatalf("error divergence: scalar %v, batched %v", errS, errB)
	}
	if scalar == nil || batched == nil {
		return
	}
	if len(scalar.Blocks) != len(batched.Blocks) {
		t.Fatalf("block count %d vs %d", len(scalar.Blocks), len(batched.Blocks))
	}
	for i := range scalar.Blocks {
		s, b := &scalar.Blocks[i], &batched.Blocks[i]
		if s.ID != b.ID || s.Place != b.Place || s.Observers != b.Observers {
			t.Fatalf("block %d outcome metadata differs: %+v vs %+v", i, s, b)
		}
		if !analysesSame(s.Analysis, b.Analysis) {
			t.Fatalf("block %d analysis differs between per-block and batched runs", i)
		}
	}
	rs, rb := scalar.Report, batched.Report
	if rs.AnalyzedBlocks != rb.AnalyzedBlocks {
		t.Fatalf("AnalyzedBlocks %d vs %d", rs.AnalyzedBlocks, rb.AnalyzedBlocks)
	}
	if len(rs.BlockErrors) != len(rb.BlockErrors) {
		t.Fatalf("BlockErrors %d vs %d", len(rs.BlockErrors), len(rb.BlockErrors))
	}
	for i := range rs.BlockErrors {
		if rs.BlockErrors[i].Index != rb.BlockErrors[i].Index || rs.BlockErrors[i].ID != rb.BlockErrors[i].ID {
			t.Fatalf("BlockErrors[%d] differs: %+v vs %+v", i, rs.BlockErrors[i], rb.BlockErrors[i])
		}
	}
	if len(rs.DeadLettered) != len(rb.DeadLettered) {
		t.Fatalf("DeadLettered %d vs %d", len(rs.DeadLettered), len(rb.DeadLettered))
	}
	for i := range rs.DeadLettered {
		if rs.DeadLettered[i].Index != rb.DeadLettered[i].Index {
			t.Fatalf("DeadLettered[%d] differs", i)
		}
	}
	if !reflect.DeepEqual(rs.QuorumShortfalls, rb.QuorumShortfalls) {
		t.Fatalf("QuorumShortfalls %v vs %v", rs.QuorumShortfalls, rb.QuorumShortfalls)
	}
	if !reflect.DeepEqual(scalar.CellCS, batched.CellCS) ||
		!reflect.DeepEqual(scalar.ContinentCS, batched.ContinentCS) ||
		!reflect.DeepEqual(scalar.DownDaily, batched.DownDaily) ||
		!reflect.DeepEqual(scalar.UpDaily, batched.UpDaily) {
		t.Fatal("world aggregates differ between per-block and batched runs")
	}
}

// TestBatchRunParityCleanWorld checks the batched scheduler is bit
// identical to the per-block path over a full simulated world on the
// clean engine, across worker counts (including racy multi-worker runs —
// this is the test CI drives under the race detector).
func TestBatchRunParityCleanWorld(t *testing.T) {
	world := smallWorld(t, 36, 91)
	for _, workers := range []int{1, 4} {
		mk := func(batch int) *Pipeline {
			return &Pipeline{Config: q1Config(), Engine: engine4(), Workers: workers, BatchSize: batch}
		}
		requireRunParity(t, mk, world)
	}
}

// TestBatchRunParityFaultyWorld injects observer downtime, clock skew,
// corruption, and flaky collects — producing sanitize activity and
// NaN-bearing measurement gaps — and demands parity still holds. The
// faulty engine does not advertise clean streams, so this also covers the
// sanitize-enabled prepare path.
func TestBatchRunParityFaultyWorld(t *testing.T) {
	world := smallWorld(t, 30, 92)
	mk := func(batch int) *Pipeline {
		eng := engine4()
		plan := faults.DefaultPlan(len(eng.Observers), 1, q1Start, 17)
		return &Pipeline{
			Config:    q1Config(),
			Engine:    &faults.Engine{Inner: eng, Plan: plan},
			Workers:   2,
			BatchSize: batch,
		}
	}
	requireRunParity(t, mk, world)
}

// memDeadLetters is an in-memory DeadLetterer for parity tests.
type memDeadLetters struct {
	mu sync.Mutex
	m  map[netsim.BlockID]string
}

func (d *memDeadLetters) Lookup(index int, id netsim.BlockID) (string, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	r, ok := d.m[id]
	return r, ok
}

func (d *memDeadLetters) Record(index int, id netsim.BlockID, err error) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.m == nil {
		d.m = map[netsim.BlockID]string{}
	}
	if _, ok := d.m[id]; !ok {
		d.m[id] = err.Error()
	}
	return nil
}

// TestBatchRunParityPoisonDeadLetter mixes panicking poison blocks into
// the world with a dead-letter quarantine attached: the batched prepare
// phase must contain each panic to its own block and dead-letter exactly
// the blocks the per-block path does.
func TestBatchRunParityPoisonDeadLetter(t *testing.T) {
	world := smallWorld(t, 30, 93)
	mk := func(batch int) *Pipeline {
		eng := engine4()
		return &Pipeline{
			Config: q1Config(),
			Engine: &faults.Engine{
				Inner: eng,
				Plan:  &faults.Plan{Seed: 5, Poison: &faults.Poison{Prob: 0.2}},
			},
			Workers:    2,
			BatchSize:  batch,
			MaxRetries: -1,
			DeadLetter: &memDeadLetters{},
		}
	}
	requireRunParity(t, mk, world)
}

// TestBatchRunParityQuorumInflight runs batching with observer quorum
// tracking and a tight admission bound, checking the batch size clamps
// instead of deadlocking and the supervised commit path stays identical.
func TestBatchRunParityQuorumInflight(t *testing.T) {
	world := smallWorld(t, 24, 94)
	mk := func(batch int) *Pipeline {
		return &Pipeline{
			Config:      q1Config(),
			Engine:      engine4(),
			Workers:     2,
			BatchSize:   batch,
			Quorum:      2,
			MaxInflight: 3, // < workers x batch: forces the clamp
		}
	}
	requireRunParity(t, mk, world)
}

// TestEffectiveBatchSize pins the gating rules: defaulting, hedge/breaker
// fallback to per-block, and the admission clamp.
func TestEffectiveBatchSize(t *testing.T) {
	p := &Pipeline{}
	if got := p.effectiveBatchSize(4, nil); got != defaultBatchSize {
		t.Fatalf("default batch = %d, want %d", got, defaultBatchSize)
	}
	p = &Pipeline{BatchSize: -3}
	if got := p.effectiveBatchSize(4, nil); got != 1 {
		t.Fatalf("negative batch = %d, want 1", got)
	}
	p = &Pipeline{BatchSize: 16}
	admit := make(chan struct{}, 8)
	if got := p.effectiveBatchSize(4, admit); got != 2 {
		t.Fatalf("clamped batch = %d, want 2", got)
	}
	tiny := make(chan struct{}, 1)
	if got := p.effectiveBatchSize(4, tiny); got != 1 {
		t.Fatalf("tiny admission batch = %d, want 1", got)
	}
}
