package core

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"github.com/diurnalnet/diurnal/internal/changepoint"
	"github.com/diurnalnet/diurnal/internal/dataset"
	"github.com/diurnalnet/diurnal/internal/geo"
	"github.com/diurnalnet/diurnal/internal/health"
	"github.com/diurnalnet/diurnal/internal/netsim"
	"github.com/diurnalnet/diurnal/internal/probe"
	"github.com/diurnalnet/diurnal/internal/reconstruct"
)

// Prober abstracts the probing engine seen by the analysis pipeline.
// *probe.Engine satisfies it directly; internal/faults.Engine wraps one to
// inject measurement-plane failures without the pipeline noticing, and
// dataset.ReplayProber serves archived observations instead of probing.
type Prober interface {
	// CollectInto gathers per-observer record streams for one block over
	// [start, end), reusing bufs (which may be nil), and honors ctx
	// cancellation. See probe.Engine.CollectInto for the buffer contract.
	CollectInto(ctx context.Context, b *netsim.Block, start, end int64, bufs [][]probe.Record) ([][]probe.Record, error)
}

// DeadLetterer quarantines poison blocks: blocks whose analysis fails
// permanently (a deterministic panic, a blown per-block deadline, an
// exhausted transient-retry budget, a corrupt archived log) are recorded
// durably and skipped on every later attempt instead of burning their
// retry budget again. internal/shard.DeadLetterStore is the file-backed
// implementation.
type DeadLetterer interface {
	// Lookup reports whether the block is already quarantined, and why.
	Lookup(index int, id netsim.BlockID) (reason string, ok bool)
	// Record quarantines the block with its fault context. Recording the
	// same block twice must be idempotent (first write wins).
	Record(index int, id netsim.BlockID, err error) error
}

// BlockOutcome pairs a block's pipeline result with its placement.
type BlockOutcome struct {
	ID       netsim.BlockID
	Place    geo.Placement
	Analysis *BlockAnalysis
	// Observers is how many observers contributed at least one record to
	// the analysis, recorded only when the pipeline's quorum guard is
	// enabled (Pipeline.Quorum > 0); zero means "not tracked", which is
	// also what blocks resumed from pre-quorum journals report.
	Observers int
}

// BlockError records one block's analysis failure during a world run.
type BlockError struct {
	// Index is the block's position in the input world slice.
	Index int
	ID    netsim.BlockID
	Err   error
}

// Error renders the failure with its block identity.
func (e BlockError) Error() string {
	return fmt.Sprintf("block %d (%s): %v", e.Index, e.ID, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e BlockError) Unwrap() error { return e.Err }

// RunReport describes how a world run degraded: which blocks failed and
// which observers were discarded. A fully healthy run has an empty report.
type RunReport struct {
	// BlockErrors lists per-block failures in world order; the matching
	// WorldResult.Blocks entries carry a nil Analysis. The run continues
	// past them — one sick block no longer aborts the world.
	BlockErrors []BlockError
	// ExcludedObservers are engine observer indices whose record streams
	// were discarded before merging by the §2.7 cross-observer health
	// check — the paper's "sites c and g removed in 2020" decision as
	// code. Nil when the check is disabled or found nothing.
	ExcludedObservers []int
	// ObserverRates are the sampled per-observer reply rates behind the
	// exclusion decision (nil when the check is disabled).
	ObserverRates []float64
	// AnalyzedBlocks counts blocks whose analysis completed.
	AnalyzedBlocks int
	// ResumedBlocks counts blocks restored from the checkpoint journal
	// instead of being re-analyzed (zero without a checkpoint).
	ResumedBlocks int
	// RetriedBlocks counts blocks that needed at least one retry after a
	// transient collection failure.
	RetriedBlocks int
	// BreakerTransitions is the runtime circuit breakers' full state-change
	// log in decision order (nil when Pipeline.Breaker is unset).
	BreakerTransitions []health.Transition
	// BreakerOpen lists observers whose breaker was still open when the
	// run finished — the mid-run analogue of ExcludedObservers.
	BreakerOpen []int
	// HealthScores are the final per-observer EWMA reply-rate scores (nil
	// when Pipeline.Breaker is unset).
	HealthScores []float64
	// HedgedBlocks counts blocks that exceeded the straggler deadline and
	// were re-dispatched; HedgeWins counts hedge attempts that finished
	// before their primary.
	HedgedBlocks, HedgeWins int
	// QuorumShortfalls lists indices of blocks analyzed with fewer than
	// Pipeline.Quorum contributing observers, ascending (nil when the
	// quorum guard is disabled or nothing fell short).
	QuorumShortfalls []int
	// QuarantinedBlocks counts shortfall blocks excluded from world
	// aggregates because QuarantineBelowQuorum was set. Their analyses
	// remain in WorldResult.Blocks for inspection.
	QuarantinedBlocks int
	// DeadLettered lists blocks quarantined through Pipeline.DeadLetter in
	// world order: permanent per-block failures recorded durably and
	// skipped on resume instead of being retried forever. Their
	// WorldResult.Blocks entries carry a nil Analysis, and they do not
	// appear in BlockErrors.
	DeadLettered []BlockError
	// GatedStreams lists observers the data-integrity firewall excluded
	// from at least one block's merge (ascending; nil when
	// Config.Integrity is off or nothing was gated). A gated observer
	// marks the run degraded: its data was judged untrustworthy, not
	// merely missing.
	GatedStreams []int
	// AgreementScores are the per-observer aggregate cross-observer
	// agreement scores (matching votes / compared votes over all
	// committed blocks; 1 for observers with no peer overlap). Nil when
	// Config.Integrity is off.
	AgreementScores []float64
	// IntegrityVerdicts attributes every gated (block, observer) stream
	// with the gate it tripped, ordered by block index then observer.
	// Nil when Config.Integrity is off or nothing was gated.
	IntegrityVerdicts []IntegrityVerdict
}

// Degraded reports whether the run finished in degraded mode: observers
// still tripped out by their breakers, blocks analyzed below the observer
// quorum, blocks dead-lettered out of the run, or observer streams gated
// by the data-integrity firewall. Scripted runs use this (via
// diurnalscan's exit code) to detect partial-confidence output.
func (r *RunReport) Degraded() bool {
	return len(r.BreakerOpen) > 0 || len(r.QuorumShortfalls) > 0 || len(r.DeadLettered) > 0 ||
		len(r.GatedStreams) > 0
}

// WorldResult aggregates a whole-world pipeline run.
type WorldResult struct {
	// Blocks holds per-block outcomes in world order.
	Blocks []BlockOutcome
	// Cells accumulates per-gridcell responsive/change-sensitive counts
	// for coverage analysis (Table 4).
	Cells map[geo.CellKey]*geo.CellStats
	// DownDaily and UpDaily count, per gridcell and UTC day index, how
	// many change-sensitive blocks alarmed in each direction (Figures
	// 8–10 derive from these).
	DownDaily, UpDaily map[geo.CellKey]map[int64]int
	// CellCS is the number of change-sensitive blocks per cell.
	CellCS map[geo.CellKey]int
	// ContinentCS is the change-sensitive block count per continent.
	ContinentCS map[geo.Continent]int
	// Report summarizes degradation during the run (never nil after Run).
	Report *RunReport
}

// Pipeline runs the full analysis over a simulated world.
type Pipeline struct {
	Config Config
	Engine Prober
	// Workers bounds parallelism (default GOMAXPROCS).
	Workers int
	// BatchSize groups each worker's blocks so their classification FFTs
	// run as batched same-length columnar passes (internal/dsp.BatchPlan)
	// instead of one transform at a time. Zero means the default of 8;
	// one (or negative) keeps the per-block path. Results are bit
	// identical either way. Batching turns itself off when hedging or
	// breakers are configured — both judge per-block latency, which
	// batching deliberately trades away — and shrinks so that
	// workers x batch never exceeds the admission bound (see MaxInflight).
	BatchSize int
	// ExcludeSuspects enables the §2.7 cross-observer health check: reply
	// rates are sampled over up to HealthSample blocks and observers
	// flagged by reconstruct.ObserverHealth.Suspect have their streams
	// discarded before merging, reproducing the paper's observer-discard
	// decision.
	ExcludeSuspects bool
	// HealthSample bounds how many blocks the health pre-pass probes
	// (default 64).
	HealthSample int
	// HealthTol is the reply-rate tolerance below the median before an
	// observer is suspect (default 0.1).
	HealthTol float64
	// BlockTimeout bounds one block's probe-and-analyze attempt; a block
	// that blows its deadline becomes a BlockError while the run
	// continues. Zero disables per-block deadlines.
	BlockTimeout time.Duration
	// MaxRetries is how many extra attempts a block gets when collection
	// fails with a transient error (see IsTransient). Zero means the
	// default of 2; negative disables retries. Non-transient errors are
	// never retried.
	MaxRetries int
	// RetryBackoff is the delay before the first retry, doubling per
	// attempt (default 10ms). Backoff waits honor ctx cancellation.
	RetryBackoff time.Duration
	// Checkpoint, when non-nil, journals every completed block outcome
	// and, on resume, restores journaled blocks instead of re-analyzing
	// them. See OpenCheckpoint.
	Checkpoint *Checkpointer
	// Breaker, when non-nil, enables per-observer runtime circuit
	// breakers: each observer's per-block reply rate feeds an EWMA health
	// score, observers whose score collapses relative to their peers are
	// tripped out of subsequent blocks, and readmitted after cooldown and
	// probation. When ExcludeSuspects is also set, the pre-scan's rates
	// seed the scores and its exclusions start with open breakers, so the
	// static and runtime checks agree from the first block.
	Breaker *health.BreakerConfig
	// Hedge, when non-nil, enables straggler detection: a watchdog tracks
	// completed-block latency quantiles and re-dispatches blocks exceeding
	// the adaptive deadline to a fresh attempt, delivering whichever
	// finishes first (results are identical either way — analysis is
	// deterministic) and journaling exactly once.
	Hedge *health.HedgeConfig
	// DeadLetter, when non-nil, quarantines poison blocks: a block whose
	// analysis fails permanently is recorded there (with its fault
	// context) instead of in Report.BlockErrors, and blocks already
	// quarantined are skipped — never re-analyzed — with the skip recorded
	// in Report.DeadLettered. Blocks interrupted by run-level cancellation
	// are neither: they stay eligible for the resumed run.
	DeadLetter DeadLetterer
	// Quorum, when positive, flags blocks analyzed with fewer than this
	// many contributing observers in Report.QuorumShortfalls.
	Quorum int
	// QuarantineBelowQuorum additionally excludes shortfall blocks from
	// world-level aggregates (their analyses stay in Blocks).
	QuarantineBelowQuorum bool
	// MaxInflight bounds admitted-but-unfinished blocks (default: the
	// worker count — backpressure from the slowest worker, no queue
	// buildup).
	MaxInflight int
	// MemoryBudget, when positive, caps the estimated bytes of in-flight
	// block collections; admission narrows until the estimate fits, so
	// huge worlds cannot OOM the scheduler. See estimateBlockBytes.
	MemoryBudget int64
	// Clock injects time for the hedging watchdog (default wall clock).
	Clock health.Clock
}

// Run probes and analyzes every block, in parallel, and aggregates the
// results. The output is deterministic for a fixed world and config —
// including across a kill-and-resume cycle through Checkpoint.
//
// Per-block failures do not abort the run: worker panics and analysis
// errors are accumulated into the result's Report and the remaining
// blocks are analyzed, so a partial WorldResult covering every healthy
// block is returned. The error is non-nil only when the configuration is
// invalid, the checkpoint journal belongs to a different run, ctx was
// canceled, or every block failed.
//
// Cancellation: when ctx is done the run stops promptly (mid-block via
// the prober's ctx, between blocks via the dispatch loop) and returns the
// partial result with ctx's error. Blocks completed before the
// cancellation are already journaled if a Checkpoint is attached, so a
// later Run with the same checkpoint resumes where this one died.
func (p *Pipeline) Run(ctx context.Context, world []*dataset.WorldBlock) (*WorldResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := p.Config.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if p.Checkpoint != nil {
		if err := p.Checkpoint.ensureSignature(runSignature(cfg, world)); err != nil {
			return nil, err
		}
	}
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	res := &WorldResult{
		Blocks:      make([]BlockOutcome, len(world)),
		Cells:       map[geo.CellKey]*geo.CellStats{},
		DownDaily:   map[geo.CellKey]map[int64]int{},
		UpDaily:     map[geo.CellKey]map[int64]int{},
		CellCS:      map[geo.CellKey]int{},
		ContinentCS: map[geo.Continent]int{},
		Report:      &RunReport{},
	}
	clock := p.Clock
	if clock == nil {
		clock = health.System
	}
	// Observer supervision. The static pre-scan always runs when enabled;
	// with a breaker configured its verdict seeds the runtime tracker
	// (initial scores + pre-opened breakers) instead of freezing a wrapper
	// around the engine, so the pre-scan and the breaker agree on
	// exclusion yet the breaker can still readmit a recovered observer.
	eng := p.Engine
	// The integrity firewall wraps the raw engine directly — inside the
	// exclusion and supervision layers — so its gates judge what the
	// observers actually reported, and everything downstream (pre-scan
	// drops, breaker drops, reply-rate samples) sees the gated view.
	var integ *integrityProber
	if cfg.Integrity {
		integ = newIntegrityProber(eng)
		eng = integ
	}
	var tracker *health.Tracker
	if p.Breaker != nil {
		tracker = health.NewTracker(*p.Breaker)
	}
	if p.ExcludeSuspects {
		excluded, rates := p.suspectObservers(ctx, world)
		res.Report.ExcludedObservers = excluded
		res.Report.ObserverRates = rates
		if tracker != nil {
			tracker.Seed(rates, excluded)
		} else if len(excluded) > 0 {
			drop := make(map[int]bool, len(excluded))
			for _, oi := range excluded {
				drop[oi] = true
			}
			eng = &excludeProber{inner: eng, drop: drop}
		}
	}
	var sup *supervisedProber
	if tracker != nil || p.Quorum > 0 {
		sup = newSupervisedProber(eng, tracker)
		eng = sup
	}
	var hed *hedger
	if p.Hedge != nil {
		hed = newHedger(p, eng, *p.Hedge, clock)
		go hed.watch(ctx)
		defer close(hed.stop)
	}
	// Bounded admission: dispatch stalls once MaxInflight blocks (or the
	// MemoryBudget's worth of estimated collection bytes) are admitted but
	// unfinished, so a huge world exerts backpressure on the dispatcher
	// instead of queueing without bound.
	var admit chan struct{}
	if p.MaxInflight > 0 || p.MemoryBudget > 0 {
		inflight := p.MaxInflight
		if inflight <= 0 {
			inflight = workers
		}
		if p.MemoryBudget > 0 {
			if slots := int(p.MemoryBudget / estimateBlockBytes(cfg)); slots < 1 {
				inflight = 1
			} else if slots < inflight {
				inflight = slots
			}
		}
		admit = make(chan struct{}, inflight)
	}
	var (
		wg         sync.WaitGroup
		mu         sync.Mutex
		journalErr error
		resumed    int
		retried    int
	)
	batch := p.effectiveBatchSize(workers, admit)
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker owns its scratch outright: no pool round-trips, no
			// locks, and the FFT-plan/workspace caches stay warm for the
			// worker's whole share of the world.
			sc := NewScratch()
			if batch > 1 {
				p.batchWorker(ctx, eng, sup, integ, res, world, jobs, admit, batch, sc,
					&mu, &journalErr, &resumed, &retried)
				return
			}
			for i := range jobs {
				wb := world[i]
				p.runBlock(ctx, eng, sup, integ, hed, res, i, wb, sc, &mu, &journalErr, &resumed, &retried)
				if admit != nil {
					<-admit
				}
			}
		}()
	}
dispatch:
	for i := range world {
		if admit != nil {
			select {
			case admit <- struct{}{}:
			case <-ctx.Done():
				break dispatch
			}
		}
		select {
		case jobs <- i:
		case <-ctx.Done():
			if admit != nil {
				<-admit // the block was never handed to a worker
			}
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	res.Report.ResumedBlocks = resumed
	res.Report.RetriedBlocks = retried
	if tracker != nil {
		res.Report.BreakerTransitions = tracker.Transitions()
		res.Report.BreakerOpen = tracker.Excluded()
		res.Report.HealthScores = tracker.Scores()
	}
	if hed != nil {
		res.Report.HedgedBlocks, res.Report.HedgeWins = hed.stats()
	}
	if integ != nil {
		integ.report(res.Report)
	}
	if err := ctx.Err(); err != nil {
		return res, fmt.Errorf("core: run interrupted: %w", err)
	}
	if journalErr != nil {
		return res, fmt.Errorf("core: checkpoint journaling failed: %w", journalErr)
	}
	sort.Slice(res.Report.BlockErrors, func(i, j int) bool {
		return res.Report.BlockErrors[i].Index < res.Report.BlockErrors[j].Index
	})
	sort.Slice(res.Report.DeadLettered, func(i, j int) bool {
		return res.Report.DeadLettered[i].Index < res.Report.DeadLettered[j].Index
	})
	for i := range res.Blocks {
		b := &res.Blocks[i]
		if b.Analysis != nil {
			res.Report.AnalyzedBlocks++
		}
		// Quorum guard: a block merged from too few observers carries a
		// §2.7-style single-vantage bias, so it is flagged — and with
		// quarantine on, kept out of the world aggregates. Observers == 0
		// means "not tracked" (quorum off, or resumed from a pre-quorum
		// journal) and is never flagged.
		if p.Quorum > 0 && b.Analysis != nil && b.Observers > 0 && b.Observers < p.Quorum {
			res.Report.QuorumShortfalls = append(res.Report.QuorumShortfalls, i)
			if p.QuarantineBelowQuorum {
				res.Report.QuarantinedBlocks++
				continue
			}
		}
		res.aggregate(b)
	}
	if len(world) > 0 && res.Report.AnalyzedBlocks == 0 && len(res.Report.BlockErrors) > 0 {
		return res, fmt.Errorf("core: all %d blocks failed: %w", len(world), res.Report.BlockErrors[0])
	}
	if len(world) > 0 && res.Report.AnalyzedBlocks == 0 && len(res.Report.DeadLettered) == len(world) {
		return res, fmt.Errorf("core: all %d blocks dead-lettered: %w", len(world), res.Report.DeadLettered[0])
	}
	return res, nil
}

// runBlock takes one block from checkpoint lookup through analysis
// (hedged when a watchdog is attached) to delivery: result slot, health
// commit, and the exactly-once journal append.
func (p *Pipeline) runBlock(ctx context.Context, eng Prober, sup *supervisedProber, integ *integrityProber,
	hed *hedger, res *WorldResult, i int, wb *dataset.WorldBlock, sc *Scratch,
	mu *sync.Mutex, journalErr *error, resumed, retried *int) {
	if p.resolveWithoutAnalysis(res, i, wb, mu, resumed) {
		return
	}
	var (
		analysis *BlockAnalysis
		attempts int
		err      error
	)
	if hed != nil {
		analysis, attempts, err = hed.run(ctx, i, wb, sc)
	} else {
		analysis, attempts, err = p.analyzeBlock(ctx, eng, wb, sc)
	}
	p.deliverOutcome(ctx, sup, integ, res, i, wb, analysis, attempts, err, mu, journalErr, retried)
}

// resolveWithoutAnalysis handles the two pre-analysis short circuits —
// checkpoint restore and dead-letter skip — and reports whether the block
// is settled without analyzing it.
func (p *Pipeline) resolveWithoutAnalysis(res *WorldResult, i int, wb *dataset.WorldBlock,
	mu *sync.Mutex, resumed *int) bool {
	if p.Checkpoint != nil {
		if prior, ok := p.Checkpoint.Lookup(i, wb.ID); ok {
			res.Blocks[i] = *prior
			mu.Lock()
			*resumed++
			mu.Unlock()
			return true
		}
	}
	// A block already dead-lettered (by this run's earlier life, or by
	// another worker sharing the quarantine store) is skipped outright: a
	// poison block must cost its retry budget once, not once per resume.
	if p.DeadLetter != nil {
		if reason, ok := p.DeadLetter.Lookup(i, wb.ID); ok {
			mu.Lock()
			res.Report.DeadLettered = append(res.Report.DeadLettered,
				BlockError{Index: i, ID: wb.ID, Err: fmt.Errorf("%s", reason)})
			mu.Unlock()
			res.Blocks[i] = BlockOutcome{ID: wb.ID, Place: wb.Place}
			return true
		}
	}
	return false
}

// deliverOutcome lands one analyzed (or failed) block: the retried tally,
// the error path (supervision discard, dead-lettering, BlockError), or the
// success path (integrity commit, health commit, result slot, exactly-once
// journal append). Both the per-block worker and the batch scheduler
// funnel through it.
func (p *Pipeline) deliverOutcome(ctx context.Context, sup *supervisedProber, integ *integrityProber,
	res *WorldResult, i int, wb *dataset.WorldBlock, analysis *BlockAnalysis, attempts int, err error,
	mu *sync.Mutex, journalErr *error, retried *int) {
	if attempts > 1 {
		mu.Lock()
		*retried++
		mu.Unlock()
	}
	if err != nil {
		if integ != nil {
			integ.discard(wb.ID)
		}
		if sup != nil {
			sup.discard(wb.ID)
		}
		// A block killed by run-level cancellation is neither finished
		// nor failed: leave it for the resumed run.
		if ctx.Err() != nil {
			return
		}
		// With a quarantine attached, a permanent failure is dead-lettered:
		// recorded durably with its fault context and skipped by every
		// later resume. Only if the quarantine itself cannot record does
		// the failure fall back to an ordinary (retryable-on-resume)
		// BlockError.
		if p.DeadLetter != nil {
			if dlErr := p.DeadLetter.Record(i, wb.ID, err); dlErr == nil {
				mu.Lock()
				res.Report.DeadLettered = append(res.Report.DeadLettered,
					BlockError{Index: i, ID: wb.ID, Err: err})
				mu.Unlock()
				res.Blocks[i] = BlockOutcome{ID: wb.ID, Place: wb.Place}
				return
			}
		}
		mu.Lock()
		res.Report.BlockErrors = append(res.Report.BlockErrors, BlockError{Index: i, ID: wb.ID, Err: err})
		mu.Unlock()
		res.Blocks[i] = BlockOutcome{ID: wb.ID, Place: wb.Place}
		return
	}
	outcome := BlockOutcome{ID: wb.ID, Place: wb.Place, Analysis: analysis}
	// Exactly one integrity/health commit per completed block, whichever
	// attempt's collection it came from. The firewall's verdicts land in
	// the run aggregates, and its agreement samples override the
	// supervisor's reply-rate samples where peer overlap gave them
	// meaning — so breakers open on persistent liars, not just dead
	// streams.
	var agree []health.Sample
	if integ != nil {
		agree = integ.commit(i, wb.ID)
	}
	if sup != nil {
		if n := sup.commit(wb.ID, agree); n >= 0 && p.Quorum > 0 {
			outcome.Observers = n
		}
	}
	res.Blocks[i] = outcome
	if p.Checkpoint != nil {
		if err := p.Checkpoint.Append(i, res.Blocks[i]); err != nil {
			mu.Lock()
			if *journalErr == nil {
				*journalErr = err
			}
			mu.Unlock()
		}
	}
}

// analyzeBlock runs one block with panic containment, a per-block
// deadline, and bounded retry-with-backoff for transient prober errors.
// attempts reports how many attempts ran.
func (p *Pipeline) analyzeBlock(ctx context.Context, eng Prober, wb *dataset.WorldBlock, sc *Scratch) (a *BlockAnalysis, attempts int, err error) {
	retries := p.MaxRetries
	switch {
	case retries == 0:
		retries = 2
	case retries < 0:
		retries = 0
	}
	backoff := p.RetryBackoff
	if backoff <= 0 {
		backoff = 10 * time.Millisecond
	}
	for {
		attempts++
		a, err = p.analyzeOnce(ctx, eng, wb, sc)
		if err == nil || !IsTransient(err) || attempts > retries || ctx.Err() != nil {
			return a, attempts, err
		}
		select {
		case <-ctx.Done():
			return nil, attempts, ctx.Err()
		case <-time.After(backoff):
		}
		backoff *= 2
	}
}

// analyzeOnce is a single attempt: it applies the per-block deadline and
// converts a worker panic into a PanicError, so one pathological block
// becomes one BlockError instead of killing the world run.
func (p *Pipeline) analyzeOnce(ctx context.Context, eng Prober, wb *dataset.WorldBlock, sc *Scratch) (a *BlockAnalysis, err error) {
	if p.BlockTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.BlockTimeout)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			a, err = nil, &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return p.Config.AnalyzeBlockScratch(ctx, eng, wb.Block, sc)
}

// suspectObservers samples reply rates across the world and returns the
// observer indices to discard, with the sampled rates. It never flags
// every observer: with no healthy reference the check cannot tell who is
// broken, so it degrades to keeping them all.
//
// Sampling strides ceil(len(world)/sample), so the probed blocks spread
// across the whole world instead of clustering in a fixed prefix (a
// floor stride used to land all samples in the first half when the world
// wasn't a multiple of the sample size, biasing rates toward whatever
// pathology that prefix happened to have). The rates double as the
// runtime breakers' initial health scores (see Pipeline.Breaker), so the
// one-shot pre-scan and the continuous breaker judge observers from the
// same evidence.
func (p *Pipeline) suspectObservers(ctx context.Context, world []*dataset.WorldBlock) (excluded []int, rates []float64) {
	sample := p.HealthSample
	if sample <= 0 {
		sample = 64
	}
	if sample > len(world) {
		sample = len(world)
	}
	if sample == 0 {
		return nil, nil
	}
	cfg := p.Config.withDefaults()
	stride := (len(world) + sample - 1) / sample
	if stride < 1 {
		stride = 1
	}
	var health *reconstruct.ObserverHealth
	var bufs [][]probe.Record
	for i, n := 0, 0; i < len(world) && n < sample; i += stride {
		if ctx.Err() != nil {
			return nil, nil
		}
		var err error
		bufs, err = p.Engine.CollectInto(ctx, world[i].Block, cfg.AnalysisStart, cfg.AnalysisEnd, bufs)
		if err != nil {
			continue
		}
		if health == nil {
			health = reconstruct.NewObserverHealth(len(bufs))
		}
		health.Add(bufs)
		n++
	}
	if health == nil {
		return nil, nil
	}
	tol := p.HealthTol
	if tol <= 0 {
		tol = 0.1
	}
	rates = health.Rates()
	excluded = health.Suspect(tol)
	if len(excluded) == len(rates) {
		return nil, rates
	}
	return excluded, rates
}

// excludeProber drops excluded observers' record streams after collection
// — the run proceeds as if the broken sites had never reported.
type excludeProber struct {
	inner Prober
	drop  map[int]bool
}

func (p *excludeProber) CollectInto(ctx context.Context, b *netsim.Block, start, end int64, bufs [][]probe.Record) ([][]probe.Record, error) {
	bufs, err := p.inner.CollectInto(ctx, b, start, end, bufs)
	if err != nil {
		return bufs, err
	}
	for i := range bufs {
		if p.drop[i] {
			bufs[i] = bufs[i][:0]
		}
	}
	return bufs, nil
}

// EmitsSanitizedRecords forwards the inner prober's cleanliness guarantee:
// truncating a stream to empty cannot dirty it.
func (p *excludeProber) EmitsSanitizedRecords() bool { return proberEmitsClean(p.inner) }

// Reaggregate rebuilds every world-level tally (cells, daily up/down
// counts, change-sensitive totals, AnalyzedBlocks) from Blocks alone. The
// shard merge step assembles Blocks from per-shard journals and calls this
// to reproduce exactly the aggregates a single-process Run would have
// computed. A nil Report is allocated.
func (r *WorldResult) Reaggregate() {
	r.Cells = map[geo.CellKey]*geo.CellStats{}
	r.DownDaily = map[geo.CellKey]map[int64]int{}
	r.UpDaily = map[geo.CellKey]map[int64]int{}
	r.CellCS = map[geo.CellKey]int{}
	r.ContinentCS = map[geo.Continent]int{}
	if r.Report == nil {
		r.Report = &RunReport{}
	}
	r.Report.AnalyzedBlocks = 0
	for i := range r.Blocks {
		b := &r.Blocks[i]
		if b.Analysis != nil {
			r.Report.AnalyzedBlocks++
		}
		r.aggregate(b)
	}
}

// aggregate folds one block outcome into the world-level tallies.
func (r *WorldResult) aggregate(b *BlockOutcome) {
	if b.Analysis == nil {
		return
	}
	cell := b.Place.Cell
	cs := r.Cells[cell]
	if cs == nil {
		cs = &geo.CellStats{Continent: b.Place.Region.Continent}
		r.Cells[cell] = cs
	}
	if b.Analysis.Class.Responsive {
		cs.Responsive++
	}
	if !b.Analysis.Class.ChangeSensitive {
		return
	}
	cs.ChangeSensitive++
	r.CellCS[cell]++
	r.ContinentCS[b.Place.Region.Continent]++
	for _, c := range b.Analysis.Changes {
		day := netsim.DayIndex(c.Point)
		var m map[geo.CellKey]map[int64]int
		if c.Dir == changepoint.Down {
			m = r.DownDaily
		} else {
			m = r.UpDaily
		}
		if m[cell] == nil {
			m[cell] = map[int64]int{}
		}
		m[cell][day]++
	}
}

// CellFractionSeries returns the daily fraction of the cell's
// change-sensitive blocks showing a change in the given direction over
// [startDay, endDay) (UTC day indices), as plotted in Figures 9b and 10b.
func (r *WorldResult) CellFractionSeries(cell geo.CellKey, dir changepoint.Direction, startDay, endDay int64) []float64 {
	n := int(endDay - startDay)
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	total := r.CellCS[cell]
	if total == 0 {
		return out
	}
	src := r.DownDaily
	if dir == changepoint.Up {
		src = r.UpDaily
	}
	days := src[cell]
	for d, count := range days {
		if d >= startDay && d < endDay {
			out[d-startDay] = float64(count) / float64(total)
		}
	}
	return out
}

// ContinentFractionSeries returns the daily fraction of the continent's
// change-sensitive blocks with a downward change (Figure 8).
func (r *WorldResult) ContinentFractionSeries(cont geo.Continent, startDay, endDay int64) []float64 {
	n := int(endDay - startDay)
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	total := r.ContinentCS[cont]
	if total == 0 {
		return out
	}
	for cell, days := range r.DownDaily {
		if st := r.Cells[cell]; st == nil || st.Continent != cont {
			continue
		}
		for d, count := range days {
			if d >= startDay && d < endDay {
				out[d-startDay] += float64(count) / float64(total)
			}
		}
	}
	return out
}

// PeakDay returns the UTC day index with the largest downward fraction in
// the cell along with that fraction; ok is false when the cell saw no
// downward changes.
func (r *WorldResult) PeakDay(cell geo.CellKey) (day int64, frac float64, ok bool) {
	total := r.CellCS[cell]
	if total == 0 {
		return 0, 0, false
	}
	best := -1
	for d, count := range r.DownDaily[cell] {
		if count > best || (count == best && d < day) {
			best = count
			day = d
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	return day, float64(best) / float64(total), true
}

// TopCells returns up to n cells ordered by change-sensitive block count
// (descending, ties by cell key for determinism).
func (r *WorldResult) TopCells(n int) []geo.CellKey {
	cells := make([]geo.CellKey, 0, len(r.CellCS))
	for c := range r.CellCS {
		cells = append(cells, c)
	}
	sort.Slice(cells, func(i, j int) bool {
		a, b := cells[i], cells[j]
		if r.CellCS[a] != r.CellCS[b] {
			return r.CellCS[a] > r.CellCS[b]
		}
		if a.Lat != b.Lat {
			return a.Lat < b.Lat
		}
		return a.Lon < b.Lon
	})
	if n < len(cells) {
		cells = cells[:n]
	}
	return cells
}

// ChangeSensitiveCount returns the number of change-sensitive blocks.
func (r *WorldResult) ChangeSensitiveCount() int {
	total := 0
	for _, n := range r.CellCS {
		total += n
	}
	return total
}
