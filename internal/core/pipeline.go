package core

import (
	"runtime"
	"sort"
	"sync"

	"github.com/diurnalnet/diurnal/internal/changepoint"
	"github.com/diurnalnet/diurnal/internal/dataset"
	"github.com/diurnalnet/diurnal/internal/geo"
	"github.com/diurnalnet/diurnal/internal/netsim"
	"github.com/diurnalnet/diurnal/internal/probe"
)

// BlockOutcome pairs a block's pipeline result with its placement.
type BlockOutcome struct {
	ID       netsim.BlockID
	Place    geo.Placement
	Analysis *BlockAnalysis
}

// WorldResult aggregates a whole-world pipeline run.
type WorldResult struct {
	// Blocks holds per-block outcomes in world order.
	Blocks []BlockOutcome
	// Cells accumulates per-gridcell responsive/change-sensitive counts
	// for coverage analysis (Table 4).
	Cells map[geo.CellKey]*geo.CellStats
	// DownDaily and UpDaily count, per gridcell and UTC day index, how
	// many change-sensitive blocks alarmed in each direction (Figures
	// 8–10 derive from these).
	DownDaily, UpDaily map[geo.CellKey]map[int64]int
	// CellCS is the number of change-sensitive blocks per cell.
	CellCS map[geo.CellKey]int
	// ContinentCS is the change-sensitive block count per continent.
	ContinentCS map[geo.Continent]int
}

// Pipeline runs the full analysis over a simulated world.
type Pipeline struct {
	Config Config
	Engine *probe.Engine
	// Workers bounds parallelism (default GOMAXPROCS).
	Workers int
}

// Run probes and analyzes every block, in parallel, and aggregates the
// results. The output is deterministic for a fixed world and config.
func (p *Pipeline) Run(world []*dataset.WorldBlock) (*WorldResult, error) {
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	res := &WorldResult{
		Blocks:      make([]BlockOutcome, len(world)),
		Cells:       map[geo.CellKey]*geo.CellStats{},
		DownDaily:   map[geo.CellKey]map[int64]int{},
		UpDaily:     map[geo.CellKey]map[int64]int{},
		CellCS:      map[geo.CellKey]int{},
		ContinentCS: map[geo.Continent]int{},
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				wb := world[i]
				analysis, err := p.Config.AnalyzeBlock(p.Engine, wb.Block)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				res.Blocks[i] = BlockOutcome{ID: wb.ID, Place: wb.Place, Analysis: analysis}
			}
		}()
	}
	for i := range world {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	for i := range res.Blocks {
		res.aggregate(&res.Blocks[i])
	}
	return res, nil
}

// aggregate folds one block outcome into the world-level tallies.
func (r *WorldResult) aggregate(b *BlockOutcome) {
	if b.Analysis == nil {
		return
	}
	cell := b.Place.Cell
	cs := r.Cells[cell]
	if cs == nil {
		cs = &geo.CellStats{Continent: b.Place.Region.Continent}
		r.Cells[cell] = cs
	}
	if b.Analysis.Class.Responsive {
		cs.Responsive++
	}
	if !b.Analysis.Class.ChangeSensitive {
		return
	}
	cs.ChangeSensitive++
	r.CellCS[cell]++
	r.ContinentCS[b.Place.Region.Continent]++
	for _, c := range b.Analysis.Changes {
		day := netsim.DayIndex(c.Point)
		var m map[geo.CellKey]map[int64]int
		if c.Dir == changepoint.Down {
			m = r.DownDaily
		} else {
			m = r.UpDaily
		}
		if m[cell] == nil {
			m[cell] = map[int64]int{}
		}
		m[cell][day]++
	}
}

// CellFractionSeries returns the daily fraction of the cell's
// change-sensitive blocks showing a change in the given direction over
// [startDay, endDay) (UTC day indices), as plotted in Figures 9b and 10b.
func (r *WorldResult) CellFractionSeries(cell geo.CellKey, dir changepoint.Direction, startDay, endDay int64) []float64 {
	n := int(endDay - startDay)
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	total := r.CellCS[cell]
	if total == 0 {
		return out
	}
	src := r.DownDaily
	if dir == changepoint.Up {
		src = r.UpDaily
	}
	days := src[cell]
	for d, count := range days {
		if d >= startDay && d < endDay {
			out[d-startDay] = float64(count) / float64(total)
		}
	}
	return out
}

// ContinentFractionSeries returns the daily fraction of the continent's
// change-sensitive blocks with a downward change (Figure 8).
func (r *WorldResult) ContinentFractionSeries(cont geo.Continent, startDay, endDay int64) []float64 {
	n := int(endDay - startDay)
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	total := r.ContinentCS[cont]
	if total == 0 {
		return out
	}
	for cell, days := range r.DownDaily {
		if st := r.Cells[cell]; st == nil || st.Continent != cont {
			continue
		}
		for d, count := range days {
			if d >= startDay && d < endDay {
				out[d-startDay] += float64(count) / float64(total)
			}
		}
	}
	return out
}

// PeakDay returns the UTC day index with the largest downward fraction in
// the cell along with that fraction; ok is false when the cell saw no
// downward changes.
func (r *WorldResult) PeakDay(cell geo.CellKey) (day int64, frac float64, ok bool) {
	total := r.CellCS[cell]
	if total == 0 {
		return 0, 0, false
	}
	best := -1
	for d, count := range r.DownDaily[cell] {
		if count > best || (count == best && d < day) {
			best = count
			day = d
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	return day, float64(best) / float64(total), true
}

// TopCells returns up to n cells ordered by change-sensitive block count
// (descending, ties by cell key for determinism).
func (r *WorldResult) TopCells(n int) []geo.CellKey {
	cells := make([]geo.CellKey, 0, len(r.CellCS))
	for c := range r.CellCS {
		cells = append(cells, c)
	}
	sort.Slice(cells, func(i, j int) bool {
		a, b := cells[i], cells[j]
		if r.CellCS[a] != r.CellCS[b] {
			return r.CellCS[a] > r.CellCS[b]
		}
		if a.Lat != b.Lat {
			return a.Lat < b.Lat
		}
		return a.Lon < b.Lon
	})
	if n < len(cells) {
		cells = cells[:n]
	}
	return cells
}

// ChangeSensitiveCount returns the number of change-sensitive blocks.
func (r *WorldResult) ChangeSensitiveCount() int {
	total := 0
	for _, n := range r.CellCS {
		total += n
	}
	return total
}
