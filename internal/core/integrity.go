package core

import (
	"context"
	"sort"
	"sync"

	"github.com/diurnalnet/diurnal/internal/health"
	"github.com/diurnalnet/diurnal/internal/integrity"
	"github.com/diurnalnet/diurnal/internal/netsim"
	"github.com/diurnalnet/diurnal/internal/probe"
)

// IntegrityVerdict attributes one gated observer stream: which block,
// which observer, and the first gate it tripped. RunReport collects
// these so a degraded run names its liars instead of just counting them.
type IntegrityVerdict struct {
	// Index is the block's position in the input world slice.
	Index int
	// Block is the gated stream's block.
	Block netsim.BlockID
	// Observer is the engine observer index whose stream was excluded.
	Observer int
	// Reason names the gate: out-of-window, non-member, duplicates,
	// reply-rate, or disagreement (see integrity.Verdict.Reason).
	Reason string
}

// integrityProber is the data-integrity firewall's seam into the
// pipeline: the innermost engine wrapper (directly around the raw
// prober, inside the exclusion and supervision layers), so the gates
// judge exactly what the observers reported before any policy touches
// it. After each collection it runs integrity.Check over the raw
// streams and empties the gated ones; verdicts stay pending until the
// block's analysis settles — commit on success, discard on failure —
// mirroring supervisedProber's exactly-once accounting under retries
// and hedging.
type integrityProber struct {
	inner Prober
	cfg   integrity.Config

	mu      sync.Mutex
	pending map[netsim.BlockID][]integrity.Verdict
	// Committed aggregates, indexed by observer (grown lazily).
	matches, compares []int64
	gatedBlocks       []int
	verdicts          []IntegrityVerdict
}

func newIntegrityProber(inner Prober) *integrityProber {
	return &integrityProber{inner: inner, pending: map[netsim.BlockID][]integrity.Verdict{}}
}

func (p *integrityProber) CollectInto(ctx context.Context, b *netsim.Block, start, end int64, bufs [][]probe.Record) ([][]probe.Record, error) {
	bufs, err := p.inner.CollectInto(ctx, b, start, end, bufs)
	if err != nil {
		return bufs, err
	}
	verdicts := integrity.Check(p.cfg, bufs, b.EverActive(), start, end)
	for oi := range verdicts {
		if verdicts[oi].Gated {
			bufs[oi] = bufs[oi][:0]
		}
	}
	p.mu.Lock()
	p.pending[b.ID] = verdicts // last attempt wins; commit consumes one
	p.mu.Unlock()
	return bufs, nil
}

// EmitsSanitizedRecords forwards the inner prober's cleanliness
// guarantee: gating only empties streams, which cannot dirty them.
func (p *integrityProber) EmitsSanitizedRecords() bool { return proberEmitsClean(p.inner) }

// commit consumes the block's pending verdicts, folds them into the
// run-level aggregates, and returns per-observer health samples for the
// breaker tracker: a gated observer scores an explicit zero, an ungated
// observer its agreement score, and an observer with no peer overlap a
// zero-Total sample the supervisor ignores (its reply-rate sample
// stands). Returns nil when no collection for the block was seen.
func (p *integrityProber) commit(index int, id netsim.BlockID) []health.Sample {
	p.mu.Lock()
	defer p.mu.Unlock()
	vs, ok := p.pending[id]
	if !ok {
		return nil
	}
	delete(p.pending, id)
	for len(p.matches) < len(vs) {
		p.matches = append(p.matches, 0)
		p.compares = append(p.compares, 0)
		p.gatedBlocks = append(p.gatedBlocks, 0)
	}
	samples := make([]health.Sample, len(vs))
	for oi := range vs {
		v := &vs[oi]
		p.matches[oi] += int64(v.Matches)
		p.compares[oi] += int64(v.Comparisons)
		switch {
		case v.Gated:
			samples[oi] = health.Sample{Up: 0, Total: 1}
		case v.Comparisons > 0:
			samples[oi] = health.Sample{Up: v.Matches, Total: v.Comparisons}
		}
		if v.Gated {
			p.gatedBlocks[oi]++
			p.verdicts = append(p.verdicts, IntegrityVerdict{
				Index: index, Block: id, Observer: oi, Reason: v.Reason,
			})
		}
	}
	return samples
}

// discard drops a failed block's pending verdicts unjudged.
func (p *integrityProber) discard(id netsim.BlockID) {
	p.mu.Lock()
	delete(p.pending, id)
	p.mu.Unlock()
}

// report fills the run report's firewall fields from the committed
// aggregates: gated observers (ascending), per-observer aggregate
// agreement scores, and the per-(block, observer) verdicts in world
// order.
func (p *integrityProber) report(rep *RunReport) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for oi, n := range p.gatedBlocks {
		if n > 0 {
			rep.GatedStreams = append(rep.GatedStreams, oi)
		}
	}
	if len(p.compares) > 0 {
		rep.AgreementScores = make([]float64, len(p.compares))
		for oi := range p.compares {
			if p.compares[oi] == 0 {
				rep.AgreementScores[oi] = 1
			} else {
				rep.AgreementScores[oi] = float64(p.matches[oi]) / float64(p.compares[oi])
			}
		}
	}
	sort.Slice(p.verdicts, func(i, j int) bool {
		a, b := p.verdicts[i], p.verdicts[j]
		if a.Index != b.Index {
			return a.Index < b.Index
		}
		return a.Observer < b.Observer
	})
	rep.IntegrityVerdicts = p.verdicts
}
