package core

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"github.com/diurnalnet/diurnal/internal/dataset"
	"github.com/diurnalnet/diurnal/internal/events"
)

// journalBytes builds a small valid checkpoint journal (header frame plus
// a few block frames with real analyses) to seed the fuzzer with
// structurally meaningful inputs.
func journalBytes(t testing.TB) []byte {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "seed.ckpt")
	cp, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	world, err := dataset.BuildWorld(dataset.WorldOpts{
		Blocks:   8,
		Seed:     63,
		Calendar: events.Year2020(),
		Start:    q1Start,
		End:      q1End,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := &Pipeline{Config: q1Config(), Engine: engine4(), Checkpoint: cp}
	if _, err := p.Run(context.Background(), world); err != nil {
		t.Fatal(err)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// FuzzCheckpointDecode drives arbitrary bytes through both layers of the
// journal reader: the frame scan in OpenCheckpoint (length prefixes,
// CRCs, tags) and the block-frame decoder beneath it (gob meta plus the
// custom BlockAnalysis wire format). Corrupt or truncated input must
// never panic or over-allocate — only truncate the journal at the last
// good frame or return an error.
func FuzzCheckpointDecode(f *testing.F) {
	seed := journalBytes(f)
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	// A plausible-length prefix with garbage behind it.
	f.Add([]byte{16, 0, 0, 0, 'B', 1, 2, 3})
	// Truncations and bit flips of the valid journal hit the deeper
	// decode paths (bad CRC, torn analysis sections, gob mid-stream).
	if len(seed) > 8 {
		f.Add(seed[:len(seed)/2])
		f.Add(seed[:len(seed)-3])
		flipped := append([]byte(nil), seed...)
		flipped[len(flipped)/3] ^= 0x40
		f.Add(flipped)
		// Valid frames with the CRC of the first frame zeroed.
		zeroed := append([]byte(nil), seed...)
		zeroed[7] = 0
		f.Add(zeroed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// Layer 1: the block-frame decoder sees the payload after tag
		// strip; errors are fine, panics are not.
		_, _, _ = decodeBlockFrame(data)

		// Layer 2: the full open-time scan, including tail truncation.
		path := filepath.Join(t.TempDir(), "fuzz.ckpt")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		cp, err := OpenCheckpoint(path)
		if err != nil {
			return
		}
		// Whatever survived the scan must be internally consistent
		// enough to use: count entries and close cleanly.
		_ = cp.Entries()
		if err := cp.Close(); err != nil {
			t.Fatalf("closing a scanned journal failed: %v", err)
		}
	})
}
