package core

import (
	"context"
	"sync"
	"time"

	"github.com/diurnalnet/diurnal/internal/dataset"
	"github.com/diurnalnet/diurnal/internal/health"
	"github.com/diurnalnet/diurnal/internal/netsim"
	"github.com/diurnalnet/diurnal/internal/probe"
)

// supervisedProber is the runtime seam between the pipeline and the
// health tracker: after each collection it drops the streams of observers
// whose breaker is currently open (the dynamic analogue of excludeProber)
// and records a per-observer reply-rate sample for the block. The sample
// is only folded into the tracker when the block's analysis succeeds —
// the worker calls commit — so retried or hedged attempts for one block
// score it exactly once.
type supervisedProber struct {
	inner Prober
	// tracker may be nil: then nothing is dropped or scored, but
	// contributing-observer counts are still recorded for the quorum
	// guard.
	tracker *health.Tracker

	mu  sync.Mutex
	obs map[netsim.BlockID]observation
}

// observation is one block's latest collection outcome, pending commit.
type observation struct {
	samples []health.Sample
	// contributing counts observers that produced at least one record
	// after breaker drops — the quorum guard's input.
	contributing int
}

func newSupervisedProber(inner Prober, tracker *health.Tracker) *supervisedProber {
	return &supervisedProber{inner: inner, tracker: tracker, obs: map[netsim.BlockID]observation{}}
}

func (s *supervisedProber) CollectInto(ctx context.Context, b *netsim.Block, start, end int64, bufs [][]probe.Record) ([][]probe.Record, error) {
	bufs, err := s.inner.CollectInto(ctx, b, start, end, bufs)
	if err != nil {
		return bufs, err
	}
	var drop []bool
	if s.tracker != nil {
		drop = s.tracker.ExcludedSet(nil)
	}
	o := observation{samples: make([]health.Sample, len(bufs))}
	for i := range bufs {
		if i < len(drop) && drop[i] {
			bufs[i] = bufs[i][:0]
			continue
		}
		up := 0
		for _, r := range bufs[i] {
			if r.Up {
				up++
			}
		}
		o.samples[i] = health.Sample{Up: up, Total: len(bufs[i])}
		if len(bufs[i]) > 0 {
			o.contributing++
		}
	}
	s.mu.Lock()
	s.obs[b.ID] = o // last attempt wins; commit consumes exactly one
	s.mu.Unlock()
	return bufs, nil
}

// EmitsSanitizedRecords forwards the inner prober's cleanliness guarantee:
// breaker drops only truncate streams, which cannot dirty them.
func (s *supervisedProber) EmitsSanitizedRecords() bool { return proberEmitsClean(s.inner) }

// commit consumes the block's pending observation, feeds it to the
// tracker, and returns the contributing-observer count (-1 when no
// collection for the block was seen, e.g. a resumed block). Entries of
// override with a positive Total replace the corresponding reply-rate
// samples — the integrity firewall substitutes agreement scores there,
// so a lying observer scores by how much its peers contradict it rather
// than by how often it answers.
func (s *supervisedProber) commit(id netsim.BlockID, override []health.Sample) int {
	s.mu.Lock()
	o, ok := s.obs[id]
	delete(s.obs, id)
	s.mu.Unlock()
	if !ok {
		return -1
	}
	if s.tracker != nil {
		for i := range o.samples {
			if i < len(override) && override[i].Total > 0 {
				o.samples[i] = override[i]
			}
		}
		s.tracker.ObserveBlock(o.samples)
	}
	return o.contributing
}

// discard drops a failed block's pending observation unscored: a block
// whose analysis never completed says nothing about observer health.
func (s *supervisedProber) discard(id netsim.BlockID) {
	s.mu.Lock()
	delete(s.obs, id)
	s.mu.Unlock()
}

// flight is one block's in-flight analysis under the hedging watchdog:
// a primary attempt, at most one hedge attempt, and a single decided
// outcome. The primary worker owns delivery — it blocks on done and then
// journals/aggregates the decided result exactly once, no matter which
// attempt produced it.
type flight struct {
	index int
	wb    *dataset.WorldBlock
	start time.Time

	pctx    context.Context
	pcancel context.CancelFunc
	hctx    context.Context
	hcancel context.CancelFunc

	mu       sync.Mutex
	active   int // attempts currently running
	hedged   bool
	decided  bool
	analysis *BlockAnalysis
	attempts int
	err      error
	done     chan struct{}
}

// hedger runs the straggler watchdog: it tracks per-block latency
// quantiles, re-dispatches blocks that exceed the adaptive deadline to a
// fresh attempt, cancels the loser, and funnels exactly one outcome per
// block back to the primary worker.
type hedger struct {
	p     *Pipeline
	eng   Prober
	cfg   health.HedgeConfig
	clock health.Clock
	lat   *health.Latency
	sem   chan struct{} // hedge-attempt budget, separate from workers
	stop  chan struct{}

	mu      sync.Mutex
	flights map[int]*flight
	hedged  int
	wins    int
}

func newHedger(p *Pipeline, eng Prober, cfg health.HedgeConfig, clock health.Clock) *hedger {
	cfg = cfg.WithDefaults()
	return &hedger{
		p:       p,
		eng:     eng,
		cfg:     cfg,
		clock:   clock,
		lat:     health.NewLatency(cfg),
		sem:     make(chan struct{}, cfg.MaxConcurrent),
		stop:    make(chan struct{}),
		flights: map[int]*flight{},
	}
}

// run executes one block under the watchdog and returns the decided
// outcome. It does not return until every attempt for the block has been
// settled, so the caller's scratch and admission token stay owned by
// exactly one live attempt.
func (h *hedger) run(ctx context.Context, i int, wb *dataset.WorldBlock, sc *Scratch) (*BlockAnalysis, int, error) {
	fl := &flight{
		index:  i,
		wb:     wb,
		start:  h.clock.Now(),
		active: 1,
		done:   make(chan struct{}),
	}
	fl.pctx, fl.pcancel = context.WithCancel(ctx)
	defer fl.pcancel()
	h.mu.Lock()
	h.flights[i] = fl
	h.mu.Unlock()

	a, attempts, err := h.p.analyzeBlock(fl.pctx, h.eng, wb, sc)
	h.finish(fl, true, a, attempts, err)
	<-fl.done

	h.mu.Lock()
	delete(h.flights, i)
	h.mu.Unlock()
	return fl.analysis, fl.attempts, fl.err
}

// finish settles one attempt. The first success decides the flight and
// cancels the other attempt; a failure decides it only once no other
// attempt is still running, so a hedge can still rescue a block whose
// primary died.
func (h *hedger) finish(fl *flight, primary bool, a *BlockAnalysis, attempts int, err error) {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	fl.active--
	if fl.decided {
		return // the loser: its result is identical anyway (analysis is deterministic)
	}
	if err != nil {
		fl.err = err
		fl.attempts += attempts
		if fl.active > 0 {
			return // the other attempt may still win
		}
		fl.decided = true
		fl.analysis = nil
	} else {
		fl.decided = true
		fl.analysis, fl.attempts, fl.err = a, attempts, nil
		if !primary {
			h.mu.Lock()
			h.wins++
			h.mu.Unlock()
		}
		h.lat.Observe(h.clock.Now().Sub(fl.start))
	}
	fl.pcancel()
	if fl.hcancel != nil {
		fl.hcancel()
	}
	close(fl.done)
}

// watch polls in-flight blocks against the adaptive deadline and hedges
// stragglers. It exits when the run closes stop or ctx dies.
func (h *hedger) watch(ctx context.Context) {
	for {
		select {
		case <-h.stop:
			return
		case <-ctx.Done():
			return
		case <-h.clock.After(h.cfg.Poll):
		}
		deadline, ok := h.lat.Deadline()
		if !ok {
			continue // not enough completed blocks to know what "slow" means
		}
		now := h.clock.Now()
		h.mu.Lock()
		var stragglers []*flight
		for _, fl := range h.flights {
			if now.Sub(fl.start) > deadline {
				stragglers = append(stragglers, fl)
			}
		}
		h.mu.Unlock()
		for _, fl := range stragglers {
			h.maybeHedge(ctx, fl)
		}
	}
}

// maybeHedge spawns the block's single hedge attempt if it has not been
// hedged or decided yet.
func (h *hedger) maybeHedge(ctx context.Context, fl *flight) {
	fl.mu.Lock()
	if fl.decided || fl.hedged {
		fl.mu.Unlock()
		return
	}
	fl.hedged = true
	fl.active++
	fl.hctx, fl.hcancel = context.WithCancel(ctx)
	fl.mu.Unlock()
	h.mu.Lock()
	h.hedged++
	h.mu.Unlock()
	go func() {
		// The hedge budget is separate from the worker pool, so stalled
		// primaries can never starve the attempts meant to rescue them.
		select {
		case h.sem <- struct{}{}:
			defer func() { <-h.sem }()
		case <-fl.done:
			h.finish(fl, false, nil, 0, context.Canceled)
			return
		case <-ctx.Done():
			h.finish(fl, false, nil, 0, ctx.Err())
			return
		}
		a, attempts, err := h.p.analyzeBlock(fl.hctx, h.eng, fl.wb, NewScratch())
		h.finish(fl, false, a, attempts, err)
	}()
}

// stats reports how many blocks were hedged and how many hedge attempts
// won their race.
func (h *hedger) stats() (hedged, wins int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.hedged, h.wins
}

// estimateBlockBytes is the admission controller's per-block memory
// heuristic: collection dominates a block's footprint, at roughly one to
// two records per observer round over the analysis window. The estimate
// only needs to be proportionate — MemoryBudget divides by it to bound
// concurrent admissions.
func estimateBlockBytes(cfg Config) int64 {
	rounds := (cfg.AnalysisEnd - cfg.AnalysisStart) / netsim.RoundSeconds
	if rounds < 1 {
		rounds = 1
	}
	const observers, recordBytes, recordsPerRound = 6, 16, 2
	return rounds * observers * recordBytes * recordsPerRound
}
