package core

import (
	"testing"
	"time"

	"github.com/diurnalnet/diurnal/internal/changepoint"
	"github.com/diurnalnet/diurnal/internal/netsim"
	"github.com/diurnalnet/diurnal/internal/outage"
	"github.com/diurnalnet/diurnal/internal/probe"
	"github.com/diurnalnet/diurnal/internal/reconstruct"
)

const day = netsim.SecondsPerDay

func mkChange(dir changepoint.Direction, startDay, endDay int64, raw float64) Change {
	return Change{
		Dir:          dir,
		Start:        startDay * day,
		Alarm:        startDay*day + 12*3600,
		End:          endDay * day,
		Point:        (startDay + endDay) / 2 * day,
		RawAmplitude: raw,
	}
}

func TestSuppressReboundsDropsSmallOpposite(t *testing.T) {
	changes := []Change{
		mkChange(changepoint.Down, 10, 14, -8),
		mkChange(changepoint.Up, 15, 17, 3), // starts 1 day after prev end, 37% of size
	}
	out := suppressRebounds(changes)
	if len(out) != 1 || out[0].Dir != changepoint.Down {
		t.Fatalf("rebound not suppressed: %+v", out)
	}
}

func TestSuppressReboundsKeepsComparableRecovery(t *testing.T) {
	changes := []Change{
		mkChange(changepoint.Down, 10, 13, -8),
		mkChange(changepoint.Up, 14, 16, 7.5), // full recovery: a real event
	}
	if out := suppressRebounds(changes); len(out) != 2 {
		t.Fatalf("comparable recovery suppressed: %+v", out)
	}
}

func TestSuppressReboundsKeepsDistantOpposite(t *testing.T) {
	changes := []Change{
		mkChange(changepoint.Down, 10, 13, -8),
		mkChange(changepoint.Up, 20, 22, 3), // a week later: unrelated
	}
	if out := suppressRebounds(changes); len(out) != 2 {
		t.Fatalf("distant change suppressed: %+v", out)
	}
}

func TestSuppressReboundsKeepsSameDirection(t *testing.T) {
	changes := []Change{
		mkChange(changepoint.Down, 10, 13, -8),
		mkChange(changepoint.Down, 14, 16, -3),
	}
	if out := suppressRebounds(changes); len(out) != 2 {
		t.Fatalf("same-direction change suppressed: %+v", out)
	}
}

func TestFilterOutagePairsComparableMagnitude(t *testing.T) {
	changes := []Change{
		mkChange(changepoint.Down, 10, 11, -8),
		mkChange(changepoint.Up, 12, 13, 7), // recovery: comparable, close
	}
	kept, removed := filterOutagePairs(changes, 5*day)
	if len(kept) != 0 || len(removed) != 2 {
		t.Fatalf("outage pair not removed: kept=%v", kept)
	}
}

func TestFilterOutagePairsSkipsAsymmetric(t *testing.T) {
	changes := []Change{
		mkChange(changepoint.Down, 10, 11, -10),
		mkChange(changepoint.Up, 12, 13, 2), // partial move: not a recovery
	}
	kept, removed := filterOutagePairs(changes, 5*day)
	if len(kept) != 2 || len(removed) != 0 {
		t.Fatalf("asymmetric pair wrongly removed: removed=%v", removed)
	}
}

func TestFilterOutagePairsRespectsGap(t *testing.T) {
	changes := []Change{
		mkChange(changepoint.Down, 10, 11, -8),
		mkChange(changepoint.Up, 20, 21, 8),
	}
	kept, _ := filterOutagePairs(changes, 5*day)
	if len(kept) != 2 {
		t.Fatalf("distant pair removed: %+v", kept)
	}
	kept, _ = filterOutagePairs(changes, 15*day)
	if len(kept) != 0 {
		t.Fatalf("wide gap should pair: %+v", kept)
	}
}

func TestFilterOutagePairsNegativeGapDisables(t *testing.T) {
	changes := []Change{
		mkChange(changepoint.Down, 10, 11, -8),
		mkChange(changepoint.Up, 11, 12, 8),
	}
	kept, removed := filterOutagePairs(changes, -1)
	if len(kept) != 2 || len(removed) != 0 {
		t.Fatalf("negative gap should disable pairing: kept=%v", kept)
	}
}

func TestDetectOutagesKeepsOnlyLongClosed(t *testing.T) {
	cfg := DefaultConfig(0, 100*day).withDefaults()
	// Build a record stream: up for 3 days, silent for 2 days, up again,
	// then a short 2-hour blip.
	var recs []probe.Record
	add := func(from, to int64, up bool) {
		for tm := from; tm < to; tm += netsim.RoundSeconds {
			recs = append(recs, probe.Record{T: tm, Addr: 1, Up: up})
		}
	}
	add(0, 3*day, true)
	add(3*day, 5*day, false)
	add(5*day, 8*day, true)
	add(8*day, 8*day+2*3600, false)
	add(8*day+2*3600, 10*day, true)
	got := cfg.detectOutages(recs)
	if len(got) != 1 {
		t.Fatalf("want exactly the 2-day outage, got %+v", got)
	}
	if got[0].Start < 3*day-3600 || got[0].Start > 3*day+4*3600 {
		t.Fatalf("outage start %d not near day 3", got[0].Start)
	}
	// Open-ended silence must not be reported (migration, not outage).
	var recs2 []probe.Record
	recs2 = append(recs2, recs[:len(recs)/2]...)
	add2 := func(from, to int64, up bool) {
		for tm := from; tm < to; tm += netsim.RoundSeconds {
			recs2 = append(recs2, probe.Record{T: tm, Addr: 1, Up: up})
		}
	}
	add2(10*day, 20*day, false)
	for _, iv := range cfg.detectOutages(recs2) {
		if iv.End == 0 || iv.Start >= 10*day {
			t.Fatalf("open-ended migration reported as outage: %+v", iv)
		}
	}
	// Disabling masking returns nothing.
	cfg.OutageMaskMinHours = -1
	if cfg.detectOutages(recs) != nil {
		t.Fatal("disabled masking should detect nothing")
	}
}

func TestAnalyzeRecordsMasksDetectedOutage(t *testing.T) {
	// Full-path check: a 2-day outage in a diurnal block is detected by
	// the belief detector and its trend changes are masked.
	start := netsim.Date(2020, time.January, 1)
	end := netsim.Date(2020, time.March, 25)
	b, err := netsim.NewBlock(9, 1009, netsim.Spec{Workers: 70, AlwaysOn: 8})
	if err != nil {
		t.Fatal(err)
	}
	oStart := netsim.Date(2020, time.February, 12)
	b.AddEvent(netsim.Event{Kind: netsim.EventOutage, Start: oStart, End: oStart + 2*day})
	eng := &probe.Engine{Observers: probe.StandardObservers(4), QuarterSeed: 3}
	perObs, err := eng.Collect(b, start, end)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(start, end)
	cfg.BaselineStart, cfg.BaselineEnd = start, netsim.Date(2020, time.January, 29)
	a, err := cfg.AnalyzeRecords(perObs, b.EverActive())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Outages) == 0 {
		t.Fatal("outage not detected from records")
	}
	for _, c := range a.DownChanges() {
		if c.Point >= oStart-day && c.Point <= oStart+3*day {
			t.Fatalf("outage change leaked: %+v", c)
		}
	}
}

func TestChangeHasRawAmplitude(t *testing.T) {
	b := figure1Block(t, 991)
	cfg := q1Config()
	a, err := cfg.AnalyzeBlock(engine4(), b)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range a.DownChanges() {
		if c.RawAmplitude >= 0 {
			t.Fatalf("downward change with non-negative raw amplitude: %+v", c)
		}
		if c.RawAmplitude > -1.2 {
			t.Fatalf("change below MinChangeAddresses slipped through: %+v", c)
		}
	}
}

func TestMinChangeAddressesDisable(t *testing.T) {
	cfg := q1Config()
	cfg.MinChangeAddresses = -1
	b, err := netsim.NewBlock(3, 903, netsim.Spec{Workers: 70, AlwaysOn: 8})
	if err != nil {
		t.Fatal(err)
	}
	a, err := cfg.AnalyzeBlock(engine4(), b)
	if err != nil {
		t.Fatal(err)
	}
	// With the floor disabled, noise-scale changes may reappear; the point
	// is only that disabling works without error and yields a superset.
	cfg2 := q1Config()
	a2, err := cfg2.AnalyzeBlock(engine4(), b)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Changes) < len(a2.Changes) {
		t.Fatalf("disabling the amplitude floor removed changes: %d < %d", len(a.Changes), len(a2.Changes))
	}
}

func TestOutageIntervalPlumbing(t *testing.T) {
	// analyzeSeries carries provided outage intervals into the result.
	start := netsim.Date(2020, time.January, 1)
	end := netsim.Date(2020, time.February, 26)
	var times []int64
	var counts []float64
	for tm := start; tm < end; tm += 3600 {
		sod := tm % day
		v := 4.0
		if sod >= 9*3600 && sod < 17*3600 && netsim.Weekday(tm) >= 1 && netsim.Weekday(tm) <= 5 {
			v = 20
		}
		times = append(times, tm)
		counts = append(counts, v)
	}
	cfg := DefaultConfig(start, end)
	ivs := []outage.Interval{{Start: start + 20*day, End: start + 22*day}}
	a, err := cfg.analyzeSeries(&reconstruct.Series{Times: times, Counts: counts}, ivs, reconstruct.SanitizeReport{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Outages) != 1 {
		t.Fatalf("outage intervals not carried: %+v", a.Outages)
	}
}

func TestProfileWorkplaceVsHome(t *testing.T) {
	start := netsim.Date(2020, time.January, 1)
	end := netsim.Date(2020, time.February, 26)
	cfg := DefaultConfig(start, end)
	cfg.BaselineStart, cfg.BaselineEnd = start, end
	classify := func(spec netsim.Spec, seed uint64) ProfileKind {
		b, err := netsim.NewBlock(netsim.BlockID(seed), seed, spec)
		if err != nil {
			t.Fatal(err)
		}
		a, err := cfg.AnalyzeBlock(engine4(), b)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Class.ChangeSensitive {
			t.Fatalf("seed %d: block not change-sensitive", seed)
		}
		return a.Profile()
	}
	if got := classify(netsim.Spec{Workers: 70, AlwaysOn: 5}, 2001); got != ProfileWorkplace {
		t.Errorf("worker block profiled as %v", got)
	}
	if got := classify(netsim.Spec{Homes: 70, AlwaysOn: 3}, 2002); got != ProfileHome {
		t.Errorf("home block profiled as %v", got)
	}
}

func TestProfileUnknownCases(t *testing.T) {
	a := &BlockAnalysis{}
	if a.Profile() != ProfileUnknown {
		t.Error("empty analysis should be unknown")
	}
	a = &BlockAnalysis{Seasonal: make([]float64, 10), SampleStep: 3600, SampleStart: 0}
	if a.Profile() != ProfileUnknown {
		t.Error("sub-week seasonal should be unknown")
	}
	a = &BlockAnalysis{Seasonal: make([]float64, 400), SampleStep: 3600}
	if a.Profile() != ProfileUnknown {
		t.Error("all-zero seasonal should be unknown")
	}
	for _, p := range []ProfileKind{ProfileUnknown, ProfileWorkplace, ProfileHome, ProfileMixed} {
		if p.String() == "" {
			t.Errorf("profile %d renders empty", p)
		}
	}
}
