package core

import (
	"context"
	"testing"
	"time"

	"github.com/diurnalnet/diurnal/internal/changepoint"
	"github.com/diurnalnet/diurnal/internal/dataset"
	"github.com/diurnalnet/diurnal/internal/events"
	"github.com/diurnalnet/diurnal/internal/geo"
	"github.com/diurnalnet/diurnal/internal/netsim"
	"github.com/diurnalnet/diurnal/internal/probe"
)

var (
	q1Start = netsim.Date(2020, time.January, 1)
	q1End   = netsim.Date(2020, time.March, 25)
	wfhDate = netsim.Date(2020, time.March, 15)
)

func q1Config() Config {
	cfg := DefaultConfig(q1Start, q1End)
	cfg.BaselineStart = q1Start
	cfg.BaselineEnd = netsim.Date(2020, time.January, 29)
	return cfg
}

func engine4() *probe.Engine {
	return &probe.Engine{Observers: probe.StandardObservers(4), QuarterSeed: 77}
}

// figure1Block builds the paper's running example: a university workplace
// block with MLK day, Presidents Day, and WFH on 2020-03-15.
func figure1Block(t testing.TB, seed uint64) *netsim.Block {
	b, err := netsim.NewBlock(0x800990, seed, netsim.Spec{Workers: 70, AlwaysOn: 8})
	if err != nil {
		t.Fatal(err)
	}
	mlk := netsim.Date(2020, time.January, 20)
	pres := netsim.Date(2020, time.February, 17)
	b.AddEvent(netsim.Event{Kind: netsim.EventHoliday, Start: mlk, End: mlk + netsim.SecondsPerDay, Adoption: 0.7})
	b.AddEvent(netsim.Event{Kind: netsim.EventHoliday, Start: pres, End: pres + netsim.SecondsPerDay, Adoption: 0.6})
	b.AddEvent(netsim.Event{Kind: netsim.EventWFH, Start: wfhDate, Adoption: 0.9})
	return b
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig(10, 10)
	if _, err := cfg.AnalyzeRecords(nil, []int{1}); err == nil {
		t.Error("expected error for empty analysis window")
	}
	cfg = DefaultConfig(0, 86400)
	cfg.SampleStep = 7000 // does not divide 86400
	if _, err := cfg.AnalyzeRecords(nil, []int{1}); err == nil {
		t.Error("expected error for non-divisor sample step")
	}
	cfg = DefaultConfig(0, 86400)
	cfg.BaselineStart, cfg.BaselineEnd = 5, 1
	if _, err := cfg.AnalyzeRecords(nil, []int{1}); err == nil {
		t.Error("expected error for inverted baseline")
	}
}

func TestAnalyzeEmptyEB(t *testing.T) {
	cfg := q1Config()
	a, err := cfg.AnalyzeRecords(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Class.ChangeSensitive || a.Series.Len() != 0 {
		t.Fatalf("empty E(b) should be inert: %+v", a.Class)
	}
}

func TestFigure1WFHDetection(t *testing.T) {
	b := figure1Block(t, 901)
	cfg := q1Config()
	a, err := cfg.AnalyzeBlock(engine4(), b)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Class.ChangeSensitive {
		t.Fatalf("Figure-1 block not change-sensitive: %+v", a.Class)
	}
	downs := a.DownChanges()
	if len(downs) == 0 {
		t.Fatalf("no downward changes detected; all changes: %+v", a.Changes)
	}
	// At least one downward change's point must fall within ±4 days of
	// the WFH date (the paper's block-level correctness rule, §3.6).
	matched := false
	for _, c := range downs {
		if events.MatchWithin(c.Point, wfhDate, events.MatchWindowDays) {
			matched = true
		}
	}
	if !matched {
		for _, c := range downs {
			t.Logf("down change point %s", time.Unix(c.Point, 0).UTC().Format("2006-01-02"))
		}
		t.Fatal("no downward change within 4 days of WFH")
	}
}

func TestChangeFieldsOrdered(t *testing.T) {
	b := figure1Block(t, 902)
	cfg := q1Config()
	a, err := cfg.AnalyzeBlock(engine4(), b)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range append(append([]Change{}, a.Changes...), a.OutagePairs...) {
		if c.Start > c.Alarm || c.Alarm > c.End {
			t.Fatalf("change ordering violated: %+v", c)
		}
		if c.Point < c.Start || c.Point > c.End {
			t.Fatalf("point outside [start,end]: %+v", c)
		}
	}
}

func TestNoChangeOnQuietBlock(t *testing.T) {
	b, err := netsim.NewBlock(3, 903, netsim.Spec{Workers: 70, AlwaysOn: 8})
	if err != nil {
		t.Fatal(err)
	}
	cfg := q1Config()
	a, err := cfg.AnalyzeBlock(engine4(), b)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Class.ChangeSensitive {
		t.Fatal("quiet workplace block should still be change-sensitive")
	}
	if len(a.DownChanges()) != 0 {
		t.Fatalf("quiet block produced downward changes: %+v", a.Changes)
	}
}

func TestOutagePairFiltered(t *testing.T) {
	b, err := netsim.NewBlock(4, 904, netsim.Spec{Workers: 70, AlwaysOn: 8})
	if err != nil {
		t.Fatal(err)
	}
	// A half-day outage in mid-February.
	oStart := netsim.Date(2020, time.February, 12) + 6*3600
	b.AddEvent(netsim.Event{Kind: netsim.EventOutage, Start: oStart, End: oStart + 12*3600})
	cfg := q1Config()
	a, err := cfg.AnalyzeBlock(engine4(), b)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Class.ChangeSensitive {
		t.Fatal("block should be change-sensitive")
	}
	// The outage must not survive as a lone downward change near Feb 12.
	for _, c := range a.DownChanges() {
		if events.MatchWithin(c.Point, oStart, 2) {
			t.Fatalf("outage leaked through filtering: %+v (pairs removed: %d)", c, len(a.OutagePairs))
		}
	}
}

func TestServerBlockSkipsTrendAnalysis(t *testing.T) {
	b, err := netsim.NewBlock(5, 905, netsim.Spec{AlwaysOn: 120})
	if err != nil {
		t.Fatal(err)
	}
	cfg := q1Config()
	a, err := cfg.AnalyzeBlock(engine4(), b)
	if err != nil {
		t.Fatal(err)
	}
	if a.Class.ChangeSensitive {
		t.Fatal("server block must not be change-sensitive")
	}
	if a.Trend != nil || len(a.Changes) != 0 {
		t.Fatal("non-sensitive blocks must skip trend analysis")
	}
}

func TestVPNMigrationDetected(t *testing.T) {
	// Appendix B.2: USC's VPN block was always-on around the clock, then
	// migrated to new address space at WFH — a sustained drop without a
	// diurnal cause. Model: a block of always-on VPN endpoints that goes
	// into a permanent "outage" (migration) on 2020-03-15, with some
	// diurnal workers so the block is change-sensitive.
	b, err := netsim.NewBlock(6, 906, netsim.Spec{Workers: 50, AlwaysOn: 100})
	if err != nil {
		t.Fatal(err)
	}
	b.AddEvent(netsim.Event{Kind: netsim.EventOutage, Start: wfhDate, End: q1End + netsim.SecondsPerDay})
	cfg := q1Config()
	a, err := cfg.AnalyzeBlock(engine4(), b)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Class.ChangeSensitive {
		t.Fatal("VPN block should be change-sensitive in the January baseline")
	}
	matched := false
	for _, c := range a.DownChanges() {
		if events.MatchWithin(c.Point, wfhDate, events.MatchWindowDays) {
			matched = true
		}
	}
	if !matched {
		t.Fatalf("VPN migration not detected: %+v", a.Changes)
	}
}

func TestPipelineRunSmallWorld(t *testing.T) {
	world, err := dataset.BuildWorld(dataset.WorldOpts{
		Blocks:   60,
		Seed:     31,
		Calendar: events.Year2020(),
		Start:    q1Start,
		End:      q1End,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := &Pipeline{Config: q1Config(), Engine: engine4()}
	res, err := p.Run(context.Background(), world)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Blocks) != len(world) {
		t.Fatalf("outcomes %d != world %d", len(res.Blocks), len(world))
	}
	if len(res.Cells) == 0 {
		t.Fatal("no cells aggregated")
	}
	cs := res.ChangeSensitiveCount()
	responsive := 0
	for _, st := range res.Cells {
		responsive += st.Responsive
	}
	if responsive == 0 {
		t.Fatal("no responsive blocks in world")
	}
	if cs == 0 {
		t.Fatal("no change-sensitive blocks in world")
	}
	if cs >= responsive {
		t.Fatalf("cs %d should be a strict subset of responsive %d", cs, responsive)
	}
}

func TestPipelineDeterministicAcrossWorkerCounts(t *testing.T) {
	world, err := dataset.BuildWorld(dataset.WorldOpts{
		Blocks: 24, Seed: 32, Calendar: events.Year2020(),
		Start: q1Start, End: netsim.Date(2020, time.February, 12),
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(q1Start, netsim.Date(2020, time.February, 12))
	run := func(workers int) *WorldResult {
		p := &Pipeline{Config: cfg, Engine: engine4(), Workers: workers}
		res, err := p.Run(context.Background(), world)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(8)
	if a.ChangeSensitiveCount() != b.ChangeSensitiveCount() {
		t.Fatal("worker count changed results")
	}
	for i := range a.Blocks {
		ca, cb := a.Blocks[i].Analysis.Changes, b.Blocks[i].Analysis.Changes
		if len(ca) != len(cb) {
			t.Fatalf("block %d changes differ", i)
		}
	}
}

func TestCellAndContinentSeries(t *testing.T) {
	world, err := dataset.BuildWorld(dataset.WorldOpts{
		Blocks: 80, Seed: 33, Calendar: events.Year2020(),
		Start: q1Start, End: q1End, OutageProb: -1, RenumberProb: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := &Pipeline{Config: q1Config(), Engine: engine4()}
	res, err := p.Run(context.Background(), world)
	if err != nil {
		t.Fatal(err)
	}
	startDay := netsim.DayIndex(q1Start)
	endDay := netsim.DayIndex(q1End)
	totalDown := 0.0
	for _, cont := range []int{0, 1, 2, 3, 4, 5} {
		series := res.ContinentFractionSeries(geoContinent(cont), startDay, endDay)
		if len(series) != int(endDay-startDay) {
			t.Fatal("series length wrong")
		}
		for _, v := range series {
			if v < 0 || v > 1.000001 {
				t.Fatalf("fraction %g out of range", v)
			}
			totalDown += v
		}
	}
	if totalDown == 0 {
		t.Fatal("no downward activity anywhere in a Covid-era world")
	}
	// Cell series for the busiest cell behaves likewise.
	top := res.TopCells(1)
	if len(top) == 0 {
		t.Fatal("no top cells")
	}
	cellSeries := res.CellFractionSeries(top[0], changepoint.Down, startDay, endDay)
	if len(cellSeries) == 0 {
		t.Fatal("no cell series")
	}
	// Unknown cell yields zeros, not a panic.
	zero := res.CellFractionSeries(topUnknownCell(), changepoint.Down, startDay, endDay)
	for _, v := range zero {
		if v != 0 {
			t.Fatal("unknown cell should have zero series")
		}
	}
	if s := res.CellFractionSeries(top[0], changepoint.Down, 10, 10); s != nil {
		t.Fatal("empty day range should be nil")
	}
}

func TestTopCellsOrdering(t *testing.T) {
	r := &WorldResult{CellCS: map[geoCellKey]int{
		{Lat: 1, Lon: 1}: 5, {Lat: 2, Lon: 2}: 9, {Lat: 3, Lon: 3}: 5,
	}}
	top := r.TopCells(10)
	if len(top) != 3 || top[0] != (geoCellKey{Lat: 2, Lon: 2}) {
		t.Fatalf("TopCells = %v", top)
	}
	// Ties break deterministically by key.
	if top[1] != (geoCellKey{Lat: 1, Lon: 1}) || top[2] != (geoCellKey{Lat: 3, Lon: 3}) {
		t.Fatalf("tie ordering = %v", top)
	}
	if got := r.TopCells(1); len(got) != 1 {
		t.Fatal("limit not applied")
	}
}

func TestPeakDay(t *testing.T) {
	r := &WorldResult{
		CellCS:    map[geoCellKey]int{{Lat: 1, Lon: 1}: 10},
		DownDaily: map[geoCellKey]map[int64]int{{Lat: 1, Lon: 1}: {100: 2, 101: 7, 102: 7}},
	}
	day, frac, ok := r.PeakDay(geoCellKey{Lat: 1, Lon: 1})
	if !ok || day != 101 || frac != 0.7 {
		t.Fatalf("PeakDay = %d %g %v", day, frac, ok)
	}
	if _, _, ok := r.PeakDay(geoCellKey{Lat: 9, Lon: 9}); ok {
		t.Fatal("unknown cell should not have a peak")
	}
}

func BenchmarkAnalyzeBlockQuarter(b *testing.B) {
	blk := figure1Block(b, 907)
	cfg := q1Config()
	eng := engine4()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.AnalyzeBlock(eng, blk); err != nil {
			b.Fatal(err)
		}
	}
}

// Small aliases keeping the table-driven tests above terse.
type geoCellKey = geo.CellKey

func geoContinent(i int) geo.Continent { return geo.Continent(i) }
func topUnknownCell() geo.CellKey      { return geo.CellKey{Lat: 40, Lon: 40} }
