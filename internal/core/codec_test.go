package core

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"github.com/diurnalnet/diurnal/internal/reconstruct"
)

// TestAnalysisCodecRoundTrip drives the custom BlockAnalysis gob codec
// through the same path checkpoint frames use and requires a perfect
// round trip, including the nil-vs-empty slice distinction the resume
// fingerprint depends on.
func TestAnalysisCodecRoundTrip(t *testing.T) {
	cases := map[string]*BlockAnalysis{
		"empty": {Series: &reconstruct.Series{}},
		"nil-series-nil-slices": {
			SampleStart: 100, SampleStep: 3600,
		},
		"full": {
			Series: &reconstruct.Series{
				Times:  []int64{0, 660, 1320},
				Counts: []float64{3, 4.5, 2},
			},
			Resampled:   []float64{1, 2, 3},
			Trend:       []float64{1.5, 2.5},
			Seasonal:    []float64{-0.5, 0.5},
			Normalized:  []float64{0},
			Changes:     []Change{{Start: 9, End: 11, Amplitude: -2.5, RawAmplitude: -7}},
			Confidence:  []bool{true, false, true},
			SampleStart: 1577836800, SampleStep: 3600,
		},
		"empty-not-nil": {
			Resampled: []float64{},
		},
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(in); err != nil {
				t.Fatal(err)
			}
			out := &BlockAnalysis{}
			if err := gob.NewDecoder(&buf).Decode(out); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(in, out) {
				t.Fatalf("round trip mutated the analysis:\n in=%+v\nout=%+v", in, out)
			}
		})
	}
}

// TestAnalysisCodecRejectsDamage feeds the decoder truncated and trailing
// bytes; both must fail loudly rather than yield a partial analysis.
func TestAnalysisCodecRejectsDamage(t *testing.T) {
	in := &BlockAnalysis{
		Series: &reconstruct.Series{Times: []int64{1, 2}, Counts: []float64{5, 6}},
		Trend:  []float64{1, 2, 3},
	}
	data, err := in.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	if err := new(BlockAnalysis).GobDecode(data[:len(data)-3]); err == nil {
		t.Fatal("truncated analysis decoded cleanly")
	}
	if err := new(BlockAnalysis).GobDecode(append(data, 0xAB)); err == nil {
		t.Fatal("trailing garbage decoded cleanly")
	}
}
