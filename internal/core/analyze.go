// Package core implements the paper's primary contribution: the analysis
// pipeline that turns raw probe observations into detected changes in
// daily human activity (Table 1). Per block it reconstructs active-address
// counts (§2.3, with 1-loss repair), classifies change sensitivity (§2.4),
// extracts the long-term trend with STL (§2.5), and detects changes with
// CUSUM on the normalized trend (§2.6) with outage-pair filtering. Across
// blocks it aggregates downward changes into 2×2° gridcells and continents
// (§2.6, §4.1).
package core

import (
	"context"
	"fmt"
	"math"
	"sync"

	"github.com/diurnalnet/diurnal/internal/blockclass"
	"github.com/diurnalnet/diurnal/internal/changepoint"
	"github.com/diurnalnet/diurnal/internal/netsim"
	"github.com/diurnalnet/diurnal/internal/outage"
	"github.com/diurnalnet/diurnal/internal/probe"
	"github.com/diurnalnet/diurnal/internal/reconstruct"
	"github.com/diurnalnet/diurnal/internal/stl"
)

// Config parameterizes the per-block analysis. Zero fields default to the
// paper's choices.
type Config struct {
	// AnalysisStart and AnalysisEnd bound the trend/change analysis
	// window (e.g. 2020h1). Required.
	AnalysisStart, AnalysisEnd int64
	// BaselineStart and BaselineEnd bound the change-sensitivity
	// classification window; the paper uses January 2020 "since it is
	// before Covid was widespread" (§2.4). Zero values reuse the analysis
	// window.
	BaselineStart, BaselineEnd int64
	// SampleStep is the resampling interval for trend analysis in
	// seconds; it must divide 86400 (default 3600).
	SampleStep int64
	// Repair enables 1-loss repair (default on via DefaultConfig).
	Repair bool
	// Class holds the change-sensitivity thresholds.
	Class blockclass.Config
	// CUSUM holds the change-detection parameters (paper: threshold 1,
	// drift 0.001 per 11-minute round; default here threshold 1, drift
	// 0.002 per hourly sample — see withDefaults).
	CUSUM changepoint.Opts
	// OutageGapDays bounds how close a down→up pair must be to be
	// discarded as an outage or renumbering artifact on timing alone
	// (default 3). Longer outages are handled by the Trinocular-style
	// belief detector instead (§2.6: changes are compared "with outage
	// detections"), which distinguishes a silenced block from a holiday —
	// during a holiday the always-on addresses keep answering.
	OutageGapDays int
	// OutageMaskMinHours is the minimum duration of a belief-detected
	// outage used to mask changes (default 24; shorter non-response spans
	// are diurnal artifacts in blocks without always-on addresses).
	// Negative disables belief-based masking.
	OutageMaskMinHours int
	// MinChangeAddresses is the minimum absolute trend movement, in
	// addresses, for a change to be kept. It echoes the paper's swing
	// threshold s=5 — smaller moves are indistinguishable from "noise
	// such as individual computer restarts" (§2.4) even when the z-scored
	// CUSUM flags them. Because the trend is a weekly mean, a drop of s
	// addresses confined to the ~40 working hours of a week dilutes to
	// s*40/168 ≈ 1.2 in trend units, which is the default. Negative
	// disables.
	MinChangeAddresses float64
	// BoundaryGuardDays drops changes whose point falls within this many
	// days of the analysis window's edges, where STL trends and the
	// CUSUM backward pass are unreliable. The paper likewise excludes
	// detections overlapping "transients at the change of quarter"
	// (§3.6). Default 4; negative disables.
	BoundaryGuardDays int
	// SanitizeRecords enables the record-stream sanitization pass:
	// per-observer streams are window-clipped, re-sorted, and
	// de-duplicated before repair and merging, quarantining the
	// duplicated/reordered/skewed records a faulty collector produces.
	// DefaultConfig enables it; the tally lands in BlockAnalysis.Sanitize.
	SanitizeRecords bool
	// Integrity enables the data-integrity firewall (internal/integrity):
	// per-observer per-block sanity gates exclude untrustworthy streams
	// from the merge, and contested (time, addr) observations among the
	// surviving streams resolve by observer majority instead of
	// last-write-wins. Off by default — with it off, results are
	// bit-identical to prior releases.
	Integrity bool
	// MaxGapHours marks resampled trend bins farther than this many hours
	// from any real measurement as low-confidence; detections whose point
	// of change falls in such a gap move to BlockAnalysis.LowConfChanges
	// instead of Changes (default 24; negative disables gap marking).
	MaxGapHours int
	// STLOuter is the number of STL robustness iterations (default 1).
	STLOuter int
}

// DefaultConfig returns the paper's configuration for a given analysis
// window.
func DefaultConfig(start, end int64) Config {
	return Config{
		AnalysisStart:      start,
		AnalysisEnd:        end,
		SampleStep:         3600,
		Repair:             true,
		Class:              blockclass.Default(),
		OutageGapDays:      3,
		OutageMaskMinHours: 24,
		BoundaryGuardDays:  4,
		MinChangeAddresses: 1.2,
		STLOuter:           1,
		SanitizeRecords:    true,
		MaxGapHours:        24,
	}
}

func (c Config) withDefaults() Config {
	if c.SampleStep == 0 {
		c.SampleStep = 3600
	}
	if c.BaselineStart == 0 && c.BaselineEnd == 0 {
		c.BaselineStart, c.BaselineEnd = c.AnalysisStart, c.AnalysisEnd
	}
	if c.CUSUM.Threshold == 0 {
		c.CUSUM = changepoint.DefaultOpts()
		// The drift per hourly sample is chosen so that (a) a real change
		// of ~2.5 sigma completing within a week or two still accumulates
		// past the threshold, while (b) the slow ±2-sigma wander that
		// z-normalization guarantees for no-change blocks is absorbed
		// (2 sigma over two weeks = 336 samples x 0.004 = 1.34 absorbed).
		// It plays the role of the paper's 0.001-per-11-minute-round drift
		// at that data's much higher sample rate.
		c.CUSUM.Drift = 0.004
	}
	if c.OutageGapDays == 0 {
		c.OutageGapDays = 3
	}
	if c.OutageMaskMinHours == 0 {
		c.OutageMaskMinHours = 24
	}
	if c.BoundaryGuardDays == 0 {
		c.BoundaryGuardDays = 4
	}
	if c.MaxGapHours == 0 {
		c.MaxGapHours = 24
	}
	if c.MinChangeAddresses == 0 {
		c.MinChangeAddresses = 1.2
	}
	if c.STLOuter == 0 {
		c.STLOuter = 1
	}
	return c
}

func (c Config) validate() error {
	if c.AnalysisEnd <= c.AnalysisStart {
		return fmt.Errorf("core: empty analysis window [%d,%d)", c.AnalysisStart, c.AnalysisEnd)
	}
	if c.SampleStep <= 0 || netsim.SecondsPerDay%c.SampleStep != 0 {
		return fmt.Errorf("core: sample step %d must divide 86400", c.SampleStep)
	}
	if c.BaselineEnd < c.BaselineStart {
		return fmt.Errorf("core: invalid baseline window")
	}
	return nil
}

// Change is one detected change in a block's activity, in wall-clock time.
type Change struct {
	Dir changepoint.Direction
	// Start, Alarm, and End are the detected change boundaries; Point is
	// the estimated moment of steepest trend movement between Start and
	// End — the paper's "point of change" (Figure 1c).
	Start, Alarm, End, Point int64
	// Amplitude is the z-scored trend movement across the change;
	// RawAmplitude is the same movement in addresses.
	Amplitude    float64
	RawAmplitude float64
}

// BlockAnalysis is the per-block pipeline output.
type BlockAnalysis struct {
	// Series is the reconstructed active-address series.
	Series *reconstruct.Series
	// Class is the change-sensitivity classification over the baseline
	// window.
	Class blockclass.Result
	// Resampled, Trend, Seasonal and Normalized are the analysis-window
	// series at SampleStep resolution (nil for non-analyzable blocks).
	Resampled, Trend, Seasonal, Normalized []float64
	// Changes are the CUSUM detections that survive outage filtering;
	// OutagePairs holds the removed changes (paired down/up transients
	// and changes masked by detected outages).
	Changes     []Change
	OutagePairs []Change
	// LowConfChanges are detections whose point of change falls in a
	// low-confidence measurement gap (see Config.MaxGapHours) — kept out
	// of Changes so aggregation only counts well-measured detections.
	LowConfChanges []Change
	// Confidence marks, per Resampled bin, whether a real measurement
	// lies within MaxGapHours; nil when gap marking is disabled or the
	// block is not change-sensitive.
	Confidence []bool
	// Sanitize tallies what the sanitization pass quarantined across all
	// observer streams (zero when SanitizeRecords is off or streams were
	// clean).
	Sanitize reconstruct.SanitizeReport
	// Outages are the belief-detected outage intervals used for masking.
	Outages []outage.Interval
	// SampleStart and SampleStep map sample indices to timestamps.
	SampleStart, SampleStep int64
}

// DownChanges returns only the downward changes — the human-activity
// signal the paper aggregates.
func (a *BlockAnalysis) DownChanges() []Change {
	var out []Change
	for _, c := range a.Changes {
		if c.Dir == changepoint.Down {
			out = append(out, c)
		}
	}
	return out
}

// AnalyzeRecords runs the full per-block pipeline over per-observer probe
// streams. eb is the block's target list E(b). Blocks that are not
// change-sensitive still get a Series and Class but no trend analysis.
func (cfg Config) AnalyzeRecords(perObs [][]probe.Record, eb []int) (*BlockAnalysis, error) {
	return cfg.AnalyzeCollectedScratch(perObs, eb, nil)
}

// AnalyzeCollectedScratch is the shared analysis kernel: it takes
// already-collected per-observer probe streams and runs sanitization,
// repair, merge, reconstruction, classification, and trend/change
// detection. Both the batch driver (AnalyzeBlockScratch, which collects
// then calls here) and the streaming daemon (internal/stream, which
// accumulates rounds then calls here on every refresh) use this one entry
// point, so a streaming run that has seen a block's full window produces
// bit-identical results to a batch run. perObs is mutated in place
// (sanitize/repair); sc may be nil for a one-shot call.
func (cfg Config) AnalyzeCollectedScratch(perObs [][]probe.Record, eb []int, sc *Scratch) (*BlockAnalysis, error) {
	return cfg.analyzeCollected(perObs, eb, sc, false)
}

// analyzeCollected is AnalyzeCollectedScratch with one internal knob:
// trustClean skips the sanitize pre-scan for streams a clean-by-
// construction prober produced (see cleanProber). Sanitize is a no-op on
// clean streams, so the skip is bit-identical; only the pre-scan cost
// goes away.
func (cfg Config) analyzeCollected(perObs [][]probe.Record, eb []int, sc *Scratch, trustClean bool) (*BlockAnalysis, error) {
	c := cfg.withDefaults()
	if err := c.validate(); err != nil {
		return nil, err
	}
	if len(eb) == 0 {
		return &BlockAnalysis{Series: &reconstruct.Series{}}, nil
	}
	if sc == nil {
		sc = NewScratch()
	}
	var san reconstruct.SanitizeReport
	if c.SanitizeRecords && !trustClean {
		san = c.sanitizeStreams(perObs)
	}
	if c.Repair {
		for _, stream := range perObs {
			reconstruct.Repair1Loss(stream)
		}
	}
	sc.merged = reconstruct.MergeInto(sc.merged, perObs)
	if c.Integrity {
		sc.merged = reconstruct.ResolveContested(sc.merged)
	}
	series, err := reconstruct.Reconstruct(sc.merged, eb)
	if err != nil {
		return nil, err
	}
	return c.analyzeSeriesScratch(series, c.detectOutages(sc.merged), san, sc)
}

// sanitizeStreams window-clips, re-sorts, and de-duplicates each observer
// stream in place, merging the per-stream reports. The window spans the
// analysis and baseline windows so legitimate baseline records survive.
func (cfg Config) sanitizeStreams(perObs [][]probe.Record) reconstruct.SanitizeReport {
	lo, hi := cfg.AnalysisStart, cfg.AnalysisEnd
	if cfg.BaselineStart != 0 && cfg.BaselineStart < lo {
		lo = cfg.BaselineStart
	}
	if cfg.BaselineEnd > hi {
		hi = cfg.BaselineEnd
	}
	var total reconstruct.SanitizeReport
	for i := range perObs {
		var rep reconstruct.SanitizeReport
		perObs[i], rep = reconstruct.Sanitize(perObs[i], lo, hi)
		total.Merge(rep)
	}
	return total
}

// AnalyzeSeries runs classification and change detection over an already
// reconstructed active-address series — the entry point for callers who
// bring their own measurements instead of the simulated prober. Without
// raw probe records, belief-based outage masking is unavailable and only
// the timing-based pair filter applies.
func (cfg Config) AnalyzeSeries(series *reconstruct.Series) (*BlockAnalysis, error) {
	return cfg.analyzeSeries(series, nil, reconstruct.SanitizeReport{})
}

func (cfg Config) analyzeSeries(series *reconstruct.Series, outages []outage.Interval, san reconstruct.SanitizeReport) (*BlockAnalysis, error) {
	return cfg.analyzeSeriesScratch(series, outages, san, nil)
}

func (cfg Config) analyzeSeriesScratch(series *reconstruct.Series, outages []outage.Interval, san reconstruct.SanitizeReport, sc *Scratch) (*BlockAnalysis, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if sc == nil {
		sc = NewScratch()
	}
	cls, err := blockclass.ClassifyScratch(series, cfg.BaselineStart, cfg.BaselineEnd, cfg.Class, sc.class)
	if err != nil {
		return nil, err
	}
	return cfg.finishSeriesScratch(series, outages, san, cls, sc)
}

// finishSeriesScratch is the post-classification half of the per-block
// analysis: it assembles the BlockAnalysis and, for change-sensitive
// blocks, runs the STL/CUSUM trend stages. The batch scheduler calls it
// directly after a batched classification pass; cfg must already be
// defaulted and validated.
func (cfg Config) finishSeriesScratch(series *reconstruct.Series, outages []outage.Interval, san reconstruct.SanitizeReport, cls blockclass.Result, sc *Scratch) (*BlockAnalysis, error) {
	out := &BlockAnalysis{
		Series:      series,
		Class:       cls,
		Outages:     outages,
		Sanitize:    san,
		SampleStart: cfg.AnalysisStart,
		SampleStep:  cfg.SampleStep,
	}
	if !cls.ChangeSensitive {
		return out, nil
	}
	if err := cfg.analyzeTrend(out, sc); err != nil {
		return nil, err
	}
	return out, nil
}

// detectOutages runs the Trinocular belief detector over the merged probe
// stream and keeps intervals long enough to mask trend changes.
func (cfg Config) detectOutages(merged []probe.Record) []outage.Interval {
	if cfg.OutageMaskMinHours < 0 {
		return nil
	}
	intervals, err := outage.FromRecords(merged, 0, outage.Params{})
	if err != nil {
		return nil
	}
	minDur := int64(cfg.OutageMaskMinHours) * 3600
	var kept []outage.Interval
	for _, iv := range intervals {
		// Open intervals (never recovered within the window) are not
		// transient failures but decommissionings or migrations — genuine
		// usage changes the paper reports (the Appendix B.2 VPN block).
		if iv.End == 0 {
			continue
		}
		if iv.End-iv.Start >= minDur {
			kept = append(kept, iv)
		}
	}
	return kept
}

// analyzeTrend fills the STL/CUSUM stages of a change-sensitive block.
// The seasonal period is one week: the paper's seasonality model captures
// "a daily and possibly weekly signal" (§2.5), and a weekly period absorbs
// both the five workday bumps and the weekend flats (Figure 1a) so the
// trend carries only the long-term baseline.
func (cfg Config) analyzeTrend(out *BlockAnalysis, sc *Scratch) error {
	maxGap := int64(cfg.MaxGapHours) * 3600
	if cfg.MaxGapHours < 0 {
		maxGap = 0
	}
	resampled, conf := out.Series.ResampleWithGaps(cfg.AnalysisStart, cfg.AnalysisEnd, cfg.SampleStep, maxGap)
	if resampled == nil {
		return nil
	}
	if maxGap > 0 {
		out.Confidence = conf
	}
	period := int(7 * netsim.SecondsPerDay / cfg.SampleStep)
	if len(resampled) < 2*period {
		return nil
	}
	opts := stl.DefaultOpts(period)
	opts.Outer = cfg.STLOuter
	// A tighter trend smoother (~8 days instead of Cleveland's default
	// ~2 weeks) keeps step changes sharp enough for CUSUM while the
	// weekly seasonal component still absorbs the workday/weekend cycle.
	opts.Trend = period + 25
	// Periodic seasonal: level changes go to the trend, matching the
	// paper's Figure 1b decomposition.
	opts.Periodic = true
	// The decomposition runs in the worker's reusable workspace, but the
	// Result is fresh per block: its Trend and Seasonal slices are retained
	// in the BlockAnalysis beyond this call, so they must not alias scratch.
	var dec stl.Result
	if err := sc.stl.DecomposeInto(&dec, resampled, opts); err != nil {
		return fmt.Errorf("core: stl: %w", err)
	}
	out.Resampled = resampled
	out.Trend = dec.Trend
	out.Seasonal = dec.Seasonal
	out.Normalized = changepoint.Normalize(dec.Trend)
	changes, err := changepoint.Detect(out.Normalized, cfg.CUSUM)
	if err != nil {
		return fmt.Errorf("core: cusum: %w", err)
	}
	samplesPerDay := int(netsim.SecondsPerDay / cfg.SampleStep)
	if cfg.BoundaryGuardDays > 0 {
		guard := cfg.BoundaryGuardDays * samplesPerDay
		trimmed := changes[:0]
		for _, c := range changes {
			// A change whose estimated onset sits in the first or last few
			// days of the window is indistinguishable from an STL edge
			// artifact.
			if c.Start < guard || c.Start >= len(out.Trend)-guard {
				continue
			}
			trimmed = append(trimmed, c)
		}
		changes = trimmed
	}
	all := suppressRebounds(cfg.toWallClock(changes, out))
	gap := int64(cfg.OutageGapDays) * netsim.SecondsPerDay
	kept2, removed := filterOutagePairs(all, gap)
	// Belief-based masking (§2.6): a change overlapping a detected outage
	// interval (± one day of trend smearing) is a network failure, not a
	// human-activity change.
	const slop = netsim.SecondsPerDay
	for _, c := range kept2 {
		masked := false
		for _, iv := range out.Outages {
			if c.End >= iv.Start-slop && c.Start <= iv.End+slop {
				masked = true
				break
			}
		}
		if masked {
			removed = append(removed, c)
		} else if out.lowConfidence(c) {
			// A change estimated inside a measurement gap (an observer
			// downtime no other site covered) is reported separately: it may
			// be real, but its timing is carried-forward guesswork.
			out.LowConfChanges = append(out.LowConfChanges, c)
		} else {
			out.Changes = append(out.Changes, c)
		}
	}
	out.OutagePairs = removed
	return nil
}

// lowConfidence reports whether the change's estimated point falls in a
// bin with no nearby real measurement.
func (a *BlockAnalysis) lowConfidence(c Change) bool {
	if a.Confidence == nil || a.SampleStep <= 0 {
		return false
	}
	idx := int((c.Point - a.SampleStart) / a.SampleStep)
	return idx >= 0 && idx < len(a.Confidence) && !a.Confidence[idx]
}

// filterOutagePairs removes down→up (or up→down) pairs whose alarms fall
// within maxGap of each other and whose magnitudes are comparable — the
// signature of an outage or an ISP renumbering event, where the recovery
// undoes the drop (§2.6). A sustained human change followed by a small
// unrelated move is not paired.
func filterOutagePairs(changes []Change, maxGap int64) (kept, removed []Change) {
	used := make([]bool, len(changes))
	comparable := func(a, b Change) bool {
		x, y := math.Abs(a.RawAmplitude), math.Abs(b.RawAmplitude)
		if x > y {
			x, y = y, x
		}
		return y == 0 || x >= 0.6*y
	}
	for i := range changes {
		if used[i] {
			continue
		}
		paired := false
		for j := i + 1; j < len(changes); j++ {
			if used[j] {
				continue
			}
			if changes[j].Alarm-changes[i].Alarm > maxGap {
				break
			}
			if changes[j].Dir == -changes[i].Dir && comparable(changes[i], changes[j]) {
				used[i], used[j] = true, true
				removed = append(removed, changes[i], changes[j])
				paired = true
				break
			}
		}
		if !paired && !used[i] {
			kept = append(kept, changes[i])
		}
	}
	return kept, removed
}

// suppressRebounds drops trend-stabilization artifacts: right after a
// large change the smoothed trend overshoots and corrects, producing a
// small opposite-direction change that begins where the real one ended.
// A genuine recovery (outage up-leg, festival return-to-work) moves the
// trend back by a comparable amount and survives the 70% magnitude test.
func suppressRebounds(changes []Change) []Change {
	if len(changes) < 2 {
		return changes
	}
	out := changes[:1]
	for _, c := range changes[1:] {
		prev := out[len(out)-1]
		opposite := c.Dir == -prev.Dir
		adjacent := c.Start-prev.End <= 2*netsim.SecondsPerDay
		smaller := math.Abs(c.RawAmplitude) < 0.7*math.Abs(prev.RawAmplitude)
		if opposite && adjacent && smaller {
			continue
		}
		out = append(out, c)
	}
	return out
}

// toWallClock converts sample-index changes into timestamped ones and
// locates the point of steepest trend movement.
func (cfg Config) toWallClock(changes []changepoint.Change, a *BlockAnalysis) []Change {
	var out []Change
	for _, c := range changes {
		point := c.Start
		steepest := 0.0
		for i := c.Start; i < c.End && i+1 < len(a.Trend); i++ {
			d := a.Trend[i+1] - a.Trend[i]
			if c.Dir == changepoint.Down {
				d = -d
			}
			if d > steepest {
				steepest = d
				point = i
			}
		}
		rawAmp := a.Trend[c.End] - a.Trend[c.Start]
		if cfg.MinChangeAddresses > 0 && math.Abs(rawAmp) < cfg.MinChangeAddresses {
			continue
		}
		ts := func(idx int) int64 { return a.SampleStart + int64(idx)*cfg.SampleStep }
		out = append(out, Change{
			Dir:          c.Dir,
			Start:        ts(c.Start),
			Alarm:        ts(c.Alarm),
			End:          ts(c.End),
			Point:        ts(point),
			Amplitude:    c.Amplitude,
			RawAmplitude: rawAmp,
		})
	}
	return out
}

// Scratch holds one worker's reusable analysis state: the probe/merge
// record buffers, the classifier's cached FFT plans and resample buffers,
// and the STL workspace. A world-scale run hands each worker goroutine its
// own Scratch (Pipeline.Run does), so the per-block hot path allocates only
// for outputs that outlive the block; everything length-dependent is paid
// once per distinct series length. A Scratch is not safe for concurrent
// use — per-worker ownership, not a shared locked cache, is the design
// (see DESIGN.md).
type Scratch struct {
	perObs [][]probe.Record
	merged []probe.Record
	class  *blockclass.Scratch
	stl    stl.Workspace
}

// NewScratch returns an empty Scratch; caches warm up lazily.
func NewScratch() *Scratch {
	return &Scratch{class: blockclass.NewScratch()}
}

// scratchPool backs the convenience entry points (AnalyzeBlock,
// AnalyzeBlockContext) that don't manage worker lifetimes themselves.
var scratchPool = sync.Pool{New: func() interface{} { return NewScratch() }}

// AnalyzeBlock probes a block with the engine over the analysis window and
// analyzes the resulting streams — the common entry point for a fully
// simulated block. eng is any Prober (*probe.Engine, or a faults.Engine
// wrapping one).
func (cfg Config) AnalyzeBlock(eng Prober, b *netsim.Block) (*BlockAnalysis, error) {
	return cfg.AnalyzeBlockContext(context.Background(), eng, b)
}

// AnalyzeBlockContext is AnalyzeBlock with cancellation: ctx is passed to
// the prober's collection loop, so a canceled or expired context aborts
// the probe promptly and surfaces ctx's error.
func (cfg Config) AnalyzeBlockContext(ctx context.Context, eng Prober, b *netsim.Block) (*BlockAnalysis, error) {
	sc := scratchPool.Get().(*Scratch)
	defer scratchPool.Put(sc)
	return cfg.AnalyzeBlockScratch(ctx, eng, b, sc)
}

// AnalyzeBlockScratch is AnalyzeBlockContext reusing sc's buffers, plans
// and workspaces across calls; sc may be nil for a one-shot analysis.
// Callers that loop over many blocks (pipeline workers) hold one Scratch
// per goroutine.
func (cfg Config) AnalyzeBlockScratch(ctx context.Context, eng Prober, b *netsim.Block, sc *Scratch) (*BlockAnalysis, error) {
	c := cfg.withDefaults()
	if err := c.validate(); err != nil {
		return nil, err
	}
	eb := b.EverActive()
	if len(eb) == 0 {
		return &BlockAnalysis{Series: &reconstruct.Series{}}, nil
	}
	if sc == nil {
		sc = NewScratch()
	}
	var err error
	sc.perObs, err = eng.CollectInto(ctx, b, c.AnalysisStart, c.AnalysisEnd, sc.perObs)
	if err != nil {
		return nil, err
	}
	return c.analyzeCollected(sc.perObs, eb, sc, proberEmitsClean(eng))
}

// preparedBlock holds the collect→reconstruct half of one block's
// analysis between a batch's prepare phase and its shared classification
// pass. Its series and outage intervals are freshly allocated, so they
// survive the scratch buffers being reused for the next block's prepare.
type preparedBlock struct {
	series  *reconstruct.Series
	outages []outage.Interval
	san     reconstruct.SanitizeReport
	// empty marks a block whose target list E(b) is empty: its analysis
	// short-circuits to an empty Series with no classification.
	empty bool
}

// prepareBlockScratch runs everything before classification — collection,
// sanitization, repair, merge, reconstruction, and outage detection — for
// one block. Pairing it with a batched classify pass and
// finishSeriesScratch reproduces AnalyzeBlockScratch bit for bit.
func (cfg Config) prepareBlockScratch(ctx context.Context, eng Prober, b *netsim.Block, sc *Scratch) (preparedBlock, error) {
	c := cfg.withDefaults()
	if err := c.validate(); err != nil {
		return preparedBlock{}, err
	}
	eb := b.EverActive()
	if len(eb) == 0 {
		return preparedBlock{empty: true}, nil
	}
	if sc == nil {
		sc = NewScratch()
	}
	var err error
	sc.perObs, err = eng.CollectInto(ctx, b, c.AnalysisStart, c.AnalysisEnd, sc.perObs)
	if err != nil {
		return preparedBlock{}, err
	}
	var san reconstruct.SanitizeReport
	if c.SanitizeRecords && !proberEmitsClean(eng) {
		san = c.sanitizeStreams(sc.perObs)
	}
	if c.Repair {
		for _, stream := range sc.perObs {
			reconstruct.Repair1Loss(stream)
		}
	}
	sc.merged = reconstruct.MergeInto(sc.merged, sc.perObs)
	if c.Integrity {
		sc.merged = reconstruct.ResolveContested(sc.merged)
	}
	series, err := reconstruct.Reconstruct(sc.merged, eb)
	if err != nil {
		return preparedBlock{}, err
	}
	return preparedBlock{series: series, outages: c.detectOutages(sc.merged), san: san}, nil
}

// cleanProber is an optional Prober refinement: a prober whose streams
// satisfy reconstruct.Sanitize's invariants by construction (in-window,
// time-ordered, no repeated (time, address) pairs per round).
// *probe.Engine implements it; wrappers that only truncate streams
// (excludeProber, supervisedProber) forward it, while fault injectors and
// replay readers — whose streams may be corrupt — do not.
type cleanProber interface {
	EmitsSanitizedRecords() bool
}

// proberEmitsClean reports whether eng guarantees sanitized streams.
func proberEmitsClean(eng Prober) bool {
	cp, ok := eng.(cleanProber)
	return ok && cp.EmitsSanitizedRecords()
}
