package core

// Checkpoint journal compaction: auto-compaction bounds the file while a
// run is journaling, the rewrite deduplicates fenced writers' repeated
// frames keeping the first append, resume identity survives compaction,
// and a killed compaction's temp litter is swept at open.

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

func TestCheckpointAutoCompactionBoundsJournal(t *testing.T) {
	world := smallWorld(t, 12, 91)
	path := filepath.Join(t.TempDir(), "run.ckpt")

	cp, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	cp.CompactBytes = 4 << 10
	first, err := (&Pipeline{Config: q1Config(), Engine: engine4(), Checkpoint: cp}).Run(context.Background(), world)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Compactions() == 0 {
		t.Fatal("the 4KiB bound never triggered a compaction")
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume identity across the compacted journal: every block skipped,
	// same fingerprint.
	cp2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	if cp2.Entries() != len(world) {
		t.Fatalf("compacted journal resumes %d blocks, world has %d", cp2.Entries(), len(world))
	}
	second, err := (&Pipeline{Config: q1Config(), Engine: engine4(), Checkpoint: cp2}).Run(context.Background(), world)
	if err != nil {
		t.Fatal(err)
	}
	if second.Report.ResumedBlocks != len(world) {
		t.Fatalf("resumed %d of %d blocks after compaction", second.Report.ResumedBlocks, len(world))
	}
	f1, err := first.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	f2, err := second.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Fatalf("compaction changed the result: %s vs %s", f1, f2)
	}
}

func TestCheckpointCompactDedupsAndSweepsTemps(t *testing.T) {
	world := smallWorld(t, 8, 92)
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")

	cp, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (&Pipeline{Config: q1Config(), Engine: engine4(), Checkpoint: cp}).Run(context.Background(), world); err != nil {
		t.Fatal(err)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	cp, err = OpenCheckpoint(path) // Lookup serves the loaded prior entries
	if err != nil {
		t.Fatal(err)
	}
	// A fenced writer racing a reassigned lease re-journals blocks it
	// already completed: byte-identical duplicate frames.
	for i, wb := range world[:4] {
		o, ok := cp.Lookup(i, wb.ID)
		if !ok {
			t.Fatalf("block %d not journaled", i)
		}
		if err := cp.Append(i, *o); err != nil {
			t.Fatal(err)
		}
	}
	dup, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Compact(); err != nil {
		t.Fatal(err)
	}
	base, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if base.Size() >= dup.Size() {
		t.Errorf("compaction did not shrink the journal: %d -> %d bytes", dup.Size(), base.Size())
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}

	// Temp litter beside the journal (a killed compaction) is swept at
	// open, and the deduplicated base still resumes every block.
	litter := path + ".tmp12345"
	if err := os.WriteFile(litter, []byte("half a base"), 0o644); err != nil {
		t.Fatal(err)
	}
	cp2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	if _, err := os.Stat(litter); !os.IsNotExist(err) {
		t.Errorf("compaction temp litter survived open: %v", err)
	}
	if cp2.Entries() != len(world) {
		t.Fatalf("deduplicated base resumes %d blocks, want %d", cp2.Entries(), len(world))
	}
}
