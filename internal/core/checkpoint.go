package core

// Checkpointing makes world runs crash-safe: every completed block
// outcome is journaled to an append-only file, so a killed run resumes by
// replaying the journal and analyzing only the blocks it never finished.
// The journal is framed (length-prefix + CRC32C per frame) and
// self-describing; a torn tail from a crash mid-append is truncated on
// open, and a header frame binds the journal to one (config, world) pair
// so a stale file can never leak foreign results into a run.

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"github.com/diurnalnet/diurnal/internal/dataset"
	"github.com/diurnalnet/diurnal/internal/geo"
	"github.com/diurnalnet/diurnal/internal/netsim"
	"github.com/diurnalnet/diurnal/internal/storage"
)

// Frame payload tags.
const (
	frameHeader = 'H'
	frameBlock  = 'B'
)

// checkpointHeader binds a journal to one run's configuration and world.
type checkpointHeader struct {
	Signature []byte
}

// blockMeta is the gob-encoded head of a block frame; the outcome's
// analysis follows it in the BlockAnalysis wire format (see codec.go),
// written directly so the bulk series bytes pass through exactly one
// buffer on their way to the journal.
//
// Observers was added with the quorum guard; gob omits it when zero and
// ignores it when absent, so journals written before the field and runs
// with the guard off round-trip identically (Observers stays 0 =
// "not tracked").
type blockMeta struct {
	Index       int
	ID          netsim.BlockID
	Place       geo.Placement
	HasAnalysis bool
	Observers   int
}

type checkpointKey struct {
	Index int
	ID    netsim.BlockID
}

// Checkpointer journals completed BlockOutcomes so Pipeline.Run can skip
// them after a crash. Open an existing journal to resume: prior entries
// are loaded (tolerating a torn final frame), and new completions append
// behind them. Safe for concurrent Append from pipeline workers.
type Checkpointer struct {
	// Fence, when non-nil, is consulted before every Append: a non-nil
	// return rejects the write and surfaces from Append unchanged. The
	// shard layer installs a lease check here so a worker whose lease was
	// reassigned cannot journal late results (see core.ErrFenced).
	Fence func() error
	// CompactBytes, when positive, bounds the journal: once an Append
	// grows the file past it, the journal is compacted in place (see
	// Compact). Set it before the first Append; it is not consulted
	// concurrently with mutation.
	CompactBytes int64

	mu          sync.Mutex
	fsys        storage.FS
	f           storage.File
	path        string
	sig         []byte
	prior       map[checkpointKey]*BlockOutcome
	appended    int
	size        int64
	compactions int64
}

// JournalEntry is one decoded block frame from a checkpoint journal, in
// append order. Duplicate frames for the same block (possible only when a
// fenced writer raced a reassigned lease) appear as separate entries.
type JournalEntry struct {
	Index   int
	Outcome *BlockOutcome
}

// scanFrames walks a journal image frame by frame (via the shared
// WalkFrames envelope scan), returning the header signature, the block
// entries in append order, and the byte offset of the last intact frame.
// Everything past that offset is a torn or corrupt tail.
func scanFrames(data []byte) (sig []byte, entries []JournalEntry, good int) {
	good = WalkFrames(data, func(payload []byte) error {
		switch payload[0] {
		case frameHeader:
			var h checkpointHeader
			if err := gob.NewDecoder(bytes.NewReader(payload[1:])).Decode(&h); err != nil {
				return err
			}
			sig = h.Signature
		case frameBlock:
			index, o, err := decodeBlockFrame(payload[1:])
			if err != nil {
				return err
			}
			entries = append(entries, JournalEntry{Index: index, Outcome: o})
		default:
			return fmt.Errorf("core: unknown frame tag %q", payload[0])
		}
		return nil
	})
	return sig, entries, good
}

// ReadCheckpoint scans a checkpoint journal without opening it for writing
// or truncating its tail: the shard merge step uses it to stitch journals
// owned by other (possibly still-running) workers. It returns the bound
// run signature, every intact block frame in append order, and how many
// trailing bytes were torn or corrupt. A missing file is zero frames, not
// an error.
func ReadCheckpoint(path string) (sig []byte, entries []JournalEntry, torn int, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, 0, nil
		}
		return nil, nil, 0, fmt.Errorf("core: reading checkpoint %s: %w", path, err)
	}
	sig, entries, good := scanFrames(data)
	return sig, entries, len(data) - good, nil
}

// OpenCheckpoint opens (or creates) a checkpoint journal on the real
// filesystem. Existing frames are replayed into memory; an incomplete or
// corrupt tail — the signature of a crash mid-append — is truncated so
// the journal is append-clean.
func OpenCheckpoint(path string) (*Checkpointer, error) {
	return OpenCheckpointFS(path, storage.OS)
}

// OpenCheckpointFS is OpenCheckpoint through an injectable filesystem;
// fault-injection tests script write failures here. It also sweeps temp
// files a killed compaction left beside the journal.
func OpenCheckpointFS(path string, fsys storage.FS) (*Checkpointer, error) {
	c := &Checkpointer{path: path, fsys: fsys, prior: map[checkpointKey]*BlockOutcome{}}
	sweepTempSiblings(fsys, path)
	data, err := fsys.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("core: reading checkpoint %s: %w", path, err)
	}
	sig, entries, good := scanFrames(data)
	c.sig = sig
	for _, e := range entries {
		c.prior[checkpointKey{Index: e.Index, ID: e.Outcome.ID}] = e.Outcome
	}
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("core: opening checkpoint %s: %w", path, err)
	}
	if good < len(data) {
		if err := f.Truncate(int64(good)); err != nil {
			f.Close()
			return nil, fmt.Errorf("core: truncating torn checkpoint tail: %w", err)
		}
	}
	if _, err := f.Seek(int64(good), 0); err != nil {
		f.Close()
		return nil, err
	}
	c.f = f
	c.size = int64(good)
	return c, nil
}

// sweepTempSiblings removes "<path>.tmp*" litter left by an atomic
// rewrite the process was killed in the middle of. Best-effort: the
// rewrite protocol never acks through a temp file, so deleting one can
// only reclaim space.
func sweepTempSiblings(fsys storage.FS, path string) {
	dir := filepath.Dir(path)
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return
	}
	prefix := filepath.Base(path) + ".tmp"
	for _, e := range ents {
		if e.Type().IsRegular() && strings.HasPrefix(e.Name(), prefix) {
			fsys.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

// Path returns the journal's file path.
func (c *Checkpointer) Path() string { return c.path }

// Entries returns how many block outcomes the journal holds (prior plus
// appended this session).
func (c *Checkpointer) Entries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.prior) + c.appended
}

// Lookup returns the journaled outcome for a block, if any.
func (c *Checkpointer) Lookup(index int, id netsim.BlockID) (*BlockOutcome, bool) {
	o, ok := c.prior[checkpointKey{Index: index, ID: id}]
	return o, ok
}

// SeedPrior registers an outcome as already finished without writing a
// frame: the pipeline will restore it through Lookup instead of
// re-analyzing the block. A shard worker taking over an expired lease
// seeds its fresh journal with the previous leaseholders' frames, so work
// completed under earlier fencing tokens is never redone (and never
// re-journaled — the merge step reads every token's journal).
func (c *Checkpointer) SeedPrior(index int, o *BlockOutcome) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := checkpointKey{Index: index, ID: o.ID}
	if _, ok := c.prior[key]; !ok {
		c.prior[key] = o
	}
}

// ensureSignature binds the journal to a run signature: a fresh journal
// records it in a header frame; an existing journal must match, so
// resuming with a different config or world fails loudly instead of
// merging foreign results.
func (c *Checkpointer) ensureSignature(sig []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sig != nil {
		if !bytes.Equal(c.sig, sig) {
			return fmt.Errorf("core: checkpoint %s belongs to a different run (config or world changed); delete it to start over", c.path)
		}
		return nil
	}
	if err := c.writeFrame(frameHeader, checkpointHeader{Signature: sig}); err != nil {
		return err
	}
	c.sig = sig
	return nil
}

// Append journals one completed block outcome. The frame is buffered and
// written with a single write() — durable across process death as soon as
// the call returns; Close syncs for durability across power loss. Encoding
// happens outside the journal lock, so concurrent workers serialize only
// on the write itself, not on the encoder.
func (c *Checkpointer) Append(index int, o BlockOutcome) error {
	if c.Fence != nil {
		if err := c.Fence(); err != nil {
			return err
		}
	}
	frame, err := encodeBlockFrame(index, o)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return fmt.Errorf("core: checkpoint %s is closed", c.path)
	}
	if _, err := c.f.Write(frame); err != nil {
		return fmt.Errorf("core: appending checkpoint frame: %w", err)
	}
	c.appended++
	c.size += int64(len(frame))
	if c.CompactBytes > 0 && c.size > c.CompactBytes {
		// Best-effort in-line compaction; a failure leaves the journal
		// append-clean and oversized, surfaced on the next explicit
		// Compact or ignored.
		c.compactLocked()
	}
	return nil
}

// Compact rewrites the journal in place as its deduplicated base: one
// header frame plus exactly one block frame per (index, ID), keeping
// the first append (later duplicates are fenced writers' byte-identical
// repeats). The rewrite is atomic — temp file, fsync, rename, parent
// fsync — so a kill at any point leaves either the old journal or the
// new base, never a torn hybrid; resumability is anchored to the
// checkpoint contents themselves.
func (c *Checkpointer) Compact() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.compactLocked()
}

// Compactions reports how many times the journal was rewritten.
func (c *Checkpointer) Compactions() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.compactions
}

func (c *Checkpointer) compactLocked() error {
	if c.f == nil {
		return fmt.Errorf("core: checkpoint %s is closed", c.path)
	}
	if c.sig == nil {
		return nil // nothing bound, nothing journaled
	}
	if err := c.f.Sync(); err != nil {
		return fmt.Errorf("core: syncing checkpoint before compaction: %w", err)
	}
	data, err := c.fsys.ReadFile(c.path)
	if err != nil {
		return fmt.Errorf("core: reading checkpoint %s: %w", c.path, err)
	}
	sig, entries, _ := scanFrames(data)
	out, err := encodeFrame(frameHeader, checkpointHeader{Signature: sig})
	if err != nil {
		return err
	}
	seen := make(map[checkpointKey]bool, len(entries))
	for _, e := range entries {
		k := checkpointKey{Index: e.Index, ID: e.Outcome.ID}
		if seen[k] {
			continue
		}
		seen[k] = true
		frame, err := encodeBlockFrame(e.Index, *e.Outcome)
		if err != nil {
			return err
		}
		out = append(out, frame...)
	}
	if err := storage.WriteBytesAtomic(c.fsys, c.path, out); err != nil {
		return err
	}
	f, err := c.fsys.OpenFile(c.path, os.O_RDWR, 0o644)
	if err != nil {
		// The old handle now points at the unlinked pre-compaction inode;
		// writing through it would be silent data loss. Fail closed.
		c.f.Close()
		c.f = nil
		return fmt.Errorf("core: reopening compacted checkpoint %s: %w", c.path, err)
	}
	if _, err := f.Seek(int64(len(out)), 0); err != nil {
		f.Close()
		c.f.Close()
		c.f = nil
		return err
	}
	c.f.Close()
	c.f = f
	c.size = int64(len(out))
	c.compactions++
	return nil
}

// encodeBlockFrame renders one journaled outcome as a complete frame. The
// buffer is sized exactly up front, so the analysis bytes are laid down
// once instead of shuttling through nested encoders.
func encodeBlockFrame(index int, o BlockOutcome) ([]byte, error) {
	var meta bytes.Buffer
	err := gob.NewEncoder(&meta).Encode(&blockMeta{
		Index: index, ID: o.ID, Place: o.Place, HasAnalysis: o.Analysis != nil,
		Observers: o.Observers,
	})
	if err != nil {
		return nil, fmt.Errorf("core: encoding checkpoint frame: %w", err)
	}
	var blob []byte
	wireLen := 0
	if o.Analysis != nil {
		if blob, err = o.Analysis.blobBytes(); err != nil {
			return nil, err
		}
		wireLen = 4 + len(blob) + o.Analysis.sectionsSize()
	}
	payloadLen := 1 + 4 + meta.Len() + wireLen
	frame := make([]byte, 0, 4+payloadLen+4)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(payloadLen))
	frame = append(frame, frameBlock)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(meta.Len()))
	frame = append(frame, meta.Bytes()...)
	if o.Analysis != nil {
		frame = binary.LittleEndian.AppendUint32(frame, uint32(len(blob)))
		frame = append(frame, blob...)
		frame = o.Analysis.appendSections(frame)
	}
	return binary.LittleEndian.AppendUint32(frame, crc32.Checksum(frame[4:], FrameCRC)), nil
}

// decodeBlockFrame is the inverse of encodeBlockFrame, minus the tag byte
// and CRC already handled by the frame scan.
func decodeBlockFrame(data []byte) (int, *BlockOutcome, error) {
	if len(data) < 4 {
		return 0, nil, fmt.Errorf("core: block frame too short")
	}
	metaLen := int(binary.LittleEndian.Uint32(data))
	if 4+metaLen > len(data) {
		return 0, nil, fmt.Errorf("core: block frame meta of %d bytes truncated", metaLen)
	}
	var m blockMeta
	if err := gob.NewDecoder(bytes.NewReader(data[4 : 4+metaLen])).Decode(&m); err != nil {
		return 0, nil, fmt.Errorf("core: decoding checkpoint frame: %w", err)
	}
	o := &BlockOutcome{ID: m.ID, Place: m.Place, Observers: m.Observers}
	rest := data[4+metaLen:]
	if m.HasAnalysis {
		a := &BlockAnalysis{}
		if err := a.GobDecode(rest); err != nil {
			return 0, nil, err
		}
		o.Analysis = a
	} else if len(rest) != 0 {
		return 0, nil, fmt.Errorf("core: %d trailing bytes after block frame", len(rest))
	}
	return m.Index, o, nil
}

// writeFrame encodes v behind tag and appends one framed record. Caller
// holds c.mu.
func (c *Checkpointer) writeFrame(tag byte, v any) error {
	frame, err := encodeFrame(tag, v)
	if err != nil {
		return err
	}
	if c.f == nil {
		return fmt.Errorf("core: checkpoint %s is closed", c.path)
	}
	if _, err := c.f.Write(frame); err != nil {
		return fmt.Errorf("core: appending checkpoint frame: %w", err)
	}
	c.size += int64(len(frame))
	return nil
}

// encodeFrame renders one self-contained journal frame: length prefix,
// tagged gob payload, CRC32C trailer. Frames carry their own gob type
// descriptors so each decodes independently during the open-time scan.
func encodeFrame(tag byte, v any) ([]byte, error) {
	var payload bytes.Buffer
	payload.WriteByte(tag)
	if err := gob.NewEncoder(&payload).Encode(v); err != nil {
		return nil, fmt.Errorf("core: encoding checkpoint frame: %w", err)
	}
	frame := make([]byte, 0, 8+payload.Len())
	frame = binary.LittleEndian.AppendUint32(frame, uint32(payload.Len()))
	frame = append(frame, payload.Bytes()...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(payload.Bytes(), FrameCRC))
	return frame, nil
}

// Close syncs and closes the journal.
func (c *Checkpointer) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	err := c.f.Sync()
	if cerr := c.f.Close(); err == nil {
		err = cerr
	}
	c.f = nil
	return err
}

// RunSignature digests the analysis config and world identity; it decides
// whether a checkpoint journal may be resumed. The shard ledger reuses it
// to bind a whole ledger to one (config, world) pair and each per-shard
// journal to its block-range slice of the world.
func RunSignature(cfg Config, world []*dataset.WorldBlock) []byte {
	// Normalize first: Pipeline.Run signs the defaults-applied config, and
	// external signatures (shard manifests, per-shard journal checks) must
	// agree with the headers the pipeline actually writes.
	return runSignature(cfg.withDefaults(), world)
}

// runSignature is RunSignature; the pipeline calls it internally.
func runSignature(cfg Config, world []*dataset.WorldBlock) []byte {
	h := sha256.New()
	enc := gob.NewEncoder(h)
	// Config is plain data (no funcs), so gob gives a stable digest.
	_ = enc.Encode(cfg)
	ids := make([]netsim.BlockID, len(world))
	for i, wb := range world {
		ids[i] = wb.ID
	}
	_ = enc.Encode(ids)
	return h.Sum(nil)
}

// Fingerprint digests everything the run computed per block (outcomes in
// world order, block errors, analyzed count) into a hex string. Two runs
// of the same world and config — interrupted-and-resumed or not — must
// produce equal fingerprints; the kill-and-resume experiment asserts
// exactly that.
func (r *WorldResult) Fingerprint() (string, error) {
	h := sha256.New()
	enc := gob.NewEncoder(h)
	if err := enc.Encode(r.Blocks); err != nil {
		return "", fmt.Errorf("core: fingerprinting blocks: %w", err)
	}
	errs := make([]string, 0, len(r.Report.BlockErrors))
	for _, e := range r.Report.BlockErrors {
		errs = append(errs, e.Error())
	}
	if err := enc.Encode(errs); err != nil {
		return "", err
	}
	if err := enc.Encode(r.Report.AnalyzedBlocks); err != nil {
		return "", err
	}
	// Dead-lettered blocks are part of the run's identity too: a sharded
	// run must quarantine exactly the blocks a single-process run would.
	dls := make([]string, 0, len(r.Report.DeadLettered))
	for _, e := range r.Report.DeadLettered {
		dls = append(dls, e.Error())
	}
	if err := enc.Encode(dls); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
