package stream

// The daemon: durable ingestion in front of the deterministic detector.
//
// Correctness argument, in one place. The WAL protocol is
//
//	ingest:  round → rounds.wal (single write) → admission queue
//	process: round → detector → events → events.wal → OnEvent delivery
//
// so at any kill point rounds.wal holds every admitted round and
// events.wal holds a prefix of the events the detector derives from them.
// Recovery — whether from SIGKILL (Open) or from a wedged analysis loop
// (the watchdog) — is one code path: rebuild a fresh detector by
// replaying rounds.wal. Determinism makes the regenerated event sequence
// equal the journaled one on the shared prefix (verified frame by frame;
// a mismatch fails the open rather than corrupting the log), and any
// events the crash cut off are re-derived, appended, and delivered. Event
// sequence numbers are therefore contiguous and each event is journaled
// exactly once.
//
// The watchdog uses generation fencing: every analysis loop runs under a
// generation number, and every commit (journal append, queue pop,
// delivery) happens under the daemon mutex only if the loop's generation
// is still current. A loop declared wedged is fenced out — whatever it
// eventually computes is discarded — and a new loop resumes from the
// rebuilt detector, which already covers the round the old loop was
// chewing on.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"syscall"
	"time"

	"github.com/diurnalnet/diurnal/internal/core"
	"github.com/diurnalnet/diurnal/internal/dataset"
)

// ErrDiskPressure reports that an admission was shed because the
// daemon's disk budget was exhausted even after compaction. The WALs
// are intact and the daemon keeps running; the caller decides whether
// to retry, alert, or stop.
var ErrDiskPressure = errors.New("stream: disk budget exhausted; round shed")

// isNoSpace reports whether err is an out-of-space write failure (real
// or injected by faults.FS).
func isNoSpace(err error) bool { return errors.Is(err, syscall.ENOSPC) }

// Daemon is a crash-safe streaming analysis service over one world. All
// methods are safe for concurrent use.
type Daemon struct {
	cfg      Config
	world    []*dataset.WorldBlock
	obsCount int
	sig      []byte
	dir      string

	mu        sync.Mutex
	det       *detector
	detStats  detSnapshot
	rounds    *wal
	events    *wal
	queue     []*Round
	nextSeq   int64 // next round seq Ingest accepts
	journaled []Event
	gen       int64
	busy      bool
	busySince time.Time
	restarts  int64
	maxDepth  int
	closed    bool
	aborted   bool
	err       error
	progress  chan struct{} // closed and replaced on every state change

	// Storage governance.
	sheds          int64  // rounds refused under disk pressure
	lastStorageErr string // most recent storage-plane failure
	lastCompactSeq int64  // nextSeq at the last rounds compaction (-1: never)
	lastAckCount   int64  // journaled count at the last events compaction (-1: never)
	lastGov        govSnapshot

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	// hookProcess, when set by in-package tests, runs inside the analysis
	// loop before each round is processed — the seam chaos tests use to
	// wedge the loop and exercise the watchdog.
	hookProcess func(*Round)
}

// Open opens (or creates) a streaming daemon over dir. An existing WAL is
// replayed: the detector state is rebuilt deterministically, journaled
// events are verified against the regenerated sequence, and events a
// crash cut off between processing and journaling are appended. Open does
// not start the analysis loop; call Start.
//
// obsCount is the number of observer streams every round carries per
// block (the probing engine's observer count).
func Open(dir string, world []*dataset.WorldBlock, obsCount int, cfg Config) (*Daemon, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(world) == 0 {
		return nil, fmt.Errorf("stream: empty world")
	}
	if obsCount <= 0 {
		return nil, fmt.Errorf("stream: observer count %d", obsCount)
	}
	if err := cfg.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("stream: creating %s: %w", dir, err)
	}
	d := &Daemon{
		cfg:            cfg,
		world:          world,
		obsCount:       obsCount,
		sig:            core.RunSignature(cfg.Core, world),
		dir:            dir,
		progress:       make(chan struct{}),
		lastCompactSeq: -1,
		lastAckCount:   -1,
	}
	d.ctx, d.cancel = context.WithCancel(context.Background())

	det := newDetector(cfg, world, obsCount)
	var regen []Event
	rw, err := openWAL(cfg.FS, dir, "rounds", d.sig, cfg.SegmentBytes, func(df decodedFrame) error {
		rs, err := d.frameRounds(df)
		if err != nil {
			return err
		}
		for _, r := range rs {
			evs, err := det.ingest(r)
			if err != nil {
				return err
			}
			regen = append(regen, evs...)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	d.rounds = rw
	sawAck := false
	ew, err := openWAL(cfg.FS, dir, "events", d.sig, cfg.SegmentBytes, func(df decodedFrame) error {
		switch df.Tag {
		case frameEventsAck:
			// A compacted event journal opens with the count of events the
			// round WAL regenerates deterministically; their bodies were
			// subsumed by the base segment.
			if sawAck || len(d.journaled) != 0 {
				return fmt.Errorf("event ack frame after %d journaled events", len(d.journaled))
			}
			sawAck = true
			if df.Ack.Count < 0 || df.Ack.Count > int64(len(regen)) {
				return fmt.Errorf("event journal acks %d events but the round WAL regenerates only %d; WAL pair is inconsistent", df.Ack.Count, len(regen))
			}
			d.journaled = append(d.journaled, regen[:df.Ack.Count]...)
			return nil
		case frameEvent:
			if want := int64(len(d.journaled)); df.Event.Seq != want {
				return fmt.Errorf("event journal seq %d, expected %d", df.Event.Seq, want)
			}
			d.journaled = append(d.journaled, *df.Event)
			return nil
		default:
			return fmt.Errorf("unexpected %q frame in event WAL", df.Tag)
		}
	})
	if err != nil {
		rw.close(false)
		return nil, err
	}
	d.events = ew

	// Exactly-once check: the journal must be a prefix of the regenerated
	// sequence (rounds are journaled before their events, so the journal
	// can never be ahead). A divergent prefix means the WAL pair is
	// inconsistent — refuse to run rather than emit duplicates or gaps.
	if len(d.journaled) > len(regen) {
		d.closeFiles(false)
		return nil, fmt.Errorf("stream: event journal has %d events but the round WAL replays only %d; WAL pair is inconsistent", len(d.journaled), len(regen))
	}
	for i := range d.journaled {
		if d.journaled[i] != regen[i] {
			d.closeFiles(false)
			return nil, fmt.Errorf("stream: journaled event %d diverges from deterministic replay; WAL pair is inconsistent", i)
		}
	}
	// Events the crash cut off: re-journal and deliver them now.
	for _, ev := range regen[len(d.journaled):] {
		if err := d.appendEventLocked(ev); err != nil {
			d.closeFiles(false)
			return nil, err
		}
		if cfg.OnEvent != nil {
			cfg.OnEvent(ev)
		}
	}
	d.det = det
	d.detStats = snapshotDet(det)
	d.nextSeq = det.processed
	return d, nil
}

// frameRounds expands one round-WAL data frame into the rounds it
// journals: an 'R' frame is one round, a 'K' base frame is every round
// up to its compaction point, reconstructed bit-identically.
func (d *Daemon) frameRounds(df decodedFrame) ([]*Round, error) {
	switch df.Tag {
	case frameRound:
		return []*Round{df.Round}, nil
	case frameCompactRounds:
		return expandCompactBase(df.Base, d.cfg, len(d.world), d.obsCount)
	default:
		return nil, fmt.Errorf("unexpected %q frame in round WAL", df.Tag)
	}
}

// govSnapshot mirrors the storage-governance counters Stats reports, so
// they survive Close.
type govSnapshot struct {
	diskBytes   int64
	segments    int
	rotations   int64
	compactions int64
}

func (d *Daemon) govLocked() govSnapshot {
	if d.rounds == nil || d.events == nil {
		return d.lastGov
	}
	return govSnapshot{
		diskBytes:   d.rounds.total + d.events.total,
		segments:    len(d.rounds.segs) + len(d.events.segs),
		rotations:   d.rounds.rotations + d.events.rotations,
		compactions: d.rounds.compactions + d.events.compactions,
	}
}

// compactRoundsLocked rewrites the round WAL as a single base segment.
// It is lossless: the journaled rounds are collected by replay,
// re-encoded columnarly, and reconstruct bit-identically, so replay
// identity — and with it event identity — is unaffected. A no-op when
// nothing was admitted since the last compaction (the base is already
// minimal).
func (d *Daemon) compactRoundsLocked() error {
	if d.nextSeq == d.lastCompactSeq {
		return nil
	}
	var rounds []*Round
	if err := d.rounds.replayAll(func(df decodedFrame) error {
		rs, err := d.frameRounds(df)
		if err != nil {
			return err
		}
		rounds = append(rounds, rs...)
		return nil
	}); err != nil {
		d.lastStorageErr = err.Error()
		return err
	}
	cb, err := buildCompactBase(rounds, len(d.world), d.obsCount)
	if err != nil {
		d.lastStorageErr = err.Error()
		return err
	}
	payload, err := encodeStreamFrame(frameCompactRounds, cb)
	if err != nil {
		d.lastStorageErr = err.Error()
		return err
	}
	if err := d.rounds.compact(payload); err != nil {
		d.lastStorageErr = err.Error()
		return err
	}
	d.lastCompactSeq = d.nextSeq
	return nil
}

// compactEventsLocked rewrites the event WAL as a single base segment
// holding one ack frame: every journaled event is regenerable from the
// round WAL, so only the count needs to survive. A no-op when no event
// was journaled since the last compaction.
func (d *Daemon) compactEventsLocked() error {
	if int64(len(d.journaled)) == d.lastAckCount {
		return nil
	}
	payload, err := encodeStreamFrame(frameEventsAck, eventsAck{Count: int64(len(d.journaled))})
	if err != nil {
		d.lastStorageErr = err.Error()
		return err
	}
	if err := d.events.compact(payload); err != nil {
		d.lastStorageErr = err.Error()
		return err
	}
	d.lastAckCount = int64(len(d.journaled))
	return nil
}

// compactAllLocked compacts both journals, keeping the first error.
func (d *Daemon) compactAllLocked() error {
	err := d.compactRoundsLocked()
	if eerr := d.compactEventsLocked(); err == nil {
		err = eerr
	}
	return err
}

// Start launches the analysis loop and, when configured, the watchdog.
func (d *Daemon) Start() {
	d.mu.Lock()
	gen := d.gen
	det := d.det
	d.mu.Unlock()
	d.wg.Add(1)
	go d.loop(gen, det)
	if d.cfg.Watchdog > 0 {
		d.wg.Add(1)
		go d.watchdog()
	}
}

// NextIngestSeq returns the sequence number Ingest expects next — after a
// restart, the feeder resumes from here.
func (d *Daemon) NextIngestSeq() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.nextSeq
}

// Ingest admits one round: it is validated, made durable in the round
// WAL, and queued for analysis. Ingest blocks while the queue is full
// (bounded admission) until space frees, ctx is done, or the daemon
// stops. Rounds must arrive strictly in sequence.
func (d *Daemon) Ingest(ctx context.Context, r *Round) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if d.closed {
			return d.stopErr()
		}
		if r.Seq != d.nextSeq {
			return fmt.Errorf("stream: round seq %d, expected %d", r.Seq, d.nextSeq)
		}
		if r.Seq >= d.cfg.rounds() {
			return fmt.Errorf("stream: round %d past the analysis window (%d rounds total)", r.Seq, d.cfg.rounds())
		}
		if err := d.validateShape(r); err != nil {
			return err
		}
		if len(d.queue) < d.cfg.MaxQueue {
			break
		}
		ch := d.progress
		d.mu.Unlock()
		select {
		case <-ctx.Done():
			d.mu.Lock()
			return ctx.Err()
		case <-d.ctx.Done():
			d.mu.Lock()
			return d.stopErr()
		case <-ch:
			d.mu.Lock()
		}
	}
	payload, err := encodeStreamFrame(frameRound, r)
	if err != nil {
		return err
	}
	// Disk-budget accounting: if admitting this frame would overrun the
	// budget, compact first; if the journals still cannot fit it, shed
	// the round — the WALs stay intact and the daemon keeps serving.
	need := int64(len(payload)) + frameOverhead
	if d.cfg.DiskBudget > 0 && d.govLocked().diskBytes+need > d.cfg.DiskBudget {
		d.compactAllLocked()
		if got := d.govLocked().diskBytes; got+need > d.cfg.DiskBudget {
			d.sheds++
			d.lastStorageErr = fmt.Sprintf("disk budget %d exhausted: journals hold %d bytes, round %d needs %d more", d.cfg.DiskBudget, got, r.Seq, need)
			return fmt.Errorf("stream: admitting round %d: %w", r.Seq, ErrDiskPressure)
		}
	}
	if err := d.rounds.appendPayload(payload); err != nil {
		// An out-of-space append was rolled back to the last intact frame;
		// compaction may free enough to retry once.
		if !isNoSpace(err) {
			d.lastStorageErr = err.Error()
			return err
		}
		d.compactAllLocked()
		if err = d.rounds.appendPayload(payload); err != nil {
			d.sheds++
			d.lastStorageErr = err.Error()
			if isNoSpace(err) {
				return fmt.Errorf("stream: admitting round %d: %v: %w", r.Seq, err, ErrDiskPressure)
			}
			return err
		}
	}
	d.nextSeq++
	d.queue = append(d.queue, r)
	if len(d.queue) > d.maxDepth {
		d.maxDepth = len(d.queue)
	}
	if d.cfg.CompactBytes > 0 && d.rounds.total > d.cfg.CompactBytes {
		d.compactRoundsLocked() // best-effort; failure is surfaced in stats
	}
	d.bump()
	return nil
}

// validateShape checks a round's window and per-block stream counts
// before it is made durable, so a malformed round is rejected at the door
// instead of poisoning the WAL.
func (d *Daemon) validateShape(r *Round) error {
	start, end := d.cfg.roundWindow(r.Seq)
	if r.Start != start || r.End != end {
		return fmt.Errorf("stream: round %d window [%d,%d), expected [%d,%d)", r.Seq, r.Start, r.End, start, end)
	}
	if len(r.Blocks) != len(d.world) {
		return fmt.Errorf("stream: round %d covers %d blocks, world has %d", r.Seq, len(r.Blocks), len(d.world))
	}
	for b, perObs := range r.Blocks {
		if len(perObs) != d.obsCount {
			return fmt.Errorf("stream: round %d block %d has %d observer streams, expected %d", r.Seq, b, len(perObs), d.obsCount)
		}
	}
	return nil
}

// appendEventLocked journals one event, retrying once after an
// out-of-space failure by compacting the event journal (its whole
// history collapses to one ack frame, so compaction almost always
// frees room).
func (d *Daemon) appendEventLocked(ev Event) error {
	err := d.events.append(frameEvent, ev)
	if err != nil && isNoSpace(err) {
		if cerr := d.compactEventsLocked(); cerr == nil {
			err = d.events.append(frameEvent, ev)
		}
	}
	if err != nil {
		d.lastStorageErr = err.Error()
		return err
	}
	d.journaled = append(d.journaled, ev)
	return nil
}

// bump signals every waiter (ingesters waiting for queue space, Drain,
// the analysis loop) that state changed.
func (d *Daemon) bump() {
	close(d.progress)
	d.progress = make(chan struct{})
}

func (d *Daemon) stopErr() error {
	if d.err != nil {
		return d.err
	}
	if d.aborted {
		return fmt.Errorf("stream: daemon aborted")
	}
	return fmt.Errorf("stream: daemon closed")
}

// loop is one generation of the analysis goroutine.
func (d *Daemon) loop(gen int64, det *detector) {
	defer d.wg.Done()
	for {
		d.mu.Lock()
		for len(d.queue) == 0 {
			if d.gen != gen || d.closed {
				d.mu.Unlock()
				return
			}
			ch := d.progress
			d.mu.Unlock()
			select {
			case <-d.ctx.Done():
			case <-ch:
			}
			d.mu.Lock()
		}
		if d.gen != gen || d.closed {
			d.mu.Unlock()
			return
		}
		r := d.queue[0]
		d.busy = true
		d.busySince = d.cfg.Clock.Now()
		hook := d.hookProcess
		d.mu.Unlock()

		if hook != nil {
			hook(r) // test seam: may block to simulate a wedged kernel
		}
		evs, err := det.ingest(r)

		d.mu.Lock()
		if d.gen != gen || d.closed {
			// Fenced: a watchdog rebuild (or Close/Abort) superseded this
			// loop while it was working; its results are discarded — the
			// rebuild replayed this round from the WAL already.
			d.mu.Unlock()
			return
		}
		d.busy = false
		d.detStats = snapshotDet(det)
		if err != nil {
			d.err = fmt.Errorf("stream: processing round %d: %w", r.Seq, err)
			d.cancel()
			d.bump()
			d.mu.Unlock()
			return
		}
		for _, ev := range evs {
			if err := d.appendEventLocked(ev); err != nil {
				d.err = err
				d.cancel()
				d.bump()
				d.mu.Unlock()
				return
			}
		}
		if d.cfg.CompactBytes > 0 && d.events.total > d.cfg.CompactBytes {
			d.compactEventsLocked() // best-effort; failure is surfaced in stats
		}
		d.queue = d.queue[1:]
		onEvent := d.cfg.OnEvent
		d.bump()
		d.mu.Unlock()

		if onEvent != nil {
			for _, ev := range evs {
				onEvent(ev)
			}
		}
	}
}

// watchdog restarts the analysis loop when a single round's processing
// exceeds the patience budget.
func (d *Daemon) watchdog() {
	defer d.wg.Done()
	poll := d.cfg.Watchdog / 2
	if poll <= 0 {
		poll = d.cfg.Watchdog
	}
	for {
		select {
		case <-d.ctx.Done():
			return
		case <-d.cfg.Clock.After(poll):
		}
		d.mu.Lock()
		if !d.closed && d.busy && d.cfg.Clock.Now().Sub(d.busySince) >= d.cfg.Watchdog {
			if err := d.restartLocked(); err != nil {
				d.err = err
				d.cancel()
				d.bump()
			}
		}
		d.mu.Unlock()
	}
}

// restartLocked fences the current analysis loop and rebuilds the
// detector from the round WAL — crash recovery without the crash. Queued
// rounds are already durable, so the rebuilt detector has consumed them;
// the queue empties and admission reopens.
func (d *Daemon) restartLocked() error {
	d.gen++
	d.restarts++
	d.busy = false
	det := newDetector(d.cfg, d.world, d.obsCount)
	var regen []Event
	if err := d.rounds.replayAll(func(df decodedFrame) error {
		rs, err := d.frameRounds(df)
		if err != nil {
			return err
		}
		for _, r := range rs {
			evs, err := det.ingest(r)
			if err != nil {
				return err
			}
			regen = append(regen, evs...)
		}
		return nil
	}); err != nil {
		return fmt.Errorf("stream: watchdog rebuild: %w", err)
	}
	// Journal and deliver whatever the fenced loop had derived but not
	// yet committed.
	var deliver []Event
	for _, ev := range regen[len(d.journaled):] {
		if err := d.appendEventLocked(ev); err != nil {
			return err
		}
		deliver = append(deliver, ev)
	}
	d.det = det
	d.detStats = snapshotDet(det)
	d.queue = nil
	d.bump()
	d.wg.Add(1)
	go d.loop(d.gen, det)
	if d.cfg.OnEvent != nil {
		for _, ev := range deliver {
			d.cfg.OnEvent(ev)
		}
	}
	return nil
}

// Drain blocks until every admitted round has been processed (or ctx is
// done, or the daemon fails). A drained daemon can be Closed without
// losing pending work.
func (d *Daemon) Drain(ctx context.Context) error {
	for {
		d.mu.Lock()
		if d.err != nil {
			err := d.err
			d.mu.Unlock()
			return err
		}
		if d.closed {
			err := d.stopErr()
			d.mu.Unlock()
			return err
		}
		if len(d.queue) == 0 && !d.busy {
			d.mu.Unlock()
			return nil
		}
		ch := d.progress
		d.mu.Unlock()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ch:
		case <-d.ctx.Done():
		}
	}
}

// Events returns a copy of the journaled event log.
func (d *Daemon) Events() []Event {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]Event(nil), d.journaled...)
}

// Result assembles the world-level result from the final refresh. It
// requires the stream to be complete and drained; the output aggregates
// exactly as the batch pipeline does.
func (d *Daemon) Result() (*core.WorldResult, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.err != nil {
		return nil, d.err
	}
	if len(d.queue) > 0 || d.busy {
		return nil, fmt.Errorf("stream: %d rounds still queued; Drain first", len(d.queue))
	}
	return d.det.result()
}

// detSnapshot mirrors the detector counters Stats reports. The analysis
// loop mutates its detector *outside* d.mu (ingest is the long pole and
// must not block admission), so Stats can never touch d.det directly;
// the loop refreshes this mirror under d.mu after every round.
type detSnapshot struct {
	processed, refreshes, blockErrs int64
	scores                          []float64
}

func snapshotDet(det *detector) detSnapshot {
	return detSnapshot{
		processed: det.processed,
		refreshes: det.refreshes,
		blockErrs: det.blockErrs,
		scores:    det.scores(),
	}
}

// Stats snapshots daemon health.
func (d *Daemon) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	gov := d.govLocked()
	return Stats{
		IngestedRounds:  d.nextSeq,
		ProcessedRounds: d.detStats.processed,
		Refreshes:       d.detStats.refreshes,
		Events:          int64(len(d.journaled)),
		Restarts:        d.restarts,
		MaxQueueDepth:   d.maxDepth,
		BlockErrors:     d.detStats.blockErrs,
		DiurnalScores:   append([]float64(nil), d.detStats.scores...),
		DiskBytes:       gov.diskBytes,
		DiskBudget:      d.cfg.DiskBudget,
		WALSegments:     gov.segments,
		Rotations:       gov.rotations,
		Compactions:     gov.compactions,
		PressureSheds:   d.sheds,
		LastStorageErr:  d.lastStorageErr,
	}
}

// Close stops the daemon gracefully: no new admissions, the analysis
// loop and watchdog exit, and both WALs are fsynced and closed. Pending
// queued rounds are NOT processed (they are durable; the next Open
// replays them) — call Drain first for a clean shutdown.
func (d *Daemon) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.gen++ // fence any in-flight loop
	d.cancel()
	d.bump()
	d.mu.Unlock()
	d.wg.Wait()
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.closeFiles(true)
}

// Abort simulates SIGKILL for crash tests: every goroutine is fenced,
// nothing is flushed or drained, and the files are closed immediately.
// Frames already written by completed write() calls survive — exactly the
// durability a killed process gets from the page cache.
func (d *Daemon) Abort() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return
	}
	d.closed = true
	d.aborted = true
	d.gen++
	d.cancel()
	d.bump()
	d.closeFiles(false)
}

func (d *Daemon) closeFiles(sync bool) error {
	d.lastGov = d.govLocked()
	var first error
	if d.rounds != nil {
		if err := d.rounds.close(sync); err != nil && first == nil {
			first = err
		}
		d.rounds = nil
	}
	if d.events != nil {
		if err := d.events.close(sync); err != nil && first == nil {
			first = err
		}
		d.events = nil
	}
	return first
}
