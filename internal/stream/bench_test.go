package stream

// BenchmarkStreamingStep measures the steady-state per-round cost of the
// streaming detector — accumulation, sliding-DFT updates, and the
// amortized share of weekly refreshes — on a small faulty world. This is
// the number that bounds how far behind real time a daemon can fall.

import (
	"context"
	"testing"

	"github.com/diurnalnet/diurnal/internal/faults"
)

func BenchmarkStreamingStep(b *testing.B) {
	world := testWorld(b, 4, 4242)
	cfg := testConfig().withDefaults()
	start, _ := testWindow()
	eng := &faults.Engine{
		Inner: testEngine(11),
		Plan:  faults.DefaultPlan(3, 0.3, start, 23),
	}
	f, err := NewFeeder(context.Background(), eng, world, cfg)
	if err != nil {
		b.Fatal(err)
	}
	rounds := make([]*Round, f.Rounds())
	for i := range rounds {
		r, err := f.Round(int64(i))
		if err != nil {
			b.Fatal(err)
		}
		rounds[i] = r
	}
	b.ReportAllocs()
	b.ResetTimer()
	det := newDetector(cfg, world, f.Observers())
	seq := int64(0)
	for i := 0; i < b.N; i++ {
		if seq == f.Rounds() {
			b.StopTimer()
			det = newDetector(cfg, world, f.Observers())
			seq = 0
			b.StartTimer()
		}
		if _, err := det.ingest(rounds[seq]); err != nil {
			b.Fatal(err)
		}
		seq++
	}
}
