package stream

// Chaos soak: a faulty world (bursty loss, observer downtime, clock skew,
// stream corruption) streamed through a daemon that is SIGKILLed at
// seeded-random points, sometimes mid-queue, over and over until the
// stream completes. Invariants checked per seed:
//
//  1. event-sequence contiguity and latency bounds (checkEventInvariants);
//  2. WAL/state consistency — every incarnation resumes to an event
//     journal that is an exact prefix of the uninterrupted reference run,
//     and the finished directory reopens cleanly to the same state;
//  3. the final result fingerprint matches the reference.
//
// (Batch-vs-streaming agreement on fault-free input is
// TestStreamingMatchesBatch.) The short soak runs fixed seeds so CI is
// deterministic; the nightly soak randomizes and records any failing seed
// in soak-failure-seed.txt for replay.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"

	"github.com/diurnalnet/diurnal/internal/dataset"
	"github.com/diurnalnet/diurnal/internal/faults"
)

// soakOneSeed streams one faulty world to completion with repeated
// seeded-random kills, checking the crash-safety invariants throughout.
func soakOneSeed(t *testing.T, seed int64, blocks int) {
	t.Helper()
	world := testWorld(t, blocks, uint64(seed)*2654435761+1)
	cfg := testConfig()
	start, _ := testWindow()
	eng := &faults.Engine{
		Inner: testEngine(uint64(seed) + 5),
		Plan:  faults.DefaultPlan(3, 0.5, start, uint64(seed)+17),
	}
	f := testFeeder(t, eng, world, cfg)

	refEvents, refFP := runStream(t, t.TempDir(), world, f, cfg)
	soakKillLoop(t, seed, world, f, cfg, refEvents, refFP)
}

// soakKillLoop replays the feeder into daemon incarnations killed at
// seeded-random points until the stream completes, checking the journal
// prefix and final-fingerprint invariants against the reference run.
func soakKillLoop(t *testing.T, seed int64, world []*dataset.WorldBlock, f *Feeder, cfg Config, refEvents []Event, refFP string) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	dir := t.TempDir()
	ctx := context.Background()
	total := f.Rounds()
	incarnations := 0
	for done := false; !done; {
		d, err := Open(dir, world, f.Observers(), cfg)
		if err != nil {
			t.Fatalf("incarnation %d: open: %v", incarnations, err)
		}
		d.Start()
		incarnations++
		// Journal consistency at rebirth: an exact prefix of the reference.
		evs := d.Events()
		if len(evs) > len(refEvents) {
			t.Fatalf("incarnation %d: %d events journaled, reference has %d", incarnations, len(evs), len(refEvents))
		}
		for i := range evs {
			if evs[i] != refEvents[i] {
				t.Fatalf("incarnation %d: journaled event %d diverges from reference", incarnations, i)
			}
		}
		next := d.NextIngestSeq()
		if next >= total {
			// Everything is admitted; finish processing and stop killing.
			if err := d.Drain(ctx); err != nil {
				t.Fatal(err)
			}
			res, err := d.Result()
			if err != nil {
				t.Fatal(err)
			}
			fp, err := res.Fingerprint()
			if err != nil {
				t.Fatal(err)
			}
			if fp != refFP {
				t.Errorf("soak fingerprint %s != reference %s", fp[:16], refFP[:16])
			}
			evs = d.Events()
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}
			if len(evs) != len(refEvents) {
				t.Fatalf("soak journaled %d events, reference %d", len(evs), len(refEvents))
			}
			for i := range evs {
				if evs[i] != refEvents[i] {
					t.Errorf("soak event %d diverges from reference", i)
				}
			}
			checkEventInvariants(t, evs, cfg)
			done = true
			continue
		}
		// Ingest a random batch past the resume point, then kill — half the
		// time mid-queue, without draining.
		target := next + 1 + rng.Int63n(total-next)
		for seq := next; seq < target; seq++ {
			r, err := f.Round(seq)
			if err != nil {
				t.Fatal(err)
			}
			if err := d.Ingest(ctx, r); err != nil {
				t.Fatalf("incarnation %d: ingest round %d: %v", incarnations, seq, err)
			}
		}
		if rng.Intn(2) == 0 {
			if err := d.Drain(ctx); err != nil {
				t.Fatal(err)
			}
		}
		d.Abort()
	}
	if incarnations < 2 {
		t.Fatalf("soak ran %d incarnations; the kill schedule never fired", incarnations)
	}
}

// TestChaosSoakShort is the deterministic CI soak: fixed seeds, small
// worlds (`make soak` runs exactly this).
func TestChaosSoakShort(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short")
	}
	for _, seed := range []int64{1, 2} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			soakOneSeed(t, seed, 4)
		})
	}
}

// TestChaosSoakNightly is the scheduled randomized soak: gated on
// SOAK_NIGHTLY, seeded from SOAK_SEED or the clock, and it records a
// failing seed in soak-failure-seed.txt so the failure replays exactly.
func TestChaosSoakNightly(t *testing.T) {
	if os.Getenv("SOAK_NIGHTLY") == "" {
		t.Skip("set SOAK_NIGHTLY=1 to run the long randomized soak")
	}
	seed := time.Now().UnixNano()
	if s := os.Getenv("SOAK_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("SOAK_SEED %q: %v", s, err)
		}
		seed = v
	}
	t.Logf("nightly soak base seed %d (replay with SOAK_SEED=%d)", seed, seed)
	for i := int64(0); i < 6; i++ {
		i := i
		t.Run(fmt.Sprintf("seed%d", seed+i), func(t *testing.T) {
			soakOneSeed(t, seed+i, 6)
		})
	}
	if t.Failed() {
		msg := fmt.Sprintf("SOAK_SEED=%d\n", seed)
		if err := os.WriteFile("soak-failure-seed.txt", []byte(msg), 0o644); err != nil {
			t.Logf("recording failing seed: %v", err)
		}
	}
}

// soakDiskPressure streams one faulty world to completion where every
// early incarnation lives on a write-budgeted, fault-injected
// filesystem: appends run out of space mid-frame, fsyncs and renames
// fail at seeded-random points, and each failure is treated as a crash.
// The daemon must shed with ErrDiskPressure when compaction cannot save
// an append (never corrupt state), every rebirth must resume to an
// exact event-journal prefix of the reference, journals must stay under
// the disk budget, and a final clean incarnation must finish identical
// to the uninterrupted reference run.
func soakDiskPressure(t *testing.T, seed int64, blocks int) {
	t.Helper()
	world := testWorld(t, blocks, uint64(seed)*2654435761+1)
	cfg := testConfig()
	start, _ := testWindow()
	eng := &faults.Engine{
		Inner: testEngine(uint64(seed) + 5),
		Plan:  faults.DefaultPlan(3, 0.5, start, uint64(seed)+17),
	}
	f := testFeeder(t, eng, world, cfg)

	refEvents, refFP := runStream(t, t.TempDir(), world, f, cfg)

	gcfg := cfg
	gcfg.SegmentBytes = 16 << 10
	gcfg.CompactBytes = 128 << 10
	gcfg.DiskBudget = 8 << 20

	rng := rand.New(rand.NewSource(seed))
	dir := t.TempDir()
	ctx := context.Background()
	total := f.Rounds()
	sheds, stillborn, incarnations := 0, 0, 0
	for attempt := 0; attempt < 48; attempt++ {
		fcfg := gcfg
		plan := faults.FSPlan{WriteBudget: 8<<10 + rng.Int63n(96<<10)}
		if rng.Intn(3) == 0 {
			plan.FailSyncAt = 1 + rng.Int63n(24)
		}
		if rng.Intn(4) == 0 {
			plan.FailRenameAt = 1 + rng.Int63n(4)
		}
		fcfg.FS = &faults.FS{Plan: plan}
		d, err := Open(dir, world, f.Observers(), fcfg)
		if err != nil {
			// The open itself died under injected faults — a crash during
			// replay or journal setup. The directory must still open.
			stillborn++
			continue
		}
		d.Start()
		incarnations++
		evs := d.Events()
		if len(evs) > len(refEvents) {
			t.Fatalf("incarnation %d: %d events journaled, reference has %d", incarnations, len(evs), len(refEvents))
		}
		for i := range evs {
			if evs[i] != refEvents[i] {
				t.Fatalf("incarnation %d: journaled event %d diverges from reference", incarnations, i)
			}
		}
		next := d.NextIngestSeq()
		if next >= total {
			d.Abort()
			break
		}
		target := next + 1 + rng.Int63n(total-next)
		for seq := next; seq < target; seq++ {
			r, err := f.Round(seq)
			if err != nil {
				t.Fatal(err)
			}
			if err := d.Ingest(ctx, r); err != nil {
				// Out of injected disk: a pressure shed leaves the daemon
				// alive with journals intact; any other injected failure
				// (sync, rename, a write that killed the analysis loop)
				// is a crash. Both end this incarnation.
				if errors.Is(err, ErrDiskPressure) {
					sheds++
					if st := d.Stats(); st.PressureSheds == 0 || st.LastStorageErr == "" {
						t.Fatalf("shed round not surfaced in stats: %+v", st)
					}
				}
				break
			}
		}
		if st := d.Stats(); gcfg.DiskBudget > 0 && st.DiskBytes > gcfg.DiskBudget {
			t.Fatalf("incarnation %d: journals hold %d bytes, budget %d", incarnations, st.DiskBytes, gcfg.DiskBudget)
		}
		d.Abort()
	}
	if sheds == 0 {
		t.Fatalf("the write budgets never bit: no round was shed with ErrDiskPressure (%d incarnations, %d stillborn)", incarnations, stillborn)
	}

	// The clean final life: same directory, real filesystem, governance
	// still on. Whatever (possibly torn) journal prefix the faulted lives
	// left must replay and stream to the reference result.
	for {
		d, err := Open(dir, world, f.Observers(), gcfg)
		if err != nil {
			t.Fatalf("clean reopen after pressure: %v", err)
		}
		d.Start()
		incarnations++
		evs := d.Events()
		if len(evs) > len(refEvents) {
			t.Fatalf("clean reopen: %d events journaled, reference has %d", len(evs), len(refEvents))
		}
		for i := range evs {
			if evs[i] != refEvents[i] {
				t.Fatalf("clean reopen: journaled event %d diverges from reference", i)
			}
		}
		next := d.NextIngestSeq()
		if next < total {
			for seq := next; seq < total; seq++ {
				r, err := f.Round(seq)
				if err != nil {
					t.Fatal(err)
				}
				if err := d.Ingest(ctx, r); err != nil {
					t.Fatalf("clean resume: ingest round %d: %v", seq, err)
				}
			}
		}
		if err := d.Drain(ctx); err != nil {
			t.Fatal(err)
		}
		res, err := d.Result()
		if err != nil {
			t.Fatal(err)
		}
		fp, err := res.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		evs = d.Events()
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		if fp != refFP {
			t.Errorf("post-pressure fingerprint %s != reference %s", fp[:16], refFP[:16])
		}
		if len(evs) != len(refEvents) {
			t.Fatalf("post-pressure run journaled %d events, reference %d", len(evs), len(refEvents))
		}
		for i := range evs {
			if evs[i] != refEvents[i] {
				t.Errorf("post-pressure event %d diverges from reference", i)
			}
		}
		checkEventInvariants(t, evs, cfg)
		return
	}
}

// TestChaosSoakDiskPressure is the deterministic CI disk-pressure soak:
// fixed seeds, small worlds, every early incarnation on a fault-injected
// filesystem (`make soak` runs this alongside TestChaosSoakShort).
func TestChaosSoakDiskPressure(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short")
	}
	for _, seed := range []int64{1, 2} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			soakDiskPressure(t, seed, 4)
		})
	}
}

// TestChaosSoakNightlyDiskPressure is the randomized disk-pressure soak,
// gated and seeded like TestChaosSoakNightly (the nightly workflow's
// -run pattern matches both); a failing seed lands in
// soak-failure-seed.txt for exact replay.
func TestChaosSoakNightlyDiskPressure(t *testing.T) {
	if os.Getenv("SOAK_NIGHTLY") == "" {
		t.Skip("set SOAK_NIGHTLY=1 to run the long randomized soak")
	}
	seed := time.Now().UnixNano()
	if s := os.Getenv("SOAK_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("SOAK_SEED %q: %v", s, err)
		}
		seed = v
	}
	t.Logf("nightly disk-pressure soak base seed %d (replay with SOAK_SEED=%d)", seed, seed)
	for i := int64(0); i < 4; i++ {
		i := i
		t.Run(fmt.Sprintf("seed%d", seed+i), func(t *testing.T) {
			soakDiskPressure(t, seed+i, 6)
		})
	}
	if t.Failed() {
		msg := fmt.Sprintf("SOAK_SEED=%d\n", seed)
		if err := os.WriteFile("soak-failure-seed.txt", []byte(msg), 0o644); err != nil {
			t.Logf("recording failing seed: %v", err)
		}
	}
}
