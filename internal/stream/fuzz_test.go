package stream

// FuzzStreamFrameDecode holds the stream WAL's open path to the same
// contract as the checkpoint journal's: arbitrary bytes on disk may fail
// to replay, but they must never panic, and whatever opens must be usable.

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/diurnalnet/diurnal/internal/core"
	"github.com/diurnalnet/diurnal/internal/netsim"
	"github.com/diurnalnet/diurnal/internal/probe"
	"github.com/diurnalnet/diurnal/internal/storage"
)

// fuzzWALBytes builds a small valid WAL (header, one round, one event) to
// seed the corpus with real frame bytes.
func fuzzWALBytes(f *testing.F) []byte {
	f.Helper()
	dir := f.TempDir()
	w, err := openWAL(storage.OS, dir, "seed", []byte("fuzz-sig"), 0, func(decodedFrame) error { return nil })
	if err != nil {
		f.Fatal(err)
	}
	r := &Round{
		Seq: 0, Start: 0, End: 86400,
		Blocks: [][][]probe.Record{{{{T: 60, Addr: 3, Up: true}, {T: 120, Addr: 4}}}},
	}
	if err := w.append(frameRound, r); err != nil {
		f.Fatal(err)
	}
	ev := Event{Seq: 0, ID: netsim.BlockID(7), Change: core.Change{Point: 86400, Dir: 1}, EvidenceSeq: -1}
	if err := w.append(frameEvent, ev); err != nil {
		f.Fatal(err)
	}
	if err := w.close(true); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "seed-00000001.wal"))
	if err != nil {
		f.Fatal(err)
	}
	return data
}

func FuzzStreamFrameDecode(f *testing.F) {
	seed := fuzzWALBytes(f)
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{'S'})
	f.Add([]byte{'R', 0xff})
	f.Add([]byte{16, 0, 0, 0, 'E', 1, 2, 3})
	if len(seed) > 8 {
		f.Add(seed[:len(seed)/2])
		f.Add(seed[:len(seed)-3])
		flipped := append([]byte(nil), seed...)
		flipped[len(flipped)/3] ^= 0x40
		f.Add(flipped)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// Layer 1: the frame decoder on a raw payload — errors fine,
		// panics not.
		_, _ = decodeStreamFrame(data)

		// Layer 2: the full WAL open — legacy adoption, replay, signature
		// check, torn-tail truncation — over the bytes as a
		// pre-segmentation journal file.
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "fuzz.wal"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := openWAL(storage.OS, dir, "fuzz", []byte("fuzz-sig"), 0, func(decodedFrame) error { return nil })
		if err != nil {
			return
		}
		// A WAL that opened must append and close cleanly.
		if err := w.append(frameEvent, Event{}); err != nil {
			t.Fatalf("append to opened WAL: %v", err)
		}
		if err := w.close(false); err != nil {
			t.Fatalf("closing opened WAL: %v", err)
		}
	})
}
