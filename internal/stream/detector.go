package stream

// The streaming detector: pure, deterministic state evolution with no
// I/O. The daemon (and its crash/watchdog recovery) replays rounds
// through this code; determinism here is what makes the WAL the only
// durable state the daemon needs.

import (
	"fmt"
	"math"
	"sort"

	"github.com/diurnalnet/diurnal/internal/changepoint"
	"github.com/diurnalnet/diurnal/internal/core"
	"github.com/diurnalnet/diurnal/internal/dataset"
	"github.com/diurnalnet/diurnal/internal/dsp"
	"github.com/diurnalnet/diurnal/internal/geo"
	"github.com/diurnalnet/diurnal/internal/integrity"
	"github.com/diurnalnet/diurnal/internal/netsim"
	"github.com/diurnalnet/diurnal/internal/probe"
	"github.com/diurnalnet/diurnal/internal/stl"
)

// slidingWindowHours is the sliding-DFT window: one week of hourly
// samples, matching the weekly STL period.
const slidingWindowHours = 7 * 24

// matchSlopDays is how far two changes' points may sit apart while still
// describing the same underlying change across refreshes.
const matchSlopDays = 2

// evidencePoint records one online-CUSUM alarm on the settled trend.
type evidencePoint struct {
	t   int64 // wall-clock time of the alarm sample
	seq int64 // round seq of the refresh that fed it
	dir changepoint.Direction
}

// candidate tracks one potential change across refreshes.
type candidate struct {
	change       core.Change
	firstSeenSeq int64 // round seq starting the current presence streak
	seenStreak   int64 // consecutive refreshes present (current streak)
	lastRefresh  int64 // refresh counter when last present
	eligibleSeq  int64 // round seq when the stability guard first held; -1 before
	emitted      bool
}

// blockState is one block's streaming detector state.
type blockState struct {
	id    netsim.BlockID
	place geo.Placement
	eb    []int

	acc [][]probe.Record // accumulated per-observer streams (never mutated by analysis)

	sliding *dsp.SlidingDiurnal

	window    stl.Window
	online    *changepoint.Online
	onlineFed int
	normMean  float64
	normStd   float64
	frozen    bool
	evidence  []evidencePoint

	cands []*candidate
	last  *core.BlockAnalysis
}

// detector evolves a whole world's streaming state round by round.
type detector struct {
	cfg       Config // defaulted + validated
	obsCount  int
	blocks    []*blockState
	sc        *core.Scratch
	copyBufs  [][]probe.Record
	integ     *integrityAgg // nil unless Core.Integrity
	processed int64         // rounds fully processed
	refreshes int64
	blockErrs int64
	nextEvent int64
}

// integrityAgg accumulates the per-round firewall verdicts: the detector
// gates each round's per-block streams before they reach the
// accumulator, so a lying observer never contaminates a refresh's merge,
// and the final report attributes who was gated and why. Replay rebuilds
// the same aggregates — Check is pure and rounds are replayed in order.
type integrityAgg struct {
	matches, compares []int64
	gatedRounds       []int64
	// first maps (block, observer) to the first gate reason seen, so the
	// report carries one attributed verdict per gated stream rather than
	// one per round.
	first map[[2]int]string
}

// gate judges one block's round streams and returns the streams with the
// gated ones dropped. perObs is never mutated: a copy-on-write slice
// protects the caller's round (it may still be journaled or retried).
func (g *integrityAgg) gate(b int, bs *blockState, perObs [][]probe.Record, start, end int64) [][]probe.Record {
	verdicts := integrity.Check(integrity.Config{}, perObs, bs.eb, start, end)
	kept, copied := perObs, false
	for oi := range verdicts {
		v := &verdicts[oi]
		g.matches[oi] += int64(v.Matches)
		g.compares[oi] += int64(v.Comparisons)
		if !v.Gated {
			continue
		}
		if !copied {
			kept, copied = append([][]probe.Record(nil), perObs...), true
		}
		kept[oi] = nil
		g.gatedRounds[oi]++
		key := [2]int{b, oi}
		if _, ok := g.first[key]; !ok {
			g.first[key] = v.Reason
		}
	}
	return kept
}

func newDetector(cfg Config, world []*dataset.WorldBlock, obsCount int) *detector {
	d := &detector{cfg: cfg, obsCount: obsCount, sc: core.NewScratch()}
	if cfg.Core.Integrity {
		d.integ = &integrityAgg{
			matches:     make([]int64, obsCount),
			compares:    make([]int64, obsCount),
			gatedRounds: make([]int64, obsCount),
			first:       map[[2]int]string{},
		}
	}
	bins := dsp.DiurnalBins(slidingWindowHours, 3600, float64(netsim.SecondsPerDay), 3)
	for _, wb := range world {
		bs := &blockState{
			id:      wb.ID,
			place:   wb.Place,
			eb:      wb.EverActive(),
			acc:     make([][]probe.Record, obsCount),
			sliding: dsp.NewSlidingDiurnal(slidingWindowHours, bins, 0),
		}
		bs.window.Eps = cfg.TrendEps
		bs.window.Lag = cfg.SettleLag
		d.blocks = append(d.blocks, bs)
	}
	return d
}

// validateRound checks a round's shape against the stream position.
func (d *detector) validateRound(r *Round) error {
	if r.Seq != d.processed {
		return fmt.Errorf("stream: round seq %d, expected %d (rounds are ingested strictly in order)", r.Seq, d.processed)
	}
	start, end := d.cfg.roundWindow(r.Seq)
	if r.Start != start || r.End != end {
		return fmt.Errorf("stream: round %d window [%d,%d), expected [%d,%d)", r.Seq, r.Start, r.End, start, end)
	}
	if len(r.Blocks) != len(d.blocks) {
		return fmt.Errorf("stream: round %d covers %d blocks, world has %d", r.Seq, len(r.Blocks), len(d.blocks))
	}
	for b, perObs := range r.Blocks {
		if len(perObs) != d.obsCount {
			return fmt.Errorf("stream: round %d block %d has %d observer streams, expected %d", r.Seq, b, len(perObs), d.obsCount)
		}
	}
	return nil
}

// ingest processes one round: accumulate records, advance the sliding
// diurnal scores, and — when a refresh is due — run the shared analysis
// kernel and the emission logic. Returned events are in emission order
// with their sequence numbers assigned; journaling them is the caller's
// job. The round's record slices are retained.
func (d *detector) ingest(r *Round) ([]Event, error) {
	if err := d.validateRound(r); err != nil {
		return nil, err
	}
	for b, perObs := range r.Blocks {
		bs := d.blocks[b]
		if d.integ != nil {
			perObs = d.integ.gate(b, bs, perObs, r.Start, r.End)
		}
		for o, recs := range perObs {
			bs.acc[o] = append(bs.acc[o], recs...)
		}
		bs.pushHours(r.Start, r.End, perObs)
	}
	d.processed++
	var events []Event
	final := d.processed == d.cfg.rounds()
	if final || d.processed%int64(d.cfg.RefreshEvery) == 0 {
		evs, err := d.refresh(r.End, r.Seq, final)
		if err != nil {
			return nil, err
		}
		events = evs
	}
	return events, nil
}

// pushHours feeds the block's hourly distinct-responder counts — a cheap
// incremental proxy for the active-address series — into the sliding DFT,
// one pass over the round's records.
func (bs *blockState) pushHours(start, end int64, perObs [][]probe.Record) {
	hours := int((end - start) / 3600)
	if hours <= 0 {
		return
	}
	counts := make([]int16, hours)
	seen := make([]map[uint8]bool, hours)
	for _, recs := range perObs {
		for _, rec := range recs {
			if !rec.Up || rec.T < start || rec.T >= end {
				continue
			}
			h := int((rec.T - start) / 3600)
			if seen[h] == nil {
				seen[h] = make(map[uint8]bool, 8)
			}
			if !seen[h][rec.Addr] {
				seen[h][rec.Addr] = true
				counts[h]++
			}
		}
	}
	for _, c := range counts {
		bs.sliding.Push(float64(c))
	}
}

// refresh runs the shared analysis kernel over every block's accumulated
// streams and applies the candidate-tracking and emission rules.
func (d *detector) refresh(frontier, seq int64, final bool) ([]Event, error) {
	c := d.cfg.Core
	// Gate: classification needs the full baseline and STL needs two
	// weekly periods; refreshing earlier would classify on garbage.
	if !final {
		if c.BaselineEnd != 0 && frontier < c.BaselineEnd {
			return nil, nil
		}
		if frontier-c.AnalysisStart < 2*7*netsim.SecondsPerDay {
			return nil, nil
		}
	}
	d.refreshes++
	var events []Event
	for b, bs := range d.blocks {
		analysis, err := d.analyzeBlock(bs)
		if err != nil {
			d.blockErrs++
			continue
		}
		bs.last = analysis
		d.observeEvidence(bs, analysis, seq)
		d.trackCandidates(bs, analysis, seq)
		events = append(events, d.emit(b, bs, frontier, seq, final)...)
	}
	return events, nil
}

// analyzeBlock runs the batch kernel over a copy of the accumulated
// streams. The copy matters: the kernel sanitizes and repairs in place,
// and those edits are functions of the data seen *so far* — letting them
// leak into the accumulator would make later refreshes diverge from what
// a batch run over the full window computes.
func (d *detector) analyzeBlock(bs *blockState) (*core.BlockAnalysis, error) {
	for len(d.copyBufs) < len(bs.acc) {
		d.copyBufs = append(d.copyBufs, nil)
	}
	bufs := d.copyBufs[:len(bs.acc)]
	for i, stream := range bs.acc {
		bufs[i] = append(bufs[i][:0], stream...)
	}
	return d.cfg.Core.AnalyzeCollectedScratch(bufs, bs.eb, d.sc)
}

// observeEvidence advances the settled-prefix online CUSUM: trend samples
// that have stopped moving between refreshes are normalized against the
// frozen baseline statistics and fed to the incremental detector, whose
// alarms timestamp when streaming evidence for a change first sufficed.
func (d *detector) observeEvidence(bs *blockState, a *core.BlockAnalysis, seq int64) {
	if a.Trend == nil {
		return
	}
	settled := bs.window.Observe(a.Trend)
	if !bs.frozen {
		// Freeze normalization on the first refresh (which the refresh
		// gate already holds past the baseline window): the batch z-score
		// over a growing window is a moving target, so the online
		// detector normalizes against fixed baseline statistics instead.
		n := int((d.cfg.Core.BaselineEnd - d.cfg.Core.AnalysisStart) / d.cfg.Core.SampleStep)
		if n <= 0 || n > len(a.Trend) {
			n = len(a.Trend)
		}
		var sum, sumsq float64
		for _, v := range a.Trend[:n] {
			sum += v
			sumsq += v * v
		}
		mean := sum / float64(n)
		variance := sumsq/float64(n) - mean*mean
		std := 1.0
		if variance > 0 {
			// No lower bound: a flat baseline makes any move significant,
			// which is what the batch z-score does too.
			std = math.Sqrt(variance)
		}
		bs.normMean, bs.normStd, bs.frozen = mean, std, true
		o, err := changepoint.NewOnline(d.cfg.Core.CUSUM)
		if err == nil {
			bs.online = o
		}
	}
	if bs.online == nil {
		return
	}
	for i := bs.onlineFed; i < settled && i < len(a.Trend); i++ {
		if bs.online.Update((a.Trend[i] - bs.normMean) / bs.normStd) {
			cs := bs.online.Changes()
			last := cs[len(cs)-1]
			bs.evidence = append(bs.evidence, evidencePoint{
				t:   d.cfg.Core.AnalysisStart + int64(last.Alarm)*d.cfg.Core.SampleStep,
				seq: seq,
				dir: last.Dir,
			})
		}
		bs.onlineFed = i + 1
	}
}

// trackCandidates matches this refresh's full-window detections against
// the tracked candidates. A candidate absent from a refresh has its
// presence streak reset: the confirmation clock restarts, which is what
// makes the emission latency bound provable.
func (d *detector) trackCandidates(bs *blockState, a *core.BlockAnalysis, seq int64) {
	slop := int64(matchSlopDays) * netsim.SecondsPerDay
	for _, ch := range a.Changes {
		var found *candidate
		for _, cand := range bs.cands {
			if cand.change.Dir == ch.Dir && abs64(cand.change.Point-ch.Point) <= slop {
				found = cand
				break
			}
		}
		if found == nil {
			found = &candidate{firstSeenSeq: seq, eligibleSeq: -1}
			bs.cands = append(bs.cands, found)
		}
		if found.lastRefresh != d.refreshes-1 || found.seenStreak == 0 {
			// Streak broken (or new): restart the confirmation clock.
			found.firstSeenSeq = seq
			found.seenStreak = 0
		}
		found.change = ch
		found.seenStreak++
		found.lastRefresh = d.refreshes
	}
}

// emit applies the emission rule to every tracked candidate of one block.
//
// A candidate is emitted at the first refresh where it (a) is present in
// the current full-window detection, (b) has been present for
// ConfirmRefreshes consecutive refreshes, and (c) is *stable*: the data
// frontier is past every horizon that could still retract it — the
// outage-pair window past its alarm (a later recovery would pair-filter
// it away) and the boundary guard past its end (it can no longer be an
// STL edge artifact). The final refresh flushes every candidate present
// in the final analysis, so the emitted set converges exactly to the
// batch verdict.
func (d *detector) emit(b int, bs *blockState, frontier, seq int64, final bool) []Event {
	day := int64(netsim.SecondsPerDay)
	var out []Event
	for _, cand := range bs.cands {
		if cand.emitted {
			continue
		}
		present := cand.lastRefresh == d.refreshes
		if !present {
			continue
		}
		horizon := cand.change.End
		if h := cand.change.Alarm + int64(d.cfg.Core.OutageGapDays)*day; h > horizon {
			horizon = h
		}
		horizon += int64(d.cfg.Core.BoundaryGuardDays+1) * day
		if cand.eligibleSeq < 0 && frontier >= horizon {
			cand.eligibleSeq = seq
		}
		confirmed := cand.seenStreak >= int64(d.cfg.ConfirmRefreshes)
		if !final && (!confirmed || cand.eligibleSeq < 0) {
			continue
		}
		if cand.eligibleSeq < 0 {
			cand.eligibleSeq = seq
		}
		cand.emitted = true
		ev := Event{
			Seq:          d.nextEvent,
			Block:        b,
			ID:           bs.id,
			Change:       cand.change,
			FirstSeenSeq: cand.firstSeenSeq,
			EligibleSeq:  cand.eligibleSeq,
			EmitSeq:      seq,
			EvidenceSeq:  matchEvidence(bs.evidence, cand.change),
		}
		d.nextEvent++
		out = append(out, ev)
	}
	return out
}

// matchEvidence finds the earliest online-CUSUM alarm attributable to the
// change: same direction, alarm time within the change's span plus a
// day of trend smearing on each side. Returns -1 when streaming evidence
// never fired (edge-of-window changes settle only at the final refresh).
func matchEvidence(evidence []evidencePoint, ch core.Change) int64 {
	day := int64(netsim.SecondsPerDay)
	for _, ep := range evidence {
		if ep.dir == ch.Dir && ep.t >= ch.Start-day && ep.t <= ch.End+day {
			return ep.seq
		}
	}
	return -1
}

// result assembles a WorldResult from the final refresh's analyses,
// aggregated exactly as the batch pipeline aggregates.
func (d *detector) result() (*core.WorldResult, error) {
	if d.processed != d.cfg.rounds() {
		return nil, fmt.Errorf("stream: %d of %d rounds processed; the stream is not complete", d.processed, d.cfg.rounds())
	}
	wr := &core.WorldResult{Report: &core.RunReport{}}
	for _, bs := range d.blocks {
		wr.Blocks = append(wr.Blocks, core.BlockOutcome{ID: bs.id, Place: bs.place, Analysis: bs.last})
	}
	if d.integ != nil {
		d.integ.report(wr.Report, d.blocks)
	}
	wr.Reaggregate()
	return wr, nil
}

// report fills the run report's firewall fields from the round-by-round
// aggregates, mirroring the batch pipeline's attribution: gated
// observers ascending, per-observer aggregate agreement, and one verdict
// per gated (block, observer) pair in world order.
func (g *integrityAgg) report(rep *core.RunReport, blocks []*blockState) {
	for oi, n := range g.gatedRounds {
		if n > 0 {
			rep.GatedStreams = append(rep.GatedStreams, oi)
		}
	}
	if len(g.compares) > 0 {
		rep.AgreementScores = make([]float64, len(g.compares))
		for oi := range g.compares {
			if g.compares[oi] == 0 {
				rep.AgreementScores[oi] = 1
			} else {
				rep.AgreementScores[oi] = float64(g.matches[oi]) / float64(g.compares[oi])
			}
		}
	}
	keys := make([][2]int, 0, len(g.first))
	for k := range g.first {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		rep.IntegrityVerdicts = append(rep.IntegrityVerdicts, core.IntegrityVerdict{
			Index: k[0], Block: blocks[k[0]].id, Observer: k[1], Reason: g.first[k],
		})
	}
}

// scores snapshots every block's sliding diurnal score.
func (d *detector) scores() []float64 {
	out := make([]float64, len(d.blocks))
	for i, bs := range d.blocks {
		out[i] = bs.sliding.Score()
	}
	return out
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
