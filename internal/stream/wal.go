package stream

// Durable journals for the daemon, built on the checkpoint journal's
// CRC-framed record envelope (core.AppendFrame / core.WalkFrames) and
// segmented so a daemon can run forever on a bounded disk. Each journal
// ("rounds", "events") is a manifest plus one or more segment files in
// the daemon directory:
//
//	rounds.wal.manifest — JSON list of segment files, in replay order
//	rounds-00000001.wal — oldest segment
//	rounds-00000002.wal — ... newest segment; appends go here
//
// Every segment opens with a header frame binding it to
// core.RunSignature(config, world), so a WAL from a different run or
// world is rejected instead of silently replayed into foreign state.
// Frames are a tag byte followed by a gob payload; a single write() per
// append makes a frame durable across process death the moment the call
// returns, and a torn tail from a crash mid-append is truncated on open
// (only in the newest segment — a torn frame in an older, sealed
// segment means real corruption and fails the open).
//
// Rotation seals the tail once it exceeds the segment threshold: the
// old tail is fsynced, a fresh segment (header only) is created and
// fsynced, and the manifest is atomically swapped to include it. Frames
// are appended to the new segment only after the swap, so every acked
// frame lives in a manifest-listed segment at every kill point; a crash
// between creation and swap leaves an orphan holding nothing but a
// header, which the next open deletes.
//
// Compaction rewrites the whole journal as one checkpoint-anchored base
// segment — a 'K' frame re-encoding every journaled round losslessly
// (or a 'P' frame acknowledging the replay-regenerable event prefix) —
// then swaps the manifest to list only the base and deletes the
// subsumed predecessors. Old segments are deleted strictly after the
// base is fsynced and the manifest swapped, so a torn compaction leaves
// either the old journal intact or the new base live, never neither;
// whichever side lost the race is unreferenced and swept as an orphan
// on the next open. The 'K' re-encoding reconstructs bit-identical
// rounds, so deterministic replay — and with it kill-and-resume event
// identity — is preserved across every rotation and compaction
// boundary.
//
// Pre-segmentation directories hold a bare rounds.wal/events.wal; open
// adopts such a file as the first manifest-listed segment.

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/diurnalnet/diurnal/internal/core"
	"github.com/diurnalnet/diurnal/internal/probe"
	"github.com/diurnalnet/diurnal/internal/storage"
)

// Stream-frame payload tags.
const (
	frameStreamHeader  = 'S'
	frameRound         = 'R'
	frameEvent         = 'E'
	frameCompactRounds = 'K' // base segment: every round, re-encoded losslessly
	frameEventsAck     = 'P' // base segment: count of replay-regenerable events
)

// frameOverhead is the envelope cost per frame: u32 length + u32 CRC.
const frameOverhead = 8

// streamHeader binds a WAL segment to one (config, world) pair.
type streamHeader struct {
	Signature []byte
}

// eventsAck is the 'P' compaction payload: the first Count journaled
// events were compacted away; deterministic replay of the round WAL
// regenerates them exactly.
type eventsAck struct {
	Count int64
}

// compactBase is the 'K' compaction payload: every journaled round,
// re-encoded columnarly per (block, observer) stream. Data is the
// delta-varint packing of the stream's records across all rounds; Cuts
// holds Rounds+1 record-index offsets, so round s owns records
// [Cuts[s], Cuts[s+1]). Round windows are not stored — they are derived
// from Config.roundWindow, the same rule that validated them at ingest.
type compactBase struct {
	Rounds int64
	Blocks []compactBlock
}

type compactBlock struct {
	Obs []compactStream
}

type compactStream struct {
	Data []byte
	Cuts []int64
}

// packRecords appends recs to the delta-varint packing in dst. prev is
// the running previous timestamp (deltas may be negative; the dataset
// store's strictly-ordered codec is deliberately not reused here
// because WAL rounds carry raw observer output).
func packRecords(dst []byte, recs []probe.Record, prev int64) ([]byte, int64) {
	for _, r := range recs {
		dst = binary.AppendVarint(dst, r.T-prev)
		prev = r.T
		up := byte(0)
		if r.Up {
			up = 1
		}
		dst = append(dst, r.Addr, up)
	}
	return dst, prev
}

// unpackRecords decodes exactly n packed records and requires data to
// hold nothing else.
func unpackRecords(data []byte, n int64) ([]probe.Record, error) {
	recs := make([]probe.Record, 0, n)
	var prev int64
	for i := int64(0); i < n; i++ {
		delta, k := binary.Varint(data)
		if k <= 0 || len(data) < k+2 {
			return nil, fmt.Errorf("stream: compact base record %d truncated", i)
		}
		prev += delta
		recs = append(recs, probe.Record{T: prev, Addr: data[k], Up: data[k+1] != 0})
		data = data[k+2:]
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("stream: compact base has %d trailing bytes after %d records", len(data), n)
	}
	return recs, nil
}

// buildCompactBase re-encodes rounds (which must be the complete
// journal, seqs 0..len-1) as a base-segment payload.
func buildCompactBase(rounds []*Round, blocks, obsCount int) (*compactBase, error) {
	cb := &compactBase{Rounds: int64(len(rounds)), Blocks: make([]compactBlock, blocks)}
	for i, r := range rounds {
		if r.Seq != int64(i) {
			return nil, fmt.Errorf("stream: compacting round seq %d at journal position %d", r.Seq, i)
		}
	}
	for b := range cb.Blocks {
		cb.Blocks[b].Obs = make([]compactStream, obsCount)
		for o := 0; o < obsCount; o++ {
			cuts := make([]int64, 1, len(rounds)+1)
			var data []byte
			var prev, count int64
			for _, r := range rounds {
				recs := r.Blocks[b][o]
				data, prev = packRecords(data, recs, prev)
				count += int64(len(recs))
				cuts = append(cuts, count)
			}
			cb.Blocks[b].Obs[o] = compactStream{Data: data, Cuts: cuts}
		}
	}
	return cb, nil
}

// expandCompactBase reconstructs the journaled rounds from a base
// payload, bit-identical to the originals.
func expandCompactBase(cb *compactBase, cfg Config, blocks, obsCount int) ([]*Round, error) {
	if cb.Rounds < 0 || len(cb.Blocks) != blocks {
		return nil, fmt.Errorf("stream: compact base covers %d blocks over %d rounds, world has %d blocks", len(cb.Blocks), cb.Rounds, blocks)
	}
	rounds := make([]*Round, cb.Rounds)
	for s := range rounds {
		start, end := cfg.roundWindow(int64(s))
		perBlock := make([][][]probe.Record, blocks)
		for b := range perBlock {
			perBlock[b] = make([][]probe.Record, obsCount)
		}
		rounds[s] = &Round{Seq: int64(s), Start: start, End: end, Blocks: perBlock}
	}
	for b := range cb.Blocks {
		if len(cb.Blocks[b].Obs) != obsCount {
			return nil, fmt.Errorf("stream: compact base block %d has %d observer streams, expected %d", b, len(cb.Blocks[b].Obs), obsCount)
		}
		for o, cs := range cb.Blocks[b].Obs {
			if int64(len(cs.Cuts)) != cb.Rounds+1 || (len(cs.Cuts) > 0 && cs.Cuts[0] != 0) {
				return nil, fmt.Errorf("stream: compact base block %d obs %d has %d cuts for %d rounds", b, o, len(cs.Cuts), cb.Rounds)
			}
			total := cs.Cuts[len(cs.Cuts)-1]
			all, err := unpackRecords(cs.Data, total)
			if err != nil {
				return nil, err
			}
			for s := range rounds {
				lo, hi := cs.Cuts[s], cs.Cuts[s+1]
				if lo < 0 || hi < lo || hi > total {
					return nil, fmt.Errorf("stream: compact base block %d obs %d cuts not monotone at round %d", b, o, s)
				}
				rounds[s].Blocks[b][o] = all[lo:hi:hi]
			}
		}
	}
	return rounds, nil
}

// decodedFrame is one decoded stream frame: exactly one of Sig, Round,
// Event, Base, Ack is set, per Tag.
type decodedFrame struct {
	Tag   byte
	Sig   []byte
	Round *Round
	Event *Event
	Base  *compactBase
	Ack   *eventsAck
}

// decodeStreamFrame decodes one stream-frame payload. It never panics on
// corrupt input (FuzzStreamFrameDecode holds it to that); errors mark the
// frame — and with it the rest of the file — as torn tail.
func decodeStreamFrame(payload []byte) (decodedFrame, error) {
	if len(payload) == 0 {
		return decodedFrame{}, fmt.Errorf("stream: empty frame payload")
	}
	df := decodedFrame{Tag: payload[0]}
	dec := gob.NewDecoder(bytes.NewReader(payload[1:]))
	switch df.Tag {
	case frameStreamHeader:
		var h streamHeader
		if err := dec.Decode(&h); err != nil {
			return decodedFrame{}, err
		}
		df.Sig = h.Signature
	case frameRound:
		var r Round
		if err := dec.Decode(&r); err != nil {
			return decodedFrame{}, err
		}
		df.Round = &r
	case frameEvent:
		var e Event
		if err := dec.Decode(&e); err != nil {
			return decodedFrame{}, err
		}
		df.Event = &e
	case frameCompactRounds:
		var cb compactBase
		if err := dec.Decode(&cb); err != nil {
			return decodedFrame{}, err
		}
		df.Base = &cb
	case frameEventsAck:
		var a eventsAck
		if err := dec.Decode(&a); err != nil {
			return decodedFrame{}, err
		}
		df.Ack = &a
	default:
		return decodedFrame{}, fmt.Errorf("stream: unknown frame tag %q", df.Tag)
	}
	return df, nil
}

// encodeStreamFrame encodes one tagged gob payload (without the CRC
// envelope).
func encodeStreamFrame(tag byte, v interface{}) ([]byte, error) {
	var payload bytes.Buffer
	payload.WriteByte(tag)
	if err := gob.NewEncoder(&payload).Encode(v); err != nil {
		return nil, fmt.Errorf("stream: encoding %q frame: %w", tag, err)
	}
	return payload.Bytes(), nil
}

// walManifest is the JSON manifest listing a journal's segments in
// replay order. It is swapped atomically (temp + rename + parent-dir
// fsync), so at every kill point exactly one consistent segment list is
// live.
type walManifest struct {
	Segments []string `json:"segments"`
}

// wal is one open segmented journal. It is not internally locked; the
// daemon serializes all access under its own mutex.
type wal struct {
	fsys     storage.FS
	dir      string
	base     string // journal name: "rounds" or "events"
	sig      []byte
	segBytes int64 // rotation threshold (0: never rotate)

	segs   []string // manifest order; appends go to the last entry
	segn   int      // next segment number
	f      storage.File
	size   int64 // bytes in the open tail segment
	total  int64 // bytes across every manifest-listed segment
	hdrLen int64 // bytes of the signature header frame
	buf    []byte

	rotations   int64
	compactions int64

	// failed, once set, poisons the journal: a manifest swap ended in an
	// ambiguous state (the rename may have landed without its directory
	// fsync), so the on-disk segment set is unknowable from here. Every
	// later append refuses with this error; only a reopen, which re-reads
	// the manifest, may write again.
	failed error
}

func (w *wal) legacyName() string   { return w.base + ".wal" }
func (w *wal) manifestName() string { return w.base + ".wal.manifest" }
func (w *wal) segName(n int) string { return fmt.Sprintf("%s-%08d.wal", w.base, n) }

// parseSegName reports whether name is one of this journal's numbered
// segments.
func (w *wal) parseSegName(name string) (int, bool) {
	var n int
	if _, err := fmt.Sscanf(name, w.base+"-%08d.wal", &n); err != nil {
		return 0, false
	}
	if w.segName(n) != name {
		return 0, false
	}
	return n, true
}

// openWAL opens (or creates) a segmented journal rooted at dir, replays
// its intact frames through fn in manifest order, truncates a torn tail
// in the newest segment, deletes orphaned segments and temp files left
// by a killed rotation or compaction, and verifies — or writes, for
// fresh segments — the signature header.
func openWAL(fsys storage.FS, dir, base string, sig []byte, segBytes int64, fn func(decodedFrame) error) (*wal, error) {
	w := &wal{fsys: fsys, dir: dir, base: base, sig: sig, segBytes: segBytes, segn: 1}
	hdr, err := encodeStreamFrame(frameStreamHeader, streamHeader{Signature: sig})
	if err != nil {
		return nil, err
	}
	w.hdrLen = int64(len(hdr)) + frameOverhead

	manifestPath := filepath.Join(dir, w.manifestName())
	mdata, err := fsys.ReadFile(manifestPath)
	switch {
	case err == nil:
		var m walManifest
		if err := json.Unmarshal(mdata, &m); err != nil {
			return nil, fmt.Errorf("stream: manifest %s is unreadable: %w", manifestPath, err)
		}
		if len(m.Segments) == 0 {
			return nil, fmt.Errorf("stream: manifest %s lists no segments", manifestPath)
		}
		w.segs = m.Segments
	case os.IsNotExist(err):
		// Adopt a pre-segmentation journal as the first segment.
		if _, serr := fsys.Stat(filepath.Join(dir, w.legacyName())); serr == nil {
			w.segs = []string{w.legacyName()}
			if err := w.writeManifest(w.segs); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("stream: reading manifest %s: %w", manifestPath, err)
	}

	if err := w.sweepOrphans(); err != nil {
		return nil, err
	}
	for _, s := range w.segs {
		if n, ok := w.parseSegName(s); ok && n >= w.segn {
			w.segn = n + 1
		}
	}

	if len(w.segs) == 0 {
		name := w.segName(w.segn)
		f, size, err := w.createSegment(name)
		if err != nil {
			return nil, err
		}
		w.segn++
		w.segs = []string{name}
		if err := w.writeManifest(w.segs); err != nil {
			f.Close()
			w.fsys.Remove(filepath.Join(dir, name))
			return nil, err
		}
		w.f, w.size, w.total = f, size, size
		return w, nil
	}

	for i, seg := range w.segs {
		last := i == len(w.segs)-1
		path := filepath.Join(dir, seg)
		data, err := fsys.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("stream: reading WAL segment %s: %w", path, err)
		}
		var fileSig []byte
		var replayErr error
		good := core.WalkFrames(data, func(payload []byte) error {
			df, derr := decodeStreamFrame(payload)
			if derr != nil {
				return derr
			}
			if fileSig == nil {
				if df.Tag != frameStreamHeader {
					replayErr = fmt.Errorf("segment does not start with a signature header")
					return replayErr
				}
				fileSig = df.Sig
				return nil
			}
			if df.Tag == frameStreamHeader {
				replayErr = fmt.Errorf("duplicate signature header mid-segment")
				return replayErr
			}
			if ferr := fn(df); ferr != nil {
				// A frame that checksummed but is semantically impossible
				// (wrong sequence, foreign content) is not a torn tail: the
				// file is from a different or corrupted run. Fail the open.
				replayErr = ferr
				return ferr
			}
			return nil
		})
		if replayErr != nil {
			return nil, fmt.Errorf("stream: %s: %w", path, replayErr)
		}
		if fileSig != nil && !bytes.Equal(fileSig, sig) {
			return nil, fmt.Errorf("stream: %s belongs to a different run (config or world changed); delete the stream directory to start over", path)
		}
		if good < len(data) && !last {
			return nil, fmt.Errorf("stream: sealed segment %s has a torn frame mid-journal; WAL is corrupt (only the newest segment may have a torn tail)", path)
		}
		if !last {
			w.total += int64(len(data))
			continue
		}
		f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
		if err != nil {
			return nil, fmt.Errorf("stream: opening %s: %w", path, err)
		}
		if good < len(data) {
			if err := f.Truncate(int64(good)); err != nil {
				f.Close()
				return nil, fmt.Errorf("stream: truncating torn tail of %s: %w", path, err)
			}
		}
		if _, err := f.Seek(int64(good), 0); err != nil {
			f.Close()
			return nil, err
		}
		w.f = f
		w.size = int64(good)
		w.total += w.size
		if fileSig == nil {
			// Fresh or fully-torn tail: (re)write the signature header.
			if err := w.append(frameStreamHeader, streamHeader{Signature: sig}); err != nil {
				f.Close()
				return nil, err
			}
		}
	}
	return w, nil
}

// sweepOrphans deletes this journal's files that the manifest does not
// reference: segments stranded by a rotation or compaction the kill
// interrupted (nothing acked ever lives in them) and manifest temp
// files. This is the zero-litter guarantee — every open converges the
// directory to exactly the manifest plus its segments.
func (w *wal) sweepOrphans() error {
	ents, err := w.fsys.ReadDir(w.dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("stream: listing %s: %w", w.dir, err)
	}
	listed := make(map[string]bool, len(w.segs))
	for _, s := range w.segs {
		listed[s] = true
	}
	for _, e := range ents {
		name := e.Name()
		if !e.Type().IsRegular() || listed[name] {
			continue
		}
		owns := name == w.legacyName() || strings.HasPrefix(name, w.manifestName()+".tmp")
		if !owns {
			if n, ok := w.parseSegName(name); ok {
				owns = true
				if n >= w.segn {
					w.segn = n + 1
				}
			}
		}
		if owns {
			if err := w.fsys.Remove(filepath.Join(w.dir, name)); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("stream: removing orphaned %s: %w", name, err)
			}
		}
	}
	return nil
}

// createSegment creates a fresh segment holding only the signature
// header and makes it durable (file fsync + parent-dir fsync) so a
// manifest swap may safely reference it.
func (w *wal) createSegment(name string) (storage.File, int64, error) {
	path := filepath.Join(w.dir, name)
	f, err := w.fsys.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
	if err != nil {
		return nil, 0, fmt.Errorf("stream: creating segment %s: %w", path, err)
	}
	fail := func(err error) (storage.File, int64, error) {
		f.Close()
		w.fsys.Remove(path)
		return nil, 0, err
	}
	hdr, err := encodeStreamFrame(frameStreamHeader, streamHeader{Signature: w.sig})
	if err != nil {
		return fail(err)
	}
	frame := core.AppendFrame(nil, hdr)
	if _, err := f.Write(frame); err != nil {
		return fail(fmt.Errorf("stream: writing header of %s: %w", path, err))
	}
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("stream: syncing %s: %w", path, err))
	}
	if err := w.fsys.SyncDir(w.dir); err != nil {
		return fail(fmt.Errorf("stream: syncing %s: %w", w.dir, err))
	}
	return f, int64(len(frame)), nil
}

func (w *wal) writeManifest(segs []string) error {
	data, err := json.Marshal(walManifest{Segments: segs})
	if err != nil {
		return fmt.Errorf("stream: encoding manifest: %w", err)
	}
	if err := storage.WriteBytesAtomic(w.fsys, filepath.Join(w.dir, w.manifestName()), append(data, '\n')); err != nil {
		return fmt.Errorf("stream: swapping manifest: %w", err)
	}
	return nil
}

// swapManifest writes the manifest and, on failure, reports whether the
// new list is nevertheless the one on disk — the atomic write's rename
// can land and only its directory fsync fail afterwards. When landed is
// false the old manifest is still in place and the caller may clean up
// the files only the new one referenced; when landed is true (including
// the unreadable, unknowable case) every file either version references
// must be kept and the journal poisoned.
func (w *wal) swapManifest(segs []string) (landed bool, err error) {
	if err = w.writeManifest(segs); err == nil {
		return true, nil
	}
	data, rerr := w.fsys.ReadFile(filepath.Join(w.dir, w.manifestName()))
	if rerr != nil {
		return true, err // unknowable: assume the swap landed
	}
	var m walManifest
	if json.Unmarshal(data, &m) != nil || len(m.Segments) != len(segs) {
		return false, err
	}
	for i := range segs {
		if m.Segments[i] != segs[i] {
			return false, err
		}
	}
	return true, err
}

// rotate seals the tail segment and opens a fresh one. Appended frames
// land in the new segment only after the manifest references it, so a
// kill anywhere in here loses nothing acked: the worst case is an
// orphan header-only segment, swept on the next open.
func (w *wal) rotate() error {
	if w.failed != nil {
		return w.failed
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("stream: sealing %s: %w", w.segs[len(w.segs)-1], err)
	}
	name := w.segName(w.segn)
	f, size, err := w.createSegment(name)
	if err != nil {
		return err
	}
	segs := append(append(make([]string, 0, len(w.segs)+1), w.segs...), name)
	if landed, err := w.swapManifest(segs); err != nil {
		f.Close()
		if landed {
			// The on-disk manifest may already reference the new segment:
			// keep it, refuse further writes until a reopen re-reads the
			// truth.
			w.failed = err
		} else {
			w.fsys.Remove(filepath.Join(w.dir, name))
		}
		return err
	}
	w.segn++
	w.segs = segs
	w.f.Close()
	w.f = f
	w.size = size
	w.total += size
	w.rotations++
	return nil
}

// compact replaces the whole journal with a single base segment holding
// the given pre-encoded payload frames. The old segments are deleted
// only after the base is fsynced and the manifest swapped; a kill
// before the swap leaves the old journal live and the half-written base
// as an orphan.
func (w *wal) compact(payloads ...[]byte) error {
	if w.failed != nil {
		return w.failed
	}
	name := w.segName(w.segn)
	f, size, err := w.createSegment(name)
	if err != nil {
		return err
	}
	path := filepath.Join(w.dir, name)
	fail := func(err error) error {
		f.Close()
		w.fsys.Remove(path)
		return err
	}
	for _, p := range payloads {
		frame := core.AppendFrame(w.buf[:0], p)
		w.buf = frame
		if _, err := f.Write(frame); err != nil {
			return fail(fmt.Errorf("stream: writing base segment %s: %w", path, err))
		}
		size += int64(len(frame))
	}
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("stream: syncing base segment %s: %w", path, err))
	}
	if landed, err := w.swapManifest([]string{name}); err != nil {
		if landed {
			// The manifest may already point at the base alone: the old
			// segments and the base must all survive, and no further
			// appends may land in a tail the manifest might not list.
			f.Close()
			w.failed = err
			return err
		}
		return fail(err)
	}
	w.segn++
	old := w.segs
	w.segs = []string{name}
	w.f.Close()
	w.f = f
	w.size = size
	w.total = size
	w.compactions++
	for _, s := range old {
		// Best-effort: a failure here only delays reclamation until the
		// next open's orphan sweep.
		w.fsys.Remove(filepath.Join(w.dir, s))
	}
	return nil
}

// replayAll re-reads the journal from disk and feeds every data frame
// through fn — the watchdog's state rebuild and the compactor's round
// collection. A torn tail is tolerated only in the newest segment.
func (w *wal) replayAll(fn func(decodedFrame) error) error {
	for i, seg := range w.segs {
		last := i == len(w.segs)-1
		path := filepath.Join(w.dir, seg)
		data, err := w.fsys.ReadFile(path)
		if err != nil {
			return fmt.Errorf("stream: reading WAL segment %s: %w", path, err)
		}
		sawHeader := false
		var replayErr error
		good := core.WalkFrames(data, func(payload []byte) error {
			df, derr := decodeStreamFrame(payload)
			if derr != nil {
				return derr
			}
			if !sawHeader {
				sawHeader = true
				if df.Tag != frameStreamHeader {
					replayErr = fmt.Errorf("segment does not start with a signature header")
					return replayErr
				}
				return nil
			}
			if ferr := fn(df); ferr != nil {
				replayErr = ferr
				return ferr
			}
			return nil
		})
		if replayErr != nil {
			return fmt.Errorf("stream: %s: %w", path, replayErr)
		}
		if good < len(data) && !last {
			return fmt.Errorf("stream: sealed segment %s has a torn frame mid-journal; WAL is corrupt", path)
		}
	}
	return nil
}

// append journals one tagged gob payload with a single write(),
// rotating to a fresh segment first when the tail is over threshold.
func (w *wal) append(tag byte, v interface{}) error {
	payload, err := encodeStreamFrame(tag, v)
	if err != nil {
		return err
	}
	return w.appendPayload(payload)
}

// appendPayload journals one pre-encoded payload. On a failed or short
// write the tail is truncated back to the last intact frame boundary,
// so an out-of-space append never leaves a torn frame behind the
// daemon's back — the journal stays replayable and the round or event
// simply was not admitted.
func (w *wal) appendPayload(payload []byte) error {
	if w.failed != nil {
		return w.failed
	}
	if w.segBytes > 0 && w.size > w.hdrLen && w.size+int64(len(payload))+frameOverhead > w.segBytes {
		if err := w.rotate(); err != nil {
			return err
		}
	}
	w.buf = core.AppendFrame(w.buf[:0], payload)
	n, err := w.f.Write(w.buf)
	if err != nil {
		if n > 0 {
			if terr := w.f.Truncate(w.size); terr == nil {
				w.f.Seek(w.size, 0)
			}
		}
		return fmt.Errorf("stream: appending to %s: %w", w.segs[len(w.segs)-1], err)
	}
	w.size += int64(len(w.buf))
	w.total += int64(len(w.buf))
	return nil
}

// sync flushes the tail to stable storage (power-loss durability;
// process-death durability needs no sync). Sealed segments were synced
// at rotation.
func (w *wal) sync() error { return w.f.Sync() }

func (w *wal) close(syncFirst bool) error {
	if syncFirst {
		if err := w.f.Sync(); err != nil {
			w.f.Close()
			return err
		}
	}
	return w.f.Close()
}
