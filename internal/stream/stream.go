// Package stream turns the batch analysis pipeline into a long-running
// service: a daemon that ingests probe rounds incrementally, maintains
// per-block sliding-DFT diurnal scores and online CUSUM evidence, and
// emits change events with bounded latency instead of rediscovering the
// quarter retrospectively.
//
// Robustness is the design center. Every ingested round lands in a
// durable CRC-framed WAL (the same record envelope as the checkpoint
// journal) before it is admitted; every emitted event carries a monotonic
// sequence number and is journaled before delivery; and the daemon's only
// recovery mechanism — for SIGKILL, for a wedged analysis loop restarted
// by the watchdog, for plain restarts — is deterministic replay of the
// round WAL, which reconstructs the exact detector state and regenerates
// the exact event sequence. Replayed events must match the journaled
// prefix byte for byte (a mismatch means a foreign or corrupt WAL and
// fails loudly); events the crash cut off are re-derived and appended.
// The result is an exactly-once event log: consumers resume from their
// last sequence number with no duplicates and no gaps.
//
// Analysis itself is shared with the batch driver: each refresh feeds the
// accumulated per-observer streams through core.AnalyzeCollectedScratch,
// the one kernel both drivers use, so a streaming run that has seen a
// block's full window produces bit-identical results to a batch run of
// the same world.
package stream

import (
	"fmt"
	"time"

	"github.com/diurnalnet/diurnal/internal/core"
	"github.com/diurnalnet/diurnal/internal/health"
	"github.com/diurnalnet/diurnal/internal/netsim"
	"github.com/diurnalnet/diurnal/internal/probe"
	"github.com/diurnalnet/diurnal/internal/storage"
)

// Config parameterizes a streaming daemon. Zero fields take defaults.
type Config struct {
	// Core is the shared analysis configuration; AnalysisStart/End bound
	// the stream and BaselineEnd gates the first refresh (classification
	// needs a complete baseline).
	Core core.Config
	// RoundLen is the seconds of data one ingested round covers (default
	// one day). It must be a multiple of 3600 so rounds tile the hourly
	// sliding-score grid.
	RoundLen int64
	// RefreshEvery runs a full trend refresh every N rounds (default 1:
	// every round). Refreshes are where candidates are found, confirmed,
	// and emitted, so this is the latency quantum.
	RefreshEvery int
	// ConfirmRefreshes is how many consecutive refreshes a candidate must
	// survive before emission (default 2). Together with RefreshEvery it
	// bounds detection latency: an event is emitted at most
	// ConfirmRefreshes*RefreshEvery rounds after it is first seen and
	// eligible.
	ConfirmRefreshes int
	// MaxQueue bounds rounds admitted but not yet processed (default 64).
	// Ingest blocks — bounded admission, not unbounded buffering — when
	// the analysis loop falls this far behind.
	MaxQueue int
	// TrendEps is the per-sample settle tolerance for the windowed STL
	// refresh (default 0.05 addresses).
	TrendEps float64
	// SettleLag overrides the settled-frontier guard distance in samples
	// (0: stl.DefaultSettleLag; negative: no guard).
	SettleLag int
	// Watchdog, when positive, bounds how long the analysis loop may go
	// without completing a step before it is declared wedged and
	// restarted from the WAL (state rebuild is the same deterministic
	// replay as crash recovery). Zero disables the watchdog.
	Watchdog time.Duration
	// SegmentBytes is the WAL rotation threshold (default 8 MiB, minimum
	// 4 KiB): once a journal's tail segment exceeds it, the tail is
	// sealed and appends move to a fresh segment, so compaction and
	// retention operate on bounded files.
	SegmentBytes int64
	// CompactBytes, when positive, bounds a journal's total size: when a
	// WAL exceeds it, the journal is rewritten as a single
	// checkpoint-anchored base segment (lossless — replay identity is
	// preserved) and the subsumed segments are deleted. Zero disables
	// size-triggered compaction. Must be at least SegmentBytes.
	CompactBytes int64
	// DiskBudget, when positive, bounds the bytes the daemon's journals
	// may occupy together. When an admission would exceed it even after
	// compaction, Ingest sheds the round with ErrDiskPressure instead of
	// corrupting a WAL; the caller decides whether to retry, alert, or
	// stop. Must be at least SegmentBytes.
	DiskBudget int64
	// FS is the filesystem the journals are written through (default the
	// real filesystem). Tests substitute a faults.FS here to script
	// ENOSPC, short writes, and failed fsyncs.
	FS storage.FS
	// Clock injects time for the watchdog (default wall clock).
	Clock health.Clock
	// OnEvent, when non-nil, is invoked for every event after it is
	// journaled, in sequence order — the live delivery tail. Replay after
	// a restart does not re-deliver journaled events.
	OnEvent func(Event)
}

func (c Config) withDefaults() Config {
	if c.RoundLen == 0 {
		c.RoundLen = netsim.SecondsPerDay
	}
	if c.RefreshEvery == 0 {
		c.RefreshEvery = 1
	}
	if c.ConfirmRefreshes == 0 {
		c.ConfirmRefreshes = 2
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 64
	}
	if c.TrendEps == 0 {
		c.TrendEps = 0.05
	}
	if c.Clock == nil {
		c.Clock = health.System
	}
	if c.SegmentBytes == 0 {
		c.SegmentBytes = 8 << 20
	}
	if c.FS == nil {
		c.FS = storage.OS
	}
	return c
}

func (c Config) validate() error {
	if c.RoundLen <= 0 || c.RoundLen%3600 != 0 {
		return fmt.Errorf("stream: round length %d must be a positive multiple of 3600", c.RoundLen)
	}
	if c.RefreshEvery < 1 {
		return fmt.Errorf("stream: refresh every %d rounds", c.RefreshEvery)
	}
	if c.ConfirmRefreshes < 1 {
		return fmt.Errorf("stream: confirm refreshes %d", c.ConfirmRefreshes)
	}
	if c.MaxQueue < 1 {
		return fmt.Errorf("stream: max queue %d", c.MaxQueue)
	}
	if c.SegmentBytes < 4096 {
		return fmt.Errorf("stream: WAL segment threshold %d bytes (minimum 4096)", c.SegmentBytes)
	}
	if c.CompactBytes < 0 || (c.CompactBytes > 0 && c.CompactBytes < c.SegmentBytes) {
		return fmt.Errorf("stream: WAL compaction threshold %d bytes must be 0 or >= the segment threshold %d", c.CompactBytes, c.SegmentBytes)
	}
	if c.DiskBudget < 0 || (c.DiskBudget > 0 && c.DiskBudget < c.SegmentBytes) {
		return fmt.Errorf("stream: disk budget %d bytes must be 0 or >= the segment threshold %d", c.DiskBudget, c.SegmentBytes)
	}
	return nil
}

// rounds returns how many rounds tile the analysis window.
func (c Config) rounds() int64 {
	span := c.Core.AnalysisEnd - c.Core.AnalysisStart
	return (span + c.RoundLen - 1) / c.RoundLen
}

// roundWindow returns the wall-clock window of round seq.
func (c Config) roundWindow(seq int64) (start, end int64) {
	start = c.Core.AnalysisStart + seq*c.RoundLen
	end = start + c.RoundLen
	if end > c.Core.AnalysisEnd {
		end = c.Core.AnalysisEnd
	}
	return start, end
}

// Round is one ingestion unit: every block's per-observer records for one
// wall-clock slice of the analysis window. Rounds are ingested strictly
// in sequence.
type Round struct {
	// Seq is the round's position in the stream, starting at 0.
	Seq int64
	// Start and End bound the records' timestamps: [Start, End).
	Start, End int64
	// Blocks holds, per world block, per observer, the records observed
	// in the window, in time order.
	Blocks [][][]probe.Record
}

// Event is one detected change, emitted exactly once with a monotonic
// sequence number.
type Event struct {
	// Seq is the event's position in the journaled event log, starting
	// at 0 with no gaps.
	Seq int64
	// Block is the block's index in the world; ID its netsim identity.
	Block int
	ID    netsim.BlockID
	// Change is the detected change as of the emitting refresh.
	Change core.Change
	// FirstSeenSeq is the round sequence of the refresh that first
	// surfaced the candidate; EligibleSeq the round at which the
	// stability guard (boundary + outage-pair horizons past the change)
	// was satisfied; EmitSeq the round whose refresh emitted it. The
	// bounded-latency contract is
	//
	//	EmitSeq - max(FirstSeenSeq, EligibleSeq) <= ConfirmRefreshes*RefreshEvery
	FirstSeenSeq, EligibleSeq, EmitSeq int64
	// EvidenceSeq is the round at which the online CUSUM over the settled
	// trend prefix first alarmed for this change, or -1 when the change
	// was surfaced by the full-window detector alone (evidence near the
	// window edge settles only at the final refresh).
	EvidenceSeq int64
}

// Stats is a point-in-time snapshot of daemon health.
type Stats struct {
	// IngestedRounds and ProcessedRounds count WAL-durable and
	// analysis-complete rounds; the difference is the queue depth.
	IngestedRounds, ProcessedRounds int64
	// Refreshes counts trend refreshes run (across restarts, replayed
	// refreshes included).
	Refreshes int64
	// Events is the journaled event count.
	Events int64
	// Restarts counts watchdog-triggered analysis-loop rebuilds.
	Restarts int64
	// MaxQueueDepth is the high-water mark of admitted-but-unprocessed
	// rounds since open.
	MaxQueueDepth int
	// BlockErrors counts per-block refresh failures (the block is skipped
	// for that refresh, not the stream).
	BlockErrors int64
	// DiurnalScores holds each block's current sliding-DFT diurnal score
	// (zero until the block's hourly window fills).
	DiurnalScores []float64
	// DiskBytes is the bytes the daemon's journals occupy right now;
	// DiskBudget echoes the configured bound (0: unlimited).
	DiskBytes, DiskBudget int64
	// WALSegments counts live segment files across both journals.
	WALSegments int
	// Rotations and Compactions count WAL segment rollovers and
	// base-segment rewrites since open.
	Rotations, Compactions int64
	// PressureSheds counts rounds refused admission because the disk
	// budget was exhausted even after compaction.
	PressureSheds int64
	// LastStorageErr is the most recent storage-plane failure message
	// (shed, failed append, failed compaction), empty if none.
	LastStorageErr string
}
