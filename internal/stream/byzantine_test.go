package stream

// Byzantine soak: one observer lies — not fails — while the daemon
// streams with the integrity firewall armed and is killed at
// seeded-random points. Invariants per seed: the restarted daemon
// journals an exact event prefix of the uninterrupted reference and
// finishes with the identical fingerprint (the firewall's gating is
// deterministic, so it must survive WAL replay), the attacker is gated
// and attributed in the final report, and no honest observer is gated.

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"

	"github.com/diurnalnet/diurnal/internal/core"
	"github.com/diurnalnet/diurnal/internal/dataset"
	"github.com/diurnalnet/diurnal/internal/faults"
	"github.com/diurnalnet/diurnal/internal/probe"
)

const byzObservers = 4

// byzConfig is testConfig with the integrity firewall armed.
func byzConfig() Config {
	cfg := testConfig()
	cfg.Core.Integrity = true
	return cfg
}

func byzEngine(t testing.TB, attack string, seed uint64) core.Prober {
	t.Helper()
	inner := &probe.Engine{Observers: probe.StandardObservers(byzObservers), QuarterSeed: seed + 5}
	plan, err := faults.AttackPlan(byzObservers, attack, 1, seed+17)
	if err != nil {
		t.Fatal(err)
	}
	return &faults.Engine{Inner: inner, Plan: plan}
}

// runStreamResult is runStream keeping the final result for report checks.
func runStreamResult(t testing.TB, dir string, world []*dataset.WorldBlock, f *Feeder, cfg Config) (*core.WorldResult, []Event, string) {
	t.Helper()
	d, err := Open(dir, world, f.Observers(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	ctx := context.Background()
	if err := f.Feed(ctx, d); err != nil {
		t.Fatal(err)
	}
	if err := d.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	res, err := d.Result()
	if err != nil {
		t.Fatal(err)
	}
	fp, err := res.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	evs := d.Events()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	return res, evs, fp
}

// checkByzReport asserts the attacker — and only the attacker — was
// gated and attributed.
func checkByzReport(t *testing.T, rep *core.RunReport, attack string) {
	t.Helper()
	const attacker = byzObservers - 1
	if len(rep.GatedStreams) != 1 || rep.GatedStreams[0] != attacker {
		t.Fatalf("%s: GatedStreams = %v, want [%d]", attack, rep.GatedStreams, attacker)
	}
	if len(rep.IntegrityVerdicts) == 0 {
		t.Fatalf("%s: no integrity verdicts attributed", attack)
	}
	for _, v := range rep.IntegrityVerdicts {
		if v.Observer != attacker {
			t.Errorf("%s: honest observer %d gated (%s)", attack, v.Observer, v.Reason)
		}
		if v.Reason == "" {
			t.Errorf("%s: gated round without a reason", attack)
		}
	}
	if len(rep.AgreementScores) != byzObservers {
		t.Errorf("%s: AgreementScores = %v, want %d entries", attack, rep.AgreementScores, byzObservers)
	}
	if !rep.Degraded() {
		t.Errorf("%s: gated run not degraded", attack)
	}
}

// byzantineSoakOneSeed runs one attacked, firewall-armed world through
// the kill loop, then checks the final report's gating.
func byzantineSoakOneSeed(t *testing.T, seed int64, blocks int, attack string) {
	t.Helper()
	world := testWorld(t, blocks, uint64(seed)*2654435761+1)
	cfg := byzConfig()
	eng := byzEngine(t, attack, uint64(seed))
	f := testFeeder(t, eng, world, cfg)

	ref, refEvents, refFP := runStreamResult(t, t.TempDir(), world, f, cfg)
	checkByzReport(t, ref.Report, attack)
	soakKillLoop(t, seed, world, f, cfg, refEvents, refFP)
}

// TestStreamIntegrityGating covers the daemon's per-round gate without
// kills: armed against an attacker it gates exactly the attacker; armed
// on honest streams it gates nothing and changes nothing (the streamed
// analogue of the batch clean-world parity test).
func TestStreamIntegrityGating(t *testing.T) {
	if testing.Short() {
		t.Skip("streamed integrity runs skipped in -short")
	}
	t.Run("attacked", func(t *testing.T) {
		world := testWorld(t, 4, 11)
		cfg := byzConfig()
		f := testFeeder(t, byzEngine(t, "timelie", 3), world, cfg)
		res, _, _ := runStreamResult(t, t.TempDir(), world, f, cfg)
		checkByzReport(t, res.Report, "timelie")
		for _, v := range res.Report.IntegrityVerdicts {
			if v.Reason != "out-of-window" {
				t.Errorf("timelie verdict reason %q, want out-of-window", v.Reason)
			}
		}
	})
	t.Run("clean-parity", func(t *testing.T) {
		world := testWorld(t, 4, 11)
		eng := &probe.Engine{Observers: probe.StandardObservers(byzObservers), QuarterSeed: 8}
		off := testConfig()
		fOff := testFeeder(t, eng, world, off)
		_, offEvents, offFP := runStreamResult(t, t.TempDir(), world, fOff, off)

		armed := byzConfig()
		fOn := testFeeder(t, eng, world, armed)
		res, onEvents, onFP := runStreamResult(t, t.TempDir(), world, fOn, armed)
		if onFP != offFP {
			t.Errorf("clean streamed fingerprints differ with the firewall armed")
		}
		if len(onEvents) != len(offEvents) {
			t.Errorf("clean streamed events differ: %d vs %d", len(onEvents), len(offEvents))
		}
		if len(res.Report.GatedStreams) != 0 || len(res.Report.IntegrityVerdicts) != 0 {
			t.Errorf("honest streams gated: %v", res.Report.GatedStreams)
		}
		for i, s := range res.Report.AgreementScores {
			if s < 0.99 {
				t.Errorf("observer %d streamed agreement %.3f, want ~1", i, s)
			}
		}
	})
}

// TestByzantineSoakShort is the deterministic CI leg (`make soak` runs
// it): fixed seeds, one attack per seed, firewall armed throughout the
// kill loop.
func TestByzantineSoakShort(t *testing.T) {
	if testing.Short() {
		t.Skip("byzantine soak skipped in -short")
	}
	cases := []struct {
		seed   int64
		attack string
	}{
		{1, "timelie"},
		{2, "dupflood"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("seed%d-%s", tc.seed, tc.attack), func(t *testing.T) {
			byzantineSoakOneSeed(t, tc.seed, 4, tc.attack)
		})
	}
}

// TestByzantineSoakNightly randomizes seeds and attacks under
// SOAK_NIGHTLY, recording a failing seed for exact replay.
func TestByzantineSoakNightly(t *testing.T) {
	if os.Getenv("SOAK_NIGHTLY") == "" {
		t.Skip("set SOAK_NIGHTLY=1 to run the long randomized soak")
	}
	seed := time.Now().UnixNano()
	if s := os.Getenv("SOAK_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("SOAK_SEED %q: %v", s, err)
		}
		seed = v
	}
	t.Logf("byzantine nightly soak base seed %d (replay with SOAK_SEED=%d)", seed, seed)
	rng := rand.New(rand.NewSource(seed))
	for i := int64(0); i < 4; i++ {
		s := seed + i
		attack := faults.AttackNames[rng.Intn(len(faults.AttackNames))]
		t.Run(fmt.Sprintf("seed%d-%s", s, attack), func(t *testing.T) {
			byzantineSoakOneSeed(t, s, 6, attack)
		})
	}
	if t.Failed() {
		msg := fmt.Sprintf("SOAK_SEED=%d\n", seed)
		if err := os.WriteFile("soak-failure-seed.txt", []byte(msg), 0o644); err != nil {
			t.Logf("recording failing seed: %v", err)
		}
	}
}
