package stream

// The acceptance tests ISSUE 6 names: fault-free streaming must match
// batch block for block, kill-and-resume must reproduce the exact event
// sequence, emission latency must respect the documented bound, and the
// watchdog's loop restart must be invisible in the output.

import (
	"context"
	"testing"
	"time"

	"github.com/diurnalnet/diurnal/internal/core"
	"github.com/diurnalnet/diurnal/internal/dataset"
	"github.com/diurnalnet/diurnal/internal/events"
	"github.com/diurnalnet/diurnal/internal/health"
	"github.com/diurnalnet/diurnal/internal/netsim"
	"github.com/diurnalnet/diurnal/internal/probe"
)

// testWindow is the 2020q1 validation window: 12 weeks from Jan 1, long
// enough to contain the calendar's March activity changes.
func testWindow() (int64, int64) {
	start := netsim.Date(2020, time.January, 1)
	return start, start + 12*7*netsim.SecondsPerDay
}

func testConfig() Config {
	start, end := testWindow()
	cc := core.DefaultConfig(start, end)
	cc.BaselineStart = start
	cc.BaselineEnd = netsim.Date(2020, time.January, 29)
	return Config{
		Core:         cc,
		RefreshEvery: 7, // weekly refresh keeps the kernel cost testable
		MaxQueue:     8,
	}
}

func testWorld(t testing.TB, blocks int, seed uint64) []*dataset.WorldBlock {
	t.Helper()
	start, end := testWindow()
	world, err := dataset.BuildWorld(dataset.WorldOpts{
		Blocks:   blocks,
		Seed:     seed,
		Calendar: events.Year2020(),
		Start:    start,
		End:      end,
	})
	if err != nil {
		t.Fatal(err)
	}
	return world
}

func testEngine(seed uint64) *probe.Engine {
	return &probe.Engine{Observers: probe.StandardObservers(3), QuarterSeed: seed}
}

func testFeeder(t testing.TB, eng core.Prober, world []*dataset.WorldBlock, cfg Config) *Feeder {
	t.Helper()
	f, err := NewFeeder(context.Background(), eng, world, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// runStream drives a daemon over the whole feeder in one uninterrupted
// life and returns the journaled events and the result fingerprint.
func runStream(t testing.TB, dir string, world []*dataset.WorldBlock, f *Feeder, cfg Config) ([]Event, string) {
	t.Helper()
	d, err := Open(dir, world, f.Observers(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	ctx := context.Background()
	if err := f.Feed(ctx, d); err != nil {
		t.Fatal(err)
	}
	if err := d.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	res, err := d.Result()
	if err != nil {
		t.Fatal(err)
	}
	fp, err := res.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	evs := d.Events()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	return evs, fp
}

func checkEventInvariants(t *testing.T, evs []Event, cfg Config) {
	t.Helper()
	cfg = cfg.withDefaults()
	finalSeq := cfg.rounds() - 1
	bound := int64(cfg.ConfirmRefreshes * cfg.RefreshEvery)
	for i, ev := range evs {
		if ev.Seq != int64(i) {
			t.Fatalf("event %d has seq %d; the journal must be contiguous from 0", i, ev.Seq)
		}
		if ev.EmitSeq == finalSeq {
			continue // the final flush trades the latency bound for batch convergence
		}
		base := ev.FirstSeenSeq
		if ev.EligibleSeq > base {
			base = ev.EligibleSeq
		}
		if lat := ev.EmitSeq - base; lat > bound {
			t.Errorf("event %d: emit latency %d rounds exceeds bound %d (first seen %d, eligible %d, emitted %d)",
				i, lat, bound, ev.FirstSeenSeq, ev.EligibleSeq, ev.EmitSeq)
		}
	}
}

// TestStreamingMatchesBatch: on fault-free input the streaming daemon's
// final result must match a batch pipeline run of the same world
// fingerprint-for-fingerprint, and every batch-detected change must have
// been emitted as an event.
func TestStreamingMatchesBatch(t *testing.T) {
	world := testWorld(t, 8, 1234)
	cfg := testConfig()
	eng := testEngine(99)

	batch, err := (&core.Pipeline{Config: cfg.Core, Engine: eng}).Run(context.Background(), world)
	if err != nil {
		t.Fatal(err)
	}
	wantFP, err := batch.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}

	f := testFeeder(t, testEngine(99), world, cfg)
	evs, gotFP := runStream(t, t.TempDir(), world, f, cfg)

	if gotFP != wantFP {
		t.Errorf("streaming fingerprint %s != batch %s", gotFP[:16], wantFP[:16])
	}
	checkEventInvariants(t, evs, cfg)

	// Every change the batch run detected must appear among the events
	// (matched by block, direction, and point within the tracking slop).
	slop := int64(matchSlopDays) * netsim.SecondsPerDay
	var batchChanges int
	for b, out := range batch.Blocks {
		if out.Analysis == nil {
			continue
		}
		for _, ch := range out.Analysis.Changes {
			batchChanges++
			found := false
			for _, ev := range evs {
				if ev.Block == b && ev.Change.Dir == ch.Dir && abs64(ev.Change.Point-ch.Point) <= slop {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("batch change in block %d (%v at %d) never emitted as an event", b, ch.Dir, ch.Point)
			}
		}
	}
	if batchChanges == 0 {
		t.Fatal("fixture produced no batch changes; the parity check is vacuous")
	}
	if len(evs) == 0 {
		t.Fatal("streaming run emitted no events")
	}
}

// TestKillAndResumeEventIdentity: SIGKILL (Abort) at assorted points —
// mid-queue, drained, right after events exist — then reopening and
// continuing must reproduce the uninterrupted run's event journal
// exactly, element for element, and the same final result.
func TestKillAndResumeEventIdentity(t *testing.T) {
	world := testWorld(t, 6, 77)
	cfg := testConfig()
	f := testFeeder(t, testEngine(7), world, cfg)

	refEvents, refFP := runStream(t, t.TempDir(), world, f, cfg)
	if len(refEvents) == 0 {
		t.Fatal("reference run emitted no events; kill-and-resume would prove nothing")
	}

	total := f.Rounds()
	// Kill points in rounds ingested before each Abort; drain=false leaves
	// admitted rounds unprocessed in the queue at the kill.
	cuts := []struct {
		after int64
		drain bool
	}{
		{total / 4, false},
		{total / 2, true},
		{3 * total / 4, false},
		{total - 1, false},
	}
	dir := t.TempDir()
	ctx := context.Background()
	ingested := int64(0)
	for ci, cut := range cuts {
		d, err := Open(dir, world, f.Observers(), cfg)
		if err != nil {
			t.Fatalf("reopen %d: %v", ci, err)
		}
		if got := d.NextIngestSeq(); got != ingested {
			// Unprocessed-but-admitted rounds are replayed on open, so the
			// resume point is everything ever admitted.
			t.Fatalf("reopen %d: resume at round %d, admitted %d", ci, got, ingested)
		}
		d.Start()
		for seq := d.NextIngestSeq(); seq < cut.after; seq++ {
			r, err := f.Round(seq)
			if err != nil {
				t.Fatal(err)
			}
			if err := d.Ingest(ctx, r); err != nil {
				t.Fatalf("reopen %d: ingest round %d: %v", ci, seq, err)
			}
		}
		ingested = cut.after
		if cut.drain {
			if err := d.Drain(ctx); err != nil {
				t.Fatal(err)
			}
		}
		d.Abort()
		// The journal must hold a prefix of the reference events at every
		// kill point — never an event the reference run does not have.
		evs := d.Events()
		if len(evs) > len(refEvents) {
			t.Fatalf("kill %d: %d events journaled, reference has %d", ci, len(evs), len(refEvents))
		}
		for i := range evs {
			if evs[i] != refEvents[i] {
				t.Fatalf("kill %d: journaled event %d diverges from reference", ci, i)
			}
		}
	}

	// Final incarnation: finish the stream.
	d, err := Open(dir, world, f.Observers(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	if err := f.Feed(ctx, d); err != nil {
		t.Fatal(err)
	}
	if err := d.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	res, err := d.Result()
	if err != nil {
		t.Fatal(err)
	}
	fp, err := res.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	evs := d.Events()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	if len(evs) != len(refEvents) {
		t.Fatalf("resumed run journaled %d events, reference %d", len(evs), len(refEvents))
	}
	for i := range evs {
		if evs[i] != refEvents[i] {
			t.Errorf("event %d diverges after kill-and-resume:\n  got  %+v\n  want %+v", i, evs[i], refEvents[i])
		}
	}
	if fp != refFP {
		t.Errorf("resumed fingerprint %s != reference %s", fp[:16], refFP[:16])
	}
	if d.NextIngestSeq() != total {
		t.Errorf("resume position %d after completion, want %d", d.NextIngestSeq(), total)
	}
}

// TestWatchdogRestartsWedgedLoop: a wedged analysis loop is fenced and
// restarted by the watchdog, and the restart is invisible in the output —
// same events, same result as an unharassed run.
func TestWatchdogRestartsWedgedLoop(t *testing.T) {
	world := testWorld(t, 4, 55)
	cfg := testConfig()
	f := testFeeder(t, testEngine(3), world, cfg)

	refEvents, refFP := runStream(t, t.TempDir(), world, f, cfg)

	clock := health.NewFake()
	wcfg := cfg
	wcfg.Watchdog = 30 * time.Second
	wcfg.Clock = clock
	d, err := Open(t.TempDir(), world, f.Observers(), wcfg)
	if err != nil {
		t.Fatal(err)
	}
	// Wedge the loop on one mid-stream round: the hook blocks until the
	// watchdog has already fenced and replaced the loop.
	wedgeSeq := f.Rounds() / 2
	release := make(chan struct{})
	wedged := make(chan struct{})
	var once bool
	d.hookProcess = func(r *Round) {
		if r.Seq == wedgeSeq && !once {
			once = true
			close(wedged)
			<-release
		}
	}
	d.Start()
	ctx := context.Background()
	done := make(chan error, 1)
	go func() { done <- f.Feed(ctx, d) }()

	<-wedged
	// Drive the fake clock until the watchdog declares the loop wedged.
	deadline := time.Now().Add(30 * time.Second)
	for d.Stats().Restarts == 0 {
		if time.Now().After(deadline) {
			t.Fatal("watchdog never restarted the wedged loop")
		}
		clock.Advance(wcfg.Watchdog)
		time.Sleep(2 * time.Millisecond)
	}
	close(release) // the fenced loop wakes, discovers its fencing, exits

	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := d.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	res, err := d.Result()
	if err != nil {
		t.Fatal(err)
	}
	fp, err := res.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	evs := d.Events()
	stats := d.Stats()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	if stats.Restarts == 0 {
		t.Error("no restarts recorded")
	}
	if len(evs) != len(refEvents) {
		t.Fatalf("restarted run journaled %d events, reference %d", len(evs), len(refEvents))
	}
	for i := range evs {
		if evs[i] != refEvents[i] {
			t.Errorf("event %d diverges after watchdog restart", i)
		}
	}
	if fp != refFP {
		t.Errorf("fingerprint %s != reference %s after watchdog restart", fp[:16], refFP[:16])
	}
}

// TestDaemonRejectsMalformedRounds: shape errors are caught at admission,
// before anything hits the WAL.
func TestDaemonRejectsMalformedRounds(t *testing.T) {
	world := testWorld(t, 2, 9)
	cfg := testConfig()
	f := testFeeder(t, testEngine(1), world, cfg)
	d, err := Open(t.TempDir(), world, f.Observers(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ctx := context.Background()
	r0, err := f.Round(0)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := f.Round(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Ingest(ctx, r1); err == nil {
		t.Error("out-of-order round admitted")
	}
	bad := *r0
	bad.End += 3600
	if err := d.Ingest(ctx, &bad); err == nil {
		t.Error("round with wrong window admitted")
	}
	bad = *r0
	bad.Blocks = bad.Blocks[:1]
	if err := d.Ingest(ctx, &bad); err == nil {
		t.Error("round missing blocks admitted")
	}
	if err := d.Ingest(ctx, r0); err != nil {
		t.Errorf("well-formed round rejected: %v", err)
	}
	if got := d.NextIngestSeq(); got != 1 {
		t.Errorf("next seq %d after one admission", got)
	}
}

// TestWALRejectsForeignSignature: a stream directory from a different
// config or world refuses to open instead of replaying foreign state.
func TestWALRejectsForeignSignature(t *testing.T) {
	world := testWorld(t, 2, 9)
	cfg := testConfig()
	f := testFeeder(t, testEngine(1), world, cfg)
	dir := t.TempDir()
	d, err := Open(dir, world, f.Observers(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	r0, err := f.Round(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Ingest(context.Background(), r0); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.Core.CUSUM.Threshold = 5
	if _, err := Open(dir, world, f.Observers(), other); err == nil {
		t.Fatal("foreign-config WAL opened without error")
	}
}
