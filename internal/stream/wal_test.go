package stream

// Deterministic unit tests for the segmented WAL: replay across
// rotation boundaries, torn-tail tolerance only in the newest segment,
// compaction to a single base segment, and the manifest-swap ambiguity
// rule — a swap whose rename may have landed poisons the journal instead
// of deleting a segment the on-disk manifest might reference.

import (
	"encoding/json"
	"fmt"
	gofs "io/fs"
	"os"
	"path/filepath"
	"testing"

	"github.com/diurnalnet/diurnal/internal/storage"
)

// walEvent builds a distinguishable event for journal round-trips.
func walEvent(i int) Event {
	return Event{Seq: int64(i), Block: i % 7, FirstSeenSeq: int64(i) + 1, EmitSeq: int64(i) + 2}
}

// collectEvents opens the journal and returns the replayed event frames.
func collectEvents(t *testing.T, dir string, segBytes int64) (*wal, []Event) {
	t.Helper()
	var got []Event
	w, err := openWAL(storage.OS, dir, "j", []byte("wal-test-sig"), segBytes, func(df decodedFrame) error {
		if df.Tag == frameEvent {
			got = append(got, *df.Event)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return w, got
}

func TestWALRotationReplay(t *testing.T) {
	dir := t.TempDir()
	w, _ := collectEvents(t, dir, 256)
	const n = 40
	for i := 0; i < n; i++ {
		if err := w.append(frameEvent, walEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	if w.rotations == 0 {
		t.Fatal("256-byte segments never rotated")
	}
	if err := w.close(true); err != nil {
		t.Fatal(err)
	}

	w2, got := collectEvents(t, dir, 256)
	defer w2.close(false)
	if len(got) != n {
		t.Fatalf("replayed %d events across segments, want %d", len(got), n)
	}
	for i, ev := range got {
		if ev != walEvent(i) {
			t.Fatalf("event %d diverged across the rotation boundary: %+v", i, ev)
		}
	}
	if len(w2.segs) < 2 {
		t.Errorf("manifest lists %d segments, want the rotated set", len(w2.segs))
	}
}

// TestWALTornTail: garbage after the last intact frame of the NEWEST
// segment is truncated on open (a torn final append); the same damage
// mid-journal is corruption and must refuse to open.
func TestWALTornTail(t *testing.T) {
	dir := t.TempDir()
	w, _ := collectEvents(t, dir, 256)
	for i := 0; i < 20; i++ {
		if err := w.append(frameEvent, walEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	segs := append([]string(nil), w.segs...)
	if err := w.close(true); err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("need a rotated journal, got %d segments", len(segs))
	}

	tail := filepath.Join(dir, segs[len(segs)-1])
	f, err := os.OpenFile(tail, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("torn")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	w2, got := collectEvents(t, dir, 256)
	if len(got) != 20 {
		t.Fatalf("torn tail replayed %d events, want all 20", len(got))
	}
	if err := w2.append(frameEvent, walEvent(20)); err != nil {
		t.Fatalf("append after torn-tail truncation: %v", err)
	}
	if err := w2.close(true); err != nil {
		t.Fatal(err)
	}

	// Now tear a sealed, mid-journal segment: silent loss there is
	// corruption, never a crash artifact.
	mid := filepath.Join(dir, segs[0])
	info, err := os.Stat(mid)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(mid, info.Size()-3); err != nil {
		t.Fatal(err)
	}
	if _, err := openWAL(storage.OS, dir, "j", []byte("wal-test-sig"), 256, func(decodedFrame) error { return nil }); err == nil {
		t.Fatal("mid-journal tear opened cleanly")
	}
}

func TestWALCompactToBase(t *testing.T) {
	dir := t.TempDir()
	w, _ := collectEvents(t, dir, 256)
	for i := 0; i < 20; i++ {
		if err := w.append(frameEvent, walEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	payload, err := encodeStreamFrame(frameEvent, walEvent(99))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.compact(payload); err != nil {
		t.Fatal(err)
	}
	if len(w.segs) != 1 {
		t.Fatalf("compacted journal lists %d segments", len(w.segs))
	}
	if err := w.close(true); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	files := 0
	for _, e := range ents {
		if e.Type().IsRegular() {
			files++
		}
	}
	if files != 2 { // base segment + manifest
		t.Errorf("compaction left %d files, want base + manifest: %v", files, ents)
	}
	w2, got := collectEvents(t, dir, 256)
	defer w2.close(false)
	if len(got) != 1 || got[0] != walEvent(99) {
		t.Fatalf("base segment replayed %v, want only the compact payload", got)
	}
}

// ambiguousSwapFS makes the manifest swap ambiguous: the rename lands,
// then the directory fsync fails — the exact window where the on-disk
// manifest already references a segment the in-memory state does not.
type ambiguousSwapFS struct {
	storage.FS
	armed bool
}

func (a *ambiguousSwapFS) Rename(oldpath, newpath string) error {
	err := a.FS.Rename(oldpath, newpath)
	if err == nil {
		a.armed = true
	}
	return err
}

func (a *ambiguousSwapFS) SyncDir(dir string) error {
	if a.armed {
		a.armed = false
		return fmt.Errorf("injected: dir fsync lost after rename")
	}
	return a.FS.SyncDir(dir)
}

func (a *ambiguousSwapFS) OpenFile(name string, flag int, perm gofs.FileMode) (storage.File, error) {
	return a.FS.OpenFile(name, flag, perm)
}

// TestWALAmbiguousManifestSwapPoisons is the regression test for the
// swap-then-delete hole: when the manifest rename lands but its
// directory fsync fails, the journal must keep the new segment (the
// on-disk manifest references it), refuse further appends, and reopen
// cleanly with every acked frame.
func TestWALAmbiguousManifestSwapPoisons(t *testing.T) {
	dir := t.TempDir()
	w, _ := collectEvents(t, dir, 256)
	acked := 0
	for w.rotations == 0 { // fill the first segment up to the threshold
		if err := w.append(frameEvent, walEvent(acked)); err != nil {
			t.Fatal(err)
		}
		acked++
	}
	w.close(true)

	var replayed int
	w2, err := openWALWith(&ambiguousSwapFS{FS: storage.OS}, dir, &replayed)
	if err != nil {
		t.Fatal(err)
	}
	if replayed != acked {
		t.Fatalf("reopen replayed %d events, want %d", replayed, acked)
	}
	// Append until the next rotation is attempted; its manifest swap hits
	// the armed fault.
	var ferr error
	extra := 0
	for i := 0; i < 64; i++ {
		if ferr = w2.append(frameEvent, walEvent(acked+extra)); ferr != nil {
			break
		}
		extra++
	}
	if ferr == nil {
		t.Fatal("the ambiguous swap never fired")
	}
	if w2.failed == nil {
		t.Fatalf("ambiguous swap did not poison the journal: %v", ferr)
	}
	if err := w2.append(frameEvent, walEvent(0)); err == nil {
		t.Fatal("poisoned journal admitted an append")
	}
	w2.close(false)

	// Whatever the on-disk manifest says, every segment it lists must
	// exist, and a clean reopen must recover every acked frame.
	data, err := os.ReadFile(filepath.Join(dir, "j.wal.manifest"))
	if err != nil {
		t.Fatal(err)
	}
	var m walManifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	for _, seg := range m.Segments {
		if _, err := os.Stat(filepath.Join(dir, seg)); err != nil {
			t.Fatalf("manifest references missing segment %s: %v", seg, err)
		}
	}
	w3, got := collectEvents(t, dir, 256)
	defer w3.close(false)
	if len(got) != acked+extra {
		t.Fatalf("recovered %d events after the poisoned swap, want %d", len(got), acked+extra)
	}
	for i, ev := range got {
		if ev != walEvent(i) {
			t.Fatalf("recovered event %d diverged: %+v", i, ev)
		}
	}
}

// openWALWith opens the test journal through fsys, counting replayed
// event frames into *n.
func openWALWith(fsys storage.FS, dir string, n *int) (*wal, error) {
	return openWAL(fsys, dir, "j", []byte("wal-test-sig"), 256, func(df decodedFrame) error {
		if df.Tag == frameEvent {
			*n++
		}
		return nil
	})
}
