package stream

// Feeder turns a batch prober into a round stream.
//
// The probing engine seeds per-observer state (next-round phase, probe
// cursor) afresh on every RunContext call, so collecting a sub-window
// does NOT produce the records a whole-window collection produces over
// that sub-window. A feeder therefore collects each block's full analysis
// window exactly once — the same collection the batch pipeline performs —
// and chops the per-observer streams into rounds by timestamp. Streaming
// then sees byte-identical records to batch, which is what makes the
// batch-parity acceptance check meaningful.

import (
	"context"
	"fmt"
	"sort"

	"github.com/diurnalnet/diurnal/internal/core"
	"github.com/diurnalnet/diurnal/internal/dataset"
	"github.com/diurnalnet/diurnal/internal/probe"
)

// Feeder produces the round stream for one world by chopping one-shot
// whole-window collections. It is not safe for concurrent use.
type Feeder struct {
	cfg    Config
	nround int64
	// streams[b][o] is block b's observer o records over the full window;
	// cuts[b][o][s] is the offset where round s begins in that stream
	// (with a final offset at the stream's end), so a round is the
	// subslice streams[b][o][cuts[b][o][s]:cuts[b][o][s+1]].
	streams [][][]probe.Record
	cuts    [][][]int
}

// NewFeeder collects every block's full analysis window through eng and
// indexes the streams by round.
func NewFeeder(ctx context.Context, eng core.Prober, world []*dataset.WorldBlock, cfg Config) (*Feeder, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	f := &Feeder{cfg: cfg, nround: cfg.rounds()}
	start, end := cfg.Core.AnalysisStart, cfg.Core.AnalysisEnd
	for _, wb := range world {
		bufs, err := eng.CollectInto(ctx, wb.Block, start, end, nil)
		if err != nil {
			return nil, fmt.Errorf("stream: collecting block %v: %w", wb.Block.ID, err)
		}
		perObs := make([][]probe.Record, len(bufs))
		perCuts := make([][]int, len(bufs))
		for o, stream := range bufs {
			perObs[o] = append([]probe.Record(nil), stream...)
			cuts := make([]int, f.nround+1)
			for s := int64(0); s < f.nround; s++ {
				roundStart := start + s*cfg.RoundLen
				cuts[s] = sort.Search(len(stream), func(i int) bool {
					return stream[i].T >= roundStart
				})
			}
			cuts[f.nround] = len(stream)
			perCuts[o] = cuts
		}
		f.streams = append(f.streams, perObs)
		f.cuts = append(f.cuts, perCuts)
	}
	return f, nil
}

// Rounds returns how many rounds tile the analysis window.
func (f *Feeder) Rounds() int64 { return f.nround }

// Observers returns the per-block observer stream count.
func (f *Feeder) Observers() int {
	if len(f.streams) == 0 {
		return 0
	}
	return len(f.streams[0])
}

// Round assembles round seq. The returned round shares the feeder's
// record storage; callers must not mutate the records.
func (f *Feeder) Round(seq int64) (*Round, error) {
	if seq < 0 || seq >= f.nround {
		return nil, fmt.Errorf("stream: round %d out of range [0,%d)", seq, f.nround)
	}
	start, end := f.cfg.roundWindow(seq)
	r := &Round{Seq: seq, Start: start, End: end}
	for b := range f.streams {
		perObs := make([][]probe.Record, len(f.streams[b]))
		for o, stream := range f.streams[b] {
			cuts := f.cuts[b][o]
			perObs[o] = stream[cuts[seq]:cuts[seq+1]]
		}
		r.Blocks = append(r.Blocks, perObs)
	}
	return r, nil
}

// Feed ingests rounds [d.NextIngestSeq(), Rounds()) into the daemon in
// order — the resume-aware driver loop.
func (f *Feeder) Feed(ctx context.Context, d *Daemon) error {
	for seq := d.NextIngestSeq(); seq < f.nround; seq++ {
		r, err := f.Round(seq)
		if err != nil {
			return err
		}
		if err := d.Ingest(ctx, r); err != nil {
			return err
		}
	}
	return nil
}
