package dataset

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"github.com/diurnalnet/diurnal/internal/events"
	"github.com/diurnalnet/diurnal/internal/geo"
	"github.com/diurnalnet/diurnal/internal/netsim"
	"github.com/diurnalnet/diurnal/internal/probe"
)

var (
	start2020 = netsim.Date(2020, time.January, 1)
	end2020m1 = netsim.Date(2020, time.January, 29)
)

func TestSpecForArchetypes(t *testing.T) {
	for _, arch := range []geo.Archetype{
		geo.Workplace, geo.HomePublic, geo.NATGateway,
		geo.ServerFarm, geo.FirewalledNet, geo.SparseMixed,
	} {
		s := SpecFor(arch, 99, 3600)
		if s.TZOffset != 3600 {
			t.Errorf("%v: tz not propagated", arch)
		}
		total := s.Workers + s.Homes + s.AlwaysOn + s.Intermittent + s.Firewalled
		if total <= 0 || total > 256 {
			t.Errorf("%v: population %d out of range", arch, total)
		}
		if _, err := netsim.NewBlock(1, 99, s); err != nil {
			t.Errorf("%v: spec rejected: %v", arch, err)
		}
	}
	// Archetype determines the dominant population.
	if s := SpecFor(geo.Workplace, 5, 0); s.Workers == 0 {
		t.Error("workplace should have workers")
	}
	if s := SpecFor(geo.NATGateway, 5, 0); s.AlwaysOn == 0 || s.AlwaysOn > 4 {
		t.Errorf("NAT gateway always-on = %d, want 1..4", s.AlwaysOn)
	}
	if s := SpecFor(geo.FirewalledNet, 5, 0); s.Firewalled < 100 {
		t.Errorf("firewalled net = %d, want >= 100", s.Firewalled)
	}
}

func TestSpecForVariesBySeed(t *testing.T) {
	a := SpecFor(geo.Workplace, 1, 0)
	b := SpecFor(geo.Workplace, 2, 0)
	if a.Workers == b.Workers && a.AlwaysOn == b.AlwaysOn && a.Firewalled == b.Firewalled {
		t.Error("different seeds should vary the population")
	}
}

func TestBuildWorldBasics(t *testing.T) {
	world, err := BuildWorld(WorldOpts{
		Blocks:   300,
		Seed:     4,
		Calendar: events.Year2020(),
		Start:    start2020,
		End:      end2020m1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(world) < 295 || len(world) > 305 {
		t.Fatalf("world size = %d, want ~300", len(world))
	}
	regions := map[string]int{}
	ids := map[netsim.BlockID]int{}
	for _, wb := range world {
		regions[wb.Place.Region.Code]++
		ids[wb.ID]++
	}
	if len(regions) < 15 {
		t.Errorf("only %d regions populated", len(regions))
	}
	// Block IDs should be (nearly) unique at this scale.
	for id, n := range ids {
		if n > 2 {
			t.Errorf("block id %v appears %d times", id, n)
		}
	}
}

func TestBuildWorldAttachesCalendarEvents(t *testing.T) {
	world, err := BuildWorld(WorldOpts{
		Blocks:       400,
		Seed:         5,
		Calendar:     events.Year2020(),
		Start:        start2020,
		End:          netsim.Date(2020, time.July, 1),
		OutageProb:   -1,
		RenumberProb: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sawWFH := false
	for _, wb := range world {
		if wb.Place.Region.Code == "US-LA" {
			for _, e := range wb.Events() {
				if e.Kind == netsim.EventWFH && e.Start == netsim.Date(2020, time.March, 15) {
					sawWFH = true
				}
			}
		}
		// With noise disabled, no outage/renumber events appear.
		for _, e := range wb.Events() {
			if e.Kind == netsim.EventOutage || e.Kind == netsim.EventRenumber {
				t.Fatalf("noise event %v with noise disabled", e.Kind)
			}
		}
	}
	if !sawWFH {
		t.Error("US-LA blocks missing the March 15 WFH event")
	}
}

func TestBuildWorldNoiseEventsInsideWindow(t *testing.T) {
	world, err := BuildWorld(WorldOpts{
		Blocks:       500,
		Seed:         6,
		Start:        start2020,
		End:          end2020m1,
		OutageProb:   0.5,
		RenumberProb: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	outages, renumbers := 0, 0
	for _, wb := range world {
		for _, e := range wb.Events() {
			switch e.Kind {
			case netsim.EventOutage:
				outages++
				if e.Start < start2020 || e.End > end2020m1+11*3600 {
					t.Fatalf("outage [%d,%d) outside window", e.Start, e.End)
				}
			case netsim.EventRenumber:
				renumbers++
				if e.Start < start2020 || e.Start >= end2020m1 {
					t.Fatalf("renumber at %d outside window", e.Start)
				}
			}
		}
	}
	if outages < 100 || renumbers < 100 {
		t.Fatalf("noise too rare: %d outages, %d renumbers of ~250 expected", outages, renumbers)
	}
}

func TestBuildWorldValidation(t *testing.T) {
	if _, err := BuildWorld(WorldOpts{Blocks: 0, Start: 0, End: 1}); err == nil {
		t.Error("expected error for zero blocks")
	}
	if _, err := BuildWorld(WorldOpts{Blocks: 10, Start: 5, End: 5}); err == nil {
		t.Error("expected error for empty window")
	}
}

func TestBuildWorldDeterministic(t *testing.T) {
	opts := WorldOpts{Blocks: 100, Seed: 9, Start: start2020, End: end2020m1}
	w1, err := BuildWorld(opts)
	if err != nil {
		t.Fatal(err)
	}
	w2, _ := BuildWorld(opts)
	for i := range w1 {
		if w1[i].ID != w2[i].ID || w1[i].Place.Cell != w2[i].Place.Cell {
			t.Fatalf("world differs at block %d", i)
		}
	}
}

func TestCatalogMirrorsTable6(t *testing.T) {
	cat := Catalog()
	byName := map[string]Spec{}
	for _, s := range cat {
		if _, dup := byName[s.Name]; dup {
			t.Errorf("duplicate dataset %s", s.Name)
		}
		byName[s.Name] = s
	}
	q1, err := FindSpec("2020q1-ejnw")
	if err != nil {
		t.Fatal(err)
	}
	if q1.Weeks != 12 || len(q1.Sites) != 4 {
		t.Fatalf("2020q1-ejnw = %+v", q1)
	}
	if q1.Start != netsim.Date(2020, time.January, 1) {
		t.Error("q1 start wrong")
	}
	if q1.End() != q1.Start+12*7*netsim.SecondsPerDay {
		t.Error("End computed wrong")
	}
	survey, err := FindSpec("2020it89-w")
	if err != nil {
		t.Fatal(err)
	}
	if !survey.Survey || survey.Weeks != 2 {
		t.Fatalf("survey spec = %+v", survey)
	}
	if survey.Start != netsim.Date(2020, time.February, 19) {
		t.Error("survey start should be 2020-02-19 (it89)")
	}
	if _, err := FindSpec("nope"); err == nil {
		t.Error("expected error for unknown dataset")
	}
}

func TestObserverFor(t *testing.T) {
	w, err := ObserverFor("w", func(id netsim.BlockID) bool { return id == 3 })
	if err != nil {
		t.Fatal(err)
	}
	if w.Loss == nil || w.Loss.DiurnalAmp == 0 {
		t.Error("site w should have diurnal congestive loss")
	}
	if w.Loss.Rate(4, 0) != 0 {
		t.Error("site w loss should be destination-matched")
	}
	c, err := ObserverFor("c", nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Loss == nil || c.Loss.Base < 0.3 {
		t.Error("site c should model 2020 hardware problems")
	}
	e, err := ObserverFor("e", nil)
	if err != nil {
		t.Fatal(err)
	}
	if e.Loss != nil {
		t.Error("site e should be clean")
	}
	if _, err := ObserverFor("zz", nil); err == nil {
		t.Error("expected error for unknown site")
	}
}

func TestEngineFor(t *testing.T) {
	spec, err := FindSpec("2020q1-ejnw")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := EngineFor(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(eng.Observers) != 4 {
		t.Fatalf("engine has %d observers", len(eng.Observers))
	}
	if err := eng.Validate(); err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(eng.Observers))
	for i, o := range eng.Observers {
		names[i] = o.Name
	}
	if strings.Join(names, "") != "ejnw" {
		t.Errorf("observer order = %v", names)
	}
	survey, _ := FindSpec("2020it89-w")
	if _, err := EngineFor(survey, nil); err == nil {
		t.Error("expected error for survey spec")
	}
}

func TestRecordCodecRoundTrip(t *testing.T) {
	recs := []probe.Record{
		{T: 1577836800, Addr: 3, Up: true},
		{T: 1577836800, Addr: 17, Up: false},
		{T: 1577837460, Addr: 250, Up: true},
		{T: 1577999999, Addr: 0, Up: false},
	}
	var buf bytes.Buffer
	if err := WriteRecords(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestRecordCodecEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRecords(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("decoded %d records from empty log", len(got))
	}
}

func TestRecordCodecErrors(t *testing.T) {
	if err := WriteRecords(&bytes.Buffer{}, []probe.Record{{T: 10}, {T: 5}}); err == nil {
		t.Error("expected error for out-of-order records")
	}
	if _, err := ReadRecords(bytes.NewReader([]byte("BADMAGIC"))); err == nil {
		t.Error("expected error for bad magic")
	}
	if _, err := ReadRecords(bytes.NewReader(nil)); err == nil {
		t.Error("expected error for empty input")
	}
	// Truncated payload.
	var buf bytes.Buffer
	if err := WriteRecords(&buf, []probe.Record{{T: 1, Addr: 2, Up: true}}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-1]
	if _, err := ReadRecords(bytes.NewReader(trunc)); err == nil {
		t.Error("expected error for truncated log")
	}
}

func TestRecordCodecRealStream(t *testing.T) {
	blk, err := netsim.NewBlock(55, 66, netsim.Spec{Workers: 40, AlwaysOn: 4})
	if err != nil {
		t.Fatal(err)
	}
	eng := &probe.Engine{Observers: probe.StandardObservers(1), QuarterSeed: 2}
	perObs, err := eng.Collect(blk, start2020, start2020+netsim.SecondsPerDay)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteRecords(&buf, perObs[0]); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(perObs[0]) {
		t.Fatalf("round trip lost records: %d vs %d", len(got), len(perObs[0]))
	}
	for i := range got {
		if got[i] != perObs[0][i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
	// The encoding should be compact: well under 4 bytes per record.
	if perRec := float64(buf.Len()) / float64(len(got)); perRec > 4 {
		t.Errorf("encoding uses %.1f bytes/record, want <= 4", perRec)
	}
}

func BenchmarkBuildWorld1000(b *testing.B) {
	opts := WorldOpts{Blocks: 1000, Seed: 7, Calendar: events.Year2020(),
		Start: start2020, End: end2020m1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildWorld(opts); err != nil {
			b.Fatal(err)
		}
	}
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	spec := Spec{Name: "test-2020w1", Start: start2020, Weeks: 1, Sites: []string{"e", "j"}}
	world, err := BuildWorld(WorldOpts{
		Blocks: 12, Seed: 21, Start: spec.Start, End: spec.End(),
		OutageProb: -1, RenumberProb: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := EngineFor(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	store, err := CreateStore(dir, spec, eng, world)
	if err != nil {
		t.Fatal(err)
	}
	name, start, end, sites, blocks, err := store.Index()
	if err != nil {
		t.Fatal(err)
	}
	if name != "test-2020w1" || start != spec.Start || end != spec.End() || len(sites) != 2 {
		t.Fatalf("index = %s %d %d %v", name, start, end, sites)
	}
	if len(blocks) == 0 {
		t.Fatal("no blocks in store")
	}

	// Reload a block and compare against a fresh simulation.
	var target *WorldBlock
	for _, wb := range world {
		if wb.ID == blocks[0] {
			target = wb
		}
	}
	if target == nil {
		t.Fatal("indexed block not in world")
	}
	perObs, eb, err := store.LoadBlock(blocks[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(perObs) != 2 {
		t.Fatalf("observers = %d", len(perObs))
	}
	fresh, err := eng.Collect(target.Block, spec.Start, spec.End())
	if err != nil {
		t.Fatal(err)
	}
	for oi := range fresh {
		if len(fresh[oi]) != len(perObs[oi]) {
			t.Fatalf("obs %d: %d vs %d records", oi, len(fresh[oi]), len(perObs[oi]))
		}
		for i := range fresh[oi] {
			if fresh[oi][i] != perObs[oi][i] {
				t.Fatalf("obs %d record %d differs after round trip", oi, i)
			}
		}
	}
	if len(eb) != len(target.EverActive()) {
		t.Fatal("E(b) not preserved")
	}

	// Reopen from disk.
	store2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := store2.LoadBlock(blocks[0]); err != nil {
		t.Fatal(err)
	}
}

func TestStoreErrors(t *testing.T) {
	if _, err := OpenStore(t.TempDir()); err == nil {
		t.Error("expected error opening empty dir")
	}
	dir := t.TempDir()
	spec := Spec{Name: "x", Start: start2020, Weeks: 1, Sites: []string{"e"}}
	world, err := BuildWorld(WorldOpts{Blocks: 3, Seed: 5, Start: spec.Start, End: spec.End()})
	if err != nil {
		t.Fatal(err)
	}
	eng, _ := EngineFor(spec, nil)
	store, err := CreateStore(dir, spec, eng, world)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.LoadBlock(0xffffff); err == nil {
		t.Error("expected error for unknown block")
	}
}

func TestRecordCodecQuickRoundTrip(t *testing.T) {
	// Property: any time-ordered record stream survives encode/decode.
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		recs := make([]probe.Record, n)
		tm := int64(rng.Int63n(1 << 40))
		for i := range recs {
			tm += rng.Int63n(1000)
			recs[i] = probe.Record{T: tm, Addr: uint8(rng.Intn(256)), Up: rng.Intn(2) == 0}
		}
		var buf bytes.Buffer
		if err := WriteRecords(&buf, recs); err != nil {
			return false
		}
		got, err := ReadRecords(&buf)
		if err != nil || len(got) != len(recs) {
			return false
		}
		for i := range recs {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
