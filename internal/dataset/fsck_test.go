package dataset

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/diurnalnet/diurnal/internal/netsim"
	"github.com/diurnalnet/diurnal/internal/probe"
)

// buildTestStore archives a small deterministic world and returns the
// store with the IDs of its archived blocks.
func buildTestStore(t *testing.T) (*Store, string, []netsim.BlockID) {
	t.Helper()
	dir := t.TempDir()
	spec := Spec{Name: "fsck-2020w1", Start: start2020, Weeks: 1, Sites: []string{"e", "j"}}
	world, err := BuildWorld(WorldOpts{
		Blocks: 8, Seed: 91, Start: spec.Start, End: spec.End(),
		OutageProb: -1, RenumberProb: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := EngineFor(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	store, err := CreateStore(dir, spec, eng, world)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, _, blocks, err := store.Index()
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) < 2 {
		t.Fatalf("test store too small: %d blocks", len(blocks))
	}
	return store, dir, blocks
}

// TestVerifyCorruptionMatrix is the fsck acceptance test: every corruption
// flavor — a flipped bit, a truncated log, a duplicate-appended log, and a
// duplicated index entry — must be detected by Verify, attributed to the
// right block, and must not fail the open. 100% detection is the bar.
func TestVerifyCorruptionMatrix(t *testing.T) {
	corruptions := []struct {
		name   string
		mangle func(t *testing.T, path string)
	}{
		{name: "bit-flip", mangle: func(t *testing.T, path string) {
			data := readLog(t, path)
			data[len(data)/3] ^= 0x01
			writeLog(t, path, data)
		}},
		{name: "truncation", mangle: func(t *testing.T, path string) {
			data := readLog(t, path)
			writeLog(t, path, data[:len(data)*2/3])
		}},
		{name: "duplicate-append", mangle: func(t *testing.T, path string) {
			// A crashed archiver replaying its buffer appends a second
			// complete log after the first one's trailer.
			data := readLog(t, path)
			writeLog(t, path, append(data, data...))
		}},
		{name: "missing-log", mangle: func(t *testing.T, path string) {
			if err := os.Remove(path); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			store, dir, blocks := buildTestStore(t)
			pre, err := store.Verify()
			if err != nil {
				t.Fatal(err)
			}
			if !pre.Clean() {
				t.Fatalf("fresh store not clean:\n%s", pre)
			}
			victim := blocks[1]
			tc.mangle(t, filepath.Join(dir, logName(victim, 0)))
			rep, err := store.Verify()
			if err != nil {
				t.Fatalf("corruption must be a per-block fault, not an open error: %v", err)
			}
			if rep.Clean() {
				t.Fatalf("%s undetected", tc.name)
			}
			bad := rep.BadBlocks()
			if len(bad) != 1 || bad[0] != victim {
				t.Fatalf("quarantined %v, want exactly [%v]", bad, victim)
			}
			if rep.OK != rep.Logs-1 {
				t.Fatalf("collateral damage: %d of %d logs ok with one corrupt", rep.OK, rep.Logs)
			}
			// The damaged block must fail loudly on load; its neighbors
			// must stay readable.
			if _, _, err := store.LoadBlock(victim); err == nil {
				t.Fatalf("%s loaded cleanly", tc.name)
			}
			if _, _, err := store.LoadBlock(blocks[0]); err != nil {
				t.Fatalf("healthy block unreadable after neighbor corruption: %v", err)
			}
			if !strings.Contains(rep.String(), "damaged") {
				t.Fatalf("report does not render damage:\n%s", rep)
			}
		})
	}
}

// TestVerifyReportsAllFaultsInOnePass plants several duplicated
// observations in one log — each with a freshly valid trailer, so only
// the semantic scan can see them — and requires a single Verify pass to
// report every one of them, not just the first.
func TestVerifyReportsAllFaultsInOnePass(t *testing.T) {
	store, dir, blocks := buildTestStore(t)
	victim := blocks[1]
	path := filepath.Join(dir, logName(victim, 0))
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	records, err := ReadRecords(bufio.NewReader(f))
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) < 2 {
		t.Fatalf("victim log too small to mangle: %d records", len(records))
	}
	// Duplicate the first two records in place: r0 r0 r1 r1 rest...
	mangled := []probe.Record{records[0], records[0], records[1], records[1]}
	mangled = append(mangled, records[2:]...)
	var buf strings.Builder
	if err := WriteRecords(&buf, mangled); err != nil {
		t.Fatal(err)
	}
	writeLog(t, path, []byte(buf.String()))

	rep, err := store.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Faults) != 2 {
		t.Fatalf("one pass found %d faults, want both duplicates:\n%s", len(rep.Faults), rep)
	}
	for _, fa := range rep.Faults {
		if fa.ID != victim || fa.Obs != 0 {
			t.Fatalf("fault misattributed to block %v obs %d", fa.ID, fa.Obs)
		}
		if !errors.Is(fa.Err, ErrCorruptLog) {
			t.Fatalf("semantic fault must classify as ErrCorruptLog, got %v", fa.Err)
		}
	}
	if rep.OK != rep.Logs-1 {
		t.Fatalf("two faults in one log must cost one OK log, not %d of %d", rep.OK, rep.Logs)
	}
	if bad := rep.BadBlocks(); len(bad) != 1 || bad[0] != victim {
		t.Fatalf("quarantined %v, want exactly [%v]", bad, victim)
	}
}

func TestVerifyDetectsDuplicateIndexEntry(t *testing.T) {
	store, dir, blocks := buildTestStore(t)
	data, err := os.ReadFile(filepath.Join(dir, "index.json"))
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate the first block's manifest entry — a crashed archiver that
	// re-appended its tail.
	entry := fmt.Sprintf(`{"id":%d,"ever_active":[0]},`, uint32(blocks[0]))
	mutated := strings.Replace(string(data), `"blocks": [`, `"blocks": [`+entry, 1)
	if mutated == string(data) {
		t.Fatal("index mutation failed")
	}
	if err := os.WriteFile(filepath.Join(dir, "index.json"), []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := store.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() || len(rep.DuplicateIndex) != 1 || rep.DuplicateIndex[0] != blocks[0] {
		t.Fatalf("duplicate index entry undetected: %+v", rep)
	}
}

func TestOpenStoreTypedError(t *testing.T) {
	_, err := OpenStore(t.TempDir())
	if !errors.Is(err, ErrNotStore) {
		t.Fatalf("opening an empty dir must classify as ErrNotStore, got %v", err)
	}
	_, err = OpenStore(filepath.Join(t.TempDir(), "does-not-exist"))
	if !errors.Is(err, ErrNotStore) {
		t.Fatalf("opening a missing dir must classify as ErrNotStore, got %v", err)
	}
}

func TestCorruptLogClassifiesWithErrorsIs(t *testing.T) {
	store, dir, blocks := buildTestStore(t)
	path := filepath.Join(dir, logName(blocks[0], 0))
	data := readLog(t, path)
	data[len(data)/2] ^= 0x80
	writeLog(t, path, data)
	_, _, err := store.LoadBlock(blocks[0])
	if !errors.Is(err, ErrCorruptLog) {
		t.Fatalf("corrupt log must classify as ErrCorruptLog, got %v", err)
	}
}

func TestCreateStoreLeavesNoTempFiles(t *testing.T) {
	_, dir, _ := buildTestStore(t)
	matches, err := filepath.Glob(filepath.Join(dir, "*.tmp*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Fatalf("temp files left behind: %v", matches)
	}
}

func readLog(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func writeLog(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}
