package dataset

// Durability of the store's atomic writes: every file lands via
// temp + fsync + rename + parent-directory fsync, so a killed or
// power-cut CreateStore never leaves a torn file under a durable name.
// The fault injector scripts the failures deterministically.

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"github.com/diurnalnet/diurnal/internal/faults"
	"github.com/diurnalnet/diurnal/internal/probe"
)

func storeFixture(t *testing.T) (Spec, *WorldBlock, []*WorldBlock, *probe.Engine) {
	t.Helper()
	spec := Spec{Name: "gov-2020w1", Start: start2020, Weeks: 1, Sites: []string{"e"}}
	world, err := BuildWorld(WorldOpts{
		Blocks: 3, Seed: 9, Start: spec.Start, End: spec.End(),
		OutageProb: -1, RenumberProb: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := EngineFor(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	return spec, world[0], world, eng
}

// TestCreateStoreSyncsDirAfterRename: the first store file's parent-dir
// fsync is the second sync the injector sees (the temp file's own fsync
// is the first); failing it surfaces the error, and the renamed file is
// already in place — proving the ordering write → fsync → rename →
// dir fsync for store writes.
func TestCreateStoreSyncsDirAfterRename(t *testing.T) {
	spec, _, world, eng := storeFixture(t)
	dir := t.TempDir()
	ffs := &faults.FS{Plan: faults.FSPlan{FailSyncAt: 2}}
	_, err := CreateStoreFS(ffs, dir, spec, eng, world)
	if err == nil {
		t.Fatal("failed directory fsync not surfaced")
	}
	if !strings.Contains(err.Error(), "syncing directory") {
		t.Fatalf("second sync is not the directory fsync: %v", err)
	}
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("injected sync failure lost its errno: %v", err)
	}
	ents, lerr := os.ReadDir(dir)
	if lerr != nil {
		t.Fatal(lerr)
	}
	renamed := 0
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("temp litter survived the failed write: %s", e.Name())
		} else if e.Type().IsRegular() {
			renamed++
		}
	}
	if renamed != 1 {
		t.Errorf("%d files renamed into place before the failed directory fsync, want the first store file", renamed)
	}
}

// TestCreateStoreOutOfSpaceFailsClean: an ENOSPC mid-store leaves no
// torn file under a durable name — whatever was fully written before
// the budget ran out survives, the torn write stays a temp (removed on
// the way out), and the error keeps its errno.
func TestCreateStoreOutOfSpaceFailsClean(t *testing.T) {
	spec, _, world, eng := storeFixture(t)

	// Size a budget that bites mid-run: half of what a full store writes.
	probeDir := t.TempDir()
	meter := &faults.FS{}
	if _, err := CreateStoreFS(meter, probeDir, spec, eng, world); err != nil {
		t.Fatal(err)
	}
	budget := meter.Written() / 2
	if budget == 0 {
		t.Fatal("store wrote nothing; the fixture is vacuous")
	}

	dir := t.TempDir()
	ffs := &faults.FS{Plan: faults.FSPlan{WriteBudget: budget}}
	_, err := CreateStoreFS(ffs, dir, spec, eng, world)
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("out-of-space create: %v, want ENOSPC", err)
	}
	ents, lerr := os.ReadDir(dir)
	if lerr != nil {
		t.Fatal(lerr)
	}
	for _, e := range ents {
		name := e.Name()
		if strings.Contains(name, ".tmp") {
			t.Errorf("temp litter survived the failed create: %s", name)
			continue
		}
		// Every durably-named survivor must be a complete write: it went
		// through the atomic protocol before the budget ran out.
		info, err := os.Stat(filepath.Join(dir, name))
		if err != nil || info.Size() == 0 {
			t.Errorf("torn or empty file under a durable name: %s (%v)", name, err)
		}
	}
}
