package dataset

import (
	"fmt"
	"time"

	"github.com/diurnalnet/diurnal/internal/netsim"
	"github.com/diurnalnet/diurnal/internal/probe"
)

// Spec names one dataset window in the style of the paper's Table 6:
// a start date, a duration in weeks, and the observing sites.
type Spec struct {
	// Name follows the paper's convention, e.g. "2020q1-ejnw".
	Name string
	// Start is the window's first instant (midnight UTC).
	Start int64
	// Weeks is the duration.
	Weeks int
	// Sites are the observer letters in use ("e", "j", "n", "w", "c", "g").
	Sites []string
	// Survey marks full-scan datasets (the it89 analogue).
	Survey bool
}

// End returns the exclusive end of the window.
func (s Spec) End() int64 {
	return s.Start + int64(s.Weeks)*7*netsim.SecondsPerDay
}

// Catalog returns the dataset windows used across the paper's
// experiments, mirroring Table 6.
func Catalog() []Spec {
	q := func(name string, y int, m time.Month, d, weeks int, sites ...string) Spec {
		return Spec{Name: name, Start: netsim.Date(y, m, d), Weeks: weeks, Sites: sites}
	}
	return []Spec{
		q("2019q4-w", 2019, time.October, 1, 12, "w"),
		q("2020q1-w", 2020, time.January, 1, 12, "w"),
		q("2020q1-e", 2020, time.January, 1, 12, "e"),
		q("2020q1-ejnw", 2020, time.January, 1, 12, "e", "j", "n", "w"),
		q("2020q2-w", 2020, time.April, 1, 12, "w"),
		q("2020q2-ejnw", 2020, time.April, 1, 12, "e", "j", "n", "w"),
		q("2020m1-w", 2020, time.January, 1, 4, "w"),
		q("2020m1-ejnw", 2020, time.January, 1, 4, "e", "j", "n", "w"),
		q("2020h1-w", 2020, time.January, 1, 24, "w"),
		q("2020h1-ejnw", 2020, time.January, 1, 24, "e", "j", "n", "w"),
		q("2023q1-ejnw", 2023, time.January, 1, 12, "e", "j", "n", "w"),
		{Name: "2020it89-w", Start: netsim.Date(2020, time.February, 19), Weeks: 2, Sites: []string{"survey"}, Survey: true},
	}
}

// FindSpec returns the catalog entry with the given name.
func FindSpec(name string) (Spec, error) {
	for _, s := range Catalog() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("dataset: unknown dataset %q", name)
}

// siteIndex maps the paper's site letters to deterministic phases.
var siteIndex = map[string]int{"w": 0, "e": 1, "j": 2, "n": 3, "c": 4, "g": 5}

// ObserverFor builds the probing observer for a site letter. Site "w"
// observes some Chinese destinations through a congested link (§3.3);
// sites "c" and "g" model the 2020 hardware problems that made the paper
// discard them (heavy, erratic loss to all destinations).
func ObserverFor(site string, lossyBlocks func(netsim.BlockID) bool) (probe.Observer, error) {
	idx, ok := siteIndex[site]
	if !ok {
		return probe.Observer{}, fmt.Errorf("dataset: unknown site %q", site)
	}
	o := probe.Observer{
		Name:  site,
		Seed:  netsim.Hash64(uint64(idx) + 7001),
		Phase: int64(idx) * netsim.RoundSeconds / 6,
	}
	switch site {
	case "w":
		o.Loss = &probe.LossModel{
			Base:       0.02,
			DiurnalAmp: 0.25,
			TZOffset:   8 * 3600, // congestion follows the destination region's busy hours
			Match:      lossyBlocks,
		}
	case "c", "g":
		o.Loss = &probe.LossModel{Base: 0.35, DiurnalAmp: 0.2}
	}
	return o, nil
}

// EngineFor assembles a probing engine for a dataset spec. lossyBlocks
// selects the destinations that observer w reaches over a congested link
// (nil disables that pathology). Survey specs have no engine.
func EngineFor(spec Spec, lossyBlocks func(netsim.BlockID) bool) (*probe.Engine, error) {
	if spec.Survey {
		return nil, fmt.Errorf("dataset: %s is a survey dataset; use probe.Survey", spec.Name)
	}
	eng := &probe.Engine{QuarterSeed: netsim.Hash64(uint64(spec.Start))}
	for _, site := range spec.Sites {
		o, err := ObserverFor(site, lossyBlocks)
		if err != nil {
			return nil, err
		}
		eng.Observers = append(eng.Observers, o)
	}
	return eng, nil
}
