package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"github.com/diurnalnet/diurnal/internal/probe"
)

// The observation-log format stores one observer's probe records
// compactly: a magic header, the record count, the base timestamp, then
// per record a varint time delta from the previous record, the address
// octet, and the up flag. Real deployments of the paper's pipeline archive
// years of such logs; the codec keeps our datasets replayable without
// re-simulating.

const logMagic = "DIURNLOG" // 8 bytes

// WriteRecords encodes records (which must be in time order) to w.
func WriteRecords(w io.Writer, records []probe.Record) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(logMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(records)))
	if _, err := bw.Write(buf[:n]); err != nil {
		return err
	}
	var prev int64
	if len(records) > 0 {
		prev = records[0].T
		n = binary.PutVarint(buf[:], prev)
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
	}
	for i, r := range records {
		delta := r.T - prev
		if delta < 0 {
			return fmt.Errorf("dataset: record %d out of time order", i)
		}
		prev = r.T
		n = binary.PutUvarint(buf[:], uint64(delta))
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		up := byte(0)
		if r.Up {
			up = 1
		}
		if _, err := bw.Write([]byte{r.Addr, up}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadRecords decodes a log written by WriteRecords.
func ReadRecords(r io.Reader) ([]probe.Record, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(logMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("dataset: reading magic: %w", err)
	}
	if string(magic) != logMagic {
		return nil, fmt.Errorf("dataset: bad magic %q", magic)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("dataset: reading count: %w", err)
	}
	const maxRecords = 1 << 30
	if count > maxRecords {
		return nil, fmt.Errorf("dataset: implausible record count %d", count)
	}
	records := make([]probe.Record, 0, count)
	if count == 0 {
		return records, nil
	}
	prev, err := binary.ReadVarint(br)
	if err != nil {
		return nil, fmt.Errorf("dataset: reading base time: %w", err)
	}
	for i := uint64(0); i < count; i++ {
		delta, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("dataset: record %d delta: %w", i, err)
		}
		prev += int64(delta)
		var pair [2]byte
		if _, err := io.ReadFull(br, pair[:]); err != nil {
			return nil, fmt.Errorf("dataset: record %d payload: %w", i, err)
		}
		if pair[1] > 1 {
			return nil, fmt.Errorf("dataset: record %d has invalid up flag %d", i, pair[1])
		}
		records = append(records, probe.Record{T: prev, Addr: pair[0], Up: pair[1] == 1})
	}
	return records, nil
}
