package dataset

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"github.com/diurnalnet/diurnal/internal/probe"
)

// The observation-log format stores one observer's probe records
// compactly: a magic header, the record count, the base timestamp, then
// per record a varint time delta from the previous record, the address
// octet, and the up flag, followed by a CRC32C trailer over everything
// before it. Real deployments of the paper's pipeline archive years of
// such logs; the codec keeps our datasets replayable without
// re-simulating, and the checksum turns silent bit rot, torn writes, and
// replayed appends into loud per-log errors that fsck (Store.Verify) and
// the replay prober surface as per-block failures instead of bad data.

const logMagic = "DIURNLOG" // 8 bytes

// castagnoli is the CRC32C polynomial table; CRC32C is hardware
// accelerated on amd64/arm64, so the trailer is nearly free.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorruptLog marks structural damage to an observation log — bad
// magic, truncation, a checksum mismatch, or trailing bytes after the
// trailer. Callers classify with errors.Is.
var ErrCorruptLog = errors.New("corrupt observation log")

// crcWriter updates a running CRC32C with everything written through it.
type crcWriter struct {
	w   *bufio.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, castagnoli, p[:n])
	return n, err
}

// crcReader updates a running CRC32C with everything read through it. It
// implements io.ByteReader for the varint decoder.
type crcReader struct {
	br  *bufio.Reader
	crc uint32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.br.Read(p)
	c.crc = crc32.Update(c.crc, castagnoli, p[:n])
	return n, err
}

func (c *crcReader) ReadByte() (byte, error) {
	b, err := c.br.ReadByte()
	if err != nil {
		return b, err
	}
	var one [1]byte
	one[0] = b
	c.crc = crc32.Update(c.crc, castagnoli, one[:])
	return b, nil
}

// WriteRecords encodes records (which must be in time order) to w and
// appends a CRC32C trailer over the encoded stream.
func WriteRecords(w io.Writer, records []probe.Record) error {
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw}
	if _, err := cw.Write([]byte(logMagic)); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(records)))
	if _, err := cw.Write(buf[:n]); err != nil {
		return err
	}
	var prev int64
	if len(records) > 0 {
		prev = records[0].T
		n = binary.PutVarint(buf[:], prev)
		if _, err := cw.Write(buf[:n]); err != nil {
			return err
		}
	}
	for i, r := range records {
		delta := r.T - prev
		if delta < 0 {
			return fmt.Errorf("dataset: record %d out of time order", i)
		}
		prev = r.T
		n = binary.PutUvarint(buf[:], uint64(delta))
		if _, err := cw.Write(buf[:n]); err != nil {
			return err
		}
		up := byte(0)
		if r.Up {
			up = 1
		}
		if _, err := cw.Write([]byte{r.Addr, up}); err != nil {
			return err
		}
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], cw.crc)
	if _, err := bw.Write(trailer[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// DecodeRecordsBytes decodes an observation log held entirely in memory —
// the zero-copy path for mmap'd store files. Semantics match ReadRecords:
// the same structure is decoded, the CRC32C trailer is verified, and
// trailing bytes are rejected, with every failure wrapping ErrCorruptLog.
// Unlike the streaming reader, the checksum is computed in one pass over
// the raw bytes (hardware CRC32C) instead of per byte through a reader
// shim, and no intermediate buffering is allocated.
func DecodeRecordsBytes(data []byte) ([]probe.Record, error) {
	return appendRecordsBytes(nil, data, false, 0, 0)
}

// AppendRecordsBytes decodes a log from memory, appending only records
// with start <= T < end to buf — the replay prober's collection path,
// which decodes straight from the mapped file into the caller's reusable
// buffer with no intermediate record slice. Verification is identical to
// DecodeRecordsBytes.
func AppendRecordsBytes(buf []probe.Record, data []byte, start, end int64) ([]probe.Record, error) {
	return appendRecordsBytes(buf, data, true, start, end)
}

func appendRecordsBytes(buf []probe.Record, data []byte, clip bool, start, end int64) ([]probe.Record, error) {
	if len(data) < len(logMagic) {
		return buf, fmt.Errorf("dataset: reading magic: truncated log: %w", ErrCorruptLog)
	}
	if string(data[:len(logMagic)]) != logMagic {
		return buf, fmt.Errorf("dataset: bad magic %q: %w", data[:len(logMagic)], ErrCorruptLog)
	}
	off := len(logMagic)
	count, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return buf, fmt.Errorf("dataset: reading count: truncated log: %w", ErrCorruptLog)
	}
	off += n
	const maxRecords = 1 << 30
	if count > maxRecords {
		return buf, fmt.Errorf("dataset: implausible record count %d: %w", count, ErrCorruptLog)
	}
	var prev int64
	if count > 0 {
		prev, n = binary.Varint(data[off:])
		if n <= 0 {
			return buf, fmt.Errorf("dataset: reading base time: truncated log: %w", ErrCorruptLog)
		}
		off += n
	}
	if !clip {
		buf = make([]probe.Record, 0, count)
	}
	for i := uint64(0); i < count; i++ {
		delta, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return buf, fmt.Errorf("dataset: record %d delta: truncated log: %w", i, ErrCorruptLog)
		}
		off += n
		if off+2 > len(data) {
			return buf, fmt.Errorf("dataset: record %d payload: truncated log: %w", i, ErrCorruptLog)
		}
		addr, up := data[off], data[off+1]
		off += 2
		if up > 1 {
			return buf, fmt.Errorf("dataset: record %d has invalid up flag %d: %w", i, up, ErrCorruptLog)
		}
		prev += int64(delta)
		if clip && (prev < start || prev >= end) {
			continue
		}
		buf = append(buf, probe.Record{T: prev, Addr: addr, Up: up == 1})
	}
	if off+4 > len(data) {
		return buf, fmt.Errorf("dataset: reading checksum: truncated log: %w", ErrCorruptLog)
	}
	got := binary.LittleEndian.Uint32(data[off : off+4])
	if want := crc32.Checksum(data[:off], castagnoli); got != want {
		return buf, fmt.Errorf("dataset: checksum mismatch: stored %08x, computed %08x: %w", got, want, ErrCorruptLog)
	}
	if off+4 != len(data) {
		return buf, fmt.Errorf("dataset: trailing bytes after checksum: %w", ErrCorruptLog)
	}
	return buf, nil
}

// ReadRecords decodes a log written by WriteRecords, verifying its CRC32C
// trailer and rejecting trailing bytes. Any structural failure (bad
// magic, truncation, checksum mismatch, appended garbage) is reported as
// an error wrapping ErrCorruptLog.
func ReadRecords(r io.Reader) ([]probe.Record, error) {
	br := bufio.NewReader(r)
	cr := &crcReader{br: br}
	magic := make([]byte, len(logMagic))
	if _, err := io.ReadFull(cr, magic); err != nil {
		return nil, fmt.Errorf("dataset: reading magic: %v: %w", err, ErrCorruptLog)
	}
	if string(magic) != logMagic {
		return nil, fmt.Errorf("dataset: bad magic %q: %w", magic, ErrCorruptLog)
	}
	count, err := binary.ReadUvarint(cr)
	if err != nil {
		return nil, fmt.Errorf("dataset: reading count: %v: %w", err, ErrCorruptLog)
	}
	const maxRecords = 1 << 30
	if count > maxRecords {
		return nil, fmt.Errorf("dataset: implausible record count %d: %w", count, ErrCorruptLog)
	}
	records := make([]probe.Record, 0, count)
	var prev int64
	if count > 0 {
		prev, err = binary.ReadVarint(cr)
		if err != nil {
			return nil, fmt.Errorf("dataset: reading base time: %v: %w", err, ErrCorruptLog)
		}
	}
	for i := uint64(0); i < count; i++ {
		delta, err := binary.ReadUvarint(cr)
		if err != nil {
			return nil, fmt.Errorf("dataset: record %d delta: %v: %w", i, err, ErrCorruptLog)
		}
		prev += int64(delta)
		var pair [2]byte
		if _, err := io.ReadFull(cr, pair[:]); err != nil {
			return nil, fmt.Errorf("dataset: record %d payload: %v: %w", i, err, ErrCorruptLog)
		}
		if pair[1] > 1 {
			return nil, fmt.Errorf("dataset: record %d has invalid up flag %d: %w", i, pair[1], ErrCorruptLog)
		}
		records = append(records, probe.Record{T: prev, Addr: pair[0], Up: pair[1] == 1})
	}
	var trailer [4]byte
	if _, err := io.ReadFull(br, trailer[:]); err != nil {
		return nil, fmt.Errorf("dataset: reading checksum: %v: %w", err, ErrCorruptLog)
	}
	if got := binary.LittleEndian.Uint32(trailer[:]); got != cr.crc {
		return nil, fmt.Errorf("dataset: checksum mismatch: stored %08x, computed %08x: %w", got, cr.crc, ErrCorruptLog)
	}
	// A duplicate-append (a crashed archiver replaying its buffer into the
	// same file) leaves a second complete log after the trailer: anything
	// beyond the checksum is corruption, not data.
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("dataset: trailing bytes after checksum: %w", ErrCorruptLog)
	}
	return records, nil
}
