package dataset

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"github.com/diurnalnet/diurnal/internal/netsim"
	"github.com/diurnalnet/diurnal/internal/probe"
)

// A Store persists probe observations on disk so analyses can be replayed
// without re-simulating (or, against real data, without re-probing): one
// binary log per (block, observer) plus a JSON index. This mirrors the
// role of the paper's public Trinocular datasets [Table 6].
type Store struct {
	dir string
}

// storeIndex is the JSON manifest of a store.
type storeIndex struct {
	Name   string       `json:"name"`
	Start  int64        `json:"start"`
	End    int64        `json:"end"`
	Sites  []string     `json:"sites"`
	Blocks []blockEntry `json:"blocks"`
}

type blockEntry struct {
	ID         uint32 `json:"id"`
	EverActive []int  `json:"ever_active"`
}

// OpenStore opens an existing store directory.
func OpenStore(dir string) (*Store, error) {
	if _, err := os.Stat(filepath.Join(dir, "index.json")); err != nil {
		return nil, fmt.Errorf("dataset: %s is not a store: %w", dir, err)
	}
	return &Store{dir: dir}, nil
}

// CreateStore writes a complete observation archive: it probes every block
// of the world with the engine over [spec.Start, spec.End()) and writes
// one log per (block, observer).
func CreateStore(dir string, spec Spec, eng *probe.Engine, world []*WorldBlock) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	idx := storeIndex{Name: spec.Name, Start: spec.Start, End: spec.End(), Sites: spec.Sites}
	for _, wb := range world {
		eb := wb.EverActive()
		if len(eb) == 0 {
			continue
		}
		perObs, err := eng.Collect(wb.Block, spec.Start, spec.End())
		if err != nil {
			return nil, err
		}
		for oi, records := range perObs {
			f, err := os.Create(filepath.Join(dir, logName(wb.ID, oi)))
			if err != nil {
				return nil, err
			}
			w := bufio.NewWriter(f)
			if err := WriteRecords(w, records); err != nil {
				f.Close()
				return nil, fmt.Errorf("dataset: writing %v obs %d: %w", wb.ID, oi, err)
			}
			if err := w.Flush(); err != nil {
				f.Close()
				return nil, err
			}
			if err := f.Close(); err != nil {
				return nil, err
			}
		}
		idx.Blocks = append(idx.Blocks, blockEntry{ID: uint32(wb.ID), EverActive: eb})
	}
	data, err := json.MarshalIndent(&idx, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(dir, "index.json"), data, 0o644); err != nil {
		return nil, err
	}
	return &Store{dir: dir}, nil
}

func logName(id netsim.BlockID, obs int) string {
	return fmt.Sprintf("blk-%06x.obs%d.log", uint32(id), obs)
}

// Index returns the store's manifest.
func (s *Store) Index() (name string, start, end int64, sites []string, blocks []netsim.BlockID, err error) {
	idx, err := s.readIndex()
	if err != nil {
		return "", 0, 0, nil, nil, err
	}
	for _, b := range idx.Blocks {
		blocks = append(blocks, netsim.BlockID(b.ID))
	}
	return idx.Name, idx.Start, idx.End, idx.Sites, blocks, nil
}

func (s *Store) readIndex() (*storeIndex, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, "index.json"))
	if err != nil {
		return nil, err
	}
	var idx storeIndex
	if err := json.Unmarshal(data, &idx); err != nil {
		return nil, fmt.Errorf("dataset: corrupt index: %w", err)
	}
	return &idx, nil
}

// LoadBlock reads one block's per-observer record streams and its E(b).
func (s *Store) LoadBlock(id netsim.BlockID) (perObs [][]probe.Record, eb []int, err error) {
	idx, err := s.readIndex()
	if err != nil {
		return nil, nil, err
	}
	found := false
	for _, b := range idx.Blocks {
		if netsim.BlockID(b.ID) == id {
			eb = b.EverActive
			found = true
			break
		}
	}
	if !found {
		return nil, nil, fmt.Errorf("dataset: block %v not in store", id)
	}
	for oi := 0; oi < len(idx.Sites); oi++ {
		f, err := os.Open(filepath.Join(s.dir, logName(id, oi)))
		if err != nil {
			return nil, nil, err
		}
		records, err := ReadRecords(bufio.NewReader(f))
		f.Close()
		if err != nil {
			return nil, nil, fmt.Errorf("dataset: block %v obs %d: %w", id, oi, err)
		}
		perObs = append(perObs, records)
	}
	return perObs, eb, nil
}
