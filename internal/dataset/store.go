package dataset

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"github.com/diurnalnet/diurnal/internal/dsp"
	"github.com/diurnalnet/diurnal/internal/netsim"
	"github.com/diurnalnet/diurnal/internal/probe"
	"github.com/diurnalnet/diurnal/internal/storage"
)

// A Store persists probe observations on disk so analyses can be replayed
// without re-simulating (or, against real data, without re-probing): one
// binary log per (block, observer) plus a JSON index. This mirrors the
// role of the paper's public Trinocular datasets [Table 6].
//
// Durability: every file is written to a temp name and renamed into
// place, so a crash mid-archive never leaves a half-written log under its
// final name; each log carries a CRC32C trailer so bytes damaged after
// the fact are detected on read. Verify is the matching fsck.
//
// Reads go through memory-mapped views of the log files (a portable
// read-into-memory fallback serves non-Linux platforms and builds tagged
// diurnal_nommap), decoded zero-copy by DecodeRecordsBytes: no per-log
// open fd is held after mapping and no bufio shim sits between the bytes
// and the varint decoder. Mappings are cached per log and released by
// Close. A Store is safe for concurrent readers.
type Store struct {
	dir string

	mu   sync.Mutex
	maps map[string]*mappedLog
}

// mappedLog is one cached log view with its release function.
type mappedLog struct {
	data    []byte
	release func() error
}

// logData returns the (possibly cached) in-memory view of one log file.
func (s *Store) logData(name string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.maps == nil {
		s.maps = map[string]*mappedLog{}
	}
	if m, ok := s.maps[name]; ok {
		return m.data, nil
	}
	f, err := os.Open(filepath.Join(s.dir, name))
	if err != nil {
		return nil, err
	}
	data, release, err := mapFile(f)
	f.Close() // the mapping (or copied buffer) outlives the fd
	if err != nil {
		return nil, err
	}
	s.maps[name] = &mappedLog{data: data, release: release}
	return data, nil
}

// Close releases every mapped log view. The store remains usable — a
// later read simply re-maps — so Close is a resource checkpoint, not a
// terminal state. Views handed out earlier must not be used after Close.
func (s *Store) Close() error {
	s.mu.Lock()
	maps := s.maps
	s.maps = nil
	s.mu.Unlock()
	var first error
	for _, m := range maps {
		if err := m.release(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ErrNotStore reports that a directory is not a dataset store (no
// index.json). Classify with errors.Is.
var ErrNotStore = errors.New("not a dataset store")

// storeIndex is the JSON manifest of a store.
type storeIndex struct {
	Name   string       `json:"name"`
	Start  int64        `json:"start"`
	End    int64        `json:"end"`
	Sites  []string     `json:"sites"`
	Blocks []blockEntry `json:"blocks"`
}

type blockEntry struct {
	ID         uint32 `json:"id"`
	EverActive []int  `json:"ever_active"`
}

// OpenStore opens an existing store directory.
func OpenStore(dir string) (*Store, error) {
	if _, err := os.Stat(filepath.Join(dir, "index.json")); err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("dataset: %s: %w", dir, ErrNotStore)
		}
		return nil, fmt.Errorf("dataset: opening %s: %w", dir, err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// writeFileAtomic writes data to path through the shared storage
// discipline: temp file in the same directory, write, fsync, rename,
// parent-directory fsync, so readers (and crash-recovery) never observe
// a torn file under the final name and the directory entry itself is
// durable.
func writeFileAtomic(fsys storage.FS, path string, write func(f storage.File) error) error {
	return storage.WriteFileAtomic(fsys, path, write)
}

// CreateStore writes a complete observation archive: it probes every block
// of the world with the engine over [spec.Start, spec.End()) and writes
// one log per (block, observer). The index is written last, so a crash
// mid-archive leaves a directory OpenStore still refuses as ErrNotStore
// rather than a store with missing logs.
func CreateStore(dir string, spec Spec, eng *probe.Engine, world []*WorldBlock) (*Store, error) {
	return CreateStoreFS(storage.OS, dir, spec, eng, world)
}

// CreateStoreFS is CreateStore through an injectable filesystem, so
// fault-injection tests can hit the archive path with deterministic
// ENOSPC, short writes, and failed fsyncs.
func CreateStoreFS(fsys storage.FS, dir string, spec Spec, eng *probe.Engine, world []*WorldBlock) (*Store, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	idx := storeIndex{Name: spec.Name, Start: spec.Start, End: spec.End(), Sites: spec.Sites}
	for _, wb := range world {
		eb := wb.EverActive()
		if len(eb) == 0 {
			continue
		}
		perObs, err := eng.Collect(wb.Block, spec.Start, spec.End())
		if err != nil {
			return nil, fmt.Errorf("dataset: probing %v: %w", wb.ID, err)
		}
		for oi, records := range perObs {
			err := writeFileAtomic(fsys, filepath.Join(dir, logName(wb.ID, oi)), func(f storage.File) error {
				return WriteRecords(f, records)
			})
			if err != nil {
				return nil, fmt.Errorf("dataset: writing %v obs %d: %w", wb.ID, oi, err)
			}
		}
		idx.Blocks = append(idx.Blocks, blockEntry{ID: uint32(wb.ID), EverActive: eb})
	}
	data, err := json.MarshalIndent(&idx, "", "  ")
	if err != nil {
		return nil, err
	}
	err = writeFileAtomic(fsys, filepath.Join(dir, "index.json"), func(f storage.File) error {
		_, err := f.Write(data)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("dataset: writing index: %w", err)
	}
	return &Store{dir: dir}, nil
}

func logName(id netsim.BlockID, obs int) string {
	return fmt.Sprintf("blk-%06x.obs%d.log", uint32(id), obs)
}

// Index returns the store's manifest.
func (s *Store) Index() (name string, start, end int64, sites []string, blocks []netsim.BlockID, err error) {
	idx, err := s.readIndex()
	if err != nil {
		return "", 0, 0, nil, nil, err
	}
	for _, b := range idx.Blocks {
		blocks = append(blocks, netsim.BlockID(b.ID))
	}
	return idx.Name, idx.Start, idx.End, idx.Sites, blocks, nil
}

func (s *Store) readIndex() (*storeIndex, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, "index.json"))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("dataset: %s: %w", s.dir, ErrNotStore)
		}
		return nil, fmt.Errorf("dataset: reading index: %w", err)
	}
	var idx storeIndex
	if err := json.Unmarshal(data, &idx); err != nil {
		return nil, fmt.Errorf("dataset: corrupt index: %w", err)
	}
	return &idx, nil
}

// LoadBlock reads one block's per-observer record streams and its E(b).
// A damaged log surfaces as an error wrapping ErrCorruptLog, scoped to
// this block only — the rest of the store stays readable.
func (s *Store) LoadBlock(id netsim.BlockID) (perObs [][]probe.Record, eb []int, err error) {
	idx, err := s.readIndex()
	if err != nil {
		return nil, nil, err
	}
	return s.loadBlockIdx(idx, id)
}

func (s *Store) loadBlockIdx(idx *storeIndex, id netsim.BlockID) (perObs [][]probe.Record, eb []int, err error) {
	found := false
	for _, b := range idx.Blocks {
		if netsim.BlockID(b.ID) == id {
			eb = b.EverActive
			found = true
			break
		}
	}
	if !found {
		return nil, nil, fmt.Errorf("dataset: block %v not in store", id)
	}
	for oi := 0; oi < len(idx.Sites); oi++ {
		data, err := s.logData(logName(id, oi))
		if err != nil {
			return nil, nil, fmt.Errorf("dataset: block %v obs %d: %w", id, oi, err)
		}
		records, err := DecodeRecordsBytes(data)
		if err != nil {
			return nil, nil, fmt.Errorf("dataset: block %v obs %d: %w", id, oi, err)
		}
		perObs = append(perObs, records)
	}
	return perObs, eb, nil
}

// LogFault is one damaged observation log found by Verify.
type LogFault struct {
	ID  netsim.BlockID
	Obs int
	Err error
}

// VerifyReport is the result of an fsck pass over a store.
type VerifyReport struct {
	// Blocks and Logs count what was checked; OK counts clean logs.
	Blocks, Logs, OK int
	// Faults lists every damaged or missing log, in index order.
	Faults []LogFault
	// DuplicateIndex lists block IDs that appear more than once in the
	// manifest — a crashed archiver that re-appended its tail.
	DuplicateIndex []netsim.BlockID
}

// Clean reports whether the store passed verification.
func (r *VerifyReport) Clean() bool {
	return len(r.Faults) == 0 && len(r.DuplicateIndex) == 0
}

// BadBlocks returns the distinct block IDs with at least one damaged log
// — the quarantine set a replay run must skip or re-probe.
func (r *VerifyReport) BadBlocks() []netsim.BlockID {
	seen := map[netsim.BlockID]bool{}
	var out []netsim.BlockID
	for _, f := range r.Faults {
		if !seen[f.ID] {
			seen[f.ID] = true
			out = append(out, f.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders an fsck-style summary.
func (r *VerifyReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "checked %d blocks, %d logs: %d ok, %d damaged (%d faults)",
		r.Blocks, r.Logs, r.OK, r.Logs-r.OK, len(r.Faults))
	if len(r.DuplicateIndex) > 0 {
		fmt.Fprintf(&b, ", %d duplicate index entries", len(r.DuplicateIndex))
	}
	b.WriteString("\n")
	for _, f := range r.Faults {
		fmt.Fprintf(&b, "  block %06x obs %d: %v\n", uint32(f.ID), f.Obs, f.Err)
	}
	for _, id := range r.DuplicateIndex {
		fmt.Fprintf(&b, "  block %06x: duplicate index entry\n", uint32(id))
	}
	return b.String()
}

// Verify is fsck for a store: it decodes every observation log, checking
// magic, structure, CRC32C, trailing garbage, and in-log duplicate
// observations, and reports damage as per-block faults instead of failing
// on the first bad byte. The returned error is non-nil only when the
// index itself is unreadable.
func (s *Store) Verify() (*VerifyReport, error) {
	idx, err := s.readIndex()
	if err != nil {
		return nil, err
	}
	rep := &VerifyReport{}
	seen := map[uint32]bool{}
	for _, be := range idx.Blocks {
		if seen[be.ID] {
			rep.DuplicateIndex = append(rep.DuplicateIndex, netsim.BlockID(be.ID))
			continue
		}
		seen[be.ID] = true
		rep.Blocks++
		id := netsim.BlockID(be.ID)
		for oi := 0; oi < len(idx.Sites); oi++ {
			rep.Logs++
			faults := s.verifyLog(id, oi)
			if len(faults) == 0 {
				rep.OK++
				continue
			}
			for _, ferr := range faults {
				rep.Faults = append(rep.Faults, LogFault{ID: id, Obs: oi, Err: ferr})
			}
		}
	}
	return rep, nil
}

// verifyLog decodes one log and checks semantic invariants the checksum
// cannot: duplicate (time, address) observations from a replayed batch
// that was archived with a valid trailer. It reports every fault it finds
// in one pass rather than stopping at the first, so a log damaged by
// several replayed batches shows the full extent of the damage in a
// single fsck run. Structural damage (bad magic, truncation, checksum
// mismatch) is still one fault: the log is a single checksummed blob, so
// past the first bad byte there is no trustworthy frame boundary to
// resync at.
func (s *Store) verifyLog(id netsim.BlockID, oi int) []error {
	f, err := os.Open(filepath.Join(s.dir, logName(id, oi)))
	if err != nil {
		return []error{err}
	}
	defer f.Close()
	records, err := ReadRecords(bufio.NewReader(f))
	if err != nil {
		return []error{err}
	}
	var faults []error
	for i := 1; i < len(records); i++ {
		if records[i].T == records[i-1].T && records[i].Addr == records[i-1].Addr {
			faults = append(faults, fmt.Errorf("dataset: duplicate observation of addr %d at t=%d: %w",
				records[i].Addr, records[i].T, ErrCorruptLog))
		}
	}
	return faults
}

// Replay returns a prober that serves collections from the store's logs
// instead of probing, clipped to the requested window. It satisfies
// core.Prober, so an archived dataset drops into the analysis pipeline
// unchanged; a damaged log surfaces as that block's collection error (and
// so as one BlockError in the run report), never as silent bad data.
func (s *Store) Replay() (*ReplayProber, error) {
	idx, err := s.readIndex()
	if err != nil {
		return nil, err
	}
	return &ReplayProber{store: s, idx: idx}, nil
}

// ReplayProber adapts a Store to the pipeline's prober interface.
type ReplayProber struct {
	store *Store
	idx   *storeIndex
}

// Observers returns the number of observer streams per block.
func (p *ReplayProber) Observers() int { return len(p.idx.Sites) }

// CollectInto loads the block's archived streams, clipping records to
// [start, end). The bufs contract matches probe.Engine.CollectInto.
// Decoding runs straight from the store's mapped log bytes into bufs —
// no intermediate per-log record slice is materialized.
func (p *ReplayProber) CollectInto(ctx context.Context, b *netsim.Block, start, end int64, bufs [][]probe.Record) ([][]probe.Record, error) {
	if err := ctx.Err(); err != nil {
		return bufs, err
	}
	found := false
	for _, be := range p.idx.Blocks {
		if netsim.BlockID(be.ID) == b.ID {
			found = true
			break
		}
	}
	if !found {
		return bufs, fmt.Errorf("dataset: block %v not in store", b.ID)
	}
	nObs := len(p.idx.Sites)
	for len(bufs) < nObs {
		bufs = append(bufs, nil)
	}
	bufs = bufs[:nObs]
	for oi := 0; oi < nObs; oi++ {
		data, err := p.store.logData(logName(b.ID, oi))
		if err != nil {
			return bufs, fmt.Errorf("dataset: block %v obs %d: %w", b.ID, oi, err)
		}
		bufs[oi], err = AppendRecordsBytes(bufs[oi][:0], data, start, end)
		if err != nil {
			return bufs, fmt.Errorf("dataset: block %v obs %d: %w", b.ID, oi, err)
		}
	}
	return bufs, nil
}

// BatchClass is one group of a size-classed iteration: the indices whose
// blocks share a padded FFT butterfly length (dsp.PaddedRealLen) and can
// therefore run through one batched transform pass.
type BatchClass struct {
	PaddedLen int
	Indices   []int
}

// BatchClasses partitions indices 0..n-1 into classes by the padded FFT
// length lenOf reports for each index, preserving ascending index order
// inside every class and first-seen order across classes — the iteration
// order a batch scheduler feeds to the columnar FFT passes.
func BatchClasses(n int, lenOf func(i int) int) []BatchClass {
	byLen := map[int]int{} // padded length -> position in out
	var out []BatchClass
	for i := 0; i < n; i++ {
		pl := lenOf(i)
		pos, ok := byLen[pl]
		if !ok {
			pos = len(out)
			byLen[pl] = pos
			out = append(out, BatchClass{PaddedLen: pl})
		}
		out[pos].Indices = append(out[pos].Indices, i)
	}
	return out
}

// BlockClasses is the store's columnar iterator: it groups the manifest's
// blocks by the padded FFT length of their full-window resample at
// sampleStep resolution, so a replay analysis can hand each class to the
// batched FFT machinery as same-length columns. Indices in the returned
// classes refer to the returned ID slice (manifest order).
func (s *Store) BlockClasses(sampleStep int64) ([]BatchClass, []netsim.BlockID, error) {
	idx, err := s.readIndex()
	if err != nil {
		return nil, nil, err
	}
	if sampleStep <= 0 {
		return nil, nil, fmt.Errorf("dataset: non-positive sample step %d", sampleStep)
	}
	ids := make([]netsim.BlockID, len(idx.Blocks))
	for i, b := range idx.Blocks {
		ids[i] = netsim.BlockID(b.ID)
	}
	samples := int((idx.End - idx.Start + sampleStep - 1) / sampleStep)
	classes := BatchClasses(len(ids), func(int) int { return dsp.PaddedRealLen(samples) })
	return classes, ids, nil
}
