// Package dataset assembles complete simulated datasets: it maps the
// atlas placements of internal/geo onto concrete netsim blocks, attaches
// the ground-truth event calendar plus background noise (outages,
// renumbering), names the dataset windows after the paper's Table 6, and
// provides a compact binary codec for probe observation logs.
package dataset

import (
	"fmt"

	"github.com/diurnalnet/diurnal/internal/events"
	"github.com/diurnalnet/diurnal/internal/geo"
	"github.com/diurnalnet/diurnal/internal/netsim"
)

const (
	saltSpec uint64 = 0xd501
	saltOut  uint64 = 0xd502
	saltRen  uint64 = 0xd503
)

// WorldBlock is one simulated /24 with its geographic placement.
type WorldBlock struct {
	*netsim.Block
	Place geo.Placement
}

// WorldOpts configures BuildWorld.
type WorldOpts struct {
	// Blocks is the number of /24s to build.
	Blocks int
	// Seed drives all randomness.
	Seed uint64
	// Calendar supplies region events; nil means no scheduled events.
	Calendar *events.Calendar
	// Start and End bound the simulation window; background noise events
	// are placed inside it.
	Start, End int64
	// OutageProb is the chance a block suffers one random outage in the
	// window (default 0.03); RenumberProb likewise for renumbering events
	// (default 0.02). Set negative to disable.
	OutageProb, RenumberProb float64
	// Regions overrides the atlas (default geo.DefaultWorld()).
	Regions []geo.Region
}

// SpecFor translates a geographic archetype into a concrete block
// population, with per-block variation drawn from the seed.
func SpecFor(arch geo.Archetype, seed uint64, tz int64) netsim.Spec {
	u := func(salt uint64, lo, hi int) int {
		return lo + int(netsim.HashUnit(seed, saltSpec, salt)*float64(hi-lo+1))
	}
	s := netsim.Spec{TZOffset: tz}
	switch arch {
	case geo.Workplace:
		s.Workers = u(1, 30, 120)
		s.AlwaysOn = u(2, 2, 10)
		s.Firewalled = u(3, 0, 30)
		s.DormantProb = 0.08
		// A quarter of workplaces are dense campuses where servers and
		// lab machines keep most addresses always-responsive; these are
		// the blocks whose full scans take many hours (Figure 4 bottom,
		// Figure 5) and that motivate additional probing (§2.8).
		if netsim.HashUnit(seed, saltSpec, 14) < 0.25 {
			s.AlwaysOn = u(15, 60, 160)
			s.Workers = u(16, 40, 90)
			s.Firewalled = 0
		}
	case geo.HomePublic:
		s.Homes = u(4, 30, 120)
		s.AlwaysOn = u(5, 0, 5)
		s.DormantProb = 0.06
	case geo.NATGateway:
		s.AlwaysOn = u(6, 1, 4)
		s.Intermittent = u(12, 0, 14) // visible churn behind some gateways
	case geo.ServerFarm:
		s.AlwaysOn = u(7, 50, 200)
		s.Intermittent = u(13, 10, 50) // hosting churn
	case geo.FirewalledNet:
		s.Firewalled = u(8, 100, 250)
	case geo.SparseMixed:
		s.Intermittent = u(9, 5, 40)
		s.Workers = u(10, 0, 5)
		s.Homes = u(11, 0, 5)
		s.DormantProb = 0.15
	}
	return s
}

// BuildWorld constructs the simulated world: placements from the atlas,
// block populations from archetypes, calendar events per region, and
// background outage/renumber noise.
func BuildWorld(opts WorldOpts) ([]*WorldBlock, error) {
	if opts.Blocks <= 0 {
		return nil, fmt.Errorf("dataset: Blocks must be positive")
	}
	if opts.End <= opts.Start {
		return nil, fmt.Errorf("dataset: empty window [%d,%d)", opts.Start, opts.End)
	}
	regions := opts.Regions
	if regions == nil {
		regions = geo.DefaultWorld()
	}
	outageProb := opts.OutageProb
	if outageProb == 0 {
		outageProb = 0.03
	}
	renumberProb := opts.RenumberProb
	if renumberProb == 0 {
		renumberProb = 0.02
	}
	placements, err := geo.PlaceBlocks(regions, opts.Blocks, opts.Seed)
	if err != nil {
		return nil, err
	}
	world := make([]*WorldBlock, 0, len(placements))
	span := opts.End - opts.Start
	for _, p := range placements {
		spec := SpecFor(p.Archetype, p.Seed, p.Region.TZOffset)
		id := netsim.BlockID(netsim.Hash64(opts.Seed, uint64(p.Index)) & 0xffffff)
		blk, err := netsim.NewBlock(id, p.Seed, spec)
		if err != nil {
			return nil, fmt.Errorf("dataset: block %d: %w", p.Index, err)
		}
		if opts.Calendar != nil {
			for _, e := range opts.Calendar.EventsFor(p.Region.Code) {
				blk.AddEvent(e)
			}
		}
		if outageProb > 0 && netsim.HashUnit(p.Seed, saltOut, 1) < outageProb {
			at := opts.Start + int64(netsim.HashUnit(p.Seed, saltOut, 2)*float64(span))
			dur := int64(1800 + netsim.HashUnit(p.Seed, saltOut, 3)*float64(10*3600))
			blk.AddEvent(netsim.Event{Kind: netsim.EventOutage, Start: at, End: at + dur})
		}
		if renumberProb > 0 && netsim.HashUnit(p.Seed, saltRen, 1) < renumberProb {
			at := opts.Start + int64(netsim.HashUnit(p.Seed, saltRen, 2)*float64(span))
			blk.AddEvent(netsim.Event{Kind: netsim.EventRenumber, Start: at})
		}
		world = append(world, &WorldBlock{Block: blk, Place: p})
	}
	return world, nil
}
