//go:build linux && !diurnal_nommap

package dataset

import (
	"os"
	"syscall"
)

// mapFile maps f read-only into memory and returns the view with its
// release function. The file descriptor can be closed immediately after
// mapping — the mapping keeps the pages alive — so a store holds no fds
// open per log, only address space. An empty file maps to a nil view
// (mmap of length 0 is an error on Linux).
func mapFile(f *os.File) (data []byte, release func() error, err error) {
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	if int64(int(size)) != size {
		return nil, nil, syscall.EFBIG
	}
	data, err = syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
