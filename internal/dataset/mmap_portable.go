//go:build !linux || diurnal_nommap

package dataset

import (
	"io"
	"os"
)

// mapFile is the portable fallback for platforms (or builds tagged
// diurnal_nommap) without the mmap fast path: it reads the whole file
// into memory through ReadAt-style sequential IO. The returned view obeys
// the same contract as the mmap version — immutable bytes plus a release
// function — so every caller is build-tag agnostic.
func mapFile(f *os.File) (data []byte, release func() error, err error) {
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	data = make([]byte, st.Size())
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}
