package dataset

import (
	"bytes"
	"context"
	"errors"
	"os"
	"runtime"
	"testing"

	"github.com/diurnalnet/diurnal/internal/dsp"
	"github.com/diurnalnet/diurnal/internal/netsim"
	"github.com/diurnalnet/diurnal/internal/probe"
)

// encodedStream returns a realistic encoded log plus its decoded records.
func encodedStream(t *testing.T) ([]byte, []probe.Record) {
	t.Helper()
	blk, err := netsim.NewBlock(77, 88, netsim.Spec{Workers: 40, Homes: 10, AlwaysOn: 4})
	if err != nil {
		t.Fatal(err)
	}
	eng := &probe.Engine{Observers: probe.StandardObservers(1), QuarterSeed: 3}
	perObs, err := eng.Collect(blk, start2020, start2020+2*netsim.SecondsPerDay)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteRecords(&buf, perObs[0]); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), perObs[0]
}

// TestDecodeRecordsBytesParity checks the zero-copy decoder produces
// exactly what the streaming reader produces, on real streams and on the
// empty log.
func TestDecodeRecordsBytesParity(t *testing.T) {
	data, want := encodedStream(t)
	got, err := DecodeRecordsBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}

	var empty bytes.Buffer
	if err := WriteRecords(&empty, nil); err != nil {
		t.Fatal(err)
	}
	if got, err := DecodeRecordsBytes(empty.Bytes()); err != nil || len(got) != 0 {
		t.Fatalf("empty log: %d records, err %v", len(got), err)
	}
}

// TestDecodeRecordsBytesCorruption checks every corruption class the
// streaming reader rejects is rejected identically by the in-memory
// decoder, all wrapping ErrCorruptLog.
func TestDecodeRecordsBytesCorruption(t *testing.T) {
	data, _ := encodedStream(t)
	cases := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"empty", func(d []byte) []byte { return nil }},
		{"bad magic", func(d []byte) []byte {
			d = append([]byte(nil), d...)
			d[0] ^= 0xff
			return d
		}},
		{"truncated mid-record", func(d []byte) []byte { return d[: len(d)/2 : len(d)/2] }},
		{"truncated checksum", func(d []byte) []byte { return d[: len(d)-2 : len(d)-2] }},
		{"flipped payload bit", func(d []byte) []byte {
			d = append([]byte(nil), d...)
			d[len(d)/2] ^= 0x01
			return d
		}},
		{"trailing bytes", func(d []byte) []byte {
			return append(append([]byte(nil), d...), 0xaa, 0xbb)
		}},
	}
	for _, tc := range cases {
		mutated := tc.mut(data)
		if _, err := DecodeRecordsBytes(mutated); !errors.Is(err, ErrCorruptLog) {
			t.Errorf("%s: err = %v, want ErrCorruptLog", tc.name, err)
		}
		// The streaming reader must agree the bytes are bad.
		if _, err := ReadRecords(bytes.NewReader(mutated)); !errors.Is(err, ErrCorruptLog) {
			t.Errorf("%s: streaming reader err = %v, want ErrCorruptLog", tc.name, err)
		}
	}
}

// TestAppendRecordsBytesClipping checks the clipped decode equals a
// decode-then-filter, and that it appends into the caller's buffer.
func TestAppendRecordsBytesClipping(t *testing.T) {
	data, all := encodedStream(t)
	lo := start2020 + 6*3600
	hi := start2020 + 30*3600
	var want []probe.Record
	for _, r := range all {
		if r.T >= lo && r.T < hi {
			want = append(want, r)
		}
	}
	if len(want) == 0 || len(want) == len(all) {
		t.Fatalf("bad window: %d of %d records", len(want), len(all))
	}
	buf := make([]probe.Record, 0, 4)
	got, err := AppendRecordsBytes(buf[:0], data, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("clipped to %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	// Reuse: decoding a second window into the same buffer must not keep
	// stale entries.
	got2, err := AppendRecordsBytes(got[:0], data, start2020, lo)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range got2 {
		if r.T >= lo {
			t.Fatalf("stale or unclipped record %+v", r)
		}
	}
}

// TestBatchClasses pins the grouping contract: ascending indices within a
// class, first-seen order across classes.
func TestBatchClasses(t *testing.T) {
	lens := []int{128, 256, 128, 64, 256, 128}
	classes := BatchClasses(len(lens), func(i int) int { return lens[i] })
	if len(classes) != 3 {
		t.Fatalf("got %d classes, want 3", len(classes))
	}
	wantOrder := []int{128, 256, 64}
	wantIdx := [][]int{{0, 2, 5}, {1, 4}, {3}}
	for ci, c := range classes {
		if c.PaddedLen != wantOrder[ci] {
			t.Fatalf("class %d padded len = %d, want %d", ci, c.PaddedLen, wantOrder[ci])
		}
		if len(c.Indices) != len(wantIdx[ci]) {
			t.Fatalf("class %d has %d indices", ci, len(c.Indices))
		}
		for j, idx := range c.Indices {
			if idx != wantIdx[ci][j] {
				t.Fatalf("class %d index %d = %d, want %d", ci, j, idx, wantIdx[ci][j])
			}
		}
	}
	if got := BatchClasses(0, nil); len(got) != 0 {
		t.Fatalf("empty input produced %d classes", len(got))
	}
}

// replayStore creates a small on-disk store for replay/leak tests.
func replayStore(t *testing.T, dir string) (*Store, []*WorldBlock, Spec) {
	t.Helper()
	spec := Spec{Name: "mmap-test", Start: start2020, Weeks: 1, Sites: []string{"e", "j"}}
	world, err := BuildWorld(WorldOpts{
		Blocks: 6, Seed: 31, Start: spec.Start, End: spec.End(),
		OutageProb: -1, RenumberProb: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := EngineFor(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	store, err := CreateStore(dir, spec, eng, world)
	if err != nil {
		t.Fatal(err)
	}
	return store, world, spec
}

// TestStoreBlockClasses checks the columnar iterator covers the manifest
// exactly once and reports the padded length dsp would use.
func TestStoreBlockClasses(t *testing.T) {
	store, _, spec := replayStore(t, t.TempDir())
	const step = int64(300)
	classes, ids, err := store.BlockClasses(step)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) == 0 {
		t.Fatal("no blocks")
	}
	samples := int((spec.End() - spec.Start + step - 1) / step)
	wantLen := dsp.PaddedRealLen(samples)
	covered := 0
	for _, c := range classes {
		if c.PaddedLen != wantLen {
			t.Fatalf("padded len %d, want %d", c.PaddedLen, wantLen)
		}
		covered += len(c.Indices)
	}
	if covered != len(ids) {
		t.Fatalf("classes cover %d of %d blocks", covered, len(ids))
	}
	if _, _, err := store.BlockClasses(0); err == nil {
		t.Fatal("want error for non-positive sample step")
	}
}

// TestReplayCollectZeroCopyParity checks the mmap-backed CollectInto
// matches a fresh engine collection clipped to a sub-window.
func TestReplayCollectZeroCopyParity(t *testing.T) {
	store, world, spec := replayStore(t, t.TempDir())
	replay, err := store.Replay()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := EngineFor(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, _, blocks, err := store.Index()
	if err != nil {
		t.Fatal(err)
	}
	byID := map[netsim.BlockID]*WorldBlock{}
	for _, wb := range world {
		byID[wb.ID] = wb
	}
	lo := spec.Start + netsim.SecondsPerDay
	hi := spec.End() - netsim.SecondsPerDay
	var bufs [][]probe.Record
	for _, id := range blocks {
		wb := byID[id]
		bufs, err = replay.CollectInto(context.Background(), wb.Block, lo, hi, bufs)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := eng.Collect(wb.Block, spec.Start, spec.End())
		if err != nil {
			t.Fatal(err)
		}
		for oi := range fresh {
			var want []probe.Record
			for _, r := range fresh[oi] {
				if r.T >= lo && r.T < hi {
					want = append(want, r)
				}
			}
			if len(bufs[oi]) != len(want) {
				t.Fatalf("block %v obs %d: %d records, want %d", id, oi, len(bufs[oi]), len(want))
			}
			for i := range want {
				if bufs[oi][i] != want[i] {
					t.Fatalf("block %v obs %d record %d differs", id, oi, i)
				}
			}
		}
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	// The store stays usable after Close: reads re-map on demand.
	if _, _, err := store.LoadBlock(blocks[0]); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
}

func countFDs(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Fatal(err)
	}
	return len(ents)
}

func countMaps(t *testing.T) int {
	t.Helper()
	data, err := os.ReadFile("/proc/self/maps")
	if err != nil {
		t.Fatal(err)
	}
	return bytes.Count(data, []byte("\n"))
}

// TestStoreCloseNoLeak opens, scans, and closes the same store 1000
// times; on Linux the process fd count and mapping count must stay flat.
// A forgotten munmap or leaked fd turns this into a monotonic climb of
// ~2000 entries, far beyond the slack.
func TestStoreCloseNoLeak(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-iteration leak scan skipped in -short mode")
	}
	dir := t.TempDir()
	_, world, _ := replayStore(t, dir)

	checkProc := runtime.GOOS == "linux"
	var fd0, maps0 int
	if checkProc {
		fd0, maps0 = countFDs(t), countMaps(t)
	}
	var bufs [][]probe.Record
	for i := 0; i < 1000; i++ {
		store, err := OpenStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		replay, err := store.Replay()
		if err != nil {
			t.Fatal(err)
		}
		bufs, err = replay.CollectInto(context.Background(), world[0].Block,
			start2020, start2020+netsim.SecondsPerDay, bufs)
		if err != nil {
			t.Fatal(err)
		}
		if err := store.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if checkProc {
		// Slack absorbs runtime noise (goroutine stacks, heap arenas); a
		// real leak of 1000 iterations x 2 logs dwarfs it.
		const slack = 50
		if fd1 := countFDs(t); fd1 > fd0+slack {
			t.Errorf("fd count climbed %d -> %d", fd0, fd1)
		}
		if maps1 := countMaps(t); maps1 > maps0+slack {
			t.Errorf("mapping count climbed %d -> %d", maps0, maps1)
		}
	}
}
