package reconstruct

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/diurnalnet/diurnal/internal/netsim"
	"github.com/diurnalnet/diurnal/internal/probe"
)

var jan6 = netsim.Date(2020, time.January, 6)

func rec(t int64, addr int, up bool) probe.Record {
	return probe.Record{T: t, Addr: uint8(addr), Up: up}
}

func TestReconstructFigure2Style(t *testing.T) {
	// The paper's Figure 2 mechanics on a 4-address block: estimates
	// appear once all addresses have been seen and update as changes are
	// re-observed.
	eb := []int{1, 2, 3, 4}
	// Round times 0..5; two addresses scanned per round.
	recs := []probe.Record{
		rec(0, 1, false), rec(0, 2, false), // round 1: no estimate yet
		rec(1, 3, true), rec(1, 4, true), // round 2: complete, estimate 2
		rec(2, 1, false), rec(2, 3, true), // round 3: estimate 2
		rec(3, 1, true), rec(3, 2, false), // round 4: .1 came up -> 3
		rec(4, 3, false), rec(4, 4, true), // round 5: .3 went down -> 2
		rec(5, 2, true), rec(5, 3, true), // round 6: both up -> 4
	}
	s, err := Reconstruct(recs, eb)
	if err != nil {
		t.Fatal(err)
	}
	wantTimes := []int64{1, 2, 3, 4, 5}
	wantCounts := []float64{2, 2, 3, 2, 4}
	if len(s.Times) != len(wantTimes) {
		t.Fatalf("got %d points (%v), want %d", len(s.Times), s.Counts, len(wantTimes))
	}
	for i := range wantTimes {
		if s.Times[i] != wantTimes[i] || s.Counts[i] != wantCounts[i] {
			t.Fatalf("point %d = (%d,%g), want (%d,%g)",
				i, s.Times[i], s.Counts[i], wantTimes[i], wantCounts[i])
		}
	}
}

func TestReconstructIgnoresNonEBAddresses(t *testing.T) {
	eb := []int{1}
	recs := []probe.Record{
		rec(0, 9, true), // not in E(b): ignored
		rec(1, 1, true),
	}
	s, err := Reconstruct(recs, eb)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 || s.Counts[0] != 1 {
		t.Fatalf("series = %+v", s)
	}
}

func TestReconstructEmptyEB(t *testing.T) {
	if _, err := Reconstruct(nil, nil); err == nil {
		t.Fatal("expected error for empty E(b)")
	}
}

func TestReconstructNeverComplete(t *testing.T) {
	eb := []int{1, 2}
	recs := []probe.Record{rec(0, 1, true), rec(1, 1, true)}
	s, err := Reconstruct(recs, eb)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("incomplete reconstruction emitted points: %+v", s)
	}
}

func TestRepair1LossFixesSandwichedLoss(t *testing.T) {
	recs := []probe.Record{
		rec(0, 5, true),
		rec(1, 5, false), // lost query
		rec(2, 5, true),
	}
	Repair1Loss(recs)
	if !recs[1].Up {
		t.Fatal("101 pattern not repaired to 111")
	}
}

func TestRepair1LossLeavesOtherPatterns(t *testing.T) {
	cases := [][]bool{
		{false, false, true}, // 001
		{true, true, false},  // 110
		{true, false, false}, // 100
		{false, true, false}, // 010: middle is genuine single response
	}
	for _, pattern := range cases {
		recs := make([]probe.Record, len(pattern))
		for i, up := range pattern {
			recs[i] = rec(int64(i), 7, up)
		}
		before := make([]bool, len(recs))
		for i := range recs {
			before[i] = recs[i].Up
		}
		Repair1Loss(recs)
		for i := range recs {
			if recs[i].Up != before[i] {
				t.Fatalf("pattern %v modified at %d", pattern, i)
			}
		}
	}
}

func TestRepair1LossPerAddressIndependence(t *testing.T) {
	// Interleaved addresses must be repaired along their own timelines.
	recs := []probe.Record{
		rec(0, 1, true),
		rec(1, 2, false),
		rec(2, 1, false), // sandwiched for addr 1
		rec(3, 2, false),
		rec(4, 1, true),
		rec(5, 2, true),
	}
	Repair1Loss(recs)
	if !recs[2].Up {
		t.Fatal("addr 1's 101 not repaired")
	}
	if recs[1].Up || recs[3].Up {
		t.Fatal("addr 2's genuine downs must remain")
	}
}

func TestRepair1LossDoubleLossNotRepaired(t *testing.T) {
	// 1001: back-to-back losses are (by design) not repaired; the
	// probability of two consecutive losses is p^2 (§2.3).
	recs := []probe.Record{
		rec(0, 3, true), rec(1, 3, false), rec(2, 3, false), rec(3, 3, true),
	}
	Repair1Loss(recs)
	if recs[1].Up || recs[2].Up {
		t.Fatal("1001 must not be repaired")
	}
}

func TestMergeOrdersAcrossObservers(t *testing.T) {
	a := []probe.Record{rec(0, 1, true), rec(10, 1, true)}
	b := []probe.Record{rec(5, 2, true), rec(15, 2, true)}
	m := Merge([][]probe.Record{a, b})
	want := []int64{0, 5, 10, 15}
	for i, r := range m {
		if r.T != want[i] {
			t.Fatalf("merged[%d].T = %d, want %d", i, r.T, want[i])
		}
	}
}

func TestMergeTieBreaksByObserver(t *testing.T) {
	a := []probe.Record{rec(5, 1, true)}
	b := []probe.Record{rec(5, 2, true)}
	m := Merge([][]probe.Record{a, b})
	if m[0].Addr != 1 || m[1].Addr != 2 {
		t.Fatalf("tie-break wrong: %+v", m)
	}
}

func TestMergeEmptyStreams(t *testing.T) {
	if got := Merge(nil); len(got) != 0 {
		t.Fatal("merge of nothing should be empty")
	}
	if got := Merge([][]probe.Record{nil, {rec(1, 1, true)}, nil}); len(got) != 1 {
		t.Fatalf("merge = %+v", got)
	}
}

func TestScanTimes(t *testing.T) {
	eb := []int{1, 2}
	recs := []probe.Record{
		rec(0, 1, true),
		rec(10, 2, true), // first full scan: 10s
		rec(20, 1, true),
		rec(25, 2, false), // second: 25-10=15s
	}
	got := ScanTimes(recs, eb)
	if len(got) != 2 || got[0] != 10 || got[1] != 15 {
		t.Fatalf("ScanTimes = %v", got)
	}
	if ScanTimes(nil, eb) != nil {
		t.Fatal("no records should yield nil")
	}
	if ScanTimes(recs, nil) != nil {
		t.Fatal("empty eb should yield nil")
	}
}

func TestMeanReplyRate(t *testing.T) {
	recs := []probe.Record{rec(0, 1, true), rec(1, 1, false), rec(2, 1, true), rec(3, 1, true)}
	if got := MeanReplyRate(recs); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("rate = %g", got)
	}
	if MeanReplyRate(nil) != 0 {
		t.Fatal("empty rate should be 0")
	}
}

func TestResample(t *testing.T) {
	s := &Series{
		Times:  []int64{0, 5, 10, 35},
		Counts: []float64{2, 4, 6, 8},
	}
	// Bins of 10s over [0, 40): bin0 has 2,4 -> 3; bin1 has 6; bin2 empty
	// -> carries 6; bin3 has 8.
	got := s.Resample(0, 40, 10)
	want := []float64{3, 6, 6, 8}
	if len(got) != 4 {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("bin %d = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestResampleLeadingGapBackfills(t *testing.T) {
	s := &Series{Times: []int64{25}, Counts: []float64{7}}
	got := s.Resample(0, 30, 10)
	for i, v := range got {
		if v != 7 {
			t.Fatalf("bin %d = %g, want backfilled 7", i, v)
		}
	}
}

func TestResampleEdgeCases(t *testing.T) {
	empty := &Series{}
	if empty.Resample(0, 10, 1) != nil {
		t.Fatal("empty series should resample to nil")
	}
	s := &Series{Times: []int64{5}, Counts: []float64{1}}
	if s.Resample(10, 10, 1) != nil {
		t.Fatal("empty window should be nil")
	}
	if s.Resample(0, 10, 0) != nil {
		t.Fatal("zero step should be nil")
	}
	if s.Resample(100, 200, 10) != nil {
		t.Fatal("window with no points should be nil")
	}
}

func TestDailySwings(t *testing.T) {
	day := int64(86400)
	s := &Series{
		Times:  []int64{0, 1000, 2000, day, day + 1000},
		Counts: []float64{2, 10, 4, 5, 5},
	}
	days, swings := s.DailySwings()
	if len(days) != 2 {
		t.Fatalf("days = %v", days)
	}
	if swings[0] != 8 || swings[1] != 0 {
		t.Fatalf("swings = %v, want [8 0]", swings)
	}
	if d, sw := (&Series{}).DailySwings(); d != nil || sw != nil {
		t.Fatal("empty series should yield nil swings")
	}
}

// TestEndToEndReconstructionAccuracy drives the full probe->reconstruct
// path against ground truth, mirroring the paper's §3.2 validation: a
// 4-observer reconstruction of a diurnal block should correlate strongly
// with the true active counts.
func TestEndToEndReconstructionAccuracy(t *testing.T) {
	blk, err := netsim.NewBlock(100, 555, netsim.Spec{Workers: 60, AlwaysOn: 6})
	if err != nil {
		t.Fatal(err)
	}
	eng := &probe.Engine{Observers: probe.StandardObservers(4), QuarterSeed: 9}
	start, end := jan6, jan6+14*netsim.SecondsPerDay
	perObs, err := eng.Collect(blk, start, end)
	if err != nil {
		t.Fatal(err)
	}
	series, err := ReconstructObservers(perObs, blk.EverActive(), false)
	if err != nil {
		t.Fatal(err)
	}
	if series.Len() == 0 {
		t.Fatal("no reconstruction points")
	}
	est := series.Resample(start, end, 3600)
	truth := make([]float64, len(est))
	for i := range truth {
		truth[i] = float64(blk.CountActive(start + int64(i)*3600 + 1800))
	}
	r := pearson(t, est, truth)
	if r < 0.8 {
		t.Fatalf("reconstruction correlation %g < 0.8", r)
	}
}

// TestMoreObserversScanFaster verifies §3.1: combining observers shortens
// full-block-scan time.
func TestMoreObserversScanFaster(t *testing.T) {
	blk, err := netsim.NewBlock(101, 556, netsim.Spec{AlwaysOn: 200})
	if err != nil {
		t.Fatal(err)
	}
	median := func(n int) int64 {
		eng := &probe.Engine{Observers: probe.StandardObservers(n), QuarterSeed: 4}
		perObs, err := eng.Collect(blk, jan6, jan6+4*netsim.SecondsPerDay)
		if err != nil {
			t.Fatal(err)
		}
		times := ScanTimes(Merge(perObs), blk.EverActive())
		if len(times) == 0 {
			t.Fatal("block never fully scanned")
		}
		vals := make([]int64, len(times))
		copy(vals, times)
		// crude median
		for i := 0; i < len(vals); i++ {
			for j := i + 1; j < len(vals); j++ {
				if vals[j] < vals[i] {
					vals[i], vals[j] = vals[j], vals[i]
				}
			}
		}
		return vals[len(vals)/2]
	}
	one, four := median(1), median(4)
	if four >= one {
		t.Fatalf("4-observer median scan %ds not faster than 1-observer %ds", four, one)
	}
}

// TestLossRepairRestoresReplyRate reproduces Figure 6's mechanism: a lossy
// observer depresses the merged reply rate, and 1-loss repair restores
// most of it while barely changing clean observers.
func TestLossRepairRestoresReplyRate(t *testing.T) {
	blk, err := netsim.NewBlock(102, 557, netsim.Spec{AlwaysOn: 150})
	if err != nil {
		t.Fatal(err)
	}
	obs := probe.StandardObservers(4)
	for i := range obs {
		obs[i].Extra = 4 // sample beyond the first positive
	}
	obs[0].Loss = &probe.LossModel{Base: 0.15}
	eng := &probe.Engine{Observers: obs, QuarterSeed: 12}
	perObs, err := eng.Collect(blk, jan6, jan6+2*netsim.SecondsPerDay)
	if err != nil {
		t.Fatal(err)
	}
	lossyBefore := MeanReplyRate(perObs[0])
	cleanBefore := MeanReplyRate(perObs[1])
	if cleanBefore < 0.99 {
		t.Fatalf("clean observer rate %g, want ~1", cleanBefore)
	}
	if lossyBefore > 0.92 {
		t.Fatalf("lossy observer rate %g, want visibly depressed", lossyBefore)
	}
	for i := range perObs {
		Repair1Loss(perObs[i])
	}
	lossyAfter := MeanReplyRate(perObs[0])
	cleanAfter := MeanReplyRate(perObs[1])
	if lossyAfter <= lossyBefore+0.05 {
		t.Fatalf("repair raised lossy rate only %g -> %g", lossyBefore, lossyAfter)
	}
	if math.Abs(cleanAfter-cleanBefore) > 0.01 {
		t.Fatalf("repair changed clean observer %g -> %g", cleanBefore, cleanAfter)
	}
}

func pearson(t *testing.T, a, b []float64) float64 {
	t.Helper()
	if len(a) != len(b) || len(a) < 2 {
		t.Fatalf("bad pearson inputs %d %d", len(a), len(b))
	}
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= float64(len(a))
	mb /= float64(len(b))
	var sab, saa, sbb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		sab += da * db
		saa += da * da
		sbb += db * db
	}
	if saa == 0 || sbb == 0 {
		return 0
	}
	return sab / math.Sqrt(saa*sbb)
}

func BenchmarkReconstructTwoWeeks4Obs(b *testing.B) {
	blk, err := netsim.NewBlock(103, 558, netsim.Spec{Workers: 80, AlwaysOn: 8})
	if err != nil {
		b.Fatal(err)
	}
	eng := &probe.Engine{Observers: probe.StandardObservers(4), QuarterSeed: 2}
	perObs, err := eng.Collect(blk, jan6, jan6+14*netsim.SecondsPerDay)
	if err != nil {
		b.Fatal(err)
	}
	eb := blk.EverActive()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Reconstruct(Merge(perObs), eb); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMergeIntoReusesCapacity(t *testing.T) {
	a := []probe.Record{rec(0, 1, true), rec(10, 1, true)}
	b := []probe.Record{rec(5, 2, true)}
	dst := make([]probe.Record, 0, 16)
	out := MergeInto(dst, [][]probe.Record{a, b})
	if len(out) != 3 || cap(out) != 16 {
		t.Fatalf("len=%d cap=%d, want 3/16", len(out), cap(out))
	}
	// Too-small dst grows.
	small := make([]probe.Record, 0, 1)
	out2 := MergeInto(small, [][]probe.Record{a, b})
	if len(out2) != 3 {
		t.Fatalf("len=%d", len(out2))
	}
	for i := range out {
		if out[i] != out2[i] {
			t.Fatal("MergeInto results differ between buffers")
		}
	}
}

func TestResampleBoundedProperty(t *testing.T) {
	// Property: resampled values never leave the series' [min, max].
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(100)
		s := &Series{}
		tm := int64(rng.Intn(1000))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < n; i++ {
			tm += int64(1 + rng.Intn(900))
			v := float64(rng.Intn(200))
			s.Times = append(s.Times, tm)
			s.Counts = append(s.Counts, v)
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		out := s.Resample(s.Times[0], s.Times[n-1]+1, 300)
		for _, v := range out {
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDailySwingsNonNegativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := &Series{}
		tm := int64(rng.Intn(86400 * 3))
		for i := 0; i < 50; i++ {
			tm += int64(1 + rng.Intn(20000))
			s.Times = append(s.Times, tm)
			s.Counts = append(s.Counts, float64(rng.Intn(100)))
		}
		days, swings := s.DailySwings()
		if len(days) != len(swings) {
			return false
		}
		prev := int64(-1 << 62)
		for i, d := range days {
			if swings[i] < 0 || d <= prev {
				return false
			}
			prev = d
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestObserverHealthFlagsBrokenSite(t *testing.T) {
	// Three healthy observers and one behind a broken link: the health
	// check must flag exactly the broken one (the paper's §2.7 procedure
	// that discarded sites c and g in 2020).
	obs := probe.StandardObservers(4)
	for i := range obs {
		obs[i].Extra = 2
	}
	obs[2].Loss = &probe.LossModel{Base: 0.4} // the "hardware problem"
	eng := &probe.Engine{Observers: obs, QuarterSeed: 8}
	health := NewObserverHealth(4)
	for i := 0; i < 10; i++ {
		b, err := netsim.NewBlock(netsim.BlockID(0x700+i), uint64(900+i), netsim.Spec{
			Workers: 40, AlwaysOn: 30,
		})
		if err != nil {
			t.Fatal(err)
		}
		perObs, err := eng.Collect(b, jan6, jan6+2*netsim.SecondsPerDay)
		if err != nil {
			t.Fatal(err)
		}
		health.Add(perObs)
	}
	rates := health.Rates()
	if len(rates) != 4 {
		t.Fatalf("rates = %v", rates)
	}
	for i, r := range rates {
		if i == 2 {
			if r > rates[0]-0.1 {
				t.Fatalf("broken observer rate %v not depressed vs %v", r, rates[0])
			}
			continue
		}
		if r < 0.5 {
			t.Fatalf("healthy observer %d rate %v too low", i, r)
		}
	}
	suspects := health.Suspect(0.1)
	if len(suspects) != 1 || suspects[0] != 2 {
		t.Fatalf("suspects = %v, want [2]", suspects)
	}
}

func TestObserverHealthEdgeCases(t *testing.T) {
	h := NewObserverHealth(2)
	// No records at all: every observer is suspect.
	if got := h.Suspect(0.05); len(got) != 2 {
		t.Fatalf("no-data suspects = %v", got)
	}
	h.Add([][]probe.Record{
		{rec(0, 1, true), rec(1, 1, true)},
		{rec(0, 2, true), rec(1, 2, false)},
		{rec(0, 3, true)}, // extra stream beyond tracked count: ignored
	})
	rates := h.Rates()
	if rates[0] != 1.0 || rates[1] != 0.5 {
		t.Fatalf("rates = %v", rates)
	}
	if got := h.Suspect(0.6); len(got) != 0 {
		t.Fatalf("wide tolerance should clear everyone: %v", got)
	}
}

func TestRepair1LossEmptyAndSingle(t *testing.T) {
	Repair1Loss(nil) // must not panic
	recs := []probe.Record{rec(0, 1, false)}
	Repair1Loss(recs)
	if recs[0].Up {
		t.Fatal("single observation must not be rewritten")
	}
}

func TestRepair1LossBoundaryLosses(t *testing.T) {
	// A loss at the very first or very last observation has no sandwich
	// and must be left alone.
	first := []probe.Record{rec(0, 4, false), rec(1, 4, true), rec(2, 4, true)}
	Repair1Loss(first)
	if first[0].Up {
		t.Fatal("leading 011 must not be repaired")
	}
	last := []probe.Record{rec(0, 4, true), rec(1, 4, true), rec(2, 4, false)}
	Repair1Loss(last)
	if last[2].Up {
		t.Fatal("trailing 110 must not be repaired")
	}
}

func TestRepair1LossBackToBack101(t *testing.T) {
	// 10101: each lone zero is sandwiched between responses. The repair
	// scans left to right, so the first rewrite (1_1_1 -> 111_1) feeds the
	// second and both zeros come back up.
	recs := []probe.Record{
		rec(0, 9, true), rec(1, 9, false), rec(2, 9, true),
		rec(3, 9, false), rec(4, 9, true),
	}
	Repair1Loss(recs)
	for i := range recs {
		if !recs[i].Up {
			t.Fatalf("10101 not fully repaired at index %d: %+v", i, recs)
		}
	}
}

func TestSuspectZeroObservers(t *testing.T) {
	h := NewObserverHealth(0)
	if got := h.Suspect(0.1); got != nil {
		t.Fatalf("zero tracked observers should yield nil, got %v", got)
	}
}

func TestSanitizeCleanStreamUntouched(t *testing.T) {
	recs := []probe.Record{
		rec(0, 1, true), rec(0, 2, false), rec(660, 1, true), rec(1320, 2, true),
	}
	orig := append([]probe.Record(nil), recs...)
	out, rep := Sanitize(recs, 0, 2000)
	if rep != (SanitizeReport{}) {
		t.Fatalf("clean stream produced report %+v", rep)
	}
	if len(out) != len(orig) {
		t.Fatalf("clean stream truncated: %d != %d", len(out), len(orig))
	}
	for i := range out {
		if out[i] != orig[i] {
			t.Fatalf("record %d changed: %+v != %+v", i, out[i], orig[i])
		}
	}
}

func TestSanitizeDropsOutOfWindow(t *testing.T) {
	recs := []probe.Record{
		rec(-5, 1, true), rec(10, 1, true), rec(2000, 1, false),
	}
	out, rep := Sanitize(recs, 0, 1000)
	if rep.OutOfWindow != 2 || len(out) != 1 || out[0].T != 10 {
		t.Fatalf("out=%v rep=%+v", out, rep)
	}
}

func TestSanitizeSortsReorderedRecords(t *testing.T) {
	recs := []probe.Record{
		rec(1320, 1, true), rec(0, 1, true), rec(660, 2, false),
	}
	out, rep := Sanitize(recs, 0, 2000)
	if rep.Reordered == 0 {
		t.Fatalf("expected reordered count, got %+v", rep)
	}
	for i := 1; i < len(out); i++ {
		if out[i].T < out[i-1].T {
			t.Fatalf("output not time-ordered: %v", out)
		}
	}
	if len(out) != 3 {
		t.Fatalf("reordering must not drop records: %v", out)
	}
}

func TestSanitizeDedupsAndResolvesConflicts(t *testing.T) {
	recs := []probe.Record{
		rec(0, 1, true), rec(0, 2, false),
		rec(0, 1, true), // exact duplicate
		rec(0, 2, true), // conflicting repeat: first (false) wins
		rec(660, 1, true),
	}
	out, rep := Sanitize(recs, 0, 2000)
	if rep.Duplicates != 1 || rep.Conflicts != 1 {
		t.Fatalf("report %+v", rep)
	}
	if len(out) != 3 {
		t.Fatalf("expected 3 records, got %v", out)
	}
	if out[1].Addr != 2 || out[1].Up {
		t.Fatalf("conflict not resolved to first observation: %+v", out[1])
	}
}

func TestSanitizeReportTotals(t *testing.T) {
	var a SanitizeReport
	a.Merge(SanitizeReport{OutOfWindow: 1, Duplicates: 2, Conflicts: 3, Reordered: 4})
	a.Merge(SanitizeReport{OutOfWindow: 1})
	if a.Total() != 7 || a.Reordered != 4 {
		t.Fatalf("merge/total wrong: %+v", a)
	}
}

func TestResampleWithGapsMarksLongGaps(t *testing.T) {
	// Points every hour for 3 h, then a 10-h hole, then 2 more hours.
	s := &Series{}
	for _, h := range []int64{0, 1, 2, 13, 14} {
		s.Times = append(s.Times, h*3600)
		s.Counts = append(s.Counts, float64(h))
	}
	vals, conf := s.ResampleWithGaps(0, 15*3600, 3600, 2*3600)
	if vals == nil || len(conf) != len(vals) {
		t.Fatalf("vals=%v conf=%v", vals, conf)
	}
	for i := 0; i <= 2; i++ {
		if !conf[i] {
			t.Errorf("measured bin %d marked low-confidence", i)
		}
	}
	// Bin 7 sits 5 h from bin 2 and 6 h from bin 13: beyond maxGap.
	if conf[7] {
		t.Error("mid-gap bin should be low-confidence")
	}
	// Bin 4 is 2 h from the last measured bin: within maxGap.
	if !conf[4] {
		t.Error("near-gap-edge bin should stay confident")
	}
	// Carried value survives: bin 7 carries bin 2's value.
	if vals[7] != 2 {
		t.Errorf("carry-forward broken: vals[7] = %v", vals[7])
	}
}

func TestResampleWithGapsLeadingGap(t *testing.T) {
	s := &Series{Times: []int64{10 * 3600}, Counts: []float64{5}}
	vals, conf := s.ResampleWithGaps(0, 12*3600, 3600, 3*3600)
	if vals == nil {
		t.Fatal("expected values")
	}
	if conf[0] {
		t.Error("backfilled bin 10 h before the first measurement should be low-confidence")
	}
	if !conf[8] {
		t.Error("backfilled bin 2 h before the first measurement should be confident")
	}
	if vals[0] != 5 {
		t.Errorf("leading backfill broken: %v", vals[0])
	}
}

func TestResampleWithGapsDisabled(t *testing.T) {
	s := &Series{Times: []int64{0, 20 * 3600}, Counts: []float64{1, 2}}
	_, conf := s.ResampleWithGaps(0, 24*3600, 3600, 0)
	for i, ok := range conf {
		if !ok {
			t.Fatalf("maxGap<=0 must disable marking, bin %d flagged", i)
		}
	}
}

func TestResampleMatchesResampleWithGaps(t *testing.T) {
	s := &Series{}
	for h := int64(0); h < 48; h += 3 {
		s.Times = append(s.Times, h*3600)
		s.Counts = append(s.Counts, float64(h%7))
	}
	a := s.Resample(0, 48*3600, 3600)
	b, _ := s.ResampleWithGaps(0, 48*3600, 3600, 6*3600)
	if len(a) != len(b) {
		t.Fatalf("length mismatch %d != %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("values diverge at %d: %v != %v", i, a[i], b[i])
		}
	}
}
