package reconstruct

import (
	"testing"

	"github.com/diurnalnet/diurnal/internal/probe"
)

// TestMergeIntoDedupsWithinStreamRun is the duplicate-flood regression:
// a corrupt stream re-emitting an address within one equal-timestamp run
// must collapse to its first observation, so the flood cannot re-enter
// Reconstruct's accumulator once per copy.
func TestMergeIntoDedupsWithinStreamRun(t *testing.T) {
	flooded := []probe.Record{
		{T: 100, Addr: 1, Up: true},
		{T: 100, Addr: 2, Up: false},
		{T: 100, Addr: 1, Up: false}, // exact-addr repeat, conflicting state
		{T: 100, Addr: 1, Up: true},
		{T: 200, Addr: 1, Up: true}, // later run: not a duplicate
	}
	got := Merge([][]probe.Record{flooded})
	want := []probe.Record{
		{T: 100, Addr: 1, Up: true}, // first observation wins
		{T: 100, Addr: 2, Up: false},
		{T: 200, Addr: 1, Up: true},
	}
	if len(got) != len(want) {
		t.Fatalf("merged %d records, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestMergeIntoKeepsCrossObserverRepeats pins the division of labor:
// MergeInto collapses repeats only within one stream's run — the same
// (time, addr) from different observers survives for ResolveContested.
func TestMergeIntoKeepsCrossObserverRepeats(t *testing.T) {
	a := []probe.Record{{T: 100, Addr: 1, Up: true}}
	b := []probe.Record{{T: 100, Addr: 1, Up: false}}
	got := Merge([][]probe.Record{a, b})
	if len(got) != 2 {
		t.Fatalf("merged %d records, want 2 (cross-observer repeat kept): %+v", len(got), got)
	}
}

func TestResolveContestedMajorityWins(t *testing.T) {
	merged := []probe.Record{
		{T: 100, Addr: 1, Up: true},
		{T: 100, Addr: 1, Up: false},
		{T: 100, Addr: 1, Up: false},
	}
	got := ResolveContested(merged)
	if len(got) != 1 {
		t.Fatalf("resolved to %d records, want 1: %+v", len(got), got)
	}
	if got[0].Up {
		t.Errorf("2-of-3 down majority lost: %+v", got[0])
	}
}

func TestResolveContestedTieKeepsFirst(t *testing.T) {
	merged := []probe.Record{
		{T: 100, Addr: 1, Up: true},
		{T: 100, Addr: 1, Up: false},
	}
	got := ResolveContested(merged)
	if len(got) != 1 || !got[0].Up {
		t.Errorf("tie should keep the first report's state: %+v", got)
	}
}

func TestResolveContestedUncontestedPassThrough(t *testing.T) {
	// Distinct addresses within a shared timestamp and distinct
	// timestamps are both uncontested; the stream passes bit-identical.
	merged := []probe.Record{
		{T: 100, Addr: 1, Up: true},
		{T: 100, Addr: 2, Up: false},
		{T: 200, Addr: 1, Up: false},
	}
	want := append([]probe.Record(nil), merged...)
	got := ResolveContested(merged)
	if len(got) != len(want) {
		t.Fatalf("clean stream changed length: %d -> %d", len(want), len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestResolveContestedMixedRun(t *testing.T) {
	// One contested pair inside a run must not disturb its uncontested
	// neighbors, and the pair collapses at its first occurrence.
	merged := []probe.Record{
		{T: 100, Addr: 5, Up: true},
		{T: 100, Addr: 1, Up: false},
		{T: 100, Addr: 5, Up: false},
		{T: 100, Addr: 5, Up: false},
		{T: 100, Addr: 9, Up: true},
	}
	got := ResolveContested(merged)
	want := []probe.Record{
		{T: 100, Addr: 5, Up: false}, // majority down, first position
		{T: 100, Addr: 1, Up: false},
		{T: 100, Addr: 9, Up: true},
	}
	if len(got) != len(want) {
		t.Fatalf("resolved to %d records, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestSanitizeReportMerge(t *testing.T) {
	var acc SanitizeReport
	acc.Merge(SanitizeReport{OutOfWindow: 1, Duplicates: 2, Conflicts: 3, Reordered: 4})
	acc.Merge(SanitizeReport{OutOfWindow: 10, Duplicates: 20, Conflicts: 30, Reordered: 40})
	want := SanitizeReport{OutOfWindow: 11, Duplicates: 22, Conflicts: 33, Reordered: 44}
	if acc != want {
		t.Errorf("accumulated %+v, want %+v", acc, want)
	}
	if acc.Total() != 11+22+33 {
		t.Errorf("Total() = %d, want %d (Reordered drops nothing)", acc.Total(), 66)
	}
}
