// Package reconstruct turns incremental probe observations into estimates
// of how many addresses in a /24 block are active over time (paper §2.3):
// each address keeps its last observed state until re-probed, and the
// estimate becomes valid once every ever-active address E(b) has been
// observed at least once. The package also implements 1-loss repair
// (§2.3, §3.3), multi-observer merging (§2.7), full-block-scan timing
// (§3.1), and reply-rate accounting (Figure 6).
package reconstruct

import (
	"fmt"
	"sort"

	"github.com/diurnalnet/diurnal/internal/probe"
)

// Repair1Loss applies the paper's 1-loss repair to a single observer's
// record stream, in place: for each address, the observation pattern
// responsive → non-responsive → responsive (101) is rewritten to 111,
// because a lone non-response sandwiched between responses is more likely
// a lost query than a briefly unused address. Patterns 001, 110 and others
// are left untouched. Records must be in time order (as produced by the
// prober).
func Repair1Loss(records []probe.Record) {
	// prev2/prev1 hold indices of the last two observations per address,
	// -1 when unseen.
	var prev1, prev2 [256]int
	for i := range prev1 {
		prev1[i] = -1
		prev2[i] = -1
	}
	for i, r := range records {
		a := int(r.Addr)
		if p2, p1 := prev2[a], prev1[a]; p2 >= 0 && p1 >= 0 {
			if records[p2].Up && !records[p1].Up && r.Up {
				records[p1].Up = true
			}
		}
		prev2[a] = prev1[a]
		prev1[a] = i
	}
}

// SanitizeReport counts what Sanitize quarantined from one record stream.
type SanitizeReport struct {
	// OutOfWindow records carried timestamps outside the collection
	// window (corrupted or clock-skewed past the edges).
	OutOfWindow int
	// Duplicates were exact repeats of an earlier (time, address,
	// response) observation — replayed batches.
	Duplicates int
	// Conflicts were repeats of a (time, address) pair disagreeing on the
	// response; the first observation wins.
	Conflicts int
	// Reordered counts records that arrived behind a later timestamp and
	// had to be re-sorted (no records are dropped for this).
	Reordered int
}

// Total returns the number of records removed from the stream.
func (r SanitizeReport) Total() int { return r.OutOfWindow + r.Duplicates + r.Conflicts }

// Merge accumulates another report into r.
func (r *SanitizeReport) Merge(o SanitizeReport) {
	r.OutOfWindow += o.OutOfWindow
	r.Duplicates += o.Duplicates
	r.Conflicts += o.Conflicts
	r.Reordered += o.Reordered
}

// Sanitize cleans one observer's record stream in place, quarantining the
// malformations a broken collection path introduces (§2.7's "occasionally
// broken observers"): records with timestamps outside [start, end) are
// dropped, out-of-order records are stably re-sorted by time, and repeats
// of a (time, address) pair are removed — exact repeats count as
// Duplicates, disagreeing repeats as Conflicts with the first observation
// kept. The returned slice aliases records. A clean stream passes through
// untouched with a zero report, so the pass is safe to run unconditionally.
func Sanitize(records []probe.Record, start, end int64) ([]probe.Record, SanitizeReport) {
	if sanitizeClean(records, start, end) {
		return records, SanitizeReport{}
	}
	var rep SanitizeReport
	kept := records[:0]
	for _, r := range records {
		if r.T < start || r.T >= end {
			rep.OutOfWindow++
			continue
		}
		kept = append(kept, r)
	}
	for i := 1; i < len(kept); i++ {
		if kept[i].T < kept[i-1].T {
			rep.Reordered++
		}
	}
	if rep.Reordered > 0 {
		sort.SliceStable(kept, func(i, j int) bool { return kept[i].T < kept[j].T })
	}
	// Within each equal-timestamp run (one probing round), keep the first
	// observation of each address.
	out := kept[:0]
	var seen, seenUp [256]bool
	var touched []uint8
	for i := 0; i < len(kept); {
		j := i
		for j < len(kept) && kept[j].T == kept[i].T {
			j++
		}
		for _, r := range kept[i:j] {
			if seen[r.Addr] {
				if seenUp[r.Addr] == r.Up {
					rep.Duplicates++
				} else {
					rep.Conflicts++
				}
				continue
			}
			seen[r.Addr] = true
			seenUp[r.Addr] = r.Up
			touched = append(touched, r.Addr)
			out = append(out, r)
		}
		for _, a := range touched {
			seen[a] = false
		}
		touched = touched[:0]
		i = j
	}
	return out, rep
}

// sanitizeClean reports whether the stream is already sane — in window,
// time-ordered, no repeated (time, address) pairs within a round — with a
// single read-only pass. Healthy collectors produce clean streams almost
// always, and skipping the rewriting passes there roughly halves the cost
// of unconditional sanitization.
func sanitizeClean(records []probe.Record, start, end int64) bool {
	var seen [256]bool
	var touched [256]uint8 // a clean run holds each address at most once
	nt := 0
	for i, r := range records {
		if r.T < start || r.T >= end {
			return false
		}
		if i > 0 {
			if r.T < records[i-1].T {
				return false
			}
			if r.T != records[i-1].T {
				for _, a := range touched[:nt] {
					seen[a] = false
				}
				nt = 0
			}
		}
		if seen[r.Addr] {
			return false
		}
		seen[r.Addr] = true
		touched[nt] = r.Addr
		nt++
	}
	return true
}

// Merge interleaves per-observer record streams into one time-ordered
// stream. Each input stream must itself be time-ordered; ties across
// streams resolve by stream index.
func Merge(perObserver [][]probe.Record) []probe.Record {
	return MergeInto(nil, perObserver)
}

// MergeInto is Merge reusing dst's capacity. The merge is a direct min-scan
// over the stream heads: with a handful of observers (the paper uses six
// sites at most) that beats a binary heap, whose interface-dispatched
// comparisons dominated the merge in profiles, while producing the
// identical record order (time-sorted, ties by stream index).
func MergeInto(dst []probe.Record, perObserver [][]probe.Record) []probe.Record {
	total := 0
	for _, s := range perObserver {
		total += len(s)
	}
	out := dst[:0]
	if cap(out) < total {
		out = make([]probe.Record, 0, total)
	}
	k := len(perObserver)
	var headsArr [8]int
	var heads []int
	if k <= len(headsArr) {
		heads = headsArr[:k]
		for i := range heads {
			heads[i] = 0
		}
	} else {
		heads = make([]int, k)
	}
	for {
		best := -1
		var bestT int64
		for i := 0; i < k; i++ {
			s := perObserver[i]
			if heads[i] >= len(s) {
				continue
			}
			if t := s[heads[i]].T; best == -1 || t < bestT {
				best, bestT = i, t
			}
		}
		if best == -1 {
			return out
		}
		// Emit the winning stream's whole run of equal timestamps at once.
		// A probing round leaves one record per probed address with the same
		// T, so runs are long; under the (T, stream index) order the entire
		// run precedes every other stream's records — lower-index streams
		// hold only later timestamps (they lost the scan), and equal-T
		// records in higher-index streams sort after by the tie-break.
		s := perObserver[best]
		h := heads[best]
		j := h + 1
		for j < len(s) && s[j].T == bestT {
			j++
		}
		out = appendRunDedup(out, s[h:j])
		heads[best] = j
	}
}

// appendRunDedup appends one stream's equal-timestamp run to out,
// dropping repeats of an address within the run (first observation
// wins). A healthy prober emits each address at most once per round, so
// this only fires on corrupt streams — a duplicate-flooded stream
// re-emitting a round at the same timestamp would otherwise re-enter
// Reconstruct's state machine once per copy and inflate active-address
// counts through its last-write-wins accumulator. Runs from different
// observers are never collapsed here; cross-observer repeats are
// ResolveContested's job.
func appendRunDedup(out, run []probe.Record) []probe.Record {
	// Adaptive probing keeps runs short (a round stops at its first
	// positive), so a quadratic duplicate scan with an early exit beats
	// clearing a [256]bool per run; the array path below runs only on
	// streams already known corrupt.
	dup := false
scan:
	for i := 1; i < len(run); i++ {
		for k := 0; k < i; k++ {
			if run[k].Addr == run[i].Addr {
				dup = true
				break scan
			}
		}
	}
	if !dup {
		return append(out, run...)
	}
	var seen [256]bool
	for _, r := range run {
		if seen[r.Addr] {
			continue
		}
		seen[r.Addr] = true
		out = append(out, r)
	}
	return out
}

// ResolveContested resolves cross-observer disagreements in a merged,
// time-ordered stream: when several observers report the same (time,
// addr) pair, the majority response wins instead of the stream-order
// last write that Reconstruct's accumulator would otherwise trust, and
// the pair collapses to a single record (at its first occurrence's
// position). Ties keep the first report's state. The compaction is in
// place; a stream with no repeated (time, addr) pairs — every merge of
// healthy observers, whose unsynchronized rounds never share timestamps
// — passes through bit-identical, which is what keeps the robust merge
// mode a no-op on clean worlds.
func ResolveContested(merged []probe.Record) []probe.Record {
	out := merged[:0]
	for i := 0; i < len(merged); {
		j := i + 1
		for j < len(merged) && merged[j].T == merged[i].T {
			j++
		}
		run := merged[i:j]
		contested := false
	scan:
		for a := 1; a < len(run); a++ {
			for b := 0; b < a; b++ {
				if run[b].Addr == run[a].Addr {
					contested = true
					break scan
				}
			}
		}
		if !contested {
			// In-place forward copy: the write index never passes the
			// read index, and copy's memmove semantics handle overlap.
			out = append(out, run...)
			i = j
			continue
		}
		var total, up [256]int32
		for _, r := range run {
			total[r.Addr]++
			if r.Up {
				up[r.Addr]++
			}
		}
		var done [256]bool
		for _, r := range run {
			if done[r.Addr] {
				continue
			}
			done[r.Addr] = true
			rec := r
			if up[r.Addr]*2 > total[r.Addr] {
				rec.Up = true
			} else if up[r.Addr]*2 < total[r.Addr] {
				rec.Up = false
			}
			out = append(out, rec)
		}
		i = j
	}
	return out
}

// Series is a reconstructed active-address count over time: one point per
// probing timestamp once the reconstruction is complete.
type Series struct {
	Times  []int64
	Counts []float64
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Times) }

// Reconstruct runs the address-state accumulator over a merged,
// time-ordered record stream. eb is the block's ever-active target list
// E(b); output points begin once every address in eb has been observed at
// least once ("complete reconstruction", §2.3). It returns an error when
// eb is empty.
func Reconstruct(merged []probe.Record, eb []int) (*Series, error) {
	if len(eb) == 0 {
		return nil, fmt.Errorf("reconstruct: empty target list")
	}
	// The target list is a membership test on the record hot loop: an
	// array beats a map by an order of magnitude there. Addresses outside
	// 0..255 can never match a record (Addr is uint8) but still count as
	// distinct targets, keeping completion semantics unchanged.
	var inEB [256]bool
	nEB := 0
	var extra map[int]bool
	for _, a := range eb {
		if a >= 0 && a < 256 {
			if !inEB[a] {
				inEB[a] = true
				nEB++
			}
		} else {
			if extra == nil {
				extra = make(map[int]bool)
			}
			if !extra[a] {
				extra[a] = true
				nEB++
			}
		}
	}
	// Pre-size the output: one point per distinct timestamp is an upper
	// bound, counted in one compare-only pass so the build loop below
	// never reallocates mid-build.
	points := 0
	{
		var prevT int64
		havePrev := false
		for i := range merged {
			if t := merged[i].T; !havePrev || t != prevT {
				points++
				prevT, havePrev = t, true
			}
		}
	}
	var state [256]int8 // -1 unknown, 0 down, 1 up
	for i := range state {
		state[i] = -1
	}
	seen, up := 0, 0
	s := &Series{Times: make([]int64, 0, points), Counts: make([]float64, 0, points)}
	times, counts := s.Times, s.Counts
	var curT int64
	started := false
	for i := range merged {
		r := &merged[i]
		a := int(r.Addr)
		if !inEB[a] {
			continue
		}
		if started && r.T != curT {
			if seen == nEB {
				times = append(times, curT)
				counts = append(counts, float64(up))
			}
		}
		curT = r.T
		started = true
		old := state[a]
		if old == -1 {
			seen++
		}
		if old == 1 {
			up--
		}
		if r.Up {
			state[a] = 1
			up++
		} else {
			state[a] = 0
		}
	}
	if started && seen == nEB {
		times = append(times, curT)
		counts = append(counts, float64(up))
	}
	s.Times, s.Counts = times, counts
	return s, nil
}

// ReconstructObservers is the common pipeline: optionally 1-loss-repair
// each observer's stream, merge, and reconstruct against eb.
func ReconstructObservers(perObserver [][]probe.Record, eb []int, repair bool) (*Series, error) {
	if repair {
		for _, s := range perObserver {
			Repair1Loss(s)
		}
	}
	return Reconstruct(Merge(perObserver), eb)
}

// ScanTimes returns the durations of successive complete scans of eb in
// the merged stream: the first value is the time from the first record
// until every address has been seen once, and each subsequent value is the
// time to see every address again. Blocks never fully covered yield nil.
func ScanTimes(merged []probe.Record, eb []int) []int64 {
	if len(eb) == 0 || len(merged) == 0 {
		return nil
	}
	inEB := make(map[int]bool, len(eb))
	for _, a := range eb {
		inEB[a] = true
	}
	seen := make(map[int]bool, len(eb))
	var out []int64
	scanStart := merged[0].T
	for _, r := range merged {
		a := int(r.Addr)
		if !inEB[a] {
			continue
		}
		seen[a] = true
		if len(seen) == len(inEB) {
			out = append(out, r.T-scanStart)
			seen = make(map[int]bool, len(eb))
			scanStart = r.T
		}
	}
	return out
}

// MeanReplyRate returns the fraction of records that were positive, the
// quantity compared across observers in Figure 6d. It returns 0 for an
// empty stream.
func MeanReplyRate(records []probe.Record) float64 {
	if len(records) == 0 {
		return 0
	}
	up := 0
	for _, r := range records {
		if r.Up {
			up++
		}
	}
	return float64(up) / float64(len(records))
}

// Resample projects the series onto a regular grid of step seconds
// spanning [start, end): each bin takes the mean of the points falling in
// it, empty bins carry the previous bin's value forward, and leading empty
// bins take the first observed value. It returns nil when the series has
// no points or the window is empty.
func (s *Series) Resample(start, end, step int64) []float64 {
	vals, _ := s.ResampleWithGaps(start, end, step, 0)
	return vals
}

// ResampleScratch holds the working buffers of ResampleInto so repeated
// resampling (the block classifier resamples every 28-day segment of every
// block) reuses memory instead of allocating three slices per call. Not
// safe for concurrent use.
type ResampleScratch struct {
	sums   []float64
	counts []int
	out    []float64
}

// ResampleInto is Resample writing into scratch-owned buffers. The returned
// slice is valid until the next call with the same scratch; it must not be
// retained. Semantics are identical to Resample (no gap marking).
func (s *Series) ResampleInto(sc *ResampleScratch, start, end, step int64) []float64 {
	if s.Len() == 0 || end <= start || step <= 0 {
		return nil
	}
	n := int((end - start + step - 1) / step)
	if cap(sc.sums) < n {
		sc.sums = make([]float64, n)
		sc.counts = make([]int, n)
		sc.out = make([]float64, n)
	}
	sums := sc.sums[:n]
	counts := sc.counts[:n]
	out := sc.out[:n]
	for i := range sums {
		sums[i] = 0
		counts[i] = 0
	}
	if !s.resampleMeans(sums, counts, out, start, end, step) {
		return nil
	}
	return out
}

// resampleMeans bins the series into the pre-sized (and zeroed) sums/counts
// buffers, then fills out with per-bin means, carrying values forward over
// empty bins and backfilling leading ones. Returns false when no point
// falls inside the window.
func (s *Series) resampleMeans(sums []float64, counts []int, out []float64, start, end, step int64) bool {
	n := len(out)
	for i, t := range s.Times {
		if t < start || t >= end {
			continue
		}
		bin := int((t - start) / step)
		sums[bin] += s.Counts[i]
		counts[bin]++
	}
	first := -1
	for i := 0; i < n; i++ {
		if counts[i] > 0 {
			out[i] = sums[i] / float64(counts[i])
			if first == -1 {
				first = i
			}
		} else if first >= 0 {
			out[i] = out[i-1]
		} else {
			out[i] = 0
		}
	}
	if first == -1 {
		return false
	}
	for i := 0; i < first; i++ {
		out[i] = out[first]
	}
	return true
}

// ResampleWithGaps is Resample plus a per-bin confidence mask: conf[i] is
// false when bin i holds no measurement and the nearest measured bin (in
// either direction) is more than maxGap seconds away — the value was
// carried forward or backfilled across a gap too long to trust, such as an
// observer outage, rather than ordinary probe spacing. maxGap <= 0
// disables gap marking (every bin is confident). Both returns are nil when
// the series has no points in the window or the window is empty.
func (s *Series) ResampleWithGaps(start, end, step, maxGap int64) ([]float64, []bool) {
	if s.Len() == 0 || end <= start || step <= 0 {
		return nil, nil
	}
	n := int((end - start + step - 1) / step)
	sums := make([]float64, n)
	counts := make([]int, n)
	out := make([]float64, n)
	if !s.resampleMeans(sums, counts, out, start, end, step) {
		return nil, nil
	}
	conf := make([]bool, n)
	if maxGap <= 0 {
		for i := range conf {
			conf[i] = true
		}
		return out, conf
	}
	// Distance (in bins) to the nearest measured bin on either side.
	maxBins := int(maxGap / step)
	prev := -1
	dist := make([]int, n)
	for i := 0; i < n; i++ {
		if counts[i] > 0 {
			prev = i
			dist[i] = 0
			continue
		}
		if prev < 0 {
			dist[i] = n // no measurement yet; bounded by the next pass
		} else {
			dist[i] = i - prev
		}
	}
	next := -1
	for i := n - 1; i >= 0; i-- {
		if counts[i] > 0 {
			next = i
		} else if next >= 0 && next-i < dist[i] {
			dist[i] = next - i
		}
		conf[i] = dist[i] <= maxBins
	}
	return out, conf
}

// DailySwings returns, for each complete UTC day covered by the series,
// the range (max - min) of the reconstructed count — the paper's
// midnight-to-midnight daily swing (§2.4). Days with no points are
// omitted; the returned day indices are UTC days since the epoch.
func (s *Series) DailySwings() (days []int64, swings []float64) {
	if s.Len() == 0 {
		return nil, nil
	}
	var curDay int64
	var min, max float64
	have := false
	flush := func() {
		if have {
			days = append(days, curDay)
			swings = append(swings, max-min)
		}
	}
	for i, t := range s.Times {
		d := t / 86400
		if !have || d != curDay {
			flush()
			curDay = d
			min, max = s.Counts[i], s.Counts[i]
			have = true
			continue
		}
		if s.Counts[i] < min {
			min = s.Counts[i]
		}
		if s.Counts[i] > max {
			max = s.Counts[i]
		}
	}
	flush()
	return days, swings
}

// ObserverHealth accumulates per-observer reply statistics across many
// blocks, the §2.7 cross-check ("we analyze each observer independently
// and compare their results against each other") that led the paper to
// discard sites c and g in 2020 after hardware problems.
type ObserverHealth struct {
	up, total []int64
}

// NewObserverHealth tracks n observers.
func NewObserverHealth(n int) *ObserverHealth {
	return &ObserverHealth{up: make([]int64, n), total: make([]int64, n)}
}

// Add folds one block's per-observer record streams into the tallies.
// Streams beyond the tracked observer count are ignored.
func (h *ObserverHealth) Add(perObserver [][]probe.Record) {
	for oi, records := range perObserver {
		if oi >= len(h.up) {
			break
		}
		for _, r := range records {
			h.total[oi]++
			if r.Up {
				h.up[oi]++
			}
		}
	}
}

// Rates returns each observer's aggregate reply rate (0 for observers
// with no records).
func (h *ObserverHealth) Rates() []float64 {
	out := make([]float64, len(h.up))
	for i := range out {
		if h.total[i] > 0 {
			out[i] = float64(h.up[i]) / float64(h.total[i])
		}
	}
	return out
}

// Suspect returns the indices of observers whose reply rate sits more
// than tol below the median of all observers — the signature of a broken
// site or a badly congested upstream. Observers with no records are also
// suspect. With zero tracked observers it returns nil.
func (h *ObserverHealth) Suspect(tol float64) []int {
	rates := h.Rates()
	if len(rates) == 0 {
		return nil
	}
	sorted := append([]float64(nil), rates...)
	sort.Float64s(sorted)
	med := sorted[len(sorted)/2]
	var out []int
	for i, r := range rates {
		if h.total[i] == 0 || r < med-tol {
			out = append(out, i)
		}
	}
	return out
}
