package reconstruct

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/diurnalnet/diurnal/internal/probe"
)

// TestMergeMatchesStableSort pits the min-scan merge against a stable
// sort by (T, stream index) over randomized stream shapes — including many
// ties and more streams than the inline head array holds.
func TestMergeMatchesStableSort(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(12) // crosses the 8-stream inline-array boundary
		streams := make([][]probe.Record, k)
		type tagged struct {
			rec    probe.Record
			stream int
		}
		var all []tagged
		for i := range streams {
			m := rng.Intn(30)
			tt := int64(rng.Intn(5))
			for j := 0; j < m; j++ {
				tt += int64(rng.Intn(3)) // frequent cross-stream ties
				rec := probe.Record{T: tt, Addr: uint8((i*31 + j) % 256)}
				streams[i] = append(streams[i], rec)
				all = append(all, tagged{rec, i})
			}
		}
		sort.SliceStable(all, func(a, b int) bool {
			if all[a].rec.T != all[b].rec.T {
				return all[a].rec.T < all[b].rec.T
			}
			return all[a].stream < all[b].stream
		})
		got := Merge(streams)
		if len(got) != len(all) {
			t.Fatalf("trial %d: merged %d records, want %d", trial, len(got), len(all))
		}
		for i := range got {
			if got[i] != all[i].rec {
				t.Fatalf("trial %d: record %d = %+v, want %+v", trial, i, got[i], all[i].rec)
			}
		}
	}
}

// TestResampleIntoMatchesResample checks the scratch-buffer resample
// against the allocating one bit for bit, across reused scratches of
// varying bin counts.
func TestResampleIntoMatchesResample(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var sc ResampleScratch
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(200)
		s := &Series{}
		tt := int64(rng.Intn(100))
		for i := 0; i < n; i++ {
			tt += int64(1 + rng.Intn(4000))
			s.Times = append(s.Times, tt)
			s.Counts = append(s.Counts, float64(rng.Intn(40)))
		}
		start := s.Times[0] - int64(rng.Intn(5000))
		end := s.Times[len(s.Times)-1] + int64(rng.Intn(5000))
		step := int64(600 * (1 + rng.Intn(6)))
		want := s.Resample(start, end, step)
		got := s.ResampleInto(&sc, start, end, step)
		if (got == nil) != (want == nil) || len(got) != len(want) {
			t.Fatalf("trial %d: len %d vs %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d bin %d: %v vs %v", trial, i, got[i], want[i])
			}
		}
	}
	// Empty-window and no-point cases must agree too.
	empty := &Series{}
	if empty.ResampleInto(&sc, 0, 100, 10) != nil {
		t.Error("empty series should resample to nil")
	}
	one := &Series{Times: []int64{1000}, Counts: []float64{3}}
	if one.ResampleInto(&sc, 2000, 3000, 100) != nil {
		t.Error("series with no points in window should resample to nil")
	}
}

// TestResampleIntoSteadyStateAllocs checks that repeated same-size
// resamples on a warm scratch allocate nothing.
func TestResampleIntoSteadyStateAllocs(t *testing.T) {
	s := &Series{}
	for i := 0; i < 500; i++ {
		s.Times = append(s.Times, int64(i*660))
		s.Counts = append(s.Counts, float64(i%30))
	}
	var sc ResampleScratch
	start, end, step := int64(0), int64(500*660), int64(3600)
	s.ResampleInto(&sc, start, end, step)
	if n := testing.AllocsPerRun(50, func() { s.ResampleInto(&sc, start, end, step) }); n > 0 {
		t.Errorf("warm ResampleInto allocates %.0f times per call", n)
	}
}
