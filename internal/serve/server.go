package serve

// The degradation-aware query server. One Server owns the current
// snapshot (behind an atomic pointer, refcounted per request), the
// admission pool, and the response cache, and exposes the HTTP surface:
//
//	GET /v1/cell?lat=&lon=[&dir=down|up][&from=&to=]   point read
//	GET /v1/continent?name=Asia[&from=&to=]            bounded aggregate
//	GET /v1/topk?k=10[&dir=][&from=&to=]               full ranking scan
//	GET /v1/block?id=N                                 change events
//	GET /v1/stats                                      serving-plane health
//	GET /healthz                                       load-balancer probe
//
// Every 5xx the plane emits deliberately is a 503 with Retry-After;
// anything else would teach clients to retry-storm. The swap path
// (Install/LoadLatest) verifies before exposing, quarantines what fails,
// and never drops the last-good snapshot on a failed swap.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/diurnalnet/diurnal/internal/changepoint"
	"github.com/diurnalnet/diurnal/internal/core"
	"github.com/diurnalnet/diurnal/internal/geo"
	"github.com/diurnalnet/diurnal/internal/netsim"
	"github.com/diurnalnet/diurnal/internal/storage"
)

// Config tunes a Server. The zero value serves with the defaults noted
// per field.
type Config struct {
	// MaxInflight bounds admitted-but-unfinished requests across all
	// classes (default 64); per-class ceilings derive from it (see
	// newAdmission).
	MaxInflight int
	// QueryTimeout is the per-request deadline propagated into snapshot
	// disk reads (default 2s).
	QueryTimeout time.Duration
	// RetryAfter is the hint attached to every 503 (default 1s).
	RetryAfter time.Duration
	// CacheCap, FreshTTL and StaleTTL tune the response cache (defaults
	// 4096 entries, 5s fresh, 50s stale-servable).
	CacheCap           int
	FreshTTL, StaleTTL time.Duration
	// ExpectSignature pins the run signature snapshots must carry. Empty
	// pins to the first snapshot installed, so a later swap can never
	// cross runs unnoticed.
	ExpectSignature []byte
	// Dir is the snapshot directory used by LoadLatest and as the
	// quarantine destination.
	Dir string
	// Retain keeps the newest Retain snapshots on disk, garbage-collecting
	// older ones after each successful install (see RetainSnapshots).
	// Zero disables retention GC. Snapshots still serving draining
	// readers and quarantined files are never collected.
	Retain int
	// DiskBudget caps Dir's total bytes. Publish refuses to write a
	// snapshot that would push the directory past it (after trying a
	// retention pass), returning ErrDiskBudget. Zero means unlimited.
	DiskBudget int64
	// FS is the filesystem the swap and retention paths go through
	// (default storage.OS); tests inject a faults.FS here.
	FS storage.FS
}

func (c Config) withDefaults() Config {
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 2 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.FS == nil {
		c.FS = storage.OS
	}
	return c
}

// Server serves result queries from the current snapshot.
type Server struct {
	cfg   Config
	admit *admission
	cache *responseCache
	cur   atomic.Pointer[Snapshot]
	mux   *http.ServeMux

	// swapMu serializes Install/LoadLatest/Publish; queries never take it.
	swapMu    sync.Mutex
	pinnedSig []byte
	// history holds previously installed snapshots whose readers may
	// still be draining; retention GC must not delete their files until
	// the last reader releases. Guarded by swapMu.
	history []*Snapshot

	swaps          atomic.Uint64
	quarantined    atomic.Uint64
	retired        atomic.Uint64
	publishRefused atomic.Uint64
	diskBytes      atomic.Int64
	lastSwapErr    atomic.Value // string
	lastGCErr      atomic.Value // string

	// revalMu guards the in-flight revalidation set (singleflight).
	revalMu sync.Mutex
	reval   map[string]bool
}

// New builds a Server; install a snapshot before serving traffic (the
// endpoints answer 503 until one is live).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		admit:     newAdmission(cfg.MaxInflight),
		cache:     newResponseCache(cfg.CacheCap, cfg.FreshTTL, cfg.StaleTTL),
		mux:       http.NewServeMux(),
		pinnedSig: append([]byte(nil), cfg.ExpectSignature...),
		reval:     map[string]bool{},
	}
	s.lastSwapErr.Store("")
	s.lastGCErr.Store("")
	s.mux.HandleFunc("/v1/cell", func(w http.ResponseWriter, r *http.Request) {
		s.handle(w, r, ClassCell, s.computeCell)
	})
	s.mux.HandleFunc("/v1/continent", func(w http.ResponseWriter, r *http.Request) {
		s.handle(w, r, ClassRegion, s.computeContinent)
	})
	s.mux.HandleFunc("/v1/topk", func(w http.ResponseWriter, r *http.Request) {
		s.handle(w, r, ClassTopK, s.computeTopK)
	})
	s.mux.HandleFunc("/v1/block", func(w http.ResponseWriter, r *http.Request) {
		s.handle(w, r, ClassCell, s.computeBlock)
	})
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s
}

// Handler returns the HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Close releases the current snapshot and any still-draining
// predecessors.
func (s *Server) Close() {
	s.swapMu.Lock()
	hist := s.history
	s.history = nil
	s.swapMu.Unlock()
	for _, sn := range hist {
		sn.Close()
	}
	if old := s.cur.Swap(nil); old != nil {
		old.Close()
	}
}

// CurrentSnapshot returns the live snapshot (nil when none is
// installed), for instrumentation and fault injection via
// Snapshot.SetReaderAt. Callers must not Close it; the server owns its
// lifecycle.
func (s *Server) CurrentSnapshot() *Snapshot { return s.cur.Load() }

// Current returns the live snapshot's ID and path ("" when none).
func (s *Server) Current() (id, path string) {
	if sn := s.cur.Load(); sn != nil {
		return sn.ID(), sn.Path()
	}
	return "", ""
}

// --- swap protocol -------------------------------------------------------

// errQuarantined wraps swap failures that moved the file aside.
var errQuarantined = errors.New("snapshot quarantined")

// Install verifies the snapshot at path and atomically swaps it in. On
// any fault — torn file, bit flip, foreign run signature — the file is
// quarantined (renamed *.quarantined), the error returned, and the
// server keeps serving the last-good snapshot untouched.
func (s *Server) Install(path string) error {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	sn, err := s.vet(path)
	if err != nil {
		s.lastSwapErr.Store(err.Error())
		return err
	}
	old := s.cur.Swap(sn)
	s.cache.bumpEpoch()
	s.swaps.Add(1)
	s.lastSwapErr.Store("")
	if old != nil {
		old.Close()
		// Keep the displaced snapshot visible to retention GC until its
		// last reader drains; its file must outlive in-flight requests.
		s.history = append(s.history, old)
	}
	s.gcLocked()
	return nil
}

// gcLocked prunes drained history entries and, when retention is
// configured, retires snapshots beyond the newest cfg.Retain. Caller
// holds swapMu.
func (s *Server) gcLocked() {
	kept := s.history[:0]
	for _, sn := range s.history {
		if sn.InUse() {
			kept = append(kept, sn)
		}
	}
	s.history = kept
	if s.cfg.Retain > 0 && s.cfg.Dir != "" {
		removed, err := RetainSnapshots(s.cfg.FS, s.cfg.Dir, s.cfg.Retain, s.inUsePath)
		s.retired.Add(uint64(len(removed)))
		if err != nil {
			s.lastGCErr.Store(err.Error())
		} else {
			s.lastGCErr.Store("")
		}
	}
	s.measureDiskLocked()
}

// inUsePath reports whether path backs the live snapshot or a
// predecessor still draining readers. Caller holds swapMu.
func (s *Server) inUsePath(path string) bool {
	if sn := s.cur.Load(); sn != nil && sn.Path() == path {
		return true
	}
	for _, sn := range s.history {
		if sn.Path() == path && sn.InUse() {
			return true
		}
	}
	return false
}

// measureDiskLocked refreshes the cached directory byte count so
// StatsNow stays a pure in-memory read. Caller holds swapMu.
func (s *Server) measureDiskLocked() {
	if s.cfg.Dir == "" {
		return
	}
	if n, err := storage.DirBytes(s.cfg.FS, s.cfg.Dir); err == nil {
		s.diskBytes.Store(n)
	}
}

// ErrDiskBudget marks a publish refused because the snapshot directory
// is at its byte budget and retention GC could not free enough space.
var ErrDiskBudget = errors.New("serve: snapshot directory over disk budget")

// Publish encodes res, writes it into cfg.Dir under the next sequence
// number, and installs it — the write side of the serving plane under
// storage governance. When cfg.DiskBudget is set and the new snapshot
// would push the directory past it, Publish first runs a retention
// pass; if the directory is still too full it refuses with
// ErrDiskBudget, shedding the publish rather than filling the disk,
// and the server keeps serving the last-good snapshot.
func (s *Server) Publish(res *core.WorldResult, sig []byte, start, end int64) (string, error) {
	data, err := EncodeSnapshot(res, sig, start, end)
	if err != nil {
		return "", err
	}
	s.swapMu.Lock()
	if s.cfg.DiskBudget > 0 {
		used, err := storage.DirBytes(s.cfg.FS, s.cfg.Dir)
		if err != nil {
			s.swapMu.Unlock()
			return "", err
		}
		if used+int64(len(data)) > s.cfg.DiskBudget {
			s.gcLocked()
			used, _ = storage.DirBytes(s.cfg.FS, s.cfg.Dir)
			if used+int64(len(data)) > s.cfg.DiskBudget {
				s.publishRefused.Add(1)
				s.swapMu.Unlock()
				return "", fmt.Errorf("serve: publishing %d-byte snapshot into %s (%d of %d budget bytes used): %w",
					len(data), s.cfg.Dir, used, s.cfg.DiskBudget, ErrDiskBudget)
			}
		}
	}
	path, err := writeSnapshotBytes(s.cfg.FS, s.cfg.Dir, data)
	s.measureDiskLocked()
	s.swapMu.Unlock()
	if err != nil {
		return "", err
	}
	return path, s.Install(path)
}

// vet runs the full pre-swap check and returns an open snapshot, or
// quarantines the file and explains. Caller holds swapMu.
func (s *Server) vet(path string) (*Snapshot, error) {
	rep, err := VerifySnapshot(path)
	if err != nil {
		return nil, fmt.Errorf("serve: reading snapshot %s: %w", path, err)
	}
	if !rep.Clean() {
		s.quarantine(path)
		return nil, fmt.Errorf("serve: snapshot %s failed verification (%s): %w",
			filepath.Base(path), rep.Faults[0], errQuarantined)
	}
	if len(s.pinnedSig) > 0 && !bytes.Equal(rep.Meta.Signature, s.pinnedSig) {
		s.quarantine(path)
		return nil, fmt.Errorf("serve: snapshot %s belongs to a different run (foreign signature): %w",
			filepath.Base(path), errQuarantined)
	}
	sn, err := OpenSnapshot(path)
	if err != nil {
		s.quarantine(path)
		return nil, fmt.Errorf("serve: opening snapshot: %w (%w)", err, errQuarantined)
	}
	if len(s.pinnedSig) == 0 {
		s.pinnedSig = append([]byte(nil), sn.Meta().Signature...)
	}
	return sn, nil
}

// quarantine moves a failed snapshot aside so LoadLatest never retries
// it; the *.quarantined suffix drops it from listSnapshots.
func (s *Server) quarantine(path string) {
	s.quarantined.Add(1)
	_ = s.cfg.FS.Rename(path, path+".quarantined")
}

// LoadLatest scans cfg.Dir newest-first, quarantines snapshots that fail
// verification, and installs the first good one — the resume-on-last-good
// path after a crashed writer left a torn file at the head of the
// directory. It returns the installed path.
func (s *Server) LoadLatest() (string, error) {
	names, err := listSnapshots(s.cfg.Dir)
	if err != nil {
		return "", err
	}
	var firstErr error
	for i := len(names) - 1; i >= 0; i-- {
		path := filepath.Join(s.cfg.Dir, names[i])
		if id, cur := s.Current(); cur == path && id != "" {
			return path, nil // already serving the newest good snapshot
		}
		if err := s.Install(path); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		return path, nil
	}
	if firstErr != nil {
		return "", fmt.Errorf("serve: no loadable snapshot in %s: %w", s.cfg.Dir, firstErr)
	}
	return "", fmt.Errorf("serve: no snapshots in %s", s.cfg.Dir)
}

// --- request path --------------------------------------------------------

// computeFn renders one endpoint's response body against a snapshot.
type computeFn func(ctx context.Context, sn *Snapshot, r *http.Request) (interface{}, error)

// errBadRequest wraps client errors (400 instead of 500).
type errBadRequest struct{ error }

// errNotFound marks an unknown cell/block (404).
type errNotFound struct{ error }

func badRequest(format string, args ...interface{}) error {
	return errBadRequest{fmt.Errorf(format, args...)}
}

// handle is the shared request path: cache → admission → deadline →
// compute → cache fill. The degradation ladder under stress is fresh
// hit → stale hit → shed (503 + Retry-After); a deadline blown inside
// compute (slow disk) degrades exactly like a shed.
func (s *Server) handle(w http.ResponseWriter, r *http.Request, class Class, compute computeFn) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	key := r.URL.Path + "?" + r.URL.Query().Encode() // Encode sorts keys: canonical
	ent, fresh := s.cache.get(key)
	if fresh {
		s.writeCached(w, ent, "hit")
		return
	}
	sn := s.acquireCurrent()
	if sn == nil {
		s.shedResponse(w, "no snapshot loaded")
		return
	}
	if !s.admit.tryAdmit(class) {
		sn.Release()
		if ent != nil {
			// Overload with a stale answer in hand: serve it, marked.
			s.writeCached(w, ent, "stale")
			return
		}
		s.shedResponse(w, "overloaded")
		return
	}
	if ent != nil {
		// Stale hit with capacity to spare: serve the stale body now and
		// revalidate in the background (stale-while-revalidate proper).
		s.admit.release()
		s.writeCached(w, ent, "stale")
		s.revalidate(key, class, compute, r.Clone(context.Background()))
		sn.Release()
		return
	}
	defer s.admit.release()
	defer sn.Release()
	body, snapID, err := s.render(sn, compute, r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.cache.put(key, body, snapID)
	s.writeBody(w, body, snapID, "miss")
}

// render runs compute under the per-request deadline and marshals.
func (s *Server) render(sn *Snapshot, compute computeFn, r *http.Request) (body []byte, snapID string, err error) {
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.QueryTimeout)
	defer cancel()
	v, err := compute(ctx, sn, r)
	if err != nil {
		return nil, "", err
	}
	body, err = json.Marshal(v)
	if err != nil {
		return nil, "", err
	}
	return body, sn.ID(), nil
}

// revalidate recomputes a stale cache entry in the background, bounded
// by singleflight per key and by the admission pool (a revalidation that
// cannot be admitted is simply skipped — the stale entry stays).
func (s *Server) revalidate(key string, class Class, compute computeFn, r *http.Request) {
	s.revalMu.Lock()
	if s.reval[key] {
		s.revalMu.Unlock()
		return
	}
	s.reval[key] = true
	s.revalMu.Unlock()
	if !s.admit.tryAdmit(class) {
		s.revalDone(key)
		return
	}
	go func() {
		defer s.revalDone(key)
		defer s.admit.release()
		sn := s.acquireCurrent()
		if sn == nil {
			return
		}
		defer sn.Release()
		if body, snapID, err := s.render(sn, compute, r); err == nil {
			s.cache.put(key, body, snapID)
		}
	}()
}

func (s *Server) revalDone(key string) {
	s.revalMu.Lock()
	delete(s.reval, key)
	s.revalMu.Unlock()
}

// acquireCurrent pins the live snapshot for one request.
func (s *Server) acquireCurrent() *Snapshot {
	for {
		sn := s.cur.Load()
		if sn == nil {
			return nil
		}
		if sn.Acquire() {
			return sn
		}
		// Lost a swap race: the pointer moved; retry against the new one.
	}
}

func (s *Server) retryAfterSeconds() string {
	secs := int(s.cfg.RetryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// shedResponse is the only deliberate 5xx: 503 with Retry-After.
func (s *Server) shedResponse(w http.ResponseWriter, why string) {
	w.Header().Set("Retry-After", s.retryAfterSeconds())
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	fmt.Fprintf(w, `{"error":%q}`, why)
}

func (s *Server) writeError(w http.ResponseWriter, err error) {
	var br errBadRequest
	var nf errNotFound
	switch {
	case errors.As(err, &br):
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprintf(w, `{"error":%q}`, err.Error())
	case errors.As(err, &nf):
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprintf(w, `{"error":%q}`, err.Error())
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		// The request blew its deadline inside a snapshot read — a slow
		// or stalled disk. Same contract as a shed: retryable 503.
		s.shedResponse(w, "deadline exceeded")
	default:
		// Unexpected (snapshot read error after verification): still a
		// 503 so clients back off, but counted via lastSwapErr-style
		// visibility is not needed — verification should make this
		// unreachable.
		s.shedResponse(w, "internal read error")
	}
}

func (s *Server) writeCached(w http.ResponseWriter, ent *cached, state string) {
	s.writeBody(w, ent.body, ent.snapID, state)
}

func (s *Server) writeBody(w http.ResponseWriter, body []byte, snapID, cacheState string) {
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("X-Snapshot", snapID)
	h.Set("X-Cache", cacheState)
	if cacheState == "stale" {
		// RFC 7234 §5.5.1: response is stale (110) — explicit, so
		// clients can tell degraded answers from fresh ones.
		h.Set("Warning", `110 - "response is stale"`)
	}
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// --- endpoint computations ----------------------------------------------

// parseDay accepts a UTC date (2020-03-01) or a raw day index.
func parseDay(s string) (int64, error) {
	if s == "" {
		return 0, nil
	}
	if t, err := time.Parse("2006-01-02", s); err == nil {
		return t.Unix() / netsim.SecondsPerDay, nil
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad day %q (want YYYY-MM-DD or a day index)", s)
	}
	return n, nil
}

func parseWindow(r *http.Request) (from, to int64, err error) {
	if from, err = parseDay(r.URL.Query().Get("from")); err != nil {
		return 0, 0, badRequest("from: %v", err)
	}
	if to, err = parseDay(r.URL.Query().Get("to")); err != nil {
		return 0, 0, badRequest("to: %v", err)
	}
	return from, to, nil
}

func parseDir(r *http.Request) (changepoint.Direction, error) {
	switch r.URL.Query().Get("dir") {
	case "", "down":
		return changepoint.Down, nil
	case "up":
		return changepoint.Up, nil
	default:
		return 0, badRequest("bad dir %q (want down or up)", r.URL.Query().Get("dir"))
	}
}

// cellResponse is the /v1/cell body.
type cellResponse struct {
	Cell       string    `json:"cell"`
	Lat        int       `json:"lat"`
	Lon        int       `json:"lon"`
	Continent  string    `json:"continent"`
	Responsive int       `json:"responsive"`
	CS         int       `json:"change_sensitive"`
	StartDay   int64     `json:"start_day"`
	Frac       []float64 `json:"frac"`
	Count      []int     `json:"count"`
}

func (s *Server) computeCell(ctx context.Context, sn *Snapshot, r *http.Request) (interface{}, error) {
	q := r.URL.Query()
	lat, err1 := strconv.ParseFloat(q.Get("lat"), 64)
	lon, err2 := strconv.ParseFloat(q.Get("lon"), 64)
	if err1 != nil || err2 != nil {
		return nil, badRequest("lat and lon are required coordinates")
	}
	dir, err := parseDir(r)
	if err != nil {
		return nil, err
	}
	from, to, err := parseWindow(r)
	if err != nil {
		return nil, err
	}
	key := geo.CellOf(lat, lon)
	series, ok, err := sn.CellQuery(ctx, key, dir, from, to)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, errNotFound{fmt.Errorf("cell %v not in snapshot", key)}
	}
	return &cellResponse{
		Cell:       series.Cell.String(),
		Lat:        series.Cell.Lat,
		Lon:        series.Cell.Lon,
		Continent:  series.Continent.String(),
		Responsive: series.Responsive,
		CS:         series.CS,
		StartDay:   series.StartDay,
		Frac:       series.Frac,
		Count:      series.Count,
	}, nil
}

// topkResponse is the /v1/topk body.
type topkResponse struct {
	Dir   string      `json:"dir"`
	Cells []topkEntry `json:"cells"`
}

type topkEntry struct {
	Cell     string  `json:"cell"`
	Lat      int     `json:"lat"`
	Lon      int     `json:"lon"`
	CS       int     `json:"change_sensitive"`
	Alarms   int     `json:"alarms"`
	PeakFrac float64 `json:"peak_frac"`
}

func (s *Server) computeTopK(ctx context.Context, sn *Snapshot, r *http.Request) (interface{}, error) {
	k := 10
	if kq := r.URL.Query().Get("k"); kq != "" {
		n, err := strconv.Atoi(kq)
		if err != nil || n < 1 || n > 1000 {
			return nil, badRequest("bad k %q (want 1..1000)", kq)
		}
		k = n
	}
	dir, err := parseDir(r)
	if err != nil {
		return nil, err
	}
	from, to, err := parseWindow(r)
	if err != nil {
		return nil, err
	}
	top, err := sn.TopK(ctx, k, dir, from, to)
	if err != nil {
		return nil, err
	}
	resp := &topkResponse{Dir: dir.String(), Cells: []topkEntry{}}
	for _, tc := range top {
		resp.Cells = append(resp.Cells, topkEntry{
			Cell: tc.Cell.String(), Lat: tc.Cell.Lat, Lon: tc.Cell.Lon,
			CS: tc.CS, Alarms: tc.Alarms, PeakFrac: tc.PeakFrac,
		})
	}
	return resp, nil
}

// continentResponse is the /v1/continent body.
type continentResponse struct {
	Continent string    `json:"continent"`
	CS        int       `json:"change_sensitive"`
	StartDay  int64     `json:"start_day"`
	Frac      []float64 `json:"frac"`
}

func (s *Server) computeContinent(ctx context.Context, sn *Snapshot, r *http.Request) (interface{}, error) {
	name := r.URL.Query().Get("name")
	var cont geo.Continent
	found := false
	for _, c := range geo.Continents() {
		if c.String() == name {
			cont, found = c, true
			break
		}
	}
	if !found {
		return nil, badRequest("bad continent %q", name)
	}
	from, to, err := parseWindow(r)
	if err != nil {
		return nil, err
	}
	series, err := sn.ContinentQuery(ctx, cont, from, to)
	if err != nil {
		return nil, err
	}
	return &continentResponse{
		Continent: series.Continent.String(),
		CS:        series.CS,
		StartDay:  series.StartDay,
		Frac:      series.Frac,
	}, nil
}

// blockResponse is the /v1/block body.
type blockResponse struct {
	ID      uint32       `json:"id"`
	Cell    string       `json:"cell"`
	Changes []ChangeView `json:"changes"`
}

func (s *Server) computeBlock(ctx context.Context, sn *Snapshot, r *http.Request) (interface{}, error) {
	idq := r.URL.Query().Get("id")
	id, err := strconv.ParseUint(idq, 10, 32)
	if err != nil {
		return nil, badRequest("bad block id %q", idq)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	changes, cell, ok := sn.BlockChanges(uint32(id))
	if !ok {
		return nil, errNotFound{fmt.Errorf("block %d not in snapshot", id)}
	}
	if changes == nil {
		changes = []ChangeView{}
	}
	return &blockResponse{ID: uint32(id), Cell: cell.String(), Changes: changes}, nil
}

// --- health & stats ------------------------------------------------------

// Stats is the /v1/stats body: one page of serving-plane health.
type Stats struct {
	SnapshotID   string         `json:"snapshot_id"`
	SnapshotPath string         `json:"snapshot_path"`
	Degraded     bool           `json:"degraded"`
	Analyzed     int            `json:"analyzed_blocks"`
	Cells        int            `json:"cells"`
	Swaps        uint64         `json:"swaps"`
	Quarantined  uint64         `json:"quarantined"`
	LastSwapErr  string         `json:"last_swap_error,omitempty"`
	Admission    AdmissionStats `json:"admission"`
	Cache        CacheStats     `json:"cache"`
	// Storage governance: snapshots retired by retention GC, publishes
	// refused at the disk budget, and the snapshot directory's byte
	// count as of the last install/publish (cached — stats never touch
	// the disk).
	Retired        uint64 `json:"snapshots_retired"`
	PublishRefused uint64 `json:"publishes_refused"`
	DiskBytes      int64  `json:"disk_bytes"`
	DiskBudget     int64  `json:"disk_budget,omitempty"`
	LastGCErr      string `json:"last_gc_error,omitempty"`
}

// StatsNow snapshots the serving-plane counters (also served on
// /v1/stats; exported for the load harness and chaos tests).
func (s *Server) StatsNow() Stats {
	st := Stats{
		Swaps:          s.swaps.Load(),
		Quarantined:    s.quarantined.Load(),
		LastSwapErr:    s.lastSwapErr.Load().(string),
		Admission:      s.admit.stats(),
		Cache:          s.cache.stats(),
		Retired:        s.retired.Load(),
		PublishRefused: s.publishRefused.Load(),
		DiskBytes:      s.diskBytes.Load(),
		DiskBudget:     s.cfg.DiskBudget,
		LastGCErr:      s.lastGCErr.Load().(string),
	}
	if sn := s.cur.Load(); sn != nil {
		st.SnapshotID = sn.ID()
		st.SnapshotPath = sn.Path()
		st.Degraded = sn.Meta().Degraded
		st.Analyzed = sn.Meta().AnalyzedBlocks
		st.Cells = sn.Meta().Cells
	}
	return st
}

// handleStats always answers — diagnostics must survive overload — so it
// bypasses admission entirely; it reads only in-memory counters.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	body, err := json.Marshal(s.StatsNow())
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if sn := s.cur.Load(); sn == nil {
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		http.Error(w, "no snapshot loaded", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}
