package serve

// Bounded admission with prioritized load shedding. Every non-cached
// request must win an admission slot before touching the snapshot; the
// slot pool is shared, but each priority class sees a different ceiling,
// so as inflight work piles up the expensive classes hit their (lower)
// ceiling and shed first while cheap point reads keep being admitted
// until the pool is truly full. There is no queue: a request that cannot
// be admitted is shed immediately with 503 + Retry-After — bounded
// admission means bounded latency, not bounded loss.

import (
	"fmt"
	"sync/atomic"
)

// Class is a request's admission priority.
type Class int

// Classes in shedding order: the higher the class value, the earlier it
// sheds under load.
const (
	// ClassCell is a point read of one cell's series — cheap, cacheable,
	// the last class to shed.
	ClassCell Class = iota
	// ClassRegion is a continent aggregate: a bounded scan.
	ClassRegion
	// ClassTopK is a full-snapshot ranking scan — the most expensive
	// query, first to shed.
	ClassTopK
	numClasses
)

// String names the class as reported in /v1/stats.
func (c Class) String() string {
	switch c {
	case ClassCell:
		return "cell"
	case ClassRegion:
		return "region"
	case ClassTopK:
		return "topk"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// admission is the shared slot pool with per-class ceilings.
type admission struct {
	limits   [numClasses]int64
	inflight atomic.Int64
	admitted [numClasses]atomic.Uint64
	shed     [numClasses]atomic.Uint64
}

// newAdmission sizes the pool: cell reads may use every slot, continent
// aggregates three quarters, top-k scans half. With max <= 0 the default
// of 64 slots applies.
func newAdmission(max int) *admission {
	if max <= 0 {
		max = 64
	}
	a := &admission{}
	a.limits[ClassCell] = int64(max)
	a.limits[ClassRegion] = int64(max) * 3 / 4
	a.limits[ClassTopK] = int64(max) / 2
	for c := ClassRegion; c < numClasses; c++ {
		if a.limits[c] < 1 {
			a.limits[c] = 1
		}
	}
	return a
}

// tryAdmit claims a slot for class c; false means shed. CAS on the
// shared counter keeps the ceiling exact under concurrency — a class
// never exceeds its limit by racing admissions.
func (a *admission) tryAdmit(c Class) bool {
	limit := a.limits[c]
	for {
		cur := a.inflight.Load()
		if cur >= limit {
			a.shed[c].Add(1)
			return false
		}
		if a.inflight.CompareAndSwap(cur, cur+1) {
			a.admitted[c].Add(1)
			return true
		}
	}
}

// release returns a slot.
func (a *admission) release() { a.inflight.Add(-1) }

// AdmissionStats is the admission layer's counters for /v1/stats.
type AdmissionStats struct {
	Inflight int64             `json:"inflight"`
	Limits   map[string]int64  `json:"limits"`
	Admitted map[string]uint64 `json:"admitted"`
	Shed     map[string]uint64 `json:"shed"`
}

func (a *admission) stats() AdmissionStats {
	st := AdmissionStats{
		Inflight: a.inflight.Load(),
		Limits:   map[string]int64{},
		Admitted: map[string]uint64{},
		Shed:     map[string]uint64{},
	}
	for c := ClassCell; c < numClasses; c++ {
		st.Limits[c.String()] = a.limits[c]
		st.Admitted[c.String()] = a.admitted[c].Load()
		st.Shed[c.String()] = a.shed[c].Load()
	}
	return st
}
