package serve

// Closed-loop load harness. RunLoad drives an http.Handler directly
// (no sockets — latencies measure the serving plane, not the kernel)
// with a deterministic per-worker request mix across the three admission
// classes, and reports per-class latency quantiles plus the exact
// status/header discipline the robustness contract promises: every 200
// carries X-Snapshot, every 503 carries Retry-After, nothing else is
// ever emitted. The chaos test cranks Workers to 10× the admission
// ceiling and asserts the report stays inside those bounds while
// snapshots swap and fail underneath.

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"time"

	"github.com/diurnalnet/diurnal/internal/geo"
	"github.com/diurnalnet/diurnal/internal/stats"
)

// LoadOptions shapes a load run. Zero values take the noted defaults.
type LoadOptions struct {
	// Workers is the number of concurrent closed-loop clients (default 8).
	Workers int
	// Requests is how many requests each worker issues (default 200).
	Requests int
	// Seed makes the request mix reproducible (default 1).
	Seed int64
	// MixCell/MixRegion/MixTopK weight the class mix (default 8:3:1).
	MixCell, MixRegion, MixTopK int
}

func (o LoadOptions) withDefaults() LoadOptions {
	if o.Workers <= 0 {
		o.Workers = 8
	}
	if o.Requests <= 0 {
		o.Requests = 200
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MixCell <= 0 && o.MixRegion <= 0 && o.MixTopK <= 0 {
		o.MixCell, o.MixRegion, o.MixTopK = 8, 3, 1
	}
	return o
}

// ClassStats is one admission class's slice of a load report.
type ClassStats struct {
	Count int     `json:"count"`
	OK    int     `json:"ok"`
	Shed  int     `json:"shed"`
	P50ms float64 `json:"p50_ms"`
	P99ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
	latMs []float64
}

// LoadReport summarizes a load run.
type LoadReport struct {
	Total int `json:"total"`
	// OK counts 200s; Stale the subset served from the stale cache tier;
	// Shed the 503s; ShedNoRetryAfter and Other count contract violations
	// (both must be zero for a healthy plane).
	OK               int `json:"ok"`
	Stale            int `json:"stale"`
	Shed             int `json:"shed"`
	ShedNoRetryAfter int `json:"shed_no_retry_after"`
	Other            int `json:"other"`
	// Snapshots maps every X-Snapshot value seen on a 200 to its count —
	// the chaos test checks no foreign or torn snapshot ID ever appears.
	Snapshots map[string]int         `json:"snapshots"`
	Classes   map[string]*ClassStats `json:"classes"`
}

// loadRecorder is a minimal ResponseWriter; httptest would work too, but
// this keeps the harness importable outside _test files without pulling
// a testing package into the binary.
type loadRecorder struct {
	code int
	hdr  http.Header
	body bytes.Buffer
}

func newLoadRecorder() *loadRecorder        { return &loadRecorder{code: http.StatusOK, hdr: http.Header{}} }
func (r *loadRecorder) Header() http.Header { return r.hdr }
func (r *loadRecorder) WriteHeader(c int)   { r.code = c }
func (r *loadRecorder) Write(p []byte) (int, error) {
	return r.body.Write(p)
}

// RunLoad drives h with opts.Workers closed-loop clients drawing cell
// targets from cells and returns the merged report.
func RunLoad(h http.Handler, cells []geo.CellKey, opts LoadOptions) *LoadReport {
	opts = opts.withDefaults()
	continents := geo.Continents()
	type result struct {
		class Class
		code  int
		stale bool
		retry bool
		snap  string
		ms    float64
	}
	perWorker := make([][]result, opts.Workers)
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opts.Seed + int64(w)*7919))
			out := make([]result, 0, opts.Requests)
			for i := 0; i < opts.Requests; i++ {
				class, target := pickRequest(rng, cells, continents, opts)
				req, err := http.NewRequest(http.MethodGet, target, nil)
				if err != nil {
					continue
				}
				rec := newLoadRecorder()
				t0 := time.Now()
				h.ServeHTTP(rec, req)
				out = append(out, result{
					class: class,
					code:  rec.code,
					stale: rec.hdr.Get("X-Cache") == "stale",
					retry: rec.hdr.Get("Retry-After") != "",
					snap:  rec.hdr.Get("X-Snapshot"),
					ms:    float64(time.Since(t0)) / float64(time.Millisecond),
				})
			}
			perWorker[w] = out
		}(w)
	}
	wg.Wait()

	rep := &LoadReport{Snapshots: map[string]int{}, Classes: map[string]*ClassStats{}}
	for c := ClassCell; c < numClasses; c++ {
		rep.Classes[c.String()] = &ClassStats{}
	}
	for _, results := range perWorker {
		for _, r := range results {
			rep.Total++
			cs := rep.Classes[r.class.String()]
			cs.Count++
			cs.latMs = append(cs.latMs, r.ms)
			switch {
			case r.code == http.StatusOK:
				rep.OK++
				cs.OK++
				if r.stale {
					rep.Stale++
				}
				rep.Snapshots[r.snap]++
			case r.code == http.StatusServiceUnavailable:
				rep.Shed++
				cs.Shed++
				if !r.retry {
					rep.ShedNoRetryAfter++
				}
			default:
				rep.Other++
			}
		}
	}
	for _, cs := range rep.Classes {
		if len(cs.latMs) == 0 {
			continue
		}
		sort.Float64s(cs.latMs)
		cs.P50ms = stats.Quantile(cs.latMs, 0.50)
		cs.P99ms = stats.Quantile(cs.latMs, 0.99)
		cs.MaxMs = cs.latMs[len(cs.latMs)-1]
		cs.latMs = nil
	}
	return rep
}

// pickRequest draws one request from the weighted class mix.
func pickRequest(rng *rand.Rand, cells []geo.CellKey, continents []geo.Continent, opts LoadOptions) (Class, string) {
	total := opts.MixCell + opts.MixRegion + opts.MixTopK
	n := rng.Intn(total)
	switch {
	case n < opts.MixCell && len(cells) > 0:
		lat, lon := cells[rng.Intn(len(cells))].Center()
		v := url.Values{}
		v.Set("lat", fmt.Sprintf("%g", lat))
		v.Set("lon", fmt.Sprintf("%g", lon))
		if rng.Intn(4) == 0 {
			v.Set("dir", "up")
		}
		return ClassCell, "/v1/cell?" + v.Encode()
	case n < opts.MixCell+opts.MixRegion:
		cont := continents[rng.Intn(len(continents))]
		return ClassRegion, "/v1/continent?name=" + url.QueryEscape(cont.String())
	default:
		k := 5 + rng.Intn(20)
		return ClassTopK, fmt.Sprintf("/v1/topk?k=%d", k)
	}
}
