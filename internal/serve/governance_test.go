package serve

// Storage-governance tests for the snapshot directory: sequence-number
// derivation under adversarial names, the retention GC's keep/skip
// rules, the server-side retention and publish-budget paths, and the
// parent-directory fsync that makes an atomic publish durable.

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"github.com/diurnalnet/diurnal/internal/faults"
	"github.com/diurnalnet/diurnal/internal/storage"
)

// TestWriteSnapshotSeqSkipsForeign: the next sequence number is one past
// the maximum parseable sequence, so foreign or malformed *.snap names
// can neither collide with the new snapshot nor perturb its number.
func TestWriteSnapshotSeqSkipsForeign(t *testing.T) {
	dir := t.TempDir()
	res, sig, start, end := testResult(t)
	for _, junk := range []string{"zzz.snap", "snap-0000000a.snap", "snap-1.snap", "snap-00000004.snap"} {
		if err := os.WriteFile(filepath.Join(dir, junk), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	path, err := WriteSnapshot(dir, res, sig, start, end)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != SnapshotName(5) {
		t.Errorf("next snapshot = %s, want %s past the max parseable seq", filepath.Base(path), SnapshotName(5))
	}
	for _, junk := range []string{"zzz.snap", "snap-0000000a.snap", "snap-1.snap"} {
		data, err := os.ReadFile(filepath.Join(dir, junk))
		if err != nil || string(data) != "junk" {
			t.Errorf("foreign file %s was clobbered (%v)", junk, err)
		}
	}
}

// TestRetainSnapshots covers the GC rules: newest keep survive, in-use
// candidates are skipped, quarantined and temp files are never touched,
// and keep < 1 is refused (retention must not empty the directory).
func TestRetainSnapshots(t *testing.T) {
	dir := t.TempDir()
	res, sig, start, end := testResult(t)
	for i := 0; i < 5; i++ {
		if _, err := WriteSnapshot(dir, res, sig, start, end); err != nil {
			t.Fatal(err)
		}
	}
	for _, junk := range []string{"snap-00000009.snap.quarantined", "snap-00000009.snap.tmp42", "notes.txt"} {
		if err := os.WriteFile(filepath.Join(dir, junk), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	pinned := filepath.Join(dir, SnapshotName(0))
	removed, err := RetainSnapshots(storage.OS, dir, 2, func(path string) bool { return path == pinned })
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 2 || removed[0] != SnapshotName(1) || removed[1] != SnapshotName(2) {
		t.Errorf("removed %v, want the unpinned oldest two", removed)
	}
	for _, want := range []string{SnapshotName(0), SnapshotName(3), SnapshotName(4),
		"snap-00000009.snap.quarantined", "snap-00000009.snap.tmp42", "notes.txt"} {
		if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
			t.Errorf("%s did not survive retention: %v", want, err)
		}
	}
	if _, err := RetainSnapshots(storage.OS, dir, 0, nil); err == nil {
		t.Error("keep=0 accepted; retention could empty the directory")
	}
	// With nothing pinned the directory converges to exactly keep.
	if _, err := RetainSnapshots(storage.OS, dir, 1, nil); err != nil {
		t.Fatal(err)
	}
	names, err := listSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != SnapshotName(4) {
		t.Errorf("after keep=1: %v, want only the newest", names)
	}
}

// TestServerPublishRetains: repeated publishes through a Retain-ing
// server leave the directory holding only the retained tail once the
// displaced snapshots have no readers, and the retirements are counted.
func TestServerPublishRetains(t *testing.T) {
	dir := t.TempDir()
	res, sig, start, end := testResult(t)
	s := New(Config{Dir: dir, ExpectSignature: sig, Retain: 1})
	defer s.Close()
	for i := 0; i < 3; i++ {
		if _, err := s.Publish(res, sig, start, end); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	names, err := listSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != SnapshotName(2) {
		t.Errorf("directory holds %v, want only the newest snapshot", names)
	}
	st := s.StatsNow()
	if st.Retired < 2 {
		t.Errorf("retired %d snapshots, want >= 2", st.Retired)
	}
	if st.Swaps < 2 {
		t.Errorf("swaps = %d; publishes did not install", st.Swaps)
	}
	if _, path := s.Current(); filepath.Base(path) != SnapshotName(2) {
		t.Errorf("serving %s, want the newest publish", path)
	}
}

// TestServerPublishBudget: a publish that would overrun the disk budget
// is refused with ErrDiskBudget after a GC retry, leaves the directory
// untouched, and is counted in stats. The server keeps serving.
func TestServerPublishBudget(t *testing.T) {
	dir := t.TempDir()
	res, sig, start, end := testResult(t)
	s := New(Config{Dir: dir, ExpectSignature: sig, Retain: 1, DiskBudget: 1})
	defer s.Close()
	_, err := s.Publish(res, sig, start, end)
	if !errors.Is(err, ErrDiskBudget) {
		t.Fatalf("over-budget publish: got %v, want ErrDiskBudget", err)
	}
	names, err := listSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Errorf("refused publish left %v on disk", names)
	}
	st := s.StatsNow()
	if st.PublishRefused != 1 {
		t.Errorf("publishes_refused = %d, want 1", st.PublishRefused)
	}
	if st.DiskBudget != 1 {
		t.Errorf("disk_budget = %d, want the configured bound", st.DiskBudget)
	}
}

// TestSnapshotWriteSyncsDirAfterRename: the publish path fsyncs the
// parent directory after the rename — the injected filesystem fails the
// second sync (file sync is the first), and by then the snapshot must
// already be in place, proving the ordering write → fsync → rename →
// dir fsync.
func TestSnapshotWriteSyncsDirAfterRename(t *testing.T) {
	dir := t.TempDir()
	res, sig, start, end := testResult(t)
	ffs := &faults.FS{Plan: faults.FSPlan{FailSyncAt: 2}}
	_, err := WriteSnapshotFS(ffs, dir, res, sig, start, end)
	if err == nil {
		t.Fatal("failed directory fsync not surfaced")
	}
	if !strings.Contains(err.Error(), "syncing directory") {
		t.Fatalf("second sync is not the directory fsync: %v", err)
	}
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("injected sync failure lost its errno: %v", err)
	}
	// The rename preceded the failed directory fsync: the snapshot file
	// is in place (durability, not visibility, is what the error lost).
	if _, statErr := os.Stat(filepath.Join(dir, SnapshotName(0))); statErr != nil {
		t.Errorf("snapshot not renamed into place before the directory fsync: %v", statErr)
	}
	if ffs.Injected() != 1 {
		t.Errorf("injected %d faults, want exactly the planned one", ffs.Injected())
	}
}
