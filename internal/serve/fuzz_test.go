package serve

// FuzzSnapshotDecode holds decodeSnapshot to its never-panic contract on
// arbitrary bytes, and to self-consistency on the bytes it does accept:
// a clean decode must expose section lengths matching its own manifest.

import (
	"testing"
)

func FuzzSnapshotDecode(f *testing.F) {
	// Seed with a valid snapshot and systematic damage so the fuzzer
	// starts at the interesting boundaries instead of random noise.
	res, sig, start, end := buildResult()
	valid, err := EncodeSnapshot(res, sig, start, end)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:8])
	f.Add([]byte{})
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x04
	f.Add(flipped)
	f.Add(append(append([]byte(nil), valid...), valid...)) // doubled: duplicate sections

	f.Fuzz(func(t *testing.T, data []byte) {
		d, faults := decodeSnapshot(data)
		if (d == nil) == (len(faults) == 0) {
			t.Fatalf("decode returned data=%v with %d faults", d != nil, len(faults))
		}
		if d == nil {
			return
		}
		m := d.meta
		if len(d.cells) != m.Cells || len(d.blocks) != m.Blocks ||
			len(d.changes) != m.Changes || d.daily.rows != m.DailyRows {
			t.Fatalf("clean decode disagrees with its manifest: %+v", m)
		}
		if len(d.dailyOf) != m.Cells+1 || len(d.chOf) != m.Blocks+1 {
			t.Fatal("offset arrays do not bracket their sections")
		}
	})
}
