package serve

// The serving-side view of a snapshot. OpenSnapshot reads and fully
// verifies the file once (a torn or bit-flipped snapshot is rejected at
// swap time, never served), keeps the small sections resident, and leaves
// the daily columns — by far the largest — on disk: every query reads
// exactly its cell's row range with an io.ReaderAt honoring the request
// deadline, so a stalling disk degrades requests individually instead of
// wedging the server.

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/diurnalnet/diurnal/internal/changepoint"
	"github.com/diurnalnet/diurnal/internal/geo"
	"github.com/diurnalnet/diurnal/internal/netsim"
)

// Snapshot is an open, verified snapshot serving queries. It is
// refcounted for hot swap: the server Acquires it per request and
// Releases when done; Close defers the file close until the last request
// drains, so a swap never yanks the disk out from under a reader.
type Snapshot struct {
	data *snapData
	path string
	// ra backs the daily-column reads; atomic because the chaos hook
	// SetReaderAt swaps it while reads are in flight.
	ra   atomic.Value // raBox
	file *os.File
	// refs counts in-flight readers; closed marks a pending Close that
	// the last Release applies. closeOnce makes the handoff race-free:
	// whichever of Close/Release observes the drained state first wins.
	refs      atomic.Int64
	closed    atomic.Bool
	closeOnce sync.Once
}

// OpenSnapshot reads, CRC-verifies, and decodes the snapshot at path.
// Any fault — torn tail, bit flip, bad section, foreign format — fails
// the open; a Snapshot in hand is structurally sound.
func OpenSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	d, faults := decodeSnapshot(data)
	if len(faults) > 0 {
		return nil, fmt.Errorf("serve: %s: %s", path, faults[0])
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	sn := &Snapshot{data: d, path: path, file: f}
	sn.ra.Store(raBox{f})
	return sn, nil
}

// ID is the snapshot's identity: the CRC32C of its encoded bytes,
// echoed by the server in the X-Snapshot response header.
func (s *Snapshot) ID() string { return s.data.id() }

// Meta returns the snapshot manifest.
func (s *Snapshot) Meta() Meta { return s.data.meta }

// Path returns the file the snapshot was opened from.
func (s *Snapshot) Path() string { return s.path }

// ReaderAt returns the current backing reader for the daily columns,
// the counterpart of SetReaderAt for wrapping it in a fault injector.
func (s *Snapshot) ReaderAt() io.ReaderAt { return s.readerAt() }

// SetReaderAt swaps the backing reader for the daily columns — the fault
// hook the chaos test uses to make disk reads stall.
func (s *Snapshot) SetReaderAt(ra io.ReaderAt) { s.ra.Store(raBox{ra}) }

// raBox gives atomic.Value the single concrete type it requires while
// the boxed reader varies.
type raBox struct{ ra io.ReaderAt }

// readerAt returns the current backing reader.
func (s *Snapshot) readerAt() io.ReaderAt { return s.ra.Load().(raBox).ra }

// Acquire registers a reader; it must be paired with Release. It reports
// false when the snapshot is already closing.
func (s *Snapshot) Acquire() bool {
	s.refs.Add(1)
	if s.closed.Load() {
		// Lost the race with Close: back out.
		s.Release()
		return false
	}
	return true
}

// Release drops one reader; the last release after Close closes the file.
func (s *Snapshot) Release() {
	if s.refs.Add(-1) == 0 && s.closed.Load() {
		s.closeFile()
	}
}

// Close marks the snapshot closing; the file handle is released once the
// last in-flight reader drains.
func (s *Snapshot) Close() {
	s.closed.Store(true)
	if s.refs.Load() == 0 {
		s.closeFile()
	}
}

// InUse reports whether the snapshot still holds its backing file —
// either readers are in flight or Close has not been called. Retention
// GC must not delete the file under an in-use snapshot.
func (s *Snapshot) InUse() bool {
	return !s.closed.Load() || s.refs.Load() > 0
}

func (s *Snapshot) closeFile() {
	s.closeOnce.Do(func() {
		if s.file != nil {
			s.file.Close()
		}
	})
}

// cellIndex finds the row of a cell key by binary search over the sorted
// cell table.
func (s *Snapshot) cellIndex(key geo.CellKey) (int, bool) {
	cells := s.data.cells
	i := sort.Search(len(cells), func(i int) bool {
		c := cells[i].Key
		if c.Lat != key.Lat {
			return c.Lat >= key.Lat
		}
		return c.Lon >= key.Lon
	})
	if i < len(cells) && cells[i].Key == key {
		return i, true
	}
	return 0, false
}

// readColumn reads rows [lo, hi) of one u32 daily column from disk under
// ctx's deadline. The ReadAt runs in its own goroutine so a stalled disk
// cannot hold the request past its deadline: the caller gets ctx.Err()
// on time and the abandoned read finishes (and is discarded) whenever
// the disk wakes up.
func (s *Snapshot) readColumn(ctx context.Context, colOff int64, lo, hi int, buf []uint32) ([]uint32, error) {
	n := hi - lo
	if n <= 0 {
		return buf[:0], nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	raw := make([]byte, 4*n)
	ra := s.readerAt()
	done := make(chan error, 1) // buffered: an abandoned read never blocks
	go func() {
		_, err := ra.ReadAt(raw, colOff+int64(4*lo))
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			return nil, fmt.Errorf("serve: reading daily column: %w", err)
		}
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	buf = buf[:0]
	for i := 0; i < n; i++ {
		buf = append(buf, binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return buf, nil
}

// CellSeries is one cell's windowed daily fraction series.
type CellSeries struct {
	Cell       geo.CellKey
	Continent  geo.Continent
	Responsive int
	CS         int
	// StartDay is the UTC day index of Frac[0]; Frac[i] is the fraction
	// of the cell's change-sensitive blocks alarming on day StartDay+i.
	StartDay int64
	Frac     []float64
	Count    []int
}

// clampWindow intersects [fromDay, toDay) with the snapshot window and
// returns day offsets; ok is false when the intersection is empty.
func (s *Snapshot) clampWindow(fromDay, toDay int64) (lo, hi int, ok bool) {
	start := s.data.meta.StartDay()
	days := int64(s.data.meta.Days())
	if fromDay == 0 && toDay == 0 {
		return 0, int(days), days > 0
	}
	a, b := fromDay-start, toDay-start
	if a < 0 {
		a = 0
	}
	if b > days {
		b = days
	}
	if b <= a {
		return 0, 0, false
	}
	return int(a), int(b), true
}

// CellQuery returns the daily change fraction series for one gridcell
// over [fromDay, toDay) (UTC day indices; both zero means the full
// window). The daily rows are read from disk under ctx's deadline. A
// cell the snapshot never saw returns ok=false, not an error.
func (s *Snapshot) CellQuery(ctx context.Context, key geo.CellKey, dir changepoint.Direction, fromDay, toDay int64) (*CellSeries, bool, error) {
	ci, ok := s.cellIndex(key)
	if !ok {
		return nil, false, nil
	}
	lo, hi, ok := s.clampWindow(fromDay, toDay)
	if !ok {
		return nil, false, nil
	}
	row := s.data.cells[ci]
	out := &CellSeries{
		Cell:       row.Key,
		Continent:  row.Continent,
		Responsive: row.Responsive,
		CS:         row.CS,
		StartDay:   s.data.meta.StartDay() + int64(lo),
		Frac:       make([]float64, hi-lo),
		Count:      make([]int, hi-lo),
	}
	if err := s.accumulateCell(ctx, ci, dir, lo, hi, out.Count); err != nil {
		return nil, false, err
	}
	if row.CS > 0 {
		for i, n := range out.Count {
			out.Frac[i] = float64(n) / float64(row.CS)
		}
	}
	return out, true, nil
}

// accumulateCell adds cell ci's per-day alarm counts for dir over day
// offsets [lo, hi) into counts (indexed from lo).
func (s *Snapshot) accumulateCell(ctx context.Context, ci int, dir changepoint.Direction, lo, hi int, counts []int) error {
	a, b := int(s.data.dailyOf[ci]), int(s.data.dailyOf[ci+1])
	if a == b {
		return nil
	}
	days, err := s.readColumn(ctx, s.data.daily.dayOff, a, b, nil)
	if err != nil {
		return err
	}
	colOff := s.data.daily.downOff
	if dir == changepoint.Up {
		colOff = s.data.daily.upOff
	}
	vals, err := s.readColumn(ctx, colOff, a, b, nil)
	if err != nil {
		return err
	}
	for i, day := range days {
		if int(day) >= lo && int(day) < hi {
			counts[int(day)-lo] += int(vals[i])
		}
	}
	return nil
}

// TopCell is one ranked entry of a top-k trend query.
type TopCell struct {
	Cell geo.CellKey
	CS   int
	// Alarms is the total alarm count over the window; PeakFrac the
	// largest single-day fraction.
	Alarms   int
	PeakFrac float64
}

// TopK scans every cell's daily rows over the window and ranks cells by
// windowed alarm volume in dir — the expensive full-scan query that the
// admission layer sheds first under overload. ctx is checked per cell so
// a blown deadline aborts the scan mid-way.
func (s *Snapshot) TopK(ctx context.Context, k int, dir changepoint.Direction, fromDay, toDay int64) ([]TopCell, error) {
	lo, hi, ok := s.clampWindow(fromDay, toDay)
	if !ok || k <= 0 {
		return nil, nil
	}
	var (
		ranked  []TopCell
		daysBuf []uint32
		valsBuf []uint32
	)
	colOff := s.data.daily.downOff
	if dir == changepoint.Up {
		colOff = s.data.daily.upOff
	}
	for ci := range s.data.cells {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		a, b := int(s.data.dailyOf[ci]), int(s.data.dailyOf[ci+1])
		if a == b {
			continue
		}
		var err error
		daysBuf, err = s.readColumn(ctx, s.data.daily.dayOff, a, b, daysBuf)
		if err != nil {
			return nil, err
		}
		valsBuf, err = s.readColumn(ctx, colOff, a, b, valsBuf)
		if err != nil {
			return nil, err
		}
		row := s.data.cells[ci]
		total, peak := 0, 0
		for i, day := range daysBuf {
			if int(day) >= lo && int(day) < hi {
				total += int(valsBuf[i])
				if int(valsBuf[i]) > peak {
					peak = int(valsBuf[i])
				}
			}
		}
		if total == 0 {
			continue
		}
		tc := TopCell{Cell: row.Key, CS: row.CS, Alarms: total}
		if row.CS > 0 {
			tc.PeakFrac = float64(peak) / float64(row.CS)
		}
		ranked = append(ranked, tc)
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].Alarms != ranked[j].Alarms {
			return ranked[i].Alarms > ranked[j].Alarms
		}
		a, b := ranked[i].Cell, ranked[j].Cell
		if a.Lat != b.Lat {
			return a.Lat < b.Lat
		}
		return a.Lon < b.Lon
	})
	if k < len(ranked) {
		ranked = ranked[:k]
	}
	return ranked, nil
}

// ContinentSeries is a continent's aggregate daily fraction series.
type ContinentSeries struct {
	Continent geo.Continent
	CS        int
	StartDay  int64
	Frac      []float64
}

// ContinentQuery aggregates the downward daily fraction across every
// cell of one continent over [fromDay, toDay) — Figure 8 as a query.
func (s *Snapshot) ContinentQuery(ctx context.Context, cont geo.Continent, fromDay, toDay int64) (*ContinentSeries, error) {
	lo, hi, ok := s.clampWindow(fromDay, toDay)
	if !ok {
		return nil, fmt.Errorf("serve: window [%d,%d) outside snapshot", fromDay, toDay)
	}
	totalCS := 0
	counts := make([]int, hi-lo)
	for ci := range s.data.cells {
		row := s.data.cells[ci]
		if row.Continent != cont {
			continue
		}
		totalCS += row.CS
		if err := s.accumulateCell(ctx, ci, changepoint.Down, lo, hi, counts); err != nil {
			return nil, err
		}
	}
	out := &ContinentSeries{
		Continent: cont,
		CS:        totalCS,
		StartDay:  s.data.meta.StartDay() + int64(lo),
		Frac:      make([]float64, hi-lo),
	}
	if totalCS > 0 {
		for i, n := range counts {
			out.Frac[i] = float64(n) / float64(totalCS)
		}
	}
	return out, nil
}

// BlockChanges returns the change rows of one block by id, in wall-clock
// time. ok is false when the block is not in the snapshot.
func (s *Snapshot) BlockChanges(id uint32) (changes []ChangeView, cell geo.CellKey, ok bool) {
	for i := range s.data.blocks {
		if s.data.blocks[i].ID != id {
			continue
		}
		b := s.data.blocks[i]
		start := s.data.meta.Start
		for _, c := range s.data.changes[s.data.chOf[i]:s.data.chOf[i+1]] {
			changes = append(changes, ChangeView{
				Dir:          c.Dir.String(),
				Start:        start + int64(c.Start),
				Alarm:        start + int64(c.Alarm),
				End:          start + int64(c.End),
				Point:        start + int64(c.Point),
				Amplitude:    c.Amplitude,
				RawAmplitude: c.RawAmplitude,
			})
		}
		return changes, s.data.cells[b.CellIdx].Key, true
	}
	return nil, geo.CellKey{}, false
}

// ChangeView is one change event with wall-clock timestamps, as served.
type ChangeView struct {
	Dir                      string
	Start, Alarm, End, Point int64
	Amplitude, RawAmplitude  float64
}

// CellKeys lists every cell in the snapshot in table order — the target
// set the load harness draws queries from.
func (s *Snapshot) CellKeys() []geo.CellKey {
	keys := make([]geo.CellKey, len(s.data.cells))
	for i := range s.data.cells {
		keys[i] = s.data.cells[i].Key
	}
	return keys
}

// DayTime converts a UTC day index back to Unix seconds.
func DayTime(day int64) int64 { return day * netsim.SecondsPerDay }
