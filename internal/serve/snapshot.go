// Package serve is the result-serving plane: it turns a finished
// WorldResult into a compact columnar on-disk snapshot and serves
// gridcell/window, top-k trend, and continent-aggregate queries from it
// over HTTP while the world keeps running behind it.
//
// The robustness contract is the headline, not the query language:
//
//   - snapshots are written atomically (temp + rename) with CRC32C
//     section trailers reusing the checkpoint frame envelope, a manifest
//     header bound to core.RunSignature, and a byte-counting trailer, so
//     a SIGKILL mid-write, a bit flip, or a foreign run's snapshot is
//     detected — never served;
//   - the server hot-swaps snapshots under live traffic with a refcounted
//     atomic pointer, quarantines corrupt or foreign snapshots, and keeps
//     serving last-good;
//   - admission is bounded with prioritized load shedding: cheap cached
//     reads survive overload, expensive scans shed first with
//     503 + Retry-After, and every request carries a deadline that is
//     propagated down to the disk reads backing the daily columns.
package serve

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/diurnalnet/diurnal/internal/changepoint"
	"github.com/diurnalnet/diurnal/internal/core"
	"github.com/diurnalnet/diurnal/internal/geo"
	"github.com/diurnalnet/diurnal/internal/netsim"
	"github.com/diurnalnet/diurnal/internal/storage"
)

// Snapshot file layout. The file is a contiguous sequence of CRC32C
// frames in the checkpoint envelope ([u32 len | payload | u32 crc],
// core.AppendFrame / core.WalkFrames). Each payload is one tag byte
// followed by a fixed-width little-endian columnar section:
//
//	'H' header   — magic, format version, run signature, window, counts
//	'C' cells    — lat/lon/continent/responsive/change-sensitive columns
//	               plus row offsets into the daily section
//	'D' daily    — per-(cell, day) down/up alarm counts, columnar, sorted
//	               by cell then day; the serving path reads these columns
//	               from disk per request instead of holding them resident
//	'B' blocks   — block id, cell index, classification flag bits, row
//	               offsets into the change section
//	'E' changes  — per-change direction/boundaries/amplitudes
//	'Z' trailer  — frame count and payload byte total of everything above
//
// The envelope CRC catches bit flips; the trailer catches truncation at
// a frame boundary, which per-frame CRCs cannot; the header signature
// catches a snapshot from a different (config, world) pair.
const (
	snapMagic   = "DSN1"
	snapVersion = 1

	tagHeader  = 'H'
	tagCells   = 'C'
	tagDaily   = 'D'
	tagBlocks  = 'B'
	tagChanges = 'E'
	tagTrailer = 'Z'
)

// Block classification flag bits in the 'B' section.
const (
	blockAnalyzed = 1 << iota
	blockResponsive
	blockChangeSensitive
)

// Meta is the snapshot manifest: identity and shape, decoded from the
// header frame.
type Meta struct {
	// Signature is the core.RunSignature of the (config, world) pair the
	// snapshot was built from. The server refuses to swap in a snapshot
	// whose signature differs from its pinned one.
	Signature []byte
	// Start and End bound the analysis window (Unix seconds, UTC).
	Start, End int64
	// AnalyzedBlocks and Degraded summarize the run that produced the
	// snapshot (served on /v1/stats so clients can judge confidence).
	AnalyzedBlocks int
	Degraded       bool
	// Cells, Blocks, Changes, DailyRows are the section row counts.
	Cells, Blocks, Changes, DailyRows int
}

// StartDay returns the window's first UTC day index.
func (m Meta) StartDay() int64 { return m.Start / netsim.SecondsPerDay }

// Days returns the number of day slots in the window.
func (m Meta) Days() int {
	return int((m.End - m.Start + netsim.SecondsPerDay - 1) / netsim.SecondsPerDay)
}

// cellRow is one decoded row of the 'C' section.
type cellRow struct {
	Key        geo.CellKey
	Continent  geo.Continent
	Responsive int
	CS         int
}

// changeRow is one decoded row of the 'E' section, times as offsets from
// Meta.Start.
type changeRow struct {
	Dir                      changepoint.Direction
	Start, Alarm, End, Point uint32
	Amplitude, RawAmplitude  float64
}

// blockRow is one decoded row of the 'B' section.
type blockRow struct {
	ID      uint32
	CellIdx uint32
	Flags   uint8
}

// dailyLayout locates the daily section's columns inside the file so the
// serving path can read per-cell row ranges straight from disk.
type dailyLayout struct {
	rows int
	// dayOff, downOff, upOff are absolute file offsets of the three
	// column arrays (u32 little-endian each).
	dayOff, downOff, upOff int64
}

// snapData is a fully decoded snapshot (sans the daily columns, which
// stay on disk): the in-memory result of decodeSnapshot.
type snapData struct {
	meta    Meta
	cells   []cellRow
	dailyOf []uint32 // len(cells)+1 row offsets into the daily section
	blocks  []blockRow
	chOf    []uint32 // len(blocks)+1 row offsets into the change section
	changes []changeRow
	daily   dailyLayout
	// crc is the CRC32C of the entire encoded file: the snapshot's
	// identity, echoed in the X-Snapshot response header.
	crc uint32
}

func (d *snapData) id() string { return fmt.Sprintf("%08x", d.crc) }

// --- encoding ------------------------------------------------------------

type colWriter struct{ buf []byte }

func (w *colWriter) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *colWriter) u16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }
func (w *colWriter) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *colWriter) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *colWriter) i32(v int32)  { w.u32(uint32(v)) }
func (w *colWriter) i64(v int64)  { w.u64(uint64(v)) }
func (w *colWriter) f64(v float64) {
	w.u64(math.Float64bits(v))
}

// EncodeSnapshot builds the columnar snapshot bytes for a finished world
// run. sig must be the run's core.RunSignature; start/end the analysis
// window. The encoding is deterministic: cells sort by (lat, lon), daily
// rows by (cell, day), blocks and changes in world order.
func EncodeSnapshot(res *core.WorldResult, sig []byte, start, end int64) ([]byte, error) {
	if res == nil {
		return nil, fmt.Errorf("serve: nil world result")
	}
	if end <= start {
		return nil, fmt.Errorf("serve: empty window [%d,%d)", start, end)
	}
	if len(sig) == 0 || len(sig) > 0xffff {
		return nil, fmt.Errorf("serve: bad signature length %d", len(sig))
	}
	startDay := start / netsim.SecondsPerDay
	maxDay := uint32((end-start+netsim.SecondsPerDay-1)/netsim.SecondsPerDay) + 1

	// Cell table: the union of aggregated cells and every block's cell,
	// sorted by (lat, lon) so lookups are a binary search.
	cellSet := map[geo.CellKey]bool{}
	for k := range res.Cells {
		cellSet[k] = true
	}
	for i := range res.Blocks {
		cellSet[res.Blocks[i].Place.Cell] = true
	}
	keys := make([]geo.CellKey, 0, len(cellSet))
	for k := range cellSet {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Lat != keys[j].Lat {
			return keys[i].Lat < keys[j].Lat
		}
		return keys[i].Lon < keys[j].Lon
	})
	cellIdx := make(map[geo.CellKey]uint32, len(keys))
	cells := make([]cellRow, len(keys))
	for i, k := range keys {
		cellIdx[k] = uint32(i)
		row := cellRow{Key: k}
		if st := res.Cells[k]; st != nil {
			row.Continent = st.Continent
			row.Responsive = st.Responsive
			row.CS = st.ChangeSensitive
		}
		cells[i] = row
	}
	// A cell whose only members are unanalyzed blocks has no CellStats;
	// recover its continent from any block placed there.
	for i := range res.Blocks {
		b := &res.Blocks[i]
		if res.Cells[b.Place.Cell] == nil && b.Place.Region != nil {
			cells[cellIdx[b.Place.Cell]].Continent = b.Place.Region.Continent
		}
	}

	// Daily rows, columnar, sorted by (cell, day).
	type dailyRow struct{ day, down, up uint32 }
	perCell := make([][]dailyRow, len(cells))
	addDaily := func(src map[geo.CellKey]map[int64]int, down bool) error {
		for k, days := range src {
			ci, ok := cellIdx[k]
			if !ok {
				return fmt.Errorf("serve: daily counts for unknown cell %v", k)
			}
			for d, n := range days {
				off := d - startDay
				if off < 0 || uint32(off) >= maxDay {
					return fmt.Errorf("serve: day %d outside window for cell %v", d, k)
				}
				rows := perCell[ci]
				found := false
				for ri := range rows {
					if rows[ri].day == uint32(off) {
						if down {
							rows[ri].down += uint32(n)
						} else {
							rows[ri].up += uint32(n)
						}
						found = true
						break
					}
				}
				if !found {
					r := dailyRow{day: uint32(off)}
					if down {
						r.down = uint32(n)
					} else {
						r.up = uint32(n)
					}
					perCell[ci] = append(perCell[ci], r)
				}
			}
		}
		return nil
	}
	if err := addDaily(res.DownDaily, true); err != nil {
		return nil, err
	}
	if err := addDaily(res.UpDaily, false); err != nil {
		return nil, err
	}
	dailyOf := make([]uint32, len(cells)+1)
	var days, downs, ups []uint32
	for ci, rows := range perCell {
		sort.Slice(rows, func(i, j int) bool { return rows[i].day < rows[j].day })
		dailyOf[ci] = uint32(len(days))
		for _, r := range rows {
			days = append(days, r.day)
			downs = append(downs, r.down)
			ups = append(ups, r.up)
		}
	}
	dailyOf[len(cells)] = uint32(len(days))

	// Blocks and changes in world order.
	blocks := make([]blockRow, len(res.Blocks))
	chOf := make([]uint32, len(res.Blocks)+1)
	var changes []changeRow
	toOff := func(t int64) (uint32, error) {
		off := t - start
		if off < 0 || off > math.MaxUint32 {
			return 0, fmt.Errorf("serve: change time %d outside window", t)
		}
		return uint32(off), nil
	}
	for i := range res.Blocks {
		b := &res.Blocks[i]
		row := blockRow{ID: uint32(b.ID), CellIdx: cellIdx[b.Place.Cell]}
		chOf[i] = uint32(len(changes))
		if a := b.Analysis; a != nil {
			row.Flags |= blockAnalyzed
			if a.Class.Responsive {
				row.Flags |= blockResponsive
			}
			if a.Class.ChangeSensitive {
				row.Flags |= blockChangeSensitive
			}
			for _, c := range a.Changes {
				cs, err := toOff(c.Start)
				if err != nil {
					return nil, err
				}
				ca, err := toOff(c.Alarm)
				if err != nil {
					return nil, err
				}
				ce, err := toOff(c.End)
				if err != nil {
					return nil, err
				}
				cp, err := toOff(c.Point)
				if err != nil {
					return nil, err
				}
				changes = append(changes, changeRow{
					Dir: c.Dir, Start: cs, Alarm: ca, End: ce, Point: cp,
					Amplitude: c.Amplitude, RawAmplitude: c.RawAmplitude,
				})
			}
		}
		blocks[i] = row
	}
	chOf[len(res.Blocks)] = uint32(len(changes))

	degraded := res.Report != nil && res.Report.Degraded()
	analyzed := 0
	if res.Report != nil {
		analyzed = res.Report.AnalyzedBlocks
	}

	// Assemble the frames.
	var h colWriter
	h.u8(tagHeader)
	h.buf = append(h.buf, snapMagic...)
	h.u16(snapVersion)
	h.u16(uint16(len(sig)))
	h.buf = append(h.buf, sig...)
	h.i64(start)
	h.i64(end)
	h.u32(uint32(analyzed))
	if degraded {
		h.u8(1)
	} else {
		h.u8(0)
	}
	h.u32(uint32(len(cells)))
	h.u32(uint32(len(blocks)))
	h.u32(uint32(len(changes)))
	h.u32(uint32(len(days)))

	var c colWriter
	c.u8(tagCells)
	c.u32(uint32(len(cells)))
	for _, r := range cells {
		c.i32(int32(r.Key.Lat))
	}
	for _, r := range cells {
		c.i32(int32(r.Key.Lon))
	}
	for _, r := range cells {
		c.u8(uint8(r.Continent))
	}
	for _, r := range cells {
		c.u32(uint32(r.Responsive))
	}
	for _, r := range cells {
		c.u32(uint32(r.CS))
	}
	for _, o := range dailyOf {
		c.u32(o)
	}

	var d colWriter
	d.u8(tagDaily)
	d.u32(uint32(len(days)))
	for _, v := range days {
		d.u32(v)
	}
	for _, v := range downs {
		d.u32(v)
	}
	for _, v := range ups {
		d.u32(v)
	}

	var bw colWriter
	bw.u8(tagBlocks)
	bw.u32(uint32(len(blocks)))
	for _, r := range blocks {
		bw.u32(r.ID)
	}
	for _, r := range blocks {
		bw.u32(r.CellIdx)
	}
	for _, r := range blocks {
		bw.u8(r.Flags)
	}
	for _, o := range chOf {
		bw.u32(o)
	}

	var e colWriter
	e.u8(tagChanges)
	e.u32(uint32(len(changes)))
	for _, r := range changes {
		e.u8(uint8(int8(r.Dir)))
	}
	for _, r := range changes {
		e.u32(r.Start)
	}
	for _, r := range changes {
		e.u32(r.Alarm)
	}
	for _, r := range changes {
		e.u32(r.End)
	}
	for _, r := range changes {
		e.u32(r.Point)
	}
	for _, r := range changes {
		e.f64(r.Amplitude)
	}
	for _, r := range changes {
		e.f64(r.RawAmplitude)
	}

	payloads := [][]byte{h.buf, c.buf, d.buf, bw.buf, e.buf}
	var out []byte
	payloadBytes := 0
	for _, p := range payloads {
		out = core.AppendFrame(out, p)
		payloadBytes += len(p)
	}
	var z colWriter
	z.u8(tagTrailer)
	z.u32(uint32(len(payloads)))
	z.u64(uint64(payloadBytes))
	out = core.AppendFrame(out, z.buf)
	return out, nil
}

// --- decoding ------------------------------------------------------------

type colReader struct {
	buf []byte
	off int
	err error
}

func (r *colReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("serve: truncated %s column", what)
	}
}

func (r *colReader) u8(what string) uint8 {
	if r.err != nil || r.off+1 > len(r.buf) {
		r.fail(what)
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *colReader) u16(what string) uint16 {
	if r.err != nil || r.off+2 > len(r.buf) {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v
}

func (r *colReader) u32(what string) uint32 {
	if r.err != nil || r.off+4 > len(r.buf) {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *colReader) u64(what string) uint64 {
	if r.err != nil || r.off+8 > len(r.buf) {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *colReader) bytes(n int, what string) []byte {
	if r.err != nil || n < 0 || r.off+n > len(r.buf) {
		r.fail(what)
		return nil
	}
	v := r.buf[r.off : r.off+n]
	r.off += n
	return v
}

// count reads a section row count and bounds it by what the remaining
// bytes could possibly hold (rowBytes per row), so a corrupt count cannot
// drive a huge allocation.
func (r *colReader) count(rowBytes int, what string) int {
	n := int(r.u32(what))
	if r.err != nil {
		return 0
	}
	if n < 0 || n*rowBytes > len(r.buf)-r.off {
		r.fail(what + " count")
		return 0
	}
	return n
}

// decodeSnapshot parses and cross-checks a whole snapshot file image.
// Structural damage (bad envelope, short section, wrong magic) and
// semantic damage (non-monotone offsets, out-of-range indices, count
// mismatches) are both reported as faults; the returned snapData is
// non-nil only when faults is empty. It never panics on corrupt input
// (FuzzSnapshotDecode holds it to that).
func decodeSnapshot(data []byte) (*snapData, []string) {
	var faults []string
	fault := func(format string, args ...interface{}) {
		faults = append(faults, fmt.Sprintf(format, args...))
	}
	d := &snapData{crc: crc32.Checksum(data, core.FrameCRC)}
	var (
		frames       int
		payloadTotal int
		trailerSeen  bool
		trailerCount uint32
		trailerBytes uint64
		fileOff      int64
	)
	seen := map[byte]bool{}
	good := core.WalkFrames(data, func(payload []byte) error {
		frameStart := fileOff
		fileOff += int64(8 + len(payload))
		if trailerSeen {
			fault("frame after trailer")
			return fmt.Errorf("frame after trailer")
		}
		if len(payload) == 0 {
			fault("empty frame payload")
			return fmt.Errorf("empty payload")
		}
		tag := payload[0]
		if tag != tagTrailer {
			frames++
			payloadTotal += len(payload)
		}
		if seen[tag] {
			fault("duplicate %q section", tag)
			return fmt.Errorf("duplicate section")
		}
		seen[tag] = true
		if frames > 0 && !seen[tagHeader] {
			fault("first frame is %q, not the header", tag)
			return fmt.Errorf("header not first")
		}
		r := &colReader{buf: payload, off: 1}
		switch tag {
		case tagHeader:
			if frames != 1 {
				fault("header frame out of order")
				return fmt.Errorf("header out of order")
			}
			magic := r.bytes(4, "magic")
			if r.err == nil && string(magic) != snapMagic {
				fault("bad magic %q", magic)
				return fmt.Errorf("bad magic")
			}
			ver := r.u16("version")
			if r.err == nil && ver != snapVersion {
				fault("unsupported snapshot version %d", ver)
				return fmt.Errorf("bad version")
			}
			sigLen := int(r.u16("siglen"))
			sig := r.bytes(sigLen, "signature")
			d.meta.Signature = append([]byte(nil), sig...)
			d.meta.Start = int64(r.u64("start"))
			d.meta.End = int64(r.u64("end"))
			d.meta.AnalyzedBlocks = int(r.u32("analyzed"))
			d.meta.Degraded = r.u8("degraded") != 0
			d.meta.Cells = int(r.u32("cells"))
			d.meta.Blocks = int(r.u32("blocks"))
			d.meta.Changes = int(r.u32("changes"))
			d.meta.DailyRows = int(r.u32("dailyrows"))
			if r.err == nil && d.meta.End <= d.meta.Start {
				fault("empty window [%d,%d)", d.meta.Start, d.meta.End)
			}
		case tagCells:
			n := r.count(21, "cells")
			d.cells = make([]cellRow, n)
			for i := range d.cells {
				d.cells[i].Key.Lat = int(int32(r.u32("lat")))
			}
			for i := range d.cells {
				d.cells[i].Key.Lon = int(int32(r.u32("lon")))
			}
			for i := range d.cells {
				d.cells[i].Continent = geo.Continent(r.u8("continent"))
			}
			for i := range d.cells {
				d.cells[i].Responsive = int(r.u32("responsive"))
			}
			for i := range d.cells {
				d.cells[i].CS = int(r.u32("cs"))
			}
			d.dailyOf = make([]uint32, 0, n+1)
			for i := 0; i <= n; i++ {
				d.dailyOf = append(d.dailyOf, r.u32("dailyoff"))
			}
		case tagDaily:
			m := r.count(12, "daily")
			d.daily.rows = m
			d.daily.dayOff = frameStart + 4 + int64(r.off)
			r.bytes(4*m, "day")
			d.daily.downOff = frameStart + 4 + int64(r.off)
			r.bytes(4*m, "down")
			d.daily.upOff = frameStart + 4 + int64(r.off)
			r.bytes(4*m, "up")
		case tagBlocks:
			nb := r.count(13, "blocks")
			d.blocks = make([]blockRow, nb)
			for i := range d.blocks {
				d.blocks[i].ID = r.u32("id")
			}
			for i := range d.blocks {
				d.blocks[i].CellIdx = r.u32("cellidx")
			}
			for i := range d.blocks {
				d.blocks[i].Flags = r.u8("flags")
			}
			d.chOf = make([]uint32, 0, nb+1)
			for i := 0; i <= nb; i++ {
				d.chOf = append(d.chOf, r.u32("changeoff"))
			}
		case tagChanges:
			ne := r.count(33, "changes")
			d.changes = make([]changeRow, ne)
			for i := range d.changes {
				d.changes[i].Dir = changepoint.Direction(int8(r.u8("dir")))
			}
			for i := range d.changes {
				d.changes[i].Start = r.u32("start")
			}
			for i := range d.changes {
				d.changes[i].Alarm = r.u32("alarm")
			}
			for i := range d.changes {
				d.changes[i].End = r.u32("end")
			}
			for i := range d.changes {
				d.changes[i].Point = r.u32("point")
			}
			for i := range d.changes {
				d.changes[i].Amplitude = math.Float64frombits(r.u64("amplitude"))
			}
			for i := range d.changes {
				d.changes[i].RawAmplitude = math.Float64frombits(r.u64("rawamplitude"))
			}
		case tagTrailer:
			trailerSeen = true
			trailerCount = r.u32("trailer frames")
			trailerBytes = r.u64("trailer bytes")
		default:
			fault("unknown section tag %q", tag)
			return fmt.Errorf("unknown tag")
		}
		if r.err != nil {
			fault("section %q: %v", tag, r.err)
			return r.err
		}
		if r.off != len(payload) {
			fault("section %q: %d trailing bytes", tag, len(payload)-r.off)
			return fmt.Errorf("trailing bytes")
		}
		return nil
	})
	if len(faults) == 0 && good < len(data) {
		fault("torn tail: %d of %d bytes verify", good, len(data))
	}
	if len(faults) > 0 {
		return nil, faults
	}
	// Structural pass done; cross-section invariants.
	for _, tag := range []byte{tagHeader, tagCells, tagDaily, tagBlocks, tagChanges} {
		if !seen[tag] {
			fault("missing %q section", tag)
		}
	}
	if !trailerSeen {
		fault("missing trailer: snapshot truncated at a frame boundary")
	} else {
		if int(trailerCount) != frames {
			fault("trailer counts %d frames, file has %d", trailerCount, frames)
		}
		if trailerBytes != uint64(payloadTotal) {
			fault("trailer counts %d payload bytes, file has %d", trailerBytes, payloadTotal)
		}
	}
	if len(faults) > 0 {
		return nil, faults
	}
	m := d.meta
	if len(d.cells) != m.Cells {
		fault("header says %d cells, section has %d", m.Cells, len(d.cells))
	}
	if len(d.blocks) != m.Blocks {
		fault("header says %d blocks, section has %d", m.Blocks, len(d.blocks))
	}
	if len(d.changes) != m.Changes {
		fault("header says %d changes, section has %d", m.Changes, len(d.changes))
	}
	if d.daily.rows != m.DailyRows {
		fault("header says %d daily rows, section has %d", m.DailyRows, d.daily.rows)
	}
	if len(faults) > 0 {
		return nil, faults
	}
	for i := 1; i < len(d.cells); i++ {
		a, b := d.cells[i-1].Key, d.cells[i].Key
		if a.Lat > b.Lat || (a.Lat == b.Lat && a.Lon >= b.Lon) {
			fault("cell table not sorted at row %d", i)
			break
		}
	}
	checkOffsets := func(name string, of []uint32, total int) {
		if len(of) == 0 {
			return
		}
		if of[0] != 0 || int(of[len(of)-1]) != total {
			fault("%s offsets do not span [0,%d]", name, total)
			return
		}
		for i := 1; i < len(of); i++ {
			if of[i] < of[i-1] {
				fault("%s offsets not monotone at row %d", name, i)
				return
			}
		}
	}
	checkOffsets("daily", d.dailyOf, d.daily.rows)
	checkOffsets("change", d.chOf, len(d.changes))
	for i, b := range d.blocks {
		if int(b.CellIdx) >= len(d.cells) {
			fault("block row %d references cell %d of %d", i, b.CellIdx, len(d.cells))
			break
		}
	}
	for i, c := range d.changes {
		if c.Dir != changepoint.Up && c.Dir != changepoint.Down {
			fault("change row %d has direction %d", i, c.Dir)
			break
		}
		if c.Alarm < c.Start || c.End < c.Alarm {
			fault("change row %d boundaries out of order", i)
			break
		}
	}
	if len(faults) > 0 {
		return nil, faults
	}
	return d, nil
}

// --- file I/O ------------------------------------------------------------

// snapPattern names snapshot files so lexical order is creation order.
const snapSuffix = ".snap"

// SnapshotName returns the file name for sequence number seq.
func SnapshotName(seq int) string { return fmt.Sprintf("snap-%08d%s", seq, snapSuffix) }

// writeFileAtomic follows the shared storage discipline: temp file in
// the same directory, write, sync, close, rename, parent-directory
// fsync (rename alone is not crash-durable — the new directory entry
// lives in the parent's blocks). A crash at any point leaves either the
// old file or a *.tmp ignored by every reader.
func writeFileAtomic(fsys storage.FS, path string, data []byte) error {
	return storage.WriteBytesAtomic(fsys, path, data)
}

// parseSnapshotSeq extracts the sequence number from a snapshot file
// name, reporting whether the name is a canonically numbered snapshot.
func parseSnapshotSeq(name string) (int, bool) {
	var seq int
	if _, err := fmt.Sscanf(name, "snap-%08d", &seq); err != nil {
		return 0, false
	}
	if SnapshotName(seq) != name {
		return 0, false
	}
	return seq, true
}

// WriteSnapshot encodes res and atomically writes it into dir under the
// next free sequence number, returning the snapshot's path. dir is
// created if missing.
func WriteSnapshot(dir string, res *core.WorldResult, sig []byte, start, end int64) (string, error) {
	return WriteSnapshotFS(storage.OS, dir, res, sig, start, end)
}

// WriteSnapshotFS is WriteSnapshot through an injectable filesystem.
// The next sequence number is one past the maximum parseable sequence
// among existing snapshots — not the file count, which could collide
// with an existing name when the directory holds foreign *.snap files.
func WriteSnapshotFS(fsys storage.FS, dir string, res *core.WorldResult, sig []byte, start, end int64) (string, error) {
	data, err := EncodeSnapshot(res, sig, start, end)
	if err != nil {
		return "", err
	}
	return writeSnapshotBytes(fsys, dir, data)
}

// writeSnapshotBytes places already-encoded snapshot bytes into dir
// under the next free sequence number.
func writeSnapshotBytes(fsys storage.FS, dir string, data []byte) (string, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	names, err := listSnapshots(dir)
	if err != nil {
		return "", err
	}
	seq := 0
	for _, name := range names {
		if n, ok := parseSnapshotSeq(name); ok && n >= seq {
			seq = n + 1
		}
	}
	path := filepath.Join(dir, SnapshotName(seq))
	if err := writeFileAtomic(fsys, path, data); err != nil {
		return "", err
	}
	return path, nil
}

// RetainSnapshots is the snapshot directory's garbage collector: it
// deletes every *.snap beyond the newest keep, except snapshots inUse
// reports as still referenced (the currently served snapshot and any
// snapshot a draining reader still holds open). Quarantined files
// (*.snap.quarantined) are never touched — they are forensic evidence,
// not retention candidates. It returns the deleted names.
func RetainSnapshots(fsys storage.FS, dir string, keep int, inUse func(path string) bool) ([]string, error) {
	if keep < 1 {
		return nil, fmt.Errorf("serve: retention must keep at least 1 snapshot (got %d)", keep)
	}
	names, err := listSnapshots(dir)
	if err != nil {
		return nil, err
	}
	if len(names) <= keep {
		return nil, nil
	}
	var removed []string
	for _, name := range names[:len(names)-keep] {
		path := filepath.Join(dir, name)
		if inUse != nil && inUse(path) {
			continue
		}
		if err := fsys.Remove(path); err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return removed, fmt.Errorf("serve: retiring snapshot %s: %w", path, err)
		}
		removed = append(removed, name)
	}
	return removed, nil
}

// listSnapshots returns the *.snap names in dir in ascending lexical
// (= creation) order, ignoring temp files and quarantined snapshots.
func listSnapshots(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.Type().IsRegular() && strings.HasSuffix(name, snapSuffix) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// VerifyReport is the fsck result for one snapshot file, in the style of
// dataset.Store.Verify: every fault found in one pass, not just the first.
type VerifyReport struct {
	Path string
	// Meta is filled when the header decoded cleanly.
	Meta Meta
	// Faults lists everything wrong with the file.
	Faults []string
}

// Clean reports whether the snapshot passed verification.
func (r *VerifyReport) Clean() bool { return len(r.Faults) == 0 }

// String renders an fsck-style summary.
func (r *VerifyReport) String() string {
	var b strings.Builder
	state := "ok"
	if !r.Clean() {
		state = fmt.Sprintf("DAMAGED (%d faults)", len(r.Faults))
	}
	fmt.Fprintf(&b, "snapshot %s: %s — %d cells, %d blocks, %d changes, %d daily rows\n",
		filepath.Base(r.Path), state, r.Meta.Cells, r.Meta.Blocks, r.Meta.Changes, r.Meta.DailyRows)
	for _, f := range r.Faults {
		fmt.Fprintf(&b, "  %s\n", f)
	}
	return b.String()
}

// VerifySnapshot is fsck for one snapshot file: envelope CRCs, section
// structure, trailer byte accounting, and cross-section invariants. The
// returned error is non-nil only when the file cannot be read at all.
func VerifySnapshot(path string) (*VerifyReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &VerifyReport{Path: path}
	d, faults := decodeSnapshot(data)
	rep.Faults = faults
	if d != nil {
		rep.Meta = d.meta
	}
	return rep, nil
}
