package serve

// Shared test fixture: a small hand-built WorldResult whose aggregates
// come from core.Reaggregate itself, so snapshot queries can be checked
// against the canonical in-memory series functions rather than against
// numbers duplicated by hand.

import (
	"bytes"
	"testing"

	"github.com/diurnalnet/diurnal/internal/blockclass"
	"github.com/diurnalnet/diurnal/internal/changepoint"
	"github.com/diurnalnet/diurnal/internal/core"
	"github.com/diurnalnet/diurnal/internal/geo"
	"github.com/diurnalnet/diurnal/internal/netsim"
)

// testStartDay anchors the fixture window (a UTC day index in 2019).
const testStartDay = 18000

var (
	testRegionAsia = &geo.Region{Code: "CN", Name: "China", Continent: geo.Asia}
	testRegionSAm  = &geo.Region{Code: "BR", Name: "Brazil", Continent: geo.SouthAmerica}
)

// testChange builds one change entirely inside day d of the window.
func testChange(start int64, d int64, dir changepoint.Direction) core.Change {
	base := start + d*netsim.SecondsPerDay
	return core.Change{
		Dir:          dir,
		Start:        base + 6*3600,
		Alarm:        base + 8*3600,
		End:          base + 10*3600,
		Point:        base + 7*3600,
		Amplitude:    0.4,
		RawAmplitude: 120,
	}
}

// testBlock builds one analyzed block.
func testBlock(id uint32, region *geo.Region, lat, lon float64, cs bool, changes []core.Change) core.BlockOutcome {
	return core.BlockOutcome{
		ID: netsim.BlockID(id),
		Place: geo.Placement{
			Index:  int(id),
			Region: region,
			Lat:    lat,
			Lon:    lon,
			Cell:   geo.CellOf(lat, lon),
		},
		Analysis: &core.BlockAnalysis{
			Class:   blockclass.Result{Responsive: true, ChangeSensitive: cs},
			Changes: changes,
		},
	}
}

// testResult builds the fixture world: two Asian cells and one South
// American, one failed block, and a handful of changes spread over a
// ten-day window. Aggregates are rebuilt by core.Reaggregate.
func testResult(t *testing.T) (res *core.WorldResult, sig []byte, start, end int64) {
	t.Helper()
	return buildResult()
}

// buildResult is testResult without the *testing.T, for fuzz seeding.
func buildResult() (res *core.WorldResult, sig []byte, start, end int64) {
	start = int64(testStartDay) * netsim.SecondsPerDay
	end = start + 10*netsim.SecondsPerDay
	res = &core.WorldResult{
		Blocks: []core.BlockOutcome{
			testBlock(1, testRegionAsia, 30.5, 114.5, true, []core.Change{
				testChange(start, 2, changepoint.Down),
				testChange(start, 3, changepoint.Down),
				testChange(start, 5, changepoint.Up),
			}),
			testBlock(2, testRegionAsia, 30.9, 114.9, true, []core.Change{
				testChange(start, 2, changepoint.Down),
			}),
			testBlock(3, testRegionAsia, 30.7, 114.2, false, nil),
			testBlock(4, testRegionAsia, 36.5, 120.5, true, []core.Change{
				testChange(start, 7, changepoint.Down),
			}),
			testBlock(5, testRegionSAm, -10.5, -48.3, true, []core.Change{
				testChange(start, 4, changepoint.Up),
			}),
		},
	}
	// One failed block (nil Analysis) in its own cell: the snapshot must
	// still carry its placement.
	res.Blocks = append(res.Blocks, core.BlockOutcome{
		ID:    netsim.BlockID(6),
		Place: geo.Placement{Index: 6, Region: testRegionSAm, Lat: -20.5, Lon: -50.5, Cell: geo.CellOf(-20.5, -50.5)},
	})
	res.Reaggregate()
	sig = bytes.Repeat([]byte{0xAB}, 32)
	return res, sig, start, end
}

// writeTestSnapshot encodes the fixture into dir and returns its path
// plus the fixture pieces.
func writeTestSnapshot(t *testing.T, dir string) (path string, res *core.WorldResult, sig []byte, start, end int64) {
	t.Helper()
	res, sig, start, end = testResult(t)
	path, err := WriteSnapshot(dir, res, sig, start, end)
	if err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	return path, res, sig, start, end
}
