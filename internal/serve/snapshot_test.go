package serve

// Codec tests: roundtrip parity against the canonical in-memory series
// functions, and verification against every flavor of damage the format
// claims to detect.

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"github.com/diurnalnet/diurnal/internal/changepoint"
	"github.com/diurnalnet/diurnal/internal/core"
	"github.com/diurnalnet/diurnal/internal/geo"
)

func openTestSnapshot(t *testing.T) (*Snapshot, *core.WorldResult, int64, int64) {
	t.Helper()
	path, res, _, start, end := writeTestSnapshot(t, t.TempDir())
	sn, err := OpenSnapshot(path)
	if err != nil {
		t.Fatalf("OpenSnapshot: %v", err)
	}
	t.Cleanup(sn.Close)
	return sn, res, start, end
}

func TestSnapshotRoundtripMeta(t *testing.T) {
	sn, res, start, end := openTestSnapshot(t)
	m := sn.Meta()
	if m.Start != start || m.End != end {
		t.Errorf("window [%d,%d), want [%d,%d)", m.Start, m.End, start, end)
	}
	if m.AnalyzedBlocks != res.Report.AnalyzedBlocks {
		t.Errorf("AnalyzedBlocks = %d, want %d", m.AnalyzedBlocks, res.Report.AnalyzedBlocks)
	}
	if m.Degraded {
		t.Error("fixture run is not degraded")
	}
	if m.Blocks != len(res.Blocks) {
		t.Errorf("Blocks = %d, want %d", m.Blocks, len(res.Blocks))
	}
	// Union of aggregated cells and block placements: the failed block's
	// cell has no CellStats but must still be present.
	wantCells := map[geo.CellKey]bool{}
	for k := range res.Cells {
		wantCells[k] = true
	}
	for i := range res.Blocks {
		wantCells[res.Blocks[i].Place.Cell] = true
	}
	if m.Cells != len(wantCells) {
		t.Errorf("Cells = %d, want %d", m.Cells, len(wantCells))
	}
}

// TestSnapshotCellParity checks CellQuery against core's
// CellFractionSeries for every cell and both directions.
func TestSnapshotCellParity(t *testing.T) {
	sn, res, _, _ := openTestSnapshot(t)
	startDay, endDay := sn.Meta().StartDay(), sn.Meta().StartDay()+int64(sn.Meta().Days())
	for _, key := range sn.CellKeys() {
		for _, dir := range []changepoint.Direction{changepoint.Down, changepoint.Up} {
			want := res.CellFractionSeries(key, dir, startDay, endDay)
			got, ok, err := sn.CellQuery(context.Background(), key, dir, 0, 0)
			if err != nil || !ok {
				t.Fatalf("CellQuery(%v, %v): ok=%v err=%v", key, dir, ok, err)
			}
			if len(got.Frac) != len(want) {
				t.Fatalf("cell %v dir %v: %d days, want %d", key, dir, len(got.Frac), len(want))
			}
			for i := range want {
				if got.Frac[i] != want[i] {
					t.Errorf("cell %v dir %v day %d: frac %g, want %g", key, dir, i, got.Frac[i], want[i])
				}
			}
			if st := res.Cells[key]; st != nil {
				if got.CS != st.ChangeSensitive || got.Responsive != st.Responsive || got.Continent != st.Continent {
					t.Errorf("cell %v stats (%d,%d,%v), want (%d,%d,%v)", key,
						got.CS, got.Responsive, got.Continent,
						st.ChangeSensitive, st.Responsive, st.Continent)
				}
			}
		}
	}
}

func TestSnapshotCellWindowing(t *testing.T) {
	sn, res, _, _ := openTestSnapshot(t)
	key := geo.CellOf(30.5, 114.5)
	from, to := int64(testStartDay+2), int64(testStartDay+4)
	want := res.CellFractionSeries(key, changepoint.Down, from, to)
	got, ok, err := sn.CellQuery(context.Background(), key, changepoint.Down, from, to)
	if err != nil || !ok {
		t.Fatalf("windowed CellQuery: ok=%v err=%v", ok, err)
	}
	if got.StartDay != from || len(got.Frac) != len(want) {
		t.Fatalf("window start=%d len=%d, want start=%d len=%d", got.StartDay, len(got.Frac), from, len(want))
	}
	for i := range want {
		if got.Frac[i] != want[i] {
			t.Errorf("day %d: frac %g, want %g", i, got.Frac[i], want[i])
		}
	}
	if _, ok, _ := sn.CellQuery(context.Background(), key, changepoint.Down, 99999, 100000); ok {
		t.Error("window outside snapshot should report ok=false")
	}
	if _, ok, _ := sn.CellQuery(context.Background(), geo.CellKey{Lat: 40, Lon: 40}, changepoint.Down, 0, 0); ok {
		t.Error("unknown cell should report ok=false")
	}
}

func TestSnapshotContinentParity(t *testing.T) {
	sn, res, _, _ := openTestSnapshot(t)
	startDay, endDay := sn.Meta().StartDay(), sn.Meta().StartDay()+int64(sn.Meta().Days())
	for _, cont := range []geo.Continent{geo.Asia, geo.SouthAmerica} {
		want := res.ContinentFractionSeries(cont, startDay, endDay)
		got, err := sn.ContinentQuery(context.Background(), cont, 0, 0)
		if err != nil {
			t.Fatalf("ContinentQuery(%v): %v", cont, err)
		}
		if got.CS != res.ContinentCS[cont] {
			t.Errorf("%v CS = %d, want %d", cont, got.CS, res.ContinentCS[cont])
		}
		for i := range want {
			if got.Frac[i] != want[i] {
				t.Errorf("%v day %d: frac %g, want %g", cont, i, got.Frac[i], want[i])
			}
		}
	}
}

func TestSnapshotTopK(t *testing.T) {
	sn, _, _, _ := openTestSnapshot(t)
	top, err := sn.TopK(context.Background(), 10, changepoint.Down, 0, 0)
	if err != nil {
		t.Fatalf("TopK: %v", err)
	}
	// Fixture downward alarms: cell (30,114)-ish has 3 (two blocks), the
	// (36,120) cell 1, South America none.
	if len(top) != 2 {
		t.Fatalf("TopK returned %d cells, want 2: %+v", len(top), top)
	}
	if top[0].Cell != geo.CellOf(30.5, 114.5) || top[0].Alarms != 3 {
		t.Errorf("top[0] = %+v, want cell (30.5,114.5) with 3 alarms", top[0])
	}
	if top[1].Alarms != 1 {
		t.Errorf("top[1] = %+v, want 1 alarm", top[1])
	}
	// k truncates.
	if one, _ := sn.TopK(context.Background(), 1, changepoint.Down, 0, 0); len(one) != 1 {
		t.Errorf("TopK(1) returned %d cells", len(one))
	}
}

func TestSnapshotBlockChanges(t *testing.T) {
	sn, res, _, _ := openTestSnapshot(t)
	changes, cell, ok := sn.BlockChanges(1)
	if !ok {
		t.Fatal("block 1 missing")
	}
	if cell != geo.CellOf(30.5, 114.5) {
		t.Errorf("block 1 cell = %v", cell)
	}
	want := res.Blocks[0].Analysis.Changes
	if len(changes) != len(want) {
		t.Fatalf("%d changes, want %d", len(changes), len(want))
	}
	for i, c := range changes {
		w := want[i]
		if c.Start != w.Start || c.Alarm != w.Alarm || c.End != w.End || c.Point != w.Point {
			t.Errorf("change %d times (%d,%d,%d,%d), want (%d,%d,%d,%d)", i,
				c.Start, c.Alarm, c.End, c.Point, w.Start, w.Alarm, w.End, w.Point)
		}
		if c.Dir != w.Dir.String() || c.Amplitude != w.Amplitude || c.RawAmplitude != w.RawAmplitude {
			t.Errorf("change %d payload %+v, want %+v", i, c, w)
		}
	}
	// The failed block is present with zero changes.
	if ch, _, ok := sn.BlockChanges(6); !ok || len(ch) != 0 {
		t.Errorf("failed block: ok=%v changes=%d, want present with none", ok, len(ch))
	}
	if _, _, ok := sn.BlockChanges(999); ok {
		t.Error("unknown block id should report ok=false")
	}
}

func TestVerifyCleanSnapshot(t *testing.T) {
	path, _, _, _, _ := writeTestSnapshot(t, t.TempDir())
	rep, err := VerifySnapshot(path)
	if err != nil {
		t.Fatalf("VerifySnapshot: %v", err)
	}
	if !rep.Clean() {
		t.Fatalf("clean snapshot reported faults:\n%s", rep)
	}
	if rep.Meta.Cells == 0 || rep.Meta.Blocks == 0 {
		t.Errorf("verify did not recover the manifest: %+v", rep.Meta)
	}
}

// TestVerifyDetectsDamage flips, truncates, and appends; every mutation
// must be caught by Verify and refused by OpenSnapshot.
func TestVerifyDetectsDamage(t *testing.T) {
	path, _, _, _, _ := writeTestSnapshot(t, t.TempDir())
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mutations := map[string]func([]byte) []byte{
		"bit flip early": func(b []byte) []byte { b[10] ^= 0x01; return b },
		"bit flip mid":   func(b []byte) []byte { b[len(b)/2] ^= 0x80; return b },
		"bit flip last":  func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b },
		"truncated tail": func(b []byte) []byte { return b[:len(b)-7] },
		"half file":      func(b []byte) []byte { return b[:len(b)/2] },
		"empty file":     func(b []byte) []byte { return nil },
		"garbage append": func(b []byte) []byte { return append(b, 0xDE, 0xAD, 0xBE, 0xEF) },
		"frame dropped": func(b []byte) []byte {
			// Drop the trailer frame exactly: a truncation at a frame
			// boundary that per-frame CRCs cannot see.
			return b[:len(b)-(8+1+4+8)]
		},
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			bad := filepath.Join(dir, "snap-00000000.snap")
			if err := os.WriteFile(bad, mutate(append([]byte(nil), orig...)), 0o644); err != nil {
				t.Fatal(err)
			}
			rep, err := VerifySnapshot(bad)
			if err != nil {
				t.Fatalf("VerifySnapshot should read damaged files: %v", err)
			}
			if rep.Clean() {
				t.Fatalf("%s not detected", name)
			}
			if _, err := OpenSnapshot(bad); err == nil {
				t.Fatalf("OpenSnapshot accepted %s", name)
			}
		})
	}
}

func TestWriteSnapshotSequencing(t *testing.T) {
	dir := t.TempDir()
	res, sig, start, end := testResult(t)
	p0, err := WriteSnapshot(dir, res, sig, start, end)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := WriteSnapshot(dir, res, sig, start, end)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p0) != SnapshotName(0) || filepath.Base(p1) != SnapshotName(1) {
		t.Errorf("sequence names %q, %q", p0, p1)
	}
	names, err := listSnapshots(dir)
	if err != nil || len(names) != 2 {
		t.Fatalf("listSnapshots = %v, %v", names, err)
	}
	// Temp droppings and quarantined snapshots are invisible.
	for _, junk := range []string{"snap-00000002.snap.tmp123", "snap-00000002.snap.quarantined", "notes.txt"} {
		if err := os.WriteFile(filepath.Join(dir, junk), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	names, _ = listSnapshots(dir)
	if len(names) != 2 {
		t.Errorf("listSnapshots sees junk: %v", names)
	}
}

func TestEncodeSnapshotRejects(t *testing.T) {
	res, sig, start, end := testResult(t)
	if _, err := EncodeSnapshot(nil, sig, start, end); err == nil {
		t.Error("nil result accepted")
	}
	if _, err := EncodeSnapshot(res, nil, start, end); err == nil {
		t.Error("empty signature accepted")
	}
	if _, err := EncodeSnapshot(res, sig, end, start); err == nil {
		t.Error("inverted window accepted")
	}
	// A change outside the window cannot be offset-encoded.
	bad, _, _, _ := testResult(t)
	bad.Blocks[0].Analysis.Changes[0].Start = start - 100
	if _, err := EncodeSnapshot(bad, sig, start, end); err == nil {
		t.Error("out-of-window change accepted")
	}
}

// TestSnapshotDeterministic: same result, same bytes — the snapshot ID
// is content-addressed.
func TestSnapshotDeterministic(t *testing.T) {
	res, sig, start, end := testResult(t)
	a, err := EncodeSnapshot(res, sig, start, end)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeSnapshot(res, sig, start, end)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("encoding is not deterministic")
	}
}
