package serve

// Server tests: endpoint correctness over HTTP, the degradation ladder
// (fresh cache → stale cache → shed with Retry-After), the admission
// ceilings, and the swap/quarantine protocol.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/diurnalnet/diurnal/internal/faults"
)

func newTestServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	dir := t.TempDir()
	path, _, _, _, _ := writeTestSnapshot(t, dir)
	if cfg.Dir == "" {
		cfg.Dir = dir
	}
	s := New(cfg)
	t.Cleanup(s.Close)
	if err := s.Install(path); err != nil {
		t.Fatalf("Install: %v", err)
	}
	return s, dir
}

func get(t *testing.T, s *Server, target string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, target, nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

func TestServerEndpoints(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	cases := []struct {
		target string
		code   int
	}{
		{"/v1/cell?lat=30.5&lon=114.5", http.StatusOK},
		{"/v1/cell?lat=30.5&lon=114.5&dir=up&from=18002&to=18004", http.StatusOK},
		{"/v1/cell?lat=30.5&lon=114.5&from=2019-04-16&to=2019-04-18", http.StatusOK},
		{"/v1/cell?lat=89.5&lon=179.5", http.StatusNotFound},
		{"/v1/cell?lon=114.5", http.StatusBadRequest},
		{"/v1/cell?lat=30.5&lon=114.5&dir=sideways", http.StatusBadRequest},
		{"/v1/topk?k=5", http.StatusOK},
		{"/v1/topk?k=0", http.StatusBadRequest},
		{"/v1/continent?name=Asia", http.StatusOK},
		{"/v1/continent?name=Atlantis", http.StatusBadRequest},
		{"/v1/block?id=1", http.StatusOK},
		{"/v1/block?id=999", http.StatusNotFound},
		{"/v1/block?id=x", http.StatusBadRequest},
		{"/v1/stats", http.StatusOK},
		{"/healthz", http.StatusOK},
	}
	for _, c := range cases {
		rec := get(t, s, c.target)
		if rec.Code != c.code {
			t.Errorf("GET %s = %d, want %d (body %s)", c.target, rec.Code, c.code, rec.Body)
		}
		if rec.Code == http.StatusOK && strings.HasPrefix(c.target, "/v1/") &&
			!strings.HasPrefix(c.target, "/v1/stats") && rec.Header().Get("X-Snapshot") == "" {
			t.Errorf("GET %s: missing X-Snapshot", c.target)
		}
	}
	if rec := get(t, s, "/v1/cell?lat=30.5&lon=114.5"); rec.Header().Get("X-Cache") != "hit" {
		t.Errorf("repeat read not a cache hit: %s", rec.Header().Get("X-Cache"))
	}
	// Methods other than GET are refused.
	req := httptest.NewRequest(http.MethodPost, "/v1/cell?lat=30.5&lon=114.5", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST = %d", rec.Code)
	}
}

func TestServerCellBody(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	rec := get(t, s, "/v1/cell?lat=30.5&lon=114.5")
	var body cellResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad body: %v", err)
	}
	// Fixture cell (30,114)→key (15,57): 2 CS blocks, 3 down alarms.
	if body.CS != 2 || body.Continent != "Asia" || len(body.Frac) != 10 {
		t.Errorf("body = %+v", body)
	}
	if body.Frac[2] != 1.0 { // both CS blocks alarmed down on day 2
		t.Errorf("day-2 down fraction = %g, want 1.0", body.Frac[2])
	}
}

func TestServerNoSnapshot(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	rec := get(t, s, "/v1/cell?lat=30.5&lon=114.5")
	if rec.Code != http.StatusServiceUnavailable || rec.Header().Get("Retry-After") == "" {
		t.Errorf("empty server = %d (Retry-After %q), want 503 with Retry-After",
			rec.Code, rec.Header().Get("Retry-After"))
	}
	if rec := get(t, s, "/healthz"); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("healthz = %d, want 503", rec.Code)
	}
	if rec := get(t, s, "/v1/stats"); rec.Code != http.StatusOK {
		t.Errorf("stats must answer without a snapshot, got %d", rec.Code)
	}
}

// TestSheddingOrder saturates the admission pool and checks that topk
// sheds while cell reads still get through — prioritized load shedding.
func TestSheddingOrder(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxInflight: 8})
	// Occupy 4 slots (= the topk ceiling): topk sheds, cell still admits.
	for i := 0; i < 4; i++ {
		if !s.admit.tryAdmit(ClassCell) {
			t.Fatal("setup admission failed")
		}
	}
	defer func() {
		for i := 0; i < 4; i++ {
			s.admit.release()
		}
	}()
	if rec := get(t, s, "/v1/topk?k=3"); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("topk at ceiling = %d, want 503", rec.Code)
	} else if rec.Header().Get("Retry-After") == "" {
		t.Error("shed without Retry-After")
	}
	if rec := get(t, s, "/v1/cell?lat=30.5&lon=114.5"); rec.Code != http.StatusOK {
		t.Errorf("cell read shed while slots remain: %d", rec.Code)
	}
	st := s.StatsNow()
	if st.Admission.Shed["topk"] == 0 {
		t.Errorf("shed counter not incremented: %+v", st.Admission)
	}
}

// TestStaleCacheUnderOverload: with the pool fully saturated, a request
// whose answer is cached-but-stale gets the stale body (marked), and an
// uncached one gets shed.
func TestStaleCacheUnderOverload(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxInflight: 4})
	// Prime the cache, then force staleness via an epoch bump (what a
	// swap does) without touching time.
	if rec := get(t, s, "/v1/cell?lat=30.5&lon=114.5"); rec.Code != http.StatusOK {
		t.Fatalf("prime = %d", rec.Code)
	}
	s.cache.bumpEpoch()
	for i := 0; i < 4; i++ { // saturate every slot
		if !s.admit.tryAdmit(ClassCell) {
			t.Fatal("setup admission failed")
		}
	}
	defer func() {
		for i := 0; i < 4; i++ {
			s.admit.release()
		}
	}()
	rec := get(t, s, "/v1/cell?lat=30.5&lon=114.5")
	if rec.Code != http.StatusOK {
		t.Fatalf("stale-under-overload = %d, want 200", rec.Code)
	}
	if rec.Header().Get("X-Cache") != "stale" || rec.Header().Get("Warning") == "" {
		t.Errorf("stale response unmarked: X-Cache=%q Warning=%q",
			rec.Header().Get("X-Cache"), rec.Header().Get("Warning"))
	}
	if rec := get(t, s, "/v1/cell?lat=36.5&lon=120.5"); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("uncached under overload = %d, want 503", rec.Code)
	}
}

// TestStaleRevalidation: a stale hit with free capacity serves stale now
// and refreshes the entry in the background.
func TestStaleRevalidation(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	if rec := get(t, s, "/v1/cell?lat=30.5&lon=114.5"); rec.Code != http.StatusOK {
		t.Fatalf("prime = %d", rec.Code)
	}
	s.cache.bumpEpoch()
	if rec := get(t, s, "/v1/cell?lat=30.5&lon=114.5"); rec.Header().Get("X-Cache") != "stale" {
		t.Fatalf("expected stale hit, got %q", rec.Header().Get("X-Cache"))
	}
	// The background revalidation lands shortly; then the entry is fresh.
	deadline := time.Now().Add(2 * time.Second)
	for {
		rec := get(t, s, "/v1/cell?lat=30.5&lon=114.5")
		if rec.Header().Get("X-Cache") == "hit" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("revalidation never refreshed the entry")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSwapQuarantinesCorrupt(t *testing.T) {
	s, dir := newTestServer(t, Config{})
	goodID, goodPath := s.Current()
	// Write a second snapshot, then corrupt it: Install must quarantine
	// and keep serving the first.
	res, sig, start, end := testResult(t)
	p1, err := WriteSnapshot(dir, res, sig, start, end)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(p1)
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(p1, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Install(p1); err == nil {
		t.Fatal("corrupt snapshot installed")
	}
	if id, path := s.Current(); id != goodID || path != goodPath {
		t.Errorf("current moved off last-good: %s %s", id, path)
	}
	if _, err := os.Stat(p1 + ".quarantined"); err != nil {
		t.Errorf("corrupt snapshot not quarantined: %v", err)
	}
	if st := s.StatsNow(); st.Quarantined != 1 || st.LastSwapErr == "" {
		t.Errorf("stats after failed swap: %+v", st)
	}
	if rec := get(t, s, "/v1/cell?lat=30.5&lon=114.5"); rec.Code != http.StatusOK {
		t.Errorf("serving broken after failed swap: %d", rec.Code)
	}
}

func TestSwapRejectsForeignSignature(t *testing.T) {
	s, dir := newTestServer(t, Config{})
	res, _, start, end := testResult(t)
	foreign := make([]byte, 32) // all zero ≠ fixture signature
	p1, err := WriteSnapshot(dir, res, foreign, start, end)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Install(p1); err == nil || !strings.Contains(err.Error(), "foreign") {
		t.Fatalf("foreign snapshot: err = %v", err)
	}
	if _, err := os.Stat(p1 + ".quarantined"); err != nil {
		t.Errorf("foreign snapshot not quarantined: %v", err)
	}
}

func TestSwapUnderTraffic(t *testing.T) {
	s, dir := newTestServer(t, Config{MaxInflight: 64})
	res, sig, start, end := testResult(t)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rec := get(t, s, "/v1/cell?lat=30.5&lon=114.5")
				if rec.Code != http.StatusOK && rec.Code != http.StatusServiceUnavailable {
					t.Errorf("status %d under swap", rec.Code)
					return
				}
			}
		}()
	}
	for i := 0; i < 5; i++ {
		p, err := WriteSnapshot(dir, res, sig, start, end)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Install(p); err != nil {
			t.Fatalf("swap %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if st := s.StatsNow(); st.Swaps != 6 { // initial install + 5
		t.Errorf("swaps = %d, want 6", st.Swaps)
	}
}

func TestLoadLatestSkipsDamaged(t *testing.T) {
	dir := t.TempDir()
	res, sig, start, end := testResult(t)
	p0, err := WriteSnapshot(dir, res, sig, start, end)
	if err != nil {
		t.Fatal(err)
	}
	// Newest snapshot is torn (simulated SIGKILL mid-write past rename);
	// an in-flight temp file is also lying around.
	p1, err := WriteSnapshot(dir, res, sig, start, end)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(p1)
	if err := os.WriteFile(p1, raw[:len(raw)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "snap-00000002.snap.tmp99"), raw[:10], 0o644); err != nil {
		t.Fatal(err)
	}
	s := New(Config{Dir: dir})
	defer s.Close()
	got, err := s.LoadLatest()
	if err != nil {
		t.Fatalf("LoadLatest: %v", err)
	}
	if got != p0 {
		t.Errorf("loaded %s, want last-good %s", got, p0)
	}
	if _, err := os.Stat(p1 + ".quarantined"); err != nil {
		t.Errorf("torn snapshot not quarantined: %v", err)
	}
	// All-bad directory: error, no snapshot.
	empty := t.TempDir()
	if err := os.WriteFile(filepath.Join(empty, "snap-00000000.snap"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{Dir: empty})
	defer s2.Close()
	if _, err := s2.LoadLatest(); err == nil {
		t.Error("LoadLatest over junk succeeded")
	}
}

func TestDeadlinePropagatesToDisk(t *testing.T) {
	s, _ := newTestServer(t, Config{QueryTimeout: 20 * time.Millisecond, CacheCap: 1})
	sn := s.cur.Load()
	sn.SetReaderAt(&faults.SlowReaderAt{R: sn.readerAt(), Delay: 200 * time.Millisecond})
	rec := get(t, s, "/v1/cell?lat=30.5&lon=114.5")
	if rec.Code != http.StatusServiceUnavailable || rec.Header().Get("Retry-After") == "" {
		t.Errorf("stalled disk = %d (Retry-After %q), want 503 + Retry-After",
			rec.Code, rec.Header().Get("Retry-After"))
	}
}
