package serve

// The chaos test: 10× overload from the load harness while snapshots
// swap, fail verification, and the disk stalls underneath. The
// acceptance contract:
//
//   - only 200s and 503s leave the server, every 503 with Retry-After;
//   - no torn, bit-flipped, or foreign-signature snapshot is ever served
//     (every X-Snapshot header names a known-good snapshot);
//   - a crashed writer (SIGKILL mid-swap: torn .snap + stray .tmp) is
//     quarantined and the server resumes on last-good;
//   - cheap cached reads keep a bounded p99 through all of it.

import (
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"github.com/diurnalnet/diurnal/internal/faults"
)

func TestChaosOverloadWithFailingSwaps(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test in -short mode")
	}
	dir := t.TempDir()
	path, res, sig, start, end := writeTestSnapshot(t, dir)
	const maxInflight = 8
	s := New(Config{
		Dir:         dir,
		MaxInflight: maxInflight,
		// Tight freshness so the cache alone cannot absorb the run; the
		// admission path stays hot.
		FreshTTL:     50 * time.Millisecond,
		StaleTTL:     2 * time.Second,
		QueryTimeout: time.Second,
	})
	defer s.Close()
	if err := s.Install(path); err != nil {
		t.Fatalf("Install: %v", err)
	}

	// goodIDs collects the only snapshot identities that may ever appear
	// in an X-Snapshot header. Each good snapshot also gets a mildly slow
	// disk (1ms per column read): the fixture is tiny enough that at
	// native speed 10× the workers never holds the admission ceiling —
	// a realistic disk makes the overload real.
	var mu sync.Mutex
	goodIDs := map[string]bool{}
	noteGood := func() {
		sn := s.cur.Load()
		if sn == nil {
			return
		}
		sn.SetReaderAt(&faults.SlowReaderAt{R: sn.readerAt(), Delay: time.Millisecond})
		mu.Lock()
		goodIDs[sn.ID()] = true
		mu.Unlock()
	}
	noteGood()

	// The swapper loops the full failure menu under live traffic.
	stop := make(chan struct{})
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		for round := 0; ; round++ {
			select {
			case <-stop:
				return
			default:
			}
			// 1: good snapshot, must swap in.
			p, err := WriteSnapshot(dir, res, sig, start, end)
			if err != nil {
				t.Errorf("write: %v", err)
				return
			}
			if err := s.Install(p); err != nil {
				t.Errorf("good swap failed: %v", err)
				return
			}
			noteGood()
			// 2: bit-flipped snapshot, must quarantine.
			p, _ = WriteSnapshot(dir, res, sig, start, end)
			raw, _ := os.ReadFile(p)
			raw[(round*37)%len(raw)] ^= 0x10
			os.WriteFile(p, raw, 0o644)
			if err := s.Install(p); err == nil {
				t.Error("bit-flipped snapshot swapped in")
				return
			}
			// 3: SIGKILL mid-swap — the writer died after renaming a
			// torn file and left a temp dropping; recovery is LoadLatest
			// landing on last-good.
			p, _ = WriteSnapshot(dir, res, sig, start, end)
			raw, _ = os.ReadFile(p)
			os.WriteFile(p, raw[:len(raw)/4], 0o644)
			os.WriteFile(p+".tmp-crash", raw[:64], 0o644)
			if _, err := s.LoadLatest(); err != nil {
				t.Errorf("LoadLatest after crash: %v", err)
				return
			}
			noteGood()
			// 4: foreign-signature snapshot, must quarantine.
			p, _ = WriteSnapshot(dir, res, make([]byte, 32), start, end)
			if err := s.Install(p); err == nil {
				t.Error("foreign snapshot swapped in")
				return
			}
		}
	}()

	// 10× overload: ten workers per admission slot.
	rep := RunLoad(s.Handler(), s.cur.Load().CellKeys(), LoadOptions{
		Workers:  10 * maxInflight,
		Requests: 50,
		Seed:     7,
	})
	close(stop)
	swapper.Wait()

	if rep.Other != 0 {
		t.Errorf("%d responses were neither 200 nor 503", rep.Other)
	}
	if rep.ShedNoRetryAfter != 0 {
		t.Errorf("%d sheds lacked Retry-After", rep.ShedNoRetryAfter)
	}
	if rep.OK == 0 {
		t.Error("nothing served under overload")
	}
	if rep.Shed == 0 {
		t.Error("10x overload shed nothing — admission is not bounding")
	}
	mu.Lock()
	for id := range rep.Snapshots {
		if !goodIDs[id] {
			t.Errorf("served snapshot %s is not in the known-good set %v", id, goodIDs)
		}
	}
	mu.Unlock()
	// Cheap reads stay bounded: generous CI headroom, but a wedged
	// admission slot or a swap-blocked read would blow far past it.
	if p99 := rep.Classes["cell"].P99ms; p99 > 500 {
		t.Errorf("cell p99 = %.1fms under overload, want < 500ms", p99)
	}
	st := s.StatsNow()
	if st.Quarantined == 0 {
		t.Error("no snapshot was quarantined — the failure menu did not run")
	}
	// Background revalidations may still hold slots; they must drain. A
	// slot that never comes back is a leak.
	drained := time.Now().Add(5 * time.Second)
	for s.StatsNow().Admission.Inflight != 0 {
		if time.Now().After(drained) {
			t.Fatalf("%d admission slots leaked", s.StatsNow().Admission.Inflight)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Logf("chaos: %d ok (%d stale), %d shed, swaps=%d quarantined=%d, cell p99=%.2fms topk p99=%.2fms",
		rep.OK, rep.Stale, rep.Shed, st.Swaps, st.Quarantined,
		rep.Classes["cell"].P99ms, rep.Classes["topk"].P99ms)
}

// TestChaosSlowDisk stalls the daily-column reads and checks that
// requests degrade into bounded 503s instead of wedging, and that the
// server recovers once the disk does.
func TestChaosSlowDisk(t *testing.T) {
	dir := t.TempDir()
	path, _, _, _, _ := writeTestSnapshot(t, dir)
	s := New(Config{Dir: dir, QueryTimeout: 30 * time.Millisecond, CacheCap: 1, FreshTTL: time.Nanosecond})
	defer s.Close()
	if err := s.Install(path); err != nil {
		t.Fatal(err)
	}
	sn := s.cur.Load()
	orig := sn.readerAt()
	sn.SetReaderAt(&faults.SlowReaderAt{R: orig, Delay: 300 * time.Millisecond})
	for i := 0; i < 3; i++ {
		t0 := time.Now()
		req := httptest.NewRequest(http.MethodGet, "/v1/cell?lat=30.5&lon=114.5", nil)
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusServiceUnavailable || rec.Header().Get("Retry-After") == "" {
			t.Fatalf("stalled read %d: code %d Retry-After %q", i, rec.Code, rec.Header().Get("Retry-After"))
		}
		// Bounded: the 30ms deadline, not the 300ms stall, set the
		// latency (generous slack for CI scheduling).
		if el := time.Since(t0); el > 200*time.Millisecond {
			t.Errorf("stalled read %d took %v — deadline did not bound it", i, el)
		}
	}
	// Disk recovers: service resumes without a restart.
	sn.SetReaderAt(orig)
	req := httptest.NewRequest(http.MethodGet, "/v1/cell?lat=30.5&lon=114.5", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Errorf("after disk recovery: %d", rec.Code)
	}
	if n := s.StatsNow().Admission.Inflight; n != 0 {
		t.Errorf("%d admission slots leaked across stalls", n)
	}
}
