package serve

// Stale-while-revalidate response cache. Entries are keyed by canonical
// query and stamped with the snapshot epoch they were computed against;
// a hot swap bumps the epoch instead of flushing, so for StaleTTL after
// a swap (or after an entry's freshness lapses) the cache keeps
// absorbing read load with explicitly-stale responses while fresh ones
// are recomputed. Under overload this is the degradation ladder:
// fresh hit → stale hit (marked) → shed.

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"
)

// cacheEntry is one cached rendered response.
type cacheEntry struct {
	key    string
	body   []byte
	snapID string
	epoch  uint64
	at     time.Time
	elem   *list.Element
}

type responseCache struct {
	mu       sync.Mutex
	entries  map[string]*cacheEntry
	lru      *list.List // front = most recently used
	cap      int
	freshTTL time.Duration
	staleTTL time.Duration
	epoch    atomic.Uint64
	now      func() time.Time

	hits, staleHits, misses atomic.Uint64
}

func newResponseCache(capacity int, freshTTL, staleTTL time.Duration) *responseCache {
	if capacity <= 0 {
		capacity = 4096
	}
	if freshTTL <= 0 {
		freshTTL = 5 * time.Second
	}
	if staleTTL < freshTTL {
		staleTTL = 10 * freshTTL
	}
	return &responseCache{
		entries:  map[string]*cacheEntry{},
		lru:      list.New(),
		cap:      capacity,
		freshTTL: freshTTL,
		staleTTL: staleTTL,
		now:      time.Now,
	}
}

// bumpEpoch marks every current entry stale (a snapshot was swapped in).
func (c *responseCache) bumpEpoch() { c.epoch.Add(1) }

// cached is a reader's snapshot of one entry, copied out under the lock
// so a concurrent put (which rewrites entry fields in place) cannot race
// the response write.
type cached struct {
	body   []byte
	snapID string
}

// get returns a cached response and whether it is fresh. A fresh entry
// was computed against the current snapshot epoch within freshTTL; a
// stale one is older or from a pre-swap epoch but still within staleTTL
// — servable while a revalidation runs, marked so the client knows.
// (nil, false) means miss.
func (c *responseCache) get(key string) (e *cached, fresh bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ent := c.entries[key]
	if ent == nil {
		c.misses.Add(1)
		return nil, false
	}
	age := c.now().Sub(ent.at)
	if age > c.staleTTL {
		c.lru.Remove(ent.elem)
		delete(c.entries, key)
		c.misses.Add(1)
		return nil, false
	}
	c.lru.MoveToFront(ent.elem)
	out := &cached{body: ent.body, snapID: ent.snapID}
	if ent.epoch == c.epoch.Load() && age <= c.freshTTL {
		c.hits.Add(1)
		return out, true
	}
	c.staleHits.Add(1)
	return out, false
}

// put stores a rendered response against the current epoch.
func (c *responseCache) put(key string, body []byte, snapID string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ent := c.entries[key]; ent != nil {
		ent.body = body
		ent.snapID = snapID
		ent.epoch = c.epoch.Load()
		ent.at = c.now()
		c.lru.MoveToFront(ent.elem)
		return
	}
	ent := &cacheEntry{key: key, body: body, snapID: snapID, epoch: c.epoch.Load(), at: c.now()}
	ent.elem = c.lru.PushFront(ent)
	c.entries[key] = ent
	for len(c.entries) > c.cap {
		back := c.lru.Back()
		if back == nil {
			break
		}
		old := c.lru.Remove(back).(*cacheEntry)
		delete(c.entries, old.key)
	}
}

// CacheStats is the cache's counters for /v1/stats.
type CacheStats struct {
	Entries   int    `json:"entries"`
	Epoch     uint64 `json:"epoch"`
	Hits      uint64 `json:"hits"`
	StaleHits uint64 `json:"stale_hits"`
	Misses    uint64 `json:"misses"`
}

func (c *responseCache) stats() CacheStats {
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	return CacheStats{
		Entries:   n,
		Epoch:     c.epoch.Load(),
		Hits:      c.hits.Load(),
		StaleHits: c.staleHits.Load(),
		Misses:    c.misses.Load(),
	}
}
