package serve

// Benchmarks feeding BENCH_7.json: codec throughput plus the load
// harness driven at 1× and 10× the admission ceiling, reporting the
// server-side p50/p99 and shed counts via b.ReportMetric (benchjson
// records the custom units under "extra").

import (
	"os"
	"testing"
	"time"
)

func benchSnapshotBytes(b *testing.B) []byte {
	b.Helper()
	res, sig, start, end := buildResult()
	data, err := EncodeSnapshot(res, sig, start, end)
	if err != nil {
		b.Fatal(err)
	}
	return data
}

func BenchmarkSnapshotEncode(b *testing.B) {
	res, sig, start, end := buildResult()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeSnapshot(res, sig, start, end); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSnapshotDecode(b *testing.B) {
	data := benchSnapshotBytes(b)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if d, faults := decodeSnapshot(data); d == nil {
			b.Fatal(faults)
		}
	}
}

// benchServe runs the load harness against a fresh server and reports
// per-class latency quantiles and the shed volume.
func benchServe(b *testing.B, workers int) {
	dir := b.TempDir()
	res, sig, start, end := buildResult()
	path, err := WriteSnapshot(dir, res, sig, start, end)
	if err != nil {
		b.Fatal(err)
	}
	const maxInflight = 8
	s := New(Config{
		Dir:          dir,
		MaxInflight:  maxInflight,
		FreshTTL:     20 * time.Millisecond,
		QueryTimeout: time.Second,
	})
	defer s.Close()
	if err := s.Install(path); err != nil {
		b.Fatal(err)
	}
	cells := s.cur.Load().CellKeys()
	var last *LoadReport
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last = RunLoad(s.Handler(), cells, LoadOptions{
			Workers:  workers,
			Requests: 100,
			Seed:     int64(i + 1),
		})
	}
	b.StopTimer()
	if last.Other != 0 || last.ShedNoRetryAfter != 0 {
		b.Fatalf("contract violated: %+v", last)
	}
	b.ReportMetric(last.Classes["cell"].P50ms, "cell-p50-ms")
	b.ReportMetric(last.Classes["cell"].P99ms, "cell-p99-ms")
	b.ReportMetric(last.Classes["topk"].P99ms, "topk-p99-ms")
	b.ReportMetric(float64(last.Shed), "shed")
	b.ReportMetric(float64(last.Stale), "stale")
}

func BenchmarkServeNominal(b *testing.B)  { benchServe(b, 8) }
func BenchmarkServeOverload(b *testing.B) { benchServe(b, 80) }

func BenchmarkSnapshotVerify(b *testing.B) {
	dir := b.TempDir()
	res, sig, start, end := buildResult()
	path, err := WriteSnapshot(dir, res, sig, start, end)
	if err != nil {
		b.Fatal(err)
	}
	if fi, err := os.Stat(path); err == nil {
		b.SetBytes(fi.Size())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := VerifySnapshot(path)
		if err != nil || !rep.Clean() {
			b.Fatalf("verify: %v %v", err, rep)
		}
	}
}
