// Package probe implements a Trinocular-style active prober over the
// synthetic Internet of internal/netsim, reproducing the measurement
// substrate of the paper's §2.2: each observer probes a block's
// ever-active target list E(b) every 11 minutes in a pseudorandom order
// that is fixed per quarter and shared by all observers, stops after the
// first positive response (probing 1..16 targets per round), and runs
// unsynchronized with the other observers. It also implements the
// "additional observations" prober of §2.8 (up to four extra probes per
// round, even after a positive) and per-link congestive loss (§3.3), plus
// the full-scan survey mode used as ground truth (§3.2).
package probe

import (
	"context"
	"fmt"
	"math"
	"sort"

	"github.com/diurnalnet/diurnal/internal/netsim"
)

const saltLoss uint64 = 0x10c1

// DefaultMaxPerRound is Trinocular's per-round probe budget.
const DefaultMaxPerRound = 16

// LossModel describes congestive loss on an observer's upstream link. A
// probe (or its response) crossing the link is dropped independently with
// probability Base plus a diurnal component that peaks during the link's
// local evening busy hours — the pathology §3.3 diagnoses for observer w.
type LossModel struct {
	// Base is the time-independent loss probability.
	Base float64
	// DiurnalAmp is the peak additional loss probability at the busiest
	// local hour.
	DiurnalAmp float64
	// PeakSecond is the local second-of-day of peak congestion
	// (default 20:00).
	PeakSecond int64
	// TZOffset is the link's local-time offset east of UTC in seconds.
	TZOffset int64
	// Match restricts the loss to some destinations (the paper saw loss
	// from observer w to "about one-quarter of Chinese destinations").
	// Nil means all destinations.
	Match func(netsim.BlockID) bool
}

// Rate returns the loss probability for a probe to block id at time t.
func (l *LossModel) Rate(id netsim.BlockID, t int64) float64 {
	if l == nil {
		return 0
	}
	if l.Match != nil && !l.Match(id) {
		return 0
	}
	rate := l.Base
	if l.DiurnalAmp > 0 {
		peak := l.PeakSecond
		if peak == 0 {
			peak = 20 * 3600
		}
		sod := netsim.SecondOfDay(t + l.TZOffset)
		// Raised cosine centered on the peak hour.
		phase := 2 * math.Pi * float64(sod-peak) / float64(netsim.SecondsPerDay)
		rate += l.DiurnalAmp * (1 + math.Cos(phase)) / 2
	}
	if rate > 1 {
		rate = 1
	}
	return rate
}

// Observer is one probing site (the paper's sites c, e, g, j, n, w).
type Observer struct {
	// Name identifies the site ("w", "e", ...).
	Name string
	// Seed drives this observer's loss coin flips.
	Seed uint64
	// Phase is the offset of this observer's round start within the
	// 11-minute cycle, in seconds. Observers "start independently and run
	// unsynchronized" (§2.7).
	Phase int64
	// MaxPerRound caps probes per round (default 16).
	MaxPerRound int
	// Extra is the number of additional probes sent per round even after
	// a positive response — zero for standard Trinocular, up to 4 for the
	// §2.8 designed observer.
	Extra int
	// Loss, when non-nil, injects congestive loss on this observer's
	// upstream link.
	Loss *LossModel
	// Down, when non-nil, reports whether the observer is offline at time
	// t. Offline rounds produce no records at all — the hardware-failure
	// downtime that silenced the paper's sites c and g in 2020 (§2.7).
	// internal/faults supplies implementations.
	Down func(t int64) bool
	// ExtraLoss, when non-nil, is consulted per probe in addition to Loss
	// and drops the probe (or its reply) when it returns true. It sees the
	// destination block, probe time, and target address; internal/faults
	// uses it for bursty Gilbert–Elliott link loss. Calls for one observer
	// arrive in nondecreasing time order, so implementations may carry
	// channel state across calls.
	ExtraLoss func(id netsim.BlockID, t int64, addr int) bool
}

// Record is a single probe observation: at time T, address Addr of the
// probed block either responded (Up) or did not.
type Record struct {
	T    int64
	Addr uint8
	Up   bool
}

// Engine probes blocks with a set of observers over a time window.
type Engine struct {
	// Observers probe in parallel; at least one is required.
	Observers []Observer
	// QuarterSeed fixes the per-quarter pseudorandom probe order shared
	// by all observers (§2.2).
	QuarterSeed uint64
}

// Validate checks the engine configuration.
func (e *Engine) Validate() error {
	if len(e.Observers) == 0 {
		return fmt.Errorf("probe: no observers")
	}
	for i, o := range e.Observers {
		if o.MaxPerRound < 0 || o.Extra < 0 {
			return fmt.Errorf("probe: observer %d (%s) has negative budget", i, o.Name)
		}
		if o.Phase < 0 || o.Phase >= netsim.RoundSeconds {
			return fmt.Errorf("probe: observer %d (%s) phase %d outside [0,%d)", i, o.Name, o.Phase, netsim.RoundSeconds)
		}
	}
	return nil
}

// Order returns the per-quarter pseudorandom probing order over the
// block's E(b) target list. All observers share it.
func (e *Engine) Order(b *netsim.Block) []int {
	targets := b.EverActive()
	rng := netsim.NewRNG(netsim.Hash64(e.QuarterSeed, uint64(b.ID)))
	perm := rng.Perm(len(targets))
	order := make([]int, len(targets))
	for i, p := range perm {
		order[i] = targets[p]
	}
	return order
}

// Run probes block b from start (inclusive) to end (exclusive), invoking
// fn for every probe in global time order. obs is the observer index into
// e.Observers. Records from one observer are strictly ordered; ties across
// observers resolve by observer index.
func (e *Engine) Run(b *netsim.Block, start, end int64, fn func(obs int, r Record)) error {
	return e.RunContext(context.Background(), b, start, end, fn)
}

// RunContext is Run with cancellation: the probing loop checks ctx between
// rounds and returns ctx.Err() as soon as the context is done, so a
// world-scale run can be interrupted mid-block instead of only between
// blocks.
func (e *Engine) RunContext(ctx context.Context, b *netsim.Block, start, end int64, fn func(obs int, r Record)) error {
	return e.run(ctx, b, start, end, fn, nil)
}

// run drives the probing loop. Exactly one of fn (streaming callback) or
// bufs (direct per-observer append, the CollectInto hot path — probing a
// whole world makes millions of per-record calls, and the indirect closure
// dispatch was a measurable slice of the profile) is non-nil.
func (e *Engine) run(ctx context.Context, b *netsim.Block, start, end int64, fn func(obs int, r Record), bufs [][]Record) error {
	if err := e.Validate(); err != nil {
		return err
	}
	if end <= start {
		return fmt.Errorf("probe: empty window [%d,%d)", start, end)
	}
	order := e.Order(b)
	if len(order) == 0 {
		return nil // nothing ever responded: Trinocular drops such blocks
	}
	// One ActiveCache per collection: rounds replay the same timestamps
	// and days many times over, so the memoized address state answers most
	// probes without re-hashing (bit-identical to Block.Active).
	ac := b.NewActiveCache()
	type state struct {
		next   int64
		cursor int
	}
	sts := make([]state, len(e.Observers))
	for i, o := range e.Observers {
		// Observers run unsynchronized (§2.7): besides the phase offset,
		// each starts at a different point of the shared probing order, so
		// their coverage of always-responding blocks interleaves instead
		// of marching in lockstep.
		sts[i] = state{
			next:   start + o.Phase,
			cursor: i * len(order) / len(e.Observers),
		}
	}
	rounds := 0
	for {
		// Check for cancellation every few rounds: often enough that a
		// killed run stops within milliseconds, rarely enough that the
		// ctx mutex stays off the probing hot path.
		if rounds++; rounds&0x3f == 0 && ctx.Err() != nil {
			return ctx.Err()
		}
		// Pick the observer with the earliest next round.
		oi := -1
		for i := range sts {
			if sts[i].next >= end {
				continue
			}
			if oi == -1 || sts[i].next < sts[oi].next {
				oi = i
			}
		}
		if oi == -1 {
			return nil
		}
		st := &sts[oi]
		if o := &e.Observers[oi]; o.Down == nil || !o.Down(st.next) {
			if bufs != nil {
				bufs[oi] = e.roundInto(ac, oi, st.next, order, &st.cursor, bufs[oi])
			} else {
				e.round(ac, oi, st.next, order, &st.cursor, fn)
			}
		}
		st.next += netsim.RoundSeconds
	}
}

// round executes one probing round for one observer: probe targets in the
// shared order until the first positive response (plus Extra additional
// probes), up to MaxPerRound+Extra probes total.
func (e *Engine) round(ac *netsim.ActiveCache, oi int, t int64, order []int, cursor *int, fn func(obs int, r Record)) {
	b := ac.Block()
	o := &e.Observers[oi]
	budget := o.MaxPerRound
	if budget == 0 {
		budget = DefaultMaxPerRound
	}
	budget += o.Extra
	if budget > len(order) {
		budget = len(order)
	}
	sincePositive := -1
	for k := 0; k < budget; k++ {
		addr := order[*cursor]
		if *cursor++; *cursor == len(order) {
			*cursor = 0
		}
		up := ac.Active(addr, t)
		if up && o.Loss != nil {
			rate := o.Loss.Rate(b.ID, t)
			if rate > 0 && netsim.HashUnit(o.Seed, uint64(b.ID), uint64(t), uint64(addr), saltLoss) < rate {
				up = false // the probe or its reply was lost in transit
			}
		}
		if up && o.ExtraLoss != nil && o.ExtraLoss(b.ID, t, addr) {
			up = false
		}
		fn(oi, Record{T: t, Addr: uint8(addr), Up: up})
		if up && sincePositive < 0 {
			sincePositive = 0
		} else if sincePositive >= 0 {
			sincePositive++
		}
		if sincePositive >= 0 && sincePositive >= o.Extra {
			return
		}
	}
}

// roundInto is round appending records directly to buf instead of invoking
// a callback, the collection hot path. The probing logic is identical.
func (e *Engine) roundInto(ac *netsim.ActiveCache, oi int, t int64, order []int, cursor *int, buf []Record) []Record {
	b := ac.Block()
	o := &e.Observers[oi]
	budget := o.MaxPerRound
	if budget == 0 {
		budget = DefaultMaxPerRound
	}
	budget += o.Extra
	if budget > len(order) {
		budget = len(order)
	}
	cur := *cursor
	lossy := o.Loss != nil || o.ExtraLoss != nil
	sincePositive := -1
	for k := 0; k < budget; k++ {
		addr := order[cur]
		if cur++; cur == len(order) {
			cur = 0
		}
		up := ac.Active(addr, t)
		if up && lossy {
			if o.Loss != nil {
				rate := o.Loss.Rate(b.ID, t)
				if rate > 0 && netsim.HashUnit(o.Seed, uint64(b.ID), uint64(t), uint64(addr), saltLoss) < rate {
					up = false // the probe or its reply was lost in transit
				}
			}
			if up && o.ExtraLoss != nil && o.ExtraLoss(b.ID, t, addr) {
				up = false
			}
		}
		buf = append(buf, Record{T: t, Addr: uint8(addr), Up: up})
		if up && sincePositive < 0 {
			sincePositive = 0
		} else if sincePositive >= 0 {
			sincePositive++
		}
		if sincePositive >= 0 && sincePositive >= o.Extra {
			break
		}
	}
	*cursor = cur
	return buf
}

// Collect runs the engine and gathers per-observer record slices, a
// convenience for tests and small experiments. Hot paths that process many
// blocks should use CollectInto to reuse buffers.
func (e *Engine) Collect(b *netsim.Block, start, end int64) ([][]Record, error) {
	return e.CollectInto(context.Background(), b, start, end, nil)
}

// CollectInto is Collect with caller-provided buffers and cancellation:
// each bufs[i] is truncated and reused, avoiding per-block allocation
// churn in world-scale runs. bufs may be nil or shorter than the observer
// count. When ctx is canceled mid-collection the partial buffers are
// returned along with ctx.Err().
func (e *Engine) CollectInto(ctx context.Context, b *netsim.Block, start, end int64, bufs [][]Record) ([][]Record, error) {
	for len(bufs) < len(e.Observers) {
		bufs = append(bufs, nil)
	}
	bufs = bufs[:len(e.Observers)]
	for i := range bufs {
		bufs[i] = bufs[i][:0]
	}
	err := e.run(ctx, b, start, end, nil, bufs)
	return bufs, err
}

// EmitsSanitizedRecords reports that the engine's streams are sanitary by
// construction: every record lies in [start, end), each observer's round
// times strictly increase, and a round never probes the same address
// twice — exactly the invariants reconstruct.Sanitize checks for. The
// analysis pipeline uses this to skip the sanitize pre-scan; fault
// injectors that corrupt streams (internal/faults) deliberately do not
// forward the method.
func (e *Engine) EmitsSanitizedRecords() bool { return true }

// Survey performs full scans: every address of E(b) is probed every round,
// with no loss and no adaptivity. This reproduces the USC Internet survey
// datasets (it89) the paper uses as reconstruction ground truth (§3.2).
func Survey(b *netsim.Block, start, end int64, fn func(r Record)) {
	targets := b.EverActive()
	ac := b.NewActiveCache()
	for t := start; t < end; t += netsim.RoundSeconds {
		for _, addr := range targets {
			fn(Record{T: t, Addr: uint8(addr), Up: ac.Active(addr, t)})
		}
	}
}

// StandardObservers returns n unsynchronized standard observers named
// after the paper's sites (w, e, j, n, c, g), with deterministic phases
// spread across the round.
func StandardObservers(n int) []Observer {
	names := []string{"w", "e", "j", "n", "c", "g"}
	if n > len(names) {
		n = len(names)
	}
	obs := make([]Observer, n)
	for i := 0; i < n; i++ {
		obs[i] = Observer{
			Name:  names[i],
			Seed:  netsim.Hash64(uint64(i) + 101),
			Phase: int64(i) * netsim.RoundSeconds / int64(len(names)),
		}
	}
	return obs
}

// Names returns the observer names in engine order, for labeling
// per-observer diagnostics (health scores, breaker transitions) in
// reports. Unnamed observers render as their index.
func (e *Engine) Names() []string {
	names := make([]string, len(e.Observers))
	for i, o := range e.Observers {
		if o.Name != "" {
			names[i] = o.Name
		} else {
			names[i] = fmt.Sprintf("#%d", i)
		}
	}
	return names
}

// SortRecords orders records by time (stable on equal times), used when
// tests assemble multi-observer streams by hand.
func SortRecords(rs []Record) {
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].T < rs[j].T })
}
