package probe

import (
	"context"
	"testing"
	"time"

	"github.com/diurnalnet/diurnal/internal/netsim"
)

var jan6 = netsim.Date(2020, time.January, 6)

func newBlock(t *testing.T, spec netsim.Spec) *netsim.Block {
	t.Helper()
	b, err := netsim.NewBlock(42, 1234, spec)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestValidate(t *testing.T) {
	if err := (&Engine{}).Validate(); err == nil {
		t.Error("expected error with no observers")
	}
	e := &Engine{Observers: []Observer{{Name: "x", Phase: -1}}}
	if err := e.Validate(); err == nil {
		t.Error("expected error for negative phase")
	}
	e = &Engine{Observers: []Observer{{Name: "x", Phase: netsim.RoundSeconds}}}
	if err := e.Validate(); err == nil {
		t.Error("expected error for phase >= round")
	}
	e = &Engine{Observers: []Observer{{Name: "x", MaxPerRound: -1}}}
	if err := e.Validate(); err == nil {
		t.Error("expected error for negative budget")
	}
}

func TestRunEmptyWindowAndEmptyBlock(t *testing.T) {
	e := &Engine{Observers: StandardObservers(1)}
	b := newBlock(t, netsim.Spec{Workers: 10})
	if err := e.Run(b, jan6, jan6, func(int, Record) {}); err == nil {
		t.Error("expected error for empty window")
	}
	empty := newBlock(t, netsim.Spec{})
	called := false
	if err := e.Run(empty, jan6, jan6+3600, func(int, Record) { called = true }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("block with empty E(b) should produce no probes")
	}
}

func TestOrderSharedAcrossObserversAndStablePerQuarter(t *testing.T) {
	b := newBlock(t, netsim.Spec{Workers: 30, AlwaysOn: 5})
	e1 := &Engine{Observers: StandardObservers(4), QuarterSeed: 7}
	e2 := &Engine{Observers: StandardObservers(1), QuarterSeed: 7}
	o1, o2 := e1.Order(b), e2.Order(b)
	if len(o1) != 35 {
		t.Fatalf("order length %d, want 35", len(o1))
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatal("order must depend only on quarter seed and block")
		}
	}
	e3 := &Engine{Observers: StandardObservers(1), QuarterSeed: 8}
	diff := false
	for i, v := range e3.Order(b) {
		if v != o1[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different quarters should reshuffle the order")
	}
}

func TestStopOnFirstPositive(t *testing.T) {
	// In an all-always-on block every round's first probe is positive, so
	// a standard observer sends exactly one probe per round.
	b := newBlock(t, netsim.Spec{AlwaysOn: 256})
	e := &Engine{Observers: []Observer{{Name: "w"}}}
	recs, err := e.Collect(b, jan6, jan6+10*netsim.RoundSeconds)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs[0]) != 10 {
		t.Fatalf("got %d probes over 10 rounds, want 10", len(recs[0]))
	}
	for _, r := range recs[0] {
		if !r.Up {
			t.Fatal("always-on probe reported down")
		}
	}
}

func TestBudgetExhaustedOnDeadBlock(t *testing.T) {
	// A block whose E(b) addresses are all currently inactive gets the
	// full 16-probe budget every round.
	b := newBlock(t, netsim.Spec{Workers: 100})
	midnight := jan6 + 2*3600 // workers asleep
	e := &Engine{Observers: []Observer{{Name: "w"}}}
	var count int
	err := e.Run(b, midnight, midnight+netsim.RoundSeconds, func(_ int, r Record) {
		count++
		if r.Up {
			t.Fatal("no one should be active at 2am in a worker block")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != DefaultMaxPerRound {
		t.Fatalf("probes = %d, want %d", count, DefaultMaxPerRound)
	}
}

func TestExtraProbesContinuePastPositive(t *testing.T) {
	b := newBlock(t, netsim.Spec{AlwaysOn: 256})
	e := &Engine{Observers: []Observer{{Name: "x", Extra: 4}}}
	recs, err := e.Collect(b, jan6, jan6+netsim.RoundSeconds)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs[0]) != 5 { // first positive + 4 extra
		t.Fatalf("probes with Extra=4 on always-up block = %d, want 5", len(recs[0]))
	}
}

func TestCursorAdvancesAcrossRounds(t *testing.T) {
	// With stop-on-first-positive in an always-up block of 4 addresses,
	// successive rounds probe successive addresses in the fixed order.
	b, err := netsim.NewBlock(9, 5, netsim.Spec{AlwaysOn: 4})
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Observers: []Observer{{Name: "w"}}}
	order := e.Order(b)
	recs, err := e.Collect(b, jan6, jan6+8*netsim.RoundSeconds)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recs[0] {
		if int(r.Addr) != order[i%4] {
			t.Fatalf("round %d probed %d, want %d (cursor must persist)", i, r.Addr, order[i%4])
		}
	}
}

func TestMultiObserverInterleavingOrdered(t *testing.T) {
	b := newBlock(t, netsim.Spec{Workers: 50, AlwaysOn: 5})
	e := &Engine{Observers: StandardObservers(4), QuarterSeed: 3}
	var last int64
	seen := map[int]int{}
	err := e.Run(b, jan6, jan6+2*3600, func(obs int, r Record) {
		if r.T < last {
			t.Fatalf("records out of order: %d after %d", r.T, last)
		}
		last = r.T
		seen[obs]++
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if seen[i] == 0 {
			t.Fatalf("observer %d produced no records", i)
		}
	}
}

func TestObserverPhasesDiffer(t *testing.T) {
	obs := StandardObservers(4)
	phases := map[int64]bool{}
	for _, o := range obs {
		if phases[o.Phase] {
			t.Fatalf("duplicate phase %d", o.Phase)
		}
		phases[o.Phase] = true
	}
}

func TestDeterministicRuns(t *testing.T) {
	b := newBlock(t, netsim.Spec{Workers: 60, AlwaysOn: 6})
	e := &Engine{Observers: StandardObservers(3), QuarterSeed: 11}
	r1, err := e.Collect(b, jan6, jan6+6*3600)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := e.Collect(b, jan6, jan6+6*3600)
	for oi := range r1 {
		if len(r1[oi]) != len(r2[oi]) {
			t.Fatalf("observer %d: %d vs %d records", oi, len(r1[oi]), len(r2[oi]))
		}
		for i := range r1[oi] {
			if r1[oi][i] != r2[oi][i] {
				t.Fatalf("observer %d record %d differs", oi, i)
			}
		}
	}
}

func TestLossModelRate(t *testing.T) {
	var nilModel *LossModel
	if nilModel.Rate(1, jan6) != 0 {
		t.Error("nil model should have zero loss")
	}
	l := &LossModel{Base: 0.1}
	if got := l.Rate(1, jan6); got != 0.1 {
		t.Errorf("base rate = %g", got)
	}
	l = &LossModel{Base: 0.05, DiurnalAmp: 0.2}
	peak := l.Rate(1, jan6+20*3600)
	trough := l.Rate(1, jan6+8*3600)
	if peak < 0.2 || peak > 0.25 {
		t.Errorf("peak rate = %g, want ~0.25", peak)
	}
	if trough > 0.1 {
		t.Errorf("8am rate = %g, want near base", trough)
	}
	l = &LossModel{Base: 2}
	if got := l.Rate(1, jan6); got != 1 {
		t.Errorf("rate should clamp to 1, got %g", got)
	}
	l = &LossModel{Base: 0.5, Match: func(id netsim.BlockID) bool { return id == 7 }}
	if l.Rate(8, jan6) != 0 {
		t.Error("non-matching block should see no loss")
	}
	if l.Rate(7, jan6) != 0.5 {
		t.Error("matching block should see loss")
	}
}

func TestLossReducesObservedReplyRate(t *testing.T) {
	b := newBlock(t, netsim.Spec{AlwaysOn: 200})
	clean := Observer{Name: "e", Seed: 1}
	lossy := Observer{Name: "w", Seed: 2, Loss: &LossModel{Base: 0.3}}
	e := &Engine{Observers: []Observer{clean, lossy}, QuarterSeed: 5}
	// Extra probes so we sample many addresses per round.
	e.Observers[0].Extra = 4
	e.Observers[1].Extra = 4
	recs, err := e.Collect(b, jan6, jan6+24*3600)
	if err != nil {
		t.Fatal(err)
	}
	rate := func(rs []Record) float64 {
		up := 0
		for _, r := range rs {
			if r.Up {
				up++
			}
		}
		return float64(up) / float64(len(rs))
	}
	cleanRate, lossyRate := rate(recs[0]), rate(recs[1])
	if cleanRate < 0.99 {
		t.Errorf("clean observer rate = %g, want ~1", cleanRate)
	}
	if lossyRate > 0.8 || lossyRate < 0.6 {
		t.Errorf("lossy observer rate = %g, want ~0.7", lossyRate)
	}
}

func TestSurveyCoversAllTargetsEveryRound(t *testing.T) {
	b := newBlock(t, netsim.Spec{Workers: 20, AlwaysOn: 3})
	counts := map[int64]int{}
	Survey(b, jan6, jan6+3*netsim.RoundSeconds, func(r Record) {
		counts[r.T]++
	})
	if len(counts) != 3 {
		t.Fatalf("rounds = %d, want 3", len(counts))
	}
	for tm, c := range counts {
		if c != 23 {
			t.Fatalf("round %d probed %d targets, want 23", tm, c)
		}
	}
}

func TestSurveyMatchesGroundTruthCounts(t *testing.T) {
	b := newBlock(t, netsim.Spec{Workers: 40, AlwaysOn: 5})
	tm := jan6 + 12*3600
	up := 0
	Survey(b, tm, tm+netsim.RoundSeconds, func(r Record) {
		if r.Up {
			up++
		}
	})
	if truth := b.CountActive(tm); up != truth {
		t.Fatalf("survey found %d active, truth %d", up, truth)
	}
}

func TestStandardObserversNames(t *testing.T) {
	obs := StandardObservers(6)
	if len(obs) != 6 || obs[0].Name != "w" || obs[5].Name != "g" {
		t.Fatalf("unexpected observers: %+v", obs)
	}
	if got := StandardObservers(10); len(got) != 6 {
		t.Fatalf("should clamp to 6 observers, got %d", len(got))
	}
}

func TestSortRecords(t *testing.T) {
	rs := []Record{{T: 3}, {T: 1}, {T: 2}}
	SortRecords(rs)
	if rs[0].T != 1 || rs[2].T != 3 {
		t.Fatalf("sorted: %+v", rs)
	}
}

func BenchmarkProbeBlockDay4Observers(b *testing.B) {
	blk, err := netsim.NewBlock(3, 77, netsim.Spec{Workers: 80, AlwaysOn: 10})
	if err != nil {
		b.Fatal(err)
	}
	e := &Engine{Observers: StandardObservers(4), QuarterSeed: 1}
	sink := func(int, Record) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(blk, jan6, jan6+netsim.SecondsPerDay, sink); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCollectIntoReusesBuffers(t *testing.T) {
	b := newBlock(t, netsim.Spec{Workers: 40, AlwaysOn: 5})
	e := &Engine{Observers: StandardObservers(2), QuarterSeed: 9}
	bufs, err := e.CollectInto(context.Background(), b, jan6, jan6+6*3600, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(bufs) != 2 {
		t.Fatalf("bufs = %d", len(bufs))
	}
	firstCap := cap(bufs[0])
	firstLen := len(bufs[0])
	// Second call with the same window must reuse the same backing arrays.
	bufs2, err := e.CollectInto(context.Background(), b, jan6, jan6+6*3600, bufs)
	if err != nil {
		t.Fatal(err)
	}
	if cap(bufs2[0]) != firstCap {
		t.Fatalf("buffer reallocated: cap %d -> %d", firstCap, cap(bufs2[0]))
	}
	if len(bufs2[0]) != firstLen {
		t.Fatalf("deterministic rerun changed record count: %d -> %d", firstLen, len(bufs2[0]))
	}
	// Contents must match a fresh Collect.
	fresh, err := e.Collect(b, jan6, jan6+6*3600)
	if err != nil {
		t.Fatal(err)
	}
	for oi := range fresh {
		for i := range fresh[oi] {
			if fresh[oi][i] != bufs2[oi][i] {
				t.Fatalf("reused buffer diverges at obs %d rec %d", oi, i)
			}
		}
	}
}

func TestCollectIntoShortBufSlice(t *testing.T) {
	b := newBlock(t, netsim.Spec{AlwaysOn: 10})
	e := &Engine{Observers: StandardObservers(3), QuarterSeed: 9}
	bufs := make([][]Record, 1) // shorter than observer count
	got, err := e.CollectInto(context.Background(), b, jan6, jan6+3600, bufs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("bufs not extended: %d", len(got))
	}
}

func TestDownSkipsRounds(t *testing.T) {
	b := newBlock(t, netsim.Spec{AlwaysOn: 20})
	downStart := jan6 + 6*3600
	downEnd := jan6 + 12*3600
	e := &Engine{Observers: StandardObservers(1)}
	e.Observers[0].Down = func(tm int64) bool { return tm >= downStart && tm < downEnd }
	var before, during, after int
	err := e.Run(b, jan6, jan6+24*3600, func(_ int, r Record) {
		switch {
		case r.T < downStart:
			before++
		case r.T < downEnd:
			during++
		default:
			after++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if during != 0 {
		t.Errorf("offline observer produced %d records during downtime", during)
	}
	if before == 0 || after == 0 {
		t.Errorf("expected records outside downtime, got before=%d after=%d", before, after)
	}
}

func TestDownOnlyAffectsOneObserver(t *testing.T) {
	b := newBlock(t, netsim.Spec{AlwaysOn: 20})
	e := &Engine{Observers: StandardObservers(2)}
	e.Observers[0].Down = func(int64) bool { return true }
	counts := make([]int, 2)
	if err := e.Run(b, jan6, jan6+6*3600, func(obs int, r Record) { counts[obs]++ }); err != nil {
		t.Fatal(err)
	}
	if counts[0] != 0 {
		t.Errorf("permanently down observer produced %d records", counts[0])
	}
	if counts[1] == 0 {
		t.Error("healthy observer produced no records")
	}
}

func TestExtraLossDropsPositives(t *testing.T) {
	b := newBlock(t, netsim.Spec{AlwaysOn: 20})
	e := &Engine{Observers: StandardObservers(1)}
	e.Observers[0].ExtraLoss = func(netsim.BlockID, int64, int) bool { return true }
	ups := 0
	total := 0
	if err := e.Run(b, jan6, jan6+6*3600, func(_ int, r Record) {
		total++
		if r.Up {
			ups++
		}
	}); err != nil {
		t.Fatal(err)
	}
	if total == 0 {
		t.Fatal("expected probes despite loss")
	}
	if ups != 0 {
		t.Errorf("total loss still yielded %d positive records", ups)
	}
}

func TestExtraLossSeesTimeOrderedCalls(t *testing.T) {
	b := newBlock(t, netsim.Spec{AlwaysOn: 10, Workers: 20})
	e := &Engine{Observers: StandardObservers(1)}
	last := int64(-1)
	ordered := true
	e.Observers[0].ExtraLoss = func(_ netsim.BlockID, tm int64, _ int) bool {
		if tm < last {
			ordered = false
		}
		last = tm
		return false
	}
	if err := e.Run(b, jan6, jan6+12*3600, func(int, Record) {}); err != nil {
		t.Fatal(err)
	}
	if !ordered {
		t.Error("ExtraLoss calls arrived out of time order")
	}
}
