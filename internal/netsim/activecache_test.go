package netsim

import (
	"testing"
	"time"
)

// richBlock builds a block exercising every address kind and every event
// kind, including mid-day event boundaries, overlapping holidays, dormancy
// epochs, and multiple renumberings.
func richBlock(t *testing.T, seed uint64) *Block {
	t.Helper()
	spec := Spec{
		Workers: 90, Homes: 70, AlwaysOn: 20, Intermittent: 40, Firewalled: 16,
		TZOffset:    8 * 3600,
		DormantProb: 0.3, DormantEpochDays: 14,
	}
	b, err := NewBlock(0x0a0b0c, seed, spec)
	if err != nil {
		t.Fatalf("NewBlock: %v", err)
	}
	day0 := Date(2020, time.January, 1)
	// Mid-day starts/ends on purpose: the cache must notice event
	// transitions and salt flips inside a single local day.
	b.AddEvent(Event{Kind: EventWFH, Start: day0 + 20*SecondsPerDay + 13*3600, Adoption: 0.6})
	b.AddEvent(Event{Kind: EventWFH, Start: day0 + 40*SecondsPerDay, End: day0 + 55*SecondsPerDay, Adoption: 0.3})
	b.AddEvent(Event{Kind: EventHoliday, Start: day0 + 10*SecondsPerDay, End: day0 + 12*SecondsPerDay, Adoption: 0.8})
	b.AddEvent(Event{Kind: EventHoliday, Start: day0 + 11*SecondsPerDay + 9*3600, End: day0 + 13*SecondsPerDay})
	b.AddEvent(Event{Kind: EventCurfew, Start: day0 + 30*SecondsPerDay + 15*3600, End: day0 + 33*SecondsPerDay, Adoption: 0.9})
	b.AddEvent(Event{Kind: EventOutage, Start: day0 + 25*SecondsPerDay + 7*3600, End: day0 + 25*SecondsPerDay + 11*3600})
	b.AddEvent(Event{Kind: EventRenumber, Start: day0 + 35*SecondsPerDay + 10*3600 + 300})
	b.AddEvent(Event{Kind: EventRenumber, Start: day0 + 50*SecondsPerDay + 2*3600})
	return b
}

// TestActiveCacheEquivalence sweeps every address over an event-rich
// quarter at probing-round resolution and demands exact agreement with
// Block.Active. Time advances monotonically, as the probing engine drives
// the cache, but includes sub-round offsets so event edges, renumber gaps,
// and dormancy epoch boundaries are crossed at odd seconds.
func TestActiveCacheEquivalence(t *testing.T) {
	for _, seed := range []uint64{1, 0xdead, 9999} {
		b := richBlock(t, seed)
		ac := b.NewActiveCache()
		start := Date(2020, time.January, 1)
		end := start + 60*SecondsPerDay
		step := int64(RoundSeconds)
		n := 0
		for tm := start; tm < end; tm += step {
			// Sub-step offsets hit second-granularity boundaries.
			for _, off := range []int64{0, 1, 299} {
				at := tm + off
				for addr := 0; addr < 256; addr += 3 {
					got := ac.Active(addr, at)
					want := b.Active(addr, at)
					if got != want {
						t.Fatalf("seed %d addr %d t %d: cache=%v direct=%v", seed, addr, at, got, want)
					}
					n++
				}
			}
		}
		if n == 0 {
			t.Fatal("no comparisons ran")
		}
	}
}

// TestActiveCacheNonMonotonic drives the cache with out-of-order
// timestamps: correctness must not depend on the monotonic access pattern
// the engine happens to use.
func TestActiveCacheNonMonotonic(t *testing.T) {
	b := richBlock(t, 42)
	ac := b.NewActiveCache()
	start := Date(2020, time.January, 1)
	rng := NewRNG(7)
	for i := 0; i < 20000; i++ {
		at := start + int64(rng.Intn(60*SecondsPerDay))
		addr := rng.Intn(256)
		if got, want := ac.Active(addr, at), b.Active(addr, at); got != want {
			t.Fatalf("addr %d t %d: cache=%v direct=%v", addr, at, got, want)
		}
	}
}

// TestActiveCacheManyEvents pushes an event class past the 64-bit mask
// width and checks the fallback path still answers correctly.
func TestActiveCacheManyEvents(t *testing.T) {
	b, err := NewBlock(1, 3, Spec{Workers: 100, Homes: 50})
	if err != nil {
		t.Fatal(err)
	}
	start := Date(2020, time.March, 1)
	for i := 0; i < 70; i++ {
		b.AddEvent(Event{Kind: EventHoliday, Start: start + int64(i)*SecondsPerDay, End: start + int64(i)*SecondsPerDay + 12*3600, Adoption: 0.5})
	}
	ac := b.NewActiveCache()
	if !ac.direct {
		t.Fatal("expected direct fallback with >64 holiday events")
	}
	for tm := start; tm < start+5*SecondsPerDay; tm += 1800 {
		for addr := 0; addr < 256; addr += 7 {
			if got, want := ac.Active(addr, tm), b.Active(addr, tm); got != want {
				t.Fatalf("addr %d t %d: cache=%v direct=%v", addr, tm, got, want)
			}
		}
	}
}

// TestActiveCacheCountActive checks the convenience counter against the
// block's ground-truth scan.
func TestActiveCacheCountActive(t *testing.T) {
	b := richBlock(t, 5)
	ac := b.NewActiveCache()
	start := Date(2020, time.February, 1)
	for tm := start; tm < start+2*SecondsPerDay; tm += 3600 {
		if got, want := ac.CountActive(tm), b.CountActive(tm); got != want {
			t.Fatalf("t %d: cache count %d, direct %d", tm, got, want)
		}
	}
}
