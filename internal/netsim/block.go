package netsim

import (
	"fmt"
)

// AddressKind classifies the process behind one IPv4 address.
type AddressKind uint8

const (
	// Unused addresses never respond and never have.
	Unused AddressKind = iota
	// Firewalled addresses are allocated but a firewall drops probes, so
	// they never respond (paper §1: "firewalls hide many networks").
	Firewalled
	// AlwaysOn addresses respond around the clock: servers, routers, and
	// NAT front doors whose "24x7 operation means they are not diurnal"
	// (§3.5).
	AlwaysOn
	// Worker addresses are desktops on public IPs, present during local
	// work hours on workdays — the paper's main human-activity signal.
	Worker
	// HomeEvening addresses are home devices on public IPs, present in
	// the evening and on weekends.
	HomeEvening
	// Intermittent addresses follow an uncorrelated duty cycle (DHCP
	// churn, lab machines); they add non-diurnal noise.
	Intermittent
)

// String names the kind.
func (k AddressKind) String() string {
	switch k {
	case Unused:
		return "unused"
	case Firewalled:
		return "firewalled"
	case AlwaysOn:
		return "always-on"
	case Worker:
		return "worker"
	case HomeEvening:
		return "home-evening"
	case Intermittent:
		return "intermittent"
	default:
		return fmt.Sprintf("AddressKind(%d)", uint8(k))
	}
}

// hash salts, one per independent decision.
const (
	saltKind uint64 = iota + 1
	saltPresent
	saltWeekend
	saltArrive
	saltLeave
	saltDayJitter
	saltWFH
	saltHoliday
	saltHome
	saltDuty
	saltHomeEveningStart
	saltDormant
	saltDormantPhase
	saltHomeWeek
)

// BlockID identifies a /24 block by its 24-bit prefix value.
type BlockID uint32

// String renders the block in CIDR form, e.g. "128.9.144.0/24".
func (b BlockID) String() string {
	return fmt.Sprintf("%d.%d.%d.0/24", byte(b>>16), byte(b>>8), byte(b))
}

// Spec describes the population of one /24 block. Counts must sum to at
// most 256; remaining addresses are Unused.
type Spec struct {
	Workers      int
	Homes        int
	AlwaysOn     int
	Intermittent int
	Firewalled   int

	// TZOffset is the block's local-time offset east of UTC in seconds.
	TZOffset int64
	// WorkStart and WorkEnd are local seconds-of-day bounding the work
	// window; zero values default to 08:00–17:00.
	WorkStart, WorkEnd int64
	// PresenceProb is the chance a worker shows up on a given workday
	// (default 0.9).
	PresenceProb float64
	// WeekendWorkProb is the chance a worker comes in on a weekend day
	// (default 0.03).
	WeekendWorkProb float64
	// HomeProb is the chance a home device is on during a given evening
	// (default 0.8).
	HomeProb float64
	// Duty is the intermittent-address duty cycle (default 0.5).
	Duty float64
	// DormantProb is the chance that, in any given dormancy epoch (of
	// DormantEpochDays), the block's human population goes mostly quiet —
	// offices empty for a remodel, a lab between projects, an ISP pool
	// drained. This is the behavioural churn (non-stationarity) the paper
	// observes in §3.4: longer observation windows intersect more epochs
	// and so find fewer consistently diurnal blocks. Zero disables it.
	DormantProb float64
	// DormantEpochDays is the dormancy epoch length (default 56 when
	// DormantProb > 0). Epoch boundaries are phase-shifted per block so
	// dormancy never synchronizes across the world.
	DormantEpochDays int
}

func (s *Spec) withDefaults() Spec {
	out := *s
	if out.WorkStart == 0 && out.WorkEnd == 0 {
		out.WorkStart = 8 * 3600
		out.WorkEnd = 17 * 3600
	}
	if out.PresenceProb == 0 {
		out.PresenceProb = 0.9
	}
	if out.WeekendWorkProb == 0 {
		out.WeekendWorkProb = 0.03
	}
	if out.HomeProb == 0 {
		out.HomeProb = 0.8
	}
	if out.Duty == 0 {
		out.Duty = 0.5
	}
	if out.DormantProb > 0 && out.DormantEpochDays == 0 {
		out.DormantEpochDays = 56
	}
	return out
}

// Block is a simulated /24 with 256 deterministic address processes.
type Block struct {
	ID   BlockID
	Seed uint64

	spec   Spec
	kinds  [256]AddressKind
	events []Event
}

// NewBlock builds a block from a spec. Address kinds are assigned to
// pseudorandom positions derived from the seed, so blocks with identical
// specs still differ in layout.
func NewBlock(id BlockID, seed uint64, spec Spec) (*Block, error) {
	total := spec.Workers + spec.Homes + spec.AlwaysOn + spec.Intermittent + spec.Firewalled
	if spec.Workers < 0 || spec.Homes < 0 || spec.AlwaysOn < 0 || spec.Intermittent < 0 || spec.Firewalled < 0 {
		return nil, fmt.Errorf("netsim: negative population count in spec %+v", spec)
	}
	if total > 256 {
		return nil, fmt.Errorf("netsim: spec populates %d addresses > 256", total)
	}
	if spec.PresenceProb < 0 || spec.PresenceProb > 1 || spec.HomeProb < 0 || spec.HomeProb > 1 ||
		spec.Duty < 0 || spec.Duty > 1 || spec.WeekendWorkProb < 0 || spec.WeekendWorkProb > 1 ||
		spec.DormantProb < 0 || spec.DormantProb > 1 {
		return nil, fmt.Errorf("netsim: probability out of [0,1] in spec %+v", spec)
	}
	b := &Block{ID: id, Seed: seed, spec: spec.withDefaults()}
	rng := NewRNG(Hash64(seed, saltKind))
	perm := rng.Perm(256)
	i := 0
	assign := func(kind AddressKind, n int) {
		for j := 0; j < n; j++ {
			b.kinds[perm[i]] = kind
			i++
		}
	}
	assign(Worker, spec.Workers)
	assign(HomeEvening, spec.Homes)
	assign(AlwaysOn, spec.AlwaysOn)
	assign(Intermittent, spec.Intermittent)
	assign(Firewalled, spec.Firewalled)
	return b, nil
}

// AddEvent appends a scheduled event. Events may be added in any order.
func (b *Block) AddEvent(e Event) {
	b.events = append(b.events, e)
}

// Events returns the block's event schedule.
func (b *Block) Events() []Event { return b.events }

// Kind returns the kind of address addr (0..255).
func (b *Block) Kind(addr int) AddressKind { return b.kinds[addr] }

// EverActive returns the indices of addresses that have ever responded —
// the paper's E(b) target list (§2.2): everything allocated and not
// firewalled.
func (b *Block) EverActive() []int {
	var out []int
	for a, k := range b.kinds {
		if k != Unused && k != Firewalled {
			out = append(out, a)
		}
	}
	return out
}

// Active reports whether address addr responds to a probe at time t. It is
// a pure function of (seed, addr, t).
func (b *Block) Active(addr int, t int64) bool {
	kind := b.kinds[addr]
	if kind == Unused || kind == Firewalled {
		return false
	}
	if b.inOutage(t) {
		return false
	}
	gen, renumberGap := b.renumberState(t)
	if renumberGap && kind != AlwaysOn {
		return false
	}
	switch kind {
	case AlwaysOn:
		return true
	case Worker:
		return b.workerActive(addr, t, gen)
	case HomeEvening:
		return b.homeActive(addr, t, gen)
	case Intermittent:
		slot := floorDiv(t+b.spec.TZOffset, 3*3600)
		return HashUnit(b.Seed, uint64(addr), gen, uint64(slot), saltDuty) < b.spec.Duty
	default:
		return false
	}
}

// workerActive implements the workday schedule: present on workdays with
// PresenceProb during [WorkStart+jitter, WorkEnd+jitter) local time,
// absent on weekends/holidays/curfews (rare weekend work aside), and
// absent entirely once the address's owner adopts work-from-home.
func (b *Block) workerActive(addr int, t int64, gen uint64) bool {
	if b.wfhAdopter(addr, t) {
		return false
	}
	local := t + b.spec.TZOffset
	day := DayIndex(local)
	sod := SecondOfDay(local)
	dorm := b.dormancyFactor(t)
	offDay := IsWeekend(local) || b.holidayFor(addr, t)
	if offDay {
		if HashUnit(b.Seed, uint64(addr), gen, uint64(day), saltWeekend) >= b.spec.WeekendWorkProb*dorm {
			return false
		}
	} else if HashUnit(b.Seed, uint64(addr), gen, uint64(day), saltPresent) >= b.spec.PresenceProb*dorm {
		return false
	}
	// Stable per-address habits plus small per-day jitter.
	arrive := b.spec.WorkStart +
		int64(HashUnit(b.Seed, uint64(addr), gen, saltArrive)*5400) + // 0..90 min habit
		int64(HashUnit(b.Seed, uint64(addr), gen, uint64(day), saltDayJitter)*1800) // 0..30 min today
	leave := b.spec.WorkEnd +
		int64(HashUnit(b.Seed, uint64(addr), gen, saltLeave)*7200) // 0..2 h habit
	return sod >= arrive && sod < leave
}

// homeActive implements the evening/weekend schedule, with work-from-home
// adopters additionally active during the workday.
func (b *Block) homeActive(addr int, t int64, gen uint64) bool {
	local := t + b.spec.TZOffset
	day := DayIndex(local)
	sod := SecondOfDay(local)
	// Home devices (routers, media boxes, desktops) stay plugged in for
	// months: whether an address hosts a regularly-used device is fixed
	// per renumbering generation, with only occasional daily dropouts, so
	// the block's day-to-day count is far less noisy than an independent
	// daily coin would make it.
	if HashUnit(b.Seed, uint64(addr), gen, saltHomeWeek) >= b.spec.HomeProb*b.dormancyFactor(t) {
		return false
	}
	if HashUnit(b.Seed, uint64(addr), gen, uint64(day), saltHome) >= 0.93 {
		return false
	}
	eveStart := int64(18*3600) + int64(HashUnit(b.Seed, uint64(addr), gen, saltHomeEveningStart)*5400)
	eveEnd := int64(23*3600 + 1800)
	if sod >= eveStart && sod < eveEnd {
		return true
	}
	daytime := sod >= 9*3600 && sod < 17*3600
	if !daytime {
		return false
	}
	// Weekends, holidays/curfews, and adopted WFH put home devices online
	// during the day.
	if IsWeekend(local) || b.holidayFor(addr, t) || b.wfhAdopter(addr, t) {
		return true
	}
	return false
}

// dormancyFactor returns the presence multiplier for the block's human
// population at time t: 1 during normal epochs, a small residual during
// dormant epochs (a skeleton crew, not total silence).
func (b *Block) dormancyFactor(t int64) float64 {
	if b.spec.DormantProb <= 0 {
		return 1
	}
	epochLen := int64(b.spec.DormantEpochDays) * SecondsPerDay
	phase := int64(HashUnit(b.Seed, saltDormantPhase) * float64(epochLen))
	epoch := floorDiv(t+phase, epochLen)
	if HashUnit(b.Seed, uint64(epoch), saltDormant) < b.spec.DormantProb {
		return 0.15
	}
	return 1
}
