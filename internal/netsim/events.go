package netsim

import "fmt"

// EventKind classifies a scheduled real-world event affecting a block.
type EventKind uint8

const (
	// EventWFH is a work-from-home onset: from Start (to End, or forever
	// when End is zero), each Worker address independently adopts WFH
	// with probability Adoption and stops appearing at its workplace
	// address; HomeEvening adopters appear during the day instead.
	EventWFH EventKind = iota
	// EventHoliday marks days treated as non-workdays (Spring Festival,
	// MLK day, ...). Adoption scales how many workers take the holiday.
	EventHoliday
	// EventCurfew is a government-mandated stay-at-home order; it behaves
	// like a holiday for workplaces and keeps home devices online all day.
	EventCurfew
	// EventOutage silences the whole block for [Start, End) — the
	// down-then-up signature the pipeline must filter out (§2.6).
	EventOutage
	// EventRenumber models ISP renumbering: dynamic addresses go quiet
	// for a short gap after Start and return with re-drawn habits,
	// producing the paired down/up changes of "disruptions and
	// anti-disruptions" (§2.6).
	EventRenumber
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventWFH:
		return "wfh"
	case EventHoliday:
		return "holiday"
	case EventCurfew:
		return "curfew"
	case EventOutage:
		return "outage"
	case EventRenumber:
		return "renumber"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is one scheduled occurrence in a block's timeline.
type Event struct {
	Kind EventKind
	// Start and End bound the event in Unix seconds (UTC). End == 0 means
	// open-ended (used for WFH onsets). Renumber events use only Start.
	Start, End int64
	// Adoption is the fraction of affected addresses (WFH, holiday,
	// curfew). Zero defaults to 1.
	Adoption float64
}

// active reports whether the event covers time t.
func (e Event) active(t int64) bool {
	if t < e.Start {
		return false
	}
	return e.End == 0 || t < e.End
}

func (e Event) adoption() float64 {
	if e.Adoption == 0 {
		return 1
	}
	return e.Adoption
}

// renumberGapSeconds is how long dynamic addresses stay dark after a
// renumbering event before returning with new habits.
const renumberGapSeconds = 2 * 3600

// inOutage reports whether any outage event covers t.
func (b *Block) inOutage(t int64) bool {
	for _, e := range b.events {
		if e.Kind == EventOutage && e.active(t) {
			return true
		}
	}
	return false
}

// renumberState returns the renumbering generation at t (the count of
// renumber events that have started) and whether t falls inside a
// renumbering dark gap.
func (b *Block) renumberState(t int64) (gen uint64, inGap bool) {
	for _, e := range b.events {
		if e.Kind != EventRenumber || t < e.Start {
			continue
		}
		gen++
		if t < e.Start+renumberGapSeconds {
			inGap = true
		}
	}
	return gen, inGap
}

// wfhAdopter reports whether address addr has adopted work-from-home at t.
func (b *Block) wfhAdopter(addr int, t int64) bool {
	for i, e := range b.events {
		if e.Kind != EventWFH || !e.active(t) {
			continue
		}
		if HashUnit(b.Seed, uint64(addr), uint64(i), saltWFH) < e.adoption() {
			return true
		}
	}
	return false
}

// holidayFor reports whether address addr observes a holiday or curfew
// covering t.
func (b *Block) holidayFor(addr int, t int64) bool {
	for i, e := range b.events {
		if (e.Kind != EventHoliday && e.Kind != EventCurfew) || !e.active(t) {
			continue
		}
		if HashUnit(b.Seed, uint64(addr), uint64(i), saltHoliday) < e.adoption() {
			return true
		}
	}
	return false
}

// CountActive returns the number of responding addresses at t — the
// block's ground-truth active count, equivalent to what a full survey
// round observes.
func (b *Block) CountActive(t int64) int {
	n := 0
	for a := 0; a < 256; a++ {
		if b.Active(a, t) {
			n++
		}
	}
	return n
}
