// Package netsim models the IPv4 edge at the /24-block level: 256 address
// processes per block (diurnal workers, evening home users, always-on
// servers and NAT front doors, intermittent hosts, firewalled space) plus
// a schedule of real-world events (work-from-home onsets, holidays,
// curfews, outages, renumbering). It is the synthetic stand-in for the
// live Internet that the paper probes with Trinocular (§2.2): the probing
// and analysis layers above see only (time, address, responded?) tuples,
// exactly as they would from real ICMP scans.
//
// Every address's state is a pure function of (block seed, address index,
// time), so probers evaluate only the addresses they touch and the whole
// simulation is deterministic for a given seed.
package netsim

// splitmix64 advances a SplitMix64 state and returns the next value. It is
// the mixing core for both the stateless hash and the stateful stream.
func splitmix64(state uint64) uint64 {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Hash64 mixes an arbitrary number of 64-bit values into one, suitable for
// deterministic per-(block, address, day) decisions.
func Hash64(parts ...uint64) uint64 {
	h := uint64(0x243f6a8885a308d3) // pi fractional bits: arbitrary odd seed
	for _, p := range parts {
		h = splitmix64(h ^ p)
	}
	return h
}

// HashUnit maps Hash64 of the parts onto [0, 1).
func HashUnit(parts ...uint64) float64 {
	return float64(Hash64(parts...)>>11) / float64(1<<53)
}

// RNG is a small deterministic pseudorandom stream (SplitMix64).
type RNG struct {
	state uint64
}

// NewRNG returns a stream seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns the next value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform integer in [0, n). It panics when n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("netsim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Perm returns a pseudorandom permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
