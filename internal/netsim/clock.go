package netsim

import "time"

// Timestamps throughout the simulator are Unix seconds (UTC), so calendar
// dates from the paper's 2019–2023 datasets map directly onto model time.

// SecondsPerDay is the length of a UTC day.
const SecondsPerDay = 86400

// RoundSeconds is the Trinocular probing round length: 11 minutes (§2.2).
const RoundSeconds = 660

// Date returns the Unix timestamp of midnight UTC on the given date.
func Date(year int, month time.Month, day int) int64 {
	return time.Date(year, month, day, 0, 0, 0, 0, time.UTC).Unix()
}

// DayIndex returns the number of whole UTC days since the Unix epoch,
// correct for negative timestamps as well.
func DayIndex(t int64) int64 {
	return floorDiv(t, SecondsPerDay)
}

// SecondOfDay returns the seconds elapsed since the most recent UTC
// midnight.
func SecondOfDay(t int64) int64 {
	return t - DayIndex(t)*SecondsPerDay
}

// Weekday returns the day of week of t with 0=Sunday .. 6=Saturday.
// (1970-01-01 was a Thursday.)
func Weekday(t int64) int {
	return int(((DayIndex(t)+4)%7 + 7) % 7)
}

// IsWeekend reports whether t falls on Saturday or Sunday (UTC).
func IsWeekend(t int64) bool {
	wd := Weekday(t)
	return wd == 0 || wd == 6
}

// floorDiv divides rounding toward negative infinity.
func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}
