package netsim

import (
	"testing"
	"testing/quick"
	"time"
)

// jan6 is Monday 2020-01-06, a plain workday.
var jan6 = Date(2020, time.January, 6)

func workplaceBlock(t *testing.T, seed uint64) *Block {
	t.Helper()
	b, err := NewBlock(0x800990, seed, Spec{Workers: 60, AlwaysOn: 8, Firewalled: 20})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestClockHelpers(t *testing.T) {
	// 1970-01-01 was a Thursday.
	if wd := Weekday(0); wd != 4 {
		t.Fatalf("Weekday(0) = %d, want 4 (Thursday)", wd)
	}
	// 2020-01-06 was a Monday.
	if wd := Weekday(jan6); wd != 1 {
		t.Fatalf("Weekday(jan6) = %d, want 1 (Monday)", wd)
	}
	if !IsWeekend(Date(2020, time.January, 4)) || !IsWeekend(Date(2020, time.January, 5)) {
		t.Fatal("Jan 4/5 2020 should be weekend")
	}
	if IsWeekend(jan6) {
		t.Fatal("Jan 6 2020 should be a weekday")
	}
	if got := SecondOfDay(jan6 + 3661); got != 3661 {
		t.Fatalf("SecondOfDay = %d, want 3661", got)
	}
	// Negative timestamps floor correctly.
	if DayIndex(-1) != -1 {
		t.Fatalf("DayIndex(-1) = %d, want -1", DayIndex(-1))
	}
	if wd := Weekday(-1); wd < 0 || wd > 6 {
		t.Fatalf("Weekday(-1) = %d out of range", wd)
	}
}

func TestBlockIDString(t *testing.T) {
	id := BlockID(128<<16 | 9<<8 | 144)
	if got := id.String(); got != "128.9.144.0/24" {
		t.Fatalf("BlockID.String = %q", got)
	}
}

func TestNewBlockValidation(t *testing.T) {
	if _, err := NewBlock(1, 1, Spec{Workers: 300}); err == nil {
		t.Error("expected error for > 256 addresses")
	}
	if _, err := NewBlock(1, 1, Spec{Workers: -1}); err == nil {
		t.Error("expected error for negative count")
	}
	if _, err := NewBlock(1, 1, Spec{Workers: 1, PresenceProb: 1.5}); err == nil {
		t.Error("expected error for probability > 1")
	}
}

func TestKindAssignmentCountsAndDeterminism(t *testing.T) {
	spec := Spec{Workers: 40, Homes: 30, AlwaysOn: 5, Intermittent: 10, Firewalled: 20}
	b1, err := NewBlock(7, 99, spec)
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := NewBlock(7, 99, spec)
	counts := map[AddressKind]int{}
	for a := 0; a < 256; a++ {
		counts[b1.Kind(a)]++
		if b1.Kind(a) != b2.Kind(a) {
			t.Fatalf("same seed produced different layouts at addr %d", a)
		}
	}
	if counts[Worker] != 40 || counts[HomeEvening] != 30 || counts[AlwaysOn] != 5 ||
		counts[Intermittent] != 10 || counts[Firewalled] != 20 || counts[Unused] != 151 {
		t.Fatalf("kind counts wrong: %v", counts)
	}
	b3, _ := NewBlock(7, 100, spec)
	same := true
	for a := 0; a < 256; a++ {
		if b1.Kind(a) != b3.Kind(a) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should produce different layouts")
	}
}

func TestEverActive(t *testing.T) {
	b, err := NewBlock(1, 5, Spec{Workers: 10, AlwaysOn: 2, Firewalled: 50})
	if err != nil {
		t.Fatal(err)
	}
	eb := b.EverActive()
	if len(eb) != 12 {
		t.Fatalf("|E(b)| = %d, want 12", len(eb))
	}
	for _, a := range eb {
		if k := b.Kind(a); k == Unused || k == Firewalled {
			t.Fatalf("E(b) contains %v address", k)
		}
	}
}

func TestUnusedAndFirewalledNeverRespond(t *testing.T) {
	b, err := NewBlock(1, 6, Spec{Firewalled: 128})
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 256; a++ {
		for _, tm := range []int64{jan6, jan6 + 12*3600, jan6 + 40*SecondsPerDay} {
			if b.Active(a, tm) {
				t.Fatalf("addr %d (%v) responded", a, b.Kind(a))
			}
		}
	}
}

func TestAlwaysOnAlwaysResponds(t *testing.T) {
	b, err := NewBlock(1, 7, Spec{AlwaysOn: 256})
	if err != nil {
		t.Fatal(err)
	}
	for _, tm := range []int64{jan6, jan6 + 3*3600, jan6 + 100*SecondsPerDay + 7777} {
		if got := b.CountActive(tm); got != 256 {
			t.Fatalf("CountActive(%d) = %d, want 256", tm, got)
		}
	}
}

func TestWorkerDiurnalPattern(t *testing.T) {
	b := workplaceBlock(t, 21)
	noon := b.CountActive(jan6 + 12*3600)
	midnight := b.CountActive(jan6 + 2*3600)
	if noon < 40 {
		t.Errorf("noon active = %d, want most of 60 workers + 8 servers", noon)
	}
	if midnight > 10 {
		t.Errorf("2am active = %d, want only the 8 always-on", midnight)
	}
	if noon-midnight < 30 {
		t.Errorf("daily swing %d too small", noon-midnight)
	}
}

func TestWorkerWeekendQuiet(t *testing.T) {
	b := workplaceBlock(t, 22)
	saturdayNoon := Date(2020, time.January, 4) + 12*3600
	if got := b.CountActive(saturdayNoon); got > 15 {
		t.Errorf("Saturday noon active = %d, want near the 8 always-on", got)
	}
}

func TestWorkerTimezoneShift(t *testing.T) {
	// A UTC+8 block's workday should be in full swing at 04:00 UTC and
	// over by 14:00 UTC.
	b, err := NewBlock(2, 23, Spec{Workers: 60, TZOffset: 8 * 3600})
	if err != nil {
		t.Fatal(err)
	}
	if got := b.CountActive(jan6 + 4*3600); got < 30 { // 12:00 local
		t.Errorf("04:00 UTC (noon local) active = %d, want >= 30", got)
	}
	if got := b.CountActive(jan6 + 22*3600); got > 5 { // 06:00 local next day
		t.Errorf("22:00 UTC (6am local) active = %d, want few", got)
	}
}

func TestHomeEveningPattern(t *testing.T) {
	b, err := NewBlock(3, 24, Spec{Homes: 80})
	if err != nil {
		t.Fatal(err)
	}
	evening := b.CountActive(jan6 + 21*3600)  // 21:00
	morning := b.CountActive(jan6 + 10*3600)  // weekday 10:00
	nightDeep := b.CountActive(jan6 + 4*3600) // 04:00
	if evening < 40 {
		t.Errorf("evening active = %d, want most of 80", evening)
	}
	if morning > 10 {
		t.Errorf("weekday morning active = %d, want few", morning)
	}
	if nightDeep > 5 {
		t.Errorf("4am active = %d, want ~0", nightDeep)
	}
	// Weekend daytime: home devices online.
	sunday := Date(2020, time.January, 5) + 13*3600
	if got := b.CountActive(sunday); got < 30 {
		t.Errorf("Sunday 13:00 active = %d, want many", got)
	}
}

func TestIntermittentDutyCycle(t *testing.T) {
	b, err := NewBlock(4, 25, Spec{Intermittent: 200, Duty: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	samples := 0
	for d := int64(0); d < 7; d++ {
		for h := int64(0); h < 24; h += 3 {
			sum += b.CountActive(jan6 + d*SecondsPerDay + h*3600)
			samples++
		}
	}
	meanActive := float64(sum) / float64(samples)
	if meanActive < 80 || meanActive > 120 {
		t.Errorf("mean active = %.1f, want ~100 (duty 0.5 of 200)", meanActive)
	}
}

func TestWFHEventSilencesWorkers(t *testing.T) {
	b := workplaceBlock(t, 26)
	wfhStart := Date(2020, time.March, 15)
	b.AddEvent(Event{Kind: EventWFH, Start: wfhStart, Adoption: 0.95})
	// Monday before (Mar 9) vs Monday after (Mar 16), both at noon.
	before := b.CountActive(Date(2020, time.March, 9) + 12*3600)
	after := b.CountActive(Date(2020, time.March, 16) + 12*3600)
	if before < 40 {
		t.Fatalf("pre-WFH noon = %d, want busy", before)
	}
	if after > before/3 {
		t.Fatalf("post-WFH noon = %d, want sharp drop from %d", after, before)
	}
}

func TestWFHAdoptionFraction(t *testing.T) {
	b, err := NewBlock(5, 27, Spec{Workers: 200})
	if err != nil {
		t.Fatal(err)
	}
	wfhStart := Date(2020, time.March, 15)
	b.AddEvent(Event{Kind: EventWFH, Start: wfhStart, Adoption: 0.5})
	before := b.CountActive(Date(2020, time.March, 9) + 12*3600)
	after := b.CountActive(Date(2020, time.March, 16) + 12*3600)
	ratio := float64(after) / float64(before)
	if ratio < 0.3 || ratio > 0.7 {
		t.Errorf("50%% adoption left %.0f%% active, want ~50%%", ratio*100)
	}
}

func TestWFHBoostsHomeDaytime(t *testing.T) {
	b, err := NewBlock(6, 28, Spec{Homes: 100})
	if err != nil {
		t.Fatal(err)
	}
	b.AddEvent(Event{Kind: EventWFH, Start: Date(2020, time.March, 15), Adoption: 0.9})
	before := b.CountActive(Date(2020, time.March, 10) + 11*3600) // Tue 11:00
	after := b.CountActive(Date(2020, time.March, 17) + 11*3600)
	if after <= before+20 {
		t.Errorf("WFH should boost home daytime: before=%d after=%d", before, after)
	}
}

func TestHolidayEvent(t *testing.T) {
	b := workplaceBlock(t, 29)
	// MLK day: Monday 2020-01-20.
	mlk := Date(2020, time.January, 20)
	b.AddEvent(Event{Kind: EventHoliday, Start: mlk, End: mlk + SecondsPerDay, Adoption: 0.9})
	holidayNoon := b.CountActive(mlk + 12*3600)
	normalNoon := b.CountActive(jan6 + 12*3600)
	if holidayNoon > normalNoon/2 {
		t.Errorf("holiday noon = %d vs normal %d, want big drop", holidayNoon, normalNoon)
	}
	// The next day is back to normal.
	nextNoon := b.CountActive(mlk + SecondsPerDay + 12*3600)
	if nextNoon < normalNoon-15 {
		t.Errorf("day after holiday = %d vs normal %d, want recovery", nextNoon, normalNoon)
	}
}

func TestCurfewKeepsHomeOnAllDay(t *testing.T) {
	b, err := NewBlock(8, 30, Spec{Homes: 100})
	if err != nil {
		t.Fatal(err)
	}
	start := Date(2020, time.March, 22)
	b.AddEvent(Event{Kind: EventCurfew, Start: start, End: start + 3*SecondsPerDay})
	during := b.CountActive(start + SecondsPerDay + 11*3600) // weekday daytime
	before := b.CountActive(Date(2020, time.March, 17) + 11*3600)
	if during <= before+20 {
		t.Errorf("curfew daytime = %d vs before %d, want boost", during, before)
	}
}

func TestOutageSilencesEverything(t *testing.T) {
	b := workplaceBlock(t, 31)
	start := jan6 + 10*3600
	b.AddEvent(Event{Kind: EventOutage, Start: start, End: start + 2*3600})
	if got := b.CountActive(start + 3600); got != 0 {
		t.Fatalf("mid-outage active = %d, want 0", got)
	}
	if got := b.CountActive(start + 3*3600); got == 0 {
		t.Fatal("post-outage should recover")
	}
}

func TestRenumberGapAndGeneration(t *testing.T) {
	b := workplaceBlock(t, 32)
	start := jan6 + 10*3600 // mid-workday
	b.AddEvent(Event{Kind: EventRenumber, Start: start})
	if got := b.CountActive(start + 3600); got > 10 {
		t.Fatalf("renumber gap active = %d, want only always-on (8)", got)
	}
	// After the gap, activity resumes on the same day.
	if got := b.CountActive(start + renumberGapSeconds + 1800); got < 30 {
		t.Fatalf("post-renumber active = %d, want recovery", got)
	}
	// Always-on addresses ride through.
	onCount := 0
	for a := 0; a < 256; a++ {
		if b.Kind(a) == AlwaysOn && b.Active(a, start+60) {
			onCount++
		}
	}
	if onCount != 8 {
		t.Fatalf("always-on during renumber = %d, want 8", onCount)
	}
}

func TestActiveIsDeterministic(t *testing.T) {
	f := func(seed uint64, addr uint8, dt uint32) bool {
		spec := Spec{Workers: 50, Homes: 50, AlwaysOn: 10, Intermittent: 20}
		b1, err := NewBlock(9, seed, spec)
		if err != nil {
			return false
		}
		b2, _ := NewBlock(9, seed, spec)
		tm := jan6 + int64(dt%(90*SecondsPerDay))
		return b1.Active(int(addr), tm) == b2.Active(int(addr), tm)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStateStableWithinShortWindows(t *testing.T) {
	// The paper's reconstruction assumes "addresses do not change state
	// until they are re-scanned" — state changes are slow relative to
	// probing. Measure the per-round flip rate of a busy block: it should
	// be small (well under 2% of addresses per 11-minute round).
	b, err := NewBlock(10, 33, Spec{Workers: 100, Homes: 60, AlwaysOn: 20})
	if err != nil {
		t.Fatal(err)
	}
	flips, checks := 0, 0
	var prev [256]bool
	for a := 0; a < 256; a++ {
		prev[a] = b.Active(a, jan6)
	}
	for r := 1; r < 131*2; r++ { // two days of rounds
		tm := jan6 + int64(r*RoundSeconds)
		for a := 0; a < 256; a++ {
			cur := b.Active(a, tm)
			if cur != prev[a] {
				flips++
			}
			prev[a] = cur
			checks++
		}
	}
	rate := float64(flips) / float64(checks)
	if rate > 0.02 {
		t.Fatalf("per-round flip rate %.4f too high for reconstruction assumptions", rate)
	}
}

func TestRNGDeterminismAndRange(t *testing.T) {
	r1, r2 := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if r1.Uint64() != r2.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
	}
	seen := map[int]bool{}
	for _, v := range NewRNG(9).Perm(10) {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatal("Perm not a permutation")
		}
		seen[v] = true
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestHashUnitUniformish(t *testing.T) {
	n := 10000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := HashUnit(uint64(i), 12345)
		if v < 0 || v >= 1 {
			t.Fatalf("HashUnit out of range: %g", v)
		}
		sum += v
	}
	mean := sum / float64(n)
	if mean < 0.48 || mean > 0.52 {
		t.Fatalf("HashUnit mean %.4f not ~0.5", mean)
	}
}

func TestKindAndEventStrings(t *testing.T) {
	kinds := []AddressKind{Unused, Firewalled, AlwaysOn, Worker, HomeEvening, Intermittent, AddressKind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("empty string for kind %d", k)
		}
	}
	for _, e := range []EventKind{EventWFH, EventHoliday, EventCurfew, EventOutage, EventRenumber, EventKind(99)} {
		if e.String() == "" {
			t.Errorf("empty string for event %d", e)
		}
	}
}

func BenchmarkActiveWorkerBlock(b *testing.B) {
	blk, err := NewBlock(11, 44, Spec{Workers: 100, Homes: 60, AlwaysOn: 20})
	if err != nil {
		b.Fatal(err)
	}
	blk.AddEvent(Event{Kind: EventWFH, Start: Date(2020, time.March, 15), Adoption: 0.8})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk.Active(i%256, jan6+int64(i%10000)*RoundSeconds)
	}
}

func BenchmarkCountActive(b *testing.B) {
	blk, err := NewBlock(12, 45, Spec{Workers: 100, Homes: 60, AlwaysOn: 20})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk.CountActive(jan6 + int64(i)*RoundSeconds)
	}
}

func TestDormancyDisabledByDefault(t *testing.T) {
	b, err := NewBlock(20, 400, Spec{Workers: 60})
	if err != nil {
		t.Fatal(err)
	}
	// Without DormantProb, weekday-noon counts stay high for months.
	for w := 0; w < 20; w++ {
		noon := jan6 + int64(w)*7*SecondsPerDay + 12*3600
		if got := b.CountActive(noon); got < 30 {
			t.Fatalf("week %d noon = %d; unexpected dormancy", w, got)
		}
	}
}

func TestDormancyCreatesQuietEpochs(t *testing.T) {
	// With a high dormancy probability some epochs should be quiet and
	// others normal, and the pattern must be deterministic.
	spec := Spec{Workers: 80, DormantProb: 0.5, DormantEpochDays: 28}
	b, err := NewBlock(21, 401, spec)
	if err != nil {
		t.Fatal(err)
	}
	quiet, busy := 0, 0
	for e := 0; e < 12; e++ {
		noon := jan6 + int64(e)*28*SecondsPerDay + 12*3600
		// Mondays only, to avoid weekends.
		for Weekday(noon) != 1 {
			noon += SecondsPerDay
		}
		c := b.CountActive(noon)
		if c < 25 {
			quiet++
		} else {
			busy++
		}
	}
	if quiet == 0 || busy == 0 {
		t.Fatalf("dormancy not epoch-like: quiet=%d busy=%d", quiet, busy)
	}
	b2, _ := NewBlock(21, 401, spec)
	for e := 0; e < 12; e++ {
		tm := jan6 + int64(e)*28*SecondsPerDay + 12*3600
		if b.CountActive(tm) != b2.CountActive(tm) {
			t.Fatal("dormancy not deterministic")
		}
	}
}

func TestDormancyValidation(t *testing.T) {
	if _, err := NewBlock(1, 1, Spec{Workers: 5, DormantProb: 1.5}); err == nil {
		t.Fatal("expected error for dormancy probability > 1")
	}
}

func TestHomeMembershipStableAcrossDays(t *testing.T) {
	// A home device that is a regular this month remains a regular: the
	// set of evening responders should overlap heavily day to day.
	b, err := NewBlock(22, 402, Spec{Homes: 80})
	if err != nil {
		t.Fatal(err)
	}
	evening := func(day int64) map[int]bool {
		out := map[int]bool{}
		for a := 0; a < 256; a++ {
			if b.Kind(a) == HomeEvening && b.Active(a, jan6+day*SecondsPerDay+21*3600) {
				out[a] = true
			}
		}
		return out
	}
	d0, d1 := evening(0), evening(1)
	inter := 0
	for a := range d0 {
		if d1[a] {
			inter++
		}
	}
	if len(d0) == 0 || float64(inter)/float64(len(d0)) < 0.8 {
		t.Fatalf("evening membership churns too much: %d of %d overlap", inter, len(d0))
	}
}
