package netsim

// ActiveCache memoizes the hash draws behind Block.Active for one
// consumer. Address state is a pure function of (seed, addr, t), so every
// cached value is recomputed with exactly the HashUnit calls Block.Active
// would have made — results are bit-identical by construction, and an
// equivalence test (activecache_test.go) sweeps event-rich worlds to hold
// the contract.
//
// The win comes from the probing workload's access pattern: an engine
// replays the same timestamp for up to 16+ probes per round and walks the
// same day for ~130 rounds, while the underlying decisions change only per
// (address, day), per renumbering generation, or per 3-hour duty slot.
// Caching those draws turns most Active calls into a handful of array
// loads and compares.
//
// An ActiveCache is NOT safe for concurrent use; create one per goroutine
// (probe.Engine does so per collection). It assumes the block's event
// schedule does not change while the cache is live.
type ActiveCache struct {
	b *Block

	// direct disables caching entirely (event classes too large for the
	// adoption bitmasks); every call falls through to Block.Active.
	direct bool

	// Event schedule, classified once. Index slices point into b.events;
	// adoption values are pre-resolved so the per-address mask fill does
	// not re-branch on Event.Adoption == 0.
	wfhIdx, holIdx []int
	wfhAdoption    []float64
	holAdoption    []float64
	outEvents      []Event
	renStarts      []int64

	// Dormancy: the phase hash is t-independent; the epoch coin is cached
	// per epoch.
	dormEpochLen int64
	dormPhase    int64
	dormEpoch    int64
	dormOK       bool
	dormVal      float64

	// Per-timestamp block state, refreshed when t changes. validUntil is
	// the first instant after lastT where anything besides sod could
	// change (event/renumber boundary, day or 3h-slot rollover, dormancy
	// epoch edge); forward moves inside the horizon only bump sod.
	lastT      int64
	validUntil int64
	tOK        bool
	out        bool
	gen        uint64
	inGap      bool
	day        int64
	sod        int64
	slot3h     int64
	weekend    bool
	dorm       float64
	wfhActive  uint64 // bit j set when events[wfhIdx[j]] covers lastT
	holActive  uint64

	// Per-address WFH/holiday adoption masks (t-independent), lazily
	// filled on first touch of each address.
	maskSet  bitset256
	wfhAdopt [256]uint64
	holAdopt [256]uint64

	// Per-(address, generation) draws.
	genSet  bitset256
	wgen    [256]workerGenDraws
	homeSet bitset256
	hgen    [256]homeGenDraws

	// Per-(address, generation, day) draws.
	daySet  bitset256
	wday    [256]workerDayDraws
	hdaySet bitset256
	hday    [256]homeDayDraws

	// Intermittent duty coin per (address, generation, 3h slot).
	dutySet bitset256
	duty    [256]dutyDraw
}

type workerGenDraws struct {
	gen    uint64
	arrive int64 // WorkStart + habit, without the per-day jitter
	leave  int64
}

type homeGenDraws struct {
	gen      uint64
	weekHash float64 // HashUnit(seed, addr, gen, saltHomeWeek)
	eveStart int64
}

type workerDayDraws struct {
	day    int64
	gen    uint64
	off    bool // which salt the coin was drawn with
	coinOK bool
	jitOK  bool
	coin   float64
	jitter int64
}

type homeDayDraws struct {
	day  int64
	gen  uint64
	drop bool // daily dropout coin already compared against 0.93
}

type dutyDraw struct {
	slot int64
	gen  uint64
	up   bool
}

type bitset256 [4]uint64

func (s *bitset256) has(i int) bool { return s[i>>6]&(1<<(uint(i)&63)) != 0 }
func (s *bitset256) set(i int)      { s[i>>6] |= 1 << (uint(i) & 63) }

// NewActiveCache returns a fresh cache over b's address processes.
func (b *Block) NewActiveCache() *ActiveCache {
	c := &ActiveCache{b: b}
	for i, e := range b.events {
		switch e.Kind {
		case EventWFH:
			c.wfhIdx = append(c.wfhIdx, i)
			c.wfhAdoption = append(c.wfhAdoption, e.adoption())
		case EventHoliday, EventCurfew:
			c.holIdx = append(c.holIdx, i)
			c.holAdoption = append(c.holAdoption, e.adoption())
		case EventOutage:
			c.outEvents = append(c.outEvents, e)
		case EventRenumber:
			c.renStarts = append(c.renStarts, e.Start)
		}
	}
	// The adoption masks are 64 bits wide; schedules beyond that (none of
	// the shipped scenarios come close) fall back to the direct path.
	if len(c.wfhIdx) > 64 || len(c.holIdx) > 64 {
		c.direct = true
		return c
	}
	if b.spec.DormantProb > 0 {
		c.dormEpochLen = int64(b.spec.DormantEpochDays) * SecondsPerDay
		c.dormPhase = int64(HashUnit(b.Seed, saltDormantPhase) * float64(c.dormEpochLen))
	}
	return c
}

// Active reports whether address addr responds at time t, bit-identical to
// c.Block().Active(addr, t).
func (c *ActiveCache) Active(addr int, t int64) bool {
	if c.direct {
		return c.b.Active(addr, t)
	}
	kind := c.b.kinds[addr]
	if kind == Unused || kind == Firewalled {
		return false
	}
	if !c.tOK || t != c.lastT {
		if c.tOK && t > c.lastT && t < c.validUntil {
			// Same day, slot, epoch, and event set: only the
			// second-of-day moves.
			c.sod += t - c.lastT
			c.lastT = t
		} else {
			c.refreshT(t)
		}
	}
	if c.out {
		return false
	}
	if c.inGap && kind != AlwaysOn {
		return false
	}
	switch kind {
	case AlwaysOn:
		return true
	case Worker:
		return c.workerActive(addr)
	case HomeEvening:
		return c.homeActive(addr)
	case Intermittent:
		d := &c.duty[addr]
		if !c.dutySet.has(addr) || d.slot != c.slot3h || d.gen != c.gen {
			d.slot, d.gen = c.slot3h, c.gen
			d.up = HashUnit(c.b.Seed, uint64(addr), c.gen, uint64(c.slot3h), saltDuty) < c.b.spec.Duty
			c.dutySet.set(addr)
		}
		return d.up
	default:
		return false
	}
}

// Block returns the block the cache was built over.
func (c *ActiveCache) Block() *Block { return c.b }

// CountActive is Block.CountActive through the cache.
func (c *ActiveCache) CountActive(t int64) int {
	n := 0
	for a := 0; a < 256; a++ {
		if c.Active(a, t) {
			n++
		}
	}
	return n
}

// refreshT recomputes the address-independent state for timestamp t: the
// outage/renumbering state, local calendar fields, the dormancy factor,
// and which WFH/holiday events are currently active.
func (c *ActiveCache) refreshT(t int64) {
	c.lastT, c.tOK = t, true
	c.out = false
	for _, e := range c.outEvents {
		if e.active(t) {
			c.out = true
			break
		}
	}
	c.gen, c.inGap = 0, false
	for _, start := range c.renStarts {
		if t >= start {
			c.gen++
			if t < start+renumberGapSeconds {
				c.inGap = true
			}
		}
	}
	local := t + c.b.spec.TZOffset
	c.day = DayIndex(local)
	c.sod = local - c.day*SecondsPerDay
	c.slot3h = floorDiv(local, 3*3600)
	wd := ((c.day+4)%7 + 7) % 7
	c.weekend = wd == 0 || wd == 6
	c.dorm = 1
	if c.dormEpochLen > 0 {
		epoch := floorDiv(t+c.dormPhase, c.dormEpochLen)
		if !c.dormOK || epoch != c.dormEpoch {
			c.dormEpoch, c.dormOK = epoch, true
			c.dormVal = 1
			if HashUnit(c.b.Seed, uint64(epoch), saltDormant) < c.b.spec.DormantProb {
				c.dormVal = 0.15
			}
		}
		c.dorm = c.dormVal
	}
	c.wfhActive = 0
	for j, i := range c.wfhIdx {
		if c.b.events[i].active(t) {
			c.wfhActive |= 1 << uint(j)
		}
	}
	c.holActive = 0
	for j, i := range c.holIdx {
		if c.b.events[i].active(t) {
			c.holActive |= 1 << uint(j)
		}
	}
	// Horizon: the earliest future instant where any field above could
	// change. Until then a forward move only shifts the second-of-day.
	vu := (c.day+1)*SecondsPerDay - c.b.spec.TZOffset
	if e := (c.slot3h+1)*3*3600 - c.b.spec.TZOffset; e < vu {
		vu = e
	}
	if c.dormEpochLen > 0 {
		if e := (c.dormEpoch+1)*c.dormEpochLen - c.dormPhase; e < vu {
			vu = e
		}
	}
	for i := range c.outEvents {
		vu = narrowHorizon(vu, t, c.outEvents[i].Start)
		vu = narrowHorizon(vu, t, c.outEvents[i].End)
	}
	for _, start := range c.renStarts {
		vu = narrowHorizon(vu, t, start)
		vu = narrowHorizon(vu, t, start+renumberGapSeconds)
	}
	for _, i := range c.wfhIdx {
		vu = narrowHorizon(vu, t, c.b.events[i].Start)
		vu = narrowHorizon(vu, t, c.b.events[i].End)
	}
	for _, i := range c.holIdx {
		vu = narrowHorizon(vu, t, c.b.events[i].Start)
		vu = narrowHorizon(vu, t, c.b.events[i].End)
	}
	c.validUntil = vu
}

// narrowHorizon pulls the horizon down to boundary when it lies strictly
// between t and the current horizon. A zero boundary (open-ended event)
// never narrows.
func narrowHorizon(vu, t, boundary int64) int64 {
	if boundary > t && boundary < vu {
		return boundary
	}
	return vu
}

// masks ensures the per-address adoption bitmasks are filled. The hashes
// are t-independent (per address and event index), so one fill serves the
// whole collection.
func (c *ActiveCache) masks(addr int) (wfh, hol uint64) {
	if !c.maskSet.has(addr) {
		var wm, hm uint64
		for j, i := range c.wfhIdx {
			if HashUnit(c.b.Seed, uint64(addr), uint64(i), saltWFH) < c.wfhAdoption[j] {
				wm |= 1 << uint(j)
			}
		}
		for j, i := range c.holIdx {
			if HashUnit(c.b.Seed, uint64(addr), uint64(i), saltHoliday) < c.holAdoption[j] {
				hm |= 1 << uint(j)
			}
		}
		c.wfhAdopt[addr], c.holAdopt[addr] = wm, hm
		c.maskSet.set(addr)
	}
	return c.wfhAdopt[addr], c.holAdopt[addr]
}

func (c *ActiveCache) workerActive(addr int) bool {
	wfh, hol := c.masks(addr)
	if wfh&c.wfhActive != 0 {
		return false
	}
	off := c.weekend || hol&c.holActive != 0
	wd := &c.wday[addr]
	if !c.daySet.has(addr) || wd.day != c.day || wd.gen != c.gen {
		*wd = workerDayDraws{day: c.day, gen: c.gen}
		c.daySet.set(addr)
	}
	if !wd.coinOK || wd.off != off {
		wd.off, wd.coinOK = off, true
		salt := saltPresent
		if off {
			salt = saltWeekend
		}
		wd.coin = HashUnit(c.b.Seed, uint64(addr), c.gen, uint64(c.day), salt)
	}
	prob := c.b.spec.PresenceProb
	if off {
		prob = c.b.spec.WeekendWorkProb
	}
	if wd.coin >= prob*c.dorm {
		return false
	}
	wg := &c.wgen[addr]
	if !c.genSet.has(addr) || wg.gen != c.gen {
		wg.gen = c.gen
		wg.arrive = c.b.spec.WorkStart +
			int64(HashUnit(c.b.Seed, uint64(addr), c.gen, saltArrive)*5400)
		wg.leave = c.b.spec.WorkEnd +
			int64(HashUnit(c.b.Seed, uint64(addr), c.gen, saltLeave)*7200)
		c.genSet.set(addr)
	}
	if !wd.jitOK {
		wd.jitOK = true
		wd.jitter = int64(HashUnit(c.b.Seed, uint64(addr), c.gen, uint64(c.day), saltDayJitter) * 1800)
	}
	arrive := wg.arrive + wd.jitter
	return c.sod >= arrive && c.sod < wg.leave
}

func (c *ActiveCache) homeActive(addr int) bool {
	hg := &c.hgen[addr]
	if !c.homeSet.has(addr) || hg.gen != c.gen {
		hg.gen = c.gen
		hg.weekHash = HashUnit(c.b.Seed, uint64(addr), c.gen, saltHomeWeek)
		hg.eveStart = int64(18*3600) + int64(HashUnit(c.b.Seed, uint64(addr), c.gen, saltHomeEveningStart)*5400)
		c.homeSet.set(addr)
	}
	if hg.weekHash >= c.b.spec.HomeProb*c.dorm {
		return false
	}
	hd := &c.hday[addr]
	if !c.hdaySet.has(addr) || hd.day != c.day || hd.gen != c.gen {
		hd.day, hd.gen = c.day, c.gen
		hd.drop = HashUnit(c.b.Seed, uint64(addr), c.gen, uint64(c.day), saltHome) >= 0.93
		c.hdaySet.set(addr)
	}
	if hd.drop {
		return false
	}
	const eveEnd = int64(23*3600 + 1800)
	if c.sod >= hg.eveStart && c.sod < eveEnd {
		return true
	}
	if c.sod < 9*3600 || c.sod >= 17*3600 {
		return false
	}
	if c.weekend {
		return true
	}
	wfh, hol := c.masks(addr)
	return hol&c.holActive != 0 || wfh&c.wfhActive != 0
}
