package health

import "testing"

// TestBreakerHalfOpenRetripOnAgreementSamples drives a tracker with the
// integrity firewall's sample shape — gated blocks feed {0, 1}, merged
// blocks feed {Matches, Comparisons} — and checks the full trip cycle: a
// persistently gated observer opens, cools down into half-open
// probation, keeps failing, and re-opens instead of being readmitted.
func TestBreakerHalfOpenRetripOnAgreementSamples(t *testing.T) {
	cfg := BreakerConfig{MinSamples: 4, Cooldown: 6, Probation: 3}
	tr := NewTracker(cfg)
	feed := func(n int, liar Sample) {
		for i := 0; i < n; i++ {
			tr.ObserveBlock([]Sample{{12, 12}, {11, 12}, {12, 12}, liar})
		}
	}

	// Gated blocks: the firewall reports {0, 1} for the liar.
	feed(cfg.MinSamples, Sample{0, 1})
	if got := tr.States()[3]; got != Open {
		t.Fatalf("after %d gated blocks observer 3 is %s, want open", cfg.MinSamples, got)
	}

	// Cooldown elapses while the liar is excluded (no sample for it).
	feed(cfg.Cooldown, Sample{0, 0})
	if got := tr.States()[3]; got != HalfOpen {
		t.Fatalf("after cooldown observer 3 is %s, want half-open", got)
	}

	// Probation blocks still disagree: low agreement {2, 12} per block.
	feed(cfg.Probation, Sample{2, 12})
	if got := tr.States()[3]; got != Open {
		t.Fatalf("after failed probation observer 3 is %s, want open again", got)
	}

	var cycle []State
	for _, tran := range tr.Transitions() {
		if tran.Observer == 3 {
			cycle = append(cycle, tran.To)
		}
	}
	want := []State{Open, HalfOpen, Open}
	if len(cycle) != len(want) {
		t.Fatalf("observer 3 transitions %v, want %v", cycle, want)
	}
	for i := range want {
		if cycle[i] != want[i] {
			t.Fatalf("observer 3 transitions %v, want %v", cycle, want)
		}
	}

	// The honest observers never move.
	for i, s := range tr.States()[:3] {
		if s != Closed {
			t.Errorf("honest observer %d is %s, want closed", i, s)
		}
	}
}

// TestBreakerReadmitsRecoveredAgreement is the happy half of the cycle:
// an observer whose agreement recovers during probation is readmitted.
func TestBreakerReadmitsRecoveredAgreement(t *testing.T) {
	// A fast EWMA lets the score rebound within one short probation; the
	// default Alpha would need several cooldown/probation cycles.
	cfg := BreakerConfig{Alpha: 0.9, MinSamples: 4, Cooldown: 6, Probation: 3}
	tr := NewTracker(cfg)
	feed := func(n int, liar Sample) {
		for i := 0; i < n; i++ {
			tr.ObserveBlock([]Sample{{12, 12}, {11, 12}, {12, 12}, liar})
		}
	}
	feed(cfg.MinSamples, Sample{0, 1})
	feed(cfg.Cooldown, Sample{0, 0})
	if got := tr.States()[3]; got != HalfOpen {
		t.Fatalf("observer 3 is %s, want half-open", got)
	}
	// Recovered: perfect agreement through probation.
	feed(cfg.Probation, Sample{12, 12})
	if got := tr.States()[3]; got != Closed {
		t.Fatalf("after recovered probation observer 3 is %s, want closed", got)
	}
}
