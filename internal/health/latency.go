package health

import (
	"sort"
	"sync"
	"time"
)

// HedgeConfig tunes straggler detection and hedged re-dispatch. The zero
// value takes every default; see DefaultHedge.
type HedgeConfig struct {
	// Multiplier scales the observed latency quantile into the hedge
	// deadline (default 3): a block is a straggler once it has run
	// Multiplier times longer than the Quantile of completed blocks.
	Multiplier float64
	// Quantile is the completed-block latency quantile the deadline is
	// anchored to (default 0.95).
	Quantile float64
	// MinSamples is how many completed blocks must be measured before
	// hedging arms (default 4); until then no block is re-dispatched.
	MinSamples int
	// MinDeadline floors the adaptive deadline (default 25ms) so tiny
	// fast worlds do not hedge on scheduler jitter.
	MinDeadline time.Duration
	// MaxConcurrent bounds in-flight hedge attempts (default 2); hedges
	// run on their own budget so stalled primaries cannot starve them.
	MaxConcurrent int
	// Poll is the watchdog's scan interval (default 5ms).
	Poll time.Duration
}

// DefaultHedge returns the default hedging tuning.
func DefaultHedge() HedgeConfig { return HedgeConfig{}.withDefaults() }

// WithDefaults fills zero fields with the package defaults.
func (c HedgeConfig) WithDefaults() HedgeConfig { return c.withDefaults() }

func (c HedgeConfig) withDefaults() HedgeConfig {
	if c.Multiplier <= 0 {
		c.Multiplier = 3
	}
	if c.Quantile <= 0 || c.Quantile > 1 {
		c.Quantile = 0.95
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 4
	}
	if c.MinDeadline <= 0 {
		c.MinDeadline = 25 * time.Millisecond
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2
	}
	if c.Poll <= 0 {
		c.Poll = 5 * time.Millisecond
	}
	return c
}

// latencyWindow bounds how many completed-block durations the tracker
// remembers; old samples age out so the deadline follows drift.
const latencyWindow = 256

// Latency tracks completed-block durations in a bounded ring and derives
// the adaptive hedge deadline from a configured quantile. Safe for
// concurrent use.
type Latency struct {
	mu      sync.Mutex
	cfg     HedgeConfig
	ring    [latencyWindow]time.Duration
	n       int // total samples ever observed
	scratch []time.Duration
}

// NewLatency builds a tracker with cfg (zero fields take defaults).
func NewLatency(cfg HedgeConfig) *Latency {
	return &Latency{cfg: cfg.withDefaults()}
}

// Observe records one completed block's duration.
func (l *Latency) Observe(d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ring[l.n%latencyWindow] = d
	l.n++
}

// Samples returns how many durations have been observed.
func (l *Latency) Samples() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Quantile returns the q-quantile of the remembered window, or false when
// no samples exist yet.
func (l *Latency) Quantile(q float64) (time.Duration, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.quantileLocked(q)
}

func (l *Latency) quantileLocked(q float64) (time.Duration, bool) {
	n := l.n
	if n == 0 {
		return 0, false
	}
	if n > latencyWindow {
		n = latencyWindow
	}
	l.scratch = append(l.scratch[:0], l.ring[:n]...)
	sort.Slice(l.scratch, func(i, j int) bool { return l.scratch[i] < l.scratch[j] })
	idx := int(q * float64(n-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return l.scratch[idx], true
}

// Deadline returns the current adaptive hedge deadline: Multiplier times
// the configured latency quantile, floored at MinDeadline. It returns
// false until MinSamples blocks have completed — hedging stays disarmed
// while there is nothing trustworthy to compare a straggler against.
func (l *Latency) Deadline() (time.Duration, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.n < l.cfg.MinSamples {
		return 0, false
	}
	q, ok := l.quantileLocked(l.cfg.Quantile)
	if !ok {
		return 0, false
	}
	d := time.Duration(l.cfg.Multiplier * float64(q))
	if d < l.cfg.MinDeadline {
		d = l.cfg.MinDeadline
	}
	return d, true
}
