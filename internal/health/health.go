// Package health implements the runtime supervision primitives behind the
// pipeline's self-healing: per-observer EWMA health scores with a
// closed/open/half-open circuit breaker each, adaptive straggler deadlines
// for hedged re-dispatch, and an injectable clock so every timing decision
// is testable without sleeping.
//
// The paper's measurement plane is six unsynchronized observers whose
// reliability drifts over a quarter (§2.7, §3.3): sites c and g degraded
// mid-2020 and had to be discarded by a cross-observer comparison. The
// static pre-scan in internal/core reproduces that decision once, at run
// start; this package makes the same judgment continuously, so an observer
// that breaks mid-run is tripped out of subsequent blocks and readmitted
// only after probation probes look healthy again — the "Less is More"
// observation (arXiv:2602.03965) that dropping unhealthy vantage points
// improves rather than hurts inference.
//
// Nothing here imports the rest of the repository, so probers, the
// pipeline, and experiments can all share these types without cycles.
package health
