package health

import (
	"sort"
	"sync"
	"time"
)

// Clock abstracts wall time for the supervisor: the watchdog polls and the
// stall injector sleeps through it, so tests substitute Fake and advance
// time by hand instead of sleeping.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that delivers the time once d has elapsed.
	After(d time.Duration) <-chan time.Time
}

// System is the wall-clock Clock used outside tests.
var System Clock = systemClock{}

type systemClock struct{}

func (systemClock) Now() time.Time                         { return time.Now() }
func (systemClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Fake is a manually advanced Clock for deterministic tests: Now is frozen
// until Advance moves it, and After fires exactly when the advancing test
// crosses the requested instant.
type Fake struct {
	mu      sync.Mutex
	now     time.Time
	waiters []fakeWaiter
}

type fakeWaiter struct {
	at time.Time
	ch chan time.Time
}

// NewFake returns a Fake clock starting at the Unix epoch.
func NewFake() *Fake { return &Fake{now: time.Unix(0, 0)} }

// Now returns the fake instant.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// After returns a channel that fires once Advance has moved the clock at
// least d past the current instant. Non-positive d fires immediately.
func (f *Fake) After(d time.Duration) <-chan time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- f.now
		return ch
	}
	f.waiters = append(f.waiters, fakeWaiter{at: f.now.Add(d), ch: ch})
	return ch
}

// Advance moves the clock forward and fires every waiter whose deadline
// has been reached, in deadline order.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
	sort.SliceStable(f.waiters, func(i, j int) bool { return f.waiters[i].at.Before(f.waiters[j].at) })
	kept := f.waiters[:0]
	for _, w := range f.waiters {
		if w.at.After(f.now) {
			kept = append(kept, w)
			continue
		}
		w.ch <- f.now
	}
	f.waiters = kept
}
