package health

import (
	"fmt"
	"sync"
)

// State is a circuit breaker position.
type State uint8

const (
	// Closed means the observer is trusted and its records are used.
	Closed State = iota
	// Open means the observer tripped its breaker: its record streams are
	// discarded until a cooldown elapses.
	Open
	// HalfOpen means the observer is on probation: it is included again,
	// and the next few blocks decide whether it closes or re-opens.
	HalfOpen
)

// String renders the state for reports.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// Sample is one block's outcome for one observer: how many of its probe
// records were positive, out of how many total. A Total of zero means the
// observer produced no records at all for the block — the strongest
// possible sign of a dead site, scored as a reply rate of zero.
type Sample struct {
	Up, Total int
}

// BreakerConfig tunes the per-observer circuit breakers. The zero value
// takes every default; see DefaultBreaker.
type BreakerConfig struct {
	// Alpha is the EWMA smoothing factor for per-block reply rates
	// (default 0.2): the score remembers roughly the last 1/Alpha blocks.
	Alpha float64
	// Tol is the trip margin: a closed observer whose score falls more
	// than Tol below the median closed-observer score opens (default
	// 0.25). It is deliberately wider than the pre-scan's 0.1 — tripping
	// mid-run costs coverage, so the runtime breaker demands a clearer
	// signal than the one-shot health check.
	Tol float64
	// MinSamples is how many blocks an observer must have contributed to
	// before it may trip (default 8); pre-scan seeding satisfies it
	// immediately, keeping the pre-scan and runtime decisions consistent.
	MinSamples int
	// Cooldown is how many completed blocks an open breaker waits before
	// moving to half-open probation (default 32).
	Cooldown int
	// Probation is how many blocks a half-open observer is included for
	// before the breaker decides to close or re-open (default 8).
	Probation int
	// MinHealthy is the number of closed observers that must always
	// remain: a trip that would leave fewer is suppressed, mirroring the
	// pre-scan rule that the check never discards every observer
	// (default 1).
	MinHealthy int
}

// DefaultBreaker returns the default breaker tuning.
func DefaultBreaker() BreakerConfig { return BreakerConfig{}.withDefaults() }

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Alpha <= 0 {
		c.Alpha = 0.2
	}
	if c.Tol <= 0 {
		c.Tol = 0.25
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 8
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 32
	}
	if c.Probation <= 0 {
		c.Probation = 8
	}
	if c.MinHealthy <= 0 {
		c.MinHealthy = 1
	}
	return c
}

// Transition is one recorded breaker state change; the pipeline surfaces
// the full sequence in its RunReport.
type Transition struct {
	// Observer is the engine observer index.
	Observer int
	// From and To are the breaker states around the change.
	From, To State
	// Seq is the tracker's completed-block sequence number at the change
	// (0 for pre-scan seeding, before any block completed).
	Seq int
	// Score is the observer's EWMA health score at the change.
	Score float64
	// Reason says what drove the change.
	Reason string
}

// String renders the transition for reports.
func (t Transition) String() string {
	return fmt.Sprintf("observer %d %s->%s at block %d (score %.2f: %s)",
		t.Observer, t.From, t.To, t.Seq, t.Score, t.Reason)
}

// Tracker maintains per-observer EWMA health scores and circuit breakers,
// fed by per-block collection outcomes. It is safe for concurrent use by
// pipeline workers; decisions are made under one lock so the transition
// log is a consistent serialization.
type Tracker struct {
	mu          sync.Mutex
	cfg         BreakerConfig
	obs         []obsState
	seq         int
	transitions []Transition
}

type obsState struct {
	state     State
	score     float64
	seeded    bool
	samples   int
	openedAt  int
	probation int
}

// NewTracker builds a tracker with cfg (zero fields take defaults). The
// observer count is learned lazily from the first Seed or ObserveBlock
// call, so callers need not know the engine's shape up front.
func NewTracker(cfg BreakerConfig) *Tracker {
	return &Tracker{cfg: cfg.withDefaults()}
}

// grow extends the tracked observer set; callers hold t.mu.
func (t *Tracker) grow(n int) {
	for len(t.obs) < n {
		t.obs = append(t.obs, obsState{})
	}
}

// shift moves observer i to state to, recording the transition; callers
// hold t.mu.
func (t *Tracker) shift(i int, to State, reason string) {
	st := &t.obs[i]
	if st.state == to {
		return
	}
	t.transitions = append(t.transitions, Transition{
		Observer: i, From: st.state, To: to, Seq: t.seq, Score: st.score, Reason: reason,
	})
	st.state = to
}

// Seed installs the static pre-scan's per-observer reply rates as the
// initial health scores and opens the breakers of observers the pre-scan
// already excluded. Seeded observers count as fully sampled, so the
// runtime breaker may act immediately instead of re-learning what the
// pre-scan measured — the pre-scan and the breaker agree on exclusion
// from the first block. Pre-scan-excluded observers are eligible for
// half-open probation after the normal cooldown, so a site that recovers
// mid-run can be readmitted.
func (t *Tracker) Seed(rates []float64, excluded []int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.grow(len(rates))
	for i, r := range rates {
		st := &t.obs[i]
		st.score = r
		st.seeded = true
		st.samples = t.cfg.MinSamples
	}
	for _, i := range excluded {
		if i >= 0 && i < len(t.obs) {
			t.shift(i, Open, "pre-scan exclusion")
			t.obs[i].openedAt = t.seq
		}
	}
}

// ObserveBlock folds one completed block collection into the tracker:
// samples[i] is observer i's outcome (ignored for observers whose breaker
// is open — their records were discarded, so there is nothing to score).
// It then re-evaluates every breaker: closed observers whose score fell
// more than Tol below the closed median trip open, open breakers past
// their cooldown move to half-open, and half-open observers finishing
// probation close (readmitted) or re-open.
func (t *Tracker) ObserveBlock(samples []Sample) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.grow(len(samples))
	t.seq++
	for i := range t.obs {
		st := &t.obs[i]
		if st.state == Open {
			if t.seq-st.openedAt >= t.cfg.Cooldown {
				t.shift(i, HalfOpen, "cooldown elapsed; probation begins")
				st.probation = 0
			}
			continue
		}
		if i >= len(samples) {
			continue
		}
		rate := 0.0
		if samples[i].Total > 0 {
			rate = float64(samples[i].Up) / float64(samples[i].Total)
		}
		if !st.seeded {
			st.score, st.seeded = rate, true
		} else {
			st.score = t.cfg.Alpha*rate + (1-t.cfg.Alpha)*st.score
		}
		st.samples++
		if st.state == HalfOpen {
			st.probation++
		}
	}
	med, ok := t.closedMedian()
	if !ok {
		return
	}
	healthy := 0
	for i := range t.obs {
		if t.obs[i].state == Closed {
			healthy++
		}
	}
	for i := range t.obs {
		st := &t.obs[i]
		switch st.state {
		case Closed:
			if st.samples >= t.cfg.MinSamples && st.score < med-t.cfg.Tol && healthy > t.cfg.MinHealthy {
				t.shift(i, Open, fmt.Sprintf("score %.2f fell below median %.2f - %.2f", st.score, med, t.cfg.Tol))
				st.openedAt = t.seq
				healthy--
			}
		case HalfOpen:
			if st.probation < t.cfg.Probation {
				continue
			}
			if st.score >= med-t.cfg.Tol {
				t.shift(i, Closed, "probation passed; observer readmitted")
			} else {
				t.shift(i, Open, fmt.Sprintf("probation failed at score %.2f", st.score))
				st.openedAt = t.seq
			}
		}
	}
}

// closedMedian returns the median score over closed, sampled observers;
// ok is false when no closed observer has been sampled yet (nothing to
// compare against, so no breaker may act). Callers hold t.mu.
func (t *Tracker) closedMedian() (med float64, ok bool) {
	var scores []float64
	for i := range t.obs {
		if t.obs[i].state == Closed && t.obs[i].samples > 0 {
			scores = append(scores, t.obs[i].score)
		}
	}
	if len(scores) == 0 {
		return 0, false
	}
	// Insertion sort: at most six observers.
	for i := 1; i < len(scores); i++ {
		for j := i; j > 0 && scores[j] < scores[j-1]; j-- {
			scores[j], scores[j-1] = scores[j-1], scores[j]
		}
	}
	return scores[len(scores)/2], true
}

// ExcludedSet fills dst (grown as needed) with true at every observer
// index whose breaker is open — the per-collection drop mask.
func (t *Tracker) ExcludedSet(dst []bool) []bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if cap(dst) < len(t.obs) {
		dst = make([]bool, len(t.obs))
	}
	dst = dst[:len(t.obs)]
	for i := range t.obs {
		dst[i] = t.obs[i].state == Open
	}
	return dst
}

// Excluded returns the observer indices whose breaker is open, ascending.
func (t *Tracker) Excluded() []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []int
	for i := range t.obs {
		if t.obs[i].state == Open {
			out = append(out, i)
		}
	}
	return out
}

// Scores returns the current EWMA health scores by observer index.
func (t *Tracker) Scores() []float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]float64, len(t.obs))
	for i := range t.obs {
		out[i] = t.obs[i].score
	}
	return out
}

// States returns the current breaker states by observer index.
func (t *Tracker) States() []State {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]State, len(t.obs))
	for i := range t.obs {
		out[i] = t.obs[i].state
	}
	return out
}

// Transitions returns the recorded state changes in decision order.
func (t *Tracker) Transitions() []Transition {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Transition(nil), t.transitions...)
}
