package health

import (
	"testing"
	"time"
)

func observeUniform(t *Tracker, rates []float64, total int) {
	samples := make([]Sample, len(rates))
	for i, r := range rates {
		samples[i] = Sample{Up: int(r * float64(total)), Total: total}
	}
	t.ObserveBlock(samples)
}

func TestBreakerTripAndReadmit(t *testing.T) {
	tr := NewTracker(BreakerConfig{Alpha: 0.5, Tol: 0.2, MinSamples: 2, Cooldown: 3, Probation: 2})

	healthy := []float64{0.9, 0.9, 0.9, 0.9}
	for i := 0; i < 4; i++ {
		observeUniform(tr, healthy, 100)
	}
	if ex := tr.Excluded(); len(ex) != 0 {
		t.Fatalf("no breaker should be open on healthy input, got %v", ex)
	}

	// Observer 3 collapses; with Alpha 0.5 its score halves each block and
	// crosses median-0.2 within a few blocks.
	degraded := []float64{0.9, 0.9, 0.9, 0.0}
	opened := false
	for i := 0; i < 6 && !opened; i++ {
		observeUniform(tr, degraded, 100)
		for _, ex := range tr.Excluded() {
			if ex == 3 {
				opened = true
			}
		}
	}
	if !opened {
		t.Fatalf("observer 3 breaker never opened; scores %v states %v", tr.Scores(), tr.States())
	}

	// Breaker open: cooldown, then probation with recovered signal.
	for i := 0; i < 3; i++ {
		observeUniform(tr, healthy, 100)
	}
	if st := tr.States()[3]; st != HalfOpen {
		t.Fatalf("after cooldown want half-open, got %v", st)
	}
	for i := 0; i < 8; i++ {
		observeUniform(tr, healthy, 100)
		if tr.States()[3] == Closed {
			break
		}
	}
	if st := tr.States()[3]; st != Closed {
		t.Fatalf("recovered observer should be readmitted, got %v (score %.3f)", st, tr.Scores()[3])
	}

	var seen []string
	for _, tx := range tr.Transitions() {
		if tx.Observer == 3 {
			seen = append(seen, tx.From.String()+"->"+tx.To.String())
		}
	}
	want := []string{"closed->open", "open->half-open", "half-open->closed"}
	if len(seen) != len(want) {
		t.Fatalf("transition log %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("transition log %v, want %v", seen, want)
		}
	}
}

func TestBreakerMinHealthyFloor(t *testing.T) {
	tr := NewTracker(BreakerConfig{Alpha: 1, Tol: 0.1, MinSamples: 1, MinHealthy: 2})
	// Two observers, both would be "below median - tol" of each other in
	// turn; MinHealthy 2 must suppress every trip.
	for i := 0; i < 5; i++ {
		tr.ObserveBlock([]Sample{{Up: 90, Total: 100}, {Up: 0, Total: 100}})
	}
	if ex := tr.Excluded(); len(ex) != 0 {
		t.Fatalf("MinHealthy=2 with 2 observers must never trip, got %v", ex)
	}
}

func TestSeedAgreesWithPreScan(t *testing.T) {
	tr := NewTracker(BreakerConfig{MinSamples: 8})
	tr.Seed([]float64{0.9, 0.88, 0.2, 0.91}, []int{2})

	if ex := tr.Excluded(); len(ex) != 1 || ex[0] != 2 {
		t.Fatalf("pre-scan excluded observer must start open, got %v", ex)
	}
	txs := tr.Transitions()
	if len(txs) != 1 || txs[0].Observer != 2 || txs[0].To != Open || txs[0].Seq != 0 {
		t.Fatalf("seeding must log the pre-scan exclusion at seq 0, got %+v", txs)
	}
	// Seeded scores count as fully sampled: a healthy observer collapsing
	// right away can trip without waiting out MinSamples fresh blocks.
	scores := tr.Scores()
	if scores[0] != 0.9 || scores[2] != 0.2 {
		t.Fatalf("seed scores not installed: %v", scores)
	}
}

func TestSeedExcludedReadmission(t *testing.T) {
	tr := NewTracker(BreakerConfig{Alpha: 0.5, Tol: 0.2, MinSamples: 2, Cooldown: 2, Probation: 2})
	tr.Seed([]float64{0.9, 0.9, 0.1}, []int{2})
	healthy := []float64{0.9, 0.9, 0.9}
	for i := 0; i < 12; i++ {
		observeUniform(tr, healthy, 100)
		if tr.States()[2] == Closed {
			return
		}
	}
	t.Fatalf("pre-scan-excluded observer that recovered was never readmitted: states %v scores %v",
		tr.States(), tr.Scores())
}

func TestZeroTotalScoresAsDead(t *testing.T) {
	tr := NewTracker(BreakerConfig{Alpha: 1, Tol: 0.2, MinSamples: 1})
	tr.ObserveBlock([]Sample{{Up: 90, Total: 100}, {Up: 80, Total: 100}, {Up: 0, Total: 0}})
	if s := tr.Scores()[2]; s != 0 {
		t.Fatalf("empty stream must score 0, got %v", s)
	}
}

func TestLatencyDeadline(t *testing.T) {
	l := NewLatency(HedgeConfig{Multiplier: 2, Quantile: 0.95, MinSamples: 4, MinDeadline: time.Millisecond})
	if _, ok := l.Deadline(); ok {
		t.Fatal("deadline must stay disarmed before MinSamples")
	}
	for i := 1; i <= 20; i++ {
		l.Observe(time.Duration(i) * 10 * time.Millisecond)
	}
	d, ok := l.Deadline()
	if !ok {
		t.Fatal("deadline should be armed after 20 samples")
	}
	// p95 of 10..200ms is 190ms; ×2 = 380ms.
	if want := 380 * time.Millisecond; d != want {
		t.Fatalf("deadline = %v, want %v", d, want)
	}
}

func TestLatencyMinDeadlineFloor(t *testing.T) {
	l := NewLatency(HedgeConfig{Multiplier: 3, MinSamples: 2, MinDeadline: 25 * time.Millisecond})
	for i := 0; i < 4; i++ {
		l.Observe(time.Microsecond)
	}
	d, ok := l.Deadline()
	if !ok || d != 25*time.Millisecond {
		t.Fatalf("tiny latencies must floor at MinDeadline, got %v ok=%v", d, ok)
	}
}

func TestLatencyWindowAgesOut(t *testing.T) {
	l := NewLatency(HedgeConfig{Multiplier: 1, Quantile: 1, MinSamples: 1, MinDeadline: time.Nanosecond})
	l.Observe(time.Hour)
	for i := 0; i < latencyWindow; i++ {
		l.Observe(time.Millisecond)
	}
	d, ok := l.Deadline()
	if !ok || d != time.Millisecond {
		t.Fatalf("hour-long outlier should have aged out of the ring, got %v", d)
	}
}

func TestFakeClock(t *testing.T) {
	f := NewFake()
	ch := f.After(10 * time.Millisecond)
	select {
	case <-ch:
		t.Fatal("fake After fired before Advance")
	default:
	}
	f.Advance(5 * time.Millisecond)
	select {
	case <-ch:
		t.Fatal("fake After fired early")
	default:
	}
	f.Advance(5 * time.Millisecond)
	select {
	case at := <-ch:
		if want := time.Unix(0, 0).Add(10 * time.Millisecond); !at.Equal(want) {
			t.Fatalf("fired at %v, want %v", at, want)
		}
	default:
		t.Fatal("fake After did not fire at its deadline")
	}
	if got := f.Now(); !got.Equal(time.Unix(0, 0).Add(10 * time.Millisecond)) {
		t.Fatalf("Now = %v", got)
	}
	// Immediate fire for non-positive d.
	select {
	case <-f.After(0):
	default:
		t.Fatal("After(0) must fire immediately")
	}
}
