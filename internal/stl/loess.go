// Package stl implements Seasonal-Trend decomposition using LOESS (STL,
// Cleveland et al. 1990) together with the "naive" moving-average seasonal
// decomposition the paper compares against (§2.5). Both decompose an
// active-address time series into trend + seasonal + residual; the paper
// adopts STL because it is more robust to outliers.
package stl

import (
	"fmt"
	"math"
)

// loessFitAt evaluates a locally weighted polynomial regression of y
// (observed at integer positions 0..len(y)-1) at position at. span is the
// number of nearest neighbours included; degree is 0, 1 or 2. rho, when
// non-nil, holds per-point robustness weights multiplied into the tricube
// kernel. Positions outside [0, len(y)-1] extrapolate from the nearest
// span points, which STL uses to extend cycle-subseries by one period on
// each side.
func loessFitAt(y []float64, rho []float64, span, degree int, at float64) float64 {
	n := len(y)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return y[0]
	}
	if span < 2 {
		span = 2
	}
	q := span
	if q > n {
		q = n
	}
	// Window of the q nearest integer positions to at.
	lo := int(math.Round(at)) - q/2
	if lo < 0 {
		lo = 0
	}
	if lo+q > n {
		lo = n - q
	}
	// Slide the window to actually contain the q nearest points.
	for lo > 0 && at-float64(lo-1) < float64(lo+q-1)-at {
		lo--
	}
	for lo+q < n && float64(lo+q)-at < at-float64(lo) {
		lo++
	}
	dmax := math.Max(at-float64(lo), float64(lo+q-1)-at)
	if span > n {
		// Cleveland's span inflation: for q > n the bandwidth grows
		// proportionally, flattening the fit toward a global polynomial.
		dmax *= float64(span) / float64(n)
	}
	if dmax <= 0 {
		dmax = 1
	}

	// Weighted least squares of the chosen degree via normal equations.
	var s [5]float64 // sums of w * x^k, k = 0..4
	var t [3]float64 // sums of w * y * x^k, k = 0..2
	for j := lo; j < lo+q; j++ {
		d := math.Abs(float64(j) - at)
		u := d / dmax
		if u >= 1 {
			continue
		}
		w := 1 - u*u*u
		w = w * w * w
		if rho != nil {
			w *= rho[j]
		}
		if w <= 0 {
			continue
		}
		x := float64(j) - at // center on the evaluation point
		xp := 1.0
		for k := 0; k <= 2*degree; k++ {
			s[k] += w * xp
			if k <= degree {
				t[k] += w * y[j] * xp
			}
			xp *= x
		}
	}
	if s[0] == 0 {
		// All weights vanished (can happen when robustness weights zero out
		// the whole window); fall back to the unweighted window mean.
		sum := 0.0
		for j := lo; j < lo+q; j++ {
			sum += y[j]
		}
		return sum / float64(q)
	}
	switch degree {
	case 0:
		return t[0] / s[0]
	case 1:
		det := s[0]*s[2] - s[1]*s[1]
		if det == 0 {
			return t[0] / s[0]
		}
		// Since x is centered at the evaluation point, the intercept is
		// the fitted value.
		return (t[0]*s[2] - t[1]*s[1]) / det
	case 2:
		a, b, c := s[0], s[1], s[2]
		d, e, f := s[1], s[2], s[3]
		g, h, i := s[2], s[3], s[4]
		det := a*(e*i-f*h) - b*(d*i-f*g) + c*(d*h-e*g)
		if det == 0 {
			return t[0] / s[0]
		}
		// Cramer's rule for the intercept coefficient only.
		det0 := t[0]*(e*i-f*h) - b*(t[1]*i-f*t[2]) + c*(t[1]*h-e*t[2])
		return det0 / det
	default:
		panic(fmt.Sprintf("stl: unsupported loess degree %d", degree))
	}
}

// Loess smooths y with locally weighted regression, returning the fitted
// value at every position. span is the neighbourhood size in points and
// degree the local polynomial degree (0, 1 or 2). rho may be nil.
func Loess(y []float64, span, degree int, rho []float64) []float64 {
	out := make([]float64, len(y))
	for i := range y {
		out[i] = loessFitAt(y, rho, span, degree, float64(i))
	}
	return out
}

// movingAverage returns the simple moving average of y with window m; the
// result has len(y)-m+1 points.
func movingAverage(y []float64, m int) []float64 {
	n := len(y)
	if m <= 0 || m > n {
		return nil
	}
	out := make([]float64, n-m+1)
	sum := 0.0
	for i := 0; i < m; i++ {
		sum += y[i]
	}
	out[0] = sum / float64(m)
	for i := m; i < n; i++ {
		sum += y[i] - y[i-m]
		out[i-m+1] = sum / float64(m)
	}
	return out
}

// nextOdd returns the smallest odd integer >= v (and >= 3).
func nextOdd(v float64) int {
	n := int(math.Ceil(v))
	if n < 3 {
		n = 3
	}
	if n%2 == 0 {
		n++
	}
	return n
}
