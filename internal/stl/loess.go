// Package stl implements Seasonal-Trend decomposition using LOESS (STL,
// Cleveland et al. 1990) together with the "naive" moving-average seasonal
// decomposition the paper compares against (§2.5). Both decompose an
// active-address time series into trend + seasonal + residual; the paper
// adopts STL because it is more robust to outliers.
package stl

import (
	"fmt"
	"math"
)

// loessWindow picks the window [lo, lo+q) of the q nearest integer
// positions to at, and the kernel bandwidth dmax — shared by the one-shot
// and table-driven fits so both see identical windows.
func loessWindow(n, span int, at float64) (lo, q int, dmax float64) {
	q = span
	if q > n {
		q = n
	}
	lo = int(math.Round(at)) - q/2
	if lo < 0 {
		lo = 0
	}
	if lo+q > n {
		lo = n - q
	}
	// Slide the window to actually contain the q nearest points.
	for lo > 0 && at-float64(lo-1) < float64(lo+q-1)-at {
		lo--
	}
	for lo+q < n && float64(lo+q)-at < at-float64(lo) {
		lo++
	}
	dmax = math.Max(at-float64(lo), float64(lo+q-1)-at)
	if span > n {
		// Cleveland's span inflation: for q > n the bandwidth grows
		// proportionally, flattening the fit toward a global polynomial.
		dmax *= float64(span) / float64(n)
	}
	if dmax <= 0 {
		dmax = 1
	}
	return lo, q, dmax
}

// loessFitAt evaluates a locally weighted polynomial regression of y
// (observed at integer positions 0..len(y)-1) at position at. span is the
// number of nearest neighbours included; degree is 0, 1 or 2. rho, when
// non-nil, holds per-point robustness weights multiplied into the tricube
// kernel. Positions outside [0, len(y)-1] extrapolate from the nearest
// span points, which STL uses to extend cycle-subseries by one period on
// each side.
func loessFitAt(y []float64, rho []float64, span, degree int, at float64) float64 {
	n := len(y)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return y[0]
	}
	if span < 2 {
		span = 2
	}
	lo, q, dmax := loessWindow(n, span, at)

	// Weighted least squares of the chosen degree via normal equations.
	var s [5]float64 // sums of w * x^k, k = 0..4
	var t [3]float64 // sums of w * y * x^k, k = 0..2
	for j := lo; j < lo+q; j++ {
		d := math.Abs(float64(j) - at)
		u := d / dmax
		if u >= 1 {
			continue
		}
		w := 1 - u*u*u
		w = w * w * w
		if rho != nil {
			w *= rho[j]
		}
		if w <= 0 {
			continue
		}
		x := float64(j) - at // center on the evaluation point
		xp := 1.0
		for k := 0; k <= 2*degree; k++ {
			s[k] += w * xp
			if k <= degree {
				t[k] += w * y[j] * xp
			}
			xp *= x
		}
	}
	return solveLocalFit(y, lo, q, degree, &s, &t)
}

// solveLocalFit turns the accumulated normal-equation sums into the fitted
// value at the (centered) evaluation point.
func solveLocalFit(y []float64, lo, q, degree int, s *[5]float64, t *[3]float64) float64 {
	if s[0] == 0 {
		// All weights vanished (can happen when robustness weights zero out
		// the whole window); fall back to the unweighted window mean.
		sum := 0.0
		for j := lo; j < lo+q; j++ {
			sum += y[j]
		}
		return sum / float64(q)
	}
	switch degree {
	case 0:
		return t[0] / s[0]
	case 1:
		det := s[0]*s[2] - s[1]*s[1]
		if det == 0 {
			return t[0] / s[0]
		}
		// Since x is centered at the evaluation point, the intercept is
		// the fitted value.
		return (t[0]*s[2] - t[1]*s[1]) / det
	case 2:
		a, b, c := s[0], s[1], s[2]
		d, e, f := s[1], s[2], s[3]
		g, h, i := s[2], s[3], s[4]
		det := a*(e*i-f*h) - b*(d*i-f*g) + c*(d*h-e*g)
		if det == 0 {
			return t[0] / s[0]
		}
		// Cramer's rule for the intercept coefficient only.
		det0 := t[0]*(e*i-f*h) - b*(t[1]*i-f*t[2]) + c*(t[1]*h-e*t[2])
		return det0 / det
	default:
		panic(fmt.Sprintf("stl: unsupported loess degree %d", degree))
	}
}

// Loess smooths y with locally weighted regression, returning the fitted
// value at every position. span is the neighbourhood size in points and
// degree the local polynomial degree (0, 1 or 2). rho may be nil.
func Loess(y []float64, span, degree int, rho []float64) []float64 {
	var ws Workspace
	out := make([]float64, len(y))
	ws.loessInto(out, y, span, degree, rho)
	return out
}

// loessInto fills dst (len(y)) with the LOESS smoothing of y. Interior
// points — where the window is centered and the bandwidth is the common
// interior dmax — share one precomputed tricube weight table and a
// degree-specialized accumulation loop; edge points (and degrees other
// than 1) fall back to the general one-shot fit. Both paths perform the
// same floating-point operations in the same order as the historic
// per-point fit, so the output is bit-identical.
func (ws *Workspace) loessInto(dst, y []float64, span, degree int, rho []float64) {
	n := len(y)
	if n == 0 {
		return
	}
	if n == 1 {
		dst[0] = y[0]
		return
	}
	if span < 2 {
		span = 2
	}
	// The table covers the bandwidth of a mid-series point; every point
	// whose window computation lands on the same dmax can use it.
	_, _, tabDmax := loessWindow(n, span, float64(n/2))
	var tab []float64
	if degree == 1 {
		nd := int(tabDmax) + 1
		if nd > 0 && nd <= n+1 {
			tab = resize(&ws.tricube, nd)
			for d := 0; d < nd; d++ {
				u := float64(d) / tabDmax
				if u >= 1 {
					tab[d] = 0
					continue
				}
				w := 1 - u*u*u
				tab[d] = w * w * w
			}
		}
	}
	for i := 0; i < n; i++ {
		at := float64(i)
		lo, q, dmax := loessWindow(n, span, at)
		if tab == nil || dmax != tabDmax || float64(int(dmax)) != dmax {
			dst[i] = loessFitAt(y, rho, span, degree, at)
			continue
		}
		// Fast path: degree-1 fit with table-driven tricube weights. The
		// accumulation mirrors the generic power loop term by term:
		// s0 += w*1, t0 += (w*y)*1, s1 += w*x, t1 += (w*y)*x, s2 += w*(x*x).
		var s0, s1, s2, t0, t1 float64
		for j := lo; j < lo+q; j++ {
			d := j - i
			if d < 0 {
				d = -d
			}
			w := tab[d]
			if w == 0 {
				continue
			}
			if rho != nil {
				w *= rho[j]
				if w <= 0 {
					continue
				}
			}
			x := float64(j - i)
			wy := w * y[j]
			s0 += w
			t0 += wy
			s1 += w * x
			t1 += wy * x
			s2 += w * (x * x)
		}
		s := [5]float64{s0, s1, s2}
		t := [3]float64{t0, t1}
		dst[i] = solveLocalFit(y, lo, q, 1, &s, &t)
	}
}

// movingAverage returns the simple moving average of y with window m; the
// result has len(y)-m+1 points.
func movingAverage(y []float64, m int) []float64 {
	n := len(y)
	if m <= 0 || m > n {
		return nil
	}
	out := make([]float64, n-m+1)
	movingAverageFill(out, y, m)
	return out
}

// movingAverageInto is movingAverage writing into *buf, reusing capacity.
func movingAverageInto(buf *[]float64, y []float64, m int) []float64 {
	n := len(y)
	if m <= 0 || m > n {
		return nil
	}
	out := resize(buf, n-m+1)
	movingAverageFill(out, y, m)
	return out
}

func movingAverageFill(out, y []float64, m int) {
	n := len(y)
	sum := 0.0
	for i := 0; i < m; i++ {
		sum += y[i]
	}
	out[0] = sum / float64(m)
	for i := m; i < n; i++ {
		sum += y[i] - y[i-m]
		out[i-m+1] = sum / float64(m)
	}
}

// nextOdd returns the smallest odd integer >= v (and >= 3).
func nextOdd(v float64) int {
	n := int(math.Ceil(v))
	if n < 3 {
		n = 3
	}
	if n%2 == 0 {
		n++
	}
	return n
}
