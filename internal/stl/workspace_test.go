package stl

import (
	"math"
	"math/rand"
	"testing"
)

func noisySeasonal(n, period int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	y := make([]float64, n)
	for i := range y {
		y[i] = 30 + 0.01*float64(i) + 8*math.Sin(2*math.Pi*float64(i)/float64(period)) + rng.NormFloat64()
	}
	return y
}

// TestLoessIntoMatchesFitAt pins the interior fast path to the one-shot
// fit: the table-driven degree-1 accumulation must reproduce loessFitAt
// bit for bit at every position, with and without robustness weights.
func TestLoessIntoMatchesFitAt(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{5, 24, 101, 672} {
		y := noisySeasonal(n, 24, int64(n))
		rho := make([]float64, n)
		for i := range rho {
			rho[i] = rng.Float64()
		}
		for _, span := range []int{5, 25, n + 25} {
			for _, degree := range []int{0, 1, 2} {
				for _, r := range [][]float64{nil, rho} {
					got := Loess(y, span, degree, r)
					for i := range got {
						want := loessFitAt(y, r, span, degree, float64(i))
						if got[i] != want {
							t.Fatalf("n=%d span=%d deg=%d rho=%v i=%d: Loess %v != fitAt %v",
								n, span, degree, r != nil, i, got[i], want)
						}
					}
				}
			}
		}
	}
}

// TestDecomposeIntoMatchesDecompose checks that a reused workspace and
// recycled Result reproduce the one-shot decomposition bit for bit, across
// interleaved series lengths.
func TestDecomposeIntoMatchesDecompose(t *testing.T) {
	var ws Workspace
	var res Result
	for _, tc := range []struct{ n, period int }{
		{24 * 14, 24}, {168 * 4, 168}, {24 * 14, 24}, {168 * 8, 168},
	} {
		y := noisySeasonal(tc.n, tc.period, int64(tc.n+tc.period))
		opts := DefaultOpts(tc.period)
		opts.Outer = 2
		want, err := Decompose(y, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := ws.DecomposeInto(&res, y, opts); err != nil {
			t.Fatal(err)
		}
		for i := range want.Trend {
			if res.Trend[i] != want.Trend[i] || res.Seasonal[i] != want.Seasonal[i] || res.Resid[i] != want.Resid[i] {
				t.Fatalf("n=%d period=%d i=%d: workspace decomposition differs from one-shot", tc.n, tc.period, i)
			}
		}
	}
}

// TestDecomposeIntoPeriodicMatches covers the periodic-seasonal variant
// the pipeline actually runs (core.analyzeTrend sets Periodic).
func TestDecomposeIntoPeriodicMatches(t *testing.T) {
	y := noisySeasonal(168*8, 168, 5)
	opts := DefaultOpts(168)
	opts.Periodic = true
	opts.Trend = 168 + 25
	want, err := Decompose(y, opts)
	if err != nil {
		t.Fatal(err)
	}
	var ws Workspace
	var res Result
	for round := 0; round < 2; round++ { // second round runs fully warm
		if err := ws.DecomposeInto(&res, y, opts); err != nil {
			t.Fatal(err)
		}
		for i := range want.Trend {
			if res.Trend[i] != want.Trend[i] || res.Seasonal[i] != want.Seasonal[i] {
				t.Fatalf("round %d i=%d: periodic decomposition differs", round, i)
			}
		}
	}
}

// TestDecomposeSteadyStateAllocs checks that a warm workspace with a
// recycled Result decomposes without allocating.
func TestDecomposeSteadyStateAllocs(t *testing.T) {
	y := noisySeasonal(168*8, 168, 6)
	opts := DefaultOpts(168)
	opts.Periodic = true
	var ws Workspace
	var res Result
	if err := ws.DecomposeInto(&res, y, opts); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(20, func() {
		if err := ws.DecomposeInto(&res, y, opts); err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Errorf("warm DecomposeInto allocates %.0f times per call", n)
	}
}

// BenchmarkSTLDecompose measures the pipeline's STL configuration (8 weeks
// hourly, weekly periodic seasonal, one robustness pass) with a warm
// workspace.
func BenchmarkSTLDecompose(b *testing.B) {
	y := noisySeasonal(168*8, 168, 7)
	opts := DefaultOpts(168)
	opts.Periodic = true
	opts.Trend = 168 + 25
	opts.Outer = 1
	var ws Workspace
	var res Result
	if err := ws.DecomposeInto(&res, y, opts); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ws.DecomposeInto(&res, y, opts); err != nil {
			b.Fatal(err)
		}
	}
}
