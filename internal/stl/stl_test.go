package stl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// synth builds days*period samples of trend + daily sinusoid + noise.
func synth(days, period int, trendSlope, seasonalAmp, noiseSD float64, seed int64) (y, trueTrend, trueSeasonal []float64) {
	rng := rand.New(rand.NewSource(seed))
	n := days * period
	y = make([]float64, n)
	trueTrend = make([]float64, n)
	trueSeasonal = make([]float64, n)
	for i := 0; i < n; i++ {
		trueTrend[i] = 10 + trendSlope*float64(i)
		trueSeasonal[i] = seasonalAmp * math.Sin(2*math.Pi*float64(i%period)/float64(period))
		y[i] = trueTrend[i] + trueSeasonal[i] + noiseSD*rng.NormFloat64()
	}
	return y, trueTrend, trueSeasonal
}

func rmse(a, b []float64, skip int) float64 {
	s := 0.0
	n := 0
	for i := skip; i < len(a)-skip; i++ {
		d := a[i] - b[i]
		s += d * d
		n++
	}
	return math.Sqrt(s / float64(n))
}

func TestLoessConstant(t *testing.T) {
	y := []float64{5, 5, 5, 5, 5, 5, 5}
	for _, deg := range []int{0, 1, 2} {
		for i, v := range Loess(y, 5, deg, nil) {
			if math.Abs(v-5) > 1e-9 {
				t.Fatalf("deg %d idx %d: %g, want 5", deg, i, v)
			}
		}
	}
}

func TestLoessLinearExact(t *testing.T) {
	// Degree-1 LOESS reproduces a straight line exactly.
	n := 50
	y := make([]float64, n)
	for i := range y {
		y[i] = 3 + 2*float64(i)
	}
	for i, v := range Loess(y, 11, 1, nil) {
		if math.Abs(v-y[i]) > 1e-8 {
			t.Fatalf("idx %d: %g, want %g", i, v, y[i])
		}
	}
}

func TestLoessQuadraticExactDeg2(t *testing.T) {
	n := 60
	y := make([]float64, n)
	for i := range y {
		x := float64(i)
		y[i] = 1 + 0.5*x + 0.02*x*x
	}
	for i, v := range Loess(y, 15, 2, nil) {
		if math.Abs(v-y[i]) > 1e-6 {
			t.Fatalf("idx %d: %g, want %g", i, v, y[i])
		}
	}
}

func TestLoessSmoothsNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 200
	y := make([]float64, n)
	for i := range y {
		y[i] = 10 + rng.NormFloat64()
	}
	sm := Loess(y, 41, 1, nil)
	varIn, varOut := 0.0, 0.0
	for i := range y {
		varIn += (y[i] - 10) * (y[i] - 10)
		varOut += (sm[i] - 10) * (sm[i] - 10)
	}
	if varOut >= varIn/4 {
		t.Fatalf("smoothing did not reduce variance enough: in=%g out=%g", varIn, varOut)
	}
}

func TestLoessRobustnessWeightsZeroOutOutlier(t *testing.T) {
	// Giving an outlier zero rho weight should pull the fit back to the
	// underlying line.
	n := 21
	y := make([]float64, n)
	rho := make([]float64, n)
	for i := range y {
		y[i] = float64(i)
		rho[i] = 1
	}
	y[10] = 1000
	plain := loessFitAt(y, nil, 7, 1, 10)
	rho[10] = 0
	robust := loessFitAt(y, rho, 7, 1, 10)
	if math.Abs(robust-10) > 0.5 {
		t.Fatalf("robust fit at outlier = %g, want ~10", robust)
	}
	if plain < 100 {
		t.Fatalf("plain fit should be dragged by outlier, got %g", plain)
	}
}

func TestLoessExtrapolation(t *testing.T) {
	// Extrapolating a line one step beyond each end stays on the line.
	n := 10
	y := make([]float64, n)
	for i := range y {
		y[i] = 2 * float64(i)
	}
	if v := loessFitAt(y, nil, 5, 1, -1); math.Abs(v-(-2)) > 1e-8 {
		t.Fatalf("left extrapolation = %g, want -2", v)
	}
	if v := loessFitAt(y, nil, 5, 1, float64(n)); math.Abs(v-20) > 1e-8 {
		t.Fatalf("right extrapolation = %g, want 20", v)
	}
}

func TestLoessSingleAndEmpty(t *testing.T) {
	if v := loessFitAt([]float64{7}, nil, 5, 1, 0); v != 7 {
		t.Fatalf("single point fit = %g", v)
	}
	if v := loessFitAt(nil, nil, 5, 1, 0); v != 0 {
		t.Fatalf("empty fit = %g", v)
	}
}

func TestLoessAllWeightsZeroFallback(t *testing.T) {
	y := []float64{1, 2, 3, 4, 5}
	rho := []float64{0, 0, 0, 0, 0}
	v := loessFitAt(y, rho, 5, 1, 2)
	if math.Abs(v-3) > 1e-9 {
		t.Fatalf("fallback fit = %g, want window mean 3", v)
	}
}

func TestMovingAverage(t *testing.T) {
	y := []float64{1, 2, 3, 4, 5}
	got := movingAverage(y, 3)
	want := []float64{2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("len=%d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("ma[%d]=%g, want %g", i, got[i], want[i])
		}
	}
	if movingAverage(y, 6) != nil || movingAverage(y, 0) != nil {
		t.Fatal("out-of-range windows should return nil")
	}
}

func TestNextOdd(t *testing.T) {
	cases := []struct {
		in   float64
		want int
	}{{1, 3}, {3, 3}, {3.1, 5}, {4, 5}, {7, 7}, {7.5, 9}}
	for _, c := range cases {
		if got := nextOdd(c.in); got != c.want {
			t.Errorf("nextOdd(%g)=%d, want %d", c.in, got, c.want)
		}
	}
}

func TestDecomposeAdditiveIdentity(t *testing.T) {
	// Property: trend + seasonal + resid reconstructs the input exactly.
	f := func(seed int64) bool {
		y, _, _ := synth(8, 24, 0.01, 5, 1, seed)
		res, err := Decompose(y, DefaultOpts(24))
		if err != nil {
			return false
		}
		for i := range y {
			if math.Abs(res.Trend[i]+res.Seasonal[i]+res.Resid[i]-y[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestDecomposeRecoversTrendAndSeason(t *testing.T) {
	y, trueTrend, trueSeasonal := synth(21, 24, 0.02, 8, 0.5, 9)
	res, err := Decompose(y, DefaultOpts(24))
	if err != nil {
		t.Fatal(err)
	}
	if e := rmse(res.Trend, trueTrend, 24); e > 1.0 {
		t.Errorf("trend RMSE = %g, want <= 1.0", e)
	}
	if e := rmse(res.Seasonal, trueSeasonal, 24); e > 1.0 {
		t.Errorf("seasonal RMSE = %g, want <= 1.0", e)
	}
}

func TestDecomposeLevelShiftFollowed(t *testing.T) {
	// A mid-series level drop (the WFH signature) must appear in the
	// trend component within a few days.
	period := 24
	days := 28
	n := days * period
	y := make([]float64, n)
	for i := range y {
		base := 20.0
		if i >= n/2 {
			base = 8.0
		}
		y[i] = base + 6*math.Sin(2*math.Pi*float64(i%period)/float64(period))
	}
	res, err := Decompose(y, DefaultOpts(period))
	if err != nil {
		t.Fatal(err)
	}
	early := res.Trend[n/4]
	late := res.Trend[3*n/4]
	if early-late < 8 {
		t.Fatalf("trend drop = %g, want >= 8 (early=%g late=%g)", early-late, early, late)
	}
}

func TestDecomposeSeasonalDisappearance(t *testing.T) {
	// When the diurnal swing disappears mid-series the trend must move
	// toward the new flat level rather than keep oscillating.
	period := 24
	days := 28
	n := days * period
	y := make([]float64, n)
	for i := range y {
		if i < n/2 {
			y[i] = 12 + 10*math.Max(0, math.Sin(2*math.Pi*float64(i%period)/float64(period)))
		} else {
			y[i] = 12
		}
	}
	res, err := Decompose(y, DefaultOpts(period))
	if err != nil {
		t.Fatal(err)
	}
	// Mean absolute residual should stay moderate, and the late trend
	// should be near 12.
	if math.Abs(res.Trend[7*n/8]-12) > 2 {
		t.Fatalf("late trend = %g, want ~12", res.Trend[7*n/8])
	}
}

func TestDecomposeRobustToOutliers(t *testing.T) {
	// With robustness iterations, isolated spikes should perturb the
	// trend less than without them.
	y, trueTrend, _ := synth(21, 24, 0, 5, 0.3, 13)
	rng := rand.New(rand.NewSource(14))
	for k := 0; k < 10; k++ {
		y[rng.Intn(len(y))] += 80
	}
	optsRobust := DefaultOpts(24)
	optsRobust.Outer = 2
	optsPlain := DefaultOpts(24)
	optsPlain.Outer = 0
	robust, err := Decompose(y, optsRobust)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Decompose(y, optsPlain)
	if err != nil {
		t.Fatal(err)
	}
	eR := rmse(robust.Trend, trueTrend, 24)
	eP := rmse(plain.Trend, trueTrend, 24)
	if eR >= eP {
		t.Fatalf("robust trend RMSE %g should beat plain %g", eR, eP)
	}
}

func TestDecomposeErrors(t *testing.T) {
	if _, err := Decompose(make([]float64, 10), Opts{Period: 1}); err == nil {
		t.Error("expected error for period < 2")
	}
	if _, err := Decompose(make([]float64, 10), Opts{Period: 24}); err == nil {
		t.Error("expected error for too-short series")
	}
	o := DefaultOpts(24)
	o.Seasonal = 8
	if _, err := Decompose(make([]float64, 96), o); err == nil {
		t.Error("expected error for even seasonal span")
	}
	o = DefaultOpts(24)
	o.Outer = -1
	if _, err := Decompose(make([]float64, 96), o); err == nil {
		t.Error("expected error for negative outer")
	}
	o = DefaultOpts(24)
	o.TrendDeg = 3
	if _, err := Decompose(make([]float64, 96), o); err == nil {
		t.Error("expected error for degree 3")
	}
}

func TestNaiveDecomposeIdentityAndShape(t *testing.T) {
	y, trueTrend, trueSeasonal := synth(14, 24, 0.02, 8, 0.3, 21)
	res, err := NaiveDecompose(y, 24)
	if err != nil {
		t.Fatal(err)
	}
	for i := range y {
		if math.Abs(res.Trend[i]+res.Seasonal[i]+res.Resid[i]-y[i]) > 1e-9 {
			t.Fatalf("identity violated at %d", i)
		}
	}
	if e := rmse(res.Trend, trueTrend, 24); e > 1.0 {
		t.Errorf("naive trend RMSE = %g", e)
	}
	if e := rmse(res.Seasonal, trueSeasonal, 24); e > 1.5 {
		t.Errorf("naive seasonal RMSE = %g", e)
	}
}

func TestNaiveDecomposeSeasonalSumsToZero(t *testing.T) {
	y, _, _ := synth(14, 24, 0, 5, 1, 22)
	res, err := NaiveDecompose(y, 24)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for p := 0; p < 24; p++ {
		sum += res.Seasonal[p]
	}
	if math.Abs(sum) > 1e-9 {
		t.Fatalf("seasonal period sum = %g, want 0", sum)
	}
}

func TestNaiveDecomposeErrors(t *testing.T) {
	if _, err := NaiveDecompose(make([]float64, 10), 1); err == nil {
		t.Error("expected error for period < 2")
	}
	if _, err := NaiveDecompose(make([]float64, 10), 24); err == nil {
		t.Error("expected error for short series")
	}
}

func TestNaiveVsSTLOutlierSensitivity(t *testing.T) {
	// The paper adopts STL over the naive model because it is "more
	// robust to outliers" — verify that claim holds in this
	// implementation.
	y, trueTrend, _ := synth(21, 24, 0, 5, 0.3, 31)
	rng := rand.New(rand.NewSource(32))
	for k := 0; k < 15; k++ {
		y[rng.Intn(len(y))] += 60
	}
	opts := DefaultOpts(24)
	opts.Outer = 2
	stlRes, err := Decompose(y, opts)
	if err != nil {
		t.Fatal(err)
	}
	naiveRes, err := NaiveDecompose(y, 24)
	if err != nil {
		t.Fatal(err)
	}
	eSTL := rmse(stlRes.Trend, trueTrend, 24)
	eNaive := rmse(naiveRes.Trend, trueTrend, 24)
	if eSTL >= eNaive {
		t.Fatalf("STL trend RMSE %g should beat naive %g under outliers", eSTL, eNaive)
	}
}

func BenchmarkDecomposeMonthHourly(b *testing.B) {
	y, _, _ := synth(28, 24, 0.01, 6, 0.5, 41)
	opts := DefaultOpts(24)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompose(y, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNaiveDecomposeMonthHourly(b *testing.B) {
	y, _, _ := synth(28, 24, 0.01, 6, 0.5, 42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NaiveDecompose(y, 24); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPeriodicSeasonalConstantShape(t *testing.T) {
	// With Periodic set, the seasonal component repeats the same cycle
	// everywhere, even when the signal's amplitude halves mid-series.
	period := 24
	n := 28 * period
	y := make([]float64, n)
	for i := range y {
		amp := 10.0
		if i >= n/2 {
			amp = 0 // diurnal pattern disappears (the WFH signature)
		}
		// One-sided daytime bump (mean amp/2), like work-hours activity.
		bump := math.Max(0, math.Sin(2*math.Pi*float64(i%period)/float64(period)))
		y[i] = 10 + amp*bump
	}
	opts := DefaultOpts(period)
	opts.Periodic = true
	res, err := Decompose(y, opts)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < period; p++ {
		first := res.Seasonal[p+period]
		last := res.Seasonal[p+(n/period-2)*period]
		if math.Abs(first-last) > 1e-6 {
			t.Fatalf("periodic seasonal differs across cycles at phase %d: %g vs %g", p, first, last)
		}
	}
	// The level change (mean 10+10/pi -> 10) must land in the trend.
	if res.Trend[n/4]-res.Trend[3*n/4] < 2 {
		t.Fatalf("periodic trend = %.1f / %.1f, want a clear drop", res.Trend[n/4], res.Trend[3*n/4])
	}
}

func TestPeriodicSharperStepThanAdaptive(t *testing.T) {
	// The periodic seasonal pushes a level change entirely into the
	// trend, so the transition is narrower than with the adaptive
	// seasonal — the property core relies on for CUSUM detection.
	period := 24 * 7
	n := 8 * period
	y := make([]float64, n)
	for i := range y {
		v := 4.0
		hour := i % 24
		day := (i / 24) % 7
		if i < n/2 && hour >= 9 && hour < 17 && day >= 1 && day <= 5 {
			v = 20
		}
		y[i] = v
	}
	width := func(periodic bool) int {
		opts := DefaultOpts(period)
		opts.Periodic = periodic
		opts.Trend = period + 25
		res, err := Decompose(y, opts)
		if err != nil {
			t.Fatal(err)
		}
		hi, lo := res.Trend[n/4], res.Trend[7*n/8]
		upper := lo + 0.9*(hi-lo)
		lower := lo + 0.1*(hi-lo)
		first, last := -1, -1
		for i, v := range res.Trend {
			if first < 0 && v < upper && i > n/4 {
				first = i
			}
			if v > lower && i > n/4 {
				last = i
			}
		}
		return last - first
	}
	if wp, wa := width(true), width(false); wp > wa {
		t.Fatalf("periodic transition (%d samples) should be no wider than adaptive (%d)", wp, wa)
	}
}

func TestPeriodicRobustnessWeightsApplied(t *testing.T) {
	// An outlier should not drag the periodic seasonal means when
	// robustness iterations run.
	period := 24
	n := 21 * period
	y := make([]float64, n)
	for i := range y {
		y[i] = 10 + 5*math.Sin(2*math.Pi*float64(i%period)/float64(period))
	}
	y[10*period+3] += 500
	opts := DefaultOpts(period)
	opts.Periodic = true
	opts.Outer = 2
	res, err := Decompose(y, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Seasonal at the outlier's phase should stay near its true value.
	truth := 5 * math.Sin(2*math.Pi*3/float64(period))
	if got := res.Seasonal[period+3]; math.Abs(got-truth) > 1.0 {
		t.Fatalf("outlier dragged periodic seasonal: %g vs %g", got, truth)
	}
}
