package stl

import (
	"math"
	"math/rand"
	"testing"
)

// diurnalSeries builds n hourly samples of a noisy daily rhythm with a
// mid-series level drop.
func diurnalSeries(rng *rand.Rand, n int) []float64 {
	y := make([]float64, n)
	for i := range y {
		level := 50.0
		if i > n/2 {
			level = 35
		}
		y[i] = level + 10*math.Sin(2*math.Pi*float64(i)/24) + rng.NormFloat64()
	}
	return y
}

// TestWindowRefreshMatchesDecompose: Refresh is DecomposeInto plus settle
// tracking; its numerical output must be identical.
func TestWindowRefreshMatchesDecompose(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	y := diurnalSeries(rng, 24*28)
	opts := DefaultOpts(168)
	opts.Periodic = true
	want, err := Decompose(y, opts)
	if err != nil {
		t.Fatal(err)
	}
	var w Window
	got, err := w.Refresh(y, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Trend {
		if got.Trend[i] != want.Trend[i] {
			t.Fatalf("trend[%d]: Refresh %g != Decompose %g", i, got.Trend[i], want.Trend[i])
		}
	}
}

// TestWindowSettling grows the series refresh by refresh and checks that
// (a) the settled prefix is monotone nondecreasing, (b) it eventually
// advances past zero, and (c) every settled sample's trend stays within
// Eps of the final full-series trend — the property the streaming daemon
// relies on for early emission.
func TestWindowSettling(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const total = 24 * 7 * 8 // 8 weeks hourly
	y := diurnalSeries(rng, total)
	opts := DefaultOpts(168)
	opts.Periodic = true
	opts.Trend = 168 + 25

	w := Window{Eps: 0.05}
	var finalTrend []float64
	prevSettled := 0
	for n := 24 * 7 * 3; n <= total; n += 24 {
		res, err := w.Refresh(y[:n], opts)
		if err != nil {
			t.Fatal(err)
		}
		if s := w.Settled(); s < prevSettled {
			t.Fatalf("settled went backward: %d -> %d", prevSettled, s)
		} else {
			prevSettled = s
		}
		if n == total {
			finalTrend = append(finalTrend, res.Trend...)
		}
	}
	if prevSettled == 0 {
		t.Fatal("settled prefix never advanced")
	}
	// Rewind: replay the refreshes and verify the settled prefix never
	// drifts far from the final trend. With a Periodic seasonal, growing
	// the series redistributes level between trend and seasonal globally,
	// so settled samples do creep — but the creep must stay far below the
	// 15-address level drop the detector is looking for, or early
	// emission from the settled prefix would be unsound.
	w2 := Window{Eps: 0.05}
	for n := 24 * 7 * 3; n <= total; n += 24 {
		if _, err := w2.Refresh(y[:n], opts); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < w2.Settled(); i++ {
			if d := math.Abs(w2.prev[i] - finalTrend[i]); d > 2.0 {
				t.Fatalf("settled sample %d (frontier %d at n=%d) drifted %g vs final trend", i, w2.Settled(), n, d)
			}
		}
	}
}

// TestWindowReset clears history so a restarted tracker re-settles from
// scratch.
func TestWindowReset(t *testing.T) {
	var w Window
	w.Observe([]float64{1, 2, 3})
	w.Observe([]float64{1, 2, 3, 4})
	w.Reset()
	if w.Settled() != 0 || len(w.prev) != 0 {
		t.Fatalf("Reset left state: %v", w.String())
	}
}

// TestWindowLagGuard: with the default lag the frontier trails the quiet
// prefix by DefaultSettleLag; with Lag < 0 it does not.
func TestWindowLagGuard(t *testing.T) {
	trend := make([]float64, 300)
	guarded := Window{}
	guarded.Observe(trend)
	guarded.Observe(trend) // fully quiet
	if got, want := guarded.Settled(), 300-DefaultSettleLag; got != want {
		t.Errorf("guarded settled = %d, want %d", got, want)
	}
	eager := Window{Lag: -1}
	eager.Observe(trend)
	eager.Observe(trend)
	if got := eager.Settled(); got != 300 {
		t.Errorf("unguarded settled = %d, want 300", got)
	}
}
