package stl

import (
	"fmt"
	"math"
	"sort"
)

// Opts configures an STL decomposition. The zero value is not usable; use
// DefaultOpts(period) and override fields as needed.
type Opts struct {
	// Period is the number of samples per seasonal cycle (e.g. 24 for
	// hourly samples with a daily cycle). Must be >= 2.
	Period int
	// Seasonal is the LOESS span for cycle-subseries smoothing (odd, >= 7).
	Seasonal int
	// Trend is the LOESS span for trend smoothing (odd). When zero it
	// defaults to the smallest odd integer >= 1.5*Period/(1-1.5/Seasonal).
	Trend int
	// Lowpass is the LOESS span of the low-pass filter (odd). When zero it
	// defaults to the smallest odd integer >= Period.
	Lowpass int
	// SeasonalDeg, TrendDeg, LowpassDeg are the local polynomial degrees
	// (defaulting to 1, 1, 1).
	SeasonalDeg, TrendDeg, LowpassDeg int
	// Periodic forces the seasonal component to an identical cycle shape
	// across the whole series (the robustness-weighted mean of each
	// phase's subseries) instead of a slowly evolving one. Level changes
	// then fall entirely to the trend — the behaviour visible in the
	// paper's Figure 1b, where the seasonal keeps oscillating at full
	// amplitude after the WFH drop while the trend falls.
	Periodic bool
	// Inner is the number of inner-loop passes (default 2).
	Inner int
	// Outer is the number of robustness (outer) iterations (default 1;
	// use 0 to disable robustness weighting entirely).
	Outer int
}

// DefaultOpts returns the standard STL parameterization for the given
// period, matching the conventions of Cleveland et al. and the statsmodels
// implementation the paper used.
func DefaultOpts(period int) Opts {
	o := Opts{
		Period:      period,
		Seasonal:    7,
		SeasonalDeg: 1,
		TrendDeg:    1,
		LowpassDeg:  1,
		Inner:       2,
		Outer:       1,
	}
	o.Trend = nextOdd(1.5 * float64(period) / (1 - 1.5/float64(o.Seasonal)))
	o.Lowpass = nextOdd(float64(period))
	return o
}

// Result holds an additive decomposition y = Trend + Seasonal + Resid.
type Result struct {
	Trend    []float64
	Seasonal []float64
	Resid    []float64
	// Weights holds the final robustness weights (all 1 when Outer == 0).
	Weights []float64
}

// Workspace holds every scratch buffer an STL decomposition needs, so a
// worker that decomposes many series of the same length reuses its
// detrended/deseasonalized/extension/weight buffers across inner and outer
// iterations — and across calls — instead of reallocating them. The zero
// value is ready to use; buffers grow on demand and stick around. A
// Workspace is not safe for concurrent use: give each goroutine its own
// (the pipeline does, via core.Scratch).
type Workspace struct {
	trend, seasonal, rho []float64
	detrended, deseason  []float64
	c                    []float64 // extended cycle-subseries, n + 2*period
	ma1, ma2, ma3        []float64 // low-pass moving-average chain
	lp                   []float64 // low-pass LOESS output
	tr                   []float64 // trend LOESS output
	sub, subRho          []float64 // one phase's cycle subseries
	absResid, sortBuf    []float64 // robustness-weight intermediates
	tricube              []float64 // interior tricube weight table (loess)
}

// Decompose runs STL on y. It returns an error when the series is shorter
// than two full periods or the options are invalid. The one-shot form
// allocates a throwaway Workspace; hot paths should hold a Workspace and
// call its Decompose or DecomposeInto methods.
func Decompose(y []float64, opts Opts) (*Result, error) {
	var ws Workspace
	return ws.Decompose(y, opts)
}

// Decompose is the workspace form of the package-level Decompose: scratch
// buffers come from ws, and the returned Result holds freshly allocated
// slices the caller may retain.
func (ws *Workspace) Decompose(y []float64, opts Opts) (*Result, error) {
	res := &Result{}
	if err := ws.DecomposeInto(res, y, opts); err != nil {
		return nil, err
	}
	return res, nil
}

// DecomposeInto decomposes y into res, reusing both ws's scratch buffers
// and res's existing slice capacity; a caller that recycles the same
// Result allocates nothing in steady state. The result is bit-identical to
// the package-level Decompose.
func (ws *Workspace) DecomposeInto(res *Result, y []float64, opts Opts) error {
	n := len(y)
	if opts.Period < 2 {
		return fmt.Errorf("stl: period %d < 2", opts.Period)
	}
	if n < 2*opts.Period {
		return fmt.Errorf("stl: series of %d samples shorter than two periods (%d)", n, 2*opts.Period)
	}
	if opts.Seasonal == 0 {
		opts.Seasonal = 7
	}
	if opts.Seasonal < 3 || opts.Seasonal%2 == 0 {
		return fmt.Errorf("stl: seasonal span %d must be odd and >= 3", opts.Seasonal)
	}
	if opts.Trend == 0 {
		opts.Trend = nextOdd(1.5 * float64(opts.Period) / (1 - 1.5/float64(opts.Seasonal)))
	}
	if opts.Lowpass == 0 {
		opts.Lowpass = nextOdd(float64(opts.Period))
	}
	if opts.Inner <= 0 {
		opts.Inner = 2
	}
	if opts.Outer < 0 {
		return fmt.Errorf("stl: negative outer iterations")
	}
	if opts.SeasonalDeg < 0 || opts.SeasonalDeg > 2 ||
		opts.TrendDeg < 0 || opts.TrendDeg > 2 ||
		opts.LowpassDeg < 0 || opts.LowpassDeg > 2 {
		return fmt.Errorf("stl: loess degrees must be 0, 1 or 2")
	}

	np := opts.Period
	trend := resizeZero(&ws.trend, n)
	seasonal := resizeZero(&ws.seasonal, n)
	rho := resize(&ws.rho, n)
	for i := range rho {
		rho[i] = 1
	}
	detrended := resize(&ws.detrended, n)
	deseason := resize(&ws.deseason, n)

	for outer := 0; ; outer++ {
		for inner := 0; inner < opts.Inner; inner++ {
			// Step 1: detrend.
			for i := range y {
				detrended[i] = y[i] - trend[i]
			}
			// Step 2: cycle-subseries smoothing, extended one period on
			// each side (length n + 2*np).
			var c []float64
			if opts.Periodic {
				c = ws.cycleSubseriesPeriodic(detrended, rho, np)
			} else {
				c = ws.cycleSubseriesSmooth(detrended, rho, np, opts.Seasonal, opts.SeasonalDeg)
			}
			// Step 3: low-pass filtering of the smoothed cycle-subseries.
			l := ws.lowPass(c, np, opts.Lowpass, opts.LowpassDeg)
			// Step 4: seasonal = middle of C minus low-pass.
			for i := 0; i < n; i++ {
				seasonal[i] = c[i+np] - l[i]
			}
			// Step 5: deseasonalize.
			for i := range y {
				deseason[i] = y[i] - seasonal[i]
			}
			// Step 6: trend smoothing.
			tr := resize(&ws.tr, n)
			ws.loessInto(tr, deseason, opts.Trend, opts.TrendDeg, rho)
			copy(trend, tr)
		}
		if outer >= opts.Outer {
			break
		}
		// Robustness weights from the residuals (bisquare).
		ws.updateRobustnessWeights(y, trend, seasonal, rho)
	}

	res.Trend = setSlice(res.Trend, trend)
	res.Seasonal = setSlice(res.Seasonal, seasonal)
	res.Weights = setSlice(res.Weights, rho)
	res.Resid = resize(&res.Resid, n)
	for i := range y {
		res.Resid[i] = y[i] - trend[i] - seasonal[i]
	}
	return nil
}

// cycleSubseriesSmooth smooths each phase's subseries with LOESS and
// extends it by one period on each side, returning a series of length
// len(y) + 2*period (backed by ws.c).
func (ws *Workspace) cycleSubseriesSmooth(y, rho []float64, period, span, degree int) []float64 {
	n := len(y)
	out := resizeZero(&ws.c, n+2*period)
	sub := ws.sub[:0]
	subRho := ws.subRho[:0]
	for phase := 0; phase < period; phase++ {
		sub = sub[:0]
		subRho = subRho[:0]
		for i := phase; i < n; i += period {
			sub = append(sub, y[i])
			subRho = append(subRho, rho[i])
		}
		m := len(sub)
		// Fitted values at subseries positions -1 .. m (m+2 values): the
		// extensions provide the pre- and post-period padding.
		for k := -1; k <= m; k++ {
			v := loessFitAt(sub, subRho, span, degree, float64(k))
			pos := phase + (k+1)*period
			if pos >= 0 && pos < len(out) {
				out[pos] = v
			}
		}
	}
	ws.sub, ws.subRho = sub, subRho
	return out
}

// cycleSubseriesPeriodic replaces each phase's subseries with its
// robustness-weighted mean, extended one period on each side — the
// "periodic" seasonal option. The result is backed by ws.c.
func (ws *Workspace) cycleSubseriesPeriodic(y, rho []float64, period int) []float64 {
	n := len(y)
	out := resizeZero(&ws.c, n+2*period)
	for phase := 0; phase < period; phase++ {
		var sum, wsum float64
		for i := phase; i < n; i += period {
			w := rho[i]
			sum += w * y[i]
			wsum += w
		}
		var mean float64
		if wsum > 0 {
			mean = sum / wsum
		} else {
			// All weights zeroed (an outlier dragged the whole phase's
			// residuals): fall back to the subseries median, which the
			// outlier cannot drag.
			vals := ws.sub[:0]
			for i := phase; i < n; i += period {
				vals = append(vals, y[i])
			}
			if len(vals) > 0 {
				sort.Float64s(vals)
				mean = vals[len(vals)/2]
			}
			ws.sub = vals
		}
		for pos := phase; pos < len(out); pos += period {
			out[pos] = mean
		}
	}
	return out
}

// lowPass applies STL's low-pass filter to the extended cycle-subseries c
// (length n+2*period): two moving averages of length period, one of length
// 3, then a LOESS smoothing with the given span. The result has length
// len(c) - 2*period and is backed by ws.lp.
func (ws *Workspace) lowPass(c []float64, period, span, degree int) []float64 {
	ma1 := movingAverageInto(&ws.ma1, c, period)   // len: n+period+1
	ma2 := movingAverageInto(&ws.ma2, ma1, period) // len: n+2
	ma3 := movingAverageInto(&ws.ma3, ma2, 3)      // len: n
	lp := resize(&ws.lp, len(ma3))
	ws.loessInto(lp, ma3, span, degree, nil)
	return lp
}

// updateRobustnessWeights recomputes rho in place using the bisquare
// function of |residual| scaled by six times the median absolute residual.
func (ws *Workspace) updateRobustnessWeights(y, trend, seasonal, rho []float64) {
	n := len(y)
	absResid := resize(&ws.absResid, n)
	for i := range y {
		absResid[i] = math.Abs(y[i] - trend[i] - seasonal[i])
	}
	sorted := resize(&ws.sortBuf, n)
	copy(sorted, absResid)
	sort.Float64s(sorted)
	var med float64
	if n%2 == 1 {
		med = sorted[n/2]
	} else {
		med = (sorted[n/2-1] + sorted[n/2]) / 2
	}
	h := 6 * med
	if h <= 0 {
		for i := range rho {
			rho[i] = 1
		}
		return
	}
	for i := range rho {
		u := absResid[i] / h
		if u >= 1 {
			rho[i] = 0
			continue
		}
		w := 1 - u*u
		rho[i] = w * w
	}
}

// resize returns *buf with length n, reusing capacity; contents are
// unspecified.
func resize(buf *[]float64, n int) []float64 {
	if cap(*buf) >= n {
		*buf = (*buf)[:n]
	} else {
		*buf = make([]float64, n)
	}
	return *buf
}

// resizeZero returns *buf with length n and every element zeroed, matching
// the freshly allocated slices the pre-workspace code used.
func resizeZero(buf *[]float64, n int) []float64 {
	b := resize(buf, n)
	for i := range b {
		b[i] = 0
	}
	return b
}

// setSlice copies src into dst, reusing dst's capacity.
func setSlice(dst, src []float64) []float64 {
	if cap(dst) >= len(src) {
		dst = dst[:len(src)]
	} else {
		dst = make([]float64, len(src))
	}
	copy(dst, src)
	return dst
}

// NaiveDecompose implements the classical moving-average seasonal
// decomposition ("naive" seasonality model, paper §2.5): the trend is a
// centered moving average over one period, the seasonal component is the
// per-phase mean of the detrended series (re-centered to sum to zero), and
// the residual is the remainder. It is cheaper than STL but sensitive to
// outliers, which is why the paper adopts STL.
func NaiveDecompose(y []float64, period int) (*Result, error) {
	n := len(y)
	if period < 2 {
		return nil, fmt.Errorf("stl: period %d < 2", period)
	}
	if n < 2*period {
		return nil, fmt.Errorf("stl: series of %d samples shorter than two periods (%d)", n, 2*period)
	}
	trend := make([]float64, n)
	// Centered moving average; for even periods use the standard 2xMA.
	half := period / 2
	var ma []float64
	if period%2 == 1 {
		ma = movingAverage(y, period)
	} else {
		ma = movingAverage(movingAverage(y, period), 2)
	}
	for i := range ma {
		trend[i+half] = ma[i]
	}
	// Extend the trend flat at the edges.
	for i := 0; i < half; i++ {
		trend[i] = trend[half]
	}
	for i := half + len(ma); i < n; i++ {
		trend[i] = trend[half+len(ma)-1]
	}

	// Per-phase means of the detrended series.
	phaseSum := make([]float64, period)
	phaseCount := make([]int, period)
	for i := range y {
		phaseSum[i%period] += y[i] - trend[i]
		phaseCount[i%period]++
	}
	phaseMean := make([]float64, period)
	total := 0.0
	for p := range phaseMean {
		if phaseCount[p] > 0 {
			phaseMean[p] = phaseSum[p] / float64(phaseCount[p])
		}
		total += phaseMean[p]
	}
	center := total / float64(period)
	for p := range phaseMean {
		phaseMean[p] -= center
	}

	res := &Result{
		Trend:    trend,
		Seasonal: make([]float64, n),
		Resid:    make([]float64, n),
		Weights:  make([]float64, n),
	}
	for i := range y {
		res.Seasonal[i] = phaseMean[i%period]
		res.Resid[i] = y[i] - trend[i] - res.Seasonal[i]
		res.Weights[i] = 1
	}
	return res, nil
}
