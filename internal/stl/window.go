package stl

// Windowed refresh for the streaming daemon. STL is a whole-series
// smoother: appending samples perturbs the trend near the new edge, so a
// daemon re-decomposing a growing series cannot treat the latest trend as
// final everywhere. Window runs the refreshes and tracks the *settled
// prefix* — the leading samples whose trend value stopped moving between
// consecutive refreshes — which is what an online change detector may
// safely consume early. Settling is a heuristic (a sample quiet between
// two refreshes can still move later, which is why the tolerance is
// paired with a lag guard); authoritative verdicts always come from the
// final full-window decomposition.

import "fmt"

// DefaultSettleLag is the guard distance held back from the settled
// frontier: roughly the trend smoother's half-width for the pipeline's
// weekly period, past which edge effects from appended data no longer
// reach in practice.
const DefaultSettleLag = 96

// Window tracks successive decompositions of a growing series and the
// prefix of the trend that has stopped moving. Not safe for concurrent
// use.
type Window struct {
	// Eps is the per-sample absolute trend tolerance: a sample is quiet
	// when its trend moved less than Eps since the previous refresh.
	// Zero means exact equality.
	Eps float64
	// Lag holds the settled frontier this many samples behind the last
	// quiet sample (negative: no guard; zero: DefaultSettleLag).
	Lag int

	ws      Workspace
	res     Result
	prev    []float64
	settled int
}

// Refresh decomposes the current (grown) series and updates the settled
// prefix. The returned Result is the Window's own and is overwritten by
// the next Refresh; its slices must not be retained across calls.
func (w *Window) Refresh(y []float64, opts Opts) (*Result, error) {
	if err := w.ws.DecomposeInto(&w.res, y, opts); err != nil {
		return nil, err
	}
	w.Observe(w.res.Trend)
	return &w.res, nil
}

// Observe updates the settled prefix from an externally computed trend —
// for callers that run the decomposition themselves (the streaming daemon
// decomposes inside the shared analysis kernel). The trend is copied.
func (w *Window) Observe(trend []float64) int {
	quiet := 0
	limit := len(trend)
	if len(w.prev) < limit {
		limit = len(w.prev)
	}
	for quiet < limit {
		d := trend[quiet] - w.prev[quiet]
		if d < 0 {
			d = -d
		}
		if d > w.Eps {
			break
		}
		quiet++
	}
	lag := w.Lag
	if lag == 0 {
		lag = DefaultSettleLag
	} else if lag < 0 {
		lag = 0
	}
	if s := quiet - lag; s > w.settled {
		w.settled = s
	}
	w.prev = append(w.prev[:0], trend...)
	return w.settled
}

// Settled returns the settled prefix length: trend samples [0, Settled)
// are considered final. It never decreases.
func (w *Window) Settled() int { return w.settled }

// Reset clears all refresh history.
func (w *Window) Reset() {
	w.prev = w.prev[:0]
	w.settled = 0
}

// String summarizes the window state for diagnostics.
func (w *Window) String() string {
	return fmt.Sprintf("stl.Window{settled=%d, seen=%d}", w.settled, len(w.prev))
}
