package experiments

import (
	"strings"
	"testing"
)

// TestLongrun exercises the storage-governance acceptance contract at
// reduced scale. Longrun itself errors on any breach (resume
// divergence, budget overrun, a shed under a sufficient budget,
// snapshot litter, an over-budget publish written, ENOSPC not shed
// gracefully), so a nil error plus the verdict fields is the whole
// acceptance check.
func TestLongrun(t *testing.T) {
	if testing.Short() {
		t.Skip("streams three quarters twice each plus a fault-injected replay")
	}
	res, err := Longrun(Options{Blocks: 16})
	if err != nil {
		t.Fatalf("storage governance broken: %v", err)
	}
	if !res.Identical || res.Incarnations < 2*res.Quarters {
		t.Fatalf("kill-and-resume under governance was not exercised:\n%s", res)
	}
	if res.Rotations == 0 || res.Compactions == 0 {
		t.Fatalf("WAL governance never fired:\n%s", res)
	}
	if res.PeakJournalBytes > res.DiskBudget || res.LitterFiles != 0 {
		t.Fatalf("disk footprint not governed:\n%s", res)
	}
	if !res.PublishRefused || !res.PressureShed || !res.ResumedAfterPressure {
		t.Fatalf("degradation contracts not exercised:\n%s", res)
	}
	if s := res.String(); !strings.Contains(s, "OK") || strings.Contains(s, "VIOLATED") {
		t.Fatalf("report does not state a clean verdict:\n%s", s)
	}
}
