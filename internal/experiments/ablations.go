package experiments

import (
	"fmt"
	"math"
	"time"

	"github.com/diurnalnet/diurnal/internal/blockclass"
	"github.com/diurnalnet/diurnal/internal/changepoint"
	"github.com/diurnalnet/diurnal/internal/core"
	"github.com/diurnalnet/diurnal/internal/dataset"
	"github.com/diurnalnet/diurnal/internal/events"
	"github.com/diurnalnet/diurnal/internal/netsim"
	"github.com/diurnalnet/diurnal/internal/probe"
	"github.com/diurnalnet/diurnal/internal/reconstruct"
	"github.com/diurnalnet/diurnal/internal/stl"
)

// AblationSTLResult compares STL against the naive seasonal model under
// outlier injection — the design decision of §2.5 ("we adopted the STL for
// our work after comparing the two and finding it more robust to
// outliers").
type AblationSTLResult struct {
	Blocks int
	// TrendRMSE of each model against the outlier-free trend.
	STLRMSE, NaiveRMSE float64
	// SpuriousSTL/SpuriousNaive count CUSUM changes triggered on quiet
	// blocks after outlier injection.
	SpuriousSTL, SpuriousNaive int
}

// AblationSTLvsNaive injects probe-level spikes into quiet diurnal blocks
// and measures how each decomposition's trend degrades.
func AblationSTLvsNaive(opts Options) (*AblationSTLResult, error) {
	nBlocks := opts.blocks(30)
	start := netsim.Date(2020, time.January, 1)
	end := netsim.Date(2020, time.February, 26) // 8 weeks
	period := 7 * 24
	res := &AblationSTLResult{Blocks: nBlocks}
	var stlSE, naiveSE float64
	var samples int
	eng := &probe.Engine{Observers: probe.StandardObservers(4), QuarterSeed: opts.seed()}
	for i := 0; i < nBlocks; i++ {
		b, err := netsim.NewBlock(netsim.BlockID(i+1), opts.seed()+uint64(i)*31, netsim.Spec{
			Workers: 60 + i%40, AlwaysOn: 5,
		})
		if err != nil {
			return nil, err
		}
		perObs, err := eng.Collect(b, start, end)
		if err != nil {
			return nil, err
		}
		series, err := reconstruct.ReconstructObservers(perObs, b.EverActive(), false)
		if err != nil {
			return nil, err
		}
		clean := series.Resample(start, end, 3600)
		if len(clean) < 2*period {
			continue
		}
		// Inject outliers: isolated hour-long spikes (counting glitches,
		// scan bursts) on ~1% of samples.
		dirty := append([]float64(nil), clean...)
		for j := range dirty {
			if netsim.HashUnit(opts.seed(), uint64(i), uint64(j), 0xab1) < 0.01 {
				dirty[j] += 60
			}
		}
		stlOpts := stl.DefaultOpts(period)
		stlOpts.Outer = 2
		stlOpts.Periodic = true
		stlOpts.Trend = period + 25
		cleanDec, err := stl.Decompose(clean, stlOpts)
		if err != nil {
			return nil, err
		}
		dirtyDec, err := stl.Decompose(dirty, stlOpts)
		if err != nil {
			return nil, err
		}
		naiveDec, err := stl.NaiveDecompose(dirty, period)
		if err != nil {
			return nil, err
		}
		for j := period; j < len(clean)-period; j++ {
			ds := dirtyDec.Trend[j] - cleanDec.Trend[j]
			dn := naiveDec.Trend[j] - cleanDec.Trend[j]
			stlSE += ds * ds
			naiveSE += dn * dn
			samples++
		}
		cusum := changepoint.Opts{Threshold: 1, Drift: 0.004}
		cs, err := changepoint.Detect(changepoint.Normalize(dirtyDec.Trend), cusum)
		if err != nil {
			return nil, err
		}
		cn, err := changepoint.Detect(changepoint.Normalize(naiveDec.Trend), cusum)
		if err != nil {
			return nil, err
		}
		res.SpuriousSTL += len(cs)
		res.SpuriousNaive += len(cn)
	}
	if samples > 0 {
		res.STLRMSE = math.Sqrt(stlSE / float64(samples))
		res.NaiveRMSE = math.Sqrt(naiveSE / float64(samples))
	}
	return res, nil
}

// String renders the robustness comparison.
func (r *AblationSTLResult) String() string {
	return fmt.Sprintf(
		"Ablation §2.5 — STL vs naive decomposition under outlier injection (%d blocks)\n"+
			"  trend RMSE vs clean: STL %.3f, naive %.3f\n"+
			"  spurious CUSUM changes on quiet blocks: STL %d, naive %d\n"+
			"  (the paper adopts STL as \"more robust to outliers\")\n",
		r.Blocks, r.STLRMSE, r.NaiveRMSE, r.SpuriousSTL, r.SpuriousNaive)
}

// AblationSwingResult sweeps the wide-swing threshold s (the paper picks 5).
type AblationSwingResult struct {
	Thresholds []float64
	// Sensitive is the change-sensitive count at each threshold;
	// DiurnalKept is the fraction of diurnal blocks surviving the swing
	// filter (paper: "around 95% of blocks meet or exceed" s=5).
	Sensitive   []int
	DiurnalKept []float64
}

// AblationSwing classifies a world once per threshold value.
func AblationSwing(opts Options) (*AblationSwingResult, error) {
	nBlocks := opts.blocks(400)
	start := netsim.Date(2020, time.January, 1)
	end := netsim.Date(2020, time.January, 29)
	world, err := dataset.BuildWorld(dataset.WorldOpts{
		Blocks: nBlocks, Seed: opts.seed() + 31, Start: start, End: end,
	})
	if err != nil {
		return nil, err
	}
	eng := &probe.Engine{Observers: probe.StandardObservers(4), QuarterSeed: opts.seed()}
	res := &AblationSwingResult{}
	for _, s := range []float64{1, 2, 3, 5, 8, 12, 20} {
		cfg := blockclass.Default()
		cfg.SwingThreshold = s
		cls := classifyWorld(world, eng, start, end, cfg, true)
		c := tally(cls)
		res.Thresholds = append(res.Thresholds, s)
		res.Sensitive = append(res.Sensitive, c.ChangeSensitive)
		if c.Diurnal > 0 {
			res.DiurnalKept = append(res.DiurnalKept, float64(c.ChangeSensitive)/float64(c.Diurnal))
		} else {
			res.DiurnalKept = append(res.DiurnalKept, 0)
		}
	}
	return res, nil
}

// String renders the sweep.
func (r *AblationSwingResult) String() string {
	t := &table{header: []string{"swing threshold s", "change-sensitive", "fraction of diurnal kept"}}
	for i, s := range r.Thresholds {
		t.add(fmt.Sprintf("%.0f", s), itoa(r.Sensitive[i]), fmt.Sprintf("%.0f%%", 100*r.DiurnalKept[i]))
	}
	return fmt.Sprintf("Ablation §2.4 — wide-swing threshold sweep (paper picks s=5; ~95%% of diurnal blocks meet it)\n%s", t)
}

// AblationRepairResult sweeps link loss with 1-loss repair on and off.
type AblationRepairResult struct {
	LossRates []float64
	// RateErrWith/RateErrWithout are the absolute reply-rate errors of the
	// lossy observer vs truth; SensWith/SensWithout report whether the
	// diurnal block still classifies change-sensitive.
	RateErrWith, RateErrWithout []float64
	SensWith, SensWithout       []bool
}

// AblationLossRepair probes a diurnal block through an increasingly lossy
// link and measures what 1-loss repair recovers.
func AblationLossRepair(opts Options) (*AblationRepairResult, error) {
	start := netsim.Date(2020, time.January, 1)
	end := netsim.Date(2020, time.January, 29)
	res := &AblationRepairResult{}
	for _, loss := range []float64{0, 0.05, 0.1, 0.2, 0.3} {
		b, err := netsim.NewBlock(0xab3, opts.seed()+51, netsim.Spec{
			Workers: 60, AlwaysOn: 60, TZOffset: 8 * 3600,
		})
		if err != nil {
			return nil, err
		}
		obs := probe.StandardObservers(4)
		for i := range obs {
			obs[i].Extra = 2
		}
		obs[0].Loss = &probe.LossModel{Base: loss}
		eng := &probe.Engine{Observers: obs, QuarterSeed: opts.seed()}
		perObs, err := eng.Collect(b, start, end)
		if err != nil {
			return nil, err
		}
		// True reply rate of the lossless equivalent stream.
		truthRate := 0.0
		{
			cnt, up := 0, 0
			for _, r := range perObs[1] {
				cnt++
				if r.Up {
					up++
				}
			}
			if cnt > 0 {
				truthRate = float64(up) / float64(cnt)
			}
		}
		measure := func(repair bool) (float64, bool) {
			streams := make([][]probe.Record, len(perObs))
			for i := range perObs {
				streams[i] = append([]probe.Record(nil), perObs[i]...)
			}
			if repair {
				for i := range streams {
					reconstruct.Repair1Loss(streams[i])
				}
			}
			rate := reconstruct.MeanReplyRate(streams[0])
			series, err := reconstruct.Reconstruct(reconstruct.Merge(streams), b.EverActive())
			if err != nil {
				return 0, false
			}
			cls, err := blockclass.Classify(series, start, end, blockclass.Default())
			if err != nil {
				return 0, false
			}
			return math.Abs(rate - truthRate), cls.ChangeSensitive
		}
		errWithout, sensWithout := measure(false)
		errWith, sensWith := measure(true)
		res.LossRates = append(res.LossRates, loss)
		res.RateErrWithout = append(res.RateErrWithout, errWithout)
		res.RateErrWith = append(res.RateErrWith, errWith)
		res.SensWithout = append(res.SensWithout, sensWithout)
		res.SensWith = append(res.SensWith, sensWith)
	}
	return res, nil
}

// String renders the loss sweep.
func (r *AblationRepairResult) String() string {
	t := &table{header: []string{"loss rate", "rate err w/o repair", "rate err w/ repair", "CS w/o", "CS w/"}}
	for i, l := range r.LossRates {
		t.add(fmt.Sprintf("%.0f%%", 100*l),
			fmt.Sprintf("%.3f", r.RateErrWithout[i]), fmt.Sprintf("%.3f", r.RateErrWith[i]),
			fmt.Sprintf("%v", r.SensWithout[i]), fmt.Sprintf("%v", r.SensWith[i]))
	}
	return fmt.Sprintf("Ablation §3.3 — 1-loss repair under link-loss sweep\n%s", t)
}

// AblationPersistenceResult sweeps the MinSwingDays-of-7 persistence rule.
type AblationPersistenceResult struct {
	MinDays []int
	// Sensitive counts change-sensitive blocks; WeekendOnly counts blocks
	// that are only active on weekends yet still classify — the failure
	// mode the 4-of-7 rule must avoid while tolerating 3-day weekends.
	Sensitive   []int
	WeekendOnly []int
}

// AblationPersistence classifies a world with weekend-only decoys under
// each persistence rule.
func AblationPersistence(opts Options) (*AblationPersistenceResult, error) {
	nBlocks := opts.blocks(200)
	start := netsim.Date(2020, time.January, 1)
	end := netsim.Date(2020, time.January, 29)
	world, err := dataset.BuildWorld(dataset.WorldOpts{
		Blocks: nBlocks, Seed: opts.seed() + 61, Start: start, End: end,
	})
	if err != nil {
		return nil, err
	}
	// Weekend-only decoys: homes that are off during the week (weekend
	// recreation networks).
	nDecoys := nBlocks / 10
	var decoys []*netsim.Block
	for i := 0; i < nDecoys; i++ {
		b, err := netsim.NewBlock(netsim.BlockID(0xdec0+i), opts.seed()+uint64(i)*7+71, netsim.Spec{
			Homes: 40, HomeProb: 0.9,
			// Weekend-only behaviour is approximated by a tiny weekday
			// presence via dormancy of the home population... instead we
			// rely on classification over weekend swings below.
		})
		if err != nil {
			return nil, err
		}
		decoys = append(decoys, b)
		_ = b
	}
	eng := &probe.Engine{Observers: probe.StandardObservers(4), QuarterSeed: opts.seed()}
	res := &AblationPersistenceResult{}
	for _, minDays := range []int{1, 2, 3, 4, 5, 6, 7} {
		cfg := blockclass.Default()
		cfg.MinSwingDays = minDays
		cls := classifyWorld(world, eng, start, end, cfg, true)
		c := tally(cls)
		weekendOnly := 0
		for _, d := range decoys {
			perObs, err := eng.Collect(d, start, end)
			if err != nil {
				continue
			}
			series, err := reconstruct.ReconstructObservers(perObs, d.EverActive(), true)
			if err != nil {
				continue
			}
			// Suppress the weekday evenings to make a pure weekend block.
			for i, tm := range series.Times {
				if !netsim.IsWeekend(tm) {
					series.Counts[i] = math.Min(series.Counts[i], 2)
				}
			}
			r, err := blockclass.Classify(series, start, end, cfg)
			if err == nil && r.ChangeSensitive {
				weekendOnly++
			}
		}
		res.MinDays = append(res.MinDays, minDays)
		res.Sensitive = append(res.Sensitive, c.ChangeSensitive)
		res.WeekendOnly = append(res.WeekendOnly, weekendOnly)
	}
	return res, nil
}

// String renders the persistence sweep.
func (r *AblationPersistenceResult) String() string {
	t := &table{header: []string{"min wide days of 7", "change-sensitive", "weekend-only decoys admitted"}}
	for i, m := range r.MinDays {
		t.add(itoa(m), itoa(r.Sensitive[i]), itoa(r.WeekendOnly[i]))
	}
	return fmt.Sprintf("Ablation §2.4 — persistence rule sweep (paper picks 4 of 7: tolerates 3-day weekends, rejects weekend-only noise)\n%s", t)
}

// AblationOutageFilterResult compares the two outage-discarding mechanisms
// of §2.6: timing-based down/up pairing and belief-based outage masking
// (comparing changes "with outage detections").
type AblationOutageFilterResult struct {
	Blocks int
	// LeakNone/LeakPair/LeakBoth count blocks where a multi-day outage
	// survives as a spurious change with no filtering, with the pair
	// filter only, and with pair filter + belief masking.
	LeakNone, LeakPair, LeakBoth int
	// WFHKept counts blocks whose genuine WFH change survives the full
	// filtering stack (it must not be collateral damage).
	WFHBlocks, WFHKept int
}

// AblationOutageFilter injects 1.5–3.5 day outages into workplace blocks
// and measures which filter catches them.
func AblationOutageFilter(opts Options) (*AblationOutageFilterResult, error) {
	start, end := q1Window()
	nBlocks := opts.blocks(25)
	res := &AblationOutageFilterResult{Blocks: nBlocks}
	eng := &probe.Engine{Observers: probe.StandardObservers(4), QuarterSeed: opts.seed()}
	analyze := func(b *netsim.Block, pair, mask bool) ([]core.Change, error) {
		cfg := core.DefaultConfig(start, end)
		cfg.BaselineStart, cfg.BaselineEnd = start, start+28*netsim.SecondsPerDay
		if !pair {
			cfg.OutageGapDays = -1
		}
		if !mask {
			cfg.OutageMaskMinHours = -1
		}
		a, err := cfg.AnalyzeBlock(eng, b)
		if err != nil {
			return nil, err
		}
		return a.DownChanges(), nil
	}
	for i := 0; i < nBlocks; i++ {
		seed := opts.seed() + uint64(i)*17 + 301
		b, err := netsim.NewBlock(netsim.BlockID(0xab5000+i), seed, netsim.Spec{
			Workers: 50 + i%50, AlwaysOn: 4 + i%6,
		})
		if err != nil {
			return nil, err
		}
		oStart := start + (20+int64(i)%40)*netsim.SecondsPerDay + 5*3600
		oDur := (36 + int64(i)%48) * 3600 // 1.5 to 3.5 days
		b.AddEvent(netsim.Event{Kind: netsim.EventOutage, Start: oStart, End: oStart + oDur})
		leaked := func(changes []core.Change) bool {
			for _, c := range changes {
				if events.MatchWithin(c.Point, oStart, 4) {
					return true
				}
			}
			return false
		}
		none, err := analyze(b, false, false)
		if err != nil {
			return nil, err
		}
		pairOnly, err := analyze(b, true, false)
		if err != nil {
			return nil, err
		}
		both, err := analyze(b, true, true)
		if err != nil {
			return nil, err
		}
		if leaked(none) {
			res.LeakNone++
		}
		if leaked(pairOnly) {
			res.LeakPair++
		}
		if leaked(both) {
			res.LeakBoth++
		}
	}
	// Control: genuine WFH changes must survive the full stack.
	wfhDate := start + 52*netsim.SecondsPerDay
	for i := 0; i < nBlocks/2; i++ {
		seed := opts.seed() + uint64(i)*13 + 601
		b, err := netsim.NewBlock(netsim.BlockID(0xab6000+i), seed, netsim.Spec{
			Workers: 60 + i%40, AlwaysOn: 4,
		})
		if err != nil {
			return nil, err
		}
		b.AddEvent(netsim.Event{Kind: netsim.EventWFH, Start: wfhDate, Adoption: 0.85})
		res.WFHBlocks++
		changes, err := analyze(b, true, true)
		if err != nil {
			return nil, err
		}
		for _, c := range changes {
			if events.MatchWithin(c.Point, wfhDate, events.MatchWindowDays) {
				res.WFHKept++
				break
			}
		}
	}
	return res, nil
}

// String renders the filter comparison.
func (r *AblationOutageFilterResult) String() string {
	return fmt.Sprintf(
		"Ablation §2.6 — outage filtering mechanisms (%d outage blocks, 1.5–3.5 day outages)\n"+
			"  spurious outage changes surviving: no filter %d, pair filter %d, pair+belief mask %d\n"+
			"  genuine WFH changes kept under full filtering: %d of %d\n",
		r.Blocks, r.LeakNone, r.LeakPair, r.LeakBoth, r.WFHKept, r.WFHBlocks)
}
