package experiments

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"github.com/diurnalnet/diurnal/internal/core"
	"github.com/diurnalnet/diurnal/internal/dataset"
	"github.com/diurnalnet/diurnal/internal/events"
	"github.com/diurnalnet/diurnal/internal/health"
	"github.com/diurnalnet/diurnal/internal/netsim"
	"github.com/diurnalnet/diurnal/internal/probe"
)

// CrashResumeResult records the kill-and-resume robustness check: one
// world is analyzed uninterrupted, then again with the run killed partway
// through and resumed from its checkpoint journal, and the two results
// are compared byte-for-byte (via WorldResult.Fingerprint).
type CrashResumeResult struct {
	// Blocks is the world size.
	Blocks int
	// KillAfter is how many completed block collections the interrupted
	// run survived before its context was canceled.
	KillAfter int
	// JournaledAtCrash is how many finished blocks the checkpoint journal
	// held when the run died.
	JournaledAtCrash int
	// ResumedFromJournal is how many blocks the second run restored from
	// the journal instead of re-analyzing.
	ResumedFromJournal int
	// InterruptedErr is the error the killed run returned.
	InterruptedErr string
	// Identical reports whether the resumed result's fingerprint matches
	// the uninterrupted run's — the crash-safety contract.
	Identical bool
	// Fingerprint and ResumedFingerprint are the two result digests.
	Fingerprint, ResumedFingerprint string

	// The hedged phase repeats the crash with straggler hedging tuned so
	// aggressively that hedges fire even on a healthy world, checking the
	// two machines compose: a crash cannot make a hedged double
	// completion journal twice.
	//
	// HedgedJournaledAtCrash is how many frames the hedged run appended
	// before it died; HedgedDuplicates is how many of those were repeat
	// frames for an already-journaled block (must be zero).
	HedgedJournaledAtCrash, HedgedDuplicates int
	// HedgedResumed and HedgedHedges count blocks restored from the
	// journal and hedges fired during the resumed leg.
	HedgedResumed, HedgedHedges int
	// HedgedIdentical reports whether the hedged kill-and-resume ended at
	// the uninterrupted fingerprint.
	HedgedIdentical bool
}

// String renders the check as text.
func (r *CrashResumeResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "kill-and-resume over %d blocks:\n", r.Blocks)
	fmt.Fprintf(&b, "  killed after %d block collections; journal held %d finished blocks\n",
		r.KillAfter, r.JournaledAtCrash)
	fmt.Fprintf(&b, "  interrupted run returned: %s\n", r.InterruptedErr)
	fmt.Fprintf(&b, "  resumed run restored %d blocks from the journal\n", r.ResumedFromJournal)
	verdict := "IDENTICAL"
	if !r.Identical {
		verdict = "DIVERGED"
	}
	fmt.Fprintf(&b, "  uninterrupted %s\n  resumed       %s\n  => %s\n",
		r.Fingerprint[:16], r.ResumedFingerprint[:16], verdict)
	hedged := "IDENTICAL"
	if !r.HedgedIdentical {
		hedged = "DIVERGED"
	}
	fmt.Fprintf(&b, "  hedged crash: %d frames journaled (%d duplicates), resumed %d blocks, %d hedges => %s\n",
		r.HedgedJournaledAtCrash, r.HedgedDuplicates, r.HedgedResumed, r.HedgedHedges, hedged)
	return b.String()
}

// killProber counts completed collections and cancels the run's context
// after a budget — a deterministic stand-in for kill -9 arriving midway
// through a world run.
type killProber struct {
	inner core.Prober
	kill  context.CancelFunc

	mu        sync.Mutex
	remaining int
}

func (p *killProber) CollectInto(ctx context.Context, b *netsim.Block, start, end int64, bufs [][]probe.Record) ([][]probe.Record, error) {
	bufs, err := p.inner.CollectInto(ctx, b, start, end, bufs)
	if err != nil {
		return bufs, err
	}
	p.mu.Lock()
	p.remaining--
	if p.remaining == 0 {
		p.kill()
	}
	p.mu.Unlock()
	return bufs, nil
}

// CrashResume is the checkpoint/resume acceptance experiment. It runs one
// world three ways — uninterrupted; killed partway with a checkpoint
// journal attached; resumed from that journal — and asserts the resumed
// result is identical to the uninterrupted one. A non-nil error means the
// crash-safety contract is broken (or the harness could not run at all).
func CrashResume(opts Options) (*CrashResumeResult, error) {
	start, end := q1Window()
	world, err := dataset.BuildWorld(dataset.WorldOpts{
		Blocks:   opts.blocks(160),
		Seed:     opts.seed() + 31,
		Calendar: events.Year2020(),
		Start:    start,
		End:      end,
	})
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig(start, end)
	cfg.BaselineStart = start
	cfg.BaselineEnd = netsim.Date(2020, time.January, 29)
	eng := &probe.Engine{Observers: probe.StandardObservers(4), QuarterSeed: opts.seed()}

	// Reference: the uninterrupted run.
	full, err := (&core.Pipeline{Config: cfg, Engine: eng}).Run(opts.ctx(), world)
	if err != nil {
		return nil, fmt.Errorf("uninterrupted run: %w", err)
	}
	want, err := full.Fingerprint()
	if err != nil {
		return nil, err
	}

	dir, err := os.MkdirTemp("", "diurnal-crashresume")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	journal := filepath.Join(dir, "run.ckpt")

	res := &CrashResumeResult{
		Blocks:      len(world),
		KillAfter:   len(world) / 4,
		Fingerprint: want,
	}

	// Interrupted run: cancel the context after KillAfter collections,
	// exactly as a signal would, with the journal attached.
	killCtx, kill := context.WithCancel(opts.ctx())
	defer kill()
	cp, err := core.OpenCheckpoint(journal)
	if err != nil {
		return nil, err
	}
	_, runErr := (&core.Pipeline{
		Config:     cfg,
		Engine:     &killProber{inner: eng, kill: kill, remaining: res.KillAfter},
		Checkpoint: cp,
	}).Run(killCtx, world)
	if runErr == nil {
		cp.Close()
		return nil, fmt.Errorf("interrupted run finished cleanly; kill budget %d never fired", res.KillAfter)
	}
	res.InterruptedErr = runErr.Error()
	res.JournaledAtCrash = cp.Entries()
	if err := cp.Close(); err != nil {
		return nil, err
	}
	if res.JournaledAtCrash == 0 || res.JournaledAtCrash >= len(world) {
		return res, fmt.Errorf("journal held %d of %d blocks at crash; the kill was not mid-run", res.JournaledAtCrash, len(world))
	}

	// Resumed run: same config and world, fresh pipeline, same journal.
	cp2, err := core.OpenCheckpoint(journal)
	if err != nil {
		return nil, err
	}
	defer cp2.Close()
	resumed, err := (&core.Pipeline{Config: cfg, Engine: eng, Checkpoint: cp2}).Run(opts.ctx(), world)
	if err != nil {
		return res, fmt.Errorf("resumed run: %w", err)
	}
	res.ResumedFromJournal = resumed.Report.ResumedBlocks
	res.ResumedFingerprint, err = resumed.Fingerprint()
	if err != nil {
		return res, err
	}
	res.Identical = res.ResumedFingerprint == res.Fingerprint
	if !res.Identical {
		return res, fmt.Errorf("resumed result diverged from uninterrupted run:\n%s", res)
	}
	if res.ResumedFromJournal == 0 {
		return res, fmt.Errorf("resumed run restored nothing from a journal holding %d blocks", res.JournaledAtCrash)
	}

	// Hedged crash: the same kill with straggler hedging tuned so hedges
	// fire even on a healthy world (deadline at the p50 after two
	// samples). Hedge double completions and a mid-run kill are the two
	// paths to duplicate journal frames; this leg drives both at once.
	hedge := &health.HedgeConfig{
		Multiplier:  1,
		Quantile:    0.5,
		MinSamples:  2,
		MinDeadline: time.Millisecond,
		Poll:        time.Millisecond,
	}
	hedgedJournal := filepath.Join(dir, "hedged.ckpt")
	hkCtx, hkill := context.WithCancel(opts.ctx())
	defer hkill()
	hcp, err := core.OpenCheckpoint(hedgedJournal)
	if err != nil {
		return res, err
	}
	_, runErr = (&core.Pipeline{
		Config:     cfg,
		Engine:     &killProber{inner: eng, kill: hkill, remaining: res.KillAfter},
		Checkpoint: hcp,
		Hedge:      hedge,
	}).Run(hkCtx, world)
	if runErr == nil {
		hcp.Close()
		return res, fmt.Errorf("hedged interrupted run finished cleanly; kill budget %d never fired", res.KillAfter)
	}
	res.HedgedJournaledAtCrash = hcp.Entries()
	if err := hcp.Close(); err != nil {
		return res, err
	}
	if res.HedgedJournaledAtCrash == 0 || res.HedgedJournaledAtCrash >= len(world) {
		return res, fmt.Errorf("hedged journal held %d of %d blocks at crash; the kill was not mid-run", res.HedgedJournaledAtCrash, len(world))
	}

	// Reopening deduplicates by block key, so appended-at-crash minus
	// distinct-on-reopen is exactly the duplicate frame count.
	hcp2, err := core.OpenCheckpoint(hedgedJournal)
	if err != nil {
		return res, err
	}
	defer hcp2.Close()
	res.HedgedDuplicates = res.HedgedJournaledAtCrash - hcp2.Entries()
	if res.HedgedDuplicates != 0 {
		return res, fmt.Errorf("hedged run journaled %d duplicate frames before the crash", res.HedgedDuplicates)
	}
	hres, err := (&core.Pipeline{Config: cfg, Engine: eng, Checkpoint: hcp2, Hedge: hedge}).Run(opts.ctx(), world)
	if err != nil {
		return res, fmt.Errorf("hedged resumed run: %w", err)
	}
	res.HedgedResumed = hres.Report.ResumedBlocks
	res.HedgedHedges = hres.Report.HedgedBlocks
	hfp, err := hres.Fingerprint()
	if err != nil {
		return res, err
	}
	res.HedgedIdentical = hfp == res.Fingerprint
	if !res.HedgedIdentical {
		return res, fmt.Errorf("hedged kill-and-resume diverged from uninterrupted run:\n%s", res)
	}
	return res, nil
}
