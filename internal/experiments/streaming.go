package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"github.com/diurnalnet/diurnal/internal/core"
	"github.com/diurnalnet/diurnal/internal/dataset"
	"github.com/diurnalnet/diurnal/internal/events"
	"github.com/diurnalnet/diurnal/internal/netsim"
	"github.com/diurnalnet/diurnal/internal/probe"
	"github.com/diurnalnet/diurnal/internal/stream"
)

// StreamingResult records the streaming-daemon acceptance experiment: one
// world is analyzed three ways — batch, streamed uninterrupted, and
// streamed with repeated SIGKILLs — and the streaming contracts are
// checked: batch-identical final result, exact kill-and-resume event
// identity, the bounded-latency guarantee, and detection lag measured
// against the simulator's scheduled ground-truth events.
type StreamingResult struct {
	// Blocks is the world size; Rounds the number of daily rounds streamed.
	Blocks int
	Rounds int64
	// Events is the journaled event count of the uninterrupted run.
	Events int
	// EarlyEvents is how many were emitted before the final flush — actual
	// streaming detections, not retrospective ones.
	EarlyEvents int
	// BatchIdentical reports whether the streaming result fingerprint
	// equals the batch pipeline's.
	BatchIdentical bool
	// Incarnations is how many daemon lives the killed run took; Identical
	// whether its event log and result matched the uninterrupted run's.
	Incarnations int
	Identical    bool
	// LatencyBoundRounds is the contract bound (ConfirmRefreshes ×
	// RefreshEvery); MaxLatencyRounds the worst observed emit latency among
	// pre-final events. The contract holds iff Max ≤ Bound.
	LatencyBoundRounds, MaxLatencyRounds int64
	// TruthMatched counts events attributable to a scheduled simulator
	// event; MeanLagDays averages, over those, the days between the true
	// onset and the end of the round whose refresh emitted the event.
	TruthMatched int
	MeanLagDays  float64
}

// String renders the check as text.
func (r *StreamingResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "streaming daemon over %d blocks, %d daily rounds:\n", r.Blocks, r.Rounds)
	verdict := func(ok bool) string {
		if ok {
			return "OK"
		}
		return "VIOLATED"
	}
	fmt.Fprintf(&b, "  %d events journaled (%d emitted mid-stream, before the final flush)\n", r.Events, r.EarlyEvents)
	fmt.Fprintf(&b, "  batch parity:    %s (streaming result fingerprint equals batch run)\n", verdict(r.BatchIdentical))
	fmt.Fprintf(&b, "  kill-and-resume: %s (%d daemon incarnations, exact event-log identity)\n", verdict(r.Identical), r.Incarnations)
	fmt.Fprintf(&b, "  latency bound:   %s (worst emit latency %d rounds, bound %d)\n",
		verdict(r.MaxLatencyRounds <= r.LatencyBoundRounds), r.MaxLatencyRounds, r.LatencyBoundRounds)
	fmt.Fprintf(&b, "  ground truth:    %d events matched scheduled changes, mean detection lag %.1f days\n",
		r.TruthMatched, r.MeanLagDays)
	return b.String()
}

// Streaming is the streaming-daemon acceptance experiment. A non-nil
// error means a streaming contract is broken.
func Streaming(opts Options) (*StreamingResult, error) {
	start, end := q1Window()
	world, err := dataset.BuildWorld(dataset.WorldOpts{
		Blocks:   opts.blocks(64),
		Seed:     opts.seed() + 31,
		Calendar: events.Year2020(),
		Start:    start,
		End:      end,
	})
	if err != nil {
		return nil, err
	}
	cc := core.DefaultConfig(start, end)
	cc.BaselineStart = start
	cc.BaselineEnd = netsim.Date(2020, time.January, 29)
	cfg := stream.Config{Core: cc, RefreshEvery: 7, ConfirmRefreshes: 2}
	eng := &probe.Engine{Observers: probe.StandardObservers(4), QuarterSeed: opts.seed()}

	// Reference 1: the batch pipeline.
	batch, err := (&core.Pipeline{Config: cc, Engine: eng}).Run(opts.ctx(), world)
	if err != nil {
		return nil, fmt.Errorf("batch run: %w", err)
	}
	batchFP, err := batch.Fingerprint()
	if err != nil {
		return nil, err
	}

	// One collection, shared by every streaming leg: the feeder chops the
	// same records batch analyzed into daily rounds.
	feeder, err := stream.NewFeeder(opts.ctx(), eng, world, cfg)
	if err != nil {
		return nil, err
	}
	res := &StreamingResult{
		Blocks:             len(world),
		Rounds:             feeder.Rounds(),
		LatencyBoundRounds: 2 * 7, // ConfirmRefreshes * RefreshEvery
	}

	tmp, err := os.MkdirTemp("", "diurnal-streaming")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)

	// Reference 2: the uninterrupted streaming run.
	refEvents, refFP, err := streamToEnd(opts.ctx(), tmp+"/ref", world, feeder, cfg)
	if err != nil {
		return nil, fmt.Errorf("uninterrupted streaming run: %w", err)
	}
	res.Events = len(refEvents)
	res.BatchIdentical = refFP == batchFP
	if !res.BatchIdentical {
		return res, fmt.Errorf("streaming result diverged from batch: %s != %s", refFP[:16], batchFP[:16])
	}
	if len(refEvents) == 0 {
		return res, fmt.Errorf("streaming run emitted no events; the checks are vacuous")
	}

	// Latency bound and ground-truth lag over the reference events.
	finalSeq := feeder.Rounds() - 1
	var lagSum float64
	for _, ev := range refEvents {
		if ev.EmitSeq != finalSeq {
			res.EarlyEvents++
			base := ev.FirstSeenSeq
			if ev.EligibleSeq > base {
				base = ev.EligibleSeq
			}
			if lat := ev.EmitSeq - base; lat > res.MaxLatencyRounds {
				res.MaxLatencyRounds = lat
			}
		}
		if onset, ok := truthOnset(world[ev.Block], ev.Change); ok {
			res.TruthMatched++
			frontier := start + (ev.EmitSeq+1)*netsim.SecondsPerDay
			lagSum += float64(frontier-onset) / float64(netsim.SecondsPerDay)
		}
	}
	if res.TruthMatched > 0 {
		res.MeanLagDays = lagSum / float64(res.TruthMatched)
	}
	if res.MaxLatencyRounds > res.LatencyBoundRounds {
		return res, fmt.Errorf("emit latency %d rounds exceeds the bound %d", res.MaxLatencyRounds, res.LatencyBoundRounds)
	}

	// The killed run: SIGKILL (Abort) at seeded-random points until the
	// stream completes; every incarnation must resume to a journal that is
	// an exact prefix of the reference, and the final state must be
	// identical.
	rng := rand.New(rand.NewSource(int64(opts.seed())))
	dir := tmp + "/killed"
	total := feeder.Rounds()
	for {
		d, err := stream.Open(dir, world, feeder.Observers(), cfg)
		if err != nil {
			return res, fmt.Errorf("incarnation %d: %w", res.Incarnations, err)
		}
		d.Start()
		res.Incarnations++
		evs := d.Events()
		if len(evs) > len(refEvents) {
			return res, fmt.Errorf("incarnation %d resumed with %d events; reference has %d", res.Incarnations, len(evs), len(refEvents))
		}
		for i := range evs {
			if evs[i] != refEvents[i] {
				return res, fmt.Errorf("incarnation %d: journaled event %d diverges from the uninterrupted run", res.Incarnations, i)
			}
		}
		next := d.NextIngestSeq()
		if next >= total {
			if err := d.Drain(opts.ctx()); err != nil {
				return res, err
			}
			final, err := d.Result()
			if err != nil {
				return res, err
			}
			fp, err := final.Fingerprint()
			if err != nil {
				return res, err
			}
			evs = d.Events()
			if err := d.Close(); err != nil {
				return res, err
			}
			res.Identical = fp == refFP && len(evs) == len(refEvents)
			for i := range evs {
				if evs[i] != refEvents[i] {
					res.Identical = false
				}
			}
			if !res.Identical {
				return res, fmt.Errorf("killed run diverged from the uninterrupted run:\n%s", res)
			}
			if res.Incarnations < 2 {
				return res, fmt.Errorf("the kill schedule never fired; kill-and-resume was not exercised")
			}
			return res, nil
		}
		target := next + 1 + rng.Int63n(total-next)
		for seq := next; seq < target; seq++ {
			r, err := feeder.Round(seq)
			if err != nil {
				return res, err
			}
			if err := d.Ingest(opts.ctx(), r); err != nil {
				return res, fmt.Errorf("incarnation %d: ingest round %d: %w", res.Incarnations, seq, err)
			}
		}
		if rng.Intn(2) == 0 {
			if err := d.Drain(opts.ctx()); err != nil {
				return res, err
			}
		}
		d.Abort() // SIGKILL: nothing flushed, nothing drained
	}
}

// streamToEnd runs one uninterrupted daemon life over the whole feeder.
func streamToEnd(ctx context.Context, dir string, world []*dataset.WorldBlock, f *stream.Feeder, cfg stream.Config) ([]stream.Event, string, error) {
	d, err := stream.Open(dir, world, f.Observers(), cfg)
	if err != nil {
		return nil, "", err
	}
	d.Start()
	if err := f.Feed(ctx, d); err != nil {
		d.Close()
		return nil, "", err
	}
	if err := d.Drain(ctx); err != nil {
		d.Close()
		return nil, "", err
	}
	res, err := d.Result()
	if err != nil {
		d.Close()
		return nil, "", err
	}
	fp, err := res.Fingerprint()
	if err != nil {
		d.Close()
		return nil, "", err
	}
	evs := d.Events()
	return evs, fp, d.Close()
}

// truthOnset matches an emitted change to the block's scheduled simulator
// events: a down change to an activity-suppressing event start (or an
// outage start), an up change to a recovery. Returns the true onset time.
func truthOnset(wb *dataset.WorldBlock, ch core.Change) (int64, bool) {
	slop := int64(events.MatchWindowDays) * netsim.SecondsPerDay
	for _, ev := range wb.Events() {
		var onset int64
		switch {
		case ch.Dir < 0:
			onset = ev.Start
		case ev.End != 0:
			onset = ev.End
		default:
			continue
		}
		if ch.Point >= onset-slop && ch.Point <= onset+slop {
			return onset, true
		}
	}
	return 0, false
}
