package experiments

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"github.com/diurnalnet/diurnal/internal/core"
	"github.com/diurnalnet/diurnal/internal/dataset"
	"github.com/diurnalnet/diurnal/internal/events"
	"github.com/diurnalnet/diurnal/internal/faults"
	"github.com/diurnalnet/diurnal/internal/netsim"
	"github.com/diurnalnet/diurnal/internal/probe"
	"github.com/diurnalnet/diurnal/internal/shard"
)

// ShardFailoverResult records the sharded-run acceptance experiment: one
// world with deterministic poison blocks is analyzed by a single process
// (the reference), then by a fleet of lease-fenced shard workers where
// the first leaseholder is killed mid-shard and, separately, where a
// worker stalls its lease renewals while continuing to compute. Both
// sharded legs must merge to the reference fingerprint with a clean
// cross-shard audit and the poison blocks dead-lettered exactly once.
type ShardFailoverResult struct {
	// Blocks, Shards, Workers describe the scale.
	Blocks, Shards, Workers int
	// PoisonBlocks is how many blocks the injected fault plan poisons
	// (deterministic panic on every collection attempt).
	PoisonBlocks int
	// KillAfter is the crashed worker's collection budget before its
	// process dies (context cancelled, lease left to rot).
	KillAfter int
	// InheritedBlocks counts blocks the surviving workers restored from
	// the dead leaseholder's journal instead of re-analyzing.
	InheritedBlocks int
	// Journals and DuplicateFrames come from the crash leg's audit: more
	// journals than shards proves a takeover under a higher fencing token
	// happened; duplicates must be zero (the dead worker wrote nothing
	// after the takeover).
	Journals, DuplicateFrames int
	// DeadLetters is the quarantine manifest size after the crash leg;
	// DeadLettersExact reports it matches the expected poison set exactly
	// once each.
	DeadLetters      int
	DeadLettersExact bool
	// Identical reports the crash leg's merged fingerprint equals the
	// single-process reference.
	Identical bool
	// Fingerprint and MergedFingerprint are the two digests.
	Fingerprint, MergedFingerprint string

	// The stall leg: a worker whose lease renewals are suppressed (it
	// keeps computing) is fenced by a takeover; its late journal appends
	// must be rejected, not duplicated into the result.
	//
	// StallFenced counts shards the stalled worker abandoned on
	// core.ErrFenced; StallDuplicates counts identical frames the audit
	// tolerated (a fenced append racing the takeover's seed scan);
	// StallConflicts must be zero.
	StallFenced, StallDuplicates, StallConflicts int
	// StallIdentical reports the stall leg's merged fingerprint equals
	// the reference.
	StallIdentical bool
}

// String renders the experiment as text.
func (r *ShardFailoverResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "shard failover over %d blocks, %d shards, %d workers, %d poison blocks:\n",
		r.Blocks, r.Shards, r.Workers, r.PoisonBlocks)
	fmt.Fprintf(&b, "  crash leg: leaseholder killed after %d collections; takeover inherited %d journaled blocks\n",
		r.KillAfter, r.InheritedBlocks)
	fmt.Fprintf(&b, "  %d journals across %d shards (>%d proves fenced takeover), %d duplicate frames\n",
		r.Journals, r.Shards, r.Shards, r.DuplicateFrames)
	exact := "exactly once each"
	if !r.DeadLettersExact {
		exact = "MISMATCHED"
	}
	fmt.Fprintf(&b, "  dead letters: %d quarantined, %s\n", r.DeadLetters, exact)
	verdict := "IDENTICAL"
	if !r.Identical {
		verdict = "DIVERGED"
	}
	fmt.Fprintf(&b, "  reference %s\n  merged    %s\n  => %s\n",
		r.Fingerprint[:16], r.MergedFingerprint[:16], verdict)
	stall := "IDENTICAL"
	if !r.StallIdentical {
		stall = "DIVERGED"
	}
	fmt.Fprintf(&b, "  stall leg: %d shard(s) abandoned on fencing, %d duplicate frames tolerated, %d conflicts => %s\n",
		r.StallFenced, r.StallDuplicates, r.StallConflicts, stall)
	return b.String()
}

// slowProber delays every collection, stretching a shard's wall-clock so
// a stalled lease reliably expires mid-shard.
type slowProber struct {
	inner core.Prober
	delay time.Duration
}

func (p *slowProber) CollectInto(ctx context.Context, b *netsim.Block, start, end int64, bufs [][]probe.Record) ([][]probe.Record, error) {
	select {
	case <-ctx.Done():
		return bufs, ctx.Err()
	case <-time.After(p.delay):
	}
	return p.inner.CollectInto(ctx, b, start, end, bufs)
}

// ShardFailover is the sharded-run acceptance experiment. A non-nil error
// means the lease-fencing / dead-letter / merge-audit contract is broken.
func ShardFailover(opts Options) (*ShardFailoverResult, error) {
	start, end := q1Window()
	world, err := dataset.BuildWorld(dataset.WorldOpts{
		Blocks:   opts.blocks(96),
		Seed:     opts.seed() + 57,
		Calendar: events.Year2020(),
		Start:    start,
		End:      end,
	})
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig(start, end)
	cfg.BaselineStart = start
	cfg.BaselineEnd = netsim.Date(2020, time.January, 29)
	eng := &probe.Engine{Observers: probe.StandardObservers(2), QuarterSeed: opts.seed()}

	// Deterministic poison: the same blocks panic on every attempt, in
	// every process — the precondition for an exactly-once manifest.
	poison := &faults.Poison{Prob: 0.1}
	faulty := &faults.Engine{Inner: eng, Plan: &faults.Plan{Seed: opts.seed(), Poison: poison}}
	expectPoison := map[int]bool{}
	for i, wb := range world {
		// Blocks with no ever-active targets never reach the prober, so
		// the poison cannot fire for them.
		if poison.Selects(opts.seed(), wb.ID) && len(wb.Block.EverActive()) > 0 {
			expectPoison[i] = true
		}
	}
	if len(expectPoison) == 0 {
		return nil, fmt.Errorf("poison plan selected no responsive blocks; raise -blocks")
	}

	res := &ShardFailoverResult{
		Blocks:       len(world),
		Shards:       3,
		Workers:      3,
		PoisonBlocks: len(expectPoison),
		KillAfter:    len(world) / 8,
	}

	dir, err := os.MkdirTemp("", "diurnal-shardfailover")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// Reference: one process, one quarantine store, no sharding.
	refDL, err := shard.OpenDeadLetters(filepath.Join(dir, "ref-deadletter"))
	if err != nil {
		return nil, err
	}
	ref, err := (&core.Pipeline{Config: cfg, Engine: faulty, DeadLetter: refDL}).Run(opts.ctx(), world)
	if err != nil {
		return nil, fmt.Errorf("reference run: %w", err)
	}
	if res.Fingerprint, err = ref.Fingerprint(); err != nil {
		return nil, err
	}
	if got := len(ref.Report.DeadLettered); got != len(expectPoison) {
		return nil, fmt.Errorf("reference run dead-lettered %d blocks, poison plan expects %d", got, len(expectPoison))
	}

	sig := core.RunSignature(cfg, world)

	// ---- Crash leg: kill the first leaseholder mid-shard. ----
	ledger, err := shard.Create(filepath.Join(dir, "crash-ledger"), sig, len(world), res.Shards,
		shard.Options{TTL: 250 * time.Millisecond, Poll: 10 * time.Millisecond})
	if err != nil {
		return nil, err
	}
	// Worker 1 runs alone first and dies: its prober cancels the worker's
	// whole context after KillAfter collections — kill -9 as the ledger
	// sees it (no lease release, no journal close, a torn tail possible).
	killCtx, kill := context.WithCancel(opts.ctx())
	defer kill()
	w1 := &shard.Worker{
		ID:     "w1",
		Ledger: ledger,
		Config: cfg,
		Engine: &faults.WorkerCrash{Inner: faulty, Kill: kill, AfterCollections: res.KillAfter},
		World:  world,
	}
	if _, err := w1.Run(killCtx); err == nil {
		return nil, fmt.Errorf("killed worker finished cleanly; kill budget %d never fired", res.KillAfter)
	}

	// Workers 2 and 3 arrive after the crash, drain the remaining shards,
	// wait out the dead lease, and take over its shard under token 2.
	var wg sync.WaitGroup
	reports := make([]*shard.Report, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := &shard.Worker{
				ID:     fmt.Sprintf("w%d", i+2),
				Ledger: ledger,
				Config: cfg,
				Engine: faulty,
				World:  world,
			}
			reports[i], errs[i] = w.Run(opts.ctx())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("surviving worker %d: %w", i+2, err)
		}
		res.InheritedBlocks += reports[i].Resumed
	}

	merged, audit, err := ledger.Merge(cfg, world)
	if err != nil {
		return nil, fmt.Errorf("merge: %w", err)
	}
	res.Journals = audit.Journals
	res.DuplicateFrames = audit.DuplicateFrames
	res.DeadLetters = audit.DeadLetters
	if !audit.Clean() {
		return res, fmt.Errorf("crash-leg audit failed:\n%s", audit)
	}
	if res.Journals <= res.Shards {
		return res, fmt.Errorf("only %d journals for %d shards; the takeover never happened", res.Journals, res.Shards)
	}
	if res.InheritedBlocks == 0 {
		return res, fmt.Errorf("takeover re-analyzed everything; the dead worker's journal was not inherited")
	}
	if res.DuplicateFrames != 0 {
		return res, fmt.Errorf("crash leg accepted %d duplicate journal frames", res.DuplicateFrames)
	}
	if res.MergedFingerprint, err = merged.Fingerprint(); err != nil {
		return res, err
	}
	res.Identical = res.MergedFingerprint == res.Fingerprint
	if !res.Identical {
		return res, fmt.Errorf("sharded result diverged from single-process reference:\n%s", res)
	}
	res.DeadLettersExact = deadLettersMatch(ledger, expectPoison)
	if !res.DeadLettersExact {
		return res, fmt.Errorf("dead-letter manifest does not match the poison plan exactly once each:\n%s", res)
	}

	// ---- Stall leg: a worker computes on while its lease rots. ----
	stallLedger, err := shard.Create(filepath.Join(dir, "stall-ledger"), sig, len(world), res.Shards,
		shard.Options{TTL: 150 * time.Millisecond, Poll: 10 * time.Millisecond})
	if err != nil {
		return nil, err
	}
	stall := &faults.LeaseStall{AllowRenewals: 0}
	var swg sync.WaitGroup
	var stallRep, liveRep *shard.Report
	var stallErr, liveErr error
	swg.Add(1)
	go func() {
		defer swg.Done()
		// Single-threaded and slowed, so its first shard takes far longer
		// than the TTL it never renews.
		w := &shard.Worker{
			ID:        "w-stall",
			Ledger:    stallLedger,
			Config:    cfg,
			Engine:    &slowProber{inner: faulty, delay: 40 * time.Millisecond},
			World:     world,
			Workers:   1,
			RenewGate: stall.Allow,
		}
		stallRep, stallErr = w.Run(opts.ctx())
	}()
	// The healthy worker starts late enough that the stalled worker holds
	// a shard first, then sweeps everything — including the stalled
	// worker's shard once its lease expires.
	time.Sleep(50 * time.Millisecond)
	swg.Add(1)
	go func() {
		defer swg.Done()
		w := &shard.Worker{ID: "w-live", Ledger: stallLedger, Config: cfg, Engine: faulty, World: world}
		liveRep, liveErr = w.Run(opts.ctx())
	}()
	swg.Wait()
	if stallErr != nil {
		return res, fmt.Errorf("stalled worker: %w", stallErr)
	}
	if liveErr != nil {
		return res, fmt.Errorf("healthy worker: %w", liveErr)
	}
	_ = liveRep
	res.StallFenced = stallRep.Fenced
	if res.StallFenced == 0 {
		return res, fmt.Errorf("stalled worker was never fenced; the lease-stall scenario did not engage")
	}
	stallMerged, stallAudit, err := stallLedger.Merge(cfg, world)
	if err != nil {
		return res, fmt.Errorf("stall-leg merge: %w", err)
	}
	res.StallDuplicates = stallAudit.DuplicateFrames
	res.StallConflicts = len(stallAudit.Conflicts)
	if !stallAudit.Clean() {
		return res, fmt.Errorf("stall-leg audit failed:\n%s", stallAudit)
	}
	sfp, err := stallMerged.Fingerprint()
	if err != nil {
		return res, err
	}
	res.StallIdentical = sfp == res.Fingerprint
	if !res.StallIdentical {
		return res, fmt.Errorf("stall-leg result diverged from reference:\n%s", res)
	}
	if !deadLettersMatch(stallLedger, expectPoison) {
		return res, fmt.Errorf("stall-leg dead-letter manifest does not match the poison plan")
	}
	return res, nil
}

// deadLettersMatch reports whether the ledger's quarantine manifest holds
// exactly the expected global indices, once each.
func deadLettersMatch(l *shard.Ledger, expect map[int]bool) bool {
	entries, faults := l.DeadLetters().Entries()
	if len(faults) != 0 || len(entries) != len(expect) {
		return false
	}
	seen := map[int]bool{}
	for _, e := range entries {
		if !expect[e.Index] || seen[e.Index] {
			return false
		}
		seen[e.Index] = true
	}
	return true
}
