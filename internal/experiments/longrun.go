package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"github.com/diurnalnet/diurnal/internal/core"
	"github.com/diurnalnet/diurnal/internal/dataset"
	"github.com/diurnalnet/diurnal/internal/events"
	"github.com/diurnalnet/diurnal/internal/faults"
	"github.com/diurnalnet/diurnal/internal/netsim"
	"github.com/diurnalnet/diurnal/internal/probe"
	"github.com/diurnalnet/diurnal/internal/serve"
	"github.com/diurnalnet/diurnal/internal/storage"
	"github.com/diurnalnet/diurnal/internal/stream"
)

// Longrun governance knobs, scaled so every mechanism fires at test
// size: 8 KiB segments force rotations within a quarter, the compaction
// threshold forces several base rewrites, and the disk budget is the
// fixed byte bound the whole run must live inside without shedding.
const (
	longrunSegmentBytes = 32 << 10
	longrunCompactBytes = 256 << 10
	longrunDiskBudget   = 8 << 20
	longrunQuarterDays  = 28
	longrunQuarters     = 3
	longrunRetain       = 2
)

// LongrunResult records the run-forever storage-governance experiment:
// a daemon is run quarter after quarter under a fixed disk budget with
// repeated SIGKILLs, each quarter's result is published into one
// retained snapshot directory, and the storage contracts are checked —
// resume identity across rotated/compacted WALs, a flat disk footprint,
// zero litter after every quarter is torn down, bounded snapshot
// retention, a refused publish once the serving budget is exhausted,
// and graceful ENOSPC shedding with a clean resume afterwards.
type LongrunResult struct {
	// Blocks is the per-quarter world size; Quarters how many back-to-back
	// windows were streamed; Rounds the daily rounds per quarter.
	Blocks   int
	Quarters int
	Rounds   int64
	// Incarnations is the total daemon lives across all killed quarters.
	Incarnations int
	// Rotations and Compactions total the WAL segment rollovers and
	// base-segment rewrites observed across every incarnation.
	Rotations, Compactions int64
	// Identical reports that every killed, governed quarter finished with
	// the exact event log and result fingerprint of its uninterrupted,
	// ungoverned reference run.
	Identical bool
	// DiskBudget is the per-daemon journal bound; PeakJournalBytes the
	// largest journal footprint any incarnation reported against it.
	DiskBudget       int64
	PeakJournalBytes int64
	// PeakTreeBytes is the largest whole-tree footprint observed at a
	// quarter boundary — the "flat disk" number that must not grow with
	// quarters streamed.
	PeakTreeBytes int64
	// SnapshotsKept and SnapshotsRetired count the retention pass: the
	// directory ends with at most the retained K, the rest deleted.
	SnapshotsKept, SnapshotsRetired int
	// LitterFiles counts files that survived teardown anywhere outside
	// the retained snapshots. Zero or the run failed.
	LitterFiles int
	// PublishRefused reports the over-budget publish was refused with
	// ErrDiskBudget instead of filling the disk.
	PublishRefused bool
	// PressureShed and ResumedAfterPressure report the ENOSPC leg: a
	// daemon on a fault-injected filesystem shed a round with
	// ErrDiskPressure, and a clean reopen of the same directory replayed
	// the torn journals and finished identical to the reference.
	PressureShed, ResumedAfterPressure bool
}

// String renders the check as text.
func (r *LongrunResult) String() string {
	var b strings.Builder
	verdict := func(ok bool) string {
		if ok {
			return "OK"
		}
		return "VIOLATED"
	}
	fmt.Fprintf(&b, "storage governance over %d quarters of %d rounds, %d blocks each:\n", r.Quarters, r.Rounds, r.Blocks)
	fmt.Fprintf(&b, "  resume identity: %s (%d incarnations, %d rotations, %d compactions)\n",
		verdict(r.Identical), r.Incarnations, r.Rotations, r.Compactions)
	fmt.Fprintf(&b, "  flat disk:       %s (peak journals %d of %d budget bytes, peak tree %d bytes)\n",
		verdict(r.PeakJournalBytes <= r.DiskBudget), r.PeakJournalBytes, r.DiskBudget, r.PeakTreeBytes)
	fmt.Fprintf(&b, "  retention:       %s (%d snapshots kept, %d retired, %d litter files)\n",
		verdict(r.SnapshotsKept <= longrunRetain && r.LitterFiles == 0), r.SnapshotsKept, r.SnapshotsRetired, r.LitterFiles)
	fmt.Fprintf(&b, "  publish budget:  %s (over-budget publish refused)\n", verdict(r.PublishRefused))
	fmt.Fprintf(&b, "  disk pressure:   %s (ENOSPC shed gracefully, clean reopen identical)\n",
		verdict(r.PressureShed && r.ResumedAfterPressure))
	return b.String()
}

// Longrun is the run-forever storage-governance acceptance experiment.
// A non-nil error means a governance contract is broken.
func Longrun(opts Options) (*LongrunResult, error) {
	start0, _ := q1Window()
	res := &LongrunResult{
		Blocks:     opts.blocks(32),
		Quarters:   longrunQuarters,
		Rounds:     longrunQuarterDays,
		DiskBudget: longrunDiskBudget,
		Identical:  true,
	}

	root, err := os.MkdirTemp("", "diurnal-longrun")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)
	snapDir := filepath.Join(root, "snaps")

	rng := rand.New(rand.NewSource(int64(opts.seed())))

	// Carried out of the quarter loop for the ENOSPC and publish-budget
	// legs, which replay the final quarter under induced failure.
	var (
		lastWorld  []*dataset.WorldBlock
		lastFeeder *stream.Feeder
		lastCfg    stream.Config
		lastEvents []stream.Event
		lastFP     string
		lastRes    *core.WorldResult
		lastSig    []byte
		lastStart  int64
		lastEnd    int64
	)

	for q := 0; q < longrunQuarters; q++ {
		qstart := start0 + int64(q)*longrunQuarterDays*netsim.SecondsPerDay
		qend := qstart + longrunQuarterDays*netsim.SecondsPerDay
		world, err := dataset.BuildWorld(dataset.WorldOpts{
			Blocks:   res.Blocks,
			Seed:     opts.seed() + 71 + uint64(q),
			Calendar: events.Year2020(),
			Start:    qstart,
			End:      qend,
		})
		if err != nil {
			return nil, err
		}
		cc := core.DefaultConfig(qstart, qend)
		cc.BaselineStart = qstart
		cc.BaselineEnd = qstart + 14*netsim.SecondsPerDay
		cfg := stream.Config{Core: cc, RefreshEvery: 7, ConfirmRefreshes: 2}
		eng := &probe.Engine{Observers: probe.StandardObservers(4), QuarterSeed: opts.seed() + uint64(q)}
		feeder, err := stream.NewFeeder(opts.ctx(), eng, world, cfg)
		if err != nil {
			return nil, err
		}

		// Reference: the same quarter streamed uninterrupted with no
		// governance at all. Governance must not change results, only
		// bound disk.
		refDir := filepath.Join(root, fmt.Sprintf("q%d-ref", q))
		refEvents, refFP, err := streamToEnd(opts.ctx(), refDir, world, feeder, cfg)
		if err != nil {
			return res, fmt.Errorf("quarter %d reference run: %w", q, err)
		}

		gcfg := cfg
		gcfg.SegmentBytes = longrunSegmentBytes
		gcfg.CompactBytes = longrunCompactBytes
		gcfg.DiskBudget = longrunDiskBudget
		runDir := filepath.Join(root, fmt.Sprintf("q%d-run", q))
		final, lives, err := streamKilled(opts, runDir, world, feeder, gcfg, refEvents, refFP, rng, res)
		if err != nil {
			return res, fmt.Errorf("quarter %d governed run: %w", q, err)
		}
		res.Incarnations += lives
		if lives < 2 {
			return res, fmt.Errorf("quarter %d: the kill schedule never fired; kill-and-resume was not exercised", q)
		}

		// Publish the quarter into the shared snapshot directory and run
		// the retention pass: the directory holds at most the last K
		// quarters no matter how long the run goes.
		sig := core.RunSignature(cc, world)
		if _, err := serve.WriteSnapshot(snapDir, final, sig, qstart, qend); err != nil {
			return res, fmt.Errorf("quarter %d publish: %w", q, err)
		}
		retired, err := serve.RetainSnapshots(storage.OS, snapDir, longrunRetain, nil)
		if err != nil {
			return res, fmt.Errorf("quarter %d retention: %w", q, err)
		}
		res.SnapshotsRetired += len(retired)

		// Tear the quarter's daemon directories down — a run-forever
		// deployment cannot keep per-quarter journals — and check the
		// whole tree stays flat: retained snapshots only, no growth.
		if err := os.RemoveAll(refDir); err != nil {
			return res, err
		}
		if err := os.RemoveAll(runDir); err != nil {
			return res, err
		}
		tree, err := storage.TreeBytes(root)
		if err != nil {
			return res, err
		}
		if tree > res.PeakTreeBytes {
			res.PeakTreeBytes = tree
		}

		lastWorld, lastFeeder, lastCfg = world, feeder, cfg
		lastEvents, lastFP, lastRes, lastSig = refEvents, refFP, final, sig
		lastStart, lastEnd = qstart, qend
	}

	// ENOSPC leg: replay the final quarter on a filesystem with a fixed
	// write budget. The daemon must shed with ErrDiskPressure — journals
	// intact, process alive — and a clean reopen of the same directory
	// must replay whatever (possibly torn) prefix survived and finish
	// identical to the reference.
	if err := longrunPressure(opts, root, lastWorld, lastFeeder, lastCfg, lastEvents, lastFP, res); err != nil {
		return res, err
	}

	// Publish-budget leg: a server given a budget smaller than one
	// snapshot must refuse the publish with ErrDiskBudget after its GC
	// pass, not write past the bound.
	srv := serve.New(serve.Config{Dir: snapDir, ExpectSignature: lastSig, Retain: longrunRetain, DiskBudget: 1})
	_, err = srv.Publish(lastRes, lastSig, lastStart, lastEnd)
	if !errors.Is(err, serve.ErrDiskBudget) {
		srv.Close()
		return res, fmt.Errorf("over-budget publish: got %v, want ErrDiskBudget", err)
	}
	res.PublishRefused = srv.StatsNow().PublishRefused > 0
	srv.Close()
	if !res.PublishRefused {
		return res, fmt.Errorf("refused publish was not counted in server stats")
	}

	// Zero-litter audit: after every quarter is torn down the tree holds
	// exactly the retained snapshots — every other file is litter.
	entries, err := os.ReadDir(root)
	if err != nil {
		return res, err
	}
	for _, e := range entries {
		if e.Name() != "snaps" {
			res.LitterFiles++
		}
	}
	snaps, err := os.ReadDir(snapDir)
	if err != nil {
		return res, err
	}
	for _, e := range snaps {
		if e.Type().IsRegular() && strings.HasPrefix(e.Name(), "snap-") && strings.HasSuffix(e.Name(), ".snap") {
			res.SnapshotsKept++
			continue
		}
		res.LitterFiles++
	}
	if res.LitterFiles > 0 {
		return res, fmt.Errorf("%d litter files survived teardown under %s", res.LitterFiles, root)
	}
	if res.SnapshotsKept == 0 || res.SnapshotsKept > longrunRetain {
		return res, fmt.Errorf("retention kept %d snapshots, want 1..%d", res.SnapshotsKept, longrunRetain)
	}
	if res.Rotations == 0 || res.Compactions == 0 {
		return res, fmt.Errorf("governance never fired: %d rotations, %d compactions", res.Rotations, res.Compactions)
	}
	return res, nil
}

// streamKilled runs one quarter under governance with SIGKILLs (Abort)
// at seeded-random points until the stream completes, checking resume
// identity against the reference on every incarnation and accounting
// rotations, compactions, and the journal footprint into res. Returns
// the final result and how many daemon lives the quarter took.
func streamKilled(opts Options, dir string, world []*dataset.WorldBlock, feeder *stream.Feeder, cfg stream.Config,
	refEvents []stream.Event, refFP string, rng *rand.Rand, res *LongrunResult) (*core.WorldResult, int, error) {
	total := feeder.Rounds()
	lives := 0
	// account folds one incarnation's stats into the result and enforces
	// the budget contract: the journals never exceed it and no round is
	// ever shed under a budget sized for the steady compacted state.
	account := func(st stream.Stats) error {
		res.Rotations += st.Rotations
		res.Compactions += st.Compactions
		if st.DiskBytes > res.PeakJournalBytes {
			res.PeakJournalBytes = st.DiskBytes
		}
		if st.DiskBytes > cfg.DiskBudget {
			return fmt.Errorf("journals hold %d bytes, budget %d", st.DiskBytes, cfg.DiskBudget)
		}
		if st.PressureSheds > 0 {
			return fmt.Errorf("%d rounds shed under a sufficient budget: %s", st.PressureSheds, st.LastStorageErr)
		}
		return nil
	}
	for {
		d, err := stream.Open(dir, world, feeder.Observers(), cfg)
		if err != nil {
			return nil, lives, fmt.Errorf("incarnation %d: %w", lives, err)
		}
		d.Start()
		lives++
		evs := d.Events()
		if len(evs) > len(refEvents) {
			return nil, lives, fmt.Errorf("incarnation %d resumed with %d events; reference has %d", lives, len(evs), len(refEvents))
		}
		for i := range evs {
			if evs[i] != refEvents[i] {
				return nil, lives, fmt.Errorf("incarnation %d: journaled event %d diverges from the reference", lives, i)
			}
		}
		next := d.NextIngestSeq()
		if next >= total {
			if err := d.Drain(opts.ctx()); err != nil {
				return nil, lives, err
			}
			final, err := d.Result()
			if err != nil {
				return nil, lives, err
			}
			fp, err := final.Fingerprint()
			if err != nil {
				return nil, lives, err
			}
			evs = d.Events()
			if err := account(d.Stats()); err != nil {
				return nil, lives, err
			}
			if err := d.Close(); err != nil {
				return nil, lives, err
			}
			identical := fp == refFP && len(evs) == len(refEvents)
			for i := range evs {
				if evs[i] != refEvents[i] {
					identical = false
				}
			}
			if !identical {
				res.Identical = false
				return nil, lives, fmt.Errorf("governed killed run diverged from the ungoverned reference")
			}
			return final, lives, nil
		}
		target := next + 1 + rng.Int63n(total-next)
		for seq := next; seq < target; seq++ {
			r, err := feeder.Round(seq)
			if err != nil {
				return nil, lives, err
			}
			if err := d.Ingest(opts.ctx(), r); err != nil {
				return nil, lives, fmt.Errorf("incarnation %d: ingest round %d: %w", lives, seq, err)
			}
		}
		if rng.Intn(2) == 0 {
			if err := d.Drain(opts.ctx()); err != nil {
				return nil, lives, err
			}
		}
		if err := account(d.Stats()); err != nil {
			return nil, lives, err
		}
		d.Abort() // SIGKILL: nothing flushed, nothing drained
	}
}

// longrunPressure runs the ENOSPC leg: the final quarter replayed on a
// write-budgeted faults.FS until a round is shed, then a clean reopen
// that must finish identical to the reference.
func longrunPressure(opts Options, root string, world []*dataset.WorldBlock, feeder *stream.Feeder, cfg stream.Config,
	refEvents []stream.Event, refFP string, res *LongrunResult) error {
	dir := filepath.Join(root, "enospc")
	ffs := &faults.FS{Plan: faults.FSPlan{WriteBudget: 16 << 10}}
	fcfg := cfg
	fcfg.SegmentBytes = longrunSegmentBytes
	fcfg.FS = ffs

	d, err := stream.Open(dir, world, feeder.Observers(), fcfg)
	if err != nil {
		return fmt.Errorf("disk-pressure open: %w", err)
	}
	// Deliberately not Started: with no analysis loop the only writes are
	// ingest appends, so the first failure the fault plan forces is the
	// one under test, not a background event journal write.
	total := feeder.Rounds()
	for seq := int64(0); seq < total; seq++ {
		r, err := feeder.Round(seq)
		if err != nil {
			d.Abort()
			return err
		}
		if err := d.Ingest(opts.ctx(), r); err != nil {
			if !errors.Is(err, stream.ErrDiskPressure) {
				d.Abort()
				return fmt.Errorf("ingest under exhausted disk: got %v, want ErrDiskPressure", err)
			}
			st := d.Stats()
			res.PressureShed = st.PressureSheds > 0 && st.LastStorageErr != ""
			d.Abort()
			break
		}
	}
	if !res.PressureShed {
		return fmt.Errorf("the write budget never bit: no round was shed with ErrDiskPressure")
	}

	// Clean reopen on the real filesystem: the torn prefix replays and
	// the stream runs to the end, identical to the reference.
	d, err = stream.Open(dir, world, feeder.Observers(), cfg)
	if err != nil {
		return fmt.Errorf("reopen after pressure: %w", err)
	}
	d.Start()
	evs := d.Events()
	if len(evs) != 0 {
		d.Abort()
		return fmt.Errorf("unstarted pressured daemon journaled %d events", len(evs))
	}
	for seq := d.NextIngestSeq(); seq < total; seq++ {
		r, err := feeder.Round(seq)
		if err != nil {
			d.Abort()
			return err
		}
		if err := d.Ingest(opts.ctx(), r); err != nil {
			d.Abort()
			return fmt.Errorf("resume after pressure: ingest round %d: %w", seq, err)
		}
	}
	if err := d.Drain(opts.ctx()); err != nil {
		d.Close()
		return err
	}
	final, err := d.Result()
	if err != nil {
		d.Close()
		return err
	}
	fp, err := final.Fingerprint()
	if err != nil {
		d.Close()
		return err
	}
	evs = d.Events()
	if err := d.Close(); err != nil {
		return err
	}
	res.ResumedAfterPressure = fp == refFP && len(evs) == len(refEvents)
	for i := range evs {
		if evs[i] != refEvents[i] {
			res.ResumedAfterPressure = false
		}
	}
	if !res.ResumedAfterPressure {
		return fmt.Errorf("post-pressure resume diverged from the reference")
	}
	return os.RemoveAll(dir)
}
