package experiments

import (
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/diurnalnet/diurnal/internal/core"
	"github.com/diurnalnet/diurnal/internal/dataset"
	"github.com/diurnalnet/diurnal/internal/events"
	"github.com/diurnalnet/diurnal/internal/faults"
	"github.com/diurnalnet/diurnal/internal/probe"
	"github.com/diurnalnet/diurnal/internal/serve"
)

// ServeLoadResult records the result-serving-plane acceptance
// experiment: one world is analyzed, published as a columnar snapshot,
// and queried through the degradation-aware server at 1× and 10× its
// admission ceiling over a deliberately slow disk, with a corrupt
// publish injected mid-experiment. The serving contract under overload:
// every response is a 200 or a 503-with-Retry-After, cheap point reads
// keep a bounded p99, load is shed rather than queued, and a corrupt
// snapshot is quarantined while the server keeps answering from
// last-good.
type ServeLoadResult struct {
	// Blocks is the analyzed world size; Cells the published gridcell
	// count; Ceiling the admission bound the overload run is measured
	// against.
	Blocks, Cells, Ceiling int
	// Nominal and Overload are the load-harness reports at 1× and 10×
	// the ceiling.
	Nominal, Overload *serve.LoadReport
	// Quarantined counts snapshots the corrupt-publish injection sent to
	// quarantine; ServedLastGood reports whether the server kept
	// answering from the pre-corruption snapshot throughout.
	Quarantined    uint64
	ServedLastGood bool
}

// String renders the check as text.
func (r *ServeLoadResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "serving plane over %d blocks (%d gridcells), admission ceiling %d:\n",
		r.Blocks, r.Cells, r.Ceiling)
	line := func(name string, rep *serve.LoadReport) {
		cell := rep.Classes["cell"]
		topk := rep.Classes["topk"]
		fmt.Fprintf(&b, "  %-9s %5d ok (%d stale), %5d shed, cell p50/p99 %.2f/%.2fms, topk p99 %.2fms\n",
			name, rep.OK, rep.Stale, rep.Shed, cell.P50ms, cell.P99ms, topk.P99ms)
	}
	line("nominal", r.Nominal)
	line("overload", r.Overload)
	verdict := func(ok bool) string {
		if ok {
			return "OK"
		}
		return "VIOLATED"
	}
	fmt.Fprintf(&b, "  only 200s and Retry-After 503s left the server: %s\n",
		verdict(r.Nominal.Other+r.Overload.Other == 0 &&
			r.Nominal.ShedNoRetryAfter+r.Overload.ShedNoRetryAfter == 0))
	fmt.Fprintf(&b, "  10x overload shed load instead of queueing it: %s\n", verdict(r.Overload.Shed > 0))
	fmt.Fprintf(&b, "  corrupt publish quarantined (%d), served last-good: %s\n",
		r.Quarantined, verdict(r.Quarantined > 0 && r.ServedLastGood))
	return b.String()
}

// ServeLoad is the serving-plane acceptance experiment. A non-nil error
// means the overload contract is broken.
func ServeLoad(opts Options) (*ServeLoadResult, error) {
	start, end := q1Window()
	world, err := dataset.BuildWorld(dataset.WorldOpts{
		Blocks:   opts.blocks(64),
		Seed:     opts.seed() + 47,
		Calendar: events.Year2020(),
		Start:    start,
		End:      end,
	})
	if err != nil {
		return nil, err
	}
	cc := core.DefaultConfig(start, end)
	eng := &probe.Engine{Observers: probe.StandardObservers(4), QuarterSeed: opts.seed()}
	res, err := (&core.Pipeline{Config: cc, Engine: eng}).Run(opts.ctx(), world)
	if err != nil {
		return nil, fmt.Errorf("analysis run: %w", err)
	}

	dir, err := os.MkdirTemp("", "serveload-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	sig := core.RunSignature(cc, world)
	path, err := serve.WriteSnapshot(dir, res, sig, start, end)
	if err != nil {
		return nil, fmt.Errorf("publishing snapshot: %w", err)
	}

	const ceiling = 8
	s := serve.New(serve.Config{
		Dir:         dir,
		MaxInflight: ceiling,
		// Tight freshness so the cache cannot absorb the whole run and
		// the admission path stays hot; a wide stale window so the
		// degradation ladder (fresh → stale → shed) is visible.
		FreshTTL:     20 * time.Millisecond,
		StaleTTL:     5 * time.Second,
		QueryTimeout: time.Second,
	})
	defer s.Close()
	if err := s.Install(path); err != nil {
		return nil, fmt.Errorf("installing snapshot: %w", err)
	}
	sn := s.CurrentSnapshot()
	lastGood := sn.ID()
	// A realistic disk: at native speed the in-memory fixture renders so
	// fast that no worker count can hold the admission ceiling.
	sn.SetReaderAt(&faults.SlowReaderAt{R: sn.ReaderAt(), Delay: time.Millisecond})
	cells := sn.CellKeys()

	nominal := serve.RunLoad(s.Handler(), cells, serve.LoadOptions{
		Workers: ceiling, Requests: 100, Seed: int64(opts.seed()),
	})

	// A writer publishes a bit-flipped snapshot mid-experiment; the
	// reload must quarantine it and keep serving last-good.
	bad, err := serve.WriteSnapshot(dir, res, sig, start, end)
	if err != nil {
		return nil, err
	}
	raw, err := os.ReadFile(bad)
	if err != nil {
		return nil, err
	}
	raw[len(raw)/3] ^= 0x20
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		return nil, err
	}
	if _, err := s.LoadLatest(); err != nil {
		return nil, fmt.Errorf("reload over corrupt publish: %w", err)
	}

	overload := serve.RunLoad(s.Handler(), cells, serve.LoadOptions{
		Workers: 10 * ceiling, Requests: 100, Seed: int64(opts.seed()) + 1,
	})

	st := s.StatsNow()
	r := &ServeLoadResult{
		Blocks:         len(world),
		Cells:          len(cells),
		Ceiling:        ceiling,
		Nominal:        nominal,
		Overload:       overload,
		Quarantined:    st.Quarantined,
		ServedLastGood: st.SnapshotID == lastGood,
	}
	if n := nominal.Other + overload.Other; n != 0 {
		return r, fmt.Errorf("serveload: %d responses were neither 200 nor 503", n)
	}
	if n := nominal.ShedNoRetryAfter + overload.ShedNoRetryAfter; n != 0 {
		return r, fmt.Errorf("serveload: %d sheds lacked Retry-After", n)
	}
	if overload.OK == 0 {
		return r, fmt.Errorf("serveload: nothing served under overload")
	}
	if overload.Shed == 0 {
		return r, fmt.Errorf("serveload: 10x overload shed nothing — admission is not bounding")
	}
	if st.Quarantined == 0 || !r.ServedLastGood {
		return r, fmt.Errorf("serveload: corrupt publish was not contained (quarantined=%d, served=%s, want %s)",
			st.Quarantined, st.SnapshotID, lastGood)
	}
	for id := range nominal.Snapshots {
		if id != lastGood {
			return r, fmt.Errorf("serveload: served unknown snapshot %s", id)
		}
	}
	for id := range overload.Snapshots {
		if id != lastGood {
			return r, fmt.Errorf("serveload: served unknown snapshot %s", id)
		}
	}
	return r, nil
}
