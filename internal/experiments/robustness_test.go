package experiments

import (
	"strings"
	"testing"
)

func TestRobustness(t *testing.T) {
	r, err := Robustness(Options{Blocks: 120})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(RobustnessSeverities) {
		t.Fatalf("rows %d != severities %d", len(r.Rows), len(RobustnessSeverities))
	}
	clean := r.Rows[0]
	worst := r.Rows[len(r.Rows)-1]
	if clean.Severity != 0 || worst.Severity != 1 {
		t.Fatalf("sweep endpoints wrong: %v .. %v", clean.Severity, worst.Severity)
	}
	// The clean run must be genuinely clean and find something to score.
	if clean.Quarantined != 0 || clean.Excluded != 0 || clean.Failed != 0 {
		t.Fatalf("severity 0 is not clean: %+v", clean)
	}
	if clean.TP == 0 {
		t.Fatal("clean run detected no WFH changes; the sweep has nothing to degrade")
	}
	for i, row := range r.Rows {
		// Graceful degradation: faults must never sink healthy blocks.
		if row.Failed != 0 {
			t.Errorf("severity %.2f: %d blocks failed", row.Severity, row.Failed)
		}
		if row.Analyzed != clean.Analyzed {
			t.Errorf("severity %.2f: analyzed %d != clean %d", row.Severity, row.Analyzed, clean.Analyzed)
		}
		// Sanitization work must grow with severity (strictly from 0).
		if i > 0 && row.Quarantined <= r.Rows[i-1].Quarantined {
			t.Errorf("quarantined records not increasing at severity %.2f: %d <= %d",
				row.Severity, row.Quarantined, r.Rows[i-1].Quarantined)
		}
	}
	// Unmitigated accuracy must degrade across the sweep...
	if worst.RawRecall >= clean.RawRecall {
		t.Errorf("raw recall did not degrade: %.2f >= %.2f", worst.RawRecall, clean.RawRecall)
	}
	// ...while the mitigated pipeline holds up at least as well, and the
	// health check catches the broken observer at full severity.
	if worst.Recall < worst.RawRecall {
		t.Errorf("mitigated recall %.2f below raw %.2f", worst.Recall, worst.RawRecall)
	}
	if worst.Excluded == 0 {
		t.Error("severity 1 should exclude the broken observer")
	}
	out := r.String()
	for _, want := range []string{"severity", "raw recall", "quarantined"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}
