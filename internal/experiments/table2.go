package experiments

import (
	"fmt"
	"time"

	"github.com/diurnalnet/diurnal/internal/blockclass"
	"github.com/diurnalnet/diurnal/internal/dataset"
	"github.com/diurnalnet/diurnal/internal/events"
	"github.com/diurnalnet/diurnal/internal/netsim"
)

// Table2Result reproduces Table 2: blocks before and after each filtering
// stage across dataset windows and observer sets.
type Table2Result struct {
	Datasets []string
	Counts   map[string]counts
	Blocks   int
}

// Table2 runs the block-filtering census over the paper's dataset grid:
// one-site quarters (2019q4-w, 2020q1-w, 2020q2-w), the one-site month and
// half (2020m1-w, 2020h1-w as the intersection of the two quarters), and
// the four-site month and half (2020m1-ejnw, 2020h1-ejnw).
func Table2(opts Options) (*Table2Result, error) {
	nBlocks := opts.blocks(600)
	// One world spans late 2019 through mid 2020 with the 2020 calendar.
	start2019q4 := netsim.Date(2019, time.October, 1)
	end2020h1 := netsim.Date(2020, time.July, 1)
	world, err := dataset.BuildWorld(dataset.WorldOpts{
		Blocks:   nBlocks,
		Seed:     opts.seed(),
		Calendar: events.Year2020(),
		Start:    start2019q4,
		End:      end2020h1,
	})
	if err != nil {
		return nil, err
	}
	cfg := blockclass.Default()
	lossy := lossyChinaBlocks(world)

	run := func(name string) ([]classification, error) {
		spec, err := dataset.FindSpec(name)
		if err != nil {
			return nil, err
		}
		eng, err := dataset.EngineFor(spec, lossy)
		if err != nil {
			return nil, err
		}
		return classifyWorld(world, eng, spec.Start, spec.End(), cfg, true), nil
	}

	res := &Table2Result{Counts: map[string]counts{}, Blocks: len(world)}
	cls := map[string][]classification{}
	for _, name := range []string{"2019q4-w", "2020q1-w", "2020q2-w", "2020m1-w", "2020m1-ejnw", "2020q1-ejnw", "2020q2-ejnw"} {
		c, err := run(name)
		if err != nil {
			return nil, err
		}
		cls[name] = c
	}
	// Half-year sets are the intersections of their quarters (§3.4).
	cls["2020h1-w"] = intersect(cls["2020q1-w"], cls["2020q2-w"])
	cls["2020h1-ejnw"] = intersect(cls["2020q1-ejnw"], cls["2020q2-ejnw"])

	res.Datasets = []string{
		"2019q4-w", "2020q1-w", "2020q2-w", "2020h1-w",
		"2020m1-w", "2020h1-ejnw", "2020m1-ejnw",
	}
	for _, name := range res.Datasets {
		res.Counts[name] = tally(cls[name])
	}
	return res, nil
}

// String renders the table in the paper's row order.
func (r *Table2Result) String() string {
	t := &table{header: append([]string{"row"}, r.Datasets...)}
	row := func(label string, get func(c counts) int) {
		cells := []string{label}
		for _, name := range r.Datasets {
			cells = append(cells, itoa(get(r.Counts[name])))
		}
		t.add(cells...)
	}
	row("routed blocks", func(c counts) int { return c.Routed })
	row("not responsive", func(c counts) int { return c.NotResponsive })
	row("responsive", func(c counts) int { return c.Responsive })
	row("not diurnal", func(c counts) int { return c.NotDiurnal })
	row("diurnal", func(c counts) int { return c.Diurnal })
	row("narrow swing", func(c counts) int { return c.NarrowSwing })
	row("wide swing", func(c counts) int { return c.WideSwing })
	row("not change-sensitive", func(c counts) int { return c.NotChangeSensitive })
	row("change-sensitive", func(c counts) int { return c.ChangeSensitive })
	return fmt.Sprintf("Table 2 — blocks before and after filtering (%d simulated /24s)\n%s", r.Blocks, t)
}

// SensitiveFraction returns the change-sensitive share of responsive
// blocks for a dataset (the paper's 3.3–6.4%).
func (r *Table2Result) SensitiveFraction(name string) float64 {
	c := r.Counts[name]
	if c.Responsive == 0 {
		return 0
	}
	return float64(c.ChangeSensitive) / float64(c.Responsive)
}
