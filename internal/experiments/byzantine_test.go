package experiments

import (
	"strings"
	"testing"

	"github.com/diurnalnet/diurnal/internal/faults"
)

// TestByzantineContract is the integrity firewall's acceptance contract,
// swept at full severity only to bound runtime: for every attack the
// attacker must be gated and attributed, no honest observer may be
// gated, and armed recall must hold at least 90% of the clean baseline.
func TestByzantineContract(t *testing.T) {
	if testing.Short() {
		t.Skip("full-severity byzantine sweep in -short mode")
	}
	r, err := byzantine(Options{}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(faults.AttackNames) {
		t.Fatalf("rows %d != attacks %d", len(r.Rows), len(faults.AttackNames))
	}
	// The armed firewall on honest streams must gate nothing and still
	// find changes to defend.
	if r.CleanGated != 0 {
		t.Fatalf("clean run gated %d streams", r.CleanGated)
	}
	if r.CleanRecall == 0 {
		t.Fatal("clean run detected no WFH changes; the sweep has nothing to defend")
	}
	for _, row := range r.Rows {
		if !row.AttackerGated {
			t.Errorf("%s: attacker not gated", row.Attack)
		}
		if row.Reason == "" {
			t.Errorf("%s: gated without an attributed reason", row.Attack)
		}
		if row.HonestGated != 0 {
			t.Errorf("%s: %d honest observers gated", row.Attack, row.HonestGated)
		}
		if row.Recall < 0.9*r.CleanRecall {
			t.Errorf("%s: armed recall %.2f below 0.9x clean %.2f",
				row.Attack, row.Recall, r.CleanRecall)
		}
	}
	// The sweep only demonstrates the firewall if at least one attack
	// visibly hurts the disarmed pipeline.
	damaged := false
	for _, row := range r.Rows {
		if row.RawRecall < 0.9*r.CleanRecall {
			damaged = true
		}
	}
	if !damaged {
		t.Error("no attack degraded the disarmed pipeline; the sweep proves nothing")
	}
	out := r.String()
	for _, want := range []string{"attacker gated", "raw recall", "honest gated"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}

// TestByzantineGrid checks the default sweep shape cheaply: a tiny world
// still produces one row per (attack, severity) cell.
func TestByzantineGrid(t *testing.T) {
	r, err := Byzantine(Options{Blocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(faults.AttackNames) * len(ByzantineSeverities); len(r.Rows) != want {
		t.Fatalf("rows %d, want %d", len(r.Rows), want)
	}
	for i, row := range r.Rows {
		wantSev := ByzantineSeverities[i%len(ByzantineSeverities)]
		if row.Severity != wantSev {
			t.Errorf("row %d severity %.2f, want %.2f", i, row.Severity, wantSev)
		}
	}
}
