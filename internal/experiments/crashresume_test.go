package experiments

import (
	"strings"
	"testing"
)

// TestCrashResume exercises the full kill-and-resume contract at reduced
// scale: CrashResume itself errors when any part of the contract breaks
// (journal empty or full at crash, resumed fingerprint diverging, nothing
// restored), so a nil error plus Identical is the whole acceptance check.
func TestCrashResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three world analyses")
	}
	res, err := CrashResume(Options{Blocks: 64})
	if err != nil {
		t.Fatalf("crash-safety contract broken: %v", err)
	}
	if !res.Identical {
		t.Fatalf("resumed run diverged:\n%s", res)
	}
	if res.JournaledAtCrash <= 0 || res.JournaledAtCrash >= res.Blocks {
		t.Fatalf("kill was not mid-run: journal held %d of %d", res.JournaledAtCrash, res.Blocks)
	}
	if res.ResumedFromJournal <= 0 {
		t.Fatalf("resumed run re-analyzed everything despite a journal of %d blocks", res.JournaledAtCrash)
	}
	if !strings.Contains(res.String(), "IDENTICAL") {
		t.Fatalf("report does not state the verdict:\n%s", res)
	}
	if !res.HedgedIdentical {
		t.Fatalf("hedged kill-and-resume diverged:\n%s", res)
	}
	if res.HedgedDuplicates != 0 {
		t.Fatalf("hedged crash left %d duplicate journal frames:\n%s", res.HedgedDuplicates, res)
	}
	if res.HedgedJournaledAtCrash <= 0 || res.HedgedJournaledAtCrash >= res.Blocks {
		t.Fatalf("hedged kill was not mid-run: journal held %d of %d", res.HedgedJournaledAtCrash, res.Blocks)
	}
}
